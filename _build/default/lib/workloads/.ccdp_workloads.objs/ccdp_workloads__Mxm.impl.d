lib/workloads/mxm.ml: Builder Ccdp_ir Dist Printf Workload
