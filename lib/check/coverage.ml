open Ccdp_ir
open Ccdp_analysis

(* Coherence coverage verifier: discharge, per read, the obligation
   "potentially stale => prefetched (lead of its group), covered by a
   lead's prefetch, or explicitly bypassed". The may-stale facts come from
   the independent derivation, so a stale mark dropped from the pipeline's
   own analysis (the fuzzer's fault injection) surfaces here as an
   uncovered obligation rather than passing silently. *)

let check ~(plan : Annot.plan) ~(maystale : Maystale.t) ~prefetch_clean infos =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let by_id = Ref_info.index infos in
  (* Is any of the read's witnesses an acquire-frontier one (same epoch,
     same lock)? Such an obligation can only be met inside the critical
     section — a prefetch planned outside it fills from the pre-acquire
     memory image — so only Bypass discharges it. *)
  let at_acquire (r : Ref_info.t) id =
    match r.Ref_info.lock with
    | None -> false
    | Some lk ->
        List.exists
          (fun wid ->
            match Hashtbl.find_opt by_id wid with
            | Some (w : Ref_info.t) ->
                w.Ref_info.epoch = r.Ref_info.epoch
                && (match w.Ref_info.lock with
                   | Some lk' -> String.equal lk lk'
                   | None -> false)
            | None -> false)
          (Maystale.witnesses_of maystale id)
  in
  List.iter
    (fun (r : Ref_info.t) ->
      if not r.Ref_info.write then begin
        let id = r.ref_.Reference.id in
        let loc = r.ref_.Reference.loc in
        let epoch = r.Ref_info.epoch in
        let name = Reference.to_string r.ref_ in
        let stale = Maystale.is_stale maystale id in
        match (stale, Annot.cls_of plan id) with
        | true, Annot.Normal when at_acquire r id ->
            add
              (Diag.makef Diag.Uncovered_stale ~loc ~ref_id:id ~epoch
                 "read %s is potentially stale at the acquire of lock %s \
                  (write%s %s under the same lock may run on another PE \
                  first) and is not bypassed inside the section"
                 name
                 (match r.Ref_info.lock with Some lk -> lk | None -> "?")
                 (if List.length (Maystale.witnesses_of maystale id) > 1 then
                    "s"
                  else "")
                 (String.concat ", "
                    (List.map string_of_int
                       (Maystale.witnesses_of maystale id))))
        | true, (Annot.Lead | Annot.Covered _) when at_acquire r id ->
            add
              (Diag.makef Diag.Broken_cover ~loc ~ref_id:id ~epoch
                 "read %s is potentially stale at the acquire of lock %s, \
                  but its prefetch is planned outside the critical section \
                  and would fill from the pre-acquire image; bypass it"
                 name
                 (match r.Ref_info.lock with Some lk -> lk | None -> "?"))
        | true, Annot.Normal ->
            add
              (Diag.makef Diag.Uncovered_stale ~loc ~ref_id:id ~epoch
                 "potentially-stale read %s (may observe stale copy of \
                  write%s %s) is neither prefetched nor bypassed"
                 name
                 (if List.length (Maystale.witnesses_of maystale id) > 1 then
                    "s"
                  else "")
                 (String.concat ", "
                    (List.map string_of_int
                       (Maystale.witnesses_of maystale id))))
        | true, Annot.Lead ->
            if Annot.op_of plan id = None then
              add
                (Diag.makef Diag.Broken_cover ~loc ~ref_id:id ~epoch
                   "leading reference %s has no prefetch operation" name)
        | true, Annot.Covered lead_id -> (
            match (Annot.cls_of plan lead_id, Annot.op_of plan lead_id) with
            | Annot.Lead, Some (Annot.Vector { group; _ }) ->
                if not (List.mem id group) then
                  add
                    (Diag.makef Diag.Broken_cover ~loc ~ref_id:id ~epoch
                       "%s is covered by lead %d whose vector group does not \
                        include it"
                       name lead_id)
            | Annot.Lead, Some (Annot.Pipelined _ | Annot.Back _) -> ()
            | Annot.Lead, None ->
                add
                  (Diag.makef Diag.Broken_cover ~loc ~ref_id:id ~epoch
                     "%s is covered by lead %d which has no prefetch \
                      operation"
                     name lead_id)
            | (Annot.Normal | Annot.Covered _ | Annot.Bypass), _ ->
                add
                  (Diag.makef Diag.Broken_cover ~loc ~ref_id:id ~epoch
                     "%s is covered by reference %d which is not a leading \
                      reference"
                     name lead_id))
        | true, Annot.Bypass -> ()
        | false, (Annot.Lead | Annot.Covered _ | Annot.Bypass) ->
            (* prefetching clean reads is the pipeline's latency-hiding
               option; without it, coverage of a provably clean read means
               the annotations disagree with the dataflow *)
            if not prefetch_clean then
              add
                (Diag.makef Diag.Spurious_cover ~loc ~ref_id:id ~epoch
                   "%s is %s but the certifier derives it clean" name
                   (match Annot.cls_of plan id with
                   | Annot.Lead -> "a prefetch lead"
                   | Annot.Covered _ -> "marked covered"
                   | _ -> "bypassed"))
        | false, Annot.Normal -> ()
      end)
    infos;
  List.rev !diags
