test/test_ref_info.ml: Alcotest Builder Ccdp_analysis Ccdp_ir Ccdp_test_support Epoch Hashtbl List Program Ref_info Reference Stmt String
