lib/analysis/schedule.mli: Annot Ccdp_machine Format Ref_info Region Stale Target
