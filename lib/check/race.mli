(** DOALL race detector (CCDP-W003).

    Re-judges every parallel epoch's loop with an independent dependence
    test: ZIV/strong-SIV on uniformly generated affine subscript pairs,
    and a Banerjee-style range test on the non-uniform ones — each
    access's subscript is narrowed to its extreme values by symbolically
    substituting the bounds of its iteration-scoped loops, and the
    dependence equation is infeasible when the difference range excludes
    zero (this proves triangular-bound patterns disjoint). Scalars are
    checked for privatizability with per-iteration definiteness: a value
    written earlier in the same iteration — even inside a nested serial
    loop body — never crosses tasks. A DOALL carrying a cross-iteration
    dependence or reading an unprivatizable scalar is flagged as a
    race. *)

val check : params:(string * int) list -> Ccdp_ir.Epoch.t -> Diag.t list
