(* The differential soundness subsystem, tested on itself:

   - a deterministic-seed smoke campaign (>= 200 generated programs through
     BASE and every CCDP variant with the staleness oracle armed) must be
     silent;
   - an intentionally unsound stale analysis (one mark dropped) must be
     caught, and by the oracle specifically;
   - the oracle must flag the Incoherent mode on a program built to leave
     stale copies behind, while CCDP on the same program stays clean;
   - the shrinker must preserve the failure predicate, reach a one-step
     minimum, and propose only validated candidates (Gen.validate).

   The static leg of the differential (certifier vs annotations vs oracle)
   is exercised in test_check.ml. *)

open Ccdp_test_support.Tutil
module Gen = Ccdp_fuzz.Gen
module Shrink = Ccdp_fuzz.Shrink
module Driver = Ccdp_fuzz.Driver
module Memsys = Ccdp_runtime.Memsys
module Interp = Ccdp_runtime.Interp

let quiet = fun _ -> ()

(* Two parallel epochs with cross-array, cross-column (j+1) reads, wrapped
   in a 2-iteration serial loop: on the second iteration every PE re-reads
   columns a neighbour rewrote. Incoherent caches serve stale copies. *)
let cross_desc : Gen.desc =
  {
    Gen.n = 8;
    dist_dim = 1;
    n_pes = 4;
    net = Ccdp_machine.Net.Uniform;
    pclean = false;
    wrap = true;
    epochs =
      [
        Gen.Par
          {
            sched = Gen.Cyclic;
            lo1 = true;
            opaque_hi = false;
            stmts =
              [ { Gen.dst = 0; doi = 0; reads = [ (1, 0, 1) ]; guarded = false } ];
          };
        Gen.Par
          {
            sched = Gen.Cyclic;
            lo1 = true;
            opaque_hi = false;
            stmts =
              [ { Gen.dst = 1; doi = 0; reads = [ (0, 0, 1) ]; guarded = false } ];
          };
      ];
  }

let run_mode desc mode =
  let cfg = Ccdp_machine.Config.t3d ~n_pes:desc.Gen.n_pes in
  Interp.run cfg ~oracle:true (Gen.build desc)
    ~plan:(Ccdp_analysis.Annot.empty ())
    ~mode ()

let campaign_suite =
  [
    case "seed-42 smoke campaign is silent (200 programs, all variants)"
      (fun () ->
        let s = Driver.campaign ~progress:quiet ~seed:42 ~count:200 () in
        check_int "programs" 200 s.Driver.s_programs;
        check_int "runs = programs x variants"
          (200 * List.length Driver.variant_names)
          s.Driver.s_runs;
        check_true "oracle actually consulted" (s.Driver.s_oracle_checks > 0);
        (match s.Driver.s_failures with
        | [] -> ()
        | f :: _ ->
            Alcotest.failf "unexpected failure: %a" (fun ppf () ->
                Format.fprintf ppf "#%d %s" f.Driver.f_index f.Driver.f_variant)
              ()));
    case "campaigns are deterministic per seed" (fun () ->
        let a = Driver.campaign ~progress:quiet ~seed:11 ~count:30 () in
        let b = Driver.campaign ~progress:quiet ~seed:11 ~count:30 () in
        check_int "same oracle checks" a.Driver.s_oracle_checks
          b.Driver.s_oracle_checks;
        check_int "same runs" a.Driver.s_runs b.Driver.s_runs);
  ]

let sabotage_suite =
  [
    case "dropping one stale mark is caught by the oracle (<= 60 programs)"
      (fun () ->
        let s =
          Driver.campaign
            ~mutate_stale:(Driver.drop_stale_mark 0)
            ~progress:quiet ~seed:7 ~count:60 ()
        in
        check_true "sabotage detected" (s.Driver.s_failures <> []);
        check_true "detected by the oracle, not only by numerics"
          (List.exists
             (fun f -> f.Driver.f_kind = Driver.Oracle)
             s.Driver.s_failures);
        List.iter
          (fun (f : Driver.failure) ->
            check_true "failures only on CCDP variants"
              (f.Driver.f_variant <> "BASE"))
          s.Driver.s_failures);
    case "shrunk reproducers still fail and re-lower" (fun () ->
        let s =
          Driver.campaign
            ~mutate_stale:(Driver.drop_stale_mark 0)
            ~progress:quiet ~seed:7 ~count:20 ()
        in
        match s.Driver.s_failures with
        | [] -> Alcotest.fail "expected at least one failure at this seed"
        | f :: _ ->
            check_true "shrunk description still fails"
              (Option.is_some
                 (Driver.check_desc
                    ~mutate_stale:(Driver.drop_stale_mark 0)
                    f.Driver.f_shrunk));
            check_true "reproducer text is parseable CRAFT"
              (let text = Driver.reproducer_text f.Driver.f_shrunk in
               let p = Ccdp_ir.Craft_parse.program text in
               p.Ccdp_ir.Program.arrays <> []));
    case "protocol sabotage: every fault class caught, zero escapes"
      (fun () ->
        let summaries = Driver.sabotage_campaign ~seed:42 ~count:40 () in
        check_int "one summary per case"
          (List.length Driver.sabotage_cases)
          (List.length summaries);
        List.iter
          (fun (s : Driver.sabotage_summary) ->
            let name = s.Driver.sb_case.Driver.sb_name in
            check_true (name ^ ": faults actually fired") (s.Driver.sb_fired > 0);
            check_true
              (name ^ ": the oracle witnessed the fault class")
              (s.Driver.sb_caught > 0);
            check_int (name ^ ": escapes") 0 s.Driver.sb_escapes)
          summaries);
    case "protocol sabotage campaigns are deterministic per seed" (fun () ->
        let a = Driver.sabotage_campaign ~seed:3 ~count:15 () in
        let b = Driver.sabotage_campaign ~seed:3 ~count:15 () in
        List.iter2
          (fun (x : Driver.sabotage_summary) (y : Driver.sabotage_summary) ->
            check_int "fired" x.Driver.sb_fired y.Driver.sb_fired;
            check_int "caught" x.Driver.sb_caught y.Driver.sb_caught;
            check_int "escapes" x.Driver.sb_escapes y.Driver.sb_escapes)
          a b);
  ]

let oracle_suite =
  [
    case "Incoherent mode trips the oracle on cross-column reuse" (fun () ->
        let r = run_mode cross_desc Memsys.Incoherent in
        check_true "stale hits witnessed"
          (Memsys.oracle_violation_count r.Interp.sys > 0);
        match Memsys.oracle_violations r.Interp.sys with
        | [] -> Alcotest.fail "expected witnesses"
        | v :: _ ->
            check_true "witness names a generated array"
              (List.mem v.Memsys.v_array Gen.array_names);
            check_true "cached copy predates memory"
              (v.Memsys.v_cached_version < v.Memsys.v_mem_version);
            check_true "stale write from an earlier epoch"
              (v.Memsys.v_write_epoch < v.Memsys.v_read_epoch));
    case "the same program is clean under every CCDP variant" (fun () ->
        match Driver.check_desc cross_desc with
        | None -> ()
        | Some (variant, _, detail) ->
            Alcotest.failf "%s failed:@ %s" variant detail);
    case "BASE (uncached shared data) never trips the oracle" (fun () ->
        let r = run_mode cross_desc Memsys.Base in
        check_int "violations" 0 (Memsys.oracle_violation_count r.Interp.sys));
  ]

let shrink_suite =
  [
    case "every one-step candidate of random descriptions still lowers"
      (fun () ->
        let rng = Random.State.make [| 99 |] in
        for _ = 1 to 50 do
          let d = Gen.generate rng in
          List.iter
            (fun c -> ignore (Gen.build c))
            (Shrink.candidates d)
        done);
    case "generated descriptions and all their candidates validate" (fun () ->
        let rng = Random.State.make [| 314 |] in
        for _ = 1 to 100 do
          let d = Gen.generate rng in
          (match Gen.validate d with
          | Ok () -> ()
          | Error m -> Alcotest.failf "generated description invalid: %s" m);
          List.iter
            (fun c ->
              match Gen.validate c with
              | Ok () -> ()
              | Error m -> Alcotest.failf "shrink candidate invalid: %s" m)
            (Shrink.candidates d)
        done);
    case "an out-of-bounds sweep column fails validation" (fun () ->
        let d =
          {
            Gen.n = 8;
            dist_dim = 0;
            n_pes = 2;
            net = Ccdp_machine.Net.Uniform;
            pclean = false;
            wrap = false;
            epochs = [ Gen.Sweep { src = 0; col = 50; dst = 1 } ];
          }
        in
        match Gen.validate d with
        | Ok () -> Alcotest.fail "expected a validation error"
        | Error m -> check_true "mentions the column" (m <> ""));
    case "a raising failure predicate never crashes minimization" (fun () ->
        let rng = Random.State.make [| 8 |] in
        let d = Gen.generate rng in
        let m =
          Shrink.minimize d ~still_fails:(fun _ -> failwith "flaky predicate")
        in
        (* no candidate "fails" under a crashing predicate: d is returned *)
        check_true "unchanged" (m = d));
    case "minimize skips invalid candidates without consuming budget"
      (fun () ->
        (* a sweep column valid only for the current edge: the n=8 shrink
           step would clamp it, but a hand-damaged clamp would be invalid —
           minimize must simply never select an invalid candidate *)
        let rng = Random.State.make [| 21 |] in
        let d = Gen.generate rng in
        let seen = ref [] in
        let still_fails c =
          seen := c :: !seen;
          false
        in
        ignore (Shrink.minimize d ~still_fails);
        List.iter
          (fun c ->
            match Gen.validate c with
            | Ok () -> ()
            | Error m -> Alcotest.failf "predicate saw invalid candidate: %s" m)
          !seen);
    case "minimize reaches the predicate's one-step minimum" (fun () ->
        let rng = Random.State.make [| 5 |] in
        (* draw until we have a 4-epoch description *)
        let rec draw () =
          let d = Gen.generate rng in
          if List.length d.Gen.epochs = 4 then d else draw ()
        in
        let d = draw () in
        let still_fails d' = List.length d'.Gen.epochs >= 2 in
        let m = Shrink.minimize d ~still_fails in
        check_int "epochs" 2 (List.length m.Gen.epochs);
        check_true "one-step minimal: no candidate still fails"
          (not (List.exists still_fails (Shrink.candidates m))));
    case "minimize respects its evaluation budget" (fun () ->
        let rng = Random.State.make [| 6 |] in
        let d = Gen.generate rng in
        let evals = ref 0 in
        let still_fails _ =
          incr evals;
          true
        in
        ignore (Shrink.minimize ~max_steps:10 d ~still_fails);
        check_true "bounded" (!evals <= 10));
  ]

let () =
  Alcotest.run "fuzz"
    [
      ("campaign", campaign_suite);
      ("sabotage", sabotage_suite);
      ("oracle", oracle_suite);
      ("shrink", shrink_suite);
    ]
