open Ccdp_ir

type verdict =
  | Clean
  | Stale of { writer_ref : int; writer_epoch : int; at_acquire : bool }

type result = {
  verdicts : (int, verdict) Hashtbl.t;
  n_reads : int;
  n_stale : int;
  diags : string list;
}

let shares_structure_loop (a : Ref_info.t) (b : Ref_info.t) =
  List.exists
    (fun (l : Stmt.loop) ->
      List.exists
        (fun (m : Stmt.loop) -> m.Stmt.loop_id = l.Stmt.loop_id)
        b.Ref_info.outer_serial)
    a.Ref_info.outer_serial

(* May the write execute before the read observes its location?  Strictly
   earlier epochs always may; epochs sharing a serial structure loop reach
   each other through the back-edge regardless of their relative order
   (including a parallel epoch feeding itself across iterations). *)
let may_precede ~(writer : Ref_info.t) ~(reader : Ref_info.t) =
  writer.Ref_info.epoch < reader.Ref_info.epoch
  || shares_structure_loop writer reader

let straight_line (i : Ref_info.t) = i.Ref_info.outer_serial = []

let analyze ?(cluster_pes = 1) region infos =
  let tracked name =
    let d = Region.decl region name in
    d.Array_decl.shared && d.Array_decl.dist <> Dist.Replicated
  in
  let writes =
    List.filter
      (fun (i : Ref_info.t) -> i.write && tracked i.ref_.Reference.array_name)
      infos
  in
  let reads = List.filter (fun (i : Ref_info.t) -> not i.write) infos in
  let diags = ref [] in
  List.iter
    (fun (i : Ref_info.t) ->
      let d = Region.decl region i.ref_.Reference.array_name in
      if
        i.Ref_info.write && d.Array_decl.shared
        && d.Array_decl.dist = Dist.Replicated
        && i.Ref_info.par_loop <> None
      then
        diags :=
          Printf.sprintf
            "write to replicated shared array %s in a parallel epoch (each PE \
             updates its own copy; coherence is not maintained for it)"
            d.Array_decl.name
          :: !diags)
    infos;
  let aligned_memo = Hashtbl.create 64 in
  let aligned ~reader ~writer =
    let key = (reader.Ref_info.ref_.Reference.id, writer.Ref_info.ref_.Reference.id) in
    match Hashtbl.find_opt aligned_memo key with
    | Some v -> v
    | None ->
        let v = Region.aligned_cluster region ~cluster_pes ~reader ~writer in
        Hashtbl.replace aligned_memo key v;
        v
  in
  let cross_pe_memo = Hashtbl.create 64 in
  let cross_pe ~(reader : Ref_info.t) ~(writer : Ref_info.t) =
    let key =
      (reader.Ref_info.ref_.Reference.id, writer.Ref_info.ref_.Reference.id)
    in
    match Hashtbl.find_opt cross_pe_memo key with
    | Some v -> v
    | None ->
        let np = Region.n_pes region in
        let v = ref false in
        for p = 0 to np - 1 do
          if not !v then
            let r_pe = Region.section_pe region reader ~pe:p in
            if not (Section.is_empty r_pe) then
              for q = 0 to np - 1 do
                if
                  (not !v) && q <> p
                  && Section.overlaps r_pe (Region.section_pe region writer ~pe:q)
                then v := true
              done
        done;
        Hashtbl.replace cross_pe_memo key !v;
        !v
  in
  (* Owner-computes alignment assumes each PE is the element's only
     writer — true in the race-free epoch model, broken by locked writes:
     under a lock, every holder may write the same element, and the
     lock-order-last writer (not the reading PE) owns the final value. A
     locked write therefore discharges by alignment only when no other PE
     can write an element the reader touches. *)
  let aligned_discharges ~(reader : Ref_info.t) ~(writer : Ref_info.t) =
    aligned ~reader ~writer
    && (writer.Ref_info.lock = None || not (cross_pe ~reader ~writer))
  in
  (* Does a later aligned covering write mask [w] before [r] reads? Only in
     straight-line epoch sequences — loop back-edges re-expose the older
     write, so the kill is disabled as soon as a structure loop is
     involved. *)
  let masked ~(r : Ref_info.t) ~(w : Ref_info.t) exposed =
    straight_line r && straight_line w
    && List.exists
         (fun (k : Ref_info.t) ->
           straight_line k
           && k.Ref_info.epoch > w.Ref_info.epoch
           && k.Ref_info.epoch < r.Ref_info.epoch
           && aligned_discharges ~reader:r ~writer:k
           && Section.contains (Region.section_all_must region k) exposed)
         writes
  in
  (* Mini-epoch rule (acquire frontier): a read inside critical(l) may
     observe, at acquire time, data written under the same lock by another
     PE earlier in the *same* epoch — a copy cached before the acquire is
     potentially stale. The owner-computes alignment test does not
     discharge this: even a PE that wrote the element itself interleaves
     with the other holders, so the discharge is cross-PE exclusion — no
     element the reader touches on PE p is written by any other PE. *)
  let same_lock (r : Ref_info.t) (w : Ref_info.t) =
    match (r.Ref_info.lock, w.Ref_info.lock) with
    | Some a, Some b -> String.equal a b
    | _ -> false
  in
  let verdicts = Hashtbl.create (List.length reads) in
  let n_stale = ref 0 in
  List.iter
    (fun (r : Ref_info.t) ->
      let name = r.ref_.Reference.array_name in
      let v =
        if not (tracked name) then Clean
        else
          let r_section = Region.section_all region r in
          let acquire_witness =
            if r.Ref_info.lock = None then None
            else
              List.find_opt
                (fun (w : Ref_info.t) ->
                  String.equal w.ref_.Reference.array_name name
                  && w.Ref_info.epoch = r.Ref_info.epoch
                  && same_lock r w
                  && Section.overlaps r_section (Region.section_all region w)
                  && cross_pe ~reader:r ~writer:w)
                writes
          in
          let witness =
            match acquire_witness with
            | Some _ -> None
            | None ->
                List.find_opt
                  (fun (w : Ref_info.t) ->
                    String.equal w.ref_.Reference.array_name name
                    && may_precede ~writer:w ~reader:r
                    &&
                    let exposed =
                      Section.inter r_section (Region.section_all region w)
                    in
                    (not (Section.is_empty exposed))
                    && (not (aligned_discharges ~reader:r ~writer:w))
                    && not (masked ~r ~w exposed))
                  writes
          in
          match (acquire_witness, witness) with
          | None, None -> Clean
          | Some w, _ ->
              incr n_stale;
              Stale
                {
                  writer_ref = w.ref_.Reference.id;
                  writer_epoch = w.Ref_info.epoch;
                  at_acquire = true;
                }
          | None, Some w ->
              incr n_stale;
              Stale
                {
                  writer_ref = w.ref_.Reference.id;
                  writer_epoch = w.Ref_info.epoch;
                  at_acquire = false;
                }
      in
      Hashtbl.replace verdicts r.ref_.Reference.id v)
    reads;
  {
    verdicts;
    n_reads = List.length reads;
    n_stale = !n_stale;
    diags = List.rev !diags;
  }

let verdict t id =
  match Hashtbl.find_opt t.verdicts id with Some v -> v | None -> Clean

let stale_ids t =
  Hashtbl.fold
    (fun id v acc -> match v with Stale _ -> id :: acc | Clean -> acc)
    t.verdicts []
  |> List.sort compare

let pp_result ppf t =
  Format.fprintf ppf "stale reference analysis: %d of %d reads potentially stale"
    t.n_stale t.n_reads;
  List.iter (fun d -> Format.fprintf ppf "@,warning: %s" d) t.diags
