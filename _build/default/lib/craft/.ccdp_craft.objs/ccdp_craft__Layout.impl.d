lib/craft/layout.ml: Array Array_decl Ccdp_ir Dist Format List Section
