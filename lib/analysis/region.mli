(** Access regions: which part of an array does a reference touch, and by
    which PE.

    Combines the iteration-space environment of the reference's loop stack
    with the array's CRAFT layout and the DOALL schedule. The two key
    queries of the stale-reference analysis are [section_pe] (what PE [p]
    touches through this reference) and [aligned] — the owner-computes test:
    a read is {e aligned} with a write when every PE only reads elements of
    the written region that it wrote itself, so its cached copy is the
    up-to-date one. *)

type t

val make : Ccdp_ir.Program.t -> n_pes:int -> t
val n_pes : t -> int
val layout : t -> string -> Ccdp_craft.Layout.t
val decl : t -> string -> Ccdp_ir.Array_decl.t
val params : t -> (string * int) list

(** Full iteration-space environment of a reference. *)
val env_of : t -> Ref_info.t -> Iterspace.env

(** Region touched across all PEs / iterations. *)
val section_all : t -> Ref_info.t -> Ccdp_ir.Section.t

(** Region touched by one PE (may-access over-approximation). Serial
    epochs execute on PE 0; dynamic DOALLs widen every PE to the full
    region. *)
val section_pe : t -> Ref_info.t -> pe:int -> Ccdp_ir.Section.t

(** Region this PE is {e guaranteed} to touch through the reference
    (must-access under-approximation): [Empty] for dynamic schedules,
    unresolvable bounds or inexact subscript sections. This is the set the
    alignment test may rely on for the writer side. *)
val section_pe_must : t -> Ref_info.t -> pe:int -> Ccdp_ir.Section.t

(** Must-access region across the whole machine ([Empty] when inexact);
    what the masking kill of the stale analysis may rely on. *)
val section_all_must : t -> Ref_info.t -> Ccdp_ir.Section.t

(** The owner-computes alignment test described above: sound (may return
    [false] for genuinely aligned pairs, never [true] for misaligned
    ones). *)
val aligned : t -> reader:Ref_info.t -> writer:Ref_info.t -> bool

(** Cluster-relaxed alignment for machines with hardware-coherent islands
    of [cluster_pes] PEs (owner-computes modulo the island): every element
    a PE reads of the written region must have been provably written by
    {e some single} PE of the reader's own island — that sibling's writes
    invalidate the reader's copy through the island snoop, so no prefetch
    or bypass obligation is needed. Subsumes {!aligned} (the reader itself
    is a candidate sibling); [cluster_pes <= 1] is exactly {!aligned}. *)
val aligned_cluster :
  t -> cluster_pes:int -> reader:Ref_info.t -> writer:Ref_info.t -> bool

(** Is every element this reference touches owned (local) to the touching
    PE? (VPENTA's access pattern; interesting diagnostically.) *)
val all_local : t -> Ref_info.t -> bool
