(* CI smoke batch: a short fixed-seed differential campaign, exposed as the
   `fuzz-smoke` dune alias. Fails (exit 1) on any numeric mismatch or
   staleness-oracle violation; the full-size campaign lives behind
   `ccdp_cli fuzz`. *)

let () =
  let s = Ccdp_fuzz.Driver.campaign ~seed:1 ~count:100 () in
  Format.printf "%a@." Ccdp_fuzz.Driver.pp_summary s;
  if s.Ccdp_fuzz.Driver.s_failures <> [] then exit 1
