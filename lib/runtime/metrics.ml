open Ccdp_machine

type t = {
  hit_ratio : float;
  prefetch_coverage : float;
  prefetch_timeliness : float;
  prefetch_accuracy : float;
  avg_late_stall : float;
  remote_ops_per_ref : float;
  traffic_words : int;
  coherence_msgs : int;
  load_balance : float;
}

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b

let of_stats (s : Stats.t) ~line_words ~per_pe_cycles =
  let consumed = s.Stats.pf_on_time + s.Stats.pf_late in
  let demand_misses = Stats.total_misses s in
  let cached_reads = s.Stats.hits + demand_misses + consumed in
  let remote_ops = s.Stats.annex_hits + s.Stats.annex_misses in
  let traffic_words =
    (* line-granular fills and prefetches move whole lines; uncached and
       bypass reads move single words; vector prefetches report their own
       word counts; writes write through one word at a time *)
    (demand_misses * line_words)
    + (s.Stats.pf_issued * line_words)
    + s.Stats.pf_vector_words + s.Stats.uncached_local + s.Stats.uncached_remote
    + s.Stats.bypass_reads + s.Stats.writes
  in
  let min_pe, max_pe =
    Array.fold_left
      (fun (mn, mx) c -> (min mn c, max mx c))
      (max_int, 0) per_pe_cycles
  in
  {
    hit_ratio = ratio s.Stats.hits cached_reads;
    prefetch_coverage = ratio consumed (consumed + demand_misses);
    prefetch_timeliness = ratio s.Stats.pf_on_time consumed;
    prefetch_accuracy =
      (let issued_lines =
         s.Stats.pf_issued + (s.Stats.pf_vector_words / max 1 line_words)
         + s.Stats.pf_dropped
       in
       min 1.0 (ratio consumed issued_lines));
    avg_late_stall = ratio s.Stats.pf_late_cycles s.Stats.pf_late;
    remote_ops_per_ref = ratio remote_ops (s.Stats.reads + s.Stats.writes);
    traffic_words;
    (* protocol control traffic: zero by construction outside the
       hardware-coherence modes, whose protocols are the only writers of
       these counters *)
    coherence_msgs = s.Stats.invalidations + s.Stats.upgrades + s.Stats.dir_msgs;
    load_balance = (if max_pe = 0 then 1.0 else ratio min_pe max_pe);
  }

let of_result (r : Interp.result) =
  of_stats r.Interp.stats
    ~line_words:(Memsys.cfg r.Interp.sys).Config.line_words
    ~per_pe_cycles:r.Interp.per_pe_cycles

let pp ppf m =
  Format.fprintf ppf
    "@[<v>hit ratio            %5.1f%%@,\
     prefetch coverage    %5.1f%%@,\
     prefetch timeliness  %5.1f%%@,\
     prefetch accuracy    %5.1f%%@,\
     avg late stall       %6.1f cycles@,\
     remote ops / ref     %5.3f@,\
     traffic              %d words@,\
     coherence msgs       %d@,\
     load balance         %5.2f@]"
    (100. *. m.hit_ratio) (100. *. m.prefetch_coverage)
    (100. *. m.prefetch_timeliness)
    (100. *. m.prefetch_accuracy)
    m.avg_late_stall m.remote_ops_per_ref m.traffic_words m.coherence_msgs
    m.load_balance
