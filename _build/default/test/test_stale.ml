open Ccdp_ir
open Ccdp_analysis
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

let dist = Dist.block_along ~rank:2 ~dim:1

let analyze ?(n_pes = 4) (p : Program.t) =
  let p = Program.inline p in
  let ep = Epoch.partition p.Program.main in
  let infos = Ref_info.collect ep in
  let region = Region.make p ~n_pes in
  (Stale.analyze region infos, infos)

(* helpers to build one-statement epochs *)
let doall_write b arr ?(sched = Stmt.Static_block) rhs =
  let open B.A in
  B.doall b ~sched "j" (bc 0) (bc 15)
    [ B.for_ b "i" (bc 0) (bc 15) [ B.assign b arr [ v "i"; v "j" ] rhs ] ]

let doall_read_into b ~src ~dst ?(sched = Stmt.Static_block) mk_subs =
  let open B.A in
  B.doall b ~sched "j" (bc 0) (bc 14)
    [
      B.for_ b "i" (bc 0)
        (bc 14)
        [ B.assign b dst [ v "i"; v "j" ] (Fexpr.Ref (B.ref_ b src (mk_subs (v "i") (v "j")))) ];
    ]

let fresh_builder () =
  let b = B.create ~name:"st" () in
  B.param b "n" 16;
  B.array_ b "A" [| 16; 16 |] ~dist;
  B.array_ b "O" [| 16; 16 |] ~dist;
  b

let read_verdict (res, infos) src =
  let r =
    List.find
      (fun (i : Ref_info.t) -> (not i.write) && i.ref_.Reference.array_name = src)
      infos
  in
  Stale.verdict res r.Ref_info.ref_.Reference.id

let basic =
  [
    case "halo read after a distributed write is potentially stale" (fun () ->
        let b = fresh_builder () in
        let p =
          B.finish b
            [
              doall_write b "A" (F.const 1.0);
              doall_read_into b ~src:"A" ~dst:"O" (fun i j -> [ i; Affine.add j Affine.one ]);
            ]
        in
        match read_verdict (analyze p) "A" with
        | Stale.Stale { writer_epoch; _ } -> check_int "witness epoch" 0 writer_epoch
        | Stale.Clean -> Alcotest.fail "expected stale");
    case "owner-aligned read is clean" (fun () ->
        let b = fresh_builder () in
        let p =
          B.finish b
            [
              doall_write b "A" (F.const 1.0);
              doall_read_into b ~src:"A" ~dst:"O" (fun i j -> [ i; j ]);
            ]
        in
        check_true "clean" (read_verdict (analyze p) "A" = Stale.Clean));
    case "read of a never-written array is clean" (fun () ->
        let b = fresh_builder () in
        let p =
          B.finish b
            [ doall_read_into b ~src:"A" ~dst:"O" (fun i j -> [ i; Affine.add j Affine.one ]) ]
        in
        check_true "clean" (read_verdict (analyze p) "A" = Stale.Clean));
    case "same-epoch concurrent access is not stale (race-free model)" (fun () ->
        let b = fresh_builder () in
        let open B.A in
        (* read and write A in the same parallel epoch, disjoint elements *)
        let e =
          B.doall b "j" (bc 0) (bc 14)
            [
              B.for_ b "i" (bc 0) (bc 14)
                [
                  B.assign b "O" [ v "i"; v "j" ]
                    (Fexpr.Ref (B.ref_ b "A" [ v "i"; v "j" ]));
                  B.assign b "A" [ v "i"; v "j" ] (F.const 2.0);
                ];
            ]
        in
        let p = B.finish b [ e ] in
        check_true "clean" (read_verdict (analyze p) "A" = Stale.Clean));
    case "cyclic reader of block-written data is stale" (fun () ->
        let b = fresh_builder () in
        let p =
          B.finish b
            [
              doall_write b "A" (F.const 1.0);
              doall_read_into b ~src:"A" ~dst:"O" ~sched:Stmt.Static_cyclic (fun i j -> [ i; j ]);
            ]
        in
        check_true "stale" (read_verdict (analyze p) "A" <> Stale.Clean));
    case "single-PE machines have no staleness" (fun () ->
        let b = fresh_builder () in
        let p =
          B.finish b
            [
              doall_write b "A" (F.const 1.0);
              doall_read_into b ~src:"A" ~dst:"O" (fun i j -> [ i; Affine.add j Affine.one ]);
            ]
        in
        check_true "clean" (read_verdict (analyze ~n_pes:1 p) "A" = Stale.Clean));
  ]

let masking =
  [
    case "a later aligned covering rewrite masks the stale write" (fun () ->
        let b = fresh_builder () in
        let p =
          B.finish b
            [
              (* epoch 0: cyclic write = misaligned with the block reader *)
              doall_write b "A" ~sched:Stmt.Static_cyclic (F.const 1.0);
              (* epoch 1: block rewrite of the full array, aligned *)
              doall_write b "A" (F.const 2.0);
              (* epoch 2: owner-aligned read *)
              doall_read_into b ~src:"A" ~dst:"O" (fun i j -> [ i; j ]);
            ]
        in
        check_true "masked clean" (read_verdict (analyze p) "A" = Stale.Clean));
    case "a partial rewrite does not mask" (fun () ->
        let b = fresh_builder () in
        let open B.A in
        let partial =
          B.doall b "j" (bc 0) (bc 15)
            [
              B.for_ b "i" (bc 0) (bc 7)
                [ B.assign b "A" [ v "i"; v "j" ] (F.const 2.0) ];
            ]
        in
        let p =
          B.finish b
            [
              doall_write b "A" ~sched:Stmt.Static_cyclic (F.const 1.0);
              partial;
              doall_read_into b ~src:"A" ~dst:"O" (fun i j -> [ i; j ]);
            ]
        in
        check_true "still stale" (read_verdict (analyze p) "A" <> Stale.Clean));
  ]

let structure_loops =
  [
    case "back-edge: a write later in the loop body reaches an earlier read" (fun () ->
        let b = fresh_builder () in
        let read_then_write =
          [
            doall_read_into b ~src:"A" ~dst:"O" (fun i j -> [ i; j ]);
            doall_write b "A" ~sched:Stmt.Static_cyclic (F.const 1.0);
          ]
        in
        let open B.A in
        let p = B.finish b [ B.for_ b "t" (bc 1) (bc 3) read_then_write ] in
        check_true "stale via back-edge" (read_verdict (analyze p) "A" <> Stale.Clean));
    case "masking is disabled inside structure loops" (fun () ->
        let b = fresh_builder () in
        let body =
          [
            doall_write b "A" ~sched:Stmt.Static_cyclic (F.const 1.0);
            doall_write b "A" (F.const 2.0);
            doall_read_into b ~src:"A" ~dst:"O" (fun i j -> [ i; j ]);
          ]
        in
        let open B.A in
        let p = B.finish b [ B.for_ b "t" (bc 1) (bc 3) body ] in
        (* across the back edge the cyclic write follows the rewrite *)
        check_true "stale" (read_verdict (analyze p) "A" <> Stale.Clean));
  ]

let special_arrays =
  [
    case "replicated arrays are never stale, writes draw a warning" (fun () ->
        let b = B.create ~name:"st" () in
        B.param b "n" 16;
        B.array_ b "Rp" [| 16; 16 |] ~dist:Dist.replicated;
        B.array_ b "O" [| 16; 16 |] ~dist;
        let open B.A in
        let p =
          B.finish b
            [
              B.doall b "j" (bc 0) (bc 15)
                [ B.for_ b "i" (bc 0) (bc 15) [ B.assign b "Rp" [ v "i"; v "j" ] (F.const 1.0) ] ];
              doall_read_into b ~src:"Rp" ~dst:"O" (fun i j -> [ i; j ]);
            ]
        in
        let res, infos = analyze p in
        check_true "clean" (read_verdict (res, infos) "Rp" = Stale.Clean);
        check_true "warned" (res.Stale.diags <> []));
    case "private arrays are ignored" (fun () ->
        let b = B.create ~name:"st" () in
        B.param b "n" 16;
        B.array_ b "Pv" [| 16; 16 |] ~shared:false;
        B.array_ b "O" [| 16; 16 |] ~dist;
        let p =
          B.finish b
            [ doall_read_into b ~src:"Pv" ~dst:"O" (fun i j -> [ i; j ]) ]
        in
        check_true "clean" (read_verdict (analyze p) "Pv" = Stale.Clean));
  ]

let may_must_regressions =
  [
    case "a dynamic writer never aligns (soundness regression)" (fun () ->
        let b = fresh_builder () in
        let p =
          B.finish b
            [
              doall_write b "A" ~sched:(Stmt.Dynamic 2) (F.const 1.0);
              doall_read_into b ~src:"A" ~dst:"O" (fun i j -> [ i; j ]);
            ]
        in
        check_true "stale" (read_verdict (analyze p) "A" <> Stale.Clean));
    case "a coupled-subscript rewrite cannot mask (soundness regression)"
      (fun () ->
        let b = fresh_builder () in
        let open B.A in
        (* K writes only the diagonal; its may-hull covers the array but its
           must-set is empty, so the older cyclic write stays exposed *)
        let diag =
          B.doall b "j" (bc 0) (bc 15)
            [ B.assign b "A" [ v "j"; v "j" ] (F.const 2.0) ]
        in
        let p =
          B.finish b
            [
              doall_write b "A" ~sched:Stmt.Static_cyclic (F.const 1.0);
              diag;
              doall_read_into b ~src:"A" ~dst:"O" (fun i j -> [ i; j ]);
            ]
        in
        check_true "still stale" (read_verdict (analyze p) "A" <> Stale.Clean));
  ]

(* regression: seed-1005 fuzz counterexample — with row-distributed arrays
   (3-word chunks misaligned with 4-word lines) a covered reference's last
   element lands in a line its leader never stages; the runtime's
   fresh-only covered reads must turn that into a clean demand miss *)
let covered_overrun =
  [
    case "covered overrun at misaligned chunk boundaries stays coherent"
      (fun () ->
        let module B = Builder in
        let module F = Builder.F in
        let n = 12 in
        let b = B.create ~name:"cex" () in
        B.param b "n" n;
        let dist0 = Dist.block_along ~rank:2 ~dim:0 in
        List.iter (fun a -> B.array_ b a [| n; n |] ~dist:dist0) [ "A0"; "A1"; "A2" ];
        let open B.A in
        let rd = B.rd b in
        let init =
          B.doall b "j" (bc 0) (bc 11)
            [
              B.for_ b "i" (bc 0) (bc 11)
                [
                  B.assign b "A0" [ v "i"; v "j" ] F.(F.iv "i" * const 0.25);
                  B.assign b "A1" [ v "i"; v "j" ] F.(F.iv "i" * const 0.375);
                  B.assign b "A2" [ v "i"; v "j" ] F.(F.iv "i" * const 0.5);
                ];
            ]
        in
        let e1 =
          B.doall b ~sched:Stmt.Static_cyclic "j" (bc 1) (bc 10)
            [
              B.for_ b "i" (bc 1) (bc 10)
                [
                  B.assign b "A1" [ v "i"; v "j" ]
                    F.((const 0.5 + rd "A0" [ v "i" -! c 1; v "j" ]) * const 0.125);
                  B.assign b "A2" [ v "i"; v "j" ]
                    F.((const 0.5 + rd "A0" [ v "i"; v "j" ]) * const 0.125);
                ];
            ]
        in
        let e2 =
          B.doall b "j" (bc 1) (bc 10)
            [
              B.for_ b "i" (bc 1) (bc 10)
                [
                  B.assign b "A0" [ v "i"; v "j" ]
                    F.(
                      ((const 0.5 + rd "A1" [ v "i" -! c 1; v "j" -! c 1 ])
                      + rd "A2" [ v "i"; v "j" ])
                      * const 0.125);
                ];
            ]
        in
        let p = B.finish b [ init; B.for_ b "t" (bc 1) (bc 2) [ e1; e2 ] ] in
        let cfg = Ccdp_machine.Config.t3d ~n_pes:4 in
        let tuning =
          { Ccdp_analysis.Schedule.default_tuning with
            Ccdp_analysis.Schedule.allow_vpg = false }
        in
        let c = Ccdp_core.Pipeline.compile cfg ~tuning p in
        let r =
          Ccdp_runtime.Interp.run cfg c.Ccdp_core.Pipeline.program
            ~plan:c.Ccdp_core.Pipeline.plan ~mode:Ccdp_runtime.Memsys.Ccdp ()
        in
        let v =
          Ccdp_runtime.Verify.against_sequential p ~init:(fun _ -> ()) r
        in
        check_true "coherent" v.Ccdp_runtime.Verify.ok);
  ]

let reporting =
  [
    case "stale_ids is sorted and matches verdicts" (fun () ->
        let b = fresh_builder () in
        let p =
          B.finish b
            [
              doall_write b "A" (F.const 1.0);
              doall_read_into b ~src:"A" ~dst:"O" (fun i j -> [ i; Affine.add j Affine.one ]);
            ]
        in
        let res, _ = analyze p in
        let ids = Stale.stale_ids res in
        check_true "sorted" (List.sort compare ids = ids);
        check_int "n_stale matches" res.Stale.n_stale (List.length ids));
  ]

let () =
  Alcotest.run "stale"
    [
      ("basic", basic);
      ("masking", masking);
      ("structure-loops", structure_loops);
      ("special-arrays", special_arrays);
      ("may-must-regressions", may_must_regressions);
      ("covered-overrun", covered_overrun);
      ("reporting", reporting);
    ]
