open Ccdp_ir
open Ccdp_test_support.Tutil

let i = Affine.var "i"
let j = Affine.var "j"

let construction =
  [
    case "const part of a constant" (fun () ->
        check_int "const" 7 (Affine.const_part (Affine.const 7)));
    case "zero is constant 0" (fun () ->
        check_int "zero" 0 (Affine.const_part Affine.zero);
        check_true "is_const" (Affine.is_const Affine.zero));
    case "var has coefficient 1" (fun () -> check_int "coeff" 1 (Affine.coeff i "i"));
    case "term builds scaled var" (fun () ->
        check_int "coeff" 5 (Affine.coeff (Affine.term 5 "k") "k"));
    case "of_terms merges repeated variables" (fun () ->
        let e = Affine.of_terms 1 [ ("i", 2); ("i", 3); ("j", 1) ] in
        check_int "i coeff" 5 (Affine.coeff e "i");
        check_int "j coeff" 1 (Affine.coeff e "j");
        check_int "const" 1 (Affine.const_part e));
    case "of_terms drops zero coefficients" (fun () ->
        let e = Affine.of_terms 0 [ ("i", 2); ("i", -2) ] in
        check_true "const after cancel" (Affine.is_const e));
    case "vars are sorted" (fun () ->
        let e = Affine.of_terms 0 [ ("z", 1); ("a", 1); ("m", 1) ] in
        Alcotest.(check (list string)) "sorted" [ "a"; "m"; "z" ] (Affine.vars e));
    case "to_const_opt on non-constant is None" (fun () ->
        check_true "none" (Affine.to_const_opt i = None));
    case "pretty-printer round trip smoke" (fun () ->
        let e = Affine.of_terms (-2) [ ("i", 1); ("j", -3) ] in
        check_true "nonempty" (String.length (Affine.to_string e) > 0));
  ]

let arithmetic =
  [
    case "add combines terms and constants" (fun () ->
        let e =
          Affine.add (Affine.of_terms 3 [ ("i", 2) ]) (Affine.of_terms 4 [ ("i", 1); ("j", 5) ])
        in
        check_int "const" 7 (Affine.const_part e);
        check_int "i" 3 (Affine.coeff e "i");
        check_int "j" 5 (Affine.coeff e "j"));
    case "sub cancels" (fun () ->
        let e = Affine.sub (Affine.add i j) i in
        check_true "equal j" (Affine.equal e j));
    case "neg flips everything" (fun () ->
        let e = Affine.neg (Affine.of_terms 2 [ ("i", 3) ]) in
        check_int "const" (-2) (Affine.const_part e);
        check_int "i" (-3) (Affine.coeff e "i"));
    case "scale by zero is zero" (fun () ->
        check_true "zero" (Affine.equal Affine.zero (Affine.scale 0 (Affine.add i j))));
    case "scale distributes" (fun () ->
        let e = Affine.scale 3 (Affine.of_terms 1 [ ("i", 2) ]) in
        check_int "const" 3 (Affine.const_part e);
        check_int "i" 6 (Affine.coeff e "i"));
  ]

let substitution =
  [
    case "subst replaces a variable by an expression" (fun () ->
        let e = Affine.add i (Affine.scale 2 j) in
        let e' = Affine.subst e "i" (Affine.add j Affine.one) in
        check_int "j" 3 (Affine.coeff e' "j");
        check_int "const" 1 (Affine.const_part e'));
    case "subst of absent variable is identity" (fun () ->
        check_true "same" (Affine.equal i (Affine.subst i "k" (Affine.const 9))));
    case "subst_env applies all bindings" (fun () ->
        let e = Affine.add i j in
        let e' = Affine.subst_env e [ ("i", Affine.const 2); ("j", Affine.const 3) ] in
        check_int "value" 5 (Affine.const_part e');
        check_true "const" (Affine.is_const e'));
    case "eval uses the environment" (fun () ->
        let e = Affine.of_terms 1 [ ("i", 2); ("j", -1) ] in
        check_int "eval" (1 + 10 - 4) (Affine.eval e (function "i" -> 5 | _ -> 4)));
    case "eval_alist returns None on unbound variable" (fun () ->
        check_true "none" (Affine.eval_alist i [ ("j", 1) ] = None));
  ]

let uniform =
  [
    case "uniformly generated: same terms, different constant" (fun () ->
        check_true "ug"
          (Affine.uniformly_generated
             (Affine.add i (Affine.const 1))
             (Affine.add i (Affine.const 7))));
    case "not uniformly generated across coefficients" (fun () ->
        check_false "not ug" (Affine.uniformly_generated i (Affine.scale 2 i)));
    case "offset_between reports constant delta" (fun () ->
        match
          Affine.offset_between (Affine.add i (Affine.const 1)) (Affine.add i (Affine.const 4))
        with
        | Some d -> check_int "delta" 3 d
        | None -> Alcotest.fail "expected Some");
    case "offset_between is None across shapes" (fun () ->
        check_true "none" (Affine.offset_between i j = None));
  ]

let gen_affine =
  QCheck.make
    ~print:(fun e -> Affine.to_string e)
    QCheck.Gen.(
      let* c = int_range (-20) 20 in
      let* ci = int_range (-5) 5 in
      let* cj = int_range (-5) 5 in
      return (Affine.of_terms c [ ("i", ci); ("j", cj) ]))

let gen_env = QCheck.(pair (int_range (-10) 10) (int_range (-10) 10))

let props =
  [
    qcheck "eval is a homomorphism for add"
      QCheck.(triple gen_affine gen_affine gen_env)
      (fun (a, b, (vi, vj)) ->
        let look = function "i" -> vi | _ -> vj in
        Affine.eval (Affine.add a b) look = Affine.eval a look + Affine.eval b look);
    qcheck "eval is a homomorphism for scale"
      QCheck.(triple (int_range (-4) 4) gen_affine gen_env)
      (fun (k, a, (vi, vj)) ->
        let look = function "i" -> vi | _ -> vj in
        Affine.eval (Affine.scale k a) look = k * Affine.eval a look);
    qcheck "add is commutative" (QCheck.pair gen_affine gen_affine) (fun (a, b) ->
        Affine.equal (Affine.add a b) (Affine.add b a));
    qcheck "subst then eval = eval with substituted binding"
      QCheck.(triple gen_affine gen_affine gen_env)
      (fun (a, by, (vi, vj)) ->
        let look = function "i" -> vi | _ -> vj in
        let direct = Affine.eval (Affine.subst a "i" by) look in
        let expected =
          Affine.eval a (function "i" -> Affine.eval by look | v -> look v)
        in
        direct = expected);
    qcheck "sub self is zero" gen_affine (fun a ->
        Affine.equal Affine.zero (Affine.sub a a));
    qcheck "uniformly_generated after adding constants"
      (QCheck.pair gen_affine (QCheck.int_range (-9) 9))
      (fun (a, k) -> Affine.uniformly_generated a (Affine.add a (Affine.const k)));
  ]

let () =
  Alcotest.run "affine"
    [
      ("construction", construction);
      ("arithmetic", arithmetic);
      ("substitution", substitution);
      ("uniform-generation", uniform);
      ("properties", props);
    ]
