(** Bounded prefetch queue (T3D: 16 words).

    Issued cache-line prefetches park here until the demand reference
    consumes them. Occupancy is counted in words; an issue that would
    overflow the capacity is {e dropped} — the paper then requires the
    demand reference to fall back to a bypass-cache fetch. Entries that
    survive to the end of an epoch are drained and counted as unused. *)

type t

type entry = { line : int; words : int; ready : int (** arrival cycle *) }

val create : capacity:int -> t
val capacity : t -> int
val occupancy : t -> int

(** [try_insert t ~line ~words ~ready] enqueues unless it would overflow or
    the line is already pending; returns [false] on overflow (the caller
    counts a drop). Re-issuing a pending line is a no-op returning [true]. *)
val try_insert : t -> line:int -> words:int -> ready:int -> bool

(** Pending arrival time of a line. *)
val find : t -> line:int -> int option

(** Remove a consumed line. *)
val remove : t -> line:int -> unit

(** Drop every pending entry, returning how many were discarded. *)
val clear : t -> int

val entries : t -> entry list
