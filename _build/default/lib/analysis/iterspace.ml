open Ccdp_ir

type env = (string * (int * int * int)) list

let bound_range b env =
  match b with
  | Bound.Unknown | Bound.Opaque _ -> None
  | Bound.Known e -> (
      match Section.range_of_affine e env with
      | Some d -> Some (d.Section.lo, d.Section.hi)
      | None -> None)

let bound_const b env =
  match bound_range b env with
  | Some (lo, hi) when lo = hi -> Some lo
  | Some _ | None -> None

let of_loops ~params loops =
  let base = List.map (fun (v, x) -> (v, (x, x, 1))) params in
  List.fold_left
    (fun env (l : Stmt.loop) ->
      match (bound_range l.lo env, bound_range l.hi env) with
      | Some (lo_min, _), Some (_, hi_max) when lo_min <= hi_max ->
          env @ [ (l.var, (lo_min, hi_max, l.step)) ]
      | _ -> env)
    base loops

let trip_count (l : Stmt.loop) env =
  match (bound_range l.lo env, bound_range l.hi env) with
  | Some (lo_min, _), Some (_, hi_max) ->
      Some (Ccdp_craft.Loop_sched.trip_count ~lo:lo_min ~hi:hi_max ~step:l.step)
  | _ -> None

let restrict env (l : Stmt.loop) ~by =
  (l.var, by) :: List.filter (fun (v, _) -> v <> l.var) env

type restriction = Idle | Exact of env | Widened of env

let restrict_pe_info env (l : Stmt.loop) ~n_pes ~pe =
  match l.kind with
  | Stmt.Serial -> Exact env
  | Stmt.Doall sched -> (
      match sched with
      | Stmt.Dynamic _ -> Widened env
      | Stmt.Static_block | Stmt.Static_aligned _ | Stmt.Static_cyclic -> (
          match (bound_const l.lo env, bound_const l.hi env) with
          | Some lo, Some hi -> (
              match
                Ccdp_craft.Loop_sched.triplet_of_pe sched ~n_pes ~pe ~lo ~hi
                  ~step:l.step
              with
              | Some t -> Exact (restrict env l ~by:t)
              | None -> Idle)
          | _ -> Widened env))

let restrict_pe env l ~n_pes ~pe =
  match restrict_pe_info env l ~n_pes ~pe with
  | Idle -> None
  | Exact e | Widened e -> Some e

let pin_outer env ~inner loops =
  List.fold_left
    (fun env (l : Stmt.loop) ->
      if l.Stmt.loop_id = inner.Stmt.loop_id then env
      else
        match List.assoc_opt l.var env with
        | Some (lo, _, _) -> restrict env l ~by:(lo, lo, 1)
        | None -> env)
    env loops
