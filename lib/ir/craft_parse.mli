(** CRAFT-dialect text front end.

    Parses the Fortran-flavoured surface syntax that
    [Ccdp_core.Craft_emit] prints, so workloads can be authored as plain
    text files instead of OCaml builder code:

    {v
      PROGRAM DEMO
      PARAMETER (N = 32)
      REAL*8 A(32, 32)
      CDIR$ SHARED A(:, :BLOCK)
      REAL*8 T(32)
      CDIR$ DOSHARED (J) !ALIGNED(32)
      DO J = 1, 30
        DO I = 1, 30
          ACC = (A(i - 1, j) + A(i + 1, j))
          A(i, j) = (ACC*0.25)
        ENDDO
      ENDDO
      END
    v}

    Supported: [PARAMETER], [REAL*8] declarations, [CDIR$ SHARED] /
    [CDIR$ REPLICATED] distribution directives, [CDIR$ DOSHARED] with an
    optional [!BLOCK]/[!ALIGNED(n)]/[!CYCLIC]/[!DYNAMIC(c)] schedule
    comment binding to the next [DO], serial [DO]/[ENDDO] with affine
    bounds (a [!runtime] suffix makes the bound opaque to the analyses),
    [IF]/[ELSE]/[ENDIF] with [.LT. .LE. .GT. .GE. .EQ. .NE.] comparisons,
    array and scalar assignments, [MIN]/[MAX]/[SQRT]/[ABS], and comment
    lines starting with [C]. Identifiers are case-insensitive (lowered
    internally); an identifier in an expression is an induction variable or
    parameter when one is in scope, a task-private scalar otherwise.

    Emit and parse round-trip: parsing [Craft_emit]'s output of a compiled
    (call-free) program reproduces a structurally identical program, which
    the test suite checks by comparing analysis results. *)

exception Error of int * int * string
(** [(line, column, message)], both 1-based; column 0 marks a whole-line
    structural failure (e.g. a [DO] without its [ENDDO]), where no single
    token is to blame. *)

(** Parse a whole program from source text.
    @raise Error on malformed input (with the line and column of the
    offending token). *)
val program : string -> Program.t

(** Parse the contents of a file. *)
val file : string -> Program.t
