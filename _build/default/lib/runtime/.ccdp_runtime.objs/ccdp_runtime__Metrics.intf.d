lib/runtime/metrics.mli: Format Interp
