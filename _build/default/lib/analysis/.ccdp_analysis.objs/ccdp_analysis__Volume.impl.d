lib/analysis/volume.ml: Array_decl Ccdp_ir Ccdp_machine Iterspace List Reference Stmt
