open Ccdp_ir
open Ccdp_analysis

(* Independent may-stale derivation.

   Stale.analyze answers "is this read stale?" per read, searching the
   global write list under a precedence predicate built from each
   reference's [outer_serial] stack. This pass re-derives the same facts
   the other way around: a single forward walk of the epoch *tree*
   carrying the set of writes whose stale cached copies may exist, with
   loop back-edges realized by re-visiting a structure loop's body once
   more against the completed write set. Agreement between the two is the
   certifier's cross-check; by construction this derivation collects
   every witness write, not just the first one found. *)

type wentry = { w : Ref_info.t; straight : bool }

type t = {
  witnesses : (int, int list) Hashtbl.t;
      (** tracked read ref id -> witness write ref ids (sorted; [] = clean) *)
}

let derive region (epochs : Epoch.t) infos =
  let tracked name =
    let d = Region.decl region name in
    d.Array_decl.shared && d.Array_decl.dist <> Dist.Replicated
  in
  let reads_of = Hashtbl.create 16 and writes_of = Hashtbl.create 16 in
  let push tbl k v =
    let prev = match Hashtbl.find_opt tbl k with Some l -> l | None -> [] in
    Hashtbl.replace tbl k (prev @ [ v ])
  in
  List.iter
    (fun (i : Ref_info.t) ->
      if tracked i.ref_.Reference.array_name then
        push (if i.write then writes_of else reads_of) i.Ref_info.epoch i)
    infos;
  let aligned_memo = Hashtbl.create 64 in
  let aligned ~reader ~writer =
    let key =
      (reader.Ref_info.ref_.Reference.id, writer.Ref_info.ref_.Reference.id)
    in
    match Hashtbl.find_opt aligned_memo key with
    | Some v -> v
    | None ->
        let v = Region.aligned region ~reader ~writer in
        Hashtbl.replace aligned_memo key v;
        v
  in
  let witnesses = Hashtbl.create 32 in
  let pending : wentry list ref = ref [] in
  (* the same masking kill as the stale analysis: only straight-line epoch
     sequences, where no back-edge can re-expose the masked write *)
  let masked ~(r : Ref_info.t) ~(e : wentry) exposed ~r_straight =
    r_straight && e.straight
    && List.exists
         (fun k ->
           k.straight
           && k.w.Ref_info.epoch > e.w.Ref_info.epoch
           && k.w.Ref_info.epoch < r.Ref_info.epoch
           && aligned ~reader:r ~writer:k.w
           && Section.contains (Region.section_all_must region k.w) exposed)
         !pending
  in
  let visit_reads eid ~straight =
    match Hashtbl.find_opt reads_of eid with
    | None -> ()
    | Some reads ->
        List.iter
          (fun (r : Ref_info.t) ->
            let id = r.ref_.Reference.id in
            if not (Hashtbl.mem witnesses id) then
              Hashtbl.replace witnesses id [];
            let r_section = Region.section_all region r in
            List.iter
              (fun e ->
                if
                  String.equal e.w.Ref_info.ref_.Reference.array_name
                    r.ref_.Reference.array_name
                then
                  let exposed =
                    Section.inter r_section (Region.section_all region e.w)
                  in
                  if
                    (not (Section.is_empty exposed))
                    && (not (aligned ~reader:r ~writer:e.w))
                    && not (masked ~r ~e exposed ~r_straight:straight)
                  then
                    let wid = e.w.Ref_info.ref_.Reference.id in
                    let prev = Hashtbl.find witnesses id in
                    if not (List.mem wid prev) then
                      Hashtbl.replace witnesses id (prev @ [ wid ]))
              !pending)
          reads
  in
  let visit_writes eid ~straight =
    match Hashtbl.find_opt writes_of eid with
    | None -> ()
    | Some ws ->
        List.iter
          (fun w ->
            if
              not
                (List.exists
                   (fun e ->
                     e.w.Ref_info.ref_.Reference.id = w.Ref_info.ref_.Reference.id)
                   !pending)
            then pending := !pending @ [ { w; straight } ])
          ws
  in
  (* [record] is false on a loop's second visit: reads re-check against the
     now-complete write set (the back-edge), writes are already recorded *)
  let rec walk ~straight ~record nodes =
    List.iter
      (fun node ->
        match node with
        | Epoch.E (eid, _) ->
            visit_reads eid ~straight;
            if record then visit_writes eid ~straight
        | Epoch.Loop (_, body) ->
            walk ~straight:false ~record body;
            walk ~straight:false ~record:false body
        | Epoch.Branch (_, t, e) ->
            walk ~straight ~record t;
            walk ~straight ~record e)
      nodes
  in
  walk ~straight:true ~record:true epochs.Epoch.nodes;
  let sorted = Hashtbl.create (Hashtbl.length witnesses) in
  Hashtbl.iter
    (fun id ws -> Hashtbl.replace sorted id (List.sort compare ws))
    witnesses;
  { witnesses = sorted }

let witnesses_of t id =
  match Hashtbl.find_opt t.witnesses id with Some l -> l | None -> []

let is_stale t id = witnesses_of t id <> []

let stale_ids t =
  Hashtbl.fold
    (fun id ws acc -> if ws = [] then acc else id :: acc)
    t.witnesses []
  |> List.sort compare
