(* Golden pin of the hardware-coherence rivals sweep: the spec four at a
   small fixed size (n=16, iters=1, 16 PEs) across every rival mode and
   both distance-modelled machines. The dune rule diffs this against
   golden_rivals.expected — any change to the MSI/MESI/directory
   protocols, the snoop-bus backlog model, or the rivals formatter fails
   the diff and must be acknowledged with dune promote. Rows are computed
   at -j4, re-proving the sweep's determinism against the sequentially
   promoted expectation. *)

open Ccdp_core
open Ccdp_workloads

let () =
  let ws = Suite.spec_four ~n:16 ~iters:1 () in
  let rows = Experiment.rivals_rows ~n_pes:16 ~jobs:4 ws in
  let ppf = Format.std_formatter in
  Experiment.print_tbl ppf (Experiment.rivals_table rows);
  Format.pp_print_flush ppf ()
