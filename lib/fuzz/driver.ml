module Config = Ccdp_machine.Config
module Pipeline = Ccdp_core.Pipeline
module Interp = Ccdp_runtime.Interp
module Memsys = Ccdp_runtime.Memsys
module Verify = Ccdp_runtime.Verify
module Schedule = Ccdp_analysis.Schedule
module Stale = Ccdp_analysis.Stale
module Annot = Ccdp_analysis.Annot
module Check = Ccdp_check.Check
module Diag = Ccdp_check.Diag

type failure_kind = Mismatch | Oracle | Static_escape | Static_spurious

type failure = {
  f_index : int;
  f_variant : string;
  f_kind : failure_kind;
  f_detail : string;
  f_original : Gen.desc;
  f_shrunk : Gen.desc;
  f_reproducer : string option;
}

type summary = {
  s_programs : int;
  s_runs : int;
  s_oracle_checks : int;
  s_static_checks : int;
  s_static_caught : int;
  s_static_escapes : int;
  s_failures : failure list;
}

(* BASE runs with an empty plan and uncached shared data; the CCDP
   variants compile with one scheduling technique allowed (the others
   fall back through the demotion chain, so each plan is still total). *)
type variant = {
  vname : string;
  mode : Memsys.mode;
  tuning : Schedule.tuning option;
}

let variants =
  let t = Schedule.default_tuning in
  [
    { vname = "BASE"; mode = Memsys.Base; tuning = None };
    { vname = "CCDP/all"; mode = Memsys.Ccdp; tuning = Some t };
    {
      vname = "CCDP/vpg";
      mode = Memsys.Ccdp;
      tuning = Some { t with Schedule.allow_sp = false; allow_mbp = false };
    };
    {
      vname = "CCDP/sp";
      mode = Memsys.Ccdp;
      tuning = Some { t with Schedule.allow_vpg = false; allow_mbp = false };
    };
    {
      vname = "CCDP/mbp";
      mode = Memsys.Ccdp;
      tuning = Some { t with Schedule.allow_vpg = false; allow_sp = false };
    };
    (* hardware-coherence rivals: plan-free like BASE, the protocol itself
       carries the whole coherence obligation *)
    { vname = "MSI"; mode = Memsys.Msi; tuning = None };
    { vname = "MESI"; mode = Memsys.Mesi; tuning = None };
    { vname = "DIR"; mode = Memsys.Directory; tuning = None };
    (* hardware-coherent islands under a cluster-aware CCDP plan: the
       machine is re-islanded (see [cluster_cfg]) and the compile runs
       with the cluster discharge enabled *)
    { vname = "CLU"; mode = Memsys.Clustered; tuning = Some t };
  ]

let variant_names = List.map (fun v -> v.vname) variants

let cfg_of (d : Gen.desc) =
  Config.of_kind d.Gen.net ~n_pes:d.Gen.n_pes

(* The clustered variant re-islands the generated machine: two islands
   when the width divides, flat singleton islands otherwise (odd widths
   still exercise the protocol — every remote-homed write then crosses a
   cluster boundary). *)
let cluster_cfg cfg =
  let n = cfg.Config.n_pes in
  let cp = if n > 1 && n mod 2 = 0 then n / 2 else 1 in
  { cfg with Config.cluster_pes = cp }

let drop_stale_mark k (r : Stale.result) =
  match List.sort compare (Stale.stale_ids r) with
  | [] -> r
  | ids ->
      let n = List.length ids in
      let victim = List.nth ids (((k mod n) + n) mod n) in
      let verdicts = Hashtbl.copy r.Stale.verdicts in
      Hashtbl.replace verdicts victim Stale.Clean;
      { r with Stale.verdicts; n_stale = r.Stale.n_stale - 1 }

let run_variant ?mutate_stale ?pool cfg (d : Gen.desc) program v =
  let cfg, cluster_coherent =
    match v.mode with
    | Memsys.Clustered -> (cluster_cfg cfg, true)
    | _ -> (cfg, false)
  in
  match v.tuning with
  | None ->
      Interp.run cfg ~oracle:true ?pool program ~plan:(Annot.empty ())
        ~mode:v.mode ()
  | Some tuning ->
      let compiled =
        Pipeline.compile cfg ~tuning ~prefetch_clean:d.Gen.pclean ?mutate_stale
          ~cluster_coherent program
      in
      Interp.run cfg ~oracle:true ?pool compiled.Pipeline.program
        ~plan:compiled.Pipeline.plan ~mode:v.mode ()

(* The static leg of the differential: certify the default-tuning compile
   with the coherence verifier. [st_caught]/[st_escape] record whether an
   injected stale-analysis fault actually changed the stale set and whether
   the certifier flagged it; [st_failure] is the reportable finding when
   the static and dynamic verdicts disagree in either direction. *)
type static_leg = {
  st_caught : bool;
  st_escape : bool;
  st_failure : (string * failure_kind * string) option;
}

(* Is the read's coherence obligation discharged by the plan itself —
   prefetched as a lead, covered by a lead carrying an operation whose
   vector group includes it, or bypassed? Mirrors the certifier's coverage
   chain but consults only the plan: an injected fault whose victim is
   still discharged (prefetch-clean compiles prefetch clean reads too)
   leaves the plan sound, and silence is the correct static verdict. *)
let discharged (plan : Annot.plan) id =
  match Annot.cls_of plan id with
  | Annot.Bypass -> true
  | Annot.Lead -> Annot.op_of plan id <> None
  | Annot.Covered lead -> (
      match (Annot.cls_of plan lead, Annot.op_of plan lead) with
      | Annot.Lead, Some (Annot.Vector { group; _ }) -> List.mem id group
      | Annot.Lead, Some (Annot.Pipelined _ | Annot.Back _) -> true
      | _, _ -> false)
  | Annot.Normal -> false

let static_certify ?mutate_stale cfg (d : Gen.desc) program =
  let base = Pipeline.compile cfg ~prefetch_clean:d.Gen.pclean program in
  let compiled, victims =
    match mutate_stale with
    | None -> (base, [])
    | Some f ->
        let before = List.sort compare (Stale.stale_ids base.Pipeline.stale) in
        let after =
          List.sort compare (Stale.stale_ids (f base.Pipeline.stale))
        in
        let t =
          Pipeline.compile cfg ~prefetch_clean:d.Gen.pclean ?mutate_stale
            program
        in
        (t, List.filter (fun id -> not (List.mem id after)) before)
  in
  let errors = Check.errors (Check.certify compiled) in
  (* the fault is dangerous only when some victim read's obligation is no
     longer discharged by the mutated plan *)
  let dangerous =
    List.exists
      (fun id -> not (discharged compiled.Pipeline.plan id))
      victims
  in
  match (errors, dangerous) with
  | [], true ->
      {
        st_caught = false;
        st_escape = true;
        st_failure =
          Some
            ( "STATIC",
              Static_escape,
              "injected stale-analysis fault left a read uncovered but \
               raised no static diagnostic" );
      }
  | [], false -> { st_caught = false; st_escape = false; st_failure = None }
  | _ :: _, true -> { st_caught = true; st_escape = false; st_failure = None }
  | errs, false ->
      if victims <> [] then
        (* fault injected and flagged, though its victims stayed covered:
           the diagnostics come from knock-on plan damage, still a catch *)
        { st_caught = true; st_escape = false; st_failure = None }
      else
        {
          st_caught = false;
          st_escape = false;
          st_failure =
            Some
              ( "STATIC",
                Static_spurious,
                String.concat "\n" (List.map Diag.to_string errs) );
        }

(* One description through the sequential baseline plus every variant;
   returns (variant runs, oracle assertions, static leg, first dynamic
   failure). The oracle is consulted before the numeric comparison: a stale
   hit whose value happens to coincide with the fresh one is still a
   bug. *)
let check_full ?mutate_stale ?pool (d : Gen.desc) =
  let cfg = cfg_of d in
  let program = Gen.build d in
  let seq =
    Interp.run
      { cfg with Config.n_pes = 1; Config.cluster_pes = 1 }
      program ~plan:(Annot.empty ()) ~mode:Memsys.Seq ()
  in
  let runs = ref 0 and checks = ref 0 in
  let rec loop = function
    | [] -> None
    | v :: rest -> (
        let r = run_variant ?mutate_stale ?pool cfg d program v in
        incr runs;
        checks := !checks + Memsys.oracle_checked r.Interp.sys;
        let nviol = Memsys.oracle_violation_count r.Interp.sys in
        if nviol > 0 then
          let detail =
            Format.asprintf "@[<v>%d stale hit(s); first witnesses:@,%a@]"
              nviol
              (Format.pp_print_list Memsys.pp_violation)
              (Memsys.oracle_violations r.Interp.sys)
          in
          Some (v.vname, Oracle, detail)
        else
          let rep =
            Verify.compare_states ~expected:seq.Interp.sys ~got:r.Interp.sys
              program
          in
          if not rep.Verify.ok then
            Some (v.vname, Mismatch, Format.asprintf "%a" Verify.pp_report rep)
          else loop rest)
  in
  let failure = loop variants in
  let static = static_certify ?mutate_stale cfg d program in
  (!runs, !checks, static, failure)

(* Dynamic failures take reporting precedence — they carry runtime
   witnesses; the static counters still record escapes the oracle happened
   to catch first. *)
let first_failure static = function
  | Some _ as f -> f
  | None -> static.st_failure

let check_desc ?mutate_stale d =
  let _, _, static, failure = check_full ?mutate_stale d in
  first_failure static failure

let reproducer_text (d : Gen.desc) =
  let compiled =
    Pipeline.compile (cfg_of d) ~prefetch_clean:d.Gen.pclean (Gen.build d)
  in
  Ccdp_core.Craft_emit.to_string compiled

(* Program generation stays a single sequential PRNG walk (so a seed
   names the same program list for every job count); the expensive part —
   compiling and running every variant of every program — is sharded over
   the pool in batches. Results are folded in index order, so the summary
   (and the stderr progress trace) is identical to the sequential run.
   Shrinking happens on the calling domain: failures are rare, and the
   shrinker's own runs are cheap one-program checks. *)
let campaign ?jobs ?shards ?mutate_stale ?dump_dir ?(progress = fun _ -> ())
    ~seed ~count () =
  let rng = Random.State.make [| seed; 0x51ab |] in
  let descs = List.init count (fun _ -> Gen.generate rng) in
  let runs = ref 0 and checks = ref 0 and failures = ref [] in
  let caught = ref 0 and escapes = ref 0 in
  let consume i (d, (r, c, static, dyn_failure)) =
    runs := !runs + r;
    checks := !checks + c;
    if static.st_caught then incr caught;
    if static.st_escape then incr escapes;
    (match first_failure static dyn_failure with
    | None -> ()
    | Some (vname, kind, detail) ->
        let still_fails d' = Option.is_some (check_desc ?mutate_stale d') in
        let shrunk = Shrink.minimize d ~still_fails in
        (* the shrinker only proposes validated candidates, but a hand-built
           starting description may itself be the problem: never report an
           invalid reproducer *)
        let shrunk =
          match Gen.validate shrunk with Ok () -> shrunk | Error _ -> d
        in
        let reproducer =
          match dump_dir with
          | None -> None
          | Some dir ->
              (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
              let path =
                Filename.concat dir (Printf.sprintf "fuzz_%d_%d.craft" seed i)
              in
              let oc = open_out path in
              output_string oc (reproducer_text shrunk);
              close_out oc;
              Some path
        in
        failures :=
          {
            f_index = i;
            f_variant = vname;
            f_kind = kind;
            f_detail = detail;
            f_original = d;
            f_shrunk = shrunk;
            f_reproducer = reproducer;
          }
          :: !failures);
    progress (i + 1)
  in
  let run_all ?inner jobs =
    Ccdp_exec.Pool.with_pool ?jobs (fun pool ->
        (* batches keep the progress callback responsive without a
           cross-domain channel: check in parallel, fold sequentially *)
        let batch = max 1 (8 * Ccdp_exec.Pool.jobs pool) in
        let rec go start ds =
          match ds with
          | [] -> ()
          | _ ->
              let rec split k = function
                | d :: rest when k > 0 ->
                    let taken, rest = split (k - 1) rest in
                    (d :: taken, rest)
                | rest -> ([], rest)
              in
              let taken, rest = split batch ds in
              let checked =
                Ccdp_exec.Pool.map_runs pool
                  ~label:(fun i ->
                    Printf.sprintf "fuzz program #%d" (start + i))
                  (fun _ d -> (d, check_full ?mutate_stale ?pool:inner d))
                  taken
              in
              List.iteri (fun i r -> consume (start + i) r) checked;
              go (start + List.length taken) rest
        in
        go 0 descs)
  in
  (match shards with
  | Some s when s > 1 ->
      (* intra-run sharding moves the domains inside each simulated run
         (Interp ?pool); the shard pool has a single submission slot, so
         program-level checking goes serial — the summary is identical
         either way *)
      Ccdp_exec.Pool.with_pool ~jobs:s (fun sp ->
          run_all ~inner:sp (Some 1))
  | _ -> run_all jobs);
  {
    s_programs = count;
    s_runs = !runs;
    s_oracle_checks = !checks;
    s_static_checks = count;
    s_static_caught = !caught;
    s_static_escapes = !escapes;
    s_failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* Protocol sabotage                                                   *)
(* ------------------------------------------------------------------ *)

(* The hardware-protocol analogue of [mutate_stale]: instead of breaking
   the compiler's analysis, break the protocol's coherence action itself
   (Memsys.sabotage) and demand the staleness oracle witness it. A fault
   that fires leaves a stale copy in some cache with cost accounting
   identical to the healthy run — value-blind testing cannot tell the
   difference, so a numeric mismatch with a silent oracle is an escape. *)
type sabotage_case = {
  sb_name : string;
  sb_mode : Memsys.mode;
  sb_fault : Memsys.sabotage;
}

let sabotage_cases =
  [
    {
      sb_name = "MSI/drop-invalidate";
      sb_mode = Memsys.Msi;
      sb_fault = Memsys.Drop_invalidate;
    };
    {
      sb_name = "MESI/drop-invalidate";
      sb_mode = Memsys.Mesi;
      sb_fault = Memsys.Drop_invalidate;
    };
    {
      sb_name = "DIR/corrupt-presence";
      sb_mode = Memsys.Directory;
      sb_fault = Memsys.Corrupt_presence;
    };
    {
      sb_name = "CLU/drop-back-inval";
      sb_mode = Memsys.Clustered;
      sb_fault = Memsys.Drop_inter_cluster_invalidate;
    };
  ]

type sabotage_summary = {
  sb_case : sabotage_case;
  sb_programs : int;
  sb_fired : int;
  sb_caught : int;
  sb_escapes : int;
}

let run_sabotage case (d : Gen.desc) =
  let cfg = cfg_of d in
  let program = Gen.build d in
  let seq =
    Interp.run
      { cfg with Config.n_pes = 1; Config.cluster_pes = 1 }
      program ~plan:(Annot.empty ()) ~mode:Memsys.Seq ()
  in
  (* the snooping/directory rivals are plan-free; the clustered mode keeps
     the CCDP discipline across islands, so its sabotage run needs the
     re-islanded machine and a plan compiled with the cluster discharge —
     exactly the configuration whose soundness leans on the back-
     invalidations the fault drops *)
  let cfg, run_program, plan =
    match case.sb_mode with
    | Memsys.Clustered ->
        let ccfg = cluster_cfg cfg in
        let compiled =
          Pipeline.compile ccfg ~cluster_coherent:true
            ~prefetch_clean:d.Gen.pclean program
        in
        (ccfg, compiled.Pipeline.program, compiled.Pipeline.plan)
    | _ -> (cfg, program, Annot.empty ())
  in
  let r =
    Interp.run cfg ~oracle:true ~sabotage:case.sb_fault run_program ~plan
      ~mode:case.sb_mode ()
  in
  let fired = Memsys.sabotage_fired r.Interp.sys in
  let caught = Memsys.oracle_violation_count r.Interp.sys > 0 in
  let ok =
    (Verify.compare_states ~expected:seq.Interp.sys ~got:r.Interp.sys program)
      .Verify.ok
  in
  (fired, caught, (not ok) && not caught)

let sabotage_campaign ?jobs ~seed ~count () =
  let rng = Random.State.make [| seed; 0x5ab0 |] in
  let descs = List.init count (fun _ -> Gen.generate rng) in
  Ccdp_exec.Pool.with_pool ?jobs (fun pool ->
      List.map
        (fun case ->
          let outcomes =
            Ccdp_exec.Pool.map_runs pool
              ~label:(fun i ->
                Printf.sprintf "sabotage %s #%d" case.sb_name i)
              (fun _ d -> run_sabotage case d)
              descs
          in
          List.fold_left
            (fun acc (fired, caught, escape) ->
              {
                acc with
                sb_fired = (acc.sb_fired + if fired then 1 else 0);
                sb_caught = (acc.sb_caught + if caught then 1 else 0);
                sb_escapes = (acc.sb_escapes + if escape then 1 else 0);
              })
            {
              sb_case = case;
              sb_programs = count;
              sb_fired = 0;
              sb_caught = 0;
              sb_escapes = 0;
            }
            outcomes)
        sabotage_cases)

let pp_sabotage_summary ppf s =
  Format.fprintf ppf
    "%-22s %d programs, %d faults fired, %d caught by the oracle, %d escapes"
    s.sb_case.sb_name s.sb_programs s.sb_fired s.sb_caught s.sb_escapes

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v2>program #%d, variant %s: %s@,%s@,shrunk to:@,%a%a@]" f.f_index
    f.f_variant
    (match f.f_kind with
    | Mismatch -> "numeric mismatch vs sequential"
    | Oracle -> "staleness-oracle violation"
    | Static_escape -> "static certifier missed an injected fault"
    | Static_spurious -> "static certifier flagged a clean program")
    f.f_detail Gen.pp f.f_shrunk
    (fun ppf -> function
      | None -> ()
      | Some p -> Format.fprintf ppf "@,reproducer: %s" p)
    f.f_reproducer

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>fuzz: %d programs, %d variant runs, %d oracle checks, %d static \
     certifications (%d faults caught, %d escapes), %d failure(s)"
    s.s_programs s.s_runs s.s_oracle_checks s.s_static_checks
    s.s_static_caught s.s_static_escapes
    (List.length s.s_failures);
  List.iter (fun f -> Format.fprintf ppf "@,%a" pp_failure f) s.s_failures;
  Format.fprintf ppf "@]"
