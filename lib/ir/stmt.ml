type cmp = Lt | Le | Gt | Ge | Eq | Ne
type sched = Static_block | Static_aligned of int | Static_cyclic | Dynamic of int
type loop_kind = Serial | Doall of sched

type cond =
  | Icond of cmp * Affine.t * Affine.t
  | Fcond of cmp * Fexpr.t * Fexpr.t

type t =
  | Assign of Reference.t * Fexpr.t
  | Sassign of string * Fexpr.t
  | For of loop
  | If of cond * t list * t list
  | Call of string * (string * Affine.t) list
  | Critical of critical
  | Reduce of reduce

and critical = { lock : string; cbody : t list; cloc : Loc.t }
and reduce = { rop : Fexpr.binop; rvar : string; rexpr : Fexpr.t; rloc : Loc.t }

and loop = {
  loop_id : int;
  var : string;
  lo : Bound.t;
  hi : Bound.t;
  step : int;
  kind : loop_kind;
  body : t list;
  loc : Loc.t;
}

let eval_cmp op a b =
  match op with
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Eq -> a = b
  | Ne -> a <> b

let eval_fcmp op (a : float) (b : float) =
  match op with
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Eq -> a = b
  | Ne -> a <> b

let direct_reads = function
  | Assign (_, e) | Sassign (_, e) | Reduce { rexpr = e; _ } -> Fexpr.reads e
  | For _ | If _ | Call _ | Critical _ -> []

let direct_write = function
  | Assign (r, _) -> Some r
  | Sassign _ | For _ | If _ | Call _ | Critical _ | Reduce _ -> None

let rec fold f acc stmts =
  List.fold_left
    (fun acc s ->
      let acc = f acc s in
      match s with
      | Assign _ | Sassign _ | Call _ | Reduce _ -> acc
      | For l -> fold f acc l.body
      | If (_, t, e) -> fold f (fold f acc t) e
      | Critical c -> fold f acc c.cbody)
    acc stmts

let fold_refs f acc stmts =
  fold
    (fun acc s ->
      let acc =
        match direct_write s with
        | Some r -> f acc ~write:true r
        | None -> acc
      in
      let acc =
        match s with
        | If (Fcond (_, a, b), _, _) ->
            Fexpr.fold_reads (fun acc r -> f acc ~write:false r)
              (Fexpr.fold_reads (fun acc r -> f acc ~write:false r) acc a)
              b
        | Assign _ | Sassign _ | For _ | Call _ | Critical _ | Reduce _
        | If (Icond _, _, _) ->
            acc
      in
      List.fold_left (fun acc r -> f acc ~write:false r) acc (direct_reads s))
    acc stmts

let subst_cond c env =
  match c with
  | Icond (op, a, b) -> Icond (op, Affine.subst_env a env, Affine.subst_env b env)
  | Fcond (op, a, b) -> Fcond (op, Fexpr.subst_env a env, Fexpr.subst_env b env)

let rec subst_env s env =
  match s with
  | Assign (r, e) -> Assign (Reference.subst_env r env, Fexpr.subst_env e env)
  | Sassign (v, e) -> Sassign (v, Fexpr.subst_env e env)
  | For l ->
      (* the loop variable shadows any outer binding of the same name *)
      let env' = List.filter (fun (v, _) -> v <> l.var) env in
      For
        {
          l with
          lo = Bound.subst_env l.lo env';
          hi = Bound.subst_env l.hi env';
          body = List.map (fun s -> subst_env s env') l.body;
        }
  | If (c, t, e) ->
      If
        ( subst_cond c env,
          List.map (fun s -> subst_env s env) t,
          List.map (fun s -> subst_env s env) e )
  | Call (p, args) ->
      Call (p, List.map (fun (formal, a) -> (formal, Affine.subst_env a env)) args)
  | Critical c -> Critical { c with cbody = List.map (fun s -> subst_env s env) c.cbody }
  | Reduce r -> Reduce { r with rexpr = Fexpr.subst_env r.rexpr env }

let rec map_ref_ids f s =
  match s with
  | Assign (r, e) ->
      Assign (Reference.with_id r (f r.Reference.id), Fexpr.map_ref_ids f e)
  | Sassign (v, e) -> Sassign (v, Fexpr.map_ref_ids f e)
  | For l -> For { l with body = List.map (map_ref_ids f) l.body }
  | If (c, t, e) ->
      let c =
        match c with
        | Icond _ -> c
        | Fcond (op, a, b) -> Fcond (op, Fexpr.map_ref_ids f a, Fexpr.map_ref_ids f b)
      in
      If (c, List.map (map_ref_ids f) t, List.map (map_ref_ids f) e)
  | Call _ -> s
  | Critical c -> Critical { c with cbody = List.map (map_ref_ids f) c.cbody }
  | Reduce r -> Reduce { r with rexpr = Fexpr.map_ref_ids f r.rexpr }

let rec map_loop_ids f s =
  match s with
  | Assign _ | Sassign _ | Call _ | Reduce _ -> s
  | For l ->
      For { l with loop_id = f l.loop_id; body = List.map (map_loop_ids f) l.body }
  | If (c, t, e) -> If (c, List.map (map_loop_ids f) t, List.map (map_loop_ids f) e)
  | Critical c -> Critical { c with cbody = List.map (map_loop_ids f) c.cbody }

let direct_flops = function
  | Assign (_, e) | Sassign (_, e) -> Fexpr.flops e
  | Reduce { rexpr = e; _ } -> 1 + Fexpr.flops e
  | If (Fcond (_, a, b), _, _) -> 1 + Fexpr.flops a + Fexpr.flops b
  | For _ | If (Icond _, _, _) | Call _ | Critical _ -> 0

let string_of_cmp = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let pp_cond ppf = function
  | Icond (op, a, b) ->
      Format.fprintf ppf "%a %s %a" Affine.pp a (string_of_cmp op) Affine.pp b
  | Fcond (op, a, b) ->
      Format.fprintf ppf "%a %s %a" Fexpr.pp a (string_of_cmp op) Fexpr.pp b

let pp_kind ppf = function
  | Serial -> ()
  | Doall Static_block -> Format.pp_print_string ppf " doall(block)"
  | Doall (Static_aligned e) -> Format.fprintf ppf " doall(aligned:%d)" e
  | Doall Static_cyclic -> Format.pp_print_string ppf " doall(cyclic)"
  | Doall (Dynamic n) -> Format.fprintf ppf " doall(dynamic:%d)" n

let rec pp ppf s =
  match s with
  | Assign (r, e) -> Format.fprintf ppf "@[<2>%a =@ %a@]" Reference.pp r Fexpr.pp e
  | Sassign (v, e) -> Format.fprintf ppf "@[<2>$%s =@ %a@]" v Fexpr.pp e
  | For l ->
      Format.fprintf ppf "@[<v 2>for %s = %a to %a%s%a {@,%a@]@,}" l.var Bound.pp
        l.lo Bound.pp l.hi
        (if l.step = 1 then "" else Printf.sprintf " step %d" l.step)
        pp_kind l.kind pp_list l.body
  | If (c, t, []) ->
      Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,}" pp_cond c pp_list t
  | If (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,} else {@,@[<v 2>  %a@]@,}" pp_cond
        c pp_list t pp_list e
  | Call (p, args) ->
      Format.fprintf ppf "call %s(%a)" p
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (formal, a) -> Format.fprintf ppf "%s=%a" formal Affine.pp a))
        args
  | Critical c ->
      Format.fprintf ppf "@[<v 2>critical(%s) {@,%a@]@,}" c.lock pp_list c.cbody
  | Reduce r ->
      Format.fprintf ppf "@[<2>reduce(%s) $%s =@ %a@]"
        (Fexpr.string_of_binop r.rop) r.rvar Fexpr.pp r.rexpr

and pp_list ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp ppf stmts
