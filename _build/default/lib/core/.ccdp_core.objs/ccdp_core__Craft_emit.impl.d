lib/core/craft_emit.ml: Affine Annot Array Array_decl Bound Ccdp_analysis Ccdp_ir Dist Fexpr Format Hashtbl List Pipeline Printf Program Reference Stmt String
