test/test_stmt.ml: Affine Alcotest Array Bound Builder Ccdp_ir Ccdp_test_support List Reference Stmt
