lib/analysis/target.ml: Annot Ccdp_ir Ccdp_machine Format Hashtbl List Locality Printf Ref_info Reference Region Stale Stmt
