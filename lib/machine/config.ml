type t = {
  n_pes : int;
  cluster_pes : int;
  cache_words : int;
  line_words : int;
  assoc : int;
  prefetch_queue_words : int;
  annex_entries : int;
  hit : int;
  local : int;
  uncached_local : int;
  remote : int;
  net : Net.kind;
  hop : int;
  link_occ : int;
  bus_occ : int;
  store_local : int;
  store_remote : int;
  pf_issue : int;
  pf_extract : int;
  annex_setup : int;
  vget_startup : int;
  vget_per_word : int;
  barrier_base : int;
  barrier_per_level : int;
  flop : int;
  loop_overhead : int;
  lock_acquire : int;
  lock_release : int;
}

let t3d ~n_pes =
  {
    n_pes;
    cluster_pes = 1;
    cache_words = 1024 (* 8 KB of 64-bit words *);
    line_words = 4 (* 32-byte lines *);
    assoc = 1 (* direct-mapped EV4 *);
    prefetch_queue_words = 16;
    annex_entries = 32;
    hit = 3;
    local = 22 (* ~150ns at 150 MHz *);
    uncached_local = 8 (* read-ahead buffered local stream *);
    remote = 90 (* ~600ns one-way shared read *);
    net = Net.Uniform;
    hop = 0;
    link_occ = 0;
    bus_occ = 4;
    store_local = 3;
    store_remote = 12 (* buffered network injection *);
    pf_issue = 6 (* prefetch instruction + queue bookkeeping *);
    pf_extract = 8 (* significant, per Arpaci et al. *);
    annex_setup = 23 (* DTB Annex write overhead *);
    vget_startup = 120 (* shmem_get fixed cost *);
    vget_per_word = 2 (* pipelined block-transfer bandwidth *);
    barrier_base = 30;
    barrier_per_level = 8;
    flop = 4 (* EV4 FP latency dominates issue *);
    loop_overhead = 2;
    lock_acquire = 180 (* uncontended remote atomic swap: ~2 one-way trips *);
    lock_release = 90 (* release store + publication fence *);
  }

let tiny ~n_pes =
  {
    n_pes;
    cluster_pes = 1;
    cache_words = 64;
    line_words = 4;
    assoc = 1;
    prefetch_queue_words = 8;
    annex_entries = 4;
    hit = 1;
    local = 10;
    uncached_local = 4;
    remote = 40;
    net = Net.Uniform;
    hop = 0;
    link_occ = 0;
    bus_occ = 2;
    store_local = 1;
    store_remote = 4;
    pf_issue = 2;
    pf_extract = 2;
    annex_setup = 5;
    vget_startup = 20;
    vget_per_word = 1;
    barrier_base = 5;
    barrier_per_level = 2;
    flop = 1;
    loop_overhead = 1;
    lock_acquire = 80;
    lock_release = 40;
  }

(* Rebalance a distance-model preset so the machine-average remote cost
   stays near the uniform preset's: average hop count across the machine
   is about half the diameter, and that share of the latency moves from
   the flat [remote] base into the per-hop term. *)
let with_net base kind ~hop =
  let net = Net.create kind ~n_pes:base.n_pes in
  let avg_hops = max 1 ((Net.diameter net + 1) / 2) in
  {
    base with
    remote = max base.local (base.remote - (hop * avg_hops));
    net = kind;
    hop;
  }

let t3d_torus ~n_pes =
  with_net (t3d ~n_pes) Net.Torus3d ~hop:8 (* ~50ns per hop at 150 MHz *)

let t3d_mesh ~n_pes = with_net (t3d ~n_pes) Net.Mesh2d ~hop:8

let t3d_xbar ~n_pes =
  (* constant one-hop distance; the interesting behaviour is the shared
     destination port, so the contention model is on by default *)
  { (with_net (t3d ~n_pes) Net.Crossbar ~hop:8) with link_occ = 4 }

let of_kind kind ~n_pes =
  match kind with
  | Net.Uniform -> t3d ~n_pes
  | Net.Torus3d -> t3d_torus ~n_pes
  | Net.Mesh2d -> t3d_mesh ~n_pes
  | Net.Crossbar -> t3d_xbar ~n_pes

(* CXL-style partially-coherent machine: PEs grouped into [clusters]
   hardware-coherent islands over the crossbar fabric. The preset name
   records the shape at the nominal 64-PE width (cxl-2x32 = 2 islands of
   32); at other widths the island count is preserved and the island
   width follows [n_pes / clusters], degrading to a flat machine when the
   division does not come out even (validation would reject a ragged
   clustering). *)
let cxl ~clusters ~n_pes =
  {
    (t3d_xbar ~n_pes) with
    cluster_pes = (if n_pes mod clusters = 0 then n_pes / clusters else 1);
  }

let cxl_2x32 ~n_pes = cxl ~clusters:2 ~n_pes
let cxl_4x16 ~n_pes = cxl ~clusters:4 ~n_pes
let cxl_8x8 ~n_pes = cxl ~clusters:8 ~n_pes

let presets =
  [
    ("t3d", t3d);
    ("t3d-torus", t3d_torus);
    ("t3d-mesh", t3d_mesh);
    ("t3d-xbar", t3d_xbar);
    ("cxl-2x32", cxl_2x32);
    ("cxl-4x16", cxl_4x16);
    ("cxl-8x8", cxl_8x8);
    ("tiny", tiny);
  ]

let preset_of_string s =
  let s = String.lowercase_ascii s in
  match List.assoc_opt s presets with
  | Some p -> Some p
  | None -> (
      (* bare interconnect kinds select the matching T3D variant *)
      match Net.kind_of_string s with
      | Some k -> Some (of_kind k)
      | None -> None)

let preset_names = List.map fst presets

let lines t = t.cache_words / t.line_words

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let barrier_cost t = t.barrier_base + (t.barrier_per_level * log2_ceil t.n_pes)
let lines_for_words t w = (w + t.line_words - 1) / t.line_words

let validate t =
  let problems = ref [] in
  let check cond msg = if not cond then problems := msg :: !problems in
  check (t.n_pes > 0) "n_pes must be positive";
  check (t.cluster_pes > 0) "cluster_pes must be positive";
  if t.n_pes > 0 && t.cluster_pes > 0 then
    check (t.n_pes mod t.cluster_pes = 0) "cluster_pes must divide n_pes";
  check (t.line_words > 0) "line_words must be positive";
  check (t.assoc > 0) "assoc must be positive";
  if t.line_words > 0 && t.assoc > 0 then begin
    check (t.cache_words >= t.line_words) "cache smaller than one line";
    check (t.cache_words mod t.line_words = 0)
      "cache_words not a multiple of line_words";
    check (lines t mod t.assoc = 0) "lines not a multiple of assoc"
  end;
  check (t.prefetch_queue_words >= 0) "prefetch_queue_words must be >= 0";
  check (t.remote >= t.local) "remote latency below local latency";
  check (t.uncached_local >= 0) "uncached_local must be >= 0";
  check (t.local >= t.hit) "local latency below hit latency";
  check (t.hit >= 0) "hit must be >= 0";
  check (t.hop >= 0) "hop must be >= 0";
  check (t.link_occ >= 0) "link_occ must be >= 0";
  check (t.bus_occ >= 0) "bus_occ must be >= 0";
  check (t.annex_entries >= 0) "annex_entries must be >= 0";
  check (t.store_local >= 0) "store_local must be >= 0";
  check (t.store_remote >= 0) "store_remote must be >= 0";
  check (t.pf_issue >= 0) "pf_issue must be >= 0";
  check (t.pf_extract >= 0) "pf_extract must be >= 0";
  check (t.annex_setup >= 0) "annex_setup must be >= 0";
  check (t.vget_startup >= 0) "vget_startup must be >= 0";
  check (t.vget_per_word >= 0) "vget_per_word must be >= 0";
  check (t.barrier_base >= 0) "barrier_base must be >= 0";
  check (t.barrier_per_level >= 0) "barrier_per_level must be >= 0";
  check (t.flop >= 0) "flop must be >= 0";
  check (t.loop_overhead >= 0) "loop_overhead must be >= 0";
  check (t.lock_acquire >= 0) "lock_acquire must be >= 0";
  check (t.lock_release >= 0) "lock_release must be >= 0";
  List.rev !problems

let pp ppf t =
  Format.fprintf ppf
    "@[<v>machine: %d PEs (clusters of %d)@,\
     network: %s hop=%d link-occ=%d bus-occ=%d@,\
     cache: %d words, %d-word lines, %d-way@,\
     prefetch queue: %d words; annex: %d entries@,\
     latency: hit=%d local=%d/%d remote=%d store=%d/%d@,\
     prefetch: issue=%d extract=%d annex=%d vget=%d+%d/word@,\
     barrier: %d; flop=%d loop=%d; lock=%d/%d@]"
    t.n_pes t.cluster_pes (Net.kind_name t.net) t.hop t.link_occ t.bus_occ
    t.cache_words
    t.line_words
    t.assoc t.prefetch_queue_words t.annex_entries t.hit t.local
    t.uncached_local t.remote t.store_local t.store_remote t.pf_issue
    t.pf_extract t.annex_setup t.vget_startup t.vget_per_word (barrier_cost t)
    t.flop t.loop_overhead t.lock_acquire t.lock_release
