open Ccdp_workloads
open Ccdp_core
open Ccdp_test_support.Tutil

let small_spec =
  { Experiment.default_spec with Experiment.pes = [ 1; 4 ]; verify = true }

let rows () = Experiment.evaluate ~spec:small_spec [ Extras.jacobi ~n:12 ~iters:2 ]

let evaluation =
  [
    case "evaluate produces one row per (workload, width)" (fun () ->
        check_int "rows" 2 (List.length (rows ())));
    case "every row verifies in both modes" (fun () ->
        List.iter
          (fun (r : Experiment.row) ->
            check_true "base ok" r.Experiment.base_ok;
            check_true "ccdp ok" r.Experiment.ccdp_ok)
          (rows ()));
    case "speedups and improvement are consistent" (fun () ->
        List.iter
          (fun (r : Experiment.row) ->
            let imp = Experiment.improvement r in
            let faster = Experiment.ccdp_speedup r > Experiment.base_speedup r in
            check_true "signs agree" (faster = (imp > 0.0)))
          (rows ()));
    case "sequential cycles are shared across widths" (fun () ->
        match rows () with
        | [ a; b ] -> check_int "same seq" a.Experiment.seq_cycles b.Experiment.seq_cycles
        | _ -> Alcotest.fail "two rows");
    case "jacobi improves with CCDP at 4 PEs" (fun () ->
        let r = List.find (fun (r : Experiment.row) -> r.Experiment.pes = 4) (rows ()) in
        check_true "positive" (Experiment.improvement r > 0.0));
  ]

let printing =
  [
    case "table printers render without raising" (fun () ->
        let rs = rows () in
        let buf = Buffer.create 256 in
        let ppf = Format.formatter_of_buffer buf in
        Experiment.print_table1 ppf rs;
        Experiment.print_table2 ppf rs;
        Format.pp_print_flush ppf ();
        check_true "mentions Table 1" (String.length (Buffer.contents buf) > 100));
    case "report table rejects ragged rows" (fun () ->
        check_true "raises"
          (try
             Report.table Format.str_formatter ~title:"x" ~headers:[ "a"; "b" ]
               [ [ "1" ] ];
             false
           with Invalid_argument _ -> true));
  ]

let ablations =
  [
    case "ablation reports run end to end" (fun () ->
        let ws = [ Extras.jacobi ~n:12 ~iters:1 ] in
        let buf = Buffer.create 256 in
        let ppf = Format.formatter_of_buffer buf in
        Experiment.ablation_target ~n_pes:4 ws ppf;
        Experiment.ablation_technique ~n_pes:4 ws ppf;
        Experiment.ablation_coherence ~n_pes:4 ws ppf;
        Experiment.sweep_remote ~n_pes:4 ~points:[ 40; 90 ] (List.hd ws) ppf;
        Experiment.sweep_queue ~n_pes:4 ~points:[ 8; 16 ] (List.hd ws) ppf;
        Experiment.sweep_cache ~n_pes:4 ~points:[ 512; 1024 ] (List.hd ws) ppf;
        Experiment.ablation_vpg_levels ~n_pes:4 ws ppf;
        Experiment.ablation_topology ~n_pes:8 ws ppf;
        Format.pp_print_flush ppf ();
        check_true "output produced" (String.length (Buffer.contents buf) > 300));
    case "single-technique tuning still verifies" (fun () ->
        let w = Extras.jacobi ~n:12 ~iters:2 in
        List.iter
          (fun tuning ->
            let spec = { small_spec with Experiment.tuning } in
            List.iter
              (fun (r : Experiment.row) -> check_true "ok" r.Experiment.ccdp_ok)
              (Experiment.evaluate ~spec [ w ]))
          Ccdp_analysis.Schedule.
            [
              { default_tuning with allow_vpg = false };
              { default_tuning with allow_sp = false; allow_vpg = false };
              { default_tuning with allow_mbp = false };
            ]);
  ]

let future_work =
  [
    case "prefetch_clean adds leads and still verifies" (fun () ->
        let w = Extras.jacobi ~n:12 ~iters:2 in
        let cfg = Ccdp_machine.Config.t3d ~n_pes:4 in
        let plain = Pipeline.compile cfg w.Ccdp_workloads.Workload.program in
        let plus =
          Pipeline.compile cfg ~prefetch_clean:true
            w.Ccdp_workloads.Workload.program
        in
        let count c =
          (Ccdp_analysis.Annot.count c.Pipeline.plan).Ccdp_analysis.Annot.n_lead
        in
        check_true "more leads" (count plus > count plain);
        let r =
          Ccdp_runtime.Interp.run cfg plus.Pipeline.program
            ~plan:plus.Pipeline.plan ~mode:Ccdp_runtime.Memsys.Ccdp ()
        in
        let v =
          Ccdp_runtime.Verify.against_sequential
            w.Ccdp_workloads.Workload.program ~init:(fun _ -> ()) r
        in
        check_true "verified" v.Ccdp_runtime.Verify.ok);
    case "prefetch_clean report runs" (fun () ->
        let buf = Buffer.create 128 in
        let ppf = Format.formatter_of_buffer buf in
        Experiment.ablation_prefetch_clean ~n_pes:4
          [ Extras.triad ~n:12 ] ppf;
        Format.pp_print_flush ppf ();
        check_true "output" (String.length (Buffer.contents buf) > 50));
  ]

let () =
  Alcotest.run "experiment"
    [
      ("evaluation", evaluation);
      ("printing", printing);
      ("ablations", ablations);
      ("future-work", future_work);
    ]
