test/test_ref_info.mli:
