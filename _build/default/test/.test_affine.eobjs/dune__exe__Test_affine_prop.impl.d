test/test_affine_prop.ml: Affine Alcotest Bound Ccdp_analysis Ccdp_ir Ccdp_test_support List Printf QCheck Section Stmt String
