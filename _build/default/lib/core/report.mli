(** Plain-text table rendering for the experiment reports. *)

(** [table ppf ~title ~headers rows] prints an aligned table; every row must
    have [List.length headers] cells. *)
val table :
  Format.formatter -> title:string -> headers:string list -> string list list ->
  unit

(** CSV rendering of the same data (machine-readable exports). *)
val csv :
  Format.formatter -> headers:string list -> string list list -> unit

val fpct : float -> string
val fx : float -> string
