lib/fuzz/gen.ml: Affine Bound Builder Ccdp_ir Dist Format List Printf Random Stmt String
