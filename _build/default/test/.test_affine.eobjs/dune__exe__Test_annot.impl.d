test/test_annot.ml: Alcotest Annot Ccdp_analysis Ccdp_test_support Format Hashtbl List Str String
