lib/workloads/vpenta.ml: Builder Ccdp_ir Dist List Printf Workload
