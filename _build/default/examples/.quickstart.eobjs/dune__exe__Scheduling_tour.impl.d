examples/scheduling_tour.ml: Affine Bound Builder Ccdp_analysis Ccdp_core Ccdp_ir Ccdp_machine Dist Format Pipeline Stmt
