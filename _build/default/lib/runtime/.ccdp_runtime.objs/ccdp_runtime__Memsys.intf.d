lib/runtime/memsys.mli: Addr_map Ccdp_analysis Ccdp_ir Ccdp_machine Format
