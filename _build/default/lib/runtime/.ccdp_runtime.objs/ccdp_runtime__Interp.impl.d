lib/runtime/interp.ml: Affine Annot Array Bound Ccdp_analysis Ccdp_craft Ccdp_ir Ccdp_machine Config Epoch Fexpr Format Hashtbl List Machine Memsys Pe Printf Program Reference Stats Stmt
