open Ccdp_ir
open Ccdp_analysis

type t = {
  program : Program.t;
  epochs : Epoch.t;
  infos : Ref_info.t list;
  region : Region.t;
  stale : Stale.result;
  target : Target.t;
  plan : Annot.plan;
  decisions : Schedule.decision list;
  cfg : Ccdp_machine.Config.t;
  tuning : Schedule.tuning;
  prefetch_clean : bool;
  cluster_pes : int;
      (* effective cluster width of the alignment discharge: [cfg.cluster_pes]
         when compiling for the clustered runtime, 1 otherwise *)
}

let compile cfg ?(tuning = Schedule.default_tuning) ?innermost_only
    ?group_spatial ?(prefetch_clean = false) ?(cluster_coherent = false)
    ?(mutate_stale = fun s -> s) program =
  let program = Program.inline program in
  let epochs = Epoch.partition program.Program.main in
  let infos = Ref_info.collect epochs in
  let region = Region.make program ~n_pes:cfg.Ccdp_machine.Config.n_pes in
  (* the cluster-aware discharge is sound only under the clustered
     protocol, so it is opt-in per compile, and mirrors the runtime's
     degradation to a flat machine when the clustering is ragged *)
  let cluster_pes =
    if
      cluster_coherent
      && cfg.Ccdp_machine.Config.n_pes mod cfg.Ccdp_machine.Config.cluster_pes
         = 0
    then cfg.Ccdp_machine.Config.cluster_pes
    else 1
  in
  let stale = mutate_stale (Stale.analyze ~cluster_pes region infos) in
  let target =
    Target.analyze ?innermost_only ?group_spatial ~prefetch_clean region cfg
      infos stale
  in
  let plan, decisions = Schedule.analyze region cfg ~tuning infos stale target in
  {
    program;
    epochs;
    infos;
    region;
    stale;
    target;
    plan;
    decisions;
    cfg;
    tuning;
    prefetch_clean;
    cluster_pes;
  }

let report ppf t =
  Format.fprintf ppf "@[<v>== %s ==@,%a@,@,-- epochs --@,%a@,@,-- %a@,@,%a@,@,\
                      -- scheduling --@,%a@,-- plan --@,%a@]"
    t.program.Program.name
    (fun ppf () ->
      Format.fprintf ppf "%d references (%d reads)" (List.length t.infos)
        t.stale.Stale.n_reads)
    ()
    Epoch.pp t.epochs Stale.pp_result t.stale Target.pp t.target
    Schedule.pp_decisions t.decisions Annot.pp t.plan
