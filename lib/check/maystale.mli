(** Independent may-stale derivation (the verifier's second opinion).

    Computes, for every read of a tracked (shared, non-replicated) array,
    the set of writes whose stale cached copy the read may observe — by a
    forward walk of the epoch tree with explicit back-edge re-visits,
    rather than {!Ccdp_analysis.Stale.analyze}'s per-read witness search
    over reference stacks. On any program the set of stale reads derived
    here over-approximates (and on well-formed epoch trees coincides with)
    the stale analysis — the property the certifier's differential tests
    pin down. *)

type t

val derive :
  Ccdp_analysis.Region.t -> Ccdp_ir.Epoch.t -> Ccdp_analysis.Ref_info.t list
  -> t

(** Witness write ref ids for a read (sorted); [[]] means provably clean
    (or untracked). *)
val witnesses_of : t -> int -> int list

val is_stale : t -> int -> bool

(** All reads with at least one witness, sorted. *)
val stale_ids : t -> int list
