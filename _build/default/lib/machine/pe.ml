type t = {
  id : int;
  mutable clock : int;
  cache : Cache.t;
  queue : Prefetch_queue.t;
  annex : Dtb_annex.t;
  stats : Stats.t;
}

let create (cfg : Config.t) id =
  {
    id;
    clock = 0;
    cache = Cache.of_config cfg;
    queue = Prefetch_queue.create ~capacity:cfg.prefetch_queue_words;
    annex = Dtb_annex.create ~entries:cfg.annex_entries;
    stats = Stats.create ();
  }

let advance t cycles =
  if cycles < 0 then invalid_arg "Pe.advance: negative cycles";
  t.clock <- t.clock + cycles

let reset t =
  t.clock <- 0;
  Cache.invalidate_all t.cache;
  ignore (Prefetch_queue.clear t.queue);
  Dtb_annex.clear t.annex;
  Stats.reset t.stats
