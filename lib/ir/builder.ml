type t = {
  name : string;
  mutable next_ref : int;
  mutable next_loop : int;
  mutable arrays : Array_decl.t list;
  mutable procs : Program.proc list;
  mutable params : (string * int) list;
}

let create ~name () =
  { name; next_ref = 0; next_loop = 0; arrays = []; procs = []; params = [] }

let param b name value = b.params <- (name, value) :: b.params

let array_ b ?elem_words ?dist ?shared name dims =
  b.arrays <- Array_decl.make ?elem_words ?dist ?shared name dims :: b.arrays

let proc b pname ~formals body =
  b.procs <- { Program.pname; formals; body } :: b.procs

let fresh_ref b = let id = b.next_ref in b.next_ref <- id + 1; id
let fresh_loop b = let id = b.next_loop in b.next_loop <- id + 1; id

let ref_ b ?loc name subs =
  Reference.make ~id:(fresh_ref b) ?loc name (Array.of_list subs)

let rd b ?loc name subs = Fexpr.Ref (ref_ b ?loc name subs)
let assign b ?loc name subs e = Stmt.Assign (ref_ b ?loc name subs, e)

let for_ b ?(step = 1) ?(kind = Stmt.Serial) ?(loc = Loc.Synthetic) var lo hi
    body =
  Stmt.For { loop_id = fresh_loop b; var; lo; hi; step; kind; body; loc }

let doall b ?(step = 1) ?(sched = Stmt.Static_block) ?loc var lo hi body =
  for_ b ~step ~kind:(Stmt.Doall sched) ?loc var lo hi body

let call name args = Stmt.Call (name, args)

let critical ?(loc = Loc.Synthetic) lock body =
  Stmt.Critical { Stmt.lock; cbody = body; cloc = loc }

let reduce ?(loc = Loc.Synthetic) op var e =
  Stmt.Reduce { Stmt.rop = op; rvar = var; rexpr = e; rloc = loc }

let finish b main =
  let p =
    {
      Program.name = b.name;
      arrays = List.rev b.arrays;
      procs = List.rev b.procs;
      main;
      params = List.rev b.params;
    }
  in
  match Program.validate p with
  | [] -> p
  | problems ->
      invalid_arg
        (Printf.sprintf "Builder.finish(%s): %s" b.name (String.concat "; " problems))

module A = struct
  let v = Affine.var
  let c = Affine.const
  let ( +! ) = Affine.add
  let ( -! ) = Affine.sub
  let ( *! ) = Affine.scale
  let bk e = Bound.known e
  let bc n = Bound.of_int n
  let bv s = Bound.of_var s
end

module F = struct
  let const f = Fexpr.Const f
  let iv v = Fexpr.Ivar v
  let sv v = Fexpr.Svar v
  let ( + ) a b = Fexpr.Binop (Fexpr.Add, a, b)
  let ( - ) a b = Fexpr.Binop (Fexpr.Sub, a, b)
  let ( * ) a b = Fexpr.Binop (Fexpr.Mul, a, b)
  let ( / ) a b = Fexpr.Binop (Fexpr.Div, a, b)
  let neg a = Fexpr.Unop (Fexpr.Neg, a)
  let sqrt_ a = Fexpr.Unop (Fexpr.Sqrt, a)
  let abs_ a = Fexpr.Unop (Fexpr.Abs, a)
  let min_ a b = Fexpr.Binop (Fexpr.Min, a, b)
  let max_ a b = Fexpr.Binop (Fexpr.Max, a, b)
end
