test/test_stale.ml: Affine Alcotest Builder Ccdp_analysis Ccdp_core Ccdp_ir Ccdp_machine Ccdp_runtime Ccdp_test_support Dist Epoch Fexpr List Program Ref_info Reference Region Stale Stmt
