lib/ir/affine.ml: Format Hashtbl List Stdlib String
