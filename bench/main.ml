(* Benchmark harness: regenerates every table of the paper plus the
   ablation studies indexed in DESIGN.md, and (with "micro") runs bechamel
   microbenchmarks of the compiler phases and simulator primitives.

   The table/ablation/sweep grids are sharded across OCaml domains
   (lib/exec); pass -j N (or set CCDP_JOBS) to pin the worker count,
   -j1 to force the sequential reference path. Numbers are identical for
   every job count. Each mode also writes its rows and tables as
   BENCH_<mode>.json (schema: lib/core/bench_json.mli).

   Usage:
     dune exec bench/main.exe                 -- everything (default sizes)
     dune exec bench/main.exe -- table1       -- just Table 1
     dune exec bench/main.exe -- table2
     dune exec bench/main.exe -- ablate
     dune exec bench/main.exe -- sweep
     dune exec bench/main.exe -- micro
     dune exec bench/main.exe -- oracle       -- staleness-oracle overhead
     dune exec bench/main.exe -- perf         -- engine wall-clock throughput
     dune exec bench/main.exe -- perf --quick -- reduced sizes (CI smoke)
     dune exec bench/main.exe -- machines     -- interconnect sweep
     dune exec bench/main.exe -- machines --machine t3d-mesh
                                              -- one preset only
     dune exec bench/main.exe -- rivals       -- hardware-coherence rivals
     dune exec bench/main.exe -- rivals --quick -- reduced sizes (CI smoke)
     dune exec bench/main.exe -- all --full   -- paper-shaped sizes (slow)
     dune exec bench/main.exe -- table1 -j 8  -- eight worker domains *)

open Ccdp_workloads
open Ccdp_core

type sizes = { n : int; iters : int; pes : int list; abl_pes : int }

let default_sizes = { n = 64; iters = 2; pes = [ 1; 2; 4; 8; 16; 32; 64 ]; abl_pes = 16 }
let full_sizes = { n = 128; iters = 3; pes = [ 1; 2; 4; 8; 16; 32; 64 ]; abl_pes = 32 }

let ppf = Format.std_formatter

let header title =
  Format.fprintf ppf "@.=== %s ===@.@." title

(* Run [f] against a fresh Bench_json document, then write
   BENCH_<bench>.json stamped with the host wall-clock. *)
let with_bench_json ~bench ~jobs f =
  let doc = Bench_json.create ~bench in
  let t0 = Unix.gettimeofday () in
  f doc;
  let wall_clock_s = Unix.gettimeofday () -. t0 in
  let path = Bench_json.write doc ~jobs ~wall_clock_s in
  Format.fprintf ppf "[%s: wall %.2fs at -j%d]@." path wall_clock_s jobs

let tables sizes jobs =
  header
    (Printf.sprintf
       "Paper Tables 1 and 2 (n=%d, iters=%d; simulated T3D; every run \
        numerically verified against sequential execution)"
       sizes.n sizes.iters);
  let ws = Suite.spec_four ~n:sizes.n ~iters:sizes.iters () in
  let spec = { Experiment.default_spec with Experiment.pes = sizes.pes } in
  let rows = ref [] in
  with_bench_json ~bench:"table1" ~jobs (fun doc ->
      rows := Experiment.evaluate ~jobs ~spec ws;
      Bench_json.add_rows doc !rows;
      Bench_json.add_table doc (Experiment.table1 !rows);
      Experiment.print_table1 ppf !rows);
  with_bench_json ~bench:"table2" ~jobs (fun doc ->
      Bench_json.add_rows doc !rows;
      Bench_json.add_table doc (Experiment.table2 !rows);
      Experiment.print_table2 ppf !rows);
  Format.fprintf ppf
    "Paper Table 2 reference bands: MXM 64.5-89.8%%, VPENTA 4.4-23.9%%, \
     TOMCATV 44.8-69.6%%, SWIM 2.5-13.2%%.@."

let extras_table sizes jobs =
  header "Extra kernels (same protocol)";
  let ws =
    [
      Extras.jacobi ~n:sizes.n ~iters:sizes.iters;
      Extras.dynamic ~n:sizes.n;
      Extras.opaque_sweep ~n:sizes.n;
      Extras.triad ~n:sizes.n;
    ]
  in
  let spec = { Experiment.default_spec with Experiment.pes = sizes.pes } in
  with_bench_json ~bench:"extras" ~jobs (fun doc ->
      let rows = Experiment.evaluate ~jobs ~spec ws in
      Bench_json.add_rows doc rows;
      Bench_json.add_table doc (Experiment.table2 rows);
      Experiment.print_table2 ppf rows)

let ablations sizes jobs =
  header "Ablation studies (DESIGN.md experiments A-C)";
  let ws = Suite.spec_four ~n:sizes.n ~iters:sizes.iters () in
  with_bench_json ~bench:"ablate" ~jobs (fun doc ->
      let emit tbl =
        Bench_json.add_table doc tbl;
        Experiment.print_tbl ppf tbl
      in
      emit (Experiment.ablation_target_table ~n_pes:sizes.abl_pes ~jobs ws);
      emit (Experiment.ablation_technique_table ~n_pes:sizes.abl_pes ~jobs ws);
      emit (Experiment.ablation_coherence_table ~n_pes:sizes.abl_pes ~jobs ws);
      emit (Experiment.ablation_prefetch_clean_table ~n_pes:sizes.abl_pes ~jobs ws);
      emit (Experiment.ablation_vpg_levels_table ~n_pes:sizes.abl_pes ~jobs ws);
      emit (Experiment.ablation_topology_table ~n_pes:64 ~jobs ws))

let sweeps sizes jobs =
  header "Parameter sweeps (DESIGN.md experiment D)";
  let tom = Tomcatv.workload ~n:sizes.n ~iters:sizes.iters in
  let mxm = Mxm.workload ~n:sizes.n in
  with_bench_json ~bench:"sweep" ~jobs (fun doc ->
      let emit tbl =
        Bench_json.add_table doc tbl;
        Experiment.print_tbl ppf tbl
      in
      emit (Experiment.sweep_remote_table ~n_pes:sizes.abl_pes ~jobs tom);
      emit (Experiment.sweep_remote_table ~n_pes:sizes.abl_pes ~jobs mxm);
      (* the queue only matters on the software-pipelined path *)
      emit
        (Experiment.sweep_queue_table ~n_pes:sizes.abl_pes ~jobs
           (Extras.opaque_sweep ~n:sizes.n));
      emit
        (Experiment.sweep_cache_table ~n_pes:sizes.abl_pes ~jobs
           (Mxm.workload ~n:sizes.n)))

(* ---- machine sweep -------------------------------------------------- *)

(* Workload x mode x interconnect: the same kernels on each of the four
   T3D interconnect variants (uniform / torus / mesh / crossbar), plus
   the coherence-cluster sweep — the Clustered mode on the CXL island
   presets anchored against flat CCDP and the flat directory on the same
   crossbar fabric. The t3d rows are the paper machine; the others show
   how much of the CCDP advantage survives a distance model and link
   contention. *)
let machines_bench sizes ~quick ~machine jobs =
  let n = if quick then 24 else sizes.n in
  let iters = if quick then 1 else sizes.iters in
  header
    (Printf.sprintf
       "Machine sweep (n=%d, iters=%d, %d PEs): workload x mode x \
        interconnect"
       n iters sizes.abl_pes);
  let ws = Suite.spec_four ~n ~iters () in
  with_bench_json ~bench:"machines" ~jobs (fun doc ->
      (* a cxl-* --machine filter belongs to the cluster sweep below, not
         the flat BASE/CCDP table (whose presets it would re-island) *)
      let flat_only =
        match machine with
        | Some m
          when Experiment.(
                 List.mem_assoc (String.lowercase_ascii m) cluster_presets) ->
            None
        | m -> m
      in
      let tbl =
        Experiment.machines_table ~n_pes:sizes.abl_pes ?only:flat_only ~jobs
          ws
      in
      Bench_json.add_table doc tbl;
      Experiment.print_tbl ppf tbl;
      let ctbl =
        Experiment.clusters_table ~n_pes:sizes.abl_pes ?only:machine ~jobs ws
      in
      if ctbl.Experiment.trows <> [] then begin
        Bench_json.add_table doc ctbl;
        Experiment.print_tbl ppf ctbl
      end)

(* ---- hardware-coherence rivals -------------------------------------- *)

(* Workload x mode x machine: BASE/CCDP against MSI/MESI snooping and the
   full-map directory, on the torus and crossbar machines. The payoff is
   the scaling cliff: at high PE counts every snooping transaction
   serializes through one bus, so its normalized time blows past both the
   directory and CCDP — most brutally on the crossbar, whose shared ports
   already concentrate the traffic. *)
let rivals_bench sizes ~quick jobs =
  let n = if quick then 16 else sizes.n in
  let iters = if quick then 1 else sizes.iters in
  let n_pes = if quick then 16 else 64 in
  header
    (Printf.sprintf
       "Hardware-coherence rivals (n=%d, iters=%d, %d PEs): workload x \
        mode x machine, normalized to BASE" n iters n_pes);
  let ws = Suite.spec_four ~n ~iters () in
  with_bench_json ~bench:"rivals" ~jobs (fun doc ->
      let rows = Experiment.rivals_rows ~n_pes ~jobs ws in
      Bench_json.add_rivals doc rows;
      let tbl = Experiment.rivals_table rows in
      Bench_json.add_table doc tbl;
      Experiment.print_tbl ppf tbl)

(* ---- staleness-oracle overhead ------------------------------------- *)

(* Host-time cost of arming the dynamic staleness oracle. The oracle is
   pure instrumentation: it must not change the simulated machine (cycles
   are asserted identical) and should stay cheap enough to leave on for
   every fuzz run. Timed serially — parallel workers would contend for
   the clock. *)
let oracle_overhead sizes =
  header "Staleness-oracle overhead (host time; simulated cycles unchanged)";
  let ws =
    [
      Tomcatv.workload ~n:sizes.n ~iters:sizes.iters;
      Mxm.workload ~n:sizes.n;
      Extras.jacobi ~n:sizes.n ~iters:sizes.iters;
    ]
  in
  Format.fprintf ppf "%-10s %12s %12s %9s %12s %10s@." "workload" "off (s)"
    "on (s)" "overhead" "checks" "violations";
  List.iter
    (fun (w : Workload.t) ->
      let cfg = Ccdp_machine.Config.t3d ~n_pes:sizes.abl_pes in
      let compiled = Pipeline.compile cfg w.Workload.program in
      let run ~oracle =
        Ccdp_runtime.Interp.run cfg ~oracle compiled.Pipeline.program
          ~plan:compiled.Pipeline.plan ~mode:Ccdp_runtime.Memsys.Ccdp ()
      in
      let time ~oracle =
        let t0 = Sys.time () in
        let r = run ~oracle in
        (Sys.time () -. t0, r)
      in
      ignore (run ~oracle:false) (* warm up *);
      let t_off, r_off = time ~oracle:false in
      let t_on, r_on = time ~oracle:true in
      if r_on.Ccdp_runtime.Interp.cycles <> r_off.Ccdp_runtime.Interp.cycles
      then
        failwith
          (Printf.sprintf "%s: oracle changed simulated time (%d vs %d)"
             w.Workload.name r_on.Ccdp_runtime.Interp.cycles
             r_off.Ccdp_runtime.Interp.cycles);
      let sys = r_on.Ccdp_runtime.Interp.sys in
      Format.fprintf ppf "%-10s %12.3f %12.3f %8.1f%% %12d %10d@."
        w.Workload.name t_off t_on
        (if t_off > 0.0 then 100.0 *. ((t_on /. t_off) -. 1.0) else 0.0)
        (Ccdp_runtime.Memsys.oracle_checked sys)
        (Ccdp_runtime.Memsys.oracle_violation_count sys))
    ws;
  Format.fprintf ppf "@."

(* ---- engine wall-clock throughput ---------------------------------- *)

(* Host-time throughput of the compiled-plan engine (Interp) across the
   paper's four workloads and every coherence mode, plus the reference
   tree-walking engine (Interp_ref) on the CCDP rows so the speedup of
   the compiled plans is visible in the same document. Timed serially —
   wall-clock and Gc.minor_words are per-run measurements and parallel
   workers would contend for both. The simulated side (cycles, accesses)
   is asserted identical between the two engines. *)
let perf sizes ~quick jobs =
  let n = if quick then 24 else sizes.n in
  let iters = if quick then 1 else sizes.iters in
  let n_pes = sizes.abl_pes in
  header
    (Printf.sprintf
       "Engine throughput (host wall-clock; n=%d, iters=%d, %d PEs; \
        engine=plan is the compiled-plan Interp, engine=ref the reference \
        tree-walker)"
       n iters n_pes);
  let ws = Suite.spec_four ~n ~iters () in
  let modes =
    Ccdp_runtime.Memsys.
      [ Seq; Base; Ccdp; Invalidate; Incoherent; Hscd; Msi; Mesi; Directory ]
  in
  let time_run f =
    ignore (f ()) (* warm up: first run pays lowering/page-in noise *);
    let m0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let wall = Unix.gettimeofday () -. t0 in
    (r, wall, Gc.minor_words () -. m0)
  in
  let emit doc ~workload ~mode ~engine ~wall ~cycles ~accesses ~minor_words =
    let per t = if wall > 0.0 then float_of_int t /. wall else 0.0 in
    Bench_json.add_perf doc
      {
        Bench_json.p_workload = workload;
        p_mode = Ccdp_runtime.Memsys.mode_name mode;
        p_engine = engine;
        p_pes = (if mode = Ccdp_runtime.Memsys.Seq then 1 else n_pes);
        p_jobs = 1;
        p_wall_s = wall;
        p_cycles = cycles;
        p_cycles_per_s = per cycles;
        p_accesses = accesses;
        p_accesses_per_s = per accesses;
        p_minor_words = minor_words;
      };
    Format.fprintf ppf "%-8s %-10s %-5s %9.3fs %12d %14.0f %14.0f %14.0f@."
      workload
      (Ccdp_runtime.Memsys.mode_name mode)
      engine wall cycles (per cycles) (per accesses) minor_words
  in
  with_bench_json ~bench:"perf" ~jobs (fun doc ->
      Format.fprintf ppf "%-8s %-10s %-5s %10s %12s %14s %14s %14s@."
        "workload" "mode" "eng" "wall" "cycles" "sim-cycles/s" "accesses/s"
        "minor-words";
      let mxm_ratio = ref None in
      List.iter
        (fun (w : Workload.t) ->
          let cfg = Ccdp_machine.Config.t3d ~n_pes in
          let cfg1 = Ccdp_machine.Config.t3d ~n_pes:1 in
          let inlined = Ccdp_ir.Program.inline w.Workload.program in
          let empty = Ccdp_analysis.Annot.empty () in
          let compiled = Pipeline.compile cfg w.Workload.program in
          let setup mode =
            match mode with
            | Ccdp_runtime.Memsys.Ccdp ->
                (cfg, compiled.Pipeline.program, compiled.Pipeline.plan)
            | Ccdp_runtime.Memsys.Seq -> (cfg1, inlined, empty)
            | _ -> (cfg, inlined, empty)
          in
          List.iter
            (fun mode ->
              let mcfg, prog, plan = setup mode in
              let r, wall, mw =
                time_run (fun () ->
                    Ccdp_runtime.Interp.run mcfg prog ~plan ~mode ())
              in
              let stats = r.Ccdp_runtime.Interp.stats in
              let accesses =
                stats.Ccdp_machine.Stats.reads + stats.Ccdp_machine.Stats.writes
              in
              emit doc ~workload:w.Workload.name ~mode ~engine:"plan" ~wall
                ~cycles:r.Ccdp_runtime.Interp.cycles ~accesses ~minor_words:mw;
              if mode = Ccdp_runtime.Memsys.Ccdp then begin
                let rr, rwall, rmw =
                  time_run (fun () ->
                      Ccdp_runtime.Interp_ref.run mcfg prog ~plan ~mode ())
                in
                if rr.Ccdp_runtime.Interp_ref.cycles <> r.Ccdp_runtime.Interp.cycles
                then
                  failwith
                    (Printf.sprintf
                       "perf: engines disagree on %s/ccdp (%d vs %d cycles)"
                       w.Workload.name r.Ccdp_runtime.Interp.cycles
                       rr.Ccdp_runtime.Interp_ref.cycles);
                let rstats = rr.Ccdp_runtime.Interp_ref.stats in
                let raccesses =
                  rstats.Ccdp_machine.Stats.reads
                  + rstats.Ccdp_machine.Stats.writes
                in
                emit doc ~workload:w.Workload.name ~mode ~engine:"ref"
                  ~wall:rwall ~cycles:rr.Ccdp_runtime.Interp_ref.cycles
                  ~accesses:raccesses ~minor_words:rmw;
                if String.lowercase_ascii w.Workload.name = "mxm" && wall > 0.0
                then
                  mxm_ratio := Some (rwall /. wall)
              end)
            modes)
        ws;
      (match !mxm_ratio with
      | Some r ->
          Format.fprintf ppf
            "@.MXM/ccdp compiled-plan engine: %.2fx simulated-cycles/sec of \
             the reference engine.@."
            r
      | None -> ());
      (* ---- intra-run shard scaling -------------------------------- *)
      (* Wide machines, one run each, sharded over -j domains inside the
         epoch loop (Interp ?pool). Simulated cycles are asserted
         identical across job counts — that is the deterministic claim
         this section certifies; the wall-clock column is reported as
         measured and only speeds up when the host grants real cores. *)
      let scale_pes = if quick then [ 256 ] else [ 1024; 2048; 4096 ] in
      let scale_jobs = if quick then [ 1; 8 ] else [ 1; 4; 8 ] in
      let scale_n = if quick then 48 else 192 in
      let w = Mxm.workload ~n:scale_n in
      Format.fprintf ppf
        "@.Intra-run shard scaling (MXM n=%d, ccdp mode; cycles asserted \
         identical across -j)@."
        scale_n;
      Format.fprintf ppf "%-8s %6s %5s %10s %12s %9s@." "workload" "pes"
        "jobs" "wall" "cycles" "speedup";
      List.iter
        (fun pes ->
          let cfg = Ccdp_machine.Config.t3d ~n_pes:pes in
          let compiled = Pipeline.compile cfg w.Workload.program in
          let baseline = ref None in
          List.iter
            (fun j ->
              let run () =
                let go ?pool () =
                  Ccdp_runtime.Interp.run cfg ?pool compiled.Pipeline.program
                    ~plan:compiled.Pipeline.plan
                    ~mode:Ccdp_runtime.Memsys.Ccdp ()
                in
                if j > 1 then
                  Ccdp_exec.Pool.with_pool ~jobs:j (fun pool -> go ~pool ())
                else go ()
              in
              (* no warm-up: one timed run per (pes, jobs) cell keeps the
                 wide grid affordable; cycle identity does not need it *)
              let m0 = Gc.minor_words () in
              let t0 = Unix.gettimeofday () in
              let r = run () in
              let wall = Unix.gettimeofday () -. t0 in
              let mw = Gc.minor_words () -. m0 in
              let cycles = r.Ccdp_runtime.Interp.cycles in
              let stats = r.Ccdp_runtime.Interp.stats in
              let accesses =
                stats.Ccdp_machine.Stats.reads + stats.Ccdp_machine.Stats.writes
              in
              (match !baseline with
              | None -> baseline := Some (cycles, wall)
              | Some (c0, _) ->
                  if cycles <> c0 then
                    failwith
                      (Printf.sprintf
                         "perf scaling: -j%d changed simulated time at %d \
                          PEs (%d vs %d cycles)"
                         j pes cycles c0));
              let speedup =
                match !baseline with
                | Some (_, w0) when wall > 0.0 -> w0 /. wall
                | _ -> 1.0
              in
              let per t = if wall > 0.0 then float_of_int t /. wall else 0.0 in
              Bench_json.add_perf doc
                {
                  Bench_json.p_workload = w.Workload.name;
                  p_mode =
                    Ccdp_runtime.Memsys.mode_name Ccdp_runtime.Memsys.Ccdp;
                  p_engine = "plan";
                  p_pes = pes;
                  p_jobs = j;
                  p_wall_s = wall;
                  p_cycles = cycles;
                  p_cycles_per_s = per cycles;
                  p_accesses = accesses;
                  p_accesses_per_s = per accesses;
                  p_minor_words = mw;
                };
              Format.fprintf ppf "%-8s %6d %5d %9.3fs %12d %8.2fx@."
                w.Workload.name pes j wall cycles speedup)
            scale_jobs)
        scale_pes)

(* ---- bechamel microbenchmarks -------------------------------------- *)

let micro () =
  header "Microbenchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let w = Tomcatv.workload ~n:32 ~iters:1 in
  let cfg16 = Ccdp_machine.Config.t3d ~n_pes:16 in
  let inlined = Ccdp_ir.Program.inline w.Workload.program in
  let ep = Ccdp_ir.Epoch.partition inlined.Ccdp_ir.Program.main in
  let infos = Ccdp_analysis.Ref_info.collect ep in
  let compiled32 = Pipeline.compile cfg16 w.Workload.program in
  let jac = Extras.jacobi ~n:24 ~iters:1 in
  let jac_compiled = Pipeline.compile (Ccdp_machine.Config.t3d ~n_pes:4) jac.Workload.program in
  let cache = Ccdp_machine.Cache.of_config cfg16 in
  let payload = Array.make cfg16.Ccdp_machine.Config.line_words 1.0 in
  let sec_a =
    Ccdp_ir.Section.of_dims
      [ Ccdp_ir.Section.dim ~lo:0 ~hi:500 ~step:3; Ccdp_ir.Section.dim ~lo:0 ~hi:500 ~step:2 ]
  in
  let sec_b =
    Ccdp_ir.Section.of_dims
      [ Ccdp_ir.Section.dim ~lo:1 ~hi:400 ~step:7; Ccdp_ir.Section.dim ~lo:3 ~hi:900 ~step:5 ]
  in
  let tests =
    [
      Test.make ~name:"section.inter (2-D strided)"
        (Staged.stage (fun () -> Ccdp_ir.Section.inter sec_a sec_b));
      Test.make ~name:"cache fill+read line"
        (Staged.stage (fun () ->
             ignore (Ccdp_machine.Cache.fill cache ~line:17 payload);
             Ccdp_machine.Cache.read cache ~addr:68));
      Test.make ~name:"stale analysis (tomcatv n=32, 16 PEs)"
        (Staged.stage (fun () ->
             let region = Ccdp_analysis.Region.make inlined ~n_pes:16 in
             Ccdp_analysis.Stale.analyze region infos));
      Test.make ~name:"full pipeline compile (tomcatv n=32)"
        (Staged.stage (fun () -> Pipeline.compile cfg16 w.Workload.program));
      Test.make ~name:"interp jacobi n=24 CCDP (4 PEs)"
        (Staged.stage (fun () ->
             Ccdp_runtime.Interp.run
               (Ccdp_machine.Config.t3d ~n_pes:4)
               jac_compiled.Pipeline.program ~plan:jac_compiled.Pipeline.plan
               ~mode:Ccdp_runtime.Memsys.Ccdp ()));
      Test.make ~name:"epoch partition + ref collection (tomcatv)"
        (Staged.stage (fun () ->
             Ccdp_analysis.Ref_info.collect
               (Ccdp_ir.Epoch.partition inlined.Ccdp_ir.Program.main)));
      (let text = Ccdp_core.Craft_emit.to_string compiled32 in
       Test.make ~name:"CRAFT parse (tomcatv source)"
         (Staged.stage (fun () -> Ccdp_ir.Craft_parse.program text)));
      Test.make ~name:"CRAFT emit (tomcatv)"
        (Staged.stage (fun () -> Ccdp_core.Craft_emit.to_string compiled32));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
    let raw = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
              Format.fprintf ppf "%-45s %12.0f ns/run@." name est
          | _ -> Format.fprintf ppf "%-45s (no estimate)@." name)
        results)
    tests

(* -j N / -jN / CCDP_JOBS, falling back to the domain count. Returns the
   job count and the argument list with the flag consumed. *)
let parse_jobs args =
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | "-j" :: v :: rest -> (int_of_string_opt v, List.rev_append acc rest)
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" ->
        (int_of_string_opt (String.sub a 2 (String.length a - 2)),
         List.rev_append acc rest)
    | a :: rest -> go (a :: acc) rest
  in
  let jobs, rest = go [] args in
  (Ccdp_exec.Pool.resolve_jobs ?jobs (), rest)

(* --machine NAME: restrict the machine sweep to one preset (any
   Config.preset_of_string name, e.g. t3d-mesh or crossbar). *)
let parse_machine args =
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | "--machine" :: v :: rest -> (Some v, List.rev_append acc rest)
    | a :: rest -> go (a :: acc) rest
  in
  let machine, rest = go [] args in
  (match machine with
  | Some m when Ccdp_machine.Config.preset_of_string m = None ->
      Printf.eprintf "unknown machine %S (presets: %s)\n" m
        (String.concat ", " Ccdp_machine.Config.preset_names);
      exit 2
  | _ -> ());
  (machine, rest)

let () =
  let jobs, args = parse_jobs (List.tl (Array.to_list Sys.argv)) in
  let machine, args = parse_machine args in
  let full = List.mem "--full" args in
  let sizes = if full then full_sizes else default_sizes in
  let quick = List.mem "--quick" args in
  let has cmd = List.mem cmd args in
  let all = has "all" || not (has "table1" || has "table2" || has "ablate" || has "sweep" || has "micro" || has "oracle" || has "perf" || has "machines" || has "rivals") in
  if all || has "table1" || has "table2" then tables sizes jobs;
  if all then extras_table sizes jobs;
  if all || has "ablate" then ablations sizes jobs;
  if all || has "sweep" then sweeps sizes jobs;
  if all || has "machines" then machines_bench sizes ~quick ~machine jobs;
  if all || has "rivals" then rivals_bench sizes ~quick jobs;
  if all || has "oracle" then oracle_overhead sizes;
  if all || has "perf" then perf sizes ~quick jobs;
  if has "micro" then micro ()
