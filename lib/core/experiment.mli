(** Experiment harness: regenerates the paper's Tables 1 and 2 plus the
    ablation studies indexed in DESIGN.md.

    Every parallel run is verified against the sequential execution (a wrong
    answer under any coherence scheme is an experiment failure, not a data
    point). Speedups are ratios of simulated machine cycles.

    The grid of simulator runs is embarrassingly parallel; every entry
    point that executes more than one run takes an optional [?jobs]
    argument and shards the runs over a {!Ccdp_exec.Pool}. Results are
    deterministic: the same rows, in the same order, for any job count
    (see DESIGN.md section 8). *)

type row = {
  workload : string;
  pes : int;
  seq_cycles : int;
  base_cycles : int;
  ccdp_cycles : int;
  base_ok : bool;
  ccdp_ok : bool;
  ccdp_stats : Ccdp_machine.Stats.t;
}

val base_speedup : row -> float
val ccdp_speedup : row -> float

(** Improvement in execution time of the CCDP code over the BASE code,
    percent (paper Table 2). *)
val improvement : row -> float

type spec = {
  pes : int list;
  verify : bool;
  tuning : Ccdp_analysis.Schedule.tuning;
}

val default_spec : spec

(** Run one workload at one machine width under one mode; compiles with the
    spec's tuning for CCDP-plan modes. [machine] selects the machine
    preset (default {!Ccdp_machine.Config.t3d}). [jobs > 1] simulates the
    run's DOALL epochs in that many domain shards (intra-run parallelism,
    see {!Ccdp_runtime.Interp.run}); the default runs serially without
    creating a pool — the simulated result is identical either way. *)
val run_mode :
  ?tuning:Ccdp_analysis.Schedule.tuning ->
  ?machine:(n_pes:int -> Ccdp_machine.Config.t) ->
  ?jobs:int ->
  n_pes:int ->
  Ccdp_runtime.Memsys.mode ->
  Ccdp_workloads.Workload.t ->
  Ccdp_runtime.Interp.result

(** Full BASE/CCDP/sequential matrix over the spec's PE counts, sharded
    over [jobs] domains (default: {!Ccdp_exec.Pool.resolve_jobs}). The
    row list is identical for every job count. *)
val evaluate :
  ?jobs:int -> ?spec:spec -> Ccdp_workloads.Workload.t list -> row list

(** A rendered experiment table: the unit of both the plain-text report
    ({!print_tbl}) and the JSON bench emission ({!Bench_json}). *)
type table = {
  title : string;
  headers : string list;
  trows : string list list;
}

val print_tbl : Format.formatter -> table -> unit

(** Paper Tables 1 and 2 as values. *)
val table1 : row list -> table

val table2 : row list -> table

(** Paper Table 1: speedups over sequential execution time. *)
val print_table1 : Format.formatter -> row list -> unit

(** Paper Table 2: % improvement of CCDP over BASE. *)
val print_table2 : Format.formatter -> row list -> unit

(** Machine-readable export of the evaluation rows (one line per
    workload/width with speedups, improvement and verification flags). *)
val csv_rows : Format.formatter -> row list -> unit

(** Ablation A: prefetch target analysis disabled (every potentially-stale
    reference prefetched individually) vs the full scheme. *)
val ablation_target_table :
  ?n_pes:int -> ?jobs:int -> Ccdp_workloads.Workload.t list -> table

(** Ablation B: scheduling restricted to a single technique. *)
val ablation_technique_table :
  ?n_pes:int -> ?jobs:int -> Ccdp_workloads.Workload.t list -> table

(** Ablation C: CCDP vs epoch-boundary invalidation vs BASE. *)
val ablation_coherence_table :
  ?n_pes:int -> ?jobs:int -> Ccdp_workloads.Workload.t list -> table

(** Experiment E (the paper's future work, Section 6): additionally
    prefetch the non-stale references as pure latency hiding. *)
val ablation_prefetch_clean_table :
  ?n_pes:int -> ?jobs:int -> Ccdp_workloads.Workload.t list -> table

(** Experiment G: the paper's one-level vector-prefetch pulling restriction
    vs Gornish's multi-level pulling (with the staging-displacement hazard
    modelled). *)
val ablation_vpg_levels_table :
  ?n_pes:int -> ?jobs:int -> Ccdp_workloads.Workload.t list -> table

(** Experiment F: uniform remote latency vs the 3-D torus distance model. *)
val ablation_topology_table :
  ?n_pes:int -> ?jobs:int -> Ccdp_workloads.Workload.t list -> table

(** The four T3D interconnect presets the machine sweep reports, in table
    order: uniform, torus, mesh, crossbar. *)
val machine_presets :
  (string * (n_pes:int -> Ccdp_machine.Config.t)) list

(** Machine sweep: workload × mode × interconnect. One row per
    (workload, machine preset) with BASE/CCDP cycles, improvement and the
    link-contention counters; [only] restricts the sweep to a single named
    preset (any {!Ccdp_machine.Config.preset_of_string} name). *)
val machines_table :
  ?n_pes:int ->
  ?only:string ->
  ?jobs:int ->
  Ccdp_workloads.Workload.t list ->
  table

val machines :
  ?n_pes:int ->
  ?only:string ->
  Ccdp_workloads.Workload.t list ->
  Format.formatter ->
  unit

(** The CXL-style coherence-cluster presets the cluster sweep reports, in
    table order: 2, 4 and 8 islands on the crossbar fabric. *)
val cluster_presets :
  (string * (n_pes:int -> Ccdp_machine.Config.t)) list

(** Coherence-cluster sweep: one row per (workload, cxl preset) running
    the Clustered mode, anchored against flat CCDP and the flat full-map
    directory on [t3d-xbar] (the same crossbar fabric without islands).
    Rows report cycles, the improvement over each anchor, and the
    intra-cluster hit / inter-cluster CCDP traffic counters. [only]
    restricts to a single cxl preset; a non-cxl [only] yields an empty
    table (the sweep has nothing to say about flat machines). *)
val clusters_table :
  ?n_pes:int ->
  ?only:string ->
  ?jobs:int ->
  Ccdp_workloads.Workload.t list ->
  table

val clusters :
  ?n_pes:int ->
  ?only:string ->
  Ccdp_workloads.Workload.t list ->
  Format.formatter ->
  unit

(** {1 Hardware-coherence rivals}

    Workload × mode × machine sweep pitting the compiler-directed schemes
    against hardware coherence: BASE (the normalization anchor), CCDP,
    MSI/MESI bus snooping and the full-map directory, on the torus and
    crossbar distance-modelled machines. Every run is verified against the
    sequential execution. *)

type rival_row = {
  rv_workload : string;
  rv_machine : string;
  rv_mode : string;
  rv_pes : int;
  rv_cycles : int;
  rv_norm : float;
      (** execution time normalized to BASE on the same workload+machine *)
  rv_ok : bool;
  rv_stats : Ccdp_machine.Stats.t;
}

(** The contending modes, table order: BASE, CCDP, MSI, MESI, DIR. *)
val rival_modes : Ccdp_runtime.Memsys.mode list

(** The machines swept: [t3d-torus] and [t3d-xbar]. *)
val rival_machines :
  (string * (n_pes:int -> Ccdp_machine.Config.t)) list

(** Row order: workload-major, then machine, then {!rival_modes} order.
    Deterministic for any [jobs]. Default [n_pes] = 64 — wide enough for
    bus arbitration to crush snooping on the crossbar. *)
val rivals_rows :
  ?n_pes:int -> ?jobs:int -> Ccdp_workloads.Workload.t list -> rival_row list

val rivals_table : rival_row list -> table

val rivals :
  ?n_pes:int -> Ccdp_workloads.Workload.t list -> Format.formatter -> unit

(** Printing shorthands for the ablation tables (sequential). *)
val ablation_target :
  ?n_pes:int -> Ccdp_workloads.Workload.t list -> Format.formatter -> unit

val ablation_technique :
  ?n_pes:int -> Ccdp_workloads.Workload.t list -> Format.formatter -> unit

val ablation_coherence :
  ?n_pes:int -> Ccdp_workloads.Workload.t list -> Format.formatter -> unit

val ablation_prefetch_clean :
  ?n_pes:int -> Ccdp_workloads.Workload.t list -> Format.formatter -> unit

val ablation_vpg_levels :
  ?n_pes:int -> Ccdp_workloads.Workload.t list -> Format.formatter -> unit

val ablation_topology :
  ?n_pes:int -> Ccdp_workloads.Workload.t list -> Format.formatter -> unit

(** Sweeps: remote latency, prefetch-queue capacity and cache capacity
    (shape studies), one row per point, sharded over [jobs]. *)
val sweep_remote_table :
  ?n_pes:int -> ?points:int list -> ?jobs:int -> Ccdp_workloads.Workload.t ->
  table

val sweep_queue_table :
  ?n_pes:int -> ?points:int list -> ?jobs:int -> Ccdp_workloads.Workload.t ->
  table

val sweep_cache_table :
  ?n_pes:int -> ?points:int list -> ?jobs:int -> Ccdp_workloads.Workload.t ->
  table

val sweep_remote :
  ?n_pes:int -> ?points:int list -> Ccdp_workloads.Workload.t ->
  Format.formatter -> unit

val sweep_queue :
  ?n_pes:int -> ?points:int list -> Ccdp_workloads.Workload.t ->
  Format.formatter -> unit

(** Cache-capacity sweep across the coherence schemes: blanket invalidation
    wastes retention that version-based HSCD and CCDP keep as capacity
    grows. *)
val sweep_cache :
  ?n_pes:int -> ?points:int list -> Ccdp_workloads.Workload.t ->
  Format.formatter -> unit
