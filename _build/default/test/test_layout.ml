open Ccdp_ir
open Ccdp_craft
open Ccdp_test_support.Tutil

let block_cols n p = Layout.make ~n_pes:p (Array_decl.make "A" [| n; n |] ~dist:(Dist.block_along ~rank:2 ~dim:1))
let cyclic_cols n p = Layout.make ~n_pes:p (Array_decl.make "A" [| n; n |] ~dist:(Dist.cyclic_along ~rank:2 ~dim:1))

let owners =
  [
    case "block: columns map to contiguous owners" (fun () ->
        let l = block_cols 8 4 in
        check_true "col0" (Layout.owner l [| 0; 0 |] = `Pe 0);
        check_true "col1" (Layout.owner l [| 5; 1 |] = `Pe 0);
        check_true "col2" (Layout.owner l [| 0; 2 |] = `Pe 1);
        check_true "col7" (Layout.owner l [| 0; 7 |] = `Pe 3));
    case "cyclic: columns deal round-robin" (fun () ->
        let l = cyclic_cols 8 4 in
        check_true "col0" (Layout.owner l [| 0; 0 |] = `Pe 0);
        check_true "col5" (Layout.owner l [| 0; 5 |] = `Pe 1);
        check_true "col7" (Layout.owner l [| 0; 7 |] = `Pe 3));
    case "replicated arrays are local everywhere" (fun () ->
        let l = Layout.make ~n_pes:4 (Array_decl.make "R" [| 4 |] ~dist:Dist.replicated) in
        check_true "local" (Layout.owner l [| 2 |] = `Local));
    case "undistributed shared array lives on PE 0" (fun () ->
        let l = Layout.make ~n_pes:4 (Array_decl.make "S" [| 4 |]
          ~dist:(Dist.Dims [| Dist.Degenerate |])) in
        check_true "pe0" (Layout.owner l [| 3 |] = `Pe 0));
    case "block_cyclic interleaves blocks" (fun () ->
        let l =
          Layout.make ~n_pes:2
            (Array_decl.make "A" [| 2; 8 |] ~dist:(Dist.Dims [| Dist.Degenerate; Dist.Block_cyclic 2 |]))
        in
        check_true "cols 0-1 pe0" (Layout.owner l [| 0; 1 |] = `Pe 0);
        check_true "cols 2-3 pe1" (Layout.owner l [| 0; 2 |] = `Pe 1);
        check_true "cols 4-5 pe0" (Layout.owner l [| 0; 4 |] = `Pe 0));
  ]

let offsets =
  [
    case "per-PE words: block columns" (fun () ->
        let l = block_cols 8 4 in
        check_int "2 cols x 8" 16 l.Layout.per_pe_words);
    case "local offsets are column-major within the portion" (fun () ->
        let l = block_cols 8 4 in
        (* PE 1 holds columns 2,3: element (0,2) is its word 0; (1,2) word 1;
           (0,3) word 8 *)
        check_int "0,2" 0 (Layout.local_offset l [| 0; 2 |]);
        check_int "1,2" 1 (Layout.local_offset l [| 1; 2 |]);
        check_int "0,3" 8 (Layout.local_offset l [| 0; 3 |]));
    case "cyclic local offsets compress the stride" (fun () ->
        let l = cyclic_cols 8 4 in
        (* PE 0 holds columns 0 and 4: (0,4) is word 8 *)
        check_int "0,0" 0 (Layout.local_offset l [| 0; 0 |]);
        check_int "0,4" 8 (Layout.local_offset l [| 0; 4 |]));
    case "offsets stay within the per-PE extent" (fun () ->
        let l = block_cols 8 4 in
        for i = 0 to 7 do
          for j = 0 to 7 do
            let off = Layout.local_offset l [| i; j |] in
            check_true "in range" (off >= 0 && off < l.Layout.per_pe_words)
          done
        done);
  ]

let owned =
  [
    case "owned_section of block columns" (fun () ->
        let l = block_cols 8 4 in
        let s = Layout.owned_section l 1 in
        check_true "owns (0,2)" (Section.mem s [| 0; 2 |]);
        check_true "owns (7,3)" (Section.mem s [| 7; 3 |]);
        check_false "not (0,4)" (Section.mem s [| 0; 4 |]));
    case "owned_section of cyclic columns is strided" (fun () ->
        let l = cyclic_cols 8 4 in
        let s = Layout.owned_section l 1 in
        check_true "col1" (Section.mem s [| 0; 1 |]);
        check_true "col5" (Section.mem s [| 0; 5 |]);
        check_false "col2" (Section.mem s [| 0; 2 |]));
    case "PE beyond the data owns nothing (block)" (fun () ->
        let l = block_cols 4 8 in
        check_true "empty" (Section.is_empty (Layout.owned_section l 7)));
    case "replicated owned section is whole" (fun () ->
        let l = Layout.make ~n_pes:4 (Array_decl.make "R" [| 4 |] ~dist:Dist.replicated) in
        check_true "whole" (Layout.owned_section l 2 = Section.whole));
  ]

let props =
  [
    qcheck "owner matches owned_section membership (block)"
      QCheck.(pair (int_range 0 7) (int_range 0 7))
      (fun (i, j) ->
        let l = block_cols 8 4 in
        match Layout.owner l [| i; j |] with
        | `Pe p -> Section.mem (Layout.owned_section l p) [| i; j |]
        | `Local -> false);
    qcheck "owner matches owned_section membership (cyclic)"
      QCheck.(pair (int_range 0 7) (int_range 0 7))
      (fun (i, j) ->
        let l = cyclic_cols 8 4 in
        match Layout.owner l [| i; j |] with
        | `Pe p -> Section.mem (Layout.owned_section l p) [| i; j |]
        | `Local -> false);
    qcheck "local_offset is injective per PE (block)"
      QCheck.(pair (pair (int_range 0 7) (int_range 0 7)) (pair (int_range 0 7) (int_range 0 7)))
      (fun ((i1, j1), (i2, j2)) ->
        let l = block_cols 8 4 in
        let o1 = Layout.owner l [| i1; j1 |] and o2 = Layout.owner l [| i2; j2 |] in
        o1 <> o2
        || (i1, j1) = (i2, j2)
        || Layout.local_offset l [| i1; j1 |] <> Layout.local_offset l [| i2; j2 |]);
  ]

let () =
  Alcotest.run "layout"
    [ ("owners", owners); ("offsets", offsets); ("owned-sections", owned); ("properties", props) ]
