open Ccdp_ir
open Ccdp_test_support.Tutil

let d ~lo ~hi ~step = Section.dim ~lo ~hi ~step
let s1 dims = Section.of_dims dims

let normalization =
  [
    case "dim clamps hi to last reached element" (fun () ->
        let x = d ~lo:0 ~hi:10 ~step:4 in
        check_int "hi" 8 x.Section.hi);
    case "single element gets step 1" (fun () ->
        let x = d ~lo:3 ~hi:3 ~step:7 in
        check_int "step" 1 x.Section.step);
    case "dim rejects non-positive step" (fun () ->
        Alcotest.check_raises "step 0" (Invalid_argument "Section.dim: step <= 0")
          (fun () -> ignore (d ~lo:0 ~hi:1 ~step:0)));
    case "dim rejects inverted range" (fun () ->
        Alcotest.check_raises "lo>hi" (Invalid_argument "Section.dim: lo > hi")
          (fun () -> ignore (d ~lo:2 ~hi:1 ~step:1)));
    case "box with inverted dimension is empty" (fun () ->
        check_true "empty" (Section.is_empty (Section.box ~lo:[| 0; 5 |] ~hi:[| 3; 4 |])));
    case "point size is 1" (fun () ->
        check_true "size" (Section.size (Section.point [| 2; 3 |]) = Some 1));
    case "size multiplies dimensions" (fun () ->
        let s = s1 [ d ~lo:0 ~hi:9 ~step:1; d ~lo:0 ~hi:8 ~step:2 ] in
        check_true "50" (Section.size s = Some 50));
    case "whole has no size" (fun () -> check_true "none" (Section.size Section.whole = None));
  ]

let overlap_cases =
  [
    case "identical progressions overlap" (fun () ->
        let s = s1 [ d ~lo:0 ~hi:20 ~step:4 ] in
        check_true "ov" (Section.overlaps s s));
    case "interleaved strides with incompatible phase do not overlap" (fun () ->
        (* evens vs odds *)
        let a = s1 [ d ~lo:0 ~hi:20 ~step:2 ] and b = s1 [ d ~lo:1 ~hi:21 ~step:2 ] in
        check_false "disjoint" (Section.overlaps a b));
    case "CRT-compatible strides overlap" (fun () ->
        (* 1 mod 3 and 0 mod 2 share 4, 10, 16 ... *)
        let a = s1 [ d ~lo:1 ~hi:19 ~step:3 ] and b = s1 [ d ~lo:0 ~hi:18 ~step:2 ] in
        check_true "ov" (Section.overlaps a b));
    case "ranges apart never overlap" (fun () ->
        let a = s1 [ d ~lo:0 ~hi:5 ~step:1 ] and b = s1 [ d ~lo:6 ~hi:9 ~step:1 ] in
        check_false "apart" (Section.overlaps a b));
    case "empty overlaps nothing" (fun () ->
        check_false "empty" (Section.overlaps Section.empty Section.whole));
    case "whole overlaps anything non-empty" (fun () ->
        check_true "whole" (Section.overlaps Section.whole (Section.point [| 1 |])));
    case "solution exists arithmetically but outside range" (fun () ->
        (* 0 mod 6 and 3 mod 9: first common value is 12, beyond both ranges *)
        let a = s1 [ d ~lo:0 ~hi:10 ~step:6 ] and b = s1 [ d ~lo:3 ~hi:11 ~step:9 ] in
        check_false "out of range" (Section.overlaps a b));
    case "2-D overlap needs every dimension" (fun () ->
        let a = Section.box ~lo:[| 0; 0 |] ~hi:[| 3; 3 |] in
        let b = Section.box ~lo:[| 2; 5 |] ~hi:[| 6; 9 |] in
        check_false "dim1 disjoint" (Section.overlaps a b));
  ]

let inter_contains =
  [
    case "inter of strided progressions is the CRT progression" (fun () ->
        let a = s1 [ d ~lo:0 ~hi:30 ~step:2 ] and b = s1 [ d ~lo:0 ~hi:30 ~step:3 ] in
        match Section.inter a b with
        | Section.Dims [| x |] ->
            check_int "lo" 0 x.Section.lo;
            check_int "step" 6 x.Section.step;
            check_int "hi" 30 x.Section.hi
        | _ -> Alcotest.fail "expected dims");
    case "inter with whole is identity" (fun () ->
        let a = s1 [ d ~lo:2 ~hi:8 ~step:3 ] in
        check_true "id" (Section.equal a (Section.inter a Section.whole)));
    case "inter of disjoint is empty" (fun () ->
        let a = s1 [ d ~lo:0 ~hi:4 ~step:2 ] and b = s1 [ d ~lo:1 ~hi:5 ~step:2 ] in
        check_true "empty" (Section.is_empty (Section.inter a b)));
    case "contains: sub-range with compatible stride" (fun () ->
        let outer = s1 [ d ~lo:0 ~hi:20 ~step:2 ] and inner = s1 [ d ~lo:4 ~hi:12 ~step:4 ] in
        check_true "contains" (Section.contains outer inner));
    case "contains fails on phase mismatch" (fun () ->
        let outer = s1 [ d ~lo:0 ~hi:20 ~step:2 ] and inner = s1 [ d ~lo:1 ~hi:5 ~step:2 ] in
        check_false "phase" (Section.contains outer inner));
    case "whole contains everything, nothing but whole contains whole" (fun () ->
        check_true "w" (Section.contains Section.whole (Section.point [| 9 |]));
        check_false "d" (Section.contains (Section.point [| 9 |]) Section.whole));
    case "everything contains empty" (fun () ->
        check_true "e" (Section.contains Section.empty Section.empty);
        check_true "p" (Section.contains (Section.point [| 1 |]) Section.empty));
    case "hull covers both operands" (fun () ->
        let a = s1 [ d ~lo:0 ~hi:8 ~step:4 ] and b = s1 [ d ~lo:2 ~hi:10 ~step:4 ] in
        let h = Section.hull a b in
        check_true "a" (Section.contains h a);
        check_true "b" (Section.contains h b));
    case "mem respects stride" (fun () ->
        let s = s1 [ d ~lo:1 ~hi:9 ~step:4 ] in
        check_true "5 in" (Section.mem s [| 5 |]);
        check_false "4 out" (Section.mem s [| 4 |]));
  ]

let from_subscripts =
  [
    case "range of i + 1 over i in 0..9" (fun () ->
        match Section.range_of_affine (Affine.add (Affine.var "i") Affine.one) [ ("i", (0, 9, 1)) ] with
        | Some x ->
            check_int "lo" 1 x.Section.lo;
            check_int "hi" 10 x.Section.hi;
            check_int "step" 1 x.Section.step
        | None -> Alcotest.fail "some");
    case "negative coefficient reverses the range" (fun () ->
        match
          Section.range_of_affine
            (Affine.sub (Affine.const 10) (Affine.var "i"))
            [ ("i", (0, 4, 1)) ]
        with
        | Some x ->
            check_int "lo" 6 x.Section.lo;
            check_int "hi" 10 x.Section.hi
        | None -> Alcotest.fail "some");
    case "coefficient scales the step" (fun () ->
        match Section.range_of_affine (Affine.term 3 "i") [ ("i", (0, 4, 2)) ] with
        | Some x -> check_int "step" 6 x.Section.step
        | None -> Alcotest.fail "some");
    case "two varying variables widen step to gcd" (fun () ->
        match
          Section.range_of_affine
            (Affine.of_terms 0 [ ("i", 4); ("j", 6) ])
            [ ("i", (0, 3, 1)); ("j", (0, 3, 1)) ]
        with
        | Some x -> check_int "step" 2 x.Section.step
        | None -> Alcotest.fail "some");
    case "unbound variable yields None" (fun () ->
        check_true "none" (Section.range_of_affine (Affine.var "k") [ ("i", (0, 3, 1)) ] = None));
    case "of_subscripts collapses to Whole on unknown" (fun () ->
        let s = Section.of_subscripts [| Affine.var "i"; Affine.var "zz" |] [ ("i", (0, 3, 1)) ] in
        check_true "whole" (s = Section.whole));
    case "of_subscripts builds per-dimension triplets" (fun () ->
        let s =
          Section.of_subscripts
            [| Affine.var "i"; Affine.add (Affine.var "j") Affine.one |]
            [ ("i", (0, 5, 1)); ("j", (2, 6, 2)) ]
        in
        check_true "mem" (Section.mem s [| 3; 5 |]);
        check_false "stride excluded" (Section.mem s [| 3; 4 |]))
  ]

(* ---- properties against brute force ---- *)

let gen_dim =
  QCheck.Gen.(
    let* lo = int_range (-10) 10 in
    let* len = int_range 0 20 in
    let* step = int_range 1 6 in
    return (d ~lo ~hi:(lo + len) ~step))

let gen_sec1 = QCheck.make QCheck.Gen.(map (fun x -> s1 [ x ]) gen_dim)
    ~print:Section.to_string

let gen_sec2 =
  QCheck.make
    QCheck.Gen.(map2 (fun a b -> s1 [ a; b ]) gen_dim gen_dim)
    ~print:Section.to_string

let brute_overlap1 a b =
  let ea = enum_section1 a and eb = enum_section1 b in
  List.exists (fun x -> List.mem x eb) ea

let props =
  [
    qcheck "overlaps agrees with brute force (1-D)" (QCheck.pair gen_sec1 gen_sec1)
      (fun (a, b) -> Section.overlaps a b = brute_overlap1 a b);
    qcheck "inter is exact in 1-D" (QCheck.pair gen_sec1 gen_sec1) (fun (a, b) ->
        let inter = Section.inter a b in
        let brute =
          List.filter (fun x -> List.mem x (enum_section1 b)) (enum_section1 a)
        in
        match inter with
        | Section.Empty -> brute = []
        | _ -> enum_section1 inter = brute);
    qcheck "contains is sound (1-D)" (QCheck.pair gen_sec1 gen_sec1) (fun (a, b) ->
        (not (Section.contains a b))
        || List.for_all (fun x -> List.mem x (enum_section1 a)) (enum_section1 b));
    qcheck "hull contains both operands (2-D)" (QCheck.pair gen_sec2 gen_sec2)
      (fun (a, b) ->
        let h = Section.hull a b in
        Section.contains h a && Section.contains h b);
    qcheck "mem agrees with enumeration (2-D)" gen_sec2 (fun s ->
        List.for_all (fun (x, y) -> Section.mem s [| x; y |]) (enum_section2 s));
    qcheck "overlap in 2-D is conservative vs brute force" (QCheck.pair gen_sec2 gen_sec2)
      (fun (a, b) ->
        let brute =
          List.exists (fun p -> List.mem p (enum_section2 b)) (enum_section2 a)
        in
        (not brute) || Section.overlaps a b);
  ]

let algebra_props =
  [
    qcheck "inter is idempotent" gen_sec2 (fun a ->
        Section.equal (Section.inter a a) a);
    qcheck "inter commutes (1-D)" (QCheck.pair gen_sec1 gen_sec1) (fun (a, b) ->
        Section.equal (Section.inter a b) (Section.inter b a));
    qcheck "hull is idempotent" gen_sec2 (fun a ->
        Section.equal (Section.hull a a) a);
    qcheck "inter is contained in both operands (1-D)"
      (QCheck.pair gen_sec1 gen_sec1)
      (fun (a, b) ->
        let i = Section.inter a b in
        Section.contains a i && Section.contains b i);
    qcheck "of_subscripts_exact agrees with of_subscripts when defined"
      (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range 0 6))
      (fun (c, lo) ->
        let subs = [| Affine.of_terms c [ ("i", 2) ]; Affine.var "j" |] in
        let env = [ ("i", (lo, lo + 5, 1)); ("j", (0, 4, 2)) ] in
        match Section.of_subscripts_exact subs env with
        | Some e -> Section.equal e (Section.of_subscripts subs env)
        | None -> false);
    qcheck "coupled subscripts are never exact" (QCheck.int_range 0 5) (fun lo ->
        let subs = [| Affine.var "i"; Affine.var "i" |] in
        Section.of_subscripts_exact subs [ ("i", (lo, lo + 3, 1)) ] = None);
  ]

let () =
  Alcotest.run "section"
    [
      ("normalization", normalization);
      ("overlap", overlap_cases);
      ("inter-contains-hull", inter_contains);
      ("from-subscripts", from_subscripts);
      ("properties", props);
      ("algebra", algebra_props);
    ]
