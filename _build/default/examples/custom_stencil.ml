(* Building your own workload with the IR DSL.

   A 9-point box smoother with red/black-ish phases, written from scratch:
   declare distributed arrays, build the loop nests, and hand the program
   to the same pipeline the SPEC kernels use. Shows that group-spatial
   detection covers the three row-offset neighbours with one prefetch, and
   that the column halos become vector prefetches.

   Run with: dune exec examples/custom_stencil.exe *)

open Ccdp_ir
open Ccdp_runtime
open Ccdp_core
module B = Builder
module F = Builder.F

let build ~n ~iters =
  let b = B.create ~name:"box9" () in
  B.param b "n" n;
  B.param b "niter" iters;
  let dist = Dist.block_along ~rank:2 ~dim:1 in
  B.array_ b "U" [| n; n |] ~dist;
  B.array_ b "W" [| n; n |] ~dist;
  let open B.A in
  let rd = B.rd b in
  let i = v "i" and j = v "j" in
  let init =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "U" [ i; j ]
              F.((F.iv "i" * const 0.01) - (F.iv "j" * const 0.02));
            B.assign b "W" [ i; j ] (F.const 0.0);
          ];
      ]
  in
  (* nine-point box average: three full columns of the source *)
  let smooth src dst =
    B.doall b "j" ~sched:(Stmt.Static_aligned n) (bc 1)
      (bc (n - 2))
      [
        B.for_ b "i" (bc 1)
          (bc (n - 2))
          [
            B.assign b dst [ i; j ]
              F.(
                const (1.0 /. 9.0)
                * (rd src [ i -! c 1; j -! c 1 ]
                  + rd src [ i; j -! c 1 ]
                  + rd src [ i +! c 1; j -! c 1 ]
                  + rd src [ i -! c 1; j ]
                  + rd src [ i; j ]
                  + rd src [ i +! c 1; j ]
                  + rd src [ i -! c 1; j +! c 1 ]
                  + rd src [ i; j +! c 1 ]
                  + rd src [ i +! c 1; j +! c 1 ]));
          ];
      ]
  in
  let loop = B.for_ b "it" (bc 1) (bv "niter") [ smooth "U" "W"; smooth "W" "U" ] in
  B.finish b [ init; loop ]

let () =
  let n_pes = 8 in
  let program = build ~n:32 ~iters:2 in
  let cfg = Ccdp_machine.Config.t3d ~n_pes in
  let compiled = Pipeline.compile cfg program in

  Format.printf "Nine-point stencil, %d PEs.@.@." n_pes;
  Format.printf "%a@.@." Ccdp_analysis.Target.pp compiled.Pipeline.target;
  Format.printf "%a@.@." Ccdp_analysis.Schedule.pp_decisions compiled.Pipeline.decisions;

  (* each column of neighbours collapses to one lead: 9 stale reads per
     smoothing direction, 3 groups (one per source column) *)
  let counts = Ccdp_analysis.Annot.count compiled.Pipeline.plan in
  Format.printf "classes: %a@.@." Ccdp_analysis.Annot.pp_counts counts;

  let run mode plan =
    (Interp.run cfg compiled.Pipeline.program ~plan ~mode ()).Interp.cycles
  in
  let base = run Memsys.Base (Ccdp_analysis.Annot.empty ()) in
  let ccdp = run Memsys.Ccdp compiled.Pipeline.plan in
  Format.printf "BASE %d cycles, CCDP %d cycles: %.1f%% better.@." base ccdp
    (100.0 *. float_of_int (base - ccdp) /. float_of_int base);

  (* prove coherence numerically *)
  let r =
    Interp.run cfg compiled.Pipeline.program ~plan:compiled.Pipeline.plan
      ~mode:Memsys.Ccdp ()
  in
  let v = Verify.against_sequential program ~init:(fun _ -> ()) r in
  Format.printf "%a@." Verify.pp_report v
