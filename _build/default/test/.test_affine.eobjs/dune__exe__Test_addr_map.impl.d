test/test_addr_map.ml: Addr_map Alcotest Builder Ccdp_ir Ccdp_runtime Ccdp_test_support Dist Hashtbl List Stmt
