open Ccdp_ir
open Ccdp_analysis
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

(* program with: parallel epoch (doall j { for i { ... } }), serial epoch
   with straight-line code and an if inside a loop, inside a time loop *)
let sample () =
  let b = B.create ~name:"ri" () in
  B.param b "n" 8;
  B.array_ b "A" [| 8; 8 |];
  B.array_ b "Bv" [| 8; 8 |];
  let open B.A in
  let i = v "i" and j = v "j" in
  let par =
    B.doall b "j" (bc 0) (bc 7)
      [
        B.for_ b "i" (bc 0) (bc 7)
          [ B.assign b "A" [ i; j ] F.(B.rd b "Bv" [ i; j ] + const 1.0) ];
      ]
  in
  let guarded_loop =
    B.for_ b "k" (bc 0) (bc 7)
      [
        Stmt.Sassign ("t", F.const 0.0);
        Stmt.If
          ( Stmt.Icond (Stmt.Lt, v "k", c 4),
            [ B.assign b "A" [ v "k"; c 0 ] (B.rd b "Bv" [ v "k"; c 1 ]) ],
            [] );
      ]
  in
  let serial =
    [
      B.assign b "A" [ c 0; c 0 ] (B.rd b "Bv" [ c 0; c 0 ]);
      guarded_loop;
    ]
  in
  let p = B.finish b [ B.for_ b "t" (bc 1) (bc 2) (par :: serial) ] in
  let p = Program.inline p in
  let ep = Epoch.partition p.Program.main in
  (p, ep, Ref_info.collect ep)

let find_read infos name =
  List.find
    (fun (i : Ref_info.t) ->
      (not i.write) && String.equal i.ref_.Reference.array_name name)
    infos

let tests =
  [
    case "collect finds every reference" (fun () ->
        let _, _, infos = sample () in
        check_int "count" 6 (List.length infos));
    case "parallel-epoch refs carry the DOALL and inner loop" (fun () ->
        let _, _, infos = sample () in
        let r =
          List.find
            (fun (i : Ref_info.t) -> (not i.write) && i.par_loop <> None)
            infos
        in
        check_int "two loops in epoch" 2 (List.length r.loops);
        check_true "in innermost" r.in_innermost;
        check_int "outer serial t" 1 (List.length r.outer_serial));
    case "straight-line serial refs have no epoch loops" (fun () ->
        let _, _, infos = sample () in
        let r =
          List.find
            (fun (i : Ref_info.t) ->
              (not i.write) && i.loops = [] && i.par_loop = None)
            infos
        in
        check_false "not innermost" r.in_innermost;
        check_int "no ifs" 0 r.if_depth);
    case "guarded refs record if context" (fun () ->
        let _, _, infos = sample () in
        let r =
          List.find
            (fun (i : Ref_info.t) -> (not i.write) && i.if_depth > 0)
            infos
        in
        check_true "if in loop" r.if_in_loop;
        check_true "loop has if" r.loop_has_if;
        check_true "in innermost" r.in_innermost);
    case "stmts_before records the moving window" (fun () ->
        let _, _, infos = sample () in
        let r =
          List.find
            (fun (i : Ref_info.t) -> (not i.write) && i.if_depth > 0)
            infos
        in
        (* inside the branch: window resets at the branch boundary *)
        check_int "window" 0 (List.length r.stmts_before));
    case "epoch numbering matches partition order" (fun () ->
        let _, ep, infos = sample () in
        let max_epoch =
          List.fold_left (fun acc (i : Ref_info.t) -> max acc i.epoch) 0 infos
        in
        check_int "epochs" (ep.Epoch.count - 1) max_epoch);
    case "index builds a lookup keyed by id" (fun () ->
        let _, _, infos = sample () in
        let idx = Ref_info.index infos in
        List.iter
          (fun (i : Ref_info.t) ->
            check_true "found" (Hashtbl.mem idx i.ref_.Reference.id))
          infos);
    case "writes are flagged" (fun () ->
        let _, _, infos = sample () in
        let w = List.filter (fun (i : Ref_info.t) -> i.write) infos in
        check_int "3 writes" 3 (List.length w));
    case "scope_loops concatenates structure and epoch loops" (fun () ->
        let _, _, infos = sample () in
        let r = find_read infos "Bv" in
        check_true "starts with t"
          ((List.hd (Ref_info.scope_loops r)).Stmt.var = "t"));
  ]

let () = Alcotest.run "ref-info" [ ("collect", tests) ]
