open Ccdp_ir
open Ccdp_runtime
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

let dist = Dist.block_along ~rank:2 ~dim:1

let program () =
  let b = B.create ~name:"am" () in
  B.array_ b "A" [| 8; 8 |] ~dist;
  B.array_ b "R" [| 8 |] ~dist:Dist.replicated;
  B.array_ b "Pv" [| 8 |] ~shared:false;
  B.finish b [ Stmt.Assign (B.ref_ b "A" [ B.A.c 0; B.A.c 0 ], F.const 0.0) ]

let map () = Addr_map.make (program ()) ~n_pes:4 ~line_words:4 ()

let tests =
  [
    case "resolve distributed: owner-local vs remote" (fun () ->
        let m = map () in
        let _, w = Addr_map.resolve m ~pe:0 "A" [| 0; 0 |] in
        check_true "local" (w = `Local);
        let _, w = Addr_map.resolve m ~pe:0 "A" [| 0; 7 |] in
        check_true "remote to 3" (w = `Remote 3));
    case "remote addresses live in the owner's window" (fun () ->
        let m = map () in
        let a, _ = Addr_map.resolve m ~pe:0 "A" [| 0; 7 |] in
        check_true "window" (a >= 3 * Addr_map.pe_span m && a < 4 * Addr_map.pe_span m));
    case "replicated arrays resolve locally on every PE" (fun () ->
        let m = map () in
        let a0, w0 = Addr_map.resolve m ~pe:0 "R" [| 3 |] in
        let a2, w2 = Addr_map.resolve m ~pe:2 "R" [| 3 |] in
        check_true "local both" (w0 = `Local && w2 = `Local);
        check_true "different copies" (a0 <> a2));
    case "all_copies of replicated lists one per PE" (fun () ->
        let m = map () in
        check_int "4 copies" 4 (List.length (Addr_map.all_copies m "R" [| 3 |]));
        check_int "1 copy" 1 (List.length (Addr_map.all_copies m "A" [| 0; 0 |])));
    case "canonical picks the owner copy" (fun () ->
        let m = map () in
        let c = Addr_map.canonical m "A" [| 0; 5 |] in
        let a, _ = Addr_map.resolve m ~pe:2 "A" [| 0; 5 |] in
        check_int "owner copy" a c);
    case "distinct elements get distinct addresses" (fun () ->
        let m = map () in
        let seen = Hashtbl.create 64 in
        for i = 0 to 7 do
          for j = 0 to 7 do
            let a = Addr_map.canonical m "A" [| i; j |] in
            check_false "dup" (Hashtbl.mem seen a);
            Hashtbl.replace seen a ()
          done
        done);
    case "total_words covers every resolved address" (fun () ->
        let m = map () in
        for i = 0 to 7 do
          for j = 0 to 7 do
            for pe = 0 to 3 do
              let a, _ = Addr_map.resolve m ~pe "A" [| i; j |] in
              check_true "bounded" (a >= 0 && a < Addr_map.total_words m)
            done
          done
        done);
    case "coloring separates equal elements of different arrays" (fun () ->
        let b = B.create ~name:"col" () in
        B.array_ b "X" [| 8; 8 |] ~dist;
        B.array_ b "Y" [| 8; 8 |] ~dist;
        let p = B.finish b [ Stmt.Assign (B.ref_ b "X" [ B.A.c 0; B.A.c 0 ], F.const 0.0) ] in
        let m = Addr_map.make p ~n_pes:4 ~line_words:4 ~cache_lines:256 ()
        in
        let ax = Addr_map.canonical m "X" [| 0; 0 |] in
        let ay = Addr_map.canonical m "Y" [| 0; 0 |] in
        check_false "different sets" (ax / 4 mod 256 = ay / 4 mod 256));
  ]

(* round trips between the three views of an element: (pe, name, index)
   resolution, the canonical owner copy, and the all-copies enumeration *)
let round_trips =
  [
    case "owner resolution round-trips through the canonical address"
      (fun () ->
        let m = map () in
        for i = 0 to 7 do
          for j = 0 to 7 do
            let c = Addr_map.canonical m "A" [| i; j |] in
            let owner = c / Addr_map.pe_span m in
            let a, w = Addr_map.resolve m ~pe:owner "A" [| i; j |] in
            check_int "same address" c a;
            check_true "owner is local" (w = `Local)
          done
        done);
    case "resolve lands in all_copies for every PE" (fun () ->
        let m = map () in
        List.iter
          (fun (name, idx) ->
            let copies = Addr_map.all_copies m name idx in
            for pe = 0 to 3 do
              let a, _ = Addr_map.resolve m ~pe name idx in
              check_true "member" (List.mem a copies)
            done)
          [ ("A", [| 2; 5 |]); ("R", [| 3 |]); ("Pv", [| 6 |]) ]);
    case "remote tag names the owner window" (fun () ->
        let m = map () in
        for pe = 0 to 3 do
          for j = 0 to 7 do
            let a, w = Addr_map.resolve m ~pe "A" [| 1; j |] in
            match w with
            | `Local ->
                check_int "local window" pe (a / Addr_map.pe_span m)
            | `Remote owner ->
                check_int "remote window" owner (a / Addr_map.pe_span m);
                check_false "never self" (owner = pe)
          done
        done);
    case "array bases are line-aligned in every window" (fun () ->
        let m = map () in
        List.iter
          (fun (name, idx) ->
            List.iter
              (fun a -> check_int "aligned" 0 (a mod 4))
              (Addr_map.all_copies m name idx))
          [ ("A", [| 0; 0 |]); ("R", [| 0 |]); ("Pv", [| 0 |]) ]);
    case "replicated copies land at the same window offset" (fun () ->
        let m = map () in
        let offsets =
          List.map
            (fun a -> a mod Addr_map.pe_span m)
            (Addr_map.all_copies m "R" [| 5 |])
        in
        match offsets with
        | o :: rest -> List.iter (fun o' -> check_int "offset" o o') rest
        | [] -> Alcotest.fail "no copies");
  ]

let () =
  Alcotest.run "addr-map" [ ("mapping", tests); ("round-trips", round_trips) ]
