type t = {
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
  mutable miss_local : int;
  mutable miss_remote : int;
  mutable uncached_local : int;
  mutable uncached_remote : int;
  mutable bypass_reads : int;
  mutable pf_issued : int;
  mutable pf_vector : int;
  mutable pf_vector_words : int;
  mutable pf_on_time : int;
  mutable pf_late : int;
  mutable pf_late_cycles : int;
  mutable pf_dropped : int;
  mutable pf_unused : int;
  mutable pf_evicted : int;
  mutable annex_hits : int;
  mutable annex_misses : int;
  mutable invalidations : int;
  mutable upgrades : int;
  mutable dir_msgs : int;
  mutable bus_conflicts : int;
  mutable cluster_hits : int;
  mutable cluster_inter : int;
  mutable barriers : int;
  mutable flop_cycles : int;
  mutable stall_cycles : int;
  mutable link_conflicts : int;
  mutable link_occ_max : int;
  mutable lock_acquires : int;
  mutable lock_stall_cycles : int;
}

let create () =
  {
    reads = 0;
    writes = 0;
    hits = 0;
    miss_local = 0;
    miss_remote = 0;
    uncached_local = 0;
    uncached_remote = 0;
    bypass_reads = 0;
    pf_issued = 0;
    pf_vector = 0;
    pf_vector_words = 0;
    pf_on_time = 0;
    pf_late = 0;
    pf_late_cycles = 0;
    pf_dropped = 0;
    pf_unused = 0;
    pf_evicted = 0;
    annex_hits = 0;
    annex_misses = 0;
    invalidations = 0;
    upgrades = 0;
    dir_msgs = 0;
    bus_conflicts = 0;
    cluster_hits = 0;
    cluster_inter = 0;
    barriers = 0;
    flop_cycles = 0;
    stall_cycles = 0;
    link_conflicts = 0;
    link_occ_max = 0;
    lock_acquires = 0;
    lock_stall_cycles = 0;
  }

let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.hits <- 0;
  t.miss_local <- 0;
  t.miss_remote <- 0;
  t.uncached_local <- 0;
  t.uncached_remote <- 0;
  t.bypass_reads <- 0;
  t.pf_issued <- 0;
  t.pf_vector <- 0;
  t.pf_vector_words <- 0;
  t.pf_on_time <- 0;
  t.pf_late <- 0;
  t.pf_late_cycles <- 0;
  t.pf_dropped <- 0;
  t.pf_unused <- 0;
  t.pf_evicted <- 0;
  t.annex_hits <- 0;
  t.annex_misses <- 0;
  t.invalidations <- 0;
  t.upgrades <- 0;
  t.dir_msgs <- 0;
  t.bus_conflicts <- 0;
  t.cluster_hits <- 0;
  t.cluster_inter <- 0;
  t.barriers <- 0;
  t.flop_cycles <- 0;
  t.stall_cycles <- 0;
  t.link_conflicts <- 0;
  t.link_occ_max <- 0;
  t.lock_acquires <- 0;
  t.lock_stall_cycles <- 0

let merge a b =
  {
    reads = a.reads + b.reads;
    writes = a.writes + b.writes;
    hits = a.hits + b.hits;
    miss_local = a.miss_local + b.miss_local;
    miss_remote = a.miss_remote + b.miss_remote;
    uncached_local = a.uncached_local + b.uncached_local;
    uncached_remote = a.uncached_remote + b.uncached_remote;
    bypass_reads = a.bypass_reads + b.bypass_reads;
    pf_issued = a.pf_issued + b.pf_issued;
    pf_vector = a.pf_vector + b.pf_vector;
    pf_vector_words = a.pf_vector_words + b.pf_vector_words;
    pf_on_time = a.pf_on_time + b.pf_on_time;
    pf_late = a.pf_late + b.pf_late;
    pf_late_cycles = a.pf_late_cycles + b.pf_late_cycles;
    pf_dropped = a.pf_dropped + b.pf_dropped;
    pf_unused = a.pf_unused + b.pf_unused;
    pf_evicted = a.pf_evicted + b.pf_evicted;
    annex_hits = a.annex_hits + b.annex_hits;
    annex_misses = a.annex_misses + b.annex_misses;
    invalidations = a.invalidations + b.invalidations;
    upgrades = a.upgrades + b.upgrades;
    dir_msgs = a.dir_msgs + b.dir_msgs;
    bus_conflicts = a.bus_conflicts + b.bus_conflicts;
    cluster_hits = a.cluster_hits + b.cluster_hits;
    cluster_inter = a.cluster_inter + b.cluster_inter;
    barriers = max a.barriers b.barriers;
    flop_cycles = a.flop_cycles + b.flop_cycles;
    stall_cycles = a.stall_cycles + b.stall_cycles;
    link_conflicts = a.link_conflicts + b.link_conflicts;
    link_occ_max = max a.link_occ_max b.link_occ_max;
    lock_acquires = a.lock_acquires + b.lock_acquires;
    lock_stall_cycles = a.lock_stall_cycles + b.lock_stall_cycles;
  }

let total_misses t = t.miss_local + t.miss_remote
let total_prefetches t = t.pf_issued + t.pf_vector

let pp ppf t =
  Format.fprintf ppf
    "@[<v>reads=%d writes=%d hits=%d miss(l/r)=%d/%d uncached(l/r)=%d/%d bypass=%d@,\
     pf: issued=%d vector=%d (%d words) on-time=%d late=%d (+%d cyc) dropped=%d \
     unused=%d evicted=%d@,\
     annex hit/miss=%d/%d invalidations=%d barriers=%d flops=%d stall=%d@,\
     coherence: upgrades=%d dir-msgs=%d bus-conflicts=%d cluster(hit/inter)=%d/%d@,\
     link: conflicts=%d max-occ=%d locks: acquires=%d stall=%d@]"
    t.reads t.writes t.hits t.miss_local t.miss_remote t.uncached_local
    t.uncached_remote t.bypass_reads t.pf_issued t.pf_vector t.pf_vector_words
    t.pf_on_time t.pf_late t.pf_late_cycles t.pf_dropped t.pf_unused t.pf_evicted
    t.annex_hits
    t.annex_misses t.invalidations t.barriers t.flop_cycles t.stall_cycles
    t.upgrades t.dir_msgs t.bus_conflicts t.cluster_hits t.cluster_inter
    t.link_conflicts t.link_occ_max t.lock_acquires t.lock_stall_cycles
