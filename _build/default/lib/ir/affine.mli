(** Affine integer expressions over named variables.

    An affine expression is [c0 + c1*v1 + ... + cn*vn] where the [vi] are
    loop induction variables or symbolic program parameters (problem sizes,
    procedure formals). They are the currency of subscript analysis: two
    references are {e uniformly generated} when their subscript expressions
    have identical variable terms and differ only in the constant. *)

type t

(** {1 Construction} *)

val const : int -> t
val zero : t
val one : t
val var : string -> t

(** [term c v] is [c * v]. *)
val term : int -> string -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

(** [scale k e] is [k * e]. *)
val scale : int -> t -> t

(** [of_terms c terms] builds [c + sum_i (coeff_i * var_i)]; repeated
    variables are summed. *)
val of_terms : int -> (string * int) list -> t

(** {1 Inspection} *)

(** Constant part. *)
val const_part : t -> int

(** Coefficient of a variable (0 when absent). *)
val coeff : t -> string -> int

(** Variables with non-zero coefficients, sorted. *)
val vars : t -> string list

(** Non-constant terms as [(var, coeff)] pairs, sorted by variable. *)
val terms : t -> (string * int) list

val is_const : t -> bool
val to_const_opt : t -> int option

(** {1 Transformation} *)

(** [subst e v by] replaces variable [v] with expression [by]. *)
val subst : t -> string -> t -> t

(** Substitute every variable bound in the environment. *)
val subst_env : t -> (string * t) list -> t

(** Evaluate under a full numeric environment.
    @raise Not_found if a variable is unbound. *)
val eval : t -> (string -> int) -> int

(** Evaluate when every variable is bound in the association list. *)
val eval_alist : t -> (string * int) list -> int option

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** [uniformly_generated a b] holds when [a] and [b] have identical variable
    terms (they may differ in the constant) — the precondition for
    group-spatial locality (paper Section 4.2). *)
val uniformly_generated : t -> t -> bool

(** [offset_between a b] is [Some (const_part b - const_part a)] when the two
    expressions are uniformly generated, [None] otherwise. *)
val offset_between : t -> t -> int option

val pp : Format.formatter -> t -> unit
val to_string : t -> string
