open Ccdp_machine
open Ccdp_test_support.Tutil

let geometry =
  [
    case "64 PEs factor into a 4x4x4 cube" (fun () ->
        let t = Torus.of_pes 64 in
        check_true "cube" (Torus.dims t = (4, 4, 4)));
    case "8 PEs factor into 2x2x2" (fun () ->
        check_true "cube" (Torus.dims (Torus.of_pes 8) = (2, 2, 2)));
    case "every power of two factors exactly" (fun () ->
        List.iter
          (fun n ->
            let x, y, z = Torus.dims (Torus.of_pes n) in
            check_int (Printf.sprintf "volume for %d" n) n (x * y * z))
          [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]);
    case "coords round-trip within dims" (fun () ->
        let t = Torus.of_pes 64 in
        for pe = 0 to 63 do
          let x, y, z = Torus.coords t pe in
          let nx, ny, nz = Torus.dims t in
          check_true "in range" (x < nx && y < ny && z < nz)
        done);
  ]

let distances =
  [
    case "hops to self is zero" (fun () ->
        let t = Torus.of_pes 64 in
        for pe = 0 to 63 do
          check_int "self" 0 (Torus.hops t pe pe)
        done);
    case "hops are symmetric" (fun () ->
        let t = Torus.of_pes 32 in
        for a = 0 to 31 do
          for b = 0 to 31 do
            check_int "sym" (Torus.hops t a b) (Torus.hops t b a)
          done
        done);
    case "wraparound shortens long paths" (fun () ->
        let t = Torus.of_pes 64 in
        (* x-neighbours at opposite edge: 0 and 3 are 1 hop via wraparound *)
        check_int "wrap" 1 (Torus.hops t 0 3));
    case "no pair exceeds the diameter" (fun () ->
        let t = Torus.of_pes 64 in
        for a = 0 to 63 do
          for b = 0 to 63 do
            check_true "bounded" (Torus.hops t a b <= Torus.diameter t)
          done
        done);
    case "4x4x4 diameter is 6" (fun () ->
        check_int "diameter" 6 (Torus.diameter (Torus.of_pes 64)));
  ]

let latency_model =
  [
    case "t3d_torus validates and charges distance" (fun () ->
        let cfg = Config.t3d_torus ~n_pes:8 in
        check_true "valid" (Config.validate cfg = []);
        check_true "torus on" (cfg.Config.net = Net.Torus3d);
        check_true "hop positive" (cfg.Config.hop > 0));
    case "remote reads cost more to farther owners" (fun () ->
        let open Ccdp_ir in
        let module B = Builder in
        let b = B.create ~name:"t" () in
        B.array_ b "A" [| 8; 8 |] ~dist:(Dist.block_along ~rank:2 ~dim:1);
        let p =
          B.finish b
            [ Stmt.Assign (B.ref_ b "A" [ B.A.c 0; B.A.c 0 ], Builder.F.const 0.0) ]
        in
        let cfg = Config.t3d_torus ~n_pes:8 in
        let sys =
          Ccdp_runtime.Memsys.create cfg p ~plan:(Ccdp_analysis.Annot.empty ())
            Ccdp_runtime.Memsys.Base
        in
        let torus = Torus.of_pes 8 in
        let r id = Reference.make ~id "A" [| Affine.var "i"; Affine.var "j" |] in
        (* column j is owned by PE j on 8 PEs with 8 columns *)
        let cost owner =
          let t0 = Ccdp_runtime.Memsys.clock sys ~pe:0 in
          ignore (Ccdp_runtime.Memsys.read sys ~pe:0 (r owner) ~idx:[| 0; owner |]);
          Ccdp_runtime.Memsys.clock sys ~pe:0 - t0
        in
        (* pick a 1-hop and a diameter-distance owner from PE 0 *)
        let near = ref 1 and far = ref 1 in
        for pe = 1 to 7 do
          if Torus.hops torus 0 pe < Torus.hops torus 0 !near then near := pe;
          if Torus.hops torus 0 pe > Torus.hops torus 0 !far then far := pe
        done;
        let c_near = cost !near in
        let c_far = cost !far in
        check_true "distance visible" (c_far > c_near));
    case "uniform preset charges equal remote costs" (fun () ->
        let cfg = Config.t3d ~n_pes:8 in
        check_true "no geometry" (cfg.Config.net = Net.Uniform));
  ]

(* brute-force cross-check of the hop metric against the per-dimension
   minimal ring distance, including non-power-of-two machines *)
let hop_oracle =
  let ring d a b =
    if d = 0 then 0
    else
      let fwd = (((a - b) mod d) + d) mod d in
      min fwd (d - fwd)
  in
  [
    case "hops equal the sum of minimal ring distances" (fun () ->
        List.iter
          (fun n ->
            let t = Torus.of_pes n in
            let nx, ny, nz = Torus.dims t in
            for a = 0 to n - 1 do
              for b = 0 to n - 1 do
                let xa, ya, za = Torus.coords t a in
                let xb, yb, zb = Torus.coords t b in
                check_int
                  (Printf.sprintf "%d: %d->%d" n a b)
                  (ring nx xa xb + ring ny ya yb + ring nz za zb)
                  (Torus.hops t a b)
              done
            done)
          [ 2; 6; 12; 16; 24; 64 ]);
    case "hops satisfy the triangle inequality" (fun () ->
        let t = Torus.of_pes 27 in
        for a = 0 to 26 do
          for b = 0 to 26 do
            for c = 0 to 26 do
              check_true "triangle"
                (Torus.hops t a c <= Torus.hops t a b + Torus.hops t b c)
            done
          done
        done);
    case "axis neighbours are one hop apart" (fun () ->
        let t = Torus.of_pes 64 in
        let nx, _, _ = Torus.dims t in
        (* consecutive PE numbers differing in the fastest coordinate *)
        for pe = 0 to 62 do
          let xa, ya, za = Torus.coords t pe in
          let xb, yb, zb = Torus.coords t (pe + 1) in
          if ya = yb && za = zb && ring nx xa xb = 1 then
            check_int "neighbour" 1 (Torus.hops t pe (pe + 1))
        done);
    case "diameter is attained by some pair" (fun () ->
        List.iter
          (fun n ->
            let t = Torus.of_pes n in
            let best = ref 0 in
            for a = 0 to n - 1 do
              for b = 0 to n - 1 do
                best := max !best (Torus.hops t a b)
              done
            done;
            check_int (Printf.sprintf "diameter %d" n) (Torus.diameter t) !best)
          [ 8; 27; 64 ]);
  ]

let () =
  Alcotest.run "torus"
    [
      ("geometry", geometry);
      ("distance", distances);
      ("hop-oracle", hop_oracle);
      ("latency", latency_model);
    ]
