lib/workloads/suite.ml: Extras Mxm Swim Tomcatv Vpenta
