open Ccdp_ir
open Ccdp_analysis
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

let dist = Dist.block_along ~rank:2 ~dim:1
let cfg = Ccdp_machine.Config.t3d ~n_pes:4

let pipeline ?innermost_only ?group_spatial (p : Program.t) =
  let p = Program.inline p in
  let ep = Epoch.partition p.Program.main in
  let infos = Ref_info.collect ep in
  let region = Region.make p ~n_pes:4 in
  let stale = Stale.analyze region infos in
  (Target.analyze ?innermost_only ?group_spatial region cfg infos stale, infos)

let builder () =
  let b = B.create ~name:"tg" () in
  B.param b "n" 16;
  B.array_ b "A" [| 16; 16 |] ~dist;
  B.array_ b "O" [| 16; 16 |] ~dist;
  b

let init_epoch b =
  let open B.A in
  B.doall b "j" (bc 0) (bc 15)
    [ B.for_ b "i" (bc 0) (bc 15) [ B.assign b "A" [ v "i"; v "j" ] (F.const 1.0) ] ]

let cls_of_array (t : Target.t) infos name =
  let r =
    List.find
      (fun (i : Ref_info.t) -> (not i.write) && i.ref_.Reference.array_name = name)
      infos
  in
  Target.cls_of t r.Ref_info.ref_.Reference.id

let tests =
  [
    case "clean reads classify Normal" (fun () ->
        let b = builder () in
        let open B.A in
        let p =
          B.finish b
            [
              init_epoch b;
              B.doall b "j" (bc 0) (bc 15)
                [
                  B.for_ b "i" (bc 0) (bc 15)
                    [ B.assign b "O" [ v "i"; v "j" ] (B.rd b "A" [ v "i"; v "j" ]) ];
                ];
            ]
        in
        let t, infos = pipeline p in
        check_true "normal" (cls_of_array t infos "A" = Annot.Normal));
    case "stale innermost reads become leads" (fun () ->
        let b = builder () in
        let open B.A in
        let p =
          B.finish b
            [
              init_epoch b;
              B.doall b "j" (bc 0) (bc 14)
                [
                  B.for_ b "i" (bc 0) (bc 15)
                    [ B.assign b "O" [ v "i"; v "j" ] (B.rd b "A" [ v "i"; v "j" +! c 1 ]) ];
                ];
            ]
        in
        let t, infos = pipeline p in
        check_true "lead" (cls_of_array t infos "A" = Annot.Lead));
    case "stale reads outside the innermost loop are demoted to bypass" (fun () ->
        let b = builder () in
        let open B.A in
        let p =
          B.finish b
            [
              init_epoch b;
              B.doall b "j" (bc 0) (bc 14)
                [
                  (* the read sits in the DOALL body, above an inner loop *)
                  B.assign b "O" [ c 0; v "j" ] (B.rd b "A" [ c 0; v "j" +! c 1 ]);
                  B.for_ b "i" (bc 0) (bc 15)
                    [ B.assign b "O" [ v "i"; v "j" ] (F.const 0.0) ];
                ];
            ]
        in
        let t, infos = pipeline p in
        check_true "bypass" (cls_of_array t infos "A" = Annot.Bypass));
    case "innermost_only:false keeps them as targets" (fun () ->
        let b = builder () in
        let open B.A in
        let p =
          B.finish b
            [
              init_epoch b;
              B.doall b "j" (bc 0) (bc 14)
                [
                  B.assign b "O" [ c 0; v "j" ] (B.rd b "A" [ c 0; v "j" +! c 1 ]);
                  B.for_ b "i" (bc 0) (bc 15)
                    [ B.assign b "O" [ v "i"; v "j" ] (F.const 0.0) ];
                ];
            ]
        in
        let t, infos = pipeline ~innermost_only:false p in
        check_true "lead" (cls_of_array t infos "A" = Annot.Lead));
    case "group-spatial members are covered by the lead" (fun () ->
        let b = builder () in
        let open B.A in
        let p =
          B.finish b
            [
              init_epoch b;
              B.doall b ~sched:Stmt.Static_cyclic "j" (bc 0) (bc 15)
                [
                  B.for_ b "i" (bc 1) (bc 14)
                    [
                      B.assign b "O" [ v "i"; v "j" ]
                        F.(
                          B.rd b "A" [ v "i" -! c 1; v "j" ]
                          + B.rd b "A" [ v "i"; v "j" ]
                          + B.rd b "A" [ v "i" +! c 1; v "j" ]);
                    ];
                ];
            ]
        in
        let t, infos = pipeline p in
        let classes =
          List.filter_map
            (fun (i : Ref_info.t) ->
              if (not i.write) && i.ref_.Reference.array_name = "A" then
                Some (Target.cls_of t i.ref_.Reference.id)
              else None)
            infos
        in
        let leads = List.filter (fun c -> c = Annot.Lead) classes in
        let covered =
          List.filter (function Annot.Covered _ -> true | _ -> false) classes
        in
        check_int "one lead" 1 (List.length leads);
        check_int "two covered" 2 (List.length covered));
    case "group_spatial:false gives every stale read its own lead" (fun () ->
        let b = builder () in
        let open B.A in
        let p =
          B.finish b
            [
              init_epoch b;
              B.doall b ~sched:Stmt.Static_cyclic "j" (bc 0) (bc 15)
                [
                  B.for_ b "i" (bc 1) (bc 14)
                    [
                      B.assign b "O" [ v "i"; v "j" ]
                        F.(
                          B.rd b "A" [ v "i" -! c 1; v "j" ]
                          + B.rd b "A" [ v "i" +! c 1; v "j" ]);
                    ];
                ];
            ]
        in
        let t, infos = pipeline ~group_spatial:false p in
        let leads =
          List.filter
            (fun (i : Ref_info.t) ->
              (not i.write)
              && i.ref_.Reference.array_name = "A"
              && Target.cls_of t i.ref_.Reference.id = Annot.Lead)
            infos
        in
        check_int "two leads" 2 (List.length leads));
    case "serial code segments hold targets too" (fun () ->
        let b = builder () in
        let open B.A in
        let p =
          B.finish b
            [
              init_epoch b;
              B.assign b "O" [ c 0; c 0 ] (B.rd b "A" [ c 0; c 9 ]);
            ]
        in
        let t, infos = pipeline p in
        check_true "lead in serial code" (cls_of_array t infos "A" = Annot.Lead);
        check_true "one serial LSC"
          (List.exists (fun (l : Target.lsc) -> l.Target.inner = None) t.Target.lscs));
  ]

let () = Alcotest.run "target" [ ("fig1", tests) ]
