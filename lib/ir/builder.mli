(** Ergonomic program construction.

    A builder hands out unique reference and loop ids and accumulates
    declarations; workload definitions (lib/workloads) and tests are written
    against this interface. Affine and float-expression operators live in
    {!A} and {!F} to be locally opened: [A.(v "i" +! c 1)],
    [F.(rd b "X" A.[ v "i" ] * const 2.0)]. *)

type t

val create : name:string -> unit -> t

(** Declare a numeric program parameter (problem size). *)
val param : t -> string -> int -> unit

(** Declare an array. Shared arrays default to replicated distribution;
    pass [~dist] for distributed ones. *)
val array_ :
  t -> ?elem_words:int -> ?dist:Dist.t -> ?shared:bool -> string -> int array -> unit

(** Declare a procedure (callable from main or other procedures). *)
val proc : t -> string -> formals:string list -> Stmt.t list -> unit

(** Fresh read/write reference ([?loc] defaults to synthetic). *)
val ref_ : t -> ?loc:Loc.t -> string -> Affine.t list -> Reference.t

(** Fresh read reference as an expression. *)
val rd : t -> ?loc:Loc.t -> string -> Affine.t list -> Fexpr.t

(** [assign b "A" subs e] is [A(subs) := e] with a fresh reference id. *)
val assign : t -> ?loc:Loc.t -> string -> Affine.t list -> Fexpr.t -> Stmt.t

(** Serial loop with unit step by default. *)
val for_ :
  t -> ?step:int -> ?kind:Stmt.loop_kind -> ?loc:Loc.t -> string -> Bound.t ->
  Bound.t -> Stmt.t list -> Stmt.t

(** DOALL loop (static block schedule by default). *)
val doall :
  t -> ?step:int -> ?sched:Stmt.sched -> ?loc:Loc.t -> string -> Bound.t ->
  Bound.t -> Stmt.t list -> Stmt.t

val call : string -> (string * Affine.t) list -> Stmt.t

(** [critical lk body] is a lock-protected section (mini-epoch). *)
val critical : ?loc:Loc.t -> string -> Stmt.t list -> Stmt.t

(** [reduce op s e] is a recognized reduction update [s = s op e]. *)
val reduce : ?loc:Loc.t -> Fexpr.binop -> string -> Fexpr.t -> Stmt.t

(** Finish: package main body into a validated program.
    @raise Invalid_argument when validation fails. *)
val finish : t -> Stmt.t list -> Program.t

(** Affine operators. *)
module A : sig
  val v : string -> Affine.t
  val c : int -> Affine.t
  val ( +! ) : Affine.t -> Affine.t -> Affine.t
  val ( -! ) : Affine.t -> Affine.t -> Affine.t
  val ( *! ) : int -> Affine.t -> Affine.t

  (** Known bound. *)
  val bk : Affine.t -> Bound.t

  val bc : int -> Bound.t
  val bv : string -> Bound.t
end

(** Float-expression operators. *)
module F : sig
  val const : float -> Fexpr.t
  val iv : string -> Fexpr.t
  val sv : string -> Fexpr.t
  val ( + ) : Fexpr.t -> Fexpr.t -> Fexpr.t
  val ( - ) : Fexpr.t -> Fexpr.t -> Fexpr.t
  val ( * ) : Fexpr.t -> Fexpr.t -> Fexpr.t
  val ( / ) : Fexpr.t -> Fexpr.t -> Fexpr.t
  val neg : Fexpr.t -> Fexpr.t
  val sqrt_ : Fexpr.t -> Fexpr.t
  val abs_ : Fexpr.t -> Fexpr.t
  val min_ : Fexpr.t -> Fexpr.t -> Fexpr.t
  val max_ : Fexpr.t -> Fexpr.t -> Fexpr.t
end
