(* Quickstart: the CCDP pipeline on a 5-point Jacobi stencil.

   Demonstrates the whole story in one page:
   1. a distributed parallel program (columns block-distributed, halo reads),
   2. why caching shared data is unsafe without coherence (INCOHERENT mode
      produces wrong numbers),
   3. how the CCDP compiler passes fix it (stale reference analysis ->
      prefetch target analysis -> prefetch scheduling),
   4. and what it buys over the uncached BASE scheme.

   Run with: dune exec examples/quickstart.exe *)

open Ccdp_workloads
open Ccdp_runtime
open Ccdp_core

let () =
  let n_pes = 8 in
  let w = Extras.jacobi ~n:32 ~iters:2 in
  Format.printf "Workload: %s@.@." w.Workload.descr;

  (* 1. compile: the three CCDP phases *)
  let cfg = Ccdp_machine.Config.t3d ~n_pes in
  let compiled = Pipeline.compile cfg w.Workload.program in
  Format.printf "%a@.@." Pipeline.report compiled;

  (* 2. run the same program under four coherence regimes *)
  let run mode =
    let r =
      match mode with
      | Memsys.Ccdp ->
          Interp.run cfg compiled.Pipeline.program ~plan:compiled.Pipeline.plan
            ~mode ()
      | _ ->
          Interp.run cfg compiled.Pipeline.program
            ~plan:(Ccdp_analysis.Annot.empty ()) ~mode ()
    in
    let v = Verify.against_sequential w.Workload.program ~init:(fun _ -> ()) r in
    (r, v)
  in
  Format.printf "mode        cycles    coherent?@.";
  Format.printf "----------  --------  ---------@.";
  List.iter
    (fun mode ->
      let r, v = run mode in
      Format.printf "%-10s  %8d  %s@." (Memsys.mode_name mode) r.Interp.cycles
        (if v.Verify.ok then "yes"
         else Printf.sprintf "NO (max err %.3g)" v.Verify.max_abs_diff))
    [ Memsys.Base; Memsys.Incoherent; Memsys.Invalidate; Memsys.Ccdp ];

  let base, _ = run Memsys.Base and ccdp, _ = run Memsys.Ccdp in
  Format.printf "@.CCDP improves on BASE by %.1f%% at %d PEs.@."
    (100.0
    *. float_of_int (base.Interp.cycles - ccdp.Interp.cycles)
    /. float_of_int base.Interp.cycles)
    n_pes
