(* The domain-pool scheduler and its determinism contract: map_runs is
   observably List.mapi for every job count, worker failures carry run
   identity, and the experiment/fuzz/bench paths built on it produce
   byte-identical results at -j1 and -j4. *)

open Ccdp_core
open Ccdp_workloads
open Ccdp_test_support.Tutil
module Pool = Ccdp_exec.Pool

let pool_tests =
  [
    case "map_runs is List.mapi for any job count" (fun () ->
        let xs = List.init 37 (fun i -> i) in
        let f i x = (i * 100) + (x * x) in
        let expected = List.mapi f xs in
        List.iter
          (fun jobs ->
            check_true
              (Printf.sprintf "jobs=%d" jobs)
              (Pool.run ~jobs f xs = expected))
          [ 1; 2; 3; 4; 8 ]);
    case "empty and singleton inputs" (fun () ->
        check_true "empty" (Pool.run ~jobs:4 (fun _ x -> x) [] = ([] : int list));
        check_true "singleton" (Pool.run ~jobs:4 (fun i x -> (i, x)) [ 9 ] = [ (0, 9) ]));
    case "a pool survives several batches" (fun () ->
        Pool.with_pool ~jobs:3 (fun p ->
            check_int "jobs" 3 (Pool.jobs p);
            check_true "batch 1"
              (Pool.map_runs p (fun _ x -> x + 1) [ 1; 2; 3 ] = [ 2; 3; 4 ]);
            check_true "batch 2"
              (Pool.map_runs p (fun i _ -> i) [ 'a'; 'b' ] = [ 0; 1 ])));
    case "worker exceptions carry run identity" (fun () ->
        List.iter
          (fun jobs ->
            match
              Pool.run ~jobs
                ~label:(fun i -> Printf.sprintf "run-%d" i)
                (fun i x -> if i = 2 then failwith "boom" else x)
                [ 10; 11; 12; 13 ]
            with
            | _ -> Alcotest.fail "expected Run_failed"
            | exception Pool.Run_failed { index; label; exn } ->
                check_int "index" 2 index;
                check_true "label" (label = "run-2");
                check_true "exn" (exn = Failure "boom"))
          [ 1; 4 ]);
    case "lowest-index failure wins under parallel execution" (fun () ->
        match
          Pool.run ~jobs:4
            (fun i _ -> if i >= 5 then failwith (string_of_int i) else i)
            (List.init 16 (fun i -> i))
        with
        | _ -> Alcotest.fail "expected Run_failed"
        | exception Pool.Run_failed { index; _ } -> check_int "index" 5 index);
    case "map_shards is Array.init for any shard count" (fun () ->
        List.iter
          (fun jobs ->
            Pool.with_pool ~jobs (fun p ->
                List.iter
                  (fun shards ->
                    let got = Pool.map_shards p ~shards (fun s -> s * s) in
                    check_true
                      (Printf.sprintf "jobs=%d shards=%d" jobs shards)
                      (got = Array.init shards (fun s -> s * s)))
                  [ 1; 2; 3; 8 ]))
          [ 1; 4 ]);
    case "map_shards is safe from inside a pool task" (fun () ->
        (* nested submission must serialize inline rather than deadlock on
           the pool's own workers *)
        Pool.with_pool ~jobs:3 (fun p ->
            let got =
              Pool.map_runs p
                (fun i _ ->
                  Array.to_list
                    (Pool.map_shards p ~shards:4 (fun s -> (i * 10) + s)))
                [ (); (); () ]
            in
            check_true "nested"
              (got
              = [
                  [ 0; 1; 2; 3 ]; [ 10; 11; 12; 13 ]; [ 20; 21; 22; 23 ];
                ])));
    case "map_shards failures carry the lowest shard index" (fun () ->
        Pool.with_pool ~jobs:4 (fun p ->
            match
              Pool.map_shards p ~shards:8 (fun s ->
                  if s >= 5 then failwith (string_of_int s) else s)
            with
            | _ -> Alcotest.fail "expected Run_failed"
            | exception Pool.Run_failed { index; label; exn } ->
                check_int "index" 5 index;
                check_true "label" (label = "");
                check_true "exn" (exn = Failure "5")));
    case "resolve_jobs precedence: argument, CCDP_JOBS, domain count" (fun () ->
        Unix.putenv "CCDP_JOBS" "3";
        check_int "explicit wins" 5 (Pool.resolve_jobs ~jobs:5 ());
        check_int "env" 3 (Pool.resolve_jobs ());
        Unix.putenv "CCDP_JOBS" "not-a-number";
        check_int "bad env falls through" (Domain.recommended_domain_count ())
          (Pool.resolve_jobs ());
        Unix.putenv "CCDP_JOBS" "0";
        check_int "zero falls through" (Domain.recommended_domain_count ())
          (Pool.resolve_jobs ());
        Unix.putenv "CCDP_JOBS" "";
        check_int "invalid arg falls to env"
          (Domain.recommended_domain_count ())
          (Pool.resolve_jobs ~jobs:0 ()));
  ]

(* ---- determinism of the rewired grids ------------------------------ *)

let small_spec =
  { Experiment.default_spec with Experiment.pes = [ 1; 4 ]; verify = true }

let small_ws () = [ Extras.jacobi ~n:12 ~iters:2; Extras.triad ~n:12 ]

let rows_equal (a : Experiment.row list) (b : Experiment.row list) = a = b

let determinism_tests =
  [
    case "evaluate: -j1 and -j4 produce identical row lists" (fun () ->
        let r1 = Experiment.evaluate ~jobs:1 ~spec:small_spec (small_ws ()) in
        let r4 = Experiment.evaluate ~jobs:4 ~spec:small_spec (small_ws ()) in
        check_int "row count" (List.length r1) (List.length r4);
        check_true "identical" (rows_equal r1 r4));
    case "ablation and sweep tables: -j1 equals -j4" (fun () ->
        let ws = small_ws () in
        let pairs =
          [
            ( Experiment.ablation_coherence_table ~n_pes:4 ~jobs:1 ws,
              Experiment.ablation_coherence_table ~n_pes:4 ~jobs:4 ws );
            ( Experiment.sweep_remote_table ~n_pes:4 ~points:[ 30; 90 ] ~jobs:1
                (List.hd ws),
              Experiment.sweep_remote_table ~n_pes:4 ~points:[ 30; 90 ] ~jobs:4
                (List.hd ws) );
          ]
        in
        List.iter
          (fun ((a : Experiment.table), b) -> check_true "table" (a = b))
          pairs);
    case "BENCH json payloads are identical across job counts" (fun () ->
        let payload jobs =
          let rows = Experiment.evaluate ~jobs ~spec:small_spec (small_ws ()) in
          let doc = Bench_json.create ~bench:"test" in
          Bench_json.add_rows doc rows;
          Bench_json.add_table doc (Experiment.table1 rows);
          Bench_json.payload_string doc
        in
        check_true "payloads" (payload 1 = payload 4));
    case "fuzz campaign: -j1 and -j4 produce identical summaries" (fun () ->
        let run jobs = Ccdp_fuzz.Driver.campaign ~jobs ~seed:5 ~count:20 () in
        let s1 = run 1 and s4 = run 4 in
        check_int "programs" s1.Ccdp_fuzz.Driver.s_programs
          s4.Ccdp_fuzz.Driver.s_programs;
        check_int "runs" s1.Ccdp_fuzz.Driver.s_runs s4.Ccdp_fuzz.Driver.s_runs;
        check_int "oracle checks" s1.Ccdp_fuzz.Driver.s_oracle_checks
          s4.Ccdp_fuzz.Driver.s_oracle_checks;
        check_true "summaries" (s1 = s4));
    case "fuzz campaign: intra-run sharding leaves the summary identical"
      (fun () ->
        let serial = Ccdp_fuzz.Driver.campaign ~jobs:1 ~seed:5 ~count:12 () in
        let sharded =
          Ccdp_fuzz.Driver.campaign ~shards:4 ~seed:5 ~count:12 ()
        in
        check_true "summaries" (serial = sharded));
    case "fault-injected fuzz failures are identical across job counts"
      (fun () ->
        let run jobs =
          Ccdp_fuzz.Driver.campaign ~jobs
            ~mutate_stale:(Ccdp_fuzz.Driver.drop_stale_mark 0) ~seed:11
            ~count:8 ()
        in
        let s1 = run 1 and s4 = run 4 in
        check_int "failure count"
          (List.length s1.Ccdp_fuzz.Driver.s_failures)
          (List.length s4.Ccdp_fuzz.Driver.s_failures);
        check_true "failures" (s1 = s4));
    case "fuzz progress trace is the sequential one" (fun () ->
        let trace jobs =
          let seen = ref [] in
          ignore
            (Ccdp_fuzz.Driver.campaign ~jobs
               ~progress:(fun i -> seen := i :: !seen)
               ~seed:3 ~count:12 ());
          List.rev !seen
        in
        check_true "monotonic 1..n" (trace 4 = List.init 12 (fun i -> i + 1));
        check_true "same as -j1" (trace 1 = trace 4));
  ]

(* ---- Bench_json shape ---------------------------------------------- *)

let json_tests =
  [
    case "envelope carries jobs and wall clock; payload does not" (fun () ->
        let doc = Bench_json.create ~bench:"shape" in
        Bench_json.add_table doc
          {
            Experiment.title = "t \"quoted\"";
            headers = [ "a"; "b" ];
            trows = [ [ "1"; "2" ] ];
          };
        let payload = Bench_json.payload_string doc in
        let full = Bench_json.to_string doc ~jobs:7 ~wall_clock_s:1.5 in
        let contains hay needle =
          let lh = String.length hay and ln = String.length needle in
          let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
          go 0
        in
        check_true "payload no jobs" (not (contains payload "\"jobs\""));
        check_true "full has jobs" (contains full "\"jobs\":7");
        check_true "full has wall" (contains full "\"wall_clock_s\":1.500000");
        check_true "escaped quote" (contains full "t \\\"quoted\\\"");
        check_true "payload embedded" (contains full "\"tables\":[{\"title\""));
    case "empty payload sections are omitted, not emitted as []" (fun () ->
        let contains hay needle =
          let lh = String.length hay and ln = String.length needle in
          let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
          go 0
        in
        (* a perf-only document: no dead "rows":[] / "tables":[] keys *)
        let doc = Bench_json.create ~bench:"perf" in
        Bench_json.add_perf doc
          {
            Bench_json.p_workload = "mxm";
            p_mode = "CCDP";
            p_engine = "plan";
            p_pes = 16;
            p_jobs = 4;
            p_wall_s = 0.25;
            p_cycles = 100;
            p_cycles_per_s = 400.0;
            p_accesses = 10;
            p_accesses_per_s = 40.0;
            p_minor_words = 8.0;
          };
        let payload = Bench_json.payload_string doc in
        let full = Bench_json.to_string doc ~jobs:4 ~wall_clock_s:0.5 in
        check_true "no rows key" (not (contains full "\"rows\""));
        check_true "no tables key" (not (contains full "\"tables\""));
        check_true "perf key present" (contains payload "\"perf\":[{");
        check_true "perf jobs" (contains payload "\"pes\":16,\"jobs\":4");
        (* an untouched document degenerates to an empty object, and the
           envelope stays well-formed (no trailing comma) *)
        let empty = Bench_json.create ~bench:"none" in
        check_true "empty payload" (Bench_json.payload_string empty = "{}");
        check_true "empty envelope"
          (Bench_json.to_string empty ~jobs:1 ~wall_clock_s:0.0
          = "{\"bench\":\"none\",\"jobs\":1,\"wall_clock_s\":0.000000}"));
    case "write emits BENCH_<bench>.json" (fun () ->
        let dir = Filename.temp_file "ccdp" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        let doc = Bench_json.create ~bench:"unit" in
        let path = Bench_json.write ~dir doc ~jobs:1 ~wall_clock_s:0.0 in
        check_true "name" (Filename.basename path = "BENCH_unit.json");
        check_true "exists" (Sys.file_exists path);
        Sys.remove path;
        Sys.rmdir dir);
  ]

let () =
  Alcotest.run "exec"
    [
      ("pool", pool_tests);
      ("determinism", determinism_tests);
      ("bench_json", json_tests);
    ]
