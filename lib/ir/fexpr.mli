(** Floating-point expression language (right-hand sides).

    Kept deliberately small: enough to express the four SPEC kernels with
    real arithmetic, so that the simulator produces checkable numerics — a
    coherence violation shows up as a wrong answer, not just a statistic. *)

type unop = Neg | Sqrt | Abs
type binop = Add | Sub | Mul | Div | Min | Max

type t =
  | Const of float
  | Ref of Reference.t  (** read of an array element *)
  | Ivar of string  (** induction variable or integer parameter, as float *)
  | Svar of string  (** task-private scalar *)
  | Unop of unop * t
  | Binop of binop * t * t

(** All array reads, left-to-right (the runtime issues them in this order). *)
val reads : t -> Reference.t list

(** Fold over reads. *)
val fold_reads : ('a -> Reference.t -> 'a) -> 'a -> t -> 'a

(** Substitute affine arguments into every reference's subscripts
    (procedure inlining). *)
val subst_env : t -> (string * Affine.t) list -> t

(** Re-key every reference id via the supplied function. *)
val map_ref_ids : (int -> int) -> t -> t

(** Count of arithmetic operations (cost estimation input). *)
val flops : t -> int

val apply_unop : unop -> float -> float
val apply_binop : binop -> float -> float -> float
val string_of_binop : binop -> string
val pp : Format.formatter -> t -> unit
