lib/ir/stmt.ml: Affine Bound Fexpr Format List Printf Reference
