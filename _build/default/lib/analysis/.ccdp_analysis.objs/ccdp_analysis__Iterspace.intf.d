lib/analysis/iterspace.mli: Ccdp_ir
