test/test_loop_sched.mli:
