lib/runtime/verify.mli: Ccdp_ir Format Interp Memsys
