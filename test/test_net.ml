(* Network-geometry properties of the interconnect layer. [Net.hops] must
   be a metric on every topology — symmetry, identity of indiscernibles
   and the triangle inequality — and bounded by [Net.diameter]; the cost
   matrix folded at create time must agree with hop-by-hop recomputation.
   Mesh2d and Crossbar additionally get pinned hop oracles mirroring the
   Torus oracle in test_torus.ml, and the link-occupancy accounting is
   unit-tested directly. *)

open Ccdp_machine
open Ccdp_test_support.Tutil

let machine_arb =
  QCheck.make
    ~print:(fun (kind, n_pes) ->
      Printf.sprintf "%s at %d PEs" (Net.kind_name kind) n_pes)
    QCheck.Gen.(
      pair (oneofl Net.all_kinds)
        (oneofl [ 1; 2; 3; 4; 5; 7; 8; 12; 16; 27; 32; 64 ]))

let metric_suite =
  [
    qcheck ~count:200 "hops is zero exactly on the diagonal" machine_arb
      (fun (kind, n_pes) ->
        let net = Net.create kind ~n_pes in
        let ok = ref true in
        for a = 0 to n_pes - 1 do
          for b = 0 to n_pes - 1 do
            let h = Net.hops net a b in
            if a = b then ok := !ok && h = 0
            else ok := !ok && (h > 0 || kind = Net.Uniform)
          done
        done;
        !ok);
    qcheck ~count:200 "hops is symmetric" machine_arb (fun (kind, n_pes) ->
        let net = Net.create kind ~n_pes in
        let ok = ref true in
        for a = 0 to n_pes - 1 do
          for b = 0 to n_pes - 1 do
            ok := !ok && Net.hops net a b = Net.hops net b a
          done
        done;
        !ok);
    qcheck ~count:100 "hops satisfies the triangle inequality" machine_arb
      (fun (kind, n_pes) ->
        let net = Net.create kind ~n_pes in
        let ok = ref true in
        for a = 0 to n_pes - 1 do
          for b = 0 to n_pes - 1 do
            for c = 0 to n_pes - 1 do
              ok :=
                !ok && Net.hops net a c <= Net.hops net a b + Net.hops net b c
            done
          done
        done;
        !ok);
    qcheck ~count:200 "no pair exceeds the diameter" machine_arb
      (fun (kind, n_pes) ->
        (* padded factorizations (e.g. 5 PEs on a 3x2 grid) may leave the
           far corner unpopulated, so the bound need not be attained *)
        let net = Net.create kind ~n_pes in
        let worst = ref 0 in
        for a = 0 to n_pes - 1 do
          for b = 0 to n_pes - 1 do
            worst := max !worst (Net.hops net a b)
          done
        done;
        ignore kind;
        !worst <= Net.diameter net);
    qcheck ~count:200 "the folded cost matrix is hop * hops" machine_arb
      (fun (kind, n_pes) ->
        let hop = 7 in
        let net = Net.create ~hop kind ~n_pes in
        let ok = ref true in
        for src = 0 to n_pes - 1 do
          for dst = 0 to n_pes - 1 do
            ok := !ok && Net.cost net ~src ~dst = hop * Net.hops net src dst
          done
        done;
        !ok);
    qcheck ~count:200 "zero per-hop cost means zero cost everywhere"
      machine_arb
      (fun (kind, n_pes) ->
        let net = Net.create kind ~n_pes in
        let ok = ref true in
        for src = 0 to n_pes - 1 do
          for dst = 0 to n_pes - 1 do
            ok := !ok && Net.cost net ~src ~dst = 0
          done
        done;
        !ok);
  ]

(* brute-force hop oracle for the mesh: the 2-D analogue of the Torus
   oracle in test_torus.ml — Manhattan distance on the factored grid,
   no wraparound *)
let mesh_oracle =
  [
    case "mesh hops match Manhattan distance on every tested width"
      (fun () ->
        List.iter
          (fun n_pes ->
            let net = Net.create Net.Mesh2d ~n_pes in
            (* recover the grid from distances: nx = 1 + max pe with
               hops 0 pe = pe (a pure x-walk along row 0) *)
            let nx = ref 1 in
            while
              !nx < n_pes && Net.hops net 0 !nx = !nx
            do
              incr nx
            done;
            let nx = !nx in
            for a = 0 to n_pes - 1 do
              for b = 0 to n_pes - 1 do
                let expect =
                  abs ((a mod nx) - (b mod nx)) + abs ((a / nx) - (b / nx))
                in
                check_int
                  (Printf.sprintf "mesh %d: %d->%d" n_pes a b)
                  expect (Net.hops net a b)
              done
            done)
          [ 2; 4; 6; 8; 12; 16; 20; 64 ]);
    case "16 PEs factor into a 4x4 mesh with diameter 6" (fun () ->
        let net = Net.create Net.Mesh2d ~n_pes:16 in
        check_int "diameter" 6 (Net.diameter net);
        (* corner to corner: PE 0 to PE 15 *)
        check_int "corners" 6 (Net.hops net 0 15));
    case "mesh has no wraparound: edge PEs are far apart" (fun () ->
        (* on a 4x4 mesh PEs 0 and 3 sit on opposite x-edges: 3 hops,
           where the torus wrap would make it 1 *)
        let net = Net.create Net.Mesh2d ~n_pes:16 in
        check_int "no wrap" 3 (Net.hops net 0 3));
  ]

let crossbar_oracle =
  [
    case "crossbar is one hop between any two distinct PEs" (fun () ->
        let net = Net.create Net.Crossbar ~n_pes:16 in
        for a = 0 to 15 do
          for b = 0 to 15 do
            check_int
              (Printf.sprintf "xbar %d->%d" a b)
              (if a = b then 0 else 1)
              (Net.hops net a b)
          done
        done;
        check_int "diameter" 1 (Net.diameter net));
    case "single-PE crossbar has diameter zero" (fun () ->
        check_int "diameter" 0 (Net.diameter (Net.create Net.Crossbar ~n_pes:1)));
  ]

let contention =
  [
    case "an idle link adds no delay" (fun () ->
        let net = Net.create Net.Crossbar ~n_pes:4 in
        let delay, depth = Net.acquire net ~dst:1 ~now:100 ~hold:8 in
        check_int "delay" 0 delay;
        check_int "depth" 1 depth);
    case "a busy link queues and deepens" (fun () ->
        let net = Net.create Net.Crossbar ~n_pes:4 in
        ignore (Net.acquire net ~dst:1 ~now:100 ~hold:8);
        let d2, q2 = Net.acquire net ~dst:1 ~now:102 ~hold:8 in
        check_int "second waits for the first" 6 d2;
        check_int "second is depth 2" 2 q2;
        let d3, q3 = Net.acquire net ~dst:1 ~now:103 ~hold:8 in
        check_int "third waits for both" 13 d3;
        check_int "third is depth 3" 3 q3);
    case "distinct links do not contend" (fun () ->
        let net = Net.create Net.Crossbar ~n_pes:4 in
        ignore (Net.acquire net ~dst:1 ~now:100 ~hold:8);
        let delay, depth = Net.acquire net ~dst:2 ~now:100 ~hold:8 in
        check_int "delay" 0 delay;
        check_int "depth" 1 depth);
    case "a drained link starts a fresh burst" (fun () ->
        let net = Net.create Net.Crossbar ~n_pes:4 in
        ignore (Net.acquire net ~dst:1 ~now:0 ~hold:8);
        ignore (Net.acquire net ~dst:1 ~now:1 ~hold:8);
        let delay, depth = Net.acquire net ~dst:1 ~now:50 ~hold:8 in
        check_int "delay" 0 delay;
        check_int "depth resets" 1 depth);
    case "reset_links forgets all bookings" (fun () ->
        let net = Net.create Net.Crossbar ~n_pes:4 in
        ignore (Net.acquire net ~dst:1 ~now:0 ~hold:100);
        Net.reset_links net;
        let delay, depth = Net.acquire net ~dst:1 ~now:0 ~hold:8 in
        check_int "delay" 0 delay;
        check_int "depth" 1 depth);
  ]

(* the presets derived from the interconnect kinds stay mutually
   consistent with the uniform T3D machine *)
let presets =
  [
    case "t3d_torus rebalances off the uniform preset's remote latency"
      (fun () ->
        let base = Config.t3d ~n_pes:64 in
        let cfg = Config.t3d_torus ~n_pes:64 in
        let net = Net.create Net.Torus3d ~n_pes:64 in
        let avg = max 1 ((Net.diameter net + 1) / 2) in
        check_int "remote"
          (max base.Config.local (base.Config.remote - (cfg.Config.hop * avg)))
          cfg.Config.remote);
    case "every t3d interconnect preset validates" (fun () ->
        List.iter
          (fun (name, preset) ->
            let cfg = preset ~n_pes:16 in
            check_true (name ^ " valid") (Config.validate cfg = []))
          Config.presets);
    case "preset_of_string resolves names and kind aliases" (fun () ->
        List.iter
          (fun (name, kind) ->
            match Config.preset_of_string name with
            | None -> Alcotest.failf "%s did not resolve" name
            | Some p -> check_true name ((p ~n_pes:8).Config.net = kind))
          [
            ("t3d", Net.Uniform);
            ("T3D-Torus", Net.Torus3d);
            ("mesh", Net.Mesh2d);
            ("crossbar", Net.Crossbar);
            ("xbar", Net.Crossbar);
            ("uniform", Net.Uniform);
          ];
        check_true "unknown rejected" (Config.preset_of_string "pdp11" = None));
    case "only the crossbar preset enables contention by default" (fun () ->
        List.iter
          (fun (name, preset) ->
            let cfg = preset ~n_pes:16 in
            check_true name
              (cfg.Config.link_occ > 0 = (cfg.Config.net = Net.Crossbar)))
          Config.presets);
  ]

let () =
  Alcotest.run "net"
    [
      ("metric", metric_suite);
      ("mesh oracle", mesh_oracle);
      ("crossbar oracle", crossbar_oracle);
      ("contention", contention);
      ("presets", presets);
    ]
