(* ccdp: command-line driver for the CCDP reproduction.

   Subcommands: list, analyze, run, table1, table2, ablate, sweep, perf. *)

open Cmdliner
open Ccdp_workloads

let workloads_of ~n ~iters = Suite.all ~n ~iters ()

(* ---- common options ---- *)

let n_arg =
  Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc:"Problem size (matrix edge).")

let iters_arg =
  Arg.(
    value & opt int 2
    & info [ "iters" ] ~docv:"I" ~doc:"Time-loop iterations (TOMCATV/SWIM/Jacobi).")

let pes_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2; 4; 8; 16; 32; 64 ]
    & info [ "pes" ] ~docv:"P,..." ~doc:"Machine widths for the tables.")

let pe_arg =
  Arg.(value & opt int 16 & info [ "p"; "pe" ] ~docv:"P" ~doc:"Machine width.")

let verify_arg =
  Arg.(
    value & opt bool true
    & info [ "verify" ] ~docv:"BOOL"
        ~doc:"Check every run against the sequential execution.")

let workload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see $(b,ccdp list)).")

(* --mode and --machine parsing and help text are generated from the
   runtime's own mode list and the machine preset table, so a new mode or
   preset shows up here without touching the CLI. *)

let mode_of_string s =
  match Ccdp_runtime.Memsys.mode_of_string s with
  | Some m -> Some m
  | None -> (
      (* long-form spellings kept for compatibility *)
      match String.lowercase_ascii s with
      | "invalidate" -> Some Ccdp_runtime.Memsys.Invalidate
      | "incoherent" -> Some Ccdp_runtime.Memsys.Incoherent
      | "directory" -> Some Ccdp_runtime.Memsys.Directory
      | "clustered" -> Some Ccdp_runtime.Memsys.Clustered
      | _ -> None)

let mode_doc =
  String.concat "; "
    (List.map
       (fun m ->
         Printf.sprintf "$(b,%s): %s"
           (String.lowercase_ascii (Ccdp_runtime.Memsys.mode_name m))
           (Ccdp_runtime.Memsys.mode_describe m))
       Ccdp_runtime.Memsys.all_modes)
  ^ "."

let mode_conv =
  let parse s =
    match mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown mode %S (modes: %s)" s
               (String.concat ", "
                  (List.map
                     (fun m ->
                       String.lowercase_ascii (Ccdp_runtime.Memsys.mode_name m))
                     Ccdp_runtime.Memsys.all_modes))))
  in
  Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" (Ccdp_runtime.Memsys.mode_name m))

let mode_arg =
  Arg.(
    value
    & opt mode_conv Ccdp_runtime.Memsys.Ccdp
    & info [ "mode" ] ~docv:"MODE" ~doc:mode_doc)

let machine_doc =
  Printf.sprintf
    "Machine preset: %s. Bare interconnect kind names (%s) select the \
     matching T3D variant."
    (String.concat " | "
       (List.map (fun n -> "$(b," ^ n ^ ")") Ccdp_machine.Config.preset_names))
    (String.concat "/" Ccdp_machine.Net.kind_names)

let machine_conv =
  let parse s =
    match Ccdp_machine.Config.preset_of_string s with
    | Some p -> Ok (s, p)
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown machine %S (presets: %s)" s
               (String.concat ", " Ccdp_machine.Config.preset_names)))
  in
  Arg.conv (parse, fun ppf (name, _) -> Format.fprintf ppf "%s" name)

let machine_arg =
  Arg.(
    value
    & opt machine_conv ("t3d", Ccdp_machine.Config.t3d)
    & info [ "machine" ] ~docv:"MACHINE" ~doc:machine_doc)

(* resolved through CCDP_JOBS and the domain count when not given; -j 1
   bypasses the domain pool entirely (results are identical either way) *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains for independent simulator runs (default: \
           \\$(b,CCDP_JOBS) or the recommended domain count). Results are \
           deterministic for any value; 1 disables the pool.")

let resolve_jobs jobs = Ccdp_exec.Pool.resolve_jobs ?jobs ()

(* ---- commands ---- *)

let list_cmd =
  let run n iters =
    List.iter
      (fun (w : Workload.t) -> Printf.printf "%-10s %s\n" w.name w.descr)
      (workloads_of ~n ~iters)
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads")
    Term.(const run $ n_arg $ iters_arg)

let analyze_cmd =
  let run name n iters pe =
    let w = Workload.find (workloads_of ~n ~iters) name in
    let cfg = Ccdp_machine.Config.t3d ~n_pes:pe in
    let compiled = Ccdp_core.Pipeline.compile cfg w.program in
    Format.printf "%a@." Ccdp_core.Pipeline.report compiled
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the compiler pipeline and print its report")
    Term.(const run $ workload_arg $ n_arg $ iters_arg $ pe_arg)

let run_cmd =
  let run name n iters pe mode (_, machine) verify jobs =
    let w = Workload.find (workloads_of ~n ~iters) name in
    (* here the pool shards the single run's epochs (Interp's intra-run
       parallelism) rather than a list of runs; the simulated result is
       identical for every job count *)
    let r =
      Ccdp_core.Experiment.run_mode ~machine ~jobs:(resolve_jobs jobs)
        ~n_pes:pe mode w
    in
    Format.printf "%a@." Ccdp_runtime.Interp.pp_result r;
    Format.printf "%a@." Ccdp_runtime.Metrics.pp (Ccdp_runtime.Metrics.of_result r);
    if verify then
      let v = Ccdp_runtime.Verify.against_sequential w.program ~init:(fun _ -> ()) r in
      Format.printf "%a@." Ccdp_runtime.Verify.pp_report v
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute one workload on the machine model")
    Term.(
      const run $ workload_arg $ n_arg $ iters_arg $ pe_arg $ mode_arg
      $ machine_arg $ verify_arg $ jobs_arg)

let eval_rows n iters pes verify spec_four jobs =
  let ws = if spec_four then Suite.spec_four ~n ~iters () else workloads_of ~n ~iters in
  let spec = { Ccdp_core.Experiment.default_spec with pes; verify } in
  Ccdp_core.Experiment.evaluate ~jobs:(resolve_jobs jobs) ~spec ws

let spec_four_arg =
  Arg.(
    value & flag
    & info [ "spec-four" ]
        ~doc:"Restrict to the paper's four benchmarks (MXM, VPENTA, TOMCATV, SWIM).")

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit machine-readable CSV instead.")

let table1_cmd =
  let run n iters pes verify spec4 csv jobs =
    let rows = eval_rows n iters pes verify spec4 jobs in
    if csv then Ccdp_core.Experiment.csv_rows Format.std_formatter rows
    else Ccdp_core.Experiment.print_table1 Format.std_formatter rows
  in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce paper Table 1 (speedups)")
    Term.(
      const run $ n_arg $ iters_arg $ pes_arg $ verify_arg $ spec_four_arg
      $ csv_arg $ jobs_arg)

let table2_cmd =
  let run n iters pes verify spec4 csv jobs =
    let rows = eval_rows n iters pes verify spec4 jobs in
    if csv then Ccdp_core.Experiment.csv_rows Format.std_formatter rows
    else Ccdp_core.Experiment.print_table2 Format.std_formatter rows
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Reproduce paper Table 2 (CCDP improvement over BASE)")
    Term.(
      const run $ n_arg $ iters_arg $ pes_arg $ verify_arg $ spec_four_arg
      $ csv_arg $ jobs_arg)

let ablate_cmd =
  let which_arg =
    Arg.(
      value
      & opt (enum [ ("target", `Target); ("sched", `Sched); ("coherence", `Coh) ]) `Coh
      & info [ "which" ] ~docv:"KIND" ~doc:"target | sched | coherence.")
  in
  let run n iters pe which =
    let ws = Suite.spec_four ~n ~iters () in
    match which with
    | `Target -> Ccdp_core.Experiment.ablation_target ~n_pes:pe ws Format.std_formatter
    | `Sched -> Ccdp_core.Experiment.ablation_technique ~n_pes:pe ws Format.std_formatter
    | `Coh -> Ccdp_core.Experiment.ablation_coherence ~n_pes:pe ws Format.std_formatter
  in
  Cmd.v (Cmd.info "ablate" ~doc:"Ablation studies (DESIGN.md index)")
    Term.(const run $ n_arg $ iters_arg $ pe_arg $ which_arg)

let load_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"CRAFT-dialect source file.")
  in
  let run path pe mode verify =
    let program =
      try Ccdp_ir.Craft_parse.file path
      with Ccdp_ir.Craft_parse.Error (ln, col, msg) ->
        if col > 0 then Printf.eprintf "%s:%d:%d: error: %s\n" path ln col msg
        else Printf.eprintf "%s:%d: error: %s\n" path ln msg;
        exit 1
    in
    let cfg = Ccdp_machine.Config.t3d ~n_pes:pe in
    let compiled = Ccdp_core.Pipeline.compile cfg program in
    Format.printf "%a@.@." Ccdp_core.Pipeline.report compiled;
    let plan =
      match mode with
      | Ccdp_runtime.Memsys.Ccdp | Ccdp_runtime.Memsys.Clustered ->
          compiled.Ccdp_core.Pipeline.plan
      | _ -> Ccdp_analysis.Annot.empty ()
    in
    let r =
      Ccdp_runtime.Interp.run cfg compiled.Ccdp_core.Pipeline.program ~plan
        ~mode ()
    in
    Format.printf "%a@." Ccdp_runtime.Interp.pp_result r;
    if verify then
      let v = Ccdp_runtime.Verify.against_sequential program ~init:(fun _ -> ()) r in
      Format.printf "%a@." Ccdp_runtime.Verify.pp_report v
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Parse a CRAFT-dialect source file, compile and execute it")
    Term.(const run $ file_arg $ pe_arg $ mode_arg $ verify_arg)

let emit_cmd =
  let run name n iters pe =
    let w = Workload.find (workloads_of ~n ~iters) name in
    let cfg = Ccdp_machine.Config.t3d ~n_pes:pe in
    let compiled = Ccdp_core.Pipeline.compile cfg w.program in
    Ccdp_core.Craft_emit.emit Format.std_formatter compiled;
    Format.print_newline ()
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:"Print the compiled program as CRAFT-style Fortran with CCDP              prefetch annotations")
    Term.(const run $ workload_arg $ n_arg $ iters_arg $ pe_arg)

let profile_cmd =
  let run name n iters pe mode =
    let w = Workload.find (workloads_of ~n ~iters) name in
    let r = Ccdp_core.Experiment.run_mode ~n_pes:pe mode w in
    let p = Ccdp_ir.Program.inline w.Workload.program in
    let ep = Ccdp_ir.Epoch.partition p.Ccdp_ir.Program.main in
    Ccdp_runtime.Interp.pp_profile Format.std_formatter ep r;
    Format.print_newline ()
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Per-epoch cycle breakdown of one run")
    Term.(const run $ workload_arg $ n_arg $ iters_arg $ pe_arg $ mode_arg)

let parallelize_cmd =
  let run name n iters =
    let w = Workload.find (workloads_of ~n ~iters) name in
    let p = Ccdp_ir.Program.inline w.Workload.program in
    let _, report = Ccdp_analysis.Parallelize.transform p in
    Format.printf "%a@." Ccdp_analysis.Parallelize.pp_report report
  in
  Cmd.v
    (Cmd.info "parallelize"
       ~doc:"Run the Polaris-style dependence test over a workload")
    Term.(const run $ workload_arg $ n_arg $ iters_arg)

let fuzz_cmd =
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (runs are deterministic).")
  in
  let count_arg =
    Arg.(
      value & opt int 500
      & info [ "count" ] ~docv:"N" ~doc:"Number of random programs to check.")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"DIR"
          ~doc:"Write each shrunk failing reproducer there as a .craft file.")
  in
  let break_stale_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "break-stale" ] ~docv:"K"
          ~doc:
            "Fault injection: drop the K-th stale mark from every compile, \
             demonstrating that the oracle catches an unsound analysis.")
  in
  let sabotage_arg =
    Arg.(
      value & flag
      & info [ "sabotage" ]
          ~doc:
            "Protocol fault injection: run the hardware-coherence sabotage \
             campaign (drop snoop invalidations, corrupt directory presence \
             bits) instead of the differential campaign, demonstrating that \
             the staleness oracle catches each protocol fault class.")
  in
  let shards_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run every shardable variant with intra-run epoch sharding over \
             $(docv) domains, as the CI smoke job does. Mirrors the \
             $(b,CCDP_SHARDS) environment variable (the flag wins when both \
             are set); campaign output must be identical either way.")
  in
  let run seed count dump break_stale sabotage shards jobs =
    let shards =
      match shards with
      | Some _ -> shards
      | None ->
          Option.bind
            (Sys.getenv_opt "CCDP_SHARDS")
            (fun s -> int_of_string_opt (String.trim s))
    in
    if sabotage then begin
      let summaries =
        Ccdp_fuzz.Driver.sabotage_campaign ~jobs:(resolve_jobs jobs) ~seed
          ~count ()
      in
      List.iter
        (fun s ->
          Format.printf "%a@." Ccdp_fuzz.Driver.pp_sabotage_summary s)
        summaries;
      if
        List.exists
          (fun s -> s.Ccdp_fuzz.Driver.sb_escapes > 0)
          summaries
      then exit 1
    end
    else begin
      let mutate_stale =
        Option.map Ccdp_fuzz.Driver.drop_stale_mark break_stale
      in
      let progress i =
        if i mod 50 = 0 then Printf.eprintf "  ... %d/%d\n%!" i count
      in
      let s =
        Ccdp_fuzz.Driver.campaign ~jobs:(resolve_jobs jobs) ?shards
          ?mutate_stale ?dump_dir:dump ~progress ~seed ~count ()
      in
      Format.printf "%a@." Ccdp_fuzz.Driver.pp_summary s;
      if s.Ccdp_fuzz.Driver.s_failures <> [] then exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential soundness fuzzing: random CRAFT programs through BASE, \
          every CCDP scheduling variant, the hardware-coherence rivals \
          (MSI, MESI, directory) and the clustered islands mode on a \
          re-islanded machine, checked against sequential execution and \
          the dynamic staleness oracle")
    Term.(
      const run $ seed_arg $ count_arg $ dump_arg $ break_stale_arg
      $ sabotage_arg $ shards_arg $ jobs_arg)

let check_cmd =
  let targets_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TARGET"
          ~doc:"Workload name or CRAFT-dialect $(b,.craft) source file.")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Check every workload in the suite (plus any TARGETs given).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the machine-readable JSON report.")
  in
  let werror_arg =
    Arg.(
      value & flag
      & info [ "warnings-as-errors" ]
          ~doc:"Exit non-zero on warnings too, not just errors.")
  in
  let run targets all n iters pe json werror =
    let ws = workloads_of ~n ~iters in
    let resolve t =
      if Filename.check_suffix t ".craft" then
        ( Filename.remove_extension (Filename.basename t),
          try Ccdp_ir.Craft_parse.file t
          with Ccdp_ir.Craft_parse.Error (ln, col, msg) ->
            if col > 0 then Printf.eprintf "%s:%d:%d: error: %s\n" t ln col msg
            else Printf.eprintf "%s:%d: error: %s\n" t ln msg;
            exit 2 )
      else
        let w =
          try Workload.find ws t
          with Invalid_argument msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 2
        in
        (w.Workload.name, w.Workload.program)
    in
    let named =
      (if all || targets = [] then
         List.map (fun (w : Workload.t) -> (w.name, w.program)) ws
       else [])
      @ List.map resolve targets
    in
    let cfg = Ccdp_machine.Config.t3d ~n_pes:pe in
    let reports =
      List.map
        (fun (name, program) ->
          let compiled = Ccdp_core.Pipeline.compile cfg program in
          { Ccdp_check.Check.name; diags = Ccdp_check.Check.certify compiled })
        named
    in
    if json then print_string (Ccdp_check.Check.json reports)
    else
      List.iter
        (fun r -> Format.printf "%a@." Ccdp_check.Check.pp_report r)
        reports;
    let gate (d : Ccdp_check.Diag.t) =
      werror || d.Ccdp_check.Diag.severity = Ccdp_check.Diag.Error
    in
    if List.exists (fun r -> List.exists gate r.Ccdp_check.Check.diags) reports
    then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically certify compiled coherence plans: coverage of \
          potentially-stale reads, DOALL race freedom, prefetch sizing \
          lints. Exits 1 when an error-severity diagnostic fires, 2 on \
          unusable targets.")
    Term.(
      const run $ targets_arg $ all_arg $ n_arg $ iters_arg $ pe_arg
      $ json_arg $ werror_arg)

let perf_cmd =
  let run name n iters pe mode (_, machine) jobs =
    let jobs = resolve_jobs jobs in
    let w = Workload.find (workloads_of ~n ~iters) name in
    let cfg =
      machine ~n_pes:(if mode = Ccdp_runtime.Memsys.Seq then 1 else pe)
    in
    let prog, plan =
      match mode with
      | Ccdp_runtime.Memsys.Ccdp ->
          let compiled = Ccdp_core.Pipeline.compile cfg w.program in
          (compiled.Ccdp_core.Pipeline.program, compiled.Ccdp_core.Pipeline.plan)
      | Ccdp_runtime.Memsys.Clustered ->
          let compiled =
            Ccdp_core.Pipeline.compile cfg ~cluster_coherent:true w.program
          in
          (compiled.Ccdp_core.Pipeline.program, compiled.Ccdp_core.Pipeline.plan)
      | _ -> (Ccdp_ir.Program.inline w.program, Ccdp_analysis.Annot.empty ())
    in
    let time f =
      ignore (f ()) (* warm up *);
      let m0 = Gc.minor_words () in
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0, Gc.minor_words () -. m0)
    in
    (* only the plan engine shards; the reference engine stays serial, so
       the cycle-agreement check below also certifies sharded-vs-serial *)
    let r, wall, mw =
      if jobs > 1 then
        Ccdp_exec.Pool.with_pool ~jobs (fun pool ->
            time (fun () ->
                Ccdp_runtime.Interp.run cfg ~pool prog ~plan ~mode ()))
      else time (fun () -> Ccdp_runtime.Interp.run cfg prog ~plan ~mode ())
    in
    let rr, rwall, rmw =
      time (fun () -> Ccdp_runtime.Interp_ref.run cfg prog ~plan ~mode ())
    in
    if rr.Ccdp_runtime.Interp_ref.cycles <> r.Ccdp_runtime.Interp.cycles then
      failwith
        (Printf.sprintf "perf: engines disagree (%d vs %d cycles)"
           r.Ccdp_runtime.Interp.cycles rr.Ccdp_runtime.Interp_ref.cycles);
    let cycles = r.Ccdp_runtime.Interp.cycles in
    let line eng wall mw =
      Printf.printf "%-5s %9.3fs %12d cycles %14.0f sim-cycles/s %14.0f minor-words\n"
        eng wall cycles
        (if wall > 0.0 then float_of_int cycles /. wall else 0.0)
        mw
    in
    line "plan" wall mw;
    line "ref" rwall rmw;
    if wall > 0.0 then
      Printf.printf "speedup: %.2fx wall-clock, %.1f%% of the allocations\n"
        (rwall /. wall)
        (100.0 *. mw /. Float.max 1.0 rmw)
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Time one workload on the compiled-plan engine and the reference \
          tree-walking engine (identical simulated cycles, host wall-clock \
          and allocation compared)")
    Term.(
      const run $ workload_arg $ n_arg $ iters_arg $ pe_arg $ mode_arg
      $ machine_arg $ jobs_arg)

let sweep_cmd =
  let run n iters pe name =
    let w = Workload.find (workloads_of ~n ~iters) name in
    Ccdp_core.Experiment.sweep_remote ~n_pes:pe w Format.std_formatter;
    Ccdp_core.Experiment.sweep_queue ~n_pes:pe w Format.std_formatter
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Latency and queue-capacity sweeps")
    Term.(const run $ n_arg $ iters_arg $ pe_arg $ workload_arg)

let main =
  Cmd.group
    (Cmd.info "ccdp" ~version:"1.0"
       ~doc:"Compiler-directed cache coherence with data prefetching (Lim & Yew, IPPS'97)")
    [
      list_cmd; analyze_cmd; run_cmd; table1_cmd; table2_cmd; ablate_cmd;
      sweep_cmd; parallelize_cmd; profile_cmd; emit_cmd; load_cmd; check_cmd;
      fuzz_cmd; perf_cmd;
    ]

let () = exit (Cmd.eval main)
