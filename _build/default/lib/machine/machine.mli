(** The whole machine: a set of PEs plus barrier synchronization. *)

type t = { cfg : Config.t; pes : Pe.t array }

val create : Config.t -> t
val pe : t -> int -> Pe.t
val n_pes : t -> int

(** Barrier: every clock jumps to the maximum plus the (log-tree) barrier
    cost; pending prefetches are drained and counted unused. *)
val barrier : t -> unit

(** Latest PE clock. *)
val time : t -> int

(** Machine-wide counter totals. *)
val total_stats : t -> Stats.t

val reset : t -> unit
