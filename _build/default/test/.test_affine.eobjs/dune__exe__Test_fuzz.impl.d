test/test_fuzz.ml: Alcotest Ccdp_analysis Ccdp_fuzz Ccdp_ir Ccdp_machine Ccdp_runtime Ccdp_test_support Format List Option Random
