lib/runtime/memsys.ml: Addr_map Annot Array Array_decl Cache Ccdp_analysis Ccdp_ir Ccdp_machine Config Dist Dtb_annex Hashtbl List Machine Pe Prefetch_queue Program Reference Stats Torus
