lib/analysis/ref_info.ml: Ccdp_ir Epoch Fexpr Format Hashtbl List Reference Stmt
