lib/core/pipeline.mli: Ccdp_analysis Ccdp_ir Ccdp_machine Format
