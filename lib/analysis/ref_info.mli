(** Per-reference context extracted from the epoch structure.

    Every analysis phase consumes these records instead of re-walking the
    program: which epoch a reference executes in, its enclosing loop stack
    (outermost first, including serial structure loops {e around} the
    epoch), whether it sits in an innermost loop, whether it is guarded by
    an if, and its position inside the enclosing statement block (the
    moving-back budget). *)

type t = {
  ref_ : Ccdp_ir.Reference.t;
  write : bool;
  epoch : int;
  outer_serial : Ccdp_ir.Stmt.loop list;
      (** serial structure loops enclosing the whole epoch, outermost first *)
  loops : Ccdp_ir.Stmt.loop list;
      (** loops inside the epoch enclosing the reference, outermost first;
          for a parallel epoch the DOALL is the head *)
  par_loop : Ccdp_ir.Stmt.loop option;  (** the DOALL loop of a parallel epoch *)
  innermost : Ccdp_ir.Stmt.loop option;
      (** the innermost enclosing loop inside the epoch, if any *)
  in_innermost : bool;
      (** the reference sits directly in a loop that contains no other loop *)
  if_depth : int;  (** number of enclosing if-statements inside the epoch *)
  if_in_loop : bool;
      (** an if-statement sits between the innermost enclosing loop and the
          reference (paper Fig. 2 case 5: moved-back prefetches must not
          cross the branch boundary) *)
  loop_has_if : bool;  (** the innermost enclosing loop body contains ifs *)
  stmts_before : Ccdp_ir.Stmt.t list;
      (** statements preceding this one in its innermost block, nearest
          first (the moving-back window, paper Section 4.3.2); entering a
          critical section resets the window (a moved-back prefetch must
          not cross the acquire) *)
  lock : string option;
      (** the innermost enclosing critical section's lock, if any *)
}

(** All references of a partitioned program, in syntactic order. *)
val collect : Ccdp_ir.Epoch.t -> t list

(** Index by reference id. *)
val index : t list -> (int, t) Hashtbl.t

(** All loop variables in scope at the reference (outer serial + epoch
    loops), outermost first. *)
val scope_loops : t -> Ccdp_ir.Stmt.loop list

val pp : Format.formatter -> t -> unit
