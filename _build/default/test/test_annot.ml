open Ccdp_analysis
open Ccdp_test_support.Tutil

let plan_with entries ops =
  let p = Annot.empty () in
  List.iter (fun (id, c) -> Hashtbl.replace p.Annot.classes id c) entries;
  List.iter
    (fun op ->
      let id =
        match op with
        | Annot.Vector { ref_id; _ }
        | Annot.Pipelined { ref_id; _ }
        | Annot.Back { ref_id; _ } ->
            ref_id
      in
      Hashtbl.replace p.Annot.ops id op)
    ops;
  p

let tests =
  [
    case "empty plan classifies everything Normal" (fun () ->
        let p = Annot.empty () in
        check_true "normal" (Annot.cls_of p 42 = Annot.Normal);
        check_true "no op" (Annot.op_of p 42 = None);
        check_true "no vectors" (Annot.vectors_at p 7 = []);
        check_true "no pipelined" (Annot.pipelined_at p 7 = []));
    case "count tallies classes and ops" (fun () ->
        let p =
          plan_with
            [ (0, Annot.Lead); (1, Annot.Covered 0); (2, Annot.Bypass); (3, Annot.Normal) ]
            [
              Annot.Vector { ref_id = 0; loop_id = 1; group = [ 1 ]; inner = None };
              Annot.Back { ref_id = 9; cycles = 50 };
            ]
        in
        let c = Annot.count p in
        check_int "lead" 1 c.Annot.n_lead;
        check_int "covered" 1 c.Annot.n_covered;
        check_int "bypass" 1 c.Annot.n_bypass;
        check_int "normal" 1 c.Annot.n_normal;
        check_int "vector" 1 c.Annot.n_vector;
        check_int "back" 1 c.Annot.n_back);
    case "printers render" (fun () ->
        let p =
          plan_with
            [ (0, Annot.Lead) ]
            [ Annot.Pipelined { ref_id = 0; loop_id = 1; distance = 3; every = 4 } ]
        in
        let s = Format.asprintf "%a" Annot.pp p in
        check_true "mentions pipelined"
          (String.length s > 0
          &&
          try ignore (Str.search_forward (Str.regexp "pipelined") s 0); true
          with Not_found -> false));
  ]

let () = Alcotest.run "annot" [ ("plan", tests) ]
