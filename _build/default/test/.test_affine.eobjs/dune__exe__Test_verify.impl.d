test/test_verify.ml: Alcotest Ccdp_analysis Ccdp_core Ccdp_ir Ccdp_machine Ccdp_runtime Ccdp_test_support Ccdp_workloads Config Extras Interp List Memsys String Verify Workload
