type dim_dist = Block | Cyclic | Block_cyclic of int | Degenerate
type t = Dims of dim_dist array | Replicated

let along ~rank ~dim pattern =
  if dim < 0 || dim >= rank then
    invalid_arg (Printf.sprintf "Dist.along: dim %d out of rank %d" dim rank);
  Dims (Array.init rank (fun d -> if d = dim then pattern else Degenerate))

let block_along ~rank ~dim = along ~rank ~dim Block
let cyclic_along ~rank ~dim = along ~rank ~dim Cyclic
let replicated = Replicated

let distributed_dim = function
  | Replicated -> None
  | Dims dims ->
      let found = ref None in
      Array.iteri (fun d p -> if p <> Degenerate && !found = None then found := Some d) dims;
      !found

let equal a b = a = b

let pp_dim ppf = function
  | Block -> Format.pp_print_string ppf "block"
  | Cyclic -> Format.pp_print_string ppf "cyclic"
  | Block_cyclic w -> Format.fprintf ppf "block_cyclic(%d)" w
  | Degenerate -> Format.pp_print_string ppf ":"

let pp ppf = function
  | Replicated -> Format.pp_print_string ppf "replicated"
  | Dims dims ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_dim)
        (Array.to_list dims)
