open Ccdp_ir
open Ccdp_test_support.Tutil

let known_tests =
  [
    case "of_int evaluates to itself" (fun () ->
        check_true "eval" (Bound.eval (Bound.of_int 5) [] = Some 5));
    case "of_var needs a binding" (fun () ->
        check_true "bound" (Bound.eval (Bound.of_var "n") [ ("n", 8) ] = Some 8);
        check_true "unbound" (Bound.eval (Bound.of_var "n") [] = None));
    case "unknown never evaluates" (fun () ->
        check_true "none" (Bound.eval Bound.unknown [ ("n", 8) ] = None));
    case "is_known distinguishes the three" (fun () ->
        check_true "k" (Bound.is_known (Bound.of_int 1));
        check_false "o" (Bound.is_known (Bound.opaque (Affine.var "n")));
        check_false "u" (Bound.is_known Bound.unknown));
  ]

let opaque_tests =
  [
    case "opaque is invisible to analysis eval" (fun () ->
        check_true "none" (Bound.eval (Bound.opaque (Affine.const 3)) [] = None));
    case "opaque is executable" (fun () ->
        check_int "exec" 7
          (Bound.eval_exec (Bound.opaque (Affine.add (Affine.var "n") Affine.one))
             (fun _ -> 6)));
    case "eval_exec on unknown raises" (fun () ->
        Alcotest.check_raises "unknown"
          (Invalid_argument "Bound.eval_exec: unknown bound is not executable")
          (fun () -> ignore (Bound.eval_exec Bound.unknown (fun _ -> 0))));
  ]

let subst_tests =
  [
    case "subst_env rewrites known bounds" (fun () ->
        let b = Bound.known (Affine.var "m") in
        let b' = Bound.subst_env b [ ("m", Affine.const 9) ] in
        check_true "eval" (Bound.eval b' [] = Some 9));
    case "subst_env rewrites opaque bounds but keeps them opaque" (fun () ->
        let b = Bound.opaque (Affine.var "m") in
        let b' = Bound.subst_env b [ ("m", Affine.const 9) ] in
        check_true "still hidden" (Bound.eval b' [] = None);
        check_int "exec" 9 (Bound.eval_exec b' (fun _ -> 0)));
    case "equal distinguishes kinds" (fun () ->
        check_false "known vs opaque"
          (Bound.equal (Bound.known (Affine.const 1)) (Bound.opaque (Affine.const 1))));
  ]

let () =
  Alcotest.run "bound"
    [ ("known", known_tests); ("opaque", opaque_tests); ("subst", subst_tests) ]
