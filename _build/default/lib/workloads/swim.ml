open Ccdp_ir
module B = Builder
module F = Builder.F

let arrays =
  [
    "U"; "V"; "P"; "UNEW"; "VNEW"; "PNEW"; "UOLD"; "VOLD"; "POLD"; "CU"; "CV";
    "Z"; "H"; "PSI";
  ]

let program ~n ~iters =
  if n < 8 then invalid_arg "Swim.program: n too small";
  let b = B.create ~name:"swim" () in
  B.param b "n" n;
  B.param b "niter" iters;
  let dist = Dist.block_along ~rank:2 ~dim:1 in
  List.iter (fun name -> B.array_ b name [| n; n |] ~dist) arrays;
  let open B.A in
  let i = v "i" and j = v "j" in
  let fi = F.iv "i" and fj = F.iv "j" in
  let s = 1.0 /. float_of_int n in
  let rd = B.rd b in
  (* CALC1: fluxes, vorticity and height from the prognostic fields;
     i+1 neighbours share lines (group-spatial), j+1 neighbours cross the
     column distribution boundary *)
  B.proc b "calc1" ~formals:[ "m" ]
    [
      B.doall b "j" ~sched:(Stmt.Static_aligned n) (bc 1) (bv "m")
        [
          B.for_ b "i" (bc 1) (bv "m")
            [
              B.assign b "CU" [ i; j ]
                F.(const 0.5 * (rd "P" [ i +! c 1; j ] + rd "P" [ i; j ])
                   * rd "U" [ i; j ]);
              B.assign b "CV" [ i; j ]
                F.(const 0.5 * (rd "P" [ i; j +! c 1 ] + rd "P" [ i; j ])
                   * rd "V" [ i; j ]);
              B.assign b "Z" [ i; j ]
                F.(
                  ((const 0.25 * (rd "V" [ i +! c 1; j ] - rd "V" [ i; j ]))
                  - (const 0.25 * (rd "U" [ i; j +! c 1 ] - rd "U" [ i; j ])))
                  / rd "P" [ i; j ]);
              B.assign b "H" [ i; j ]
                F.(
                  rd "P" [ i; j ]
                  + (const 0.25
                    * ((rd "U" [ i; j ] * rd "U" [ i; j ])
                      + (rd "V" [ i; j ] * rd "V" [ i; j ]))));
            ];
        ];
    ];
  (* CALC2: new prognostic values from the diagnostics *)
  B.proc b "calc2" ~formals:[ "m" ]
    [
      B.doall b "j" ~sched:(Stmt.Static_aligned n) (bc 1) (bv "m")
        [
          B.for_ b "i" (bc 1) (bv "m")
            [
              B.assign b "UNEW" [ i; j ]
                F.(
                  rd "UOLD" [ i; j ]
                  + (const 0.05
                    * (rd "Z" [ i; j +! c 1 ] + rd "Z" [ i; j ])
                    * (rd "CV" [ i; j +! c 1 ] + rd "CV" [ i; j ]))
                  - (const 0.1 * (rd "H" [ i +! c 1; j ] - rd "H" [ i; j ])));
              B.assign b "VNEW" [ i; j ]
                F.(
                  rd "VOLD" [ i; j ]
                  - (const 0.05
                    * (rd "Z" [ i +! c 1; j ] + rd "Z" [ i; j ])
                    * (rd "CU" [ i +! c 1; j ] + rd "CU" [ i; j ]))
                  - (const 0.1 * (rd "H" [ i; j +! c 1 ] - rd "H" [ i; j ])));
              B.assign b "PNEW" [ i; j ]
                F.(
                  rd "POLD" [ i; j ]
                  - (const 0.1
                    * (rd "CU" [ i +! c 1; j ] - rd "CU" [ i; j ]
                      + rd "CV" [ i; j +! c 1 ] - rd "CV" [ i; j ])));
            ];
        ];
    ];
  (* CALC3: time smoothing and field rotation; fully column-local *)
  B.proc b "calc3" ~formals:[ "m" ]
    [
      B.doall b "j" ~sched:(Stmt.Static_aligned n) (bc 1) (bv "m")
        [
          B.for_ b "i" (bc 1) (bv "m")
            [
              B.assign b "UOLD" [ i; j ]
                F.(
                  rd "U" [ i; j ]
                  + (const 0.001
                    * (rd "UNEW" [ i; j ] - (const 2.0 * rd "U" [ i; j ])
                      + rd "UOLD" [ i; j ])));
              B.assign b "VOLD" [ i; j ]
                F.(
                  rd "V" [ i; j ]
                  + (const 0.001
                    * (rd "VNEW" [ i; j ] - (const 2.0 * rd "V" [ i; j ])
                      + rd "VOLD" [ i; j ])));
              B.assign b "POLD" [ i; j ]
                F.(
                  rd "P" [ i; j ]
                  + (const 0.001
                    * (rd "PNEW" [ i; j ] - (const 2.0 * rd "P" [ i; j ])
                      + rd "POLD" [ i; j ])));
              B.assign b "U" [ i; j ] (rd "UNEW" [ i; j ]);
              B.assign b "V" [ i; j ] (rd "VNEW" [ i; j ]);
              B.assign b "P" [ i; j ] (rd "PNEW" [ i; j ]);
            ];
        ];
    ];
  (* initial stream function, then fields derived from it *)
  let init_psi =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "PSI" [ i; j ]
              F.((fi * fj * const (s *. s)) + (fi * const (0.1 *. s)));
          ];
      ]
  in
  let init_fields =
    B.doall b "j" ~sched:(Stmt.Static_aligned n) (bc 0)
      (bc (n - 2))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 2))
          [
            B.assign b "U" [ i; j ]
              F.(
                const (-1.0)
                * (rd "PSI" [ i +! c 1; j +! c 1 ] - rd "PSI" [ i +! c 1; j ]));
            B.assign b "V" [ i; j ]
              F.(rd "PSI" [ i +! c 1; j +! c 1 ] - rd "PSI" [ i; j +! c 1 ]);
            B.assign b "P" [ i; j ] F.(const 2.0 + ((fi + fj) * const (0.1 *. s)));
          ];
      ]
  in
  let init_rest =
    B.doall b "j" (bc 0)
      (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "UOLD" [ i; j ] (F.const 0.0);
            B.assign b "VOLD" [ i; j ] (F.const 0.0);
            B.assign b "POLD" [ i; j ] (F.const 2.0);
            B.assign b "CU" [ i; j ] (F.const 0.0);
            B.assign b "CV" [ i; j ] (F.const 0.0);
            B.assign b "Z" [ i; j ] (F.const 0.0);
            B.assign b "H" [ i; j ] (F.const 2.0);
            B.assign b "UNEW" [ i; j ] (F.const 0.0);
            B.assign b "VNEW" [ i; j ] (F.const 0.0);
            B.assign b "PNEW" [ i; j ] (F.const 2.0);
          ];
      ]
  in
  (* periodic boundary exchange: every PE copies from the first/last
     columns, which only their owners wrote *)
  let boundary =
    B.doall b "i" (bc 0)
      (bc (n - 1))
      [
        B.assign b "U" [ i; c (n - 1) ] (rd "U" [ i; c 1 ]);
        B.assign b "V" [ i; c (n - 1) ] (rd "V" [ i; c 1 ]);
        B.assign b "P" [ i; c (n - 1) ] (rd "P" [ i; c 1 ]);
        B.assign b "U" [ i; c 0 ] (rd "U" [ i; c (n - 2) ]);
        B.assign b "V" [ i; c 0 ] (rd "V" [ i; c (n - 2) ]);
        B.assign b "P" [ i; c 0 ] (rd "P" [ i; c (n - 2) ]);
      ]
  in
  let m = c (n - 2) in
  let time_loop =
    B.for_ b "it" (bc 1) (bv "niter")
      [
        B.call "calc1" [ ("m", m) ];
        B.call "calc2" [ ("m", m) ];
        B.call "calc3" [ ("m", m) ];
        boundary;
      ]
  in
  B.finish b [ init_psi; init_fields; init_rest; time_loop ]

let workload ~n ~iters =
  Workload.make ~name:"swim"
    ~descr:
      (Printf.sprintf
         "shallow water %dx%d, %d iterations: 3 subroutines, small halo \
          fraction" n n iters)
    (program ~n ~iters)
