lib/ir/reference.ml: Affine Array Format String
