(* A tour of the prefetch scheduling algorithm (paper Fig. 2).

   Builds one program per scheduling situation and prints the technique the
   compiler picks, so you can see every case of the algorithm fire:

     case 1  serial loop, known bounds        -> vector prefetch
     case 1' serial loop, runtime bounds      -> software pipelining
     case 2  static DOALL, known bounds       -> vector prefetch
     case 3  dynamic DOALL                    -> moving back / bypass
     case 4  serial code section              -> moving back
     case 5  loop containing if-statements    -> moving back only

   Run with: dune exec examples/scheduling_tour.exe *)

open Ccdp_ir
open Ccdp_core
module B = Builder
module F = Builder.F

let dist = Dist.block_along ~rank:2 ~dim:1
let cfg = Ccdp_machine.Config.t3d ~n_pes:8

let base_builder () =
  let b = B.create ~name:"tour" () in
  B.param b "n" 32;
  B.array_ b "A" [| 32; 32 |] ~dist;
  B.array_ b "O" [| 32; 32 |] ~dist;
  b

let init b =
  let open B.A in
  B.doall b "j" (bc 0) (bc 31)
    [ B.for_ b "i" (bc 0) (bc 31) [ B.assign b "A" [ v "i"; v "j" ] (F.const 1.0) ] ]

let show name main_of =
  let b = base_builder () in
  let p = B.finish b (init b :: main_of b) in
  let compiled = Pipeline.compile cfg p in
  Format.printf "--- %s ---@.%a@." name Ccdp_analysis.Schedule.pp_decisions
    compiled.Pipeline.decisions

let () =
  let open B.A in
  show "case 1: serial loop, known bounds" (fun b ->
      [
        Stmt.Sassign ("acc", F.const 0.0);
        B.for_ b "k" (bc 0) (bc 31)
          [ Stmt.Sassign ("acc", F.(sv "acc" + B.rd b "A" [ v "k"; c 17 ])) ];
      ]);
  show "case 1': serial loop, bounds only known at run time" (fun b ->
      [
        Stmt.Sassign ("acc", F.const 0.0);
        B.for_ b "k" (bc 0) (Bound.opaque (Affine.sub (Affine.var "n") Affine.one))
          [ Stmt.Sassign ("acc", F.(sv "acc" + B.rd b "A" [ v "k"; c 17 ])) ];
      ]);
  show "case 2: static DOALL, known bounds" (fun b ->
      [
        B.doall b "j" (bc 0) (bc 30)
          [
            B.for_ b "i" (bc 0) (bc 31)
              [ B.assign b "O" [ v "i"; v "j" ] (B.rd b "A" [ v "i"; v "j" +! c 1 ]) ];
          ];
      ]);
  show "case 3: dynamic DOALL (self-scheduled)" (fun b ->
      [
        B.doall b ~sched:(Stmt.Dynamic 2) "j" (bc 0) (bc 30)
          [
            Stmt.Sassign ("t0", F.(F.iv "j" * const 3.0));
            Stmt.Sassign ("t1", F.((sv "t0" * sv "t0") + (sv "t0" * const 0.5)));
            Stmt.Sassign ("t2", F.((sv "t1" * sv "t1") - (sv "t1" * const 0.25)));
            Stmt.Sassign ("t3", F.((sv "t2" * sv "t2") + (sv "t2" * const 0.125)));
            Stmt.Sassign ("t4", F.((sv "t3" * sv "t3") - (sv "t3" * const 0.5)));
            B.assign b "O" [ c 0; v "j" ]
              F.(B.rd b "A" [ c 0; v "j" +! c 1 ] + sv "t4");
          ];
      ]);
  show "case 4: serial code section" (fun b ->
      [
        Stmt.Sassign ("t0", F.(B.rd b "O" [ c 0; c 0 ] * const 2.0));
        Stmt.Sassign ("t1", F.((sv "t0" * sv "t0") + (sv "t0" * const 0.5)));
        Stmt.Sassign ("t2", F.((sv "t1" * sv "t1") - (sv "t1" * const 0.25)));
        Stmt.Sassign ("t3", F.((sv "t2" * sv "t2") + (sv "t2" * const 0.125)));
        B.assign b "O" [ c 1; c 1 ] F.(B.rd b "A" [ c 5; c 17 ] + sv "t3");
      ]);
  show "case 5: loop containing if-statements" (fun b ->
      [
        B.doall b "j" (bc 0) (bc 30)
          [
            B.for_ b "i" (bc 1) (bc 30)
              [
                Stmt.Sassign ("t", F.(F.iv "i" * const 2.0));
                Stmt.If
                  ( Stmt.Icond (Stmt.Lt, v "i", c 16),
                    [
                      (* the moved-back prefetch may not cross the branch
                         boundary: its window is only these statements *)
                      Stmt.Sassign ("u0", F.((sv "t" * sv "t") + (sv "t" * const 0.5)));
                      Stmt.Sassign ("u1", F.((sv "u0" * sv "u0") - (sv "u0" * const 0.25)));
                      Stmt.Sassign ("u2", F.((sv "u1" * sv "u1") + (sv "u1" * const 0.125)));
                      B.assign b "O" [ v "i"; v "j" ]
                        F.(B.rd b "A" [ v "i"; v "j" +! c 1 ] + sv "u2");
                    ],
                    [] );
              ];
          ];
      ])
