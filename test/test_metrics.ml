open Ccdp_runtime
open Ccdp_workloads
open Ccdp_test_support.Tutil

let run mode (w : Workload.t) =
  let cfg = Ccdp_machine.Config.t3d ~n_pes:4 in
  match mode with
  | Memsys.Ccdp ->
      let c = Ccdp_core.Pipeline.compile cfg w.program in
      Interp.run cfg c.Ccdp_core.Pipeline.program ~plan:c.Ccdp_core.Pipeline.plan
        ~mode ()
  | _ ->
      Interp.run cfg
        (Ccdp_ir.Program.inline w.program)
        ~plan:(Ccdp_analysis.Annot.empty ()) ~mode ()

let in_unit x = x >= 0.0 && x <= 1.0

let tests =
  [
    case "all ratios land in [0, 1]" (fun () ->
        List.iter
          (fun mode ->
            let m = Metrics.of_result (run mode (Extras.jacobi ~n:16 ~iters:2)) in
            check_true "hit" (in_unit m.Metrics.hit_ratio);
            check_true "coverage" (in_unit m.Metrics.prefetch_coverage);
            check_true "timeliness" (in_unit m.Metrics.prefetch_timeliness);
            check_true "accuracy" (in_unit m.Metrics.prefetch_accuracy);
            check_true "remote" (m.Metrics.remote_ops_per_ref >= 0.0);
            check_true "balance" (in_unit m.Metrics.load_balance))
          [
            Memsys.Base;
            Memsys.Ccdp;
            Memsys.Invalidate;
            Memsys.Hscd;
            Memsys.Msi;
            Memsys.Mesi;
            Memsys.Directory;
          ]);
    case "legacy modes report zero coherence messages" (fun () ->
        List.iter
          (fun mode ->
            let m =
              Metrics.of_result (run mode (Extras.jacobi ~n:16 ~iters:2))
            in
            check_int
              ("coherence msgs in " ^ Memsys.mode_name mode)
              0 m.Metrics.coherence_msgs)
          [ Memsys.Seq; Memsys.Base; Memsys.Ccdp ];
        (* the software invalidate schemes count invalidations, but never
           touch the hardware-protocol counters *)
        List.iter
          (fun mode ->
            let r = run mode (Extras.jacobi ~n:16 ~iters:2) in
            let s = r.Interp.stats in
            let tag c = c ^ " in " ^ Memsys.mode_name mode in
            check_int (tag "upgrades") 0 s.Ccdp_machine.Stats.upgrades;
            check_int (tag "dir msgs") 0 s.Ccdp_machine.Stats.dir_msgs;
            check_int (tag "bus conflicts") 0
              s.Ccdp_machine.Stats.bus_conflicts)
          [ Memsys.Invalidate; Memsys.Hscd ]);
    case "the directory protocol generates coherence messages" (fun () ->
        let m =
          Metrics.of_result (run Memsys.Directory (Extras.jacobi ~n:16 ~iters:2))
        in
        check_true "dir msgs counted" (m.Metrics.coherence_msgs > 0));
    case "BASE has zero prefetch activity and zero hit ratio on shared data"
      (fun () ->
        let m = Metrics.of_result (run Memsys.Base (Extras.transpose ~n:16)) in
        check_float "coverage" 0.0 m.Metrics.prefetch_coverage;
        check_true "remote heavy" (m.Metrics.remote_ops_per_ref > 0.1));
    case "CCDP covers the transpose gather" (fun () ->
        let m = Metrics.of_result (run Memsys.Ccdp (Extras.transpose ~n:16)) in
        check_true "covered" (m.Metrics.prefetch_coverage > 0.3);
        check_true "traffic positive" (m.Metrics.traffic_words > 0));
    case "perfectly balanced kernels balance" (fun () ->
        let m = Metrics.of_result (run Memsys.Base (Extras.triad ~n:16)) in
        check_true "balanced" (m.Metrics.load_balance > 0.9));
    case "printer renders" (fun () ->
        let m = Metrics.of_result (run Memsys.Ccdp (Extras.jacobi ~n:16 ~iters:1)) in
        check_true "output" (String.length (Format.asprintf "%a" Metrics.pp m) > 80));
  ]

(* Hand-built Stats.t fixtures: the counter algebra of Metrics.of_stats
   pinned against by-hand arithmetic, independent of any simulator run. *)

let fixture () =
  let open Ccdp_machine.Stats in
  let s = create () in
  s.reads <- 100;
  s.writes <- 20;
  s.hits <- 50;
  s.miss_local <- 10;
  s.miss_remote <- 5;
  s.uncached_local <- 3;
  s.uncached_remote <- 4;
  s.bypass_reads <- 1;
  s.pf_issued <- 30;
  s.pf_vector_words <- 16;
  s.pf_on_time <- 20;
  s.pf_late <- 5;
  s.pf_late_cycles <- 50;
  s.pf_dropped <- 2;
  s.annex_hits <- 6;
  s.annex_misses <- 2;
  s

let fixture_tests =
  [
    case "hit ratio counts hits over all cached read acquisitions" (fun () ->
        let m =
          Metrics.of_stats (fixture ()) ~line_words:4
            ~per_pe_cycles:[| 100; 100 |]
        in
        (* cached reads = hits 50 + misses 15 + consumed prefetches 25 *)
        check_float "hit ratio" (50. /. 90.) m.Metrics.hit_ratio);
    case "coverage and timeliness decompose consumed prefetches" (fun () ->
        let m =
          Metrics.of_stats (fixture ()) ~line_words:4
            ~per_pe_cycles:[| 100; 100 |]
        in
        (* consumed 25 vs demand misses 15; on-time 20 of 25 *)
        check_float "coverage" 0.625 m.Metrics.prefetch_coverage;
        check_float "timeliness" 0.8 m.Metrics.prefetch_timeliness;
        check_float "late stall" 10.0 m.Metrics.avg_late_stall);
    case "accuracy divides consumed by issued lines" (fun () ->
        let m =
          Metrics.of_stats (fixture ()) ~line_words:4
            ~per_pe_cycles:[| 100; 100 |]
        in
        (* issued lines = 30 + 16/4 vector + 2 dropped = 36 *)
        check_float "accuracy" (25. /. 36.) m.Metrics.prefetch_accuracy);
    case "accuracy clamps at 1.0 when consumption exceeds issue counts"
      (fun () ->
        let open Ccdp_machine.Stats in
        let s = create () in
        s.pf_on_time <- 10;
        s.pf_issued <- 2;
        let m = Metrics.of_stats s ~line_words:4 ~per_pe_cycles:[| 1 |] in
        check_float "clamped" 1.0 m.Metrics.prefetch_accuracy);
    case "traffic words: lines for fills/prefetches, words for the rest"
      (fun () ->
        let m =
          Metrics.of_stats (fixture ()) ~line_words:4
            ~per_pe_cycles:[| 100; 100 |]
        in
        (* 15 misses*4 + 30 prefetches*4 + 16 vector words
           + 3+4 uncached + 1 bypass + 20 writes *)
        check_int "traffic" 224 m.Metrics.traffic_words;
        let m8 =
          Metrics.of_stats (fixture ()) ~line_words:8
            ~per_pe_cycles:[| 100; 100 |]
        in
        check_int "wider lines move more" (224 + (45 * 4))
          m8.Metrics.traffic_words);
    case "remote ops per reference counts annex consultations" (fun () ->
        let m =
          Metrics.of_stats (fixture ()) ~line_words:4
            ~per_pe_cycles:[| 100; 100 |]
        in
        check_float "remote" (8. /. 120.) m.Metrics.remote_ops_per_ref);
    case "load balance is min over max busy cycles" (fun () ->
        let m =
          Metrics.of_stats (fixture ()) ~line_words:4
            ~per_pe_cycles:[| 50; 100; 75 |]
        in
        check_float "balance" 0.5 m.Metrics.load_balance;
        let idle =
          Metrics.of_stats (fixture ()) ~line_words:4 ~per_pe_cycles:[| 0; 0 |]
        in
        check_float "all idle counts as balanced" 1.0 idle.Metrics.load_balance);
    case "coherence msgs sum invalidations, upgrades and directory traffic"
      (fun () ->
        let s = fixture () in
        let open Ccdp_machine.Stats in
        s.invalidations <- 7;
        s.upgrades <- 3;
        s.dir_msgs <- 11;
        (* bus conflicts are queueing events, not messages *)
        s.bus_conflicts <- 100;
        let m =
          Metrics.of_stats s ~line_words:4 ~per_pe_cycles:[| 100; 100 |]
        in
        check_int "sum" 21 m.Metrics.coherence_msgs;
        let zero =
          Metrics.of_stats (fixture ()) ~line_words:4
            ~per_pe_cycles:[| 100; 100 |]
        in
        check_int "zero when the counters stay untouched" 0
          zero.Metrics.coherence_msgs);
    case "empty stats produce all-zero ratios" (fun () ->
        let m =
          Metrics.of_stats
            (Ccdp_machine.Stats.create ())
            ~line_words:4 ~per_pe_cycles:[| 0 |]
        in
        check_float "hit" 0.0 m.Metrics.hit_ratio;
        check_float "coverage" 0.0 m.Metrics.prefetch_coverage;
        check_int "traffic" 0 m.Metrics.traffic_words);
    case "of_result agrees with of_stats on a real run" (fun () ->
        let r = run Memsys.Ccdp (Extras.jacobi ~n:16 ~iters:1) in
        let direct = Metrics.of_result r in
        let via =
          Metrics.of_stats r.Interp.stats
            ~line_words:
              (Memsys.cfg r.Interp.sys).Ccdp_machine.Config.line_words
            ~per_pe_cycles:r.Interp.per_pe_cycles
        in
        check_true "identical" (direct = via));
  ]

let () =
  Alcotest.run "metrics" [ ("derived", tests); ("fixtures", fixture_tests) ]
