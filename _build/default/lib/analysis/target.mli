(** Prefetch target analysis — the paper's Figure 1, verbatim.

    Input: the set P of potentially-stale references. The algorithm (a)
    keeps only references located in innermost loops or serial code
    segments — a stale reference buried in a non-innermost position is not
    worth prefetching and is demoted to a bypass-cache read (Section 3's
    correctness fallback); (b) within each inner loop or serial code
    segment, detects group-spatial locality among uniformly generated
    references and eliminates the non-leading members from the prefetch set
    (they become normal reads covered by the leader's line). *)

(** One "LSC" of the paper: an inner loop or serial code segment holding
    prefetch targets. *)
type lsc = {
  epoch : int;
  inner : Ccdp_ir.Stmt.loop option;  (** [None]: serial code segment *)
  groups : Locality.group list;
}

type t = {
  classes : (int, Annot.cls) Hashtbl.t;  (** every read reference *)
  lscs : lsc list;
}

(** [innermost_only:false] keeps non-innermost stale references as targets
    (scheduled as serial-segment MBP) and [group_spatial:false] disables the
    covered-member elimination — both exist for the ablation studies.
    [prefetch_clean:true] implements the paper's stated future work
    (Section 6: "we should be able to obtain further performance
    improvement by prefetching the non-stale references as well"): clean
    innermost-loop reads of distributed shared arrays also enter the
    prefetch sets as ordinary latency-hiding prefetches. The paper's
    published algorithm is the default. *)
val analyze :
  ?innermost_only:bool ->
  ?group_spatial:bool ->
  ?prefetch_clean:bool ->
  Region.t -> Ccdp_machine.Config.t -> Ref_info.t list -> Stale.result -> t

val cls_of : t -> int -> Annot.cls
val pp : Format.formatter -> t -> unit
