lib/runtime/interp.mli: Ccdp_analysis Ccdp_ir Ccdp_machine Format Memsys
