lib/analysis/schedule.ml: Annot Array_decl Ccdp_ir Ccdp_machine Config Format Hashtbl Iterspace List Locality Printf Ref_info Reference Region Section Stmt String Target Volume
