test/test_parse_more.mli:
