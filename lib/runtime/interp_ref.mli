(** The reference interpreter: the pre-compiled-plan tree-walking engine,
    kept verbatim as the executable specification of the timed semantics.

    {!Interp.run} lowers the program once ({!Ccdp_analysis.Xplan}) and
    executes the compiled plan; this module still walks the IR directly,
    with string-keyed environments and a fresh register memo per iteration.
    The two must agree cycle-for-cycle: the engine differential tests run
    the fuzz corpus through both and assert identical cycles, stats,
    per-PE clocks, epoch profiles and final memory images, and
    [bench -- perf] reports the compiled engine's throughput relative to
    this one. Intentionally unoptimized — do not touch its hot path. *)

type result = {
  mode : Memsys.mode;
  cycles : int;
  stats : Ccdp_machine.Stats.t;
  per_pe_cycles : int array;
  epochs : int;
  epoch_profile : (int * int * int) list;
  sys : Memsys.t;
}

(** Same contract as {!Interp.run}. *)
val run :
  Ccdp_machine.Config.t ->
  ?oracle:bool ->
  ?sabotage:Memsys.sabotage ->
  Ccdp_ir.Program.t ->
  plan:Ccdp_analysis.Annot.plan ->
  mode:Memsys.mode ->
  ?init:(Memsys.t -> unit) ->
  unit ->
  result
