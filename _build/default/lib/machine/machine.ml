type t = { cfg : Config.t; pes : Pe.t array }

let create cfg =
  (match Config.validate cfg with
  | [] -> ()
  | problems ->
      invalid_arg ("Machine.create: bad config: " ^ String.concat "; " problems));
  { cfg; pes = Array.init cfg.Config.n_pes (Pe.create cfg) }

let pe t i = t.pes.(i)
let n_pes t = Array.length t.pes
let time t = Array.fold_left (fun acc (p : Pe.t) -> max acc p.clock) 0 t.pes

let barrier t =
  let target = time t + Config.barrier_cost t.cfg in
  Array.iter
    (fun (p : Pe.t) ->
      p.Pe.clock <- target;
      let unused = Prefetch_queue.clear p.Pe.queue in
      p.Pe.stats.Stats.pf_unused <- p.Pe.stats.Stats.pf_unused + unused;
      p.Pe.stats.Stats.barriers <- p.Pe.stats.Stats.barriers + 1)
    t.pes

let total_stats t =
  Array.fold_left
    (fun acc (p : Pe.t) -> Stats.merge acc p.Pe.stats)
    (Stats.create ()) t.pes

let reset t = Array.iter Pe.reset t.pes
