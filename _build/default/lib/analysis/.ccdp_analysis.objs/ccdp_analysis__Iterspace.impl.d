lib/analysis/iterspace.ml: Bound Ccdp_craft Ccdp_ir List Section Stmt
