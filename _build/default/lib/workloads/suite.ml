let spec_four ?(n = 64) ?(iters = 2) () =
  [
    Mxm.workload ~n;
    Vpenta.workload ~n;
    Tomcatv.workload ~n ~iters;
    Swim.workload ~n ~iters;
  ]

let all ?(n = 64) ?(iters = 2) () =
  spec_four ~n ~iters ()
  @ [
      Extras.jacobi ~n ~iters;
      Extras.dynamic ~n;
      Extras.opaque_sweep ~n;
      Extras.triad ~n;
      Extras.transpose ~n;
      Extras.gauss ~n;
    ]
