(** Group-spatial locality detection (paper Section 4.2).

    Uniformly generated references — same array, identical subscript
    coefficient vectors, differing only in constants — walk the address
    space in lockstep, separated by fixed word offsets. When those offsets
    fit within one cache line, prefetching only the {e leading} reference
    (the first one to touch each line in traversal order) brings the line
    for the whole group; the rest are issued as normal reads.

    Arrays are assumed line-aligned (the paper's compiler-option
    assumption). In loops, membership uses the paper's same-line mapping
    heuristic [|delta| < line_words] with the lead chosen by traversal
    direction; in straight-line code the test is exact same-line
    containment of constant addresses (or identical addresses), because no
    later iteration will fetch the next line. *)

type group = {
  lead : Ref_info.t;
  covered : Ref_info.t list;  (** non-leading members, syntactic order *)
  span_words : int;  (** max |offset(member) - offset(lead)| *)
  stride_words : int;  (** words the group advances per innermost iteration *)
}

(** Constant part of the linearized word offset of a reference (row-major),
    [None] when any subscript is non-affine in the available variables
    (never happens for affine IR, kept total for safety). *)
val word_offset : Ccdp_ir.Array_decl.t -> Ccdp_ir.Reference.t -> int

(** d(address)/d(var) in words: how far the reference moves per unit of the
    given variable. *)
val stride_wrt : Ccdp_ir.Array_decl.t -> Ccdp_ir.Reference.t -> var:string -> int

(** Partition references (all from the same loop/segment) into leading /
    covered groups. [inner_var] is the innermost loop variable with its
    step, [None] for straight-line segments. *)
val group :
  decl_of:(string -> Ccdp_ir.Array_decl.t) ->
  line_words:int ->
  inner_var:(string * int) option ->
  Ref_info.t list ->
  group list
