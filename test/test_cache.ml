open Ccdp_machine
open Ccdp_test_support.Tutil

let mk ?(sets = 8) ?(assoc = 1) ?(line_words = 4) () =
  Cache.create ~sets ~assoc ~line_words

let payload v = Array.make 4 v

let basic =
  [
    case "miss then hit after fill" (fun () ->
        let c = mk () in
        check_true "miss" (Cache.read c ~addr:12 = None);
        ignore (Cache.fill c ~line:3 (payload 7.0));
        check_true "hit" (Cache.read c ~addr:12 = Some 7.0);
        check_true "word select" (Cache.read c ~addr:15 = Some 7.0));
    case "fill evicts the conflicting line (direct-mapped)" (fun () ->
        let c = mk () in
        ignore (Cache.fill c ~line:1 (payload 1.0));
        let evicted = Cache.fill c ~line:9 (payload 2.0) in
        check_true "evicted line 1" (evicted = Some 1);
        check_true "old gone" (Cache.read c ~addr:4 = None);
        check_true "new present" (Cache.read c ~addr:36 = Some 2.0));
    case "refilling the same line reports no eviction" (fun () ->
        let c = mk () in
        ignore (Cache.fill c ~line:1 (payload 1.0));
        check_true "none" (Cache.fill c ~line:1 (payload 3.0) = None);
        check_true "updated" (Cache.read c ~addr:4 = Some 3.0));
    case "2-way associativity holds two conflicting lines" (fun () ->
        let c = mk ~sets:4 ~assoc:2 () in
        ignore (Cache.fill c ~line:0 (payload 1.0));
        ignore (Cache.fill c ~line:4 (payload 2.0));
        check_true "both" (Cache.read c ~addr:0 = Some 1.0 && Cache.read c ~addr:16 = Some 2.0));
    case "LRU victim selection in a 2-way set" (fun () ->
        let c = mk ~sets:4 ~assoc:2 () in
        ignore (Cache.fill c ~line:0 (payload 1.0));
        ignore (Cache.fill c ~line:4 (payload 2.0));
        ignore (Cache.read c ~addr:0);
        (* line 0 is now most recent; filling line 8 must evict line 4 *)
        check_true "evicts 4" (Cache.fill c ~line:8 (payload 3.0) = Some 4);
        check_true "line 0 kept" (Cache.read c ~addr:0 = Some 1.0));
    case "update_if_present patches only resident lines" (fun () ->
        let c = mk () in
        Cache.update_if_present c ~addr:0 9.0;
        check_true "still miss" (Cache.read c ~addr:0 = None);
        ignore (Cache.fill c ~line:0 (payload 1.0));
        Cache.update_if_present c ~addr:2 9.0;
        check_true "patched" (Cache.read c ~addr:2 = Some 9.0);
        check_true "neighbours kept" (Cache.read c ~addr:1 = Some 1.0));
    case "invalidate_line removes exactly one line" (fun () ->
        let c = mk () in
        ignore (Cache.fill c ~line:0 (payload 1.0));
        ignore (Cache.fill c ~line:1 (payload 2.0));
        Cache.invalidate_line c ~line:0;
        check_true "gone" (Cache.read c ~addr:0 = None);
        check_true "kept" (Cache.read c ~addr:4 = Some 2.0);
        check_int "valid" 1 (Cache.valid_lines c));
    case "invalidate_all clears everything" (fun () ->
        let c = mk () in
        ignore (Cache.fill c ~line:0 (payload 1.0));
        ignore (Cache.fill c ~line:1 (payload 2.0));
        Cache.invalidate_all c;
        check_int "valid" 0 (Cache.valid_lines c));
    case "peek does not disturb recency" (fun () ->
        let c = mk ~sets:4 ~assoc:2 () in
        ignore (Cache.fill c ~line:0 (payload 1.0));
        ignore (Cache.fill c ~line:4 (payload 2.0));
        ignore (Cache.peek c ~addr:0);
        (* peek must NOT have promoted line 0: LRU is still line 0 *)
        check_true "evicts 0" (Cache.fill c ~line:8 (payload 3.0) = Some 0));
    case "of_config matches the machine geometry" (fun () ->
        let cfg = Config.t3d ~n_pes:1 in
        let c = Cache.of_config cfg in
        check_int "line words" cfg.Config.line_words (Cache.line_words c));
  ]

let props =
  [
    qcheck "a filled line always hits until evicted or invalidated"
      QCheck.(int_range 0 100)
      (fun line ->
        let c = mk () in
        ignore (Cache.fill c ~line (payload (float_of_int line)));
        Cache.read c ~addr:(line * 4) = Some (float_of_int line));
    qcheck "valid_lines never exceeds capacity"
      QCheck.(list_of_size (QCheck.Gen.int_range 0 50) (int_range 0 100))
      (fun lines ->
        let c = mk () in
        List.iter (fun l -> ignore (Cache.fill c ~line:l (payload 0.0))) lines;
        Cache.valid_lines c <= 8);
  ]

(* Model-based replacement-policy properties: a naive association-list
   cache (front of each set = most recently used) must agree with the
   real one on every hit, every eviction tag, slot reuse on refill, and
   final occupancy — for fill and for the blit-based fill_from alike. *)

let model_sets = 4
let model_assoc = 2

(* replay [ops] on the model; returns (eviction tags, read results,
   resident-line count), in op order *)
let run_model ops =
  let sets = Array.make model_sets [] in
  let evs = ref [] and rds = ref [] in
  List.iter
    (fun (is_fill, line) ->
      let s = line mod model_sets in
      let cur = sets.(s) in
      if is_fill then
        if List.mem_assoc line cur then begin
          (* resident: slot reuse — promote, never evict *)
          sets.(s) <- (line, float_of_int line) :: List.remove_assoc line cur;
          evs := None :: !evs
        end
        else if List.length cur < model_assoc then begin
          sets.(s) <- (line, float_of_int line) :: cur;
          evs := None :: !evs
        end
        else begin
          let victim, _ = List.nth cur (List.length cur - 1) in
          sets.(s) <-
            (line, float_of_int line)
            :: List.filter (fun (l, _) -> l <> victim) cur;
          evs := Some victim :: !evs
        end
      else
        match List.assoc_opt line cur with
        | Some v ->
            sets.(s) <- (line, v) :: List.remove_assoc line cur;
            rds := Some v :: !rds
        | None -> rds := None :: !rds)
    ops;
  ( List.rev !evs,
    List.rev !rds,
    Array.fold_left (fun n l -> n + List.length l) 0 sets )

let ops_arb =
  QCheck.(
    list_of_size (QCheck.Gen.int_range 0 60) (pair bool (int_range 0 11)))

let fill_props =
  [
    qcheck "fill agrees with a naive LRU model (hits, evictions, occupancy)"
      ops_arb
      (fun ops ->
        let c = mk ~sets:model_sets ~assoc:model_assoc () in
        let m_evs, m_rds, m_n = run_model ops in
        let evs = ref [] and rds = ref [] in
        List.iter
          (fun (is_fill, line) ->
            if is_fill then
              evs := Cache.fill c ~line (payload (float_of_int line)) :: !evs
            else rds := Cache.read c ~addr:(line * 4) :: !rds)
          ops;
        List.rev !evs = m_evs && List.rev !rds = m_rds
        && Cache.valid_lines c = m_n);
    qcheck "fill_from follows the same policy; locate/data_at match read"
      ops_arb
      (fun ops ->
        let c = mk ~sets:model_sets ~assoc:model_assoc () in
        let c' = mk ~sets:model_sets ~assoc:model_assoc () in
        (* simulated memory: every word of line l holds float l *)
        let mem = Array.init (12 * 4) (fun i -> float_of_int (i / 4)) in
        List.for_all
          (fun (is_fill, line) ->
            if is_fill then begin
              ignore (Cache.fill c ~line (payload (float_of_int line)));
              Cache.fill_from c' ~vers:[||] ~line ~src:mem ~pos:(line * 4) ();
              true
            end
            else begin
              let addr = (line * 4) + (line mod 4) in
              let r = Cache.read c ~addr in
              let off = Cache.locate c' ~addr in
              let r' = if off < 0 then None else Some (Cache.data_at c' off) in
              r = r'
            end)
          ops
        && Cache.valid_lines c = Cache.valid_lines c');
  ]

let () =
  Alcotest.run "cache"
    [ ("behaviour", basic); ("properties", props); ("fill properties", fill_props) ]
