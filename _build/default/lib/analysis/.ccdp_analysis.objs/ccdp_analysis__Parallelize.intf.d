lib/analysis/parallelize.mli: Ccdp_ir Format
