test/test_iterspace.ml: Affine Alcotest Bound Ccdp_analysis Ccdp_ir Ccdp_test_support Iterspace List Stmt
