(** Global word-address layout.

    Every PE's local memory is a contiguous window of the global address
    space ([pe * pe_span .. (pe+1) * pe_span)), mirroring the T3D's
    PE-number/local-offset physical addressing. Each array gets a
    line-aligned base inside the window; a distributed element lives in its
    owner's window, a replicated (or private) element in every window. *)

type t

(** [cache_lines] enables allocation coloring: the k-th array's base is
    padded up to cache-set position [(k mod 16) * cache_lines/16], so equal
    elements of different arrays never share a direct-mapped set (for up to
    16 arrays and columns up to [cache_lines/16] lines). Without it,
    equal-sized arrays land on cache-size-aligned bases and thrash — the
    pathology real SPEC codes avoid by padding their COMMON blocks. 0
    disables coloring. *)
val make :
  Ccdp_ir.Program.t -> n_pes:int -> line_words:int -> ?cache_lines:int -> unit -> t

val n_pes : t -> int
val pe_span : t -> int

(** Total words of the global space ([n_pes * pe_span]). *)
val total_words : t -> int

val layout : t -> string -> Ccdp_craft.Layout.t

(** Address of an element and its location relative to the accessing PE.
    Replicated/private arrays resolve to the accessing PE's own copy. *)
val resolve :
  t -> pe:int -> string -> int array -> int * [ `Local | `Remote of int ]

(** {1 Pre-resolved handles (hot path)}

    A handle captures one array's layout and base so the per-access path is
    pure arithmetic: no string hashing, no tuple or variant allocation. *)

type handle

val handle : t -> string -> handle

(** Address of an element as seen from [pe] — same address [resolve]
    computes, without the target component. *)
val resolve_h : handle -> pe:int -> int array -> int

(** Target encoding recovered from an address produced by [resolve_h] on the
    same [pe]: [-1] when the access is to the PE's own window (the [`Local]
    cases of [resolve]), else the owning PE id ([`Remote owner]). *)
val target_of : handle -> pe:int -> addr:int -> int

(** Addresses of an element in {e every} copy (one for distributed arrays,
    [n_pes] for replicated ones) — used by initialization. *)
val all_copies : t -> string -> int array -> int list

(** Owner-copy address (PE-0 copy for replicated arrays) — used to read
    results back. *)
val canonical : t -> string -> int array -> int
