(* Network-geometry properties of the interconnect layer. [Net.hops] must
   be a metric on every topology — symmetry, identity of indiscernibles
   and the triangle inequality — and bounded by [Net.diameter]; the cost
   matrix folded at create time must agree with hop-by-hop recomputation.
   Each geometry gets a pinned hop oracle (the torus one against the
   per-dimension minimal ring distance on known factorizations), the
   link-occupancy accounting is unit-tested directly, and the
   coherence-cluster axis (cluster_of / same_cluster / free intra-island
   transfers / per-island buses) has its own suite. *)

open Ccdp_machine
open Ccdp_test_support.Tutil

let machine_arb =
  QCheck.make
    ~print:(fun (kind, n_pes) ->
      Printf.sprintf "%s at %d PEs" (Net.kind_name kind) n_pes)
    QCheck.Gen.(
      pair (oneofl Net.all_kinds)
        (oneofl [ 1; 2; 3; 4; 5; 7; 8; 12; 16; 27; 32; 64 ]))

let metric_suite =
  [
    qcheck ~count:200 "hops is zero exactly on the diagonal" machine_arb
      (fun (kind, n_pes) ->
        let net = Net.create kind ~n_pes in
        let ok = ref true in
        for a = 0 to n_pes - 1 do
          for b = 0 to n_pes - 1 do
            let h = Net.hops net a b in
            if a = b then ok := !ok && h = 0
            else ok := !ok && (h > 0 || kind = Net.Uniform)
          done
        done;
        !ok);
    qcheck ~count:200 "hops is symmetric" machine_arb (fun (kind, n_pes) ->
        let net = Net.create kind ~n_pes in
        let ok = ref true in
        for a = 0 to n_pes - 1 do
          for b = 0 to n_pes - 1 do
            ok := !ok && Net.hops net a b = Net.hops net b a
          done
        done;
        !ok);
    qcheck ~count:100 "hops satisfies the triangle inequality" machine_arb
      (fun (kind, n_pes) ->
        let net = Net.create kind ~n_pes in
        let ok = ref true in
        for a = 0 to n_pes - 1 do
          for b = 0 to n_pes - 1 do
            for c = 0 to n_pes - 1 do
              ok :=
                !ok && Net.hops net a c <= Net.hops net a b + Net.hops net b c
            done
          done
        done;
        !ok);
    qcheck ~count:200 "no pair exceeds the diameter" machine_arb
      (fun (kind, n_pes) ->
        (* padded factorizations (e.g. 5 PEs on a 3x2 grid) may leave the
           far corner unpopulated, so the bound need not be attained *)
        let net = Net.create kind ~n_pes in
        let worst = ref 0 in
        for a = 0 to n_pes - 1 do
          for b = 0 to n_pes - 1 do
            worst := max !worst (Net.hops net a b)
          done
        done;
        ignore kind;
        !worst <= Net.diameter net);
    qcheck ~count:200 "the folded cost matrix is hop * hops" machine_arb
      (fun (kind, n_pes) ->
        let hop = 7 in
        let net = Net.create ~hop kind ~n_pes in
        let ok = ref true in
        for src = 0 to n_pes - 1 do
          for dst = 0 to n_pes - 1 do
            ok := !ok && Net.cost net ~src ~dst = hop * Net.hops net src dst
          done
        done;
        !ok);
    qcheck ~count:200 "zero per-hop cost means zero cost everywhere"
      machine_arb
      (fun (kind, n_pes) ->
        let net = Net.create kind ~n_pes in
        let ok = ref true in
        for src = 0 to n_pes - 1 do
          for dst = 0 to n_pes - 1 do
            ok := !ok && Net.cost net ~src ~dst = 0
          done
        done;
        !ok);
  ]

(* brute-force hop oracle for the mesh: the 2-D analogue of the Torus
   oracle in test_torus.ml — Manhattan distance on the factored grid,
   no wraparound *)
let mesh_oracle =
  [
    case "mesh hops match Manhattan distance on every tested width"
      (fun () ->
        List.iter
          (fun n_pes ->
            let net = Net.create Net.Mesh2d ~n_pes in
            (* recover the grid from distances: nx = 1 + max pe with
               hops 0 pe = pe (a pure x-walk along row 0) *)
            let nx = ref 1 in
            while
              !nx < n_pes && Net.hops net 0 !nx = !nx
            do
              incr nx
            done;
            let nx = !nx in
            for a = 0 to n_pes - 1 do
              for b = 0 to n_pes - 1 do
                let expect =
                  abs ((a mod nx) - (b mod nx)) + abs ((a / nx) - (b / nx))
                in
                check_int
                  (Printf.sprintf "mesh %d: %d->%d" n_pes a b)
                  expect (Net.hops net a b)
              done
            done)
          [ 2; 4; 6; 8; 12; 16; 20; 64 ]);
    case "16 PEs factor into a 4x4 mesh with diameter 6" (fun () ->
        let net = Net.create Net.Mesh2d ~n_pes:16 in
        check_int "diameter" 6 (Net.diameter net);
        (* corner to corner: PE 0 to PE 15 *)
        check_int "corners" 6 (Net.hops net 0 15));
    case "mesh has no wraparound: edge PEs are far apart" (fun () ->
        (* on a 4x4 mesh PEs 0 and 3 sit on opposite x-edges: 3 hops,
           where the torus wrap would make it 1 *)
        let net = Net.create Net.Mesh2d ~n_pes:16 in
        check_int "no wrap" 3 (Net.hops net 0 3));
  ]

(* brute-force torus oracle: hop distance equals the sum of per-dimension
   minimal ring distances on the pinned near-cubic factorizations of the
   power-of-two widths (PE numbering is x-fastest), plus the wraparound
   and diameter facts the deleted standalone torus module used to pin *)
let torus_oracle =
  let ring d a b =
    if d = 0 then 0
    else
      let fwd = (((a - b) mod d) + d) mod d in
      min fwd (d - fwd)
  in
  [
    case "torus hops equal the sum of minimal ring distances" (fun () ->
        List.iter
          (fun (n, (nx, ny, nz)) ->
            let net = Net.create Net.Torus3d ~n_pes:n in
            for a = 0 to n - 1 do
              for b = 0 to n - 1 do
                let coords pe =
                  (pe mod nx, pe / nx mod ny, pe / (nx * ny))
                in
                let xa, ya, za = coords a and xb, yb, zb = coords b in
                check_int
                  (Printf.sprintf "torus %d: %d->%d" n a b)
                  (ring nx xa xb + ring ny ya yb + ring nz za zb)
                  (Net.hops net a b)
              done
            done;
            ignore nz)
          [
            (2, (2, 1, 1)); (4, (2, 2, 1)); (8, (2, 2, 2)); (16, (4, 2, 2));
            (32, (4, 4, 2)); (64, (4, 4, 4)); (27, (3, 3, 3));
          ]);
    case "wraparound shortens long paths" (fun () ->
        (* x-neighbours at opposite edges of the 4x4x4 cube: 0 and 3 are
           one hop via the wraparound link (3 on a mesh) *)
        let net = Net.create Net.Torus3d ~n_pes:64 in
        check_int "wrap" 1 (Net.hops net 0 3));
    case "4x4x4 diameter is 6, 2x2x2 diameter is 3" (fun () ->
        check_int "4x4x4" 6 (Net.diameter (Net.create Net.Torus3d ~n_pes:64));
        check_int "2x2x2" 3 (Net.diameter (Net.create Net.Torus3d ~n_pes:8)));
    case "diameter is attained on exactly-factoring widths" (fun () ->
        List.iter
          (fun n ->
            let net = Net.create Net.Torus3d ~n_pes:n in
            let best = ref 0 in
            for a = 0 to n - 1 do
              for b = 0 to n - 1 do
                best := max !best (Net.hops net a b)
              done
            done;
            check_int (Printf.sprintf "diameter %d" n) (Net.diameter net) !best)
          [ 8; 27; 64 ]);
    case "remote reads cost more to farther owners" (fun () ->
        (* end-to-end through Memsys: with the torus distance model a
           BASE-mode miss to a far-away owner takes longer than one to a
           neighbour *)
        let open Ccdp_ir in
        let module B = Builder in
        let b = B.create ~name:"t" () in
        B.array_ b "A" [| 8; 8 |] ~dist:(Dist.block_along ~rank:2 ~dim:1);
        let p =
          B.finish b
            [
              Stmt.Assign
                (B.ref_ b "A" [ B.A.c 0; B.A.c 0 ], Builder.F.const 0.0);
            ]
        in
        let cfg = Config.t3d_torus ~n_pes:8 in
        let sys =
          Ccdp_runtime.Memsys.create cfg p
            ~plan:(Ccdp_analysis.Annot.empty ())
            Ccdp_runtime.Memsys.Base
        in
        let net = Net.create Net.Torus3d ~n_pes:8 in
        let r id =
          Reference.make ~id "A" [| Affine.var "i"; Affine.var "j" |]
        in
        (* column j is owned by PE j on 8 PEs with 8 columns *)
        let cost owner =
          let t0 = Ccdp_runtime.Memsys.clock sys ~pe:0 in
          ignore
            (Ccdp_runtime.Memsys.read sys ~pe:0 (r owner) ~idx:[| 0; owner |]);
          Ccdp_runtime.Memsys.clock sys ~pe:0 - t0
        in
        let near = ref 1 and far = ref 1 in
        for pe = 1 to 7 do
          if Net.hops net 0 pe < Net.hops net 0 !near then near := pe;
          if Net.hops net 0 pe > Net.hops net 0 !far then far := pe
        done;
        let c_near = cost !near in
        let c_far = cost !far in
        check_true "distance visible" (c_far > c_near));
  ]

let crossbar_oracle =
  [
    case "crossbar is one hop between any two distinct PEs" (fun () ->
        let net = Net.create Net.Crossbar ~n_pes:16 in
        for a = 0 to 15 do
          for b = 0 to 15 do
            check_int
              (Printf.sprintf "xbar %d->%d" a b)
              (if a = b then 0 else 1)
              (Net.hops net a b)
          done
        done;
        check_int "diameter" 1 (Net.diameter net));
    case "single-PE crossbar has diameter zero" (fun () ->
        check_int "diameter" 0 (Net.diameter (Net.create Net.Crossbar ~n_pes:1)));
  ]

let contention =
  [
    case "an idle link adds no delay" (fun () ->
        let net = Net.create Net.Crossbar ~n_pes:4 in
        let delay, depth = Net.acquire net ~dst:1 ~now:100 ~hold:8 in
        check_int "delay" 0 delay;
        check_int "depth" 1 depth);
    case "a busy link queues and deepens" (fun () ->
        let net = Net.create Net.Crossbar ~n_pes:4 in
        ignore (Net.acquire net ~dst:1 ~now:100 ~hold:8);
        let d2, q2 = Net.acquire net ~dst:1 ~now:102 ~hold:8 in
        check_int "second waits for the first" 6 d2;
        check_int "second is depth 2" 2 q2;
        let d3, q3 = Net.acquire net ~dst:1 ~now:103 ~hold:8 in
        check_int "third waits for both" 13 d3;
        check_int "third is depth 3" 3 q3);
    case "distinct links do not contend" (fun () ->
        let net = Net.create Net.Crossbar ~n_pes:4 in
        ignore (Net.acquire net ~dst:1 ~now:100 ~hold:8);
        let delay, depth = Net.acquire net ~dst:2 ~now:100 ~hold:8 in
        check_int "delay" 0 delay;
        check_int "depth" 1 depth);
    case "a drained link starts a fresh burst" (fun () ->
        let net = Net.create Net.Crossbar ~n_pes:4 in
        ignore (Net.acquire net ~dst:1 ~now:0 ~hold:8);
        ignore (Net.acquire net ~dst:1 ~now:1 ~hold:8);
        let delay, depth = Net.acquire net ~dst:1 ~now:50 ~hold:8 in
        check_int "delay" 0 delay;
        check_int "depth resets" 1 depth);
    case "reset_links forgets all bookings" (fun () ->
        let net = Net.create Net.Crossbar ~n_pes:4 in
        ignore (Net.acquire net ~dst:1 ~now:0 ~hold:100);
        Net.reset_links net;
        let delay, depth = Net.acquire net ~dst:1 ~now:0 ~hold:8 in
        check_int "delay" 0 delay;
        check_int "depth" 1 depth);
  ]

(* the coherence-cluster axis: consecutive-PE islands, free intra-island
   transfers, independent per-island snoop buses *)
let clusters =
  let raises_invalid f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  [
    case "cluster_of partitions consecutive PEs" (fun () ->
        let net = Net.create ~cluster_pes:4 Net.Crossbar ~n_pes:16 in
        check_int "width" 4 (Net.cluster_pes net);
        check_int "count" 4 (Net.n_clusters net);
        for pe = 0 to 15 do
          check_int (Printf.sprintf "cluster of %d" pe) (pe / 4)
            (Net.cluster_of net pe)
        done;
        for a = 0 to 15 do
          for b = 0 to 15 do
            check_true
              (Printf.sprintf "same %d %d" a b)
              (Net.same_cluster net a b = (a / 4 = b / 4))
          done
        done);
    case "a flat machine is all singleton clusters" (fun () ->
        let net = Net.create Net.Torus3d ~n_pes:8 in
        check_int "width" 1 (Net.cluster_pes net);
        check_int "count" 8 (Net.n_clusters net);
        check_true "only the diagonal" (not (Net.same_cluster net 0 1));
        check_true "self" (Net.same_cluster net 5 5));
    case "intra-island transfers are free, cross-island charge hops"
      (fun () ->
        let hop = 7 in
        let net = Net.create ~hop ~cluster_pes:4 Net.Mesh2d ~n_pes:16 in
        for src = 0 to 15 do
          for dst = 0 to 15 do
            let expect =
              if Net.same_cluster net src dst then 0
              else hop * Net.hops net src dst
            in
            check_int
              (Printf.sprintf "cost %d->%d" src dst)
              expect
              (Net.cost net ~src ~dst)
          done
        done);
    case "create rejects ragged or non-positive cluster widths" (fun () ->
        check_true "non-dividing"
          (raises_invalid (fun () ->
               Net.create ~cluster_pes:3 Net.Crossbar ~n_pes:16));
        check_true "zero"
          (raises_invalid (fun () ->
               Net.create ~cluster_pes:0 Net.Crossbar ~n_pes:16));
        check_true "negative"
          (raises_invalid (fun () ->
               Net.create ~cluster_pes:(-2) Net.Crossbar ~n_pes:16)));
    case "island buses book independently and reset together" (fun () ->
        let net = Net.create ~cluster_pes:4 Net.Crossbar ~n_pes:8 in
        ignore (Net.acquire_cluster_bus net ~cluster:0 ~now:0 ~since:0 ~hold:10);
        let d0, _ =
          Net.acquire_cluster_bus net ~cluster:0 ~now:2 ~since:0 ~hold:10
        in
        check_true "own island pays backlog" (d0 > 0);
        let d1, q1 =
          Net.acquire_cluster_bus net ~cluster:1 ~now:2 ~since:0 ~hold:10
        in
        check_int "other island idle" 0 d1;
        check_int "other island depth" 1 q1;
        Net.reset_links net;
        let d0', _ =
          Net.acquire_cluster_bus net ~cluster:0 ~now:0 ~since:0 ~hold:10
        in
        check_int "barrier drains the island bus" 0 d0');
  ]

(* the presets derived from the interconnect kinds stay mutually
   consistent with the uniform T3D machine *)
let presets =
  [
    case "t3d_torus rebalances off the uniform preset's remote latency"
      (fun () ->
        let base = Config.t3d ~n_pes:64 in
        let cfg = Config.t3d_torus ~n_pes:64 in
        let net = Net.create Net.Torus3d ~n_pes:64 in
        let avg = max 1 ((Net.diameter net + 1) / 2) in
        check_int "remote"
          (max base.Config.local (base.Config.remote - (cfg.Config.hop * avg)))
          cfg.Config.remote);
    case "every t3d interconnect preset validates" (fun () ->
        List.iter
          (fun (name, preset) ->
            let cfg = preset ~n_pes:16 in
            check_true (name ^ " valid") (Config.validate cfg = []))
          Config.presets);
    case "preset_of_string resolves names and kind aliases" (fun () ->
        List.iter
          (fun (name, kind) ->
            match Config.preset_of_string name with
            | None -> Alcotest.failf "%s did not resolve" name
            | Some p -> check_true name ((p ~n_pes:8).Config.net = kind))
          [
            ("t3d", Net.Uniform);
            ("T3D-Torus", Net.Torus3d);
            ("mesh", Net.Mesh2d);
            ("crossbar", Net.Crossbar);
            ("xbar", Net.Crossbar);
            ("uniform", Net.Uniform);
          ];
        check_true "unknown rejected" (Config.preset_of_string "pdp11" = None));
    case "only the crossbar preset enables contention by default" (fun () ->
        List.iter
          (fun (name, preset) ->
            let cfg = preset ~n_pes:16 in
            check_true name
              (cfg.Config.link_occ > 0
              = (cfg.Config.net = Net.Crossbar)))
          Config.presets);
    case "validate rejects non-positive and ragged cluster widths" (fun () ->
        let base = Config.t3d ~n_pes:16 in
        let has msg cfg = List.mem msg (Config.validate cfg) in
        check_true "zero"
          (has "cluster_pes must be positive"
             { base with Config.cluster_pes = 0 });
        check_true "negative"
          (has "cluster_pes must be positive"
             { base with Config.cluster_pes = -4 });
        check_true "non-dividing"
          (has "cluster_pes must divide n_pes"
             { base with Config.cluster_pes = 3 });
        check_true "dividing ok"
          (Config.validate { base with Config.cluster_pes = 4 } = []));
    case "every named preset round-trips through preset_of_string" (fun () ->
        List.iter
          (fun name ->
            match Config.preset_of_string name with
            | None -> Alcotest.failf "%s did not resolve" name
            | Some p ->
                List.iter
                  (fun n_pes ->
                    let cfg = p ~n_pes in
                    check_true
                      (Printf.sprintf "%s at %d validates" name n_pes)
                      (Config.validate cfg = []);
                    check_int
                      (Printf.sprintf "%s at %d keeps its width" name n_pes)
                      n_pes cfg.Config.n_pes)
                  [ 1; 2; 16; 64 ])
          Config.preset_names);
    case "cxl presets preserve their island count at the nominal width"
      (fun () ->
        List.iter
          (fun (name, islands) ->
            match Config.preset_of_string name with
            | None -> Alcotest.failf "%s did not resolve" name
            | Some p ->
                let cfg = p ~n_pes:64 in
                check_int (name ^ " island width") (64 / islands)
                  cfg.Config.cluster_pes)
          [ ("cxl-2x32", 2); ("cxl-4x16", 4); ("cxl-8x8", 8) ]);
    case "cxl presets degrade to flat when the width does not divide"
      (fun () ->
        let cfg = Config.cxl_4x16 ~n_pes:6 in
        check_int "flat fallback" 1 cfg.Config.cluster_pes;
        check_true "still valid" (Config.validate cfg = []));
  ]

let () =
  Alcotest.run "net"
    [
      ("metric", metric_suite);
      ("torus oracle", torus_oracle);
      ("mesh oracle", mesh_oracle);
      ("crossbar oracle", crossbar_oracle);
      ("contention", contention);
      ("clusters", clusters);
      ("presets", presets);
    ]
