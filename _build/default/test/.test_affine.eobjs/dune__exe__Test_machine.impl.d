test/test_machine.ml: Alcotest Array Ccdp_machine Ccdp_test_support Config Dtb_annex List Machine Pe Prefetch_queue Stats
