open Ccdp_ir
open Ccdp_craft
open Ccdp_test_support.Tutil

let iters_of sched ~n_pes ~pe ~lo ~hi ~step =
  match Loop_sched.triplet_of_pe sched ~n_pes ~pe ~lo ~hi ~step with
  | None -> []
  | Some (f, l, s) ->
      let rec go x acc = if x > l then List.rev acc else go (x + s) (x :: acc) in
      go f []

let all_iters ~lo ~hi ~step =
  let rec go x acc = if x > hi then List.rev acc else go (x + step) (x :: acc) in
  go lo []

let partition_exact sched ~n_pes ~lo ~hi ~step =
  let per_pe = List.init n_pes (fun pe -> iters_of sched ~n_pes ~pe ~lo ~hi ~step) in
  let combined = List.sort compare (List.concat per_pe) in
  combined = List.sort compare (all_iters ~lo ~hi ~step)

let static_tests =
  [
    case "block splits 0..7 over 4 PEs in pairs" (fun () ->
        Alcotest.(check (list int)) "pe1" [ 2; 3 ]
          (iters_of Stmt.Static_block ~n_pes:4 ~pe:1 ~lo:0 ~hi:7 ~step:1));
    case "cyclic deals iterations round-robin" (fun () ->
        Alcotest.(check (list int)) "pe1" [ 1; 5 ]
          (iters_of Stmt.Static_cyclic ~n_pes:4 ~pe:1 ~lo:0 ~hi:7 ~step:1));
    case "aligned window matches data blocks even on sub-ranges" (fun () ->
        (* extent 8 over 4 PEs: windows 0-1, 2-3, 4-5, 6-7; loop 1..6 *)
        Alcotest.(check (list int)) "pe0" [ 1 ]
          (iters_of (Stmt.Static_aligned 8) ~n_pes:4 ~pe:0 ~lo:1 ~hi:6 ~step:1);
        Alcotest.(check (list int)) "pe3" [ 6 ]
          (iters_of (Stmt.Static_aligned 8) ~n_pes:4 ~pe:3 ~lo:1 ~hi:6 ~step:1);
        Alcotest.(check (list int)) "pe1" [ 2; 3 ]
          (iters_of (Stmt.Static_aligned 8) ~n_pes:4 ~pe:1 ~lo:1 ~hi:6 ~step:1));
    case "more PEs than iterations leaves some idle" (fun () ->
        check_true "pe7 idle"
          (Loop_sched.triplet_of_pe Stmt.Static_block ~n_pes:8 ~pe:7 ~lo:0 ~hi:3 ~step:1
           = None));
    case "dynamic has no static assignment" (fun () ->
        check_true "none"
          (Loop_sched.triplet_of_pe (Stmt.Dynamic 2) ~n_pes:4 ~pe:0 ~lo:0 ~hi:7 ~step:1
           = None);
        check_false "not static" (Loop_sched.is_static (Stmt.Dynamic 2)));
    case "strided loops respect the step" (fun () ->
        Alcotest.(check (list int)) "pe0 of 0..12 step 4" [ 0; 4 ]
          (iters_of Stmt.Static_block ~n_pes:2 ~pe:0 ~lo:0 ~hi:12 ~step:4));
  ]

let dynamic_tests =
  [
    case "dynamic_chunks covers the range in order" (fun () ->
        let chunks = Loop_sched.dynamic_chunks ~chunk:3 ~lo:0 ~hi:7 ~step:1 in
        Alcotest.(check int) "3 chunks" 3 (List.length chunks);
        match chunks with
        | [ (0, 2, 1); (3, 5, 1); (6, 7, 1) ] -> ()
        | _ -> Alcotest.fail "chunk shape");
    case "dynamic_chunks rejects chunk <= 0" (fun () ->
        check_true "raises"
          (try ignore (Loop_sched.dynamic_chunks ~chunk:0 ~lo:0 ~hi:3 ~step:1); false
           with Invalid_argument _ -> true));
    case "trip_count" (fun () ->
        check_int "simple" 8 (Loop_sched.trip_count ~lo:0 ~hi:7 ~step:1);
        check_int "strided" 3 (Loop_sched.trip_count ~lo:0 ~hi:8 ~step:4);
        check_int "empty" 0 (Loop_sched.trip_count ~lo:5 ~hi:4 ~step:1));
  ]

let pe_of_iter_tests =
  [
    case "pe_of_iter agrees with triplets (block)" (fun () ->
        for i = 0 to 7 do
          match Loop_sched.pe_of_iter Stmt.Static_block ~n_pes:4 ~lo:0 ~hi:7 ~step:1 i with
          | Some pe ->
              check_true "member" (List.mem i (iters_of Stmt.Static_block ~n_pes:4 ~pe ~lo:0 ~hi:7 ~step:1))
          | None -> Alcotest.fail "expected assignment"
        done);
    case "pe_of_iter rejects off-stride values" (fun () ->
        check_true "none"
          (Loop_sched.pe_of_iter Stmt.Static_block ~n_pes:2 ~lo:0 ~hi:8 ~step:2 3 = None));
  ]

let props =
  let gen =
    QCheck.(quad (int_range 1 8) (int_range 0 4) (int_range 0 20) (int_range 1 3))
  in
  [
    qcheck "block partitions exactly" gen (fun (p, lo, len, step) ->
        partition_exact Stmt.Static_block ~n_pes:p ~lo ~hi:(lo + len) ~step);
    qcheck "cyclic partitions exactly" gen (fun (p, lo, len, step) ->
        partition_exact Stmt.Static_cyclic ~n_pes:p ~lo ~hi:(lo + len) ~step);
    qcheck "aligned partitions exactly when extent covers the range" gen
      (fun (p, lo, len, step) ->
        partition_exact (Stmt.Static_aligned (lo + len + 1)) ~n_pes:p ~lo ~hi:(lo + len) ~step);
    qcheck "dynamic chunks partition exactly"
      QCheck.(quad (int_range 1 5) (int_range 0 4) (int_range 0 20) (int_range 1 3))
      (fun (chunk, lo, len, step) ->
        let hi = lo + len in
        let all = List.concat_map (fun (f, l, s) ->
            let rec go x acc = if x > l then List.rev acc else go (x + s) (x :: acc) in
            go f [])
            (Loop_sched.dynamic_chunks ~chunk ~lo ~hi ~step)
        in
        all = all_iters ~lo ~hi ~step);
  ]

let () =
  Alcotest.run "loop-sched"
    [
      ("static", static_tests);
      ("dynamic", dynamic_tests);
      ("pe-of-iter", pe_of_iter_tests);
      ("properties", props);
    ]
