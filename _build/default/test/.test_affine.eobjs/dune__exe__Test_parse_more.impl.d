test/test_parse_more.ml: Alcotest Array_decl Ccdp_analysis Ccdp_core Ccdp_ir Ccdp_machine Ccdp_runtime Ccdp_test_support Ccdp_workloads Craft_parse Dist List Program Sys
