type t = { id : int; array_name : string; subs : Affine.t array; loc : Loc.t }

let make ~id ?(loc = Loc.Synthetic) array_name subs =
  { id; array_name; subs; loc }

let subst_env r env =
  { r with subs = Array.map (fun e -> Affine.subst_env e env) r.subs }

let with_id r id = { r with id }

let uniformly_generated a b =
  String.equal a.array_name b.array_name
  && Array.length a.subs = Array.length b.subs
  && (let ok = ref true in
      Array.iteri
        (fun i e -> if not (Affine.uniformly_generated e b.subs.(i)) then ok := false)
        a.subs;
      !ok)

let offset_vector a b =
  if not (uniformly_generated a b) then None
  else
    Some (Array.mapi (fun i e -> Affine.const_part b.subs.(i) - Affine.const_part e) a.subs)

let equal a b = a.id = b.id

let pp ppf r =
  Format.fprintf ppf "%s(%a)#%d" r.array_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Affine.pp)
    (Array.to_list r.subs) r.id

let to_string r = Format.asprintf "%a" pp r
