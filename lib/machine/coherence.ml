(* Hardware-coherence bookkeeping shared by the snooping and directory
   modes: the M/E/S/I state encoding cache slots carry, and the directory's
   per-line presence/owner table.

   States are plain ints so the cache's per-slot state array stays flat;
   the ordering is meaningful: anything > shared holds the line with
   write permission pending ([exclusive] clean, [modified] dirty), so
   "some other PE owns this line" is a single comparison. *)

let invalid = 0
let shared = 1
let exclusive = 2
let modified = 3

let state_name = function
  | 0 -> "I"
  | 1 -> "S"
  | 2 -> "E"
  | 3 -> "M"
  | _ -> "?"

module Dir = struct
  (* Per-line presence bitset + dirty-owner register, the full-map
     directory of Censier-Feautrier. Presence words pack 63 PEs each
     (OCaml's native int less the tag bit), so membership, insertion and
     removal are single loads on any realistic machine width; [owner] is
     the PE holding the line Modified (-1 = line clean everywhere). *)
  type t = {
    n_pes : int;
    bwords : int;  (** presence words per line *)
    presence : int array;  (** n_lines * bwords, row-major *)
    owner : int array;  (** n_lines; -1 = no dirty owner *)
  }

  let create ~n_pes ~n_lines =
    if n_pes <= 0 || n_lines < 0 then invalid_arg "Coherence.Dir.create";
    let bwords = ((n_pes + 62) / 63) in
    {
      n_pes;
      bwords;
      presence = Array.make (max 1 (n_lines * bwords)) 0;
      owner = Array.make (max 1 n_lines) (-1);
    }

  let n_lines t = Array.length t.owner

  let mem t ~line ~pe =
    t.presence.((line * t.bwords) + (pe / 63)) land (1 lsl (pe mod 63)) <> 0

  let add t ~line ~pe =
    let w = (line * t.bwords) + (pe / 63) in
    t.presence.(w) <- t.presence.(w) lor (1 lsl (pe mod 63))

  let remove t ~line ~pe =
    let w = (line * t.bwords) + (pe / 63) in
    t.presence.(w) <- t.presence.(w) land lnot (1 lsl (pe mod 63))

  let popcount n =
    let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
    go 0 n

  let sharer_count t ~line =
    let base = line * t.bwords in
    let c = ref 0 in
    for w = 0 to t.bwords - 1 do
      c := !c + popcount t.presence.(base + w)
    done;
    !c

  (* Visit sharers in ascending PE order — the deterministic invalidation
     order both engines replay identically. *)
  let iter_sharers t ~line f =
    let base = line * t.bwords in
    for w = 0 to t.bwords - 1 do
      let bits = t.presence.(base + w) in
      if bits <> 0 then
        for b = 0 to 62 do
          if bits land (1 lsl b) <> 0 then f ((w * 63) + b)
        done
    done

  let sharers t ~line =
    let acc = ref [] in
    iter_sharers t ~line (fun pe -> acc := pe :: !acc);
    List.rev !acc

  let clear_line t ~line =
    Array.fill t.presence (line * t.bwords) t.bwords 0;
    t.owner.(line) <- -1

  let owner t ~line = t.owner.(line)
  let set_owner t ~line pe = t.owner.(line) <- pe
end
