lib/analysis/volume.mli: Ccdp_ir Ccdp_machine Iterspace
