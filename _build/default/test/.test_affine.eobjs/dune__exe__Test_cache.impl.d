test/test_cache.ml: Alcotest Array Cache Ccdp_machine Ccdp_test_support Config List QCheck
