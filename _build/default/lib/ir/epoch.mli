(** Epoch partitioning (paper Section 3.1).

    A program is a sequence of epochs separated by barriers: a {e parallel
    epoch} is a top-level DOALL loop whose iterations are the concurrent
    tasks; a {e serial epoch} is a maximal run of sequential code. The main
    memory is updated at every epoch boundary, caches are {e not}
    invalidated — which is why stale copies can survive across epochs and
    the stale-reference dataflow walks this structure.

    Serial loops and branches that contain DOALLs become structure nodes:
    their bodies are epoch sequences executed repeatedly / conditionally,
    and the dataflow treats the loop back-edge as a flow edge. *)

type epoch =
  | Par of Stmt.loop  (** a top-level DOALL loop *)
  | Ser of Stmt.t list  (** a maximal serial section *)

type node =
  | E of int * epoch  (** epoch with its sequence number *)
  | Loop of Stmt.loop * node list
      (** serial loop whose body contains parallel epochs; [body] field of
          the embedded loop is ignored (superseded by the node list) *)
  | Branch of Stmt.cond * node list * node list

type t = { nodes : node list; count : int (** number of epochs *) }

(** Partition a (call-free) program body.
    @raise Invalid_argument if a [Call] survives (inline first). *)
val partition : Stmt.t list -> t

(** Flatten: every epoch with its id, in program order. *)
val all : t -> (int * epoch) list

(** The statements of an epoch (the DOALL's [For] for parallel epochs). *)
val stmts_of : epoch -> Stmt.t list

val pp : Format.formatter -> t -> unit
