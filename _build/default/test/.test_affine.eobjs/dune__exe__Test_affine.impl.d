test/test_affine.ml: Affine Alcotest Ccdp_ir Ccdp_test_support QCheck String
