lib/machine/pe.ml: Cache Config Dtb_annex Prefetch_queue Stats
