open Ccdp_ir
open Ccdp_analysis
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

let dist = Dist.block_along ~rank:2 ~dim:1

(* one DOALL epoch over columns reading A with the given subscript maker *)
let setup ?(n = 16) ?(n_pes = 4) ?(sched = Stmt.Static_block) mk =
  let p =
    two_epoch_program ~n ~dist ~init_sched:Stmt.Static_block ~read_sched:sched mk
  in
  let p = Program.inline p in
  let ep = Epoch.partition p.Program.main in
  let infos = Ref_info.collect ep in
  let region = Region.make p ~n_pes in
  (region, infos)

let read_info infos =
  List.find
    (fun (i : Ref_info.t) -> (not i.write) && i.ref_.Reference.array_name = "A")
    infos

let write_info infos =
  List.find
    (fun (i : Ref_info.t) -> i.write && i.ref_.Reference.array_name = "A")
    infos

let read_ij b ~i ~j = B.ref_ b "A" [ i; j ]

let read_jp1 b ~i ~j = B.ref_ b "A" [ i; Affine.add j Affine.one ]

let sections =
  [
    case "section_all covers the iteration space" (fun () ->
        let region, infos = setup read_ij in
        let s = Region.section_all region (read_info infos) in
        check_true "corner" (Section.mem s [| 0; 0 |]);
        check_true "far" (Section.mem s [| 15; 15 |]));
    case "section_pe restricts the parallel dimension" (fun () ->
        let region, infos = setup read_ij in
        let s = Region.section_pe region (read_info infos) ~pe:1 in
        check_true "own col" (Section.mem s [| 3; 4 |]);
        check_false "other col" (Section.mem s [| 3; 0 |]));
    case "shifted subscripts shift the per-PE section" (fun () ->
        let region, infos = setup read_jp1 in
        let s = Region.section_pe region (read_info infos) ~pe:0 in
        (* PE 0 runs j = 0..3, reads columns 1..4 *)
        check_true "col 4" (Section.mem s [| 0; 4 |]);
        check_false "col 0" (Section.mem s [| 0; 0 |]));
    case "serial epochs run on PE 0 only" (fun () ->
        let b = B.create ~name:"s" () in
        B.array_ b "A" [| 8; 8 |] ~dist;
        let p =
          B.finish b [ Stmt.Assign (B.ref_ b "A" [ B.A.c 0; B.A.c 5 ], F.const 1.0) ]
        in
        let ep = Epoch.partition p.Program.main in
        let infos = Ref_info.collect ep in
        let region = Region.make p ~n_pes:4 in
        let w = List.hd infos in
        check_false "pe1 empty"
          (Section.mem (Region.section_pe region w ~pe:1) [| 0; 5 |]);
        check_true "pe0 full"
          (Section.mem (Region.section_pe region w ~pe:0) [| 0; 5 |]));
    case "dynamic schedules widen every PE to the whole region" (fun () ->
        let region, infos = setup ~sched:(Stmt.Dynamic 2) read_ij in
        let s = Region.section_pe region (read_info infos) ~pe:3 in
        check_true "everything" (Section.mem s [| 0; 0 |]));
  ]

let alignment =
  [
    case "owner-computes read is aligned with the init write" (fun () ->
        let region, infos = setup read_ij in
        check_true "aligned"
          (Region.aligned region ~reader:(read_info infos) ~writer:(write_info infos)));
    case "halo read is not aligned" (fun () ->
        let region, infos = setup read_jp1 in
        check_false "misaligned"
          (Region.aligned region ~reader:(read_info infos) ~writer:(write_info infos)));
    case "cyclic reader against block writer is not aligned" (fun () ->
        let region, infos = setup ~sched:Stmt.Static_cyclic read_ij in
        check_false "misaligned"
          (Region.aligned region ~reader:(read_info infos) ~writer:(write_info infos)));
    case "dynamic reader is never aligned" (fun () ->
        let region, infos = setup ~sched:(Stmt.Dynamic 2) read_ij in
        check_false "misaligned"
          (Region.aligned region ~reader:(read_info infos) ~writer:(write_info infos)));
    case "all_local holds for owner-computes" (fun () ->
        let region, infos = setup read_ij in
        check_true "local" (Region.all_local region (read_info infos)));
    case "all_local fails for halo reads" (fun () ->
        let region, infos = setup read_jp1 in
        check_false "remote" (Region.all_local region (read_info infos)));
    case "single PE is always aligned" (fun () ->
        let region, infos = setup ~n_pes:1 read_jp1 in
        check_true "aligned"
          (Region.aligned region ~reader:(read_info infos) ~writer:(write_info infos)));
  ]

let must_sets =
  [
    case "dynamic schedules have empty must-sets" (fun () ->
        let region, infos = setup ~sched:(Stmt.Dynamic 2) read_ij in
        check_true "empty"
          (Section.is_empty (Region.section_pe_must region (read_info infos) ~pe:1)));
    case "static must-sets equal the may-sets for exact subscripts" (fun () ->
        let region, infos = setup read_ij in
        let i = read_info infos in
        check_true "equal"
          (Section.equal
             (Region.section_pe_must region i ~pe:1)
             (Region.section_pe region i ~pe:1)));
    case "coupled subscripts have empty must-sets" (fun () ->
        let region, infos =
          setup (fun b ~i ~j -> ignore j; B.ref_ b "A" [ i; i ])
        in
        let r = read_info infos in
        check_true "must empty"
          (Section.is_empty (Region.section_all_must region r));
        check_false "may nonempty"
          (Section.is_empty (Region.section_all region r)));
  ]

let () =
  Alcotest.run "region"
    [ ("sections", sections); ("alignment", alignment); ("must-sets", must_sets) ]
