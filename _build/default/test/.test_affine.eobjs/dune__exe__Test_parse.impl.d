test/test_parse.ml: Alcotest Array_decl Bound Ccdp_analysis Ccdp_core Ccdp_ir Ccdp_machine Ccdp_runtime Ccdp_test_support Ccdp_workloads Craft_parse Dist Fexpr List Program Stmt
