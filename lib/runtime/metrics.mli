(** Derived metrics over a run's raw counters.

    The prefetching literature's standard decomposition: {e coverage} (what
    fraction of would-be misses did prefetches absorb), {e timeliness}
    (on-time vs late arrivals), {e accuracy} (issued vs consumed), plus
    memory-system ratios and load balance. These are the quantities the
    paper's Section 6 promises to study "in detailed simulation studies";
    the CLI's [run] command prints them and the tests pin their algebra. *)

type t = {
  hit_ratio : float;  (** hits / cached reads *)
  prefetch_coverage : float;
      (** prefetch consumptions / (consumptions + demand misses): the
          fraction of line acquisitions the prefetcher provided *)
  prefetch_timeliness : float;  (** on-time / (on-time + late) *)
  prefetch_accuracy : float;
      (** consumed / issued line acquisitions (unused + dropped waste the
          rest) *)
  avg_late_stall : float;  (** stall cycles per late prefetch *)
  remote_ops_per_ref : float;
      (** remote operations (everything that consulted the DTB annex) per
          memory reference — how much of the reference stream crossed the
          network, whatever mechanism carried it *)
  traffic_words : int;  (** words moved over the network/memory system *)
  coherence_msgs : int;
      (** protocol control messages (snoop invalidations, upgrades,
          directory messages) — zero in every non-hardware coherence mode,
          whose protocols never write those counters *)
  load_balance : float;
      (** min / max busy cycles across PEs (1.0 = perfectly balanced) *)
}

(** The pure counter algebra, separated from the run plumbing so tests
    can pin it on hand-built {!Ccdp_machine.Stats.t} fixtures.
    [line_words] sizes line-granular transfers in the traffic account;
    [per_pe_cycles] feeds the load-balance ratio. *)
val of_stats :
  Ccdp_machine.Stats.t -> line_words:int -> per_pe_cycles:int array -> t

(** [of_stats] over the run's totals, line size and per-PE busy cycles. *)
val of_result : Interp.result -> t

val pp : Format.formatter -> t -> unit
