open Ccdp_ir
open Ccdp_machine
open Ccdp_runtime
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

let cfg = Config.tiny ~n_pes:4
let dist = Dist.block_along ~rank:2 ~dim:1

let run ?(mode = Memsys.Seq) ?(n_pes = 4) p =
  let cfg = { cfg with Config.n_pes } in
  Interp.run cfg (Program.inline p) ~plan:(Ccdp_analysis.Annot.empty ()) ~mode ()

let get (r : Interp.result) name idx = Memsys.get r.Interp.sys name idx

let numerics =
  [
    case "serial loop computes the expected values" (fun () ->
        let b = B.create ~name:"i1" () in
        B.array_ b "A" [| 8 |] ~dist:(Dist.block_along ~rank:1 ~dim:0) ;
        let open B.A in
        let p =
          B.finish b
            [ B.for_ b "i" (bc 0) (bc 7) [ B.assign b "A" [ v "i" ] F.(F.iv "i" * const 2.0) ] ]
        in
        let r = run p in
        for i = 0 to 7 do
          check_float "2i" (2.0 *. float_of_int i) (get r "A" [| i |])
        done);
    case "doall block computes identically to sequential" (fun () ->
        let mk kind =
          let b = B.create ~name:"i2" () in
          B.array_ b "A" [| 8; 8 |] ~dist;
          let open B.A in
          B.finish b
            [
              (match kind with
              | `Seq ->
                  B.for_ b "j" (bc 0) (bc 7)
                    [ B.for_ b "i" (bc 0) (bc 7)
                        [ B.assign b "A" [ v "i"; v "j" ] F.(F.iv "i" + (F.iv "j" * const 8.0)) ] ]
              | `Par ->
                  B.doall b "j" (bc 0) (bc 7)
                    [ B.for_ b "i" (bc 0) (bc 7)
                        [ B.assign b "A" [ v "i"; v "j" ] F.(F.iv "i" + (F.iv "j" * const 8.0)) ] ]);
            ]
        in
        let rs = run (mk `Seq) and rp = run ~mode:Memsys.Base (mk `Par) in
        for i = 0 to 7 do
          for j = 0 to 7 do
            check_float "same" (get rs "A" [| i; j |]) (get rp "A" [| i; j |])
          done
        done);
    case "cyclic and dynamic schedules produce the same values" (fun () ->
        let mk sched =
          let b = B.create ~name:"i3" () in
          B.array_ b "A" [| 8; 8 |] ~dist;
          let open B.A in
          B.finish b
            [
              B.doall b ~sched "j" (bc 0) (bc 7)
                [ B.for_ b "i" (bc 0) (bc 7)
                    [ B.assign b "A" [ v "i"; v "j" ] F.(F.iv "i" - F.iv "j") ] ];
            ]
        in
        let rc = run ~mode:Memsys.Base (mk Stmt.Static_cyclic) in
        let rd = run ~mode:Memsys.Base (mk (Stmt.Dynamic 3)) in
        for i = 0 to 7 do
          for j = 0 to 7 do
            check_float "same" (get rc "A" [| i; j |]) (get rd "A" [| i; j |])
          done
        done);
    case "if statements take the right branches" (fun () ->
        let b = B.create ~name:"i4" () in
        B.array_ b "A" [| 8 |] ~dist:(Dist.block_along ~rank:1 ~dim:0);
        let open B.A in
        let p =
          B.finish b
            [
              B.for_ b "i" (bc 0) (bc 7)
                [
                  Stmt.If
                    ( Stmt.Icond (Stmt.Lt, v "i", c 4),
                      [ B.assign b "A" [ v "i" ] (F.const 1.0) ],
                      [ B.assign b "A" [ v "i" ] (F.const 2.0) ] );
                ];
            ]
        in
        let r = run p in
        check_float "low" 1.0 (get r "A" [| 2 |]);
        check_float "high" 2.0 (get r "A" [| 6 |]));
    case "data-dependent conditions read memory" (fun () ->
        let b = B.create ~name:"i5" () in
        B.array_ b "A" [| 4 |] ~dist:(Dist.block_along ~rank:1 ~dim:0);
        B.array_ b "O" [| 4 |] ~dist:(Dist.block_along ~rank:1 ~dim:0);
        let open B.A in
        let p =
          B.finish b
            [
              B.for_ b "i" (bc 0) (bc 3) [ B.assign b "A" [ v "i" ] F.(F.iv "i" - const 1.5) ];
              B.for_ b "i" (bc 0) (bc 3)
                [
                  Stmt.If
                    ( Stmt.Fcond (Stmt.Gt, B.rd b "A" [ v "i" ], F.const 0.0),
                      [ B.assign b "O" [ v "i" ] (F.const 1.0) ],
                      [ B.assign b "O" [ v "i" ] (F.const (-1.0)) ] );
                ];
            ]
        in
        let r = run p in
        check_float "neg" (-1.0) (get r "O" [| 1 |]);
        check_float "pos" 1.0 (get r "O" [| 2 |]));
    case "opaque bounds execute correctly" (fun () ->
        let b = B.create ~name:"i6" () in
        B.param b "n" 6;
        B.array_ b "A" [| 8 |] ~dist:(Dist.block_along ~rank:1 ~dim:0);
        let open B.A in
        let p =
          B.finish b
            [
              B.for_ b "i" (bc 0) (Bound.opaque (Affine.sub (Affine.var "n") Affine.one))
                [ B.assign b "A" [ v "i" ] (F.const 3.0) ];
            ]
        in
        let r = run p in
        check_float "inside" 3.0 (get r "A" [| 5 |]);
        check_float "outside untouched" 0.0 (get r "A" [| 6 |]));
    case "scalars are task-private across iterations" (fun () ->
        let b = B.create ~name:"i7" () in
        B.array_ b "A" [| 8 |] ~dist:(Dist.block_along ~rank:1 ~dim:0);
        let open B.A in
        let p =
          B.finish b
            [
              Stmt.Sassign ("acc", F.const 0.0);
              B.for_ b "i" (bc 1) (bc 4)
                [ Stmt.Sassign ("acc", F.(sv "acc" + F.iv "i")) ];
              B.assign b "A" [ c 0 ] (F.sv "acc");
            ]
        in
        let r = run p in
        check_float "1+2+3+4" 10.0 (get r "A" [| 0 |]));
    case "register reuse keeps the store visible within the iteration" (fun () ->
        let b = B.create ~name:"i8" () in
        B.array_ b "A" [| 8 |] ~dist:(Dist.block_along ~rank:1 ~dim:0);
        let open B.A in
        let p =
          B.finish b
            [
              B.for_ b "i" (bc 0) (bc 0)
                [
                  B.assign b "A" [ c 0 ] (F.const 5.0);
                  B.assign b "A" [ c 1 ] F.(B.rd b "A" [ c 0 ] * const 2.0);
                ];
            ]
        in
        let r = run p in
        check_float "reads the new value" 10.0 (get r "A" [| 1 |]));
  ]

let timing =
  [
    case "parallel execution is faster than sequential for parallel work" (fun () ->
        let mk () =
          let b = B.create ~name:"t1" () in
          B.array_ b "A" [| 16; 16 |] ~dist;
          let open B.A in
          B.finish b
            [
              B.doall b "j" (bc 0) (bc 15)
                [ B.for_ b "i" (bc 0) (bc 15)
                    [ B.assign b "A" [ v "i"; v "j" ] F.(F.iv "i" + F.iv "j") ] ];
            ]
        in
        let seq = run ~n_pes:1 (mk ()) in
        let par = run ~mode:Memsys.Base ~n_pes:4 (mk ()) in
        check_true "speedup" (par.Interp.cycles < seq.Interp.cycles));
    case "epoch boundaries cost a barrier each" (fun () ->
        let b = B.create ~name:"t2" () in
        B.array_ b "A" [| 8; 8 |] ~dist;
        let open B.A in
        let d () =
          B.doall b "j" (bc 0) (bc 7)
            [ B.assign b "A" [ c 0; v "j" ] (F.const 1.0) ]
        in
        let p = B.finish b [ d (); d (); d () ] in
        let r = run ~mode:Memsys.Base p in
        check_int "3 epochs" 3 r.Interp.epochs;
        check_int "3 barriers" 3 r.Interp.stats.Stats.barriers);
    case "per-PE clocks are reported" (fun () ->
        let b = B.create ~name:"t3" () in
        B.array_ b "A" [| 8; 8 |] ~dist;
        let open B.A in
        let p =
          B.finish b
            [ B.doall b "j" (bc 0) (bc 7) [ B.assign b "A" [ c 0; v "j" ] (F.const 1.0) ] ]
        in
        let r = run ~mode:Memsys.Base p in
        check_int "4 PEs" 4 (Array.length r.Interp.per_pe_cycles);
        Array.iter (fun c -> check_true "positive" (c > 0)) r.Interp.per_pe_cycles);
    case "dynamic scheduling balances load" (fun () ->
        (* column cost rises with j: dynamic chunks should spread better
           than nothing at least: all PEs get work *)
        let b = B.create ~name:"t4" () in
        B.array_ b "A" [| 16; 16 |] ~dist;
        let open B.A in
        let p =
          B.finish b
            [
              B.doall b ~sched:(Stmt.Dynamic 1) "j" (bc 0) (bc 15)
                [
                  B.for_ b "i" (bc 0) (bv "j")
                    [ B.assign b "A" [ v "i"; v "j" ] (F.const 1.0) ];
                ];
            ]
        in
        let r = run ~mode:Memsys.Base p in
        Array.iter (fun c -> check_true "worked" (c > 0)) r.Interp.per_pe_cycles);
  ]

let ccdp_integration =
  [
    case "jacobi: CCDP verifies and prefetches" (fun () ->
        let w = Ccdp_workloads.Extras.jacobi ~n:12 ~iters:2 in
        let cfg = Config.tiny ~n_pes:4 in
        let compiled = Ccdp_core.Pipeline.compile cfg w.Ccdp_workloads.Workload.program in
        let r =
          Interp.run cfg compiled.Ccdp_core.Pipeline.program
            ~plan:compiled.Ccdp_core.Pipeline.plan ~mode:Memsys.Ccdp ()
        in
        let v =
          Verify.against_sequential w.Ccdp_workloads.Workload.program
            ~init:(fun _ -> ()) r
        in
        check_true "verified" v.Verify.ok;
        check_true "prefetched" (Stats.total_prefetches r.Interp.stats > 0));
    case "software pipelining issues a prologue and consumes in order" (fun () ->
        let w = Ccdp_workloads.Extras.opaque_sweep ~n:12 in
        let cfg = Config.t3d ~n_pes:4 in
        let compiled = Ccdp_core.Pipeline.compile cfg w.Ccdp_workloads.Workload.program in
        let counts = Ccdp_analysis.Annot.count compiled.Ccdp_core.Pipeline.plan in
        check_true "uses SP" (counts.Ccdp_analysis.Annot.n_pipelined > 0);
        let r =
          Interp.run cfg compiled.Ccdp_core.Pipeline.program
            ~plan:compiled.Ccdp_core.Pipeline.plan ~mode:Memsys.Ccdp ()
        in
        let v =
          Verify.against_sequential w.Ccdp_workloads.Workload.program
            ~init:(fun _ -> ()) r
        in
        check_true "verified" v.Verify.ok;
        check_true "line prefetches issued" (r.Interp.stats.Stats.pf_issued > 0));
  ]

let structure =
  [
    case "a branch around parallel epochs executes the taken side" (fun () ->
        let b = B.create ~name:"br" () in
        B.param b "flag" 1;
        B.array_ b "A" [| 8; 8 |] ~dist;
        let open B.A in
        let d value =
          B.doall b "j" (bc 0) (bc 7)
            [ B.assign b "A" [ c 0; v "j" ] (F.const value) ]
        in
        let p =
          B.finish b
            [
              Stmt.If
                (Stmt.Icond (Stmt.Eq, v "flag", c 1), [ d 5.0 ], [ d 9.0 ]);
            ]
        in
        let r = run ~mode:Memsys.Base p in
        check_float "then branch ran" 5.0 (get r "A" [| 0; 3 |]));
    case "intrinsics: sqrt, abs, min, max evaluate correctly" (fun () ->
        let b = B.create ~name:"fx" () in
        B.array_ b "A" [| 8 |] ~dist:(Dist.block_along ~rank:1 ~dim:0);
        let open B.A in
        let p =
          B.finish b
            [
              B.assign b "A" [ c 0 ] F.(sqrt_ (const 16.0));
              B.assign b "A" [ c 1 ] F.(abs_ (const (-2.5)));
              B.assign b "A" [ c 2 ] F.(min_ (const 3.0) (const 7.0));
              B.assign b "A" [ c 3 ] F.(max_ (const 3.0) (const 7.0));
              B.assign b "A" [ c 4 ] F.(neg (const 1.5));
            ]
        in
        let r = run p in
        check_float "sqrt" 4.0 (get r "A" [| 0 |]);
        check_float "abs" 2.5 (get r "A" [| 1 |]);
        check_float "min" 3.0 (get r "A" [| 2 |]);
        check_float "max" 7.0 (get r "A" [| 3 |]);
        check_float "neg" (-1.5) (get r "A" [| 4 |]));
    case "loops with steps execute the right iterations" (fun () ->
        let b = B.create ~name:"st" () in
        B.array_ b "A" [| 16 |] ~dist:(Dist.block_along ~rank:1 ~dim:0);
        let open B.A in
        let p =
          B.finish b
            [
              B.for_ b "i" ~step:3 (bc 1) (bc 13)
                [ B.assign b "A" [ v "i" ] (F.const 1.0) ];
            ]
        in
        let r = run p in
        List.iter
          (fun k -> check_float (string_of_int k) 1.0 (get r "A" [| k |]))
          [ 1; 4; 7; 10; 13 ];
        check_float "between untouched" 0.0 (get r "A" [| 2 |]));
  ]

let profiling =
  [
    case "epoch profile covers the whole run" (fun () ->
        let w = Ccdp_workloads.Extras.jacobi ~n:16 ~iters:3 in
        let cfg = Config.t3d ~n_pes:4 in
        let r =
          Interp.run cfg
            (Program.inline w.Ccdp_workloads.Workload.program)
            ~plan:(Ccdp_analysis.Annot.empty ()) ~mode:Memsys.Base ()
        in
        let total_prof =
          List.fold_left (fun acc (_, _, c) -> acc + c) 0 r.Interp.epoch_profile
        in
        check_int "profile sums to machine time" r.Interp.cycles total_prof;
        (* 1 init + 2 smooths x 3 iterations *)
        check_int "three epochs" 3 (List.length r.Interp.epoch_profile);
        List.iter
          (fun (id, n, _) ->
            if id = 0 then check_int "init once" 1 n
            else check_int "smooth thrice" 3 n)
          r.Interp.epoch_profile);
    case "pp_profile renders against the epoch structure" (fun () ->
        let w = Ccdp_workloads.Extras.triad ~n:8 in
        let p = Program.inline w.Ccdp_workloads.Workload.program in
        let cfg = Config.t3d ~n_pes:2 in
        let r =
          Interp.run cfg p ~plan:(Ccdp_analysis.Annot.empty ())
            ~mode:Memsys.Base ()
        in
        let ep = Epoch.partition p.Program.main in
        let buf = Buffer.create 128 in
        let ppf = Format.formatter_of_buffer buf in
        Interp.pp_profile ppf ep r;
        Format.pp_print_flush ppf ();
        let out = Buffer.contents buf in
        check_true "mentions epochs" (String.length out > 60));
  ]

let () =
  Alcotest.run "interp"
    [
      ("numerics", numerics);
      ("timing", timing);
      ("ccdp", ccdp_integration);
      ("structure", structure);
      ("profiling", profiling);
    ]
