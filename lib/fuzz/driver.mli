(** The differential soundness campaign.

    Every generated program is compiled and executed under BASE plus the
    CCDP scheduling variants (all techniques, VPG-only, SP-only, MBP-only),
    each with the dynamic staleness oracle armed, and checked three ways:

    - {b numerics}: final shared-array contents must equal the sequential
      execution bit-for-bit ({!Ccdp_runtime.Verify.compare_states});
    - {b oracle}: zero staleness-oracle violations — no cache hit may
      return a word older than the last pre-epoch write, even when the
      stale value numerically coincides with the fresh one;
    - {b static}: the coherence certifier ({!Ccdp_check.Check.certify})
      over the default-tuning compile must agree with the other two legs —
      clean programs certify clean, and an injected stale-analysis fault
      that actually changes the stale set must raise an error-severity
      diagnostic {e without executing anything}.

    A failure is shrunk to a one-step-minimal description
    ({!Shrink.minimize}, candidates re-validated) and optionally dumped as
    a [.craft] reproducer. *)

type failure_kind =
  | Mismatch  (** numeric divergence from sequential execution *)
  | Oracle  (** staleness-oracle violation *)
  | Static_escape
      (** an injected analysis fault left a read's coherence obligation
          undischarged by the plan, but the static certifier raised no
          diagnostic *)
  | Static_spurious
      (** the static certifier raised error diagnostics on a program whose
          compile was not fault-injected *)

type failure = {
  f_index : int;  (** 0-based index of the program in the campaign *)
  f_variant : string;
  f_kind : failure_kind;
  f_detail : string;  (** rendered verify report / first oracle witnesses *)
  f_original : Gen.desc;
  f_shrunk : Gen.desc;
  f_reproducer : string option;  (** path of the dumped [.craft] file *)
}

type summary = {
  s_programs : int;
  s_runs : int;  (** variant executions (sequential baselines excluded) *)
  s_oracle_checks : int;  (** oracle assertions evaluated across all runs *)
  s_static_checks : int;  (** programs certified statically (= programs) *)
  s_static_caught : int;
      (** injected faults flagged by the certifier (fault-injected compiles
          that raised error diagnostics) *)
  s_static_escapes : int;
      (** dangerous injected faults — a victim read left undischarged by
          the mutated plan — the certifier missed; counted even when the
          dynamic legs reported the failure first *)
  s_failures : failure list;
}

(** Names of the execution variants, in run order:
    ["BASE"; "CCDP/all"; "CCDP/vpg"; "CCDP/sp"; "CCDP/mbp"; "MSI"; "MESI";
    "DIR"] — the last three are the hardware-coherence rivals, run
    plan-free with the protocol carrying the whole coherence obligation. *)
val variant_names : string list

(** Fault injection for self-tests: return a copy of the stale-analysis
    result with the [k]-th (mod count, sorted by id) stale mark dropped to
    Clean — the compiler bug the oracle exists to catch. Identity when the
    analysis marked nothing. Pass as [mutate_stale]. *)
val drop_stale_mark :
  int -> Ccdp_analysis.Stale.result -> Ccdp_analysis.Stale.result

(** Check one description across every variant; [Some (variant, kind,
    detail)] on the first failure. *)
val check_desc :
  ?mutate_stale:(Ccdp_analysis.Stale.result -> Ccdp_analysis.Stale.result) ->
  Gen.desc ->
  (string * failure_kind * string) option

(** CRAFT-dialect source of a description (compiled with its own config),
    suitable for [ccdp load] and regression suites. *)
val reproducer_text : Gen.desc -> string

(** Run a campaign of [count] programs drawn from [seed]. Failures are
    shrunk; with [dump_dir] each shrunk reproducer is written there as
    [fuzz_<seed>_<index>.craft]. [progress] is called after each program
    with the number checked so far.

    Program checks are sharded over [jobs] domains
    ({!Ccdp_exec.Pool.resolve_jobs} resolves the default); generation,
    shrinking and the summary fold stay on the calling domain, so for a
    given seed the summary is identical for every job count.

    [shards > 1] moves the parallelism {e inside} each simulated run
    instead: every variant executes with intra-run epoch sharding over
    that many domains ({!Ccdp_runtime.Interp.run}'s [?pool]), and
    program-level checking goes serial ([jobs] is ignored). The summary
    is identical to the unsharded campaign — this is how the fuzz corpus
    exercises the parallel simulation path. *)
val campaign :
  ?jobs:int ->
  ?shards:int ->
  ?mutate_stale:(Ccdp_analysis.Stale.result -> Ccdp_analysis.Stale.result) ->
  ?dump_dir:string ->
  ?progress:(int -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  summary

val pp_summary : Format.formatter -> summary -> unit

(** {2 Protocol sabotage}

    The hardware-protocol analogue of [mutate_stale]: instead of breaking
    the compiler's stale analysis, break the protocol's own coherence
    action ({!Ccdp_runtime.Memsys.sabotage}) and demand the dynamic
    staleness oracle witness the resulting stale copy. Cost accounting is
    untouched by the fault, so only the oracle (or a numeric divergence)
    can tell a sabotaged run from a healthy one. *)

type sabotage_case = {
  sb_name : string;
  sb_mode : Ccdp_runtime.Memsys.mode;
  sb_fault : Ccdp_runtime.Memsys.sabotage;
}

(** One case per protocol fault class, in run order: MSI and MESI under
    [Drop_invalidate], the directory under [Corrupt_presence]. *)
val sabotage_cases : sabotage_case list

type sabotage_summary = {
  sb_case : sabotage_case;
  sb_programs : int;
  sb_fired : int;
      (** runs in which the fault actually fired (the protocol reached the
          suppressed action, leaving a stale copy behind) *)
  sb_caught : int;  (** runs the oracle witnessed (>= 1 stale hit) *)
  sb_escapes : int;
      (** runs whose numerics diverged from sequential while the oracle
          stayed silent — must be zero for the oracle to be trusted *)
}

(** Run every {!sabotage_cases} entry over [count] programs drawn from
    [seed] (same sharding and determinism guarantees as {!campaign}).
    The soundness claim the tests pin: [sb_caught > 0] (each fault class
    is catchable) and [sb_escapes = 0] (nothing corrupts numerics behind
    the oracle's back). *)
val sabotage_campaign :
  ?jobs:int -> seed:int -> count:int -> unit -> sabotage_summary list

val pp_sabotage_summary : Format.formatter -> sabotage_summary -> unit
