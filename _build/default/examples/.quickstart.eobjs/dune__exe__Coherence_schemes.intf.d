examples/coherence_schemes.mli:
