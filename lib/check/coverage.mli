(** Coherence coverage verifier (CCDP-W001/W002/W004).

    Discharges the per-read obligation "potentially stale implies
    prefetched, covered, or bypassed" against the independent may-stale
    derivation, and flags coverage of reads the derivation proves clean.
    [prefetch_clean] suppresses the spurious-coverage lint: with it the
    pipeline legitimately prefetches (and may demote) clean reads. *)

val check :
  plan:Ccdp_analysis.Annot.plan ->
  maystale:Maystale.t ->
  prefetch_clean:bool ->
  Ccdp_analysis.Ref_info.t list ->
  Diag.t list
