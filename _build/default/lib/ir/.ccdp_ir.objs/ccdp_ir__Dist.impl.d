lib/ir/dist.ml: Array Format Printf
