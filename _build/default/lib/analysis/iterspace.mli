(** Iteration-space environments.

    Maps every in-scope variable to a value triplet [(lo, hi, step)]: loop
    variables to their (possibly outer-variable-dependent, hence widened)
    ranges, program parameters to point triplets. Feeding such an
    environment to {!Ccdp_ir.Section.of_subscripts} yields the array region
    a reference touches; restricting the parallel variable to one PE's
    schedule triplet yields the per-PE region. *)

type env = (string * (int * int * int)) list

(** Environment of a loop stack (outermost first) on top of the program
    parameters. A loop whose bounds cannot be resolved contributes nothing
    (downstream sections widen to [Whole]). *)
val of_loops : params:(string * int) list -> Ccdp_ir.Stmt.loop list -> env

(** Evaluate a bound to its extreme values under an environment:
    [(min, max)]; [None] when unknown. *)
val bound_range : Ccdp_ir.Bound.t -> env -> (int * int) option

(** Constant value of a bound under an environment ([None] when unknown or
    varying). *)
val bound_const : Ccdp_ir.Bound.t -> env -> int option

(** Numeric trip count of a loop under an environment, using the widest
    bounds; [None] when either bound is unknown. *)
val trip_count : Ccdp_ir.Stmt.loop -> env -> int option

(** [restrict env loop ~by] rebinds the loop variable to the given value
    triplet. *)
val restrict : env -> Ccdp_ir.Stmt.loop -> by:int * int * int -> env

(** Outcome of restricting a loop to one PE. [Exact] means the environment
    precisely describes the PE's iterations; [Widened] means the PE {e may}
    run any iteration (dynamic schedules, unresolvable bounds) — usable for
    may-analyses only, never as a must-set. *)
type restriction = Idle | Exact of env | Widened of env

val restrict_pe_info :
  env -> Ccdp_ir.Stmt.loop -> n_pes:int -> pe:int -> restriction

(** Per-PE environment for a static DOALL: the parallel variable is
    restricted to the PE's schedule triplet. [None] when the PE receives no
    iterations; falls back to the unrestricted environment for dynamic
    schedules or non-constant bounds (conservative may-set). *)
val restrict_pe :
  env -> Ccdp_ir.Stmt.loop -> n_pes:int -> pe:int -> env option

(** Rebind loops other than [inner] to point ranges at their lower bound:
    the environment of a {e single} execution of the inner loop (used for
    prefetch capacity checks, which are per-visit). *)
val pin_outer : env -> inner:Ccdp_ir.Stmt.loop -> Ccdp_ir.Stmt.loop list -> env
