type t = { name : string; descr : string; program : Ccdp_ir.Program.t }

let make ~name ~descr program = { name; descr; program }

let find ws name =
  match List.find_opt (fun w -> String.equal w.name name) ws with
  | Some w -> w
  | None ->
      invalid_arg
        (Printf.sprintf "Workload.find: unknown workload %s (have: %s)" name
           (String.concat ", " (List.map (fun w -> w.name) ws)))
