type entry = { line : int; words : int; ready : int }

type t = {
  cap : int;
  mutable occ : int;
  mutable items : entry list;  (** newest first *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Prefetch_queue.create";
  { cap = capacity; occ = 0; items = [] }

let capacity t = t.cap
let occupancy t = t.occ

let find t ~line =
  List.find_map (fun e -> if e.line = line then Some e.ready else None) t.items

let try_insert t ~line ~words ~ready =
  if find t ~line <> None then true
  else if t.occ + words > t.cap then false
  else begin
    t.items <- { line; words; ready } :: t.items;
    t.occ <- t.occ + words;
    true
  end

let remove t ~line =
  let removed = ref 0 in
  t.items <-
    List.filter
      (fun e ->
        if e.line = line then begin
          removed := !removed + e.words;
          false
        end
        else true)
      t.items;
  t.occ <- t.occ - !removed

let clear t =
  let n = List.length t.items in
  t.items <- [];
  t.occ <- 0;
  n

let entries t = List.rev t.items
