open Ccdp_ir
open Ccdp_machine
open Ccdp_analysis

type result = {
  mode : Memsys.mode;
  cycles : int;
  stats : Stats.t;
  per_pe_cycles : int array;
  epochs : int;
  epoch_profile : (int * int * int) list;
  sys : Memsys.t;
}

(* Statement-level register memo as a flat linear-scan buffer keyed by
   canonical word address: scopes hold a handful of distinct elements, so a
   scan beats hashing — and resetting is one store. [memo_caps] bounds the
   population statically; growth is a safety net only. *)
type memo = {
  mutable mn : int;
  mutable mkeys : int array;
  mutable mvals : float array;
}

let memo_make cap =
  let cap = max 1 cap in
  { mn = 0; mkeys = Array.make cap 0; mvals = Array.make cap 0.0 }

let memo_index m addr =
  let n = m.mn in
  let keys = m.mkeys in
  let rec go i = if i >= n then -1 else if keys.(i) = addr then i else go (i + 1) in
  go 0

let memo_add m addr v =
  (if m.mn = Array.length m.mkeys then begin
     let cap = 2 * m.mn in
     let nk = Array.make cap 0 and nv = Array.make cap 0.0 in
     Array.blit m.mkeys 0 nk 0 m.mn;
     Array.blit m.mvals 0 nv 0 m.mn;
     m.mkeys <- nk;
     m.mvals <- nv
   end);
  m.mkeys.(m.mn) <- addr;
  m.mvals.(m.mn) <- v;
  m.mn <- m.mn + 1

let memo_put m addr v =
  let i = memo_index m addr in
  if i >= 0 then m.mvals.(i) <- v else memo_add m addr v

(* Per-shard mutable evaluation state: everything the recursive evaluator
   scribbles on besides the per-PE frames and the memory system itself.
   One instance per domain shard, so concurrent shards never share a
   scratch buffer; the serial run uses exactly one (no extra allocation
   against the Gc gate). *)
type scratch = {
  s_ridx : int array array;  (** per read occurrence: subscript buffer *)
  s_widx : int array array;
  s_memos : memo array;
  s_sp_lines : int array array;  (** per loop uid: last line issued per sp *)
}

(* The closure family built over one scratch: the recursive evaluator
   entry points [exec_parallel] and the serial paths dispatch through. *)
type engine = {
  e_range : int -> Xplan.loop -> first:int -> last:int -> step:int -> unit;
  e_loop : int -> Xplan.loop -> unit;
  e_stmt : int -> memo -> Xplan.stmt -> unit;
  e_cond : int -> memo -> Xplan.cond -> bool;
  e_memos : memo array;
}

let run cfg ?(oracle = false) ?(sabotage = Memsys.No_fault) ?pool
    (program : Program.t) ~plan ~mode ?init () =
  let sys = Memsys.create cfg ~oracle ~sabotage program ~plan mode in
  (match init with Some f -> f sys | None -> ());
  let ep = Epoch.partition program.Program.main in
  let xp = Xplan.lower program ep plan in
  let n = cfg.Config.n_pes in
  (* Intra-run sharding: DOALL epochs execute their PEs in [nshards]
     domain shards when the memory system buffers all cross-PE effects to
     the barrier (Memsys.shardable). One shard means today's serial walk,
     closure-for-closure. *)
  let nshards =
    match pool with
    | Some p when Memsys.shardable sys ->
        max 1 (min (Ccdp_exec.Pool.jobs p) n)
    | _ -> 1
  in
  (* per-PE frames: induction variables / parameters (ints) and
     task-private scalars (floats), with bound flags replacing the
     string-keyed environments' membership *)
  let nint = max 1 (Xplan.n_int xp) and nflt = max 1 (Xplan.n_flt xp) in
  let iframe = Array.init n (fun _ -> Array.make nint 0) in
  let ibound = Array.init n (fun _ -> Array.make nint false) in
  let fframe = Array.init n (fun _ -> Array.make nflt 0.0) in
  let fbound = Array.init n (fun _ -> Array.make nflt false) in
  Array.iter
    (fun (slot, v) ->
      for pe = 0 to n - 1 do
        iframe.(pe).(slot) <- v;
        ibound.(pe).(slot) <- true
      done)
    xp.Xplan.params;
  (* per static access: prepared memory-system access, shared by every
     shard (read-only after preparation) *)
  let raccs = Array.map (Memsys.prepare_read sys) xp.Xplan.reads in
  let waccs = Array.map (Memsys.prepare_write sys) xp.Xplan.writes in
  let scratch_of (r : Reference.t) = Array.make (Array.length r.subs) 0 in
  let make_scratch () =
    {
      s_ridx = Array.map scratch_of xp.Xplan.reads;
      s_widx = Array.map scratch_of xp.Xplan.writes;
      s_memos = Array.map memo_make xp.Xplan.memo_caps;
      s_sp_lines =
        Array.map (fun k -> Array.make (max 1 k) min_int) xp.Xplan.sp_counts;
    }
  in
  let epochs_executed = ref 0 in
  let profile : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let record_epoch id dt =
    let n, c = match Hashtbl.find_opt profile id with Some x -> x | None -> (0, 0) in
    Hashtbl.replace profile id (n + 1, c + dt)
  in
  let unbound_var s =
    invalid_arg ("Interp: unbound variable " ^ xp.Xplan.lay.Xplan.int_names.(s))
  in
  let unbound_scalar s =
    invalid_arg ("Interp: unbound scalar $" ^ xp.Xplan.lay.Xplan.flt_names.(s))
  in
  let eval_aff pe (a : Xplan.aff) =
    let fr = iframe.(pe) and bd = ibound.(pe) in
    let coefs = a.Xplan.acoefs and slots = a.Xplan.aslots in
    let r = ref a.Xplan.abase in
    for k = 0 to Array.length coefs - 1 do
      let s = slots.(k) in
      if not bd.(s) then unbound_var s;
      r := !r + (coefs.(k) * fr.(s))
    done;
    !r
  in
  let eval_bound pe = function
    | Xplan.Fin a -> eval_aff pe a
    | Xplan.Unk -> invalid_arg "Bound.eval_exec: unknown bound is not executable"
  in
  let make_engine sc =
    let ridx = sc.s_ridx
    and widx = sc.s_widx
    and memos = sc.s_memos
    and sp_lines = sc.s_sp_lines in
    (* evaluate an occurrence's subscripts into its scratch buffer *)
    let eval_subs bufs pe (xr : Xplan.xref) =
    let buf = bufs.(xr.Xplan.xacc) in
    let subs = xr.Xplan.xsubs in
    for d = 0 to Array.length subs - 1 do
      buf.(d) <- eval_aff pe subs.(d)
    done;
    buf
  in
  let rec eval_f pe memo (e : Xplan.fexpr) =
    match e with
    | Xplan.XConst c -> c
    | Xplan.XIvar s ->
        if not ibound.(pe).(s) then unbound_var s;
        float_of_int iframe.(pe).(s)
    | Xplan.XSvar s ->
        if not fbound.(pe).(s) then unbound_scalar s;
        fframe.(pe).(s)
    | Xplan.XRead xr ->
        (* [memo] models statement-level register reuse: a compiler loads
           each distinct element once per statement, further occurrences
           read the register for free *)
        let idx = eval_subs ridx pe xr in
        let acc = raccs.(xr.Xplan.xacc) in
        let addr = Memsys.access_addr sys acc ~pe ~idx in
        let i = memo_index memo addr in
        if i >= 0 then memo.mvals.(i)
        else begin
          let v = Memsys.read_c sys ~pe acc ~idx ~addr in
          memo_add memo addr v;
          v
        end
    | Xplan.XUnop (op, a) -> Fexpr.apply_unop op (eval_f pe memo a)
    | Xplan.XBinop (op, a, b) ->
        let x = eval_f pe memo a in
        let y = eval_f pe memo b in
        Fexpr.apply_binop op x y
  in
  let eval_cond pe memo = function
    | Xplan.XIcond (op, a, b) ->
        Stmt.eval_cmp op (eval_aff pe a) (eval_aff pe b)
    | Xplan.XFcond (op, a, b) ->
        Memsys.charge sys ~pe cfg.Config.flop;
        let x = eval_f pe memo a in
        let y = eval_f pe memo b in
        Stmt.eval_fcmp op x y
  in
  (* Issue one software-pipelined prefetch for a future iteration of one
     reference. With [every > 1] the compiler strip-mined the issue to one
     prefetch instruction per cache line (self-spatial elimination): the
     runtime realizes that soundly as a line-crossing test against the
     previously issued line, so boundary and phase effects can never leave
     a line unissued. *)
  let sp_issue pe (l : Xplan.loop) (sp : Xplan.sp) k target_iter hi =
    if (l.Xplan.l_step > 0 && target_iter <= hi)
       || (l.Xplan.l_step < 0 && target_iter >= hi)
    then begin
      let var = l.Xplan.l_var in
      let sv = iframe.(pe).(var) and sb = ibound.(pe).(var) in
      iframe.(pe).(var) <- target_iter;
      ibound.(pe).(var) <- true;
      let idx = eval_subs ridx pe sp.Xplan.sp_ref in
      iframe.(pe).(var) <- sv;
      ibound.(pe).(var) <- sb;
      let acc = raccs.(sp.Xplan.sp_ref.Xplan.xacc) in
      let addr = Memsys.access_addr sys acc ~pe ~idx in
      if sp.Xplan.sp_every <= 1 then
        Memsys.pf_issue_c ~skip_cached:sp.Xplan.sp_clean sys ~pe acc ~addr
      else begin
        let line = addr / cfg.Config.line_words in
        let lines = sp_lines.(l.Xplan.l_uid) in
        if line <> lines.(k) then begin
          lines.(k) <- line;
          Memsys.pf_issue_c ~skip_cached:sp.Xplan.sp_clean sys ~pe acc ~addr
        end
      end
    end
  in
  (* issue the vector prefetches attached to a loop, for the given range *)
  let vector_issue pe (l : Xplan.loop) ~first ~last ~step =
    Array.iter
      (fun (vec : Xplan.vec) ->
        let var = l.Xplan.l_var in
        let sv = iframe.(pe).(var) and sb = ibound.(pe).(var) in
        let idxs = ref [] in
        let collect () =
          Array.iter
            (fun m -> idxs := Array.copy (eval_subs ridx pe m) :: !idxs)
            vec.Xplan.v_members
        in
        let sweep_inner () =
          match vec.Xplan.v_inner with
          | None -> collect ()
          | Some il ->
              let ifirst = eval_bound pe il.Xplan.l_lo in
              let ilast = eval_bound pe il.Xplan.l_hi in
              let ivar = il.Xplan.l_var in
              let isv = iframe.(pe).(ivar) and isb = ibound.(pe).(ivar) in
              let w = ref ifirst in
              let cont () =
                if il.Xplan.l_step > 0 then !w <= ilast else !w >= ilast
              in
              while cont () do
                iframe.(pe).(ivar) <- !w;
                ibound.(pe).(ivar) <- true;
                collect ();
                w := !w + il.Xplan.l_step
              done;
              iframe.(pe).(ivar) <- isv;
              ibound.(pe).(ivar) <- isb
        in
        let v = ref first in
        let continue () = if step > 0 then !v <= last else !v >= last in
        while continue () do
          iframe.(pe).(var) <- !v;
          ibound.(pe).(var) <- true;
          sweep_inner ();
          v := !v + step
        done;
        iframe.(pe).(var) <- sv;
        ibound.(pe).(var) <- sb;
        Memsys.vget_issue_c ~skip_cached:vec.Xplan.v_clean sys ~pe
          raccs.(vec.Xplan.v_members.(0).Xplan.xacc)
          (List.rev !idxs))
      l.Xplan.l_vecs
  in
  (* execute the iterations [first..last..step] of loop [l] on [pe] *)
  let rec exec_range pe (l : Xplan.loop) ~first ~last ~step =
    vector_issue pe l ~first ~last ~step;
    let sps = l.Xplan.l_sps in
    let lines = sp_lines.(l.Xplan.l_uid) in
    Array.fill lines 0 (Array.length lines) min_int;
    (* software-pipelining prologue: prefetch the first d iterations *)
    Array.iteri
      (fun k (sp : Xplan.sp) ->
        for j = 0 to sp.Xplan.sp_dist - 1 do
          sp_issue pe l sp k (first + (j * step)) last
        done)
      sps;
    let var = l.Xplan.l_var in
    let sv = iframe.(pe).(var) and sb = ibound.(pe).(var) in
    let memo = memos.(l.Xplan.l_memo) in
    let body = l.Xplan.l_body in
    let v = ref first in
    let continue () = if step > 0 then !v <= last else !v >= last in
    while continue () do
      iframe.(pe).(var) <- !v;
      ibound.(pe).(var) <- true;
      Memsys.charge sys ~pe cfg.Config.loop_overhead;
      Array.iteri
        (fun k (sp : Xplan.sp) ->
          sp_issue pe l sp k (!v + (sp.Xplan.sp_dist * step)) last)
        sps;
      (* fresh register file per iteration: scalar replacement is only
         valid within a single iteration of the innermost loop *)
      memo.mn <- 0;
      Array.iter (exec_stmt pe memo) body;
      v := !v + step
    done;
    iframe.(pe).(var) <- sv;
    ibound.(pe).(var) <- sb

  and exec_loop pe (l : Xplan.loop) =
    let first = eval_bound pe l.Xplan.l_lo in
    let last = eval_bound pe l.Xplan.l_hi in
    exec_range pe l ~first ~last ~step:l.Xplan.l_step

  and exec_stmt pe memo (s : Xplan.stmt) =
    match s with
    | Xplan.XAssign { xflops; dst; src } ->
        Memsys.charge sys ~pe (xflops * cfg.Config.flop);
        let v = eval_f pe memo src in
        let idx = eval_subs widx pe dst in
        let wa = waccs.(dst.Xplan.xacc) in
        let addr = Memsys.write_addr sys wa ~pe ~idx in
        Memsys.write_c sys ~pe wa ~addr v;
        (* keep the register copy coherent with the store *)
        memo_put memo addr v
    | Xplan.XSassign { xflops; slot; src } ->
        Memsys.charge sys ~pe (xflops * cfg.Config.flop);
        fframe.(pe).(slot) <- eval_f pe memo src;
        fbound.(pe).(slot) <- true
    | Xplan.XIf (c, tb, eb) ->
        if eval_cond pe memo c then Array.iter (exec_stmt pe memo) tb
        else Array.iter (exec_stmt pe memo) eb
    | Xplan.XFor l -> exec_loop pe l
    | Xplan.XCritical { xc_lock; xc_body } ->
        Memsys.lock_acquire sys ~pe xc_lock;
        (* the acquire is a coherence frontier: registers holding shared
           values cannot be trusted past it *)
        memo.mn <- 0;
        Array.iter (exec_stmt pe memo) xc_body;
        Memsys.lock_release sys ~pe xc_lock
    | Xplan.XReduce { xflops; slot; rop; src } ->
        Memsys.charge sys ~pe (xflops * cfg.Config.flop);
        let v = eval_f pe memo src in
        let fr = fframe.(pe) and fb = fbound.(pe) in
        if fb.(slot) then fr.(slot) <- Fexpr.apply_binop rop fr.(slot) v
        else begin
          (* first contribution seeds the partial *)
          fr.(slot) <- v;
          fb.(slot) <- true
        end
    in
    {
      e_range = exec_range;
      e_loop = exec_loop;
      e_stmt = exec_stmt;
      e_cond = eval_cond;
      e_memos = memos;
    }
  in
  (* shard 0's engine is the main engine: Seq runs, serial epochs, branch
     conditions, dynamic scheduling and every serial fallback go through
     it, so a one-shard run is exactly the pre-shard interpreter *)
  let engines = Array.init nshards (fun _ -> make_engine (make_scratch ())) in
  let main = engines.(0) in
  let exec_parallel id (l : Xplan.loop) (reds : Xplan.xred array) =
    incr epochs_executed;
    let t0 = Machine.time (Memsys.machine sys) in
    (* reduction prologue: capture the incoming binding (PE0's view) and
       unbind the scalar on every PE — each PE's first contribution seeds
       its partial, so no identity element is ever materialized *)
    let incoming =
      Array.map
        (fun (rd : Xplan.xred) ->
          let s = rd.Xplan.rd_slot in
          let inc = if fbound.(0).(s) then Some fframe.(0).(s) else None in
          for pe = 0 to n - 1 do
            fbound.(pe).(s) <- false
          done;
          inc)
        reds
    in
    if mode = Memsys.Seq then main.e_loop 0 l
    else begin
      let first = eval_bound 0 l.Xplan.l_lo in
      let last = eval_bound 0 l.Xplan.l_hi in
      (match l.Xplan.l_src.Stmt.kind with
      | Stmt.Serial -> assert false
      | Stmt.Doall
          ((Stmt.Static_block | Stmt.Static_aligned _ | Stmt.Static_cyclic) as
           sched) ->
          let triplet pe =
            Ccdp_craft.Loop_sched.triplet_of_pe sched ~n_pes:n ~pe ~lo:first
              ~hi:last ~step:l.Xplan.l_step
          in
          if nshards > 1 then begin
            (* Collect the PEs with iterations, then hand each shard one
               contiguous slice of them: balanced (equal active counts)
               yet cache-friendly — neighbouring PEs' records live on the
               same CPU cache lines, so splitting them across domains
               would make every clock/stats bump a coherence miss. Any
               assignment yields the same simulated state (per-PE state
               is disjoint, shared effects barrier-merge PE-major); the
               choice is purely a host-performance one. *)
            let actives = Array.make n 0 in
            let m = ref 0 in
            for pe = 0 to n - 1 do
              if triplet pe <> None then begin
                actives.(!m) <- pe;
                incr m
              end
            done;
            let m = !m in
            let q = m / nshards and r = m mod nshards in
            ignore
              (Ccdp_exec.Pool.map_shards (Option.get pool) ~shards:nshards
                 (fun s ->
                   let eng = engines.(s) in
                   let lo = (s * q) + min s r in
                   let hi = lo + q + (if s < r then 1 else 0) - 1 in
                   for k = lo to hi do
                     let pe = actives.(k) in
                     match triplet pe with
                     | None -> ()
                     | Some (f, la, st) ->
                         eng.e_range pe l ~first:f ~last:la ~step:st
                   done))
          end
          else
            for pe = 0 to n - 1 do
              match triplet pe with
              | None -> ()
              | Some (f, la, s) -> main.e_range pe l ~first:f ~last:la ~step:s
            done
      | Stmt.Doall (Stmt.Dynamic chunk) ->
          (* greedy self-scheduling reads every PE clock before each
             chunk — inherently serial, always on the main engine *)
          let chunks =
            Ccdp_craft.Loop_sched.dynamic_chunks ~chunk ~lo:first ~hi:last
              ~step:l.Xplan.l_step
          in
          List.iter
            (fun (f, la, s) ->
              (* greedy self-scheduling: next chunk to the least-loaded PE *)
              let best = ref 0 in
              for pe = 1 to n - 1 do
                if Memsys.clock sys ~pe < Memsys.clock sys ~pe:!best then best := pe
              done;
              main.e_range !best l ~first:f ~last:la ~step:s)
            chunks);
      ()
    end;
    (* reduction merge: fold the per-PE partials PE-major onto the
       incoming value and broadcast the result — the combining happens in
       the barrier's combining tree, so it charges no PE cycles *)
    Array.iteri
      (fun k (rd : Xplan.xred) ->
        let s = rd.Xplan.rd_slot in
        let acc = ref incoming.(k) in
        for pe = 0 to n - 1 do
          if fbound.(pe).(s) then
            acc :=
              Some
                (match !acc with
                | Some x -> Fexpr.apply_binop rd.Xplan.rd_op x fframe.(pe).(s)
                | None -> fframe.(pe).(s))
        done;
        match !acc with
        | Some v ->
            for pe = 0 to n - 1 do
              fframe.(pe).(s) <- v;
              fbound.(pe).(s) <- true
            done
        | None -> ())
      reds;
    Memsys.epoch_boundary sys;
    record_epoch id (Machine.time (Memsys.machine sys) - t0)
  in
  let exec_serial_epoch id (stmts : Xplan.stmt array) memo_id =
    incr epochs_executed;
    let t0 = Machine.time (Memsys.machine sys) in
    let memo = main.e_memos.(memo_id) in
    memo.mn <- 0;
    Array.iter (main.e_stmt 0 memo) stmts;
    Memsys.epoch_boundary sys;
    record_epoch id (Machine.time (Memsys.machine sys) - t0)
  in
  let rec exec_nodes nodes =
    Array.iter
      (fun node ->
        match node with
        | Xplan.NPar (id, l, reds) -> exec_parallel id l reds
        | Xplan.NSer (id, stmts, memo_id) -> exec_serial_epoch id stmts memo_id
        | Xplan.NLoop { s_var; s_lo; s_hi; s_step; s_body } ->
            let first = eval_bound 0 s_lo in
            let last = eval_bound 0 s_hi in
            let v = ref first in
            let continue () = if s_step > 0 then !v <= last else !v >= last in
            while continue () do
              for pe = 0 to n - 1 do
                iframe.(pe).(s_var) <- !v;
                ibound.(pe).(s_var) <- true
              done;
              exec_nodes s_body;
              v := !v + s_step
            done
        | Xplan.NBranch (c, memo_id, a, b) ->
            let memo = main.e_memos.(memo_id) in
            memo.mn <- 0;
            if main.e_cond 0 memo c then exec_nodes a else exec_nodes b)
      nodes
  in
  exec_nodes xp.Xplan.nodes;
  let mach = Memsys.machine sys in
  {
    mode;
    cycles = Machine.time mach;
    stats = Machine.total_stats mach;
    per_pe_cycles = Array.init n (fun pe -> (Machine.pe mach pe).Pe.clock);
    epochs = !epochs_executed;
    epoch_profile =
      Hashtbl.fold (fun id (n, c) acc -> (id, n, c) :: acc) profile []
      |> List.sort compare;
    sys;
  }

let pp_profile ppf (ep : Epoch.t) r =
  let descr : (int, string) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (id, e) ->
      Hashtbl.replace descr id
        (match e with
        | Epoch.Par l -> Printf.sprintf "parallel doall %s" l.Stmt.var
        | Epoch.Ser ss -> Printf.sprintf "serial (%d stmts)" (List.length ss)))
    (Epoch.all ep);
  let total = max 1 r.cycles in
  Format.fprintf ppf "@[<v>epoch profile (%d machine cycles total):@," r.cycles;
  List.iter
    (fun (id, n, c) ->
      Format.fprintf ppf "  epoch %d %-24s x%-5d %9d cycles (%4.1f%%)@," id
        (match Hashtbl.find_opt descr id with Some d -> d | None -> "?")
        n c
        (100.0 *. float_of_int c /. float_of_int total))
    r.epoch_profile;
  Format.fprintf ppf "@]"

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%s: %d cycles over %d epoch executions@,%a@]"
    (Memsys.mode_name r.mode) r.cycles r.epochs Stats.pp r.stats
