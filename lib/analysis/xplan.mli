(** Compile-once execution plans for the interpreter.

    {!lower} translates a (call-free) program — already epoch-partitioned
    and annotated — into a form the runtime executes without touching the
    string-keyed IR again:

    - induction variables / integer parameters and task-private scalars
      become slots in dense int- and float-indexed frames ({!layout});
    - affine subscripts and bounds are strength-reduced to
      [base + sum coef * frame.(slot)] evaluators ({!aff});
    - every static array reference occurrence gets a dense access uid
      ([reads]/[writes] map it back to the {!Ccdp_ir.Reference.t}), against
      which the runtime pre-resolves address handles, read routes and
      scratch index buffers;
    - every statement-level register-memo scope (a loop iteration, a serial
      epoch body, a branch condition) gets a dense id and a static
      capacity, so the engine reuses flat buffers keyed by canonical
      address instead of allocating a hashtable per iteration;
    - prefetch operations are pre-bound to their lowered references
      ({!sp}, {!vec}).

    Lowering is pure bookkeeping: the execution semantics (including
    evaluation order, cycle charges and unbound-variable errors) are
    defined by {!Ccdp_runtime.Interp} and checked cycle-exactly against
    {!Ccdp_runtime.Interp_ref}.

    One caveat inherited from keying register memos by canonical address:
    a program whose subscripts run out of an array's declared bounds can
    alias two IR-distinct elements onto one address. Such programs already
    read/write aliased simulated memory; the memo then also aliases their
    register copies. In-bounds programs (everything the generators and
    workloads produce) are unaffected. *)

open Ccdp_ir

type layout = {
  int_index : (string, int) Hashtbl.t;
  flt_index : (string, int) Hashtbl.t;
  int_names : string array;  (** slot -> induction variable / parameter *)
  flt_names : string array;  (** slot -> task-private scalar *)
}

(** value = [abase] + sum over k of [acoefs.(k) * frame.(aslots.(k))] *)
type aff = { abase : int; acoefs : int array; aslots : int array }

type lbound = Fin of aff | Unk

type xref = {
  xr : Reference.t;
  xsubs : aff array;
  xacc : int;  (** read uid for read occurrences, write uid for Assign dst *)
}

type fexpr =
  | XConst of float
  | XIvar of int
  | XSvar of int
  | XRead of xref
  | XUnop of Fexpr.unop * fexpr
  | XBinop of Fexpr.binop * fexpr * fexpr

type cond =
  | XIcond of Stmt.cmp * aff * aff
  | XFcond of Stmt.cmp * fexpr * fexpr

(** Software-pipelined prefetch of one reference at a loop. *)
type sp = { sp_ref : xref; sp_dist : int; sp_every : int; sp_clean : bool }

(** Vector (block) prefetch of a reference group at loop entry; [v_inner]
    is the lowered nested loop a two-level pull additionally sweeps. *)
type vec = { v_members : xref array; v_clean : bool; v_inner : loop option }

and stmt =
  | XAssign of { xflops : int; dst : xref; src : fexpr }
  | XSassign of { xflops : int; slot : int; src : fexpr }
  | XIf of cond * stmt array * stmt array
  | XFor of loop
  | XCritical of { xc_lock : string; xc_body : stmt array }
      (** lock-protected section: acquire, run body, release; acquire
          flushes the register memo (cached shared values must be re-read
          past the frontier) *)
  | XReduce of { xflops : int; slot : int; rop : Fexpr.binop; src : fexpr }
      (** per-PE partial accumulation into the float frame; merged by the
          enclosing {!NPar}'s [xred] list at the barrier *)

and loop = {
  l_src : Stmt.loop;  (** the IR loop (schedule kind, loop_id) *)
  l_uid : int;  (** dense uid across all lowered loops *)
  l_var : int;
  l_lo : lbound;
  l_hi : lbound;
  l_step : int;
  l_body : stmt array;
  l_memo : int;  (** register-memo scope of one iteration of this loop *)
  l_vecs : vec array;
  l_sps : sp array;
}

(** Reduction merged at a DOALL's barrier: per-PE partials in the float
    frame's [rd_slot], combined PE-major with [rd_op] and broadcast. *)
type xred = { rd_slot : int; rd_op : Fexpr.binop }

type node =
  | NPar of int * loop * xred array
      (** epoch id, the DOALL, its reductions *)
  | NSer of int * stmt array * int  (** epoch id, body, memo scope *)
  | NLoop of {
      s_var : int;
      s_lo : lbound;
      s_hi : lbound;
      s_step : int;
      s_body : node array;
    }
  | NBranch of cond * int * node array * node array
      (** condition, memo scope for its evaluation, then/else *)

type t = {
  lay : layout;
  nodes : node array;
  params : (int * int) array;  (** (slot, value) preloads *)
  reads : Reference.t array;  (** read uid -> static reference *)
  writes : Reference.t array;  (** write uid -> static reference *)
  memo_caps : int array;
      (** memo scope -> max distinct elements touched in the scope (If
          branches counted both-sides, nested loops excluded: they have
          their own scope) *)
  n_loops : int;
  sp_counts : int array;  (** loop uid -> number of sp ops (engine state) *)
}

val n_int : t -> int
val n_flt : t -> int

(** @raise Invalid_argument if the program contains a [Call]. *)
val lower : Program.t -> Epoch.t -> Annot.plan -> t
