(** Source spans for IR nodes.

    Programs parsed from CRAFT text carry the 1-based line and column of
    each reference and loop header, so diagnostics can point back at the
    [.craft] source. Programs assembled through {!Builder} carry the
    [Synthetic] location instead — the builder has no source text to point
    at — and every consumer must stay total over it. *)

type t = Synthetic | Src of { line : int; col : int }

val synthetic : t
val src : line:int -> col:int -> t
val is_src : t -> bool
val line : t -> int option
val col : t -> int option

(** Located spans order before synthetic ones, then by (line, col). *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
