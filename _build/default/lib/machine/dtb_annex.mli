(** DTB Annex model.

    On the T3D every remote access goes through a small table that
    translates a global logical address to (PE number, local address); a
    prefetch to a new remote PE must first write an Annex entry, a
    significant overhead (paper Section 5.1). We model the Annex as an LRU
    cache of remote PE numbers: touching a PE already resident is free,
    otherwise the caller charges the set-up cost. *)

type t

val create : entries:int -> t

(** [touch t pe] returns [true] when the translation was already resident
    (no set-up cost); inserts/refreshes it either way. *)
val touch : t -> int -> bool

val clear : t -> unit
val resident : t -> int list
