(** CRAFT-style data distribution specifications.

    The Cray MPP Fortran (CRAFT) language distributes each dimension of a
    shared array independently (paper Section 5.1). We support the per-
    dimension patterns the case studies use, plus whole-array replication
    for read-only data. The owner/offset arithmetic lives in
    {!Ccdp_craft.Layout}; this module is only the specification carried by
    array declarations. *)

(** Distribution of one array dimension. *)
type dim_dist =
  | Block  (** contiguous chunks of ceil(n/p) elements per PE *)
  | Cyclic  (** element [i] lives on PE [i mod p] *)
  | Block_cyclic of int  (** blocks of the given width dealt round-robin *)
  | Degenerate  (** not distributed: the whole dimension stays together *)

type t =
  | Dims of dim_dist array
      (** per-dimension distribution; at most one non-[Degenerate] dimension
          is supported by the layout (as in the paper's case studies, which
          always distribute columns) *)
  | Replicated  (** every PE holds a private full copy (never stale) *)

(** All dimensions degenerate except the given one, which is [Block]. *)
val block_along : rank:int -> dim:int -> t

(** All dimensions degenerate except the given one, which is [Cyclic]. *)
val cyclic_along : rank:int -> dim:int -> t

val replicated : t

(** The index of the distributed dimension, if any. *)
val distributed_dim : t -> int option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
