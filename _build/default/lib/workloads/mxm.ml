open Ccdp_ir
module B = Builder
module F = Builder.F

let program ~n =
  if n mod 4 <> 0 then invalid_arg "Mxm.program: n must be a multiple of 4";
  let b = B.create ~name:"mxm" () in
  B.param b "n" n;
  let dist = Dist.block_along ~rank:2 ~dim:1 in
  B.array_ b "A" [| n; n |] ~dist;
  B.array_ b "B" [| n; n |] ~dist;
  B.array_ b "C" [| n; n |] ~dist;
  let open B.A in
  let rd = B.rd b in
  let i = v "i" and j = v "j" and k = v "k" in
  let fi = F.iv "i" and fj = F.iv "j" in
  let scale = 1.0 /. float_of_int n in
  let init =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "A" [ i; j ]
              F.(((fi - fj) * const scale) + const 1.0);
            B.assign b "B" [ i; j ]
              F.(((fi + (const 2.0 * fj)) * const scale) - const 0.5);
            B.assign b "C" [ i; j ] (F.const 0.0);
          ];
      ]
  in
  let term dk =
    F.(rd "A" [ i; k +! c dk ] * rd "B" [ k +! c dk; j ])
  in
  let compute =
    B.for_ b "k" (bc 0)
      (bc (n - 1))
      ~step:4
      [
        B.doall b "j" (bc 0)
          (bc (n - 1))
          [
            B.for_ b "i" (bc 0)
              (bc (n - 1))
              [
                B.assign b "C" [ i; j ]
                  F.(rd "C" [ i; j ] + term 0 + term 1 + term 2 + term 3);
              ];
          ];
      ]
  in
  B.finish b [ init; compute ]

let workload ~n =
  Workload.make ~name:"mxm"
    ~descr:
      (Printf.sprintf
         "matrix multiply %dx%d, unrolled by 4, block-distributed columns" n n)
    (program ~n)
