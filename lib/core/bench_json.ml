(* Hand-rolled JSON emission: the documents are small and flat, and the
   toolchain pin has no yojson, so a minimal printer keeps the bench
   binary dependency-free. Strings are escaped per RFC 8259; floats are
   printed with a fixed format so payloads compare byte-for-byte. *)

let buf_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_float b f =
  (* %.6f is locale-independent and total for the finite ratios we emit *)
  Buffer.add_string b (Printf.sprintf "%.6f" f)

let buf_list b emit xs =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      emit b x)
    xs;
  Buffer.add_char b ']'

type perf_row = {
  p_workload : string;
  p_mode : string;
  p_engine : string;
  p_pes : int;
  p_jobs : int;
  p_wall_s : float;
  p_cycles : int;
  p_cycles_per_s : float;
  p_accesses : int;
  p_accesses_per_s : float;
  p_minor_words : float;
}

type t = {
  bench : string;
  mutable rows : Experiment.row list;  (* in order *)
  mutable tables : Experiment.table list;  (* reversed *)
  mutable perf : perf_row list;  (* reversed *)
  mutable rivals : Experiment.rival_row list;  (* in order *)
}

let create ~bench = { bench; rows = []; tables = []; perf = []; rivals = [] }
let add_rows t rows = t.rows <- t.rows @ rows
let add_table t tbl = t.tables <- tbl :: t.tables
let add_perf t row = t.perf <- row :: t.perf
let add_rivals t rows = t.rivals <- t.rivals @ rows

let buf_row b (r : Experiment.row) =
  Buffer.add_string b "{\"workload\":";
  buf_string b r.Experiment.workload;
  Buffer.add_string b (Printf.sprintf ",\"pes\":%d" r.Experiment.pes);
  Buffer.add_string b
    (Printf.sprintf ",\"seq_cycles\":%d,\"base_cycles\":%d,\"ccdp_cycles\":%d"
       r.Experiment.seq_cycles r.Experiment.base_cycles r.Experiment.ccdp_cycles);
  Buffer.add_string b ",\"base_speedup\":";
  buf_float b (Experiment.base_speedup r);
  Buffer.add_string b ",\"ccdp_speedup\":";
  buf_float b (Experiment.ccdp_speedup r);
  Buffer.add_string b ",\"improvement_pct\":";
  buf_float b (Experiment.improvement r);
  Buffer.add_string b
    (Printf.sprintf ",\"base_ok\":%b,\"ccdp_ok\":%b}" r.Experiment.base_ok
       r.Experiment.ccdp_ok)

let buf_table b (tbl : Experiment.table) =
  Buffer.add_string b "{\"title\":";
  buf_string b tbl.Experiment.title;
  Buffer.add_string b ",\"headers\":";
  buf_list b buf_string tbl.Experiment.headers;
  Buffer.add_string b ",\"rows\":";
  buf_list b (fun b row -> buf_list b buf_string row) tbl.Experiment.trows;
  Buffer.add_char b '}'

let buf_perf_row b r =
  Buffer.add_string b "{\"workload\":";
  buf_string b r.p_workload;
  Buffer.add_string b ",\"mode\":";
  buf_string b r.p_mode;
  Buffer.add_string b ",\"engine\":";
  buf_string b r.p_engine;
  Buffer.add_string b (Printf.sprintf ",\"pes\":%d" r.p_pes);
  Buffer.add_string b (Printf.sprintf ",\"jobs\":%d" r.p_jobs);
  Buffer.add_string b ",\"wall_s\":";
  buf_float b r.p_wall_s;
  Buffer.add_string b (Printf.sprintf ",\"cycles\":%d" r.p_cycles);
  Buffer.add_string b ",\"cycles_per_s\":";
  buf_float b r.p_cycles_per_s;
  Buffer.add_string b (Printf.sprintf ",\"accesses\":%d" r.p_accesses);
  Buffer.add_string b ",\"accesses_per_s\":";
  buf_float b r.p_accesses_per_s;
  Buffer.add_string b ",\"minor_words\":";
  buf_float b r.p_minor_words;
  Buffer.add_char b '}'

let buf_rival_row b (r : Experiment.rival_row) =
  let s = r.Experiment.rv_stats in
  Buffer.add_string b "{\"workload\":";
  buf_string b r.Experiment.rv_workload;
  Buffer.add_string b ",\"machine\":";
  buf_string b r.Experiment.rv_machine;
  Buffer.add_string b ",\"mode\":";
  buf_string b r.Experiment.rv_mode;
  Buffer.add_string b
    (Printf.sprintf ",\"pes\":%d,\"cycles\":%d" r.Experiment.rv_pes
       r.Experiment.rv_cycles);
  Buffer.add_string b ",\"norm\":";
  buf_float b r.Experiment.rv_norm;
  Buffer.add_string b
    (Printf.sprintf
       ",\"ok\":%b,\"invalidations\":%d,\"upgrades\":%d,\"dir_msgs\":%d,\"bus_conflicts\":%d,\"link_conflicts\":%d}"
       r.Experiment.rv_ok s.Ccdp_machine.Stats.invalidations
       s.Ccdp_machine.Stats.upgrades s.Ccdp_machine.Stats.dir_msgs
       s.Ccdp_machine.Stats.bus_conflicts s.Ccdp_machine.Stats.link_conflicts)

(* Each section key appears only when it has content: a bench that never
   produced evaluation rows or tables (perf, rivals) carries no dead
   "rows":[] / "tables":[] keys, and every other bench's payload is
   unchanged byte-for-byte. *)
let payload_body t =
  let b = Buffer.create 1024 in
  let first = ref true in
  let key name =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_char b '"';
    Buffer.add_string b name;
    Buffer.add_string b "\":"
  in
  if t.rows <> [] then (
    key "rows";
    buf_list b buf_row t.rows);
  if t.tables <> [] then (
    key "tables";
    buf_list b buf_table (List.rev t.tables));
  if t.perf <> [] then (
    key "perf";
    buf_list b buf_perf_row (List.rev t.perf));
  if t.rivals <> [] then (
    key "rivals";
    buf_list b buf_rival_row t.rivals);
  Buffer.contents b

let payload_string t = "{" ^ payload_body t ^ "}"

let to_string t ~jobs ~wall_clock_s =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"bench\":";
  buf_string b t.bench;
  Buffer.add_string b (Printf.sprintf ",\"jobs\":%d" jobs);
  Buffer.add_string b ",\"wall_clock_s\":";
  buf_float b wall_clock_s;
  let body = payload_body t in
  if body <> "" then (
    Buffer.add_char b ',';
    Buffer.add_string b body);
  Buffer.add_char b '}';
  Buffer.contents b

let write ?(dir = ".") t ~jobs ~wall_clock_s =
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" t.bench) in
  let oc = open_out path in
  output_string oc (to_string t ~jobs ~wall_clock_s);
  output_char oc '\n';
  close_out oc;
  path
