type t = Synthetic | Src of { line : int; col : int }

let synthetic = Synthetic
let src ~line ~col = Src { line; col }
let is_src = function Src _ -> true | Synthetic -> false

let line = function Src { line; _ } -> Some line | Synthetic -> None
let col = function Src { col; _ } -> Some col | Synthetic -> None

let compare a b =
  match (a, b) with
  | Synthetic, Synthetic -> 0
  | Synthetic, Src _ -> 1 (* located diagnostics sort first *)
  | Src _, Synthetic -> -1
  | Src a, Src b ->
      let c = Stdlib.compare a.line b.line in
      if c <> 0 then c else Stdlib.compare a.col b.col

let pp ppf = function
  | Synthetic -> Format.pp_print_string ppf "<builder>"
  | Src { line; col } -> Format.fprintf ppf "%d:%d" line col

let to_string l = Format.asprintf "%a" pp l
