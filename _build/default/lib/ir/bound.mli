(** Loop bounds.

    A bound is an affine expression in enclosing induction variables and
    program parameters, statically [Unknown], or [Opaque] — an affine
    expression the {e runtime} can evaluate but which the analyses must
    treat as unknown (modelling bounds computed at run time, e.g. read from
    input). Unknown/opaque bounds force the conservative branches of the
    prefetch scheduling algorithm (paper Fig. 2: serial loops with unknown
    bounds skip vector prefetch generation; DOALL loops with unknown bounds
    fall back to moving-back prefetches). *)

type t = Known of Affine.t | Opaque of Affine.t | Unknown

val known : Affine.t -> t
val of_int : int -> t
val of_var : string -> t
val opaque : Affine.t -> t
val unknown : t

(** Visible to the compile-time analyses? *)
val is_known : t -> bool

(** Analysis-time evaluation; [None] when unknown, opaque, or when the
    expression mentions an unbound variable. *)
val eval : t -> (string * int) list -> int option

(** Runtime evaluation: resolves both [Known] and [Opaque].
    @raise Invalid_argument on [Unknown].
    @raise Not_found when a variable is unbound. *)
val eval_exec : t -> (string -> int) -> int

val subst_env : t -> (string * Affine.t) list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
