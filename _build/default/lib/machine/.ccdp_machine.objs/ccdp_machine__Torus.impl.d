lib/machine/torus.ml: Float Format
