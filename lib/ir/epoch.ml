type epoch = Par of Stmt.loop | Ser of Stmt.t list

type node =
  | E of int * epoch
  | Loop of Stmt.loop * node list
  | Branch of Stmt.cond * node list * node list

type t = { nodes : node list; count : int }

let rec contains_doall stmts =
  List.exists
    (fun s ->
      match s with
      | Stmt.For { kind = Stmt.Doall _; _ } -> true
      | Stmt.For { body; _ } -> contains_doall body
      | Stmt.If (_, t, e) -> contains_doall t || contains_doall e
      | Stmt.Critical { cbody; _ } -> contains_doall cbody
      | Stmt.Assign _ | Stmt.Sassign _ | Stmt.Reduce _ -> false
      | Stmt.Call _ -> invalid_arg "Epoch.partition: program contains calls; inline first")
    stmts

let partition stmts =
  let counter = ref 0 in
  let fresh () = let id = !counter in incr counter; id in
  let rec walk stmts =
    let flush buf acc =
      match buf with [] -> acc | _ -> E (fresh (), Ser (List.rev buf)) :: acc
    in
    let buf, acc =
      List.fold_left
        (fun (buf, acc) s ->
          match s with
          | Stmt.For ({ kind = Stmt.Doall _; _ } as l) ->
              ([], E (fresh (), Par l) :: flush buf acc)
          | Stmt.For l when contains_doall l.body ->
              ([], Loop (l, walk l.body) :: flush buf acc)
          | Stmt.If (c, t, e) when contains_doall t || contains_doall e ->
              ([], Branch (c, walk t, walk e) :: flush buf acc)
          | Stmt.Call _ ->
              invalid_arg "Epoch.partition: program contains calls; inline first"
          | Stmt.Critical { cbody; _ } when contains_doall cbody ->
              invalid_arg "Epoch.partition: DOALL inside critical section"
          | Stmt.Assign _ | Stmt.Sassign _ | Stmt.For _ | Stmt.If _
          | Stmt.Critical _ | Stmt.Reduce _ ->
              (s :: buf, acc))
        ([], []) stmts
    in
    List.rev (flush buf acc)
  in
  let nodes = walk stmts in
  { nodes; count = !counter }

let all t =
  let rec collect acc nodes =
    List.fold_left
      (fun acc n ->
        match n with
        | E (id, e) -> (id, e) :: acc
        | Loop (_, body) -> collect acc body
        | Branch (_, a, b) -> collect (collect acc a) b)
      acc nodes
  in
  List.rev (collect [] t.nodes)

let stmts_of = function Par l -> [ Stmt.For l ] | Ser ss -> ss

let rec pp_node ppf = function
  | E (id, Par l) ->
      Format.fprintf ppf "epoch %d: parallel doall %s (loop %d)" id l.Stmt.var
        l.Stmt.loop_id
  | E (id, Ser ss) -> Format.fprintf ppf "epoch %d: serial (%d stmts)" id (List.length ss)
  | Loop (l, body) ->
      Format.fprintf ppf "@[<v 2>serial loop %s {@,%a@]@,}" l.Stmt.var
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_node)
        body
  | Branch (_, t, e) ->
      Format.fprintf ppf "@[<v 2>branch {@,%a@]@,}%a"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_node) t
        (fun ppf e ->
          if e <> [] then
            Format.fprintf ppf "@[<v 2> else {@,%a@]@,}"
              (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_node) e)
        e

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_node)
    t.nodes
