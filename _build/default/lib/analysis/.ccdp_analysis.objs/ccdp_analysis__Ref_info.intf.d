lib/analysis/ref_info.mli: Ccdp_ir Format Hashtbl
