test/test_stmt.mli:
