test/test_section.ml: Affine Alcotest Ccdp_ir Ccdp_test_support List QCheck Section
