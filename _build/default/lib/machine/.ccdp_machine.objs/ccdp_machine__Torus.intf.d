lib/machine/torus.mli: Format
