open Ccdp_ir
module Net = Ccdp_machine.Net
module B = Builder
module F = Builder.F

type sched = Block | Aligned | Cyclic | Dynamic of int

type stmt_desc = {
  dst : int;
  doi : int;
  reads : (int * int * int) list;
  guarded : bool;
}

(* Commutative-associative reduction operators the generator draws; Add
   stays exact because every generated value is a small dyadic (powers of
   two times small integers), Min/Max are order-independent outright. *)
type rop = Radd | Rmin | Rmax

type epoch_desc =
  | Par of {
      sched : sched;
      lo1 : bool;
      opaque_hi : bool;
      stmts : stmt_desc list;
    }
  | Sweep of { src : int; col : int; dst : int }
  | Lock of {
      sched : sched;  (** Block or Cyclic (varies PE contribution order) *)
      src : int;
      dst : int;  (** forced distinct from [src] by [sanitize_epoch] *)
      col : int;
      col2 : int;
      fused : bool;  (** both accumulator cells under one lock *)
    }
      (** every task folds a column entry into two fixed accumulator cells
          [dst(0,col)] and [dst(1,col2)] inside critical sections — the
          cross-PE conflict lock-domination must discharge, and the
          in-critical accumulator reads are the acquire-frontier staleness
          obligation *)
  | Red of { sched : sched; op : rop; src : int; dst : int; seed : bool }
      (** a recognized [rs = rs op src(i,j)] reduction over the whole
          array, consumed by a serial write into [dst(0,1)]; [seed] binds
          [rs] before the DOALL (otherwise the first contribution seeds) *)

type desc = {
  n : int;
  dist_dim : int;
  n_pes : int;
  net : Net.kind;
  pclean : bool;
  epochs : epoch_desc list;
  wrap : bool;
}

let array_names = [ "A0"; "A1"; "A2" ]
let n_arrays = List.length array_names

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let int_range rng lo hi = lo + Random.State.int rng (hi - lo + 1)
let pick rng l = List.nth l (Random.State.int rng (List.length l))

let gen_stmt rng =
  let dst = int_range rng 0 (n_arrays - 1) in
  let doi = int_range rng (-1) 1 in
  let guarded = int_range rng 0 3 = 0 in
  let nreads = int_range rng 1 3 in
  let reads =
    List.init nreads (fun _ ->
        (int_range rng 0 (n_arrays - 1), int_range rng (-1) 1, int_range rng (-1) 1))
  in
  { dst; doi; reads; guarded }

let gen_epoch rng n =
  match int_range rng 0 9 with
  | 0 | 1 ->
      Sweep
        {
          src = int_range rng 0 (n_arrays - 1);
          col = int_range rng 1 (n - 2);
          dst = int_range rng 0 (n_arrays - 1);
        }
  | 2 | 3 ->
      let src = int_range rng 0 (n_arrays - 1) in
      Lock
        {
          sched = (if Random.State.bool rng then Block else Cyclic);
          src;
          dst = (src + 1 + int_range rng 0 (n_arrays - 2)) mod n_arrays;
          col = int_range rng 0 (n - 1);
          col2 = int_range rng 0 (n - 1);
          fused = Random.State.bool rng;
        }
  | 4 ->
      Red
        {
          sched = (if Random.State.bool rng then Block else Cyclic);
          op = pick rng [ Radd; Radd; Rmin; Rmax ];
          src = int_range rng 0 (n_arrays - 1);
          dst = int_range rng 0 (n_arrays - 1);
          seed = Random.State.bool rng;
        }
  | _ ->
      let sched =
        match int_range rng 0 3 with
        | 0 -> Block
        | 1 -> Aligned
        | 2 -> Cyclic
        | _ -> Dynamic (pick rng [ 1; 2; 3 ])
      in
      Par
        {
          sched;
          lo1 = Random.State.bool rng;
          opaque_hi = int_range rng 0 3 = 0;
          stmts = List.init (int_range rng 1 2) (fun _ -> gen_stmt rng);
        }

let generate rng =
  let n = pick rng [ 8; 12; 16 ] in
  {
    n;
    dist_dim = int_range rng 0 1;
    n_pes = pick rng [ 2; 3; 4; 8 ];
    net =
      (* uniform half the time; each geometry gets an even share of the rest *)
      pick rng
        [ Net.Uniform; Net.Uniform; Net.Uniform;
          Net.Torus3d; Net.Mesh2d; Net.Crossbar ];
    pclean = Random.State.bool rng;
    epochs = List.init (int_range rng 2 4) (fun _ -> gen_epoch rng n);
    wrap = Random.State.bool rng;
  }

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

(* Race-freedom discipline per parallel epoch: an array is either only
   read or only written, and writes stay within the task's own DOALL
   column. Reads of written arrays are dropped; when every array is
   written the statement degenerates to a constant store. *)
let sanitize_epoch e =
  match e with
  | Sweep _ | Red _ -> e
  | Lock l ->
      (* the accumulator array must not double as the contribution source:
         a mid-epoch read of a cell other tasks are accumulating into
         would observe an order-dependent partial sum *)
      if l.dst = l.src then Lock { l with dst = (l.src + 1) mod n_arrays }
      else e
  | Par p ->
      let written = List.map (fun s -> s.dst) p.stmts in
      let stmts =
        List.map
          (fun s ->
            let ok (a, _, _) = not (List.mem a written) in
            let reads = List.filter ok s.reads in
            let reads =
              if reads <> [] then reads
              else List.filter ok [ ((s.dst + 1) mod n_arrays, 0, 0) ]
            in
            { s with reads })
          p.stmts
      in
      Par { p with stmts }

let build (d : desc) =
  let n = d.n in
  let b = B.create ~name:"fuzz" () in
  B.param b "n" n;
  let dist = Dist.block_along ~rank:2 ~dim:d.dist_dim in
  List.iter (fun a -> B.array_ b a [| n; n |] ~dist) array_names;
  let open B.A in
  let arr k = List.nth array_names k in
  let init =
    (* deterministic full initialization of every array *)
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          (List.mapi
             (fun k a ->
               B.assign b a
                 [ v "i"; v "j" ]
                 F.(
                   (iv "i" * const (0.25 +. (0.125 *. float_of_int k)))
                   - (iv "j" * const 0.0625)))
             array_names);
      ]
  in
  let mk_epoch e =
    match sanitize_epoch e with
    | Lock { sched; src; dst; col; col2; fused } ->
        let sched =
          match sched with
          | Cyclic -> Stmt.Static_cyclic
          | Block | Aligned | Dynamic _ -> Stmt.Static_block
        in
        let l2 = if fused then "l0" else "l1" in
        let acc row col lk scale =
          B.critical lk
            [
              B.assign b (arr dst)
                [ c row; c col ]
                F.(
                  B.rd b (arr dst) [ c row; c col ]
                  + (B.rd b (arr src) [ v "j"; c col ] * const scale));
            ]
        in
        [
          B.doall b ~sched "j" (bc 0)
            (bc (n - 1))
            [ acc 0 col "l0" 0.0625; acc 1 col2 l2 0.03125 ];
        ]
    | Red { sched; op; src; dst; seed } ->
        let sched =
          match sched with
          | Cyclic -> Stmt.Static_cyclic
          | Block | Aligned | Dynamic _ -> Stmt.Static_block
        in
        let fop =
          match op with
          | Radd -> Fexpr.Add
          | Rmin -> Fexpr.Min
          | Rmax -> Fexpr.Max
        in
        (if seed then [ Stmt.Sassign ("rs", F.const 0.5) ] else [])
        @ [
            B.doall b ~sched "j" (bc 0)
              (bc (n - 1))
              [
                B.for_ b "i" (bc 0)
                  (bc (n - 1))
                  [
                    B.reduce fop "rs"
                      F.(B.rd b (arr src) [ v "i"; v "j" ] * const 0.0625);
                  ];
              ];
            B.assign b (arr dst) [ c 0; c 1 ] F.(sv "rs" * const 0.5);
          ]
    | Sweep { src; col; dst } ->
        [
          Stmt.Sassign ("acc", F.const 0.0);
          B.for_ b "k" (bc 1)
            (bc (n - 2))
            [
              Stmt.Sassign
                ("acc", F.(sv "acc" + B.rd b (arr src) [ v "k"; c col ]));
            ];
          B.assign b (arr dst) [ c 0; c 0 ] F.(sv "acc" * const 0.03125);
        ]
    | Par { sched; lo1; opaque_hi; stmts } ->
        let sched =
          match sched with
          | Block -> Stmt.Static_block
          | Aligned -> Stmt.Static_aligned n
          | Cyclic -> Stmt.Static_cyclic
          | Dynamic c -> Stmt.Dynamic c
        in
        let lo = if lo1 then 1 else 0 and hi = if lo1 then n - 2 else n - 1 in
        let hi_bound =
          if opaque_hi then Bound.opaque (Affine.const hi) else bc hi
        in
        (* stencil offsets are only safe on the clipped sub-range *)
        let clip o = if lo1 then o else 0 in
        [
          B.doall b ~sched "j" (bc lo) hi_bound
            [
              B.for_ b "i" (bc lo) (bc hi)
                (List.map
                   (fun s ->
                     let rhs =
                       List.fold_left
                         (fun acc (a, oi, oj) ->
                           F.(
                             acc
                             + B.rd b (arr a)
                                 [ v "i" +! c (clip oi); v "j" +! c (clip oj) ]))
                         (F.const 0.5) s.reads
                     in
                     let assign =
                       B.assign b (arr s.dst)
                         [ v "i" +! c (clip s.doi); v "j" ]
                         F.(rhs * const 0.125)
                     in
                     if s.guarded then
                       (* structural guard: the analyses must treat both
                          branches as possible; the else branch writes the
                          same element so the write-set stays race-free *)
                       Stmt.If
                         ( Stmt.Icond (Stmt.Lt, v "i", c ((n / 2) + lo)),
                           [ assign ],
                           [
                             B.assign b (arr s.dst)
                               [ v "i" +! c (clip s.doi); v "j" ]
                               (F.const 0.25);
                           ] )
                     else assign)
                   stmts);
            ];
        ]
  in
  let body = List.concat_map mk_epoch d.epochs in
  let main =
    if d.wrap then [ init; B.for_ b "t" (bc 1) (bc 2) body ] else init :: body
  in
  B.finish b main

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

(* numeric range of an affine subscript over an iteration-space
   environment; None when a variable is unresolved (opaque bound) *)
let affine_range env e =
  List.fold_left
    (fun acc v ->
      match (acc, List.assoc_opt v env) with
      | None, _ | _, None -> None
      | Some (mn, mx), Some (lo, hi, _) ->
          let c = Affine.coeff e v in
          if c >= 0 then Some (mn + (c * lo), mx + (c * hi))
          else Some (mn + (c * hi), mx + (c * lo)))
    (Some (Affine.const_part e, Affine.const_part e))
    (Affine.vars e)

(* every reference whose subscript ranges resolve must stay inside its
   array's extents; opaque-bound loops widen to unknown and are skipped
   (the interpreter still bounds-checks those at run time) *)
let subscript_problems (p : Program.t) =
  let problems = ref [] in
  let check_ref env (r : Reference.t) =
    match Program.find_array_opt p r.Reference.array_name with
    | None -> ()
    | Some decl ->
        Array.iteri
          (fun k e ->
            match affine_range env e with
            | None -> ()
            | Some (lo, hi) ->
                let extent = decl.Array_decl.dims.(k) in
                if lo < 0 || hi >= extent then
                  problems :=
                    Printf.sprintf
                      "reference %d of %s: dimension %d spans [%d, %d] outside \
                       [0, %d)"
                      r.Reference.id r.Reference.array_name k lo hi extent
                    :: !problems)
          r.Reference.subs
  in
  let rec walk loops stmts =
    let env = Ccdp_analysis.Iterspace.of_loops ~params:p.Program.params loops in
    List.iter
      (fun s ->
        (match Stmt.direct_write s with
        | Some r -> check_ref env r
        | None -> ());
        List.iter (check_ref env) (Stmt.direct_reads s);
        match s with
        | Stmt.For l -> walk (loops @ [ l ]) l.Stmt.body
        | Stmt.If (_, a, b) ->
            walk loops a;
            walk loops b
        | Stmt.Critical cr -> walk loops cr.Stmt.cbody
        | Stmt.Assign _ | Stmt.Sassign _ | Stmt.Reduce _ | Stmt.Call _ -> ())
      stmts
  in
  walk [] p.Program.main;
  List.rev !problems

let validate (d : desc) =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let in_arrays k = 0 <= k && k < n_arrays in
  let small o = -1 <= o && o <= 1 in
  let check_epoch i e =
    match e with
    | Lock { src; dst; col; col2; _ } ->
        if not (in_arrays src && in_arrays dst) then
          err "epoch %d: lock array index out of range" i
        else if col < 0 || col >= d.n || col2 < 0 || col2 >= d.n then
          err "epoch %d: lock accumulator column outside [0, %d)" i d.n
        else Ok ()
    | Red { src; dst; _ } ->
        if not (in_arrays src && in_arrays dst) then
          err "epoch %d: reduction array index out of range" i
        else Ok ()
    | Sweep { src; col; dst } ->
        if not (in_arrays src && in_arrays dst) then
          err "epoch %d: sweep array index out of range" i
        else if col < 0 || col >= d.n then
          err "epoch %d: sweep column %d outside [0, %d)" i col d.n
        else Ok ()
    | Par { stmts; _ } ->
        if stmts = [] then err "epoch %d: empty parallel epoch" i
        else
          List.fold_left
            (fun acc (s : stmt_desc) ->
              match acc with
              | Error _ -> acc
              | Ok () ->
                  if not (in_arrays s.dst) then
                    err "epoch %d: write array index %d out of range" i s.dst
                  else if not (small s.doi) then
                    err "epoch %d: write row offset %d outside [-1, 1]" i s.doi
                  else if
                    not
                      (List.for_all
                         (fun (a, oi, oj) ->
                           in_arrays a && small oi && small oj)
                         s.reads)
                  then err "epoch %d: read descriptor out of range" i
                  else Ok ())
            (Ok ()) stmts
  in
  let rec check_epochs i = function
    | [] -> Ok ()
    | e :: rest -> (
        match check_epoch i e with
        | Error _ as r -> r
        | Ok () -> check_epochs (i + 1) rest)
  in
  if d.n < 4 then err "array edge %d too small (minimum 4)" d.n
  else if d.dist_dim <> 0 && d.dist_dim <> 1 then
    err "distributed dimension %d not in {0, 1}" d.dist_dim
  else if d.n_pes < 1 then err "PE count %d < 1" d.n_pes
  else if d.epochs = [] then err "no epochs"
  else
    match check_epochs 0 d.epochs with
    | Error _ as r -> r
    | Ok () -> (
        let p = build d in
        match Program.validate p @ subscript_problems p with
        | [] -> Ok ()
        | probs -> Error (String.concat "; " probs))

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_sched ppf = function
  | Block -> Format.fprintf ppf "block"
  | Aligned -> Format.fprintf ppf "aligned"
  | Cyclic -> Format.fprintf ppf "cyclic"
  | Dynamic c -> Format.fprintf ppf "dynamic(%d)" c

let pp_rop ppf = function
  | Radd -> Format.fprintf ppf "add"
  | Rmin -> Format.fprintf ppf "min"
  | Rmax -> Format.fprintf ppf "max"

let pp_epoch ppf = function
  | Lock { sched; src; dst; col; col2; fused } ->
      Format.fprintf ppf "lock %a %s(0,%d),%s(1,%d) += %s%s" pp_sched sched
        (List.nth array_names dst)
        col
        (List.nth array_names dst)
        col2
        (List.nth array_names src)
        (if fused then " fused" else "")
  | Red { sched; op; src; dst; seed } ->
      Format.fprintf ppf "red %a %a over %s -> %s%s" pp_sched sched pp_rop op
        (List.nth array_names src)
        (List.nth array_names dst)
        (if seed then " seeded" else "")
  | Sweep { src; col; dst } ->
      Format.fprintf ppf "sweep %s(:,%d) -> %s" (List.nth array_names src) col
        (List.nth array_names dst)
  | Par { sched; lo1; opaque_hi; stmts } ->
      Format.fprintf ppf "par %a%s%s:" pp_sched sched
        (if lo1 then " lo1" else "")
        (if opaque_hi then " opaque-hi" else "");
      List.iter
        (fun s ->
          Format.fprintf ppf "@,    %s[i%+d,j] <- %s%s"
            (List.nth array_names s.dst) s.doi
            (String.concat " + "
               (List.map
                  (fun (a, oi, oj) ->
                    Printf.sprintf "%s[i%+d,j%+d]" (List.nth array_names a) oi
                      oj)
                  s.reads))
            (if s.guarded then "  (guarded)" else ""))
        stmts

let pp ppf d =
  Format.fprintf ppf
    "@[<v>n=%d dist_dim=%d pes=%d%s%s%s@,%a@]" d.n d.dist_dim d.n_pes
    (if d.net = Net.Uniform then "" else " " ^ Net.kind_name d.net)
    (if d.pclean then " prefetch-clean" else "")
    (if d.wrap then " wrapped(x2)" else "")
    (Format.pp_print_list pp_epoch)
    d.epochs
