lib/machine/dtb_annex.mli:
