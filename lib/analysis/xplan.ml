open Ccdp_ir

(* Compile-once execution plan: the interpreter's input, lowered from the
   IR exactly once per run. Induction variables and scalars become slots in
   int-indexed frames, affine subscripts become strength-reduced
   [base + sum coef*slot] evaluators, every static array reference gets a
   dense access uid (the runtime pre-resolves its address handle, read
   route and scratch index buffer against it), and every register-memo
   scope gets a dense id plus a capacity bound so the engine can reuse
   flat buffers instead of allocating a hashtable per iteration. *)

type layout = {
  int_index : (string, int) Hashtbl.t;
  flt_index : (string, int) Hashtbl.t;
  int_names : string array;  (** slot -> induction variable / parameter *)
  flt_names : string array;  (** slot -> task-private scalar *)
}

(* value = const + sum coefs.(k) * frame.(slots.(k)) *)
type aff = { abase : int; acoefs : int array; aslots : int array }

type lbound = Fin of aff | Unk

type xref = {
  xr : Reference.t;
  xsubs : aff array;
  xacc : int;  (** read uid for read occurrences, write uid for Assign dst *)
}

type fexpr =
  | XConst of float
  | XIvar of int
  | XSvar of int
  | XRead of xref
  | XUnop of Fexpr.unop * fexpr
  | XBinop of Fexpr.binop * fexpr * fexpr

type cond =
  | XIcond of Stmt.cmp * aff * aff
  | XFcond of Stmt.cmp * fexpr * fexpr

(* Software-pipelined prefetch of one reference at a loop. *)
type sp = { sp_ref : xref; sp_dist : int; sp_every : int; sp_clean : bool }

(* Vector (block) prefetch of a reference group at loop entry; [v_inner]
   is the lowered nested loop a two-level pull additionally sweeps. *)
type vec = { v_members : xref array; v_clean : bool; v_inner : loop option }

and stmt =
  | XAssign of { xflops : int; dst : xref; src : fexpr }
  | XSassign of { xflops : int; slot : int; src : fexpr }
  | XIf of cond * stmt array * stmt array
  | XFor of loop
  | XCritical of { xc_lock : string; xc_body : stmt array }
  | XReduce of { xflops : int; slot : int; rop : Fexpr.binop; src : fexpr }

and loop = {
  l_src : Stmt.loop;  (** the IR loop (schedule kind, loop_id) *)
  l_uid : int;  (** dense uid across all lowered loops *)
  l_var : int;
  l_lo : lbound;
  l_hi : lbound;
  l_step : int;
  l_body : stmt array;
  l_memo : int;  (** register-memo scope of one iteration of this loop *)
  l_vecs : vec array;
  l_sps : sp array;
}

(* Reduction merged at a DOALL's barrier: per-PE partials in the float
   frame's [rd_slot], combined PE-major with [rd_op] and broadcast. *)
type xred = { rd_slot : int; rd_op : Fexpr.binop }

type node =
  | NPar of int * loop * xred array  (** epoch id, the DOALL, its reductions *)
  | NSer of int * stmt array * int  (** epoch id, body, memo scope *)
  | NLoop of {
      s_var : int;
      s_lo : lbound;
      s_hi : lbound;
      s_step : int;
      s_body : node array;
    }
  | NBranch of cond * int * node array * node array
      (** condition, memo scope for its evaluation, then/else *)

type t = {
  lay : layout;
  nodes : node array;
  params : (int * int) array;  (** (slot, value) preloads *)
  reads : Reference.t array;  (** read uid -> static reference *)
  writes : Reference.t array;  (** write uid -> static reference *)
  memo_caps : int array;
      (** memo scope -> max distinct elements touched in the scope (If
          branches counted both-sides, nested loops excluded: they have
          their own scope) *)
  n_loops : int;
  sp_counts : int array;  (** loop uid -> number of sp ops (engine state) *)
}

let n_int t = Array.length t.lay.int_names
let n_flt t = Array.length t.lay.flt_names

(* ------------------------------------------------------------------ *)
(* Slot collection                                                     *)
(* ------------------------------------------------------------------ *)

let collect_layout (p : Program.t) =
  let int_index = Hashtbl.create 64 and flt_index = Hashtbl.create 16 in
  let int_rev = ref [] and flt_rev = ref [] in
  let add_int v =
    if not (Hashtbl.mem int_index v) then begin
      Hashtbl.replace int_index v (Hashtbl.length int_index);
      int_rev := v :: !int_rev
    end
  in
  let add_flt v =
    if not (Hashtbl.mem flt_index v) then begin
      Hashtbl.replace flt_index v (Hashtbl.length flt_index);
      flt_rev := v :: !flt_rev
    end
  in
  List.iter (fun (k, _) -> add_int k) p.Program.params;
  let add_aff e = List.iter (fun (v, _) -> add_int v) (Affine.terms e) in
  let add_bound = function
    | Bound.Known e | Bound.Opaque e -> add_aff e
    | Bound.Unknown -> ()
  in
  let rec walk_f = function
    | Fexpr.Const _ -> ()
    | Fexpr.Ivar v -> add_int v
    | Fexpr.Svar v -> add_flt v
    | Fexpr.Ref r -> Array.iter add_aff r.Reference.subs
    | Fexpr.Unop (_, a) -> walk_f a
    | Fexpr.Binop (_, a, b) ->
        walk_f a;
        walk_f b
  in
  let rec walk_s = function
    | Stmt.Assign (r, e) ->
        Array.iter add_aff r.Reference.subs;
        walk_f e
    | Stmt.Sassign (v, e) ->
        add_flt v;
        walk_f e
    | Stmt.For l ->
        add_int l.Stmt.var;
        add_bound l.Stmt.lo;
        add_bound l.Stmt.hi;
        List.iter walk_s l.Stmt.body
    | Stmt.If (c, a, b) ->
        (match c with
        | Stmt.Icond (_, x, y) ->
            add_aff x;
            add_aff y
        | Stmt.Fcond (_, x, y) ->
            walk_f x;
            walk_f y);
        List.iter walk_s a;
        List.iter walk_s b
    | Stmt.Critical c -> List.iter walk_s c.Stmt.cbody
    | Stmt.Reduce r ->
        add_flt r.Stmt.rvar;
        walk_f r.Stmt.rexpr
    | Stmt.Call _ ->
        invalid_arg "Xplan.lower: program contains calls; inline first"
  in
  List.iter walk_s p.Program.main;
  let rev_names tbl rev =
    let a = Array.of_list (List.rev !rev) in
    assert (Array.length a = Hashtbl.length tbl);
    a
  in
  {
    int_index;
    flt_index;
    int_names = rev_names int_index int_rev;
    flt_names = rev_names flt_index flt_rev;
  }

(* ------------------------------------------------------------------ *)
(* Memo capacity: distinct-element upper bound of one scope             *)
(* ------------------------------------------------------------------ *)

let rec reads_in_fexpr = function
  | XConst _ | XIvar _ | XSvar _ -> 0
  | XRead _ -> 1
  | XUnop (_, a) -> reads_in_fexpr a
  | XBinop (_, a, b) -> reads_in_fexpr a + reads_in_fexpr b

let reads_in_cond = function
  | XIcond _ -> 0
  | XFcond (_, a, b) -> reads_in_fexpr a + reads_in_fexpr b

let rec cap_stmts arr = Array.fold_left (fun acc s -> acc + cap_stmt s) 0 arr

and cap_stmt = function
  | XAssign { src; _ } -> 1 + reads_in_fexpr src
  | XSassign { src; _ } | XReduce { src; _ } -> reads_in_fexpr src
  | XIf (c, a, b) -> reads_in_cond c + cap_stmts a + cap_stmts b
  | XCritical { xc_body; _ } -> cap_stmts xc_body
  | XFor _ -> 0 (* nested loop: its own memo scope *)

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

(* find a lowered nested loop by source id (two-level vector pulls sweep
   it); same search order as the reference engine's [find_loop] *)
let rec find_lowered lid (stmts : stmt array) =
  Array.fold_left
    (fun acc s ->
      match acc with
      | Some _ -> acc
      | None -> (
          match s with
          | XFor l when l.l_src.Stmt.loop_id = lid -> Some l
          | XFor l -> find_lowered lid l.l_body
          | XIf (_, a, b) -> (
              match find_lowered lid a with
              | Some _ as r -> r
              | None -> find_lowered lid b)
          | XCritical { xc_body; _ } -> find_lowered lid xc_body
          | XAssign _ | XSassign _ | XReduce _ -> None))
    None stmts

let lower (p : Program.t) (ep : Epoch.t) (plan : Annot.plan) =
  let lay = collect_layout p in
  let islot v =
    match Hashtbl.find_opt lay.int_index v with
    | Some s -> s
    | None -> invalid_arg ("Xplan.lower: uncollected variable " ^ v)
  in
  let fslot v =
    match Hashtbl.find_opt lay.flt_index v with
    | Some s -> s
    | None -> invalid_arg ("Xplan.lower: uncollected scalar $" ^ v)
  in
  let laff e =
    let ts = Affine.terms e in
    {
      abase = Affine.const_part e;
      acoefs = Array.of_list (List.map snd ts);
      aslots = Array.of_list (List.map (fun (v, _) -> islot v) ts);
    }
  in
  let lbound = function
    | Bound.Known e | Bound.Opaque e -> Fin (laff e)
    | Bound.Unknown -> Unk
  in
  let refs_by_id : (int, Reference.t) Hashtbl.t = Hashtbl.create 64 in
  ignore
    (Stmt.fold_refs
       (fun () ~write:_ (r : Reference.t) -> Hashtbl.replace refs_by_id r.id r)
       () p.Program.main);
  let reads_rev = ref [] and n_reads = ref 0 in
  let writes_rev = ref [] and n_writes = ref 0 in
  let new_read (r : Reference.t) =
    let uid = !n_reads in
    incr n_reads;
    reads_rev := r :: !reads_rev;
    { xr = r; xsubs = Array.map laff r.subs; xacc = uid }
  in
  let new_write (r : Reference.t) =
    let uid = !n_writes in
    incr n_writes;
    writes_rev := r :: !writes_rev;
    { xr = r; xsubs = Array.map laff r.subs; xacc = uid }
  in
  let caps_rev = ref [] and n_memos = ref 0 in
  let new_memo cap =
    let id = !n_memos in
    incr n_memos;
    caps_rev := cap :: !caps_rev;
    id
  in
  let sp_counts_rev = ref [] and n_loops = ref 0 in
  let new_loop_uid n_sps =
    let uid = !n_loops in
    incr n_loops;
    sp_counts_rev := n_sps :: !sp_counts_rev;
    uid
  in
  let clean id =
    Stale.verdict plan.Annot.stale id = Stale.Clean
  in
  let rec lower_f = function
    | Fexpr.Const c -> XConst c
    | Fexpr.Ivar v -> XIvar (islot v)
    | Fexpr.Svar v -> XSvar (fslot v)
    | Fexpr.Ref r -> XRead (new_read r)
    | Fexpr.Unop (op, a) -> XUnop (op, lower_f a)
    | Fexpr.Binop (op, a, b) -> XBinop (op, lower_f a, lower_f b)
  in
  let lower_cond = function
    | Stmt.Icond (op, a, b) -> XIcond (op, laff a, laff b)
    | Stmt.Fcond (op, a, b) -> XFcond (op, lower_f a, lower_f b)
  in
  let rec lower_stmts stmts = Array.of_list (List.map lower_stmt stmts)
  and lower_stmt s =
    match s with
    | Stmt.Assign (r, e) ->
        XAssign { xflops = Stmt.direct_flops s; dst = new_write r; src = lower_f e }
    | Stmt.Sassign (v, e) ->
        XSassign { xflops = Stmt.direct_flops s; slot = fslot v; src = lower_f e }
    | Stmt.If (c, a, b) -> XIf (lower_cond c, lower_stmts a, lower_stmts b)
    | Stmt.For l -> XFor (lower_loop l)
    | Stmt.Critical c ->
        XCritical { xc_lock = c.Stmt.lock; xc_body = lower_stmts c.Stmt.cbody }
    | Stmt.Reduce r ->
        XReduce
          {
            xflops = Stmt.direct_flops s;
            slot = fslot r.Stmt.rvar;
            rop = r.Stmt.rop;
            src = lower_f r.Stmt.rexpr;
          }
    | Stmt.Call _ ->
        invalid_arg "Xplan.lower: program contains calls; inline first"
  and lower_loop (l : Stmt.loop) =
    let body = lower_stmts l.Stmt.body in
    let vecs =
      List.filter_map
        (fun op ->
          match op with
          | Annot.Vector { ref_id; group; inner; _ } ->
              let members =
                List.map (Hashtbl.find refs_by_id) (ref_id :: group)
              in
              Some
                {
                  v_members = Array.of_list (List.map new_read members);
                  v_clean = clean ref_id;
                  v_inner =
                    (match inner with
                    | None -> None
                    | Some lid -> find_lowered lid body);
                }
          | Annot.Pipelined _ | Annot.Back _ -> None)
        (Annot.vectors_at plan l.Stmt.loop_id)
    in
    let sps =
      List.filter_map
        (fun op ->
          match op with
          | Annot.Pipelined { ref_id; distance; every; _ } ->
              Some
                {
                  sp_ref = new_read (Hashtbl.find refs_by_id ref_id);
                  sp_dist = distance;
                  sp_every = every;
                  sp_clean = clean ref_id;
                }
          | Annot.Vector _ | Annot.Back _ -> None)
        (Annot.pipelined_at plan l.Stmt.loop_id)
    in
    {
      l_src = l;
      l_uid = new_loop_uid (List.length sps);
      l_var = islot l.Stmt.var;
      l_lo = lbound l.Stmt.lo;
      l_hi = lbound l.Stmt.hi;
      l_step = l.Stmt.step;
      l_body = body;
      l_memo = new_memo (cap_stmts body);
      l_vecs = Array.of_list vecs;
      l_sps = Array.of_list sps;
    }
  in
  (* every reduction statement of a parallel epoch, in syntactic order,
     deduplicated by slot (the checker rejects conflicting ops) *)
  let reds_of (l : Stmt.loop) =
    let seen = Hashtbl.create 4 in
    let reds =
      Stmt.fold
        (fun acc s ->
          match s with
          | Stmt.Reduce r ->
              let slot = fslot r.Stmt.rvar in
              if Hashtbl.mem seen slot then acc
              else begin
                Hashtbl.add seen slot ();
                { rd_slot = slot; rd_op = r.Stmt.rop } :: acc
              end
          | _ -> acc)
        [] [ Stmt.For l ]
    in
    Array.of_list (List.rev reds)
  in
  let rec lower_nodes nodes = Array.of_list (List.map lower_node nodes)
  and lower_node = function
    | Epoch.E (id, Epoch.Par l) -> NPar (id, lower_loop l, reds_of l)
    | Epoch.E (id, Epoch.Ser stmts) ->
        let body = lower_stmts stmts in
        NSer (id, body, new_memo (cap_stmts body))
    | Epoch.Loop (l, body) ->
        NLoop
          {
            s_var = islot l.Stmt.var;
            s_lo = lbound l.Stmt.lo;
            s_hi = lbound l.Stmt.hi;
            s_step = l.Stmt.step;
            s_body = lower_nodes body;
          }
    | Epoch.Branch (c, a, b) ->
        let lc = lower_cond c in
        NBranch (lc, new_memo (reads_in_cond lc), lower_nodes a, lower_nodes b)
  in
  let nodes = lower_nodes ep.Epoch.nodes in
  {
    lay;
    nodes;
    params =
      Array.of_list
        (List.map (fun (k, v) -> (islot k, v)) p.Program.params);
    reads = Array.of_list (List.rev !reads_rev);
    writes = Array.of_list (List.rev !writes_rev);
    memo_caps = Array.of_list (List.rev !caps_rev);
    n_loops = !n_loops;
    sp_counts = Array.of_list (List.rev !sp_counts_rev);
  }
