lib/core/experiment.mli: Ccdp_analysis Ccdp_machine Ccdp_runtime Ccdp_workloads Format
