lib/ir/program.ml: Array Array_decl Format Hashtbl List Option Printf Reference Stmt String
