lib/runtime/addr_map.ml: Array_decl Ccdp_craft Ccdp_ir Hashtbl List Program
