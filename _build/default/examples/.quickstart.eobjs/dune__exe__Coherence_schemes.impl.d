examples/coherence_schemes.ml: Ccdp_analysis Ccdp_core Ccdp_machine Ccdp_runtime Ccdp_workloads Format Interp List Memsys Metrics Pipeline Tomcatv Verify Workload
