type t = {
  sets : int;
  assoc : int;
  lwords : int;
  tags : int array;  (** sets*assoc slots; -1 = invalid *)
  data : float array;  (** sets*assoc*line_words payload *)
  vers : int array;  (** per-word version tags captured at fill/update *)
  last_use : int array;  (** recency stamp per slot *)
  fill_ticks : int array;  (** externally supplied fill stamps per slot *)
  states : int array;
      (** per-slot protocol state (Coherence.shared/exclusive/modified);
          meaningful only while the slot's tag is valid *)
  mutable tick : int;
  mutable last_ev_line : int;
      (** line displaced by the most recent fill; -1 = none *)
  mutable last_ev_state : int;  (** its protocol state at displacement *)
}

let create ~sets ~assoc ~line_words =
  if sets <= 0 || assoc <= 0 || line_words <= 0 then invalid_arg "Cache.create";
  {
    sets;
    assoc;
    lwords = line_words;
    tags = Array.make (sets * assoc) (-1);
    data = Array.make (sets * assoc * line_words) 0.0;
    vers = Array.make (sets * assoc * line_words) 0;
    last_use = Array.make (sets * assoc) 0;
    fill_ticks = Array.make (sets * assoc) 0;
    states = Array.make (sets * assoc) 0;
    tick = 0;
    last_ev_line = -1;
    last_ev_state = 0;
  }

let of_config (cfg : Config.t) =
  create ~sets:(Config.lines cfg / cfg.assoc) ~assoc:cfg.assoc
    ~line_words:cfg.line_words

let line_words t = t.lwords

let slot_of_line t line =
  let set = line mod t.sets in
  let base = set * t.assoc in
  let found = ref (-1) in
  for w = 0 to t.assoc - 1 do
    if t.tags.(base + w) = line then found := base + w
  done;
  !found

let touch t slot =
  t.tick <- t.tick + 1;
  t.last_use.(slot) <- t.tick

let read t ~addr =
  let line = addr / t.lwords in
  let slot = slot_of_line t line in
  if slot < 0 then None
  else begin
    touch t slot;
    Some t.data.((slot * t.lwords) + (addr mod t.lwords))
  end

let locate t ~addr =
  let line = addr / t.lwords in
  let slot = slot_of_line t line in
  if slot < 0 then -1
  else begin
    touch t slot;
    (slot * t.lwords) + (addr mod t.lwords)
  end

let data_at t off = t.data.(off)

let probe_line t ~line = slot_of_line t line >= 0

(* reuse the slot if the line is already resident, else the LRU way *)
let slot_for_fill t line =
  let existing = slot_of_line t line in
  if existing >= 0 then existing
  else begin
    let base = line mod t.sets * t.assoc in
    let best = ref base in
    for w = 1 to t.assoc - 1 do
      if t.last_use.(base + w) < t.last_use.(!best) then best := base + w
    done;
    !best
  end

(* Photograph the displacement before overwriting the slot: the coherence
   protocols need the victim line (to drop its presence bit) and its state
   (a Modified victim owes a write-back charge). *)
let note_eviction t slot line =
  if t.tags.(slot) >= 0 && t.tags.(slot) <> line then begin
    t.last_ev_line <- t.tags.(slot);
    t.last_ev_state <- t.states.(slot)
  end
  else begin
    t.last_ev_line <- -1;
    t.last_ev_state <- 0
  end

let fill t ?(tick = 0) ?vers ?(state = 1) ~line payload =
  if Array.length payload <> t.lwords then invalid_arg "Cache.fill: payload size";
  (match vers with
  | Some v when Array.length v <> t.lwords ->
      invalid_arg "Cache.fill: version payload size"
  | Some _ | None -> ());
  let slot = slot_for_fill t line in
  note_eviction t slot line;
  let evicted = if t.last_ev_line >= 0 then Some t.last_ev_line else None in
  t.tags.(slot) <- line;
  Array.blit payload 0 t.data (slot * t.lwords) t.lwords;
  (match vers with
  | Some v -> Array.blit v 0 t.vers (slot * t.lwords) t.lwords
  | None -> Array.fill t.vers (slot * t.lwords) t.lwords 0);
  t.fill_ticks.(slot) <- tick;
  t.states.(slot) <- state;
  touch t slot;
  evicted

let fill_from t ?(tick = 0) ?(state = 1) ~vers ~line ~src ~pos () =
  let slot = slot_for_fill t line in
  note_eviction t slot line;
  t.tags.(slot) <- line;
  Array.blit src pos t.data (slot * t.lwords) t.lwords;
  if Array.length vers = 0 then Array.fill t.vers (slot * t.lwords) t.lwords 0
  else Array.blit vers pos t.vers (slot * t.lwords) t.lwords;
  t.fill_ticks.(slot) <- tick;
  t.states.(slot) <- state;
  touch t slot

let last_evicted_line t = t.last_ev_line
let last_evicted_state t = t.last_ev_state

let line_state t ~line =
  let slot = slot_of_line t line in
  if slot < 0 then 0 else t.states.(slot)

let set_line_state t ~line state =
  let slot = slot_of_line t line in
  if slot >= 0 then t.states.(slot) <- state

let fill_tick t ~line =
  let slot = slot_of_line t line in
  if slot < 0 then None else Some t.fill_ticks.(slot)

let update_if_present t ?ver ~addr value =
  let line = addr / t.lwords in
  let slot = slot_of_line t line in
  if slot >= 0 then begin
    let off = (slot * t.lwords) + (addr mod t.lwords) in
    t.data.(off) <- value;
    match ver with Some v -> t.vers.(off) <- v | None -> ()
  end

let word_version t ~addr =
  let line = addr / t.lwords in
  let slot = slot_of_line t line in
  if slot < 0 then None
  else Some t.vers.((slot * t.lwords) + (addr mod t.lwords))

let invalidate_line t ~line =
  let slot = slot_of_line t line in
  if slot >= 0 then t.tags.(slot) <- -1

let invalidate_all t = Array.fill t.tags 0 (Array.length t.tags) (-1)

let valid_lines t =
  Array.fold_left (fun acc tag -> if tag >= 0 then acc + 1 else acc) 0 t.tags

let peek t ~addr =
  let line = addr / t.lwords in
  let slot = slot_of_line t line in
  if slot < 0 then None else Some t.data.((slot * t.lwords) + (addr mod t.lwords))
