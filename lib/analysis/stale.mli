(** Stale reference analysis (paper Section 4.1, after Choi–Yew).

    A read reference is {e potentially stale} when a PE's cached copy of the
    data it touches may be older than the value in main memory. In the
    epoch model, memory is updated at every boundary and caches are not
    invalidated, so the only source of staleness is a write in a {e
    preceding} epoch (program order, or the back-edge of a serial structure
    loop around the epochs) whose region overlaps the read and which the
    reading PE did not perform itself (the owner-computes {!Region.aligned}
    test).

    A later {e aligned covering} write masks the staleness: if, strictly
    between the suspect write and the read (in a straight-line epoch
    sequence), the region in question is fully rewritten by a write the
    read is aligned with, each reading PE's copy is its own fresh one.

    The analysis is sound and conservative: unknown bounds, non-affine
    subscripts and dynamic schedules all widen toward [Stale].

    {b Mini-epoch rule (acquire frontier).} A critical section is a
    mini-epoch inside its parallel epoch: lock acquire is a potential-
    staleness frontier and release a publication point. A read inside
    [critical(l)] is potentially stale ([at_acquire = true]) when a write
    under the {e same} lock in the {e same} epoch may touch, from a
    different PE, an element the read observes — a copy cached before the
    acquire predates the other holders' updates. Owner-computes alignment
    does not discharge this case (a PE that wrote the element itself still
    interleaves with the other lock holders); the discharge is cross-PE
    exclusion. *)

type verdict =
  | Clean
  | Stale of { writer_ref : int; writer_epoch : int; at_acquire : bool }
      (** one witness write (the first found); [at_acquire] marks the
          mini-epoch case — the witness is a same-epoch write under the
          same lock, and the obligation can only be met inside the
          section (in this runtime: by bypassing the cache) *)

type result = {
  verdicts : (int, verdict) Hashtbl.t;  (** every read ref id *)
  n_reads : int;
  n_stale : int;
  diags : string list;  (** warnings (e.g. writes to replicated arrays) *)
}

(** [cluster_pes] (default 1, flat) relaxes the alignment discharge to the
    cluster-aware {!Region.aligned_cluster} test: a potentially-stale read
    whose covering writer provably lands in the reader's own hardware-
    coherent island carries no prefetch/bypass obligation — the island
    snoop keeps the reader's copy honest. Only sound when the runtime
    actually runs the clustered protocol ([Memsys.Clustered]). *)
val analyze : ?cluster_pes:int -> Region.t -> Ref_info.t list -> result

val verdict : result -> int -> verdict

(** Read ref ids that are potentially stale — the set P of paper Fig. 1. *)
val stale_ids : result -> int list

val pp_result : Format.formatter -> result -> unit
