(** Structured certifier diagnostics.

    Every finding carries a stable code (the [CCDP-W...] namespace below is
    append-only: codes are never renumbered once released, so CI gates and
    suppression lists stay valid across versions), a severity derived from
    the code, a source span when the program came from CRAFT text, and the
    reference/loop/epoch context the finding is about.

    Code table:
    - [CCDP-W001] (error) — potentially-stale read neither prefetched nor
      bypassed (uncovered coherence obligation);
    - [CCDP-W002] (error) — broken cover chain: a reference points at a
      leading reference that is not a lead, has no prefetch op, or whose
      vector group omits the member;
    - [CCDP-W003] (error) — DOALL race: a loop marked parallel carries a
      cross-iteration dependence or reads an unprivatizable scalar;
    - [CCDP-W004] (warning) — spurious coverage: prefetch or bypass attached
      to a read the certifier proves clean (suppressed when the pipeline
      compiled with [prefetch_clean]);
    - [CCDP-W005] (warning) — redundant prefetch: a covered group member
      also carries its own prefetch op;
    - [CCDP-W006] (warning) — dead prefetch: the data volume touched between
      issue and use exceeds the cache, so the prefetched line is evicted
      before its reference executes;
    - [CCDP-W007] (warning) — mis-sized SP distance: shorter than the group
      span or overflowing the prefetch queue;
    - [CCDP-W008] (warning) — mis-sized VPG volume: the pulled section is
      empty, unbounded, or exceeds the vector-prefetch budget;
    - [CCDP-W009] (error) — unprotected cross-PE conflict: a same-element
      conflicting pair inside a DOALL where only one side sits in a
      critical section (lock domination cannot discharge the race);
    - [CCDP-W010] (error) — inconsistent lock domains: both sides of a
      conflicting pair are locked, but under different locks (mutual
      exclusion does not compose across locks);
    - [CCDP-W011] (error) — bogus reduction: a recognized reduction whose
      operator is not commutative-associative, whose variable is also
      written by an ordinary assignment in the same DOALL, or whose
      contributions use conflicting operators. *)

type severity = Error | Warning

type code =
  | Uncovered_stale  (** CCDP-W001 *)
  | Broken_cover  (** CCDP-W002 *)
  | Doall_race  (** CCDP-W003 *)
  | Spurious_cover  (** CCDP-W004 *)
  | Redundant_prefetch  (** CCDP-W005 *)
  | Dead_prefetch  (** CCDP-W006 *)
  | Sp_missized  (** CCDP-W007 *)
  | Vpg_missized  (** CCDP-W008 *)
  | Unprotected_conflict  (** CCDP-W009 *)
  | Inconsistent_lock  (** CCDP-W010 *)
  | Bad_reduction  (** CCDP-W011 *)

val code_string : code -> string
val severity_of : code -> severity
val severity_string : severity -> string

type t = {
  code : code;
  severity : severity;
  message : string;
  loc : Ccdp_ir.Loc.t;
  ref_id : int option;
  loop_id : int option;
  epoch : int option;
}

val make :
  code -> ?loc:Ccdp_ir.Loc.t -> ?ref_id:int -> ?loop_id:int -> ?epoch:int ->
  string -> t

val makef :
  code -> ?loc:Ccdp_ir.Loc.t -> ?ref_id:int -> ?loop_id:int -> ?epoch:int ->
  ('a, unit, string, t) format4 -> 'a

(** Report order: by source span, then code, then reference. *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Append one diagnostic as a JSON object (Bench_json house style). *)
val buf : Buffer.t -> t -> unit

(** Append an escaped JSON string (shared with the report assembler). *)
val buf_string : Buffer.t -> string -> unit
