lib/ir/builder.ml: Affine Array Array_decl Bound Fexpr List Printf Program Reference Stmt String
