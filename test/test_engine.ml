(* Engine equivalence: the compiled-plan interpreter (Interp) against the
   reference tree-walker (Interp_ref).

   Interp_ref is the pre-refactor engine kept verbatim as the executable
   specification of the timed semantics; the compiled-plan engine must
   reproduce it cycle-for-cycle. Checked here on a fixed-seed fuzz corpus
   and on the paper's four workloads, across every coherence mode:
   cycles, access statistics, per-PE clocks, epoch count and profile, and
   the final shared-memory image must all be identical (tolerance 0).

   The point of the compiled plans is the hot path allocating no
   per-iteration environments or register-memo hashtables, so the last
   group is a Gc regression gate: the compiled engine must stay under
   half the reference engine's minor-heap words on MXM/CCDP (it measures
   ~1/3; the pre-refactor ratio was 1). *)

open Ccdp_test_support.Tutil
module Memsys = Ccdp_runtime.Memsys
module Interp = Ccdp_runtime.Interp
module Interp_ref = Ccdp_runtime.Interp_ref
module Gen = Ccdp_fuzz.Gen
module Workload = Ccdp_workloads.Workload

let modes =
  Memsys.
    [
      Seq; Base; Ccdp; Invalidate; Incoherent; Hscd; Msi; Mesi; Directory;
      Clustered;
    ]

(* same per-mode setup as Experiment.run_mode: CCDP compiles the full
   pipeline (Clustered additionally with the cluster-aware discharge),
   every other mode runs the inlined program unannotated, Seq forces one
   PE. [machine] picks the interconnect preset (default: the
   uniform-latency t3d). *)
let setup ?(machine = Ccdp_machine.Config.t3d) ~n_pes mode
    (program : Ccdp_ir.Program.t) =
  let cfg = machine ~n_pes:(if mode = Memsys.Seq then 1 else n_pes) in
  match mode with
  | Memsys.Ccdp ->
      let compiled = Ccdp_core.Pipeline.compile cfg program in
      (cfg, compiled.Ccdp_core.Pipeline.program, compiled.Ccdp_core.Pipeline.plan)
  | Memsys.Clustered ->
      let compiled =
        Ccdp_core.Pipeline.compile cfg ~cluster_coherent:true program
      in
      (cfg, compiled.Ccdp_core.Pipeline.program, compiled.Ccdp_core.Pipeline.plan)
  | _ -> (cfg, Ccdp_ir.Program.inline program, Ccdp_analysis.Annot.empty ())

(* one shared 4-worker pool for the sharded re-runs below; created once
   around the whole suite (see the bottom of the file) because domain
   spawn/join per case would dominate the test's runtime *)
let shard_pool : Ccdp_exec.Pool.t option ref = ref None

let assert_equal_runs ?machine name program ~n_pes mode =
  let cfg, prog, plan = setup ?machine ~n_pes mode program in
  let a = Interp.run cfg prog ~plan ~mode () in
  let b = Interp_ref.run cfg prog ~plan ~mode () in
  let against tagp (r : Interp.result) =
    let tag s = name ^ "/" ^ Memsys.mode_name mode ^ tagp ^ ": " ^ s in
    check_int (tag "cycles") b.Interp_ref.cycles r.Interp.cycles;
    check_true (tag "stats") (b.Interp_ref.stats = r.Interp.stats);
    check_true (tag "per-PE clocks")
      (b.Interp_ref.per_pe_cycles = r.Interp.per_pe_cycles);
    check_int (tag "epochs") b.Interp_ref.epochs r.Interp.epochs;
    check_true (tag "epoch profile")
      (b.Interp_ref.epoch_profile = r.Interp.epoch_profile);
    let mem =
      Ccdp_runtime.Verify.compare_states ~expected:b.Interp_ref.sys
        ~got:r.Interp.sys prog
    in
    check_true (tag "memory image") mem.Ccdp_runtime.Verify.ok
  in
  against "" a;
  (* the sharded run (jobs=4) must reproduce the serial reference too —
     including the modes/machines where Memsys.shardable says no and the
     run falls back to the serial walk *)
  match !shard_pool with
  | None -> ()
  | Some pool -> against "[sharded]" (Interp.run cfg ~pool prog ~plan ~mode ())

(* fixed seed: the corpus (and so the test) is deterministic *)
let fuzz_corpus =
  let st = Random.State.make [| 0xC0FFEE |] in
  List.init 12 (fun i -> (i, Gen.generate st))

let fuzz_cases =
  List.map
    (fun (i, (d : Gen.desc)) ->
      case
        (Printf.sprintf "fuzz #%d agrees in every mode" i)
        (fun () ->
          let program = Gen.build d in
          (* the desc's own interconnect: the corpus exercises the Net
             dispatch on both engines, not just the uniform machine *)
          let machine = Ccdp_machine.Config.of_kind d.Gen.net in
          List.iter
            (fun mode ->
              assert_equal_runs ~machine
                (Printf.sprintf "fuzz%d" i)
                program ~n_pes:d.Gen.n_pes mode)
            modes))
    fuzz_corpus

let workload_cases =
  List.map
    (fun (w : Workload.t) ->
      case (w.Workload.name ^ " agrees in every mode") (fun () ->
          List.iter
            (fun mode ->
              assert_equal_runs w.Workload.name w.Workload.program ~n_pes:4
                mode)
            modes))
    (Ccdp_workloads.Suite.spec_four ~n:16 ~iters:1 ()
    @ [ Ccdp_workloads.Extras.gauss ~n:16 ])

(* cycle-identity on every interconnect: both engines route through the
   same Net instance state (including the crossbar's shared-port
   contention bookings), so TOMCATV must agree mode-for-mode on all four
   machine presets *)
let machine_cases =
  List.map
    (fun (mname, machine) ->
      case ("tomcatv agrees in every mode on " ^ mname) (fun () ->
          let w = Ccdp_workloads.Tomcatv.workload ~n:16 ~iters:1 in
          List.iter
            (fun mode ->
              assert_equal_runs ~machine
                (w.Workload.name ^ "@" ^ mname)
                w.Workload.program ~n_pes:4 mode)
            modes))
    Ccdp_core.Experiment.machine_presets

(* the coherence-cluster machines: at 8 PEs cxl-2x32 gives real islands
   of 4, cxl-4x16 islands of 2, and cxl-8x8 degrades to the flat
   crossbar — Clustered (and every flat mode riding the cheap local
   fabric) must stay cycle-identical across both engines and under the
   sharded run's serial fallback on all three *)
let cluster_machine_cases =
  List.map
    (fun (mname, machine) ->
      case ("tomcatv agrees in every mode on " ^ mname) (fun () ->
          let w = Ccdp_workloads.Tomcatv.workload ~n:16 ~iters:1 in
          List.iter
            (fun mode ->
              assert_equal_runs ~machine
                (w.Workload.name ^ "@" ^ mname)
                w.Workload.program ~n_pes:8 mode)
            modes))
    Ccdp_core.Experiment.cluster_presets

(* pinned intra-epoch synchronization programs: the cycle-costed lock
   (PE-major arbitration; the sharded engine falls back to the serial
   walk, which must still match) and the recognized-reduction barrier
   merge must agree engine-for-engine in every mode *)
let sync_cases =
  let mk name ~wrap epochs =
    case (name ^ " agrees in every mode") (fun () ->
        let d =
          {
            Gen.n = 8;
            dist_dim = 0;
            n_pes = 4;
            net = Ccdp_machine.Net.Uniform;
            pclean = false;
            epochs;
            wrap;
          }
        in
        (match Gen.validate d with
        | Ok () -> ()
        | Error m -> Alcotest.fail ("invalid sync desc: " ^ m));
        let program = Gen.build d in
        List.iter
          (fun mode -> assert_equal_runs name program ~n_pes:d.Gen.n_pes mode)
          modes)
  in
  [
    mk "locked accumulation (block)" ~wrap:false
      [
        Gen.Lock
          { sched = Gen.Block; src = 0; dst = 1; col = 0; col2 = 1; fused = false };
      ];
    mk "locked accumulation (cyclic, fused, wrapped)" ~wrap:true
      [
        Gen.Lock
          { sched = Gen.Cyclic; src = 2; dst = 0; col = 1; col2 = 2; fused = true };
      ];
    mk "recognized reductions (add then max)" ~wrap:false
      [
        Gen.Red { sched = Gen.Block; op = Gen.Radd; src = 0; dst = 1; seed = true };
        Gen.Red { sched = Gen.Cyclic; op = Gen.Rmax; src = 1; dst = 2; seed = false };
      ];
    mk "lock feeding a reduction (wrapped)" ~wrap:true
      [
        Gen.Lock
          { sched = Gen.Block; src = 0; dst = 1; col = 0; col2 = 0; fused = false };
        Gen.Red { sched = Gen.Block; op = Gen.Rmin; src = 1; dst = 2; seed = true };
      ];
  ]

(* minor-heap words of one run of [f], after one warm-up run *)
let minor_words_of f =
  ignore (f ());
  let m0 = Gc.minor_words () in
  ignore (f ());
  Gc.minor_words () -. m0

let alloc_cases =
  [
    case "compiled engine allocates < 50% of the reference (MXM/ccdp)"
      (fun () ->
        let w = Ccdp_workloads.Mxm.workload ~n:32 in
        let cfg, prog, plan = setup ~n_pes:8 Memsys.Ccdp w.Workload.program in
        let plan_mw =
          minor_words_of (fun () ->
              Interp.run cfg prog ~plan ~mode:Memsys.Ccdp ())
        in
        let ref_mw =
          minor_words_of (fun () ->
              Interp_ref.run cfg prog ~plan ~mode:Memsys.Ccdp ())
        in
        check_true
          (Printf.sprintf "plan %.0f words < 0.5 * ref %.0f words" plan_mw
             ref_mw)
          (plan_mw < 0.5 *. ref_mw));
  ]

let () =
  Ccdp_exec.Pool.with_pool ~jobs:4 (fun pool ->
      shard_pool := Some pool;
      Alcotest.run "engine"
        [
          ("fuzz corpus", fuzz_cases);
          ("workloads", workload_cases);
          ("synchronization", sync_cases);
          ("machines", machine_cases);
          ("cluster machines", cluster_machine_cases);
          ("allocation", alloc_cases);
        ])
