(* The reference interpreter: a direct tree-walk over the IR, kept verbatim
   from before the compiled-plan engine (Xplan + the current Interp)
   replaced it on the hot path. It defines the cycle-exact semantics the
   compiled engine must reproduce — the differential tests run both over
   the fuzz corpus and assert identical cycles, stats and memory images —
   and anchors the perf benchmark's speedup ratio. Intentionally not
   optimized: do not "fix" allocations or lookups here. *)

open Ccdp_ir
open Ccdp_machine
open Ccdp_analysis

type result = {
  mode : Memsys.mode;
  cycles : int;
  stats : Stats.t;
  per_pe_cycles : int array;
  epochs : int;
  epoch_profile : (int * int * int) list;
  sys : Memsys.t;
}

let run cfg ?(oracle = false) ?(sabotage = Memsys.No_fault) (program : Program.t)
    ~plan ~mode ?init () =
  let sys = Memsys.create cfg ~oracle ~sabotage program ~plan mode in
  (match init with Some f -> f sys | None -> ());
  let ep = Epoch.partition program.Program.main in
  let n = cfg.Config.n_pes in
  (* per-PE induction-variable and scalar environments; parameters preloaded *)
  let ivs = Array.init n (fun _ -> Hashtbl.create 16) in
  let svs = Array.init n (fun _ -> Hashtbl.create 16) in
  List.iter
    (fun (k, v) -> Array.iter (fun h -> Hashtbl.replace h k v) ivs)
    program.Program.params;
  let refs_by_id : (int, Reference.t) Hashtbl.t = Hashtbl.create 64 in
  ignore
    (Stmt.fold_refs
       (fun () ~write:_ (r : Reference.t) -> Hashtbl.replace refs_by_id r.id r)
       () program.Program.main);
  let epochs_executed = ref 0 in
  let profile : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let record_epoch id dt =
    let n, c = match Hashtbl.find_opt profile id with Some x -> x | None -> (0, 0) in
    Hashtbl.replace profile id (n + 1, c + dt)
  in
  let clean_lead id =
    Ccdp_analysis.Stale.verdict plan.Annot.stale id = Ccdp_analysis.Stale.Clean
  in
  let lookup pe v =
    match Hashtbl.find_opt ivs.(pe) v with
    | Some x -> x
    | None -> invalid_arg ("Interp: unbound variable " ^ v)
  in
  let eval_affine pe e = Affine.eval e (lookup pe) in
  let eval_idx pe (r : Reference.t) = Array.map (eval_affine pe) r.subs in
  let set_iv pe v x = Hashtbl.replace ivs.(pe) v x in
  let set_iv_all v x = Array.iter (fun h -> Hashtbl.replace h v x) ivs in
  (* [memo] models statement-level register reuse: a compiler loads each
     distinct element once per statement, further occurrences read the
     register for free. *)
  let rec eval_f pe memo (e : Fexpr.t) =
    match e with
    | Fexpr.Const c -> c
    | Fexpr.Ivar v -> float_of_int (lookup pe v)
    | Fexpr.Svar v -> (
        match Hashtbl.find_opt svs.(pe) v with
        | Some x -> x
        | None -> invalid_arg ("Interp: unbound scalar $" ^ v))
    | Fexpr.Ref r -> (
        let idx = eval_idx pe r in
        let key = (r.Reference.array_name, idx) in
        match Hashtbl.find_opt memo key with
        | Some v -> v
        | None ->
            let v = Memsys.read sys ~pe r ~idx in
            Hashtbl.replace memo key v;
            v)
    | Fexpr.Unop (op, a) -> Fexpr.apply_unop op (eval_f pe memo a)
    | Fexpr.Binop (op, a, b) ->
        let x = eval_f pe memo a in
        let y = eval_f pe memo b in
        Fexpr.apply_binop op x y
  in
  let eval_cond pe memo = function
    | Stmt.Icond (op, a, b) -> Stmt.eval_cmp op (eval_affine pe a) (eval_affine pe b)
    | Stmt.Fcond (op, a, b) ->
        Memsys.charge sys ~pe cfg.Config.flop;
        let x = eval_f pe memo a in
        let y = eval_f pe memo b in
        Stmt.eval_fcmp op x y
  in
  (* Issue one software-pipelined prefetch for a future iteration of one
     reference. With [every > 1] the compiler strip-mined the issue to one
     prefetch instruction per cache line (self-spatial elimination): the
     runtime realizes that soundly as a line-crossing test against the
     previously issued line, so boundary and phase effects can never leave
     a line unissued. *)
  let sp_issue pe (l : Stmt.loop) ~ref_id ~every ~last_line target_iter hi =
    if (l.step > 0 && target_iter <= hi) || (l.step < 0 && target_iter >= hi)
    then begin
      let r = Hashtbl.find refs_by_id ref_id in
      let saved = Hashtbl.find_opt ivs.(pe) l.var in
      set_iv pe l.var target_iter;
      let idx = eval_idx pe r in
      (match saved with
      | Some x -> set_iv pe l.var x
      | None -> Hashtbl.remove ivs.(pe) l.var);
      let skip_cached = clean_lead ref_id in
      if every <= 1 then
        Memsys.issue_line_prefetch ~skip_cached sys ~pe r.Reference.array_name
          ~idx
      else begin
        let line = Memsys.line_of sys ~pe r.Reference.array_name ~idx in
        if line <> !last_line then begin
          last_line := line;
          Memsys.issue_line_prefetch ~skip_cached sys ~pe
            r.Reference.array_name ~idx
        end
      end
    end
  in
  (* find a nested loop statement by id (two-level vector pulls sweep it) *)
  let rec find_loop lid stmts =
    List.fold_left
      (fun acc s ->
        match acc with
        | Some _ -> acc
        | None -> (
            match s with
            | Stmt.For l when l.Stmt.loop_id = lid -> Some l
            | Stmt.For l -> find_loop lid l.Stmt.body
            | Stmt.If (_, a, b) -> (
                match find_loop lid a with
                | Some _ as r -> r
                | None -> find_loop lid b)
            | Stmt.Critical c -> find_loop lid c.Stmt.cbody
            | Stmt.Assign _ | Stmt.Sassign _ | Stmt.Call _ | Stmt.Reduce _ ->
                None))
      None stmts
  in
  (* issue the vector prefetches attached to a loop, for the given range *)
  let vector_issue pe (l : Stmt.loop) ~first ~last ~step =
    List.iter
      (fun op ->
        match op with
        | Annot.Vector { ref_id; group; inner; _ } ->
            let members =
              List.map (Hashtbl.find refs_by_id) (ref_id :: group)
            in
            let name = (List.hd members).Reference.array_name in
            let saved = Hashtbl.find_opt ivs.(pe) l.var in
            let idxs = ref [] in
            let collect () =
              List.iter (fun r -> idxs := eval_idx pe r :: !idxs) members
            in
            let sweep_inner () =
              match inner with
              | None -> collect ()
              | Some lid -> (
                  match find_loop lid l.Stmt.body with
                  | None -> collect ()
                  | Some il ->
                      let ifirst = Bound.eval_exec il.Stmt.lo (lookup pe) in
                      let ilast = Bound.eval_exec il.Stmt.hi (lookup pe) in
                      let isaved = Hashtbl.find_opt ivs.(pe) il.Stmt.var in
                      let w = ref ifirst in
                      let cont () =
                        if il.Stmt.step > 0 then !w <= ilast else !w >= ilast
                      in
                      while cont () do
                        set_iv pe il.Stmt.var !w;
                        collect ();
                        w := !w + il.Stmt.step
                      done;
                      (match isaved with
                      | Some x -> set_iv pe il.Stmt.var x
                      | None -> Hashtbl.remove ivs.(pe) il.Stmt.var))
            in
            let v = ref first in
            let continue () = if step > 0 then !v <= last else !v >= last in
            while continue () do
              set_iv pe l.var !v;
              sweep_inner ();
              v := !v + step
            done;
            (match saved with
            | Some x -> set_iv pe l.var x
            | None -> Hashtbl.remove ivs.(pe) l.var);
            Memsys.vget_issue ~skip_cached:(clean_lead ref_id) sys ~pe name
              (List.rev !idxs)
        | Annot.Pipelined _ | Annot.Back _ -> ())
      (Annot.vectors_at plan l.Stmt.loop_id)
  in
  let sp_plans (l : Stmt.loop) =
    List.filter_map
      (fun op ->
        match op with
        | Annot.Pipelined { ref_id; distance; every; _ } ->
            Some (ref_id, distance, every)
        | Annot.Vector _ | Annot.Back _ -> None)
      (Annot.pipelined_at plan l.Stmt.loop_id)
  in
  (* execute the iterations [first..last..step] of loop [l] on [pe] *)
  let rec exec_range pe (l : Stmt.loop) ~first ~last ~step =
    vector_issue pe l ~first ~last ~step;
    let plans = List.map (fun p -> (p, ref min_int)) (sp_plans l) in
    (* software-pipelining prologue: prefetch the first d iterations *)
    List.iter
      (fun ((ref_id, d, every), last_line) ->
        for k = 0 to d - 1 do
          sp_issue pe l ~ref_id ~every ~last_line (first + (k * step)) last
        done)
      plans;
    let saved = Hashtbl.find_opt ivs.(pe) l.var in
    let v = ref first in
    let continue () = if step > 0 then !v <= last else !v >= last in
    while continue () do
      set_iv pe l.var !v;
      Memsys.charge sys ~pe cfg.Config.loop_overhead;
      List.iter
        (fun ((ref_id, d, every), last_line) ->
          sp_issue pe l ~ref_id ~every ~last_line (!v + (d * step)) last)
        plans;
      (* fresh register file per iteration: scalar replacement is only
         valid within a single iteration of the innermost loop *)
      let memo = Hashtbl.create 8 in
      List.iter (exec_stmt pe memo) l.body;
      v := !v + step
    done;
    match saved with
    | Some x -> set_iv pe l.var x
    | None -> Hashtbl.remove ivs.(pe) l.var

  and exec_loop pe (l : Stmt.loop) =
    let first = Bound.eval_exec l.lo (lookup pe) in
    let last = Bound.eval_exec l.hi (lookup pe) in
    exec_range pe l ~first ~last ~step:l.step

  and exec_stmt pe memo s =
    match s with
    | Stmt.Assign (r, e) ->
        Memsys.charge sys ~pe (Stmt.direct_flops s * cfg.Config.flop);
        let v = eval_f pe memo e in
        let idx = eval_idx pe r in
        Memsys.write sys ~pe r ~idx v;
        (* keep the register copy coherent with the store *)
        Hashtbl.replace memo (r.Reference.array_name, idx) v
    | Stmt.Sassign (x, e) ->
        Memsys.charge sys ~pe (Stmt.direct_flops s * cfg.Config.flop);
        Hashtbl.replace svs.(pe) x (eval_f pe memo e)
    | Stmt.If (c, tb, eb) ->
        if eval_cond pe memo c then List.iter (exec_stmt pe memo) tb
        else List.iter (exec_stmt pe memo) eb
    | Stmt.For l -> exec_loop pe l
    | Stmt.Critical c ->
        Memsys.lock_acquire sys ~pe c.Stmt.lock;
        (* the acquire is a staleness frontier: register copies of shared
           values loaded before it cannot be trusted past it *)
        Hashtbl.reset memo;
        List.iter (exec_stmt pe memo) c.Stmt.cbody;
        Memsys.lock_release sys ~pe c.Stmt.lock
    | Stmt.Reduce r ->
        Memsys.charge sys ~pe (Stmt.direct_flops s * cfg.Config.flop);
        let v = eval_f pe memo r.Stmt.rexpr in
        Hashtbl.replace svs.(pe) r.Stmt.rvar
          (match Hashtbl.find_opt svs.(pe) r.Stmt.rvar with
          | Some x -> Fexpr.apply_binop r.Stmt.rop x v
          | None -> v (* first contribution seeds the partial *))
    | Stmt.Call _ -> invalid_arg "Interp: program contains calls; inline first"
  in
  (* reduction variables of a DOALL, in syntactic order, deduplicated *)
  let reds_of (l : Stmt.loop) =
    let seen = Hashtbl.create 4 in
    List.rev
      (Stmt.fold
         (fun acc s ->
           match s with
           | Stmt.Reduce r when not (Hashtbl.mem seen r.Stmt.rvar) ->
               Hashtbl.add seen r.Stmt.rvar ();
               (r.Stmt.rvar, r.Stmt.rop) :: acc
           | _ -> acc)
         [] [ Stmt.For l ])
  in
  let exec_parallel id (l : Stmt.loop) =
    incr epochs_executed;
    let t0 = Machine.time (Memsys.machine sys) in
    (* reduction prologue: capture the incoming value, unbind the variable
       on every PE so each accumulates a private partial seeded by its
       first contribution (no identity element, so -0.0 and min/max need
       no special cases) *)
    let reds =
      List.map
        (fun (v, op) ->
          let inc = Hashtbl.find_opt svs.(0) v in
          Array.iter (fun h -> Hashtbl.remove h v) svs;
          (v, op, inc))
        (reds_of l)
    in
    if mode = Memsys.Seq then exec_loop 0 l
    else begin
      let first = Bound.eval_exec l.lo (lookup 0) in
      let last = Bound.eval_exec l.hi (lookup 0) in
      (match l.kind with
      | Stmt.Serial -> assert false
      | Stmt.Doall
          ((Stmt.Static_block | Stmt.Static_aligned _ | Stmt.Static_cyclic) as
           sched) ->
          for pe = 0 to n - 1 do
            match
              Ccdp_craft.Loop_sched.triplet_of_pe sched ~n_pes:n ~pe ~lo:first
                ~hi:last ~step:l.step
            with
            | None -> ()
            | Some (f, la, s) -> exec_range pe l ~first:f ~last:la ~step:s
          done
      | Stmt.Doall (Stmt.Dynamic chunk) ->
          let chunks =
            Ccdp_craft.Loop_sched.dynamic_chunks ~chunk ~lo:first ~hi:last
              ~step:l.step
          in
          List.iter
            (fun (f, la, s) ->
              (* greedy self-scheduling: next chunk to the least-loaded PE *)
              let best = ref 0 in
              for pe = 1 to n - 1 do
                if Memsys.clock sys ~pe < Memsys.clock sys ~pe:!best then best := pe
              done;
              exec_range !best l ~first:f ~last:la ~step:s)
            chunks);
      ()
    end;
    (* reduction merge: combine the partials PE-major onto the incoming
       value and broadcast the result (the barrier's combining tree does
       the arithmetic, so no cycles are charged beyond the barrier) *)
    List.iter
      (fun (v, op, inc) ->
        let acc = ref inc in
        for pe = 0 to n - 1 do
          match Hashtbl.find_opt svs.(pe) v with
          | Some p ->
              acc :=
                Some
                  (match !acc with
                  | Some a -> Fexpr.apply_binop op a p
                  | None -> p)
          | None -> ()
        done;
        match !acc with
        | Some x -> Array.iter (fun h -> Hashtbl.replace h v x) svs
        | None -> ())
      reds;
    Memsys.epoch_boundary sys;
    record_epoch id (Machine.time (Memsys.machine sys) - t0)
  in
  let exec_serial_epoch id stmts =
    incr epochs_executed;
    let t0 = Machine.time (Memsys.machine sys) in
    let memo = Hashtbl.create 8 in
    List.iter (exec_stmt 0 memo) stmts;
    Memsys.epoch_boundary sys;
    record_epoch id (Machine.time (Memsys.machine sys) - t0)
  in
  let rec exec_nodes nodes =
    List.iter
      (fun node ->
        match node with
        | Epoch.E (id, Epoch.Par l) -> exec_parallel id l
        | Epoch.E (id, Epoch.Ser stmts) -> exec_serial_epoch id stmts
        | Epoch.Loop (l, body) ->
            let first = Bound.eval_exec l.Stmt.lo (lookup 0) in
            let last = Bound.eval_exec l.Stmt.hi (lookup 0) in
            let v = ref first in
            let continue () =
              if l.Stmt.step > 0 then !v <= last else !v >= last
            in
            while continue () do
              set_iv_all l.Stmt.var !v;
              exec_nodes body;
              v := !v + l.Stmt.step
            done
        | Epoch.Branch (c, a, b) ->
            if eval_cond 0 (Hashtbl.create 4) c then exec_nodes a
            else exec_nodes b)
      nodes
  in
  exec_nodes ep.Epoch.nodes;
  let mach = Memsys.machine sys in
  {
    mode;
    cycles = Machine.time mach;
    stats = Machine.total_stats mach;
    per_pe_cycles = Array.init n (fun pe -> (Machine.pe mach pe).Pe.clock);
    epochs = !epochs_executed;
    epoch_profile =
      Hashtbl.fold (fun id (n, c) acc -> (id, n, c) :: acc) profile []
      |> List.sort compare;
    sys;
  }

