open Ccdp_ir

type t = {
  decl : Array_decl.t;
  n_pes : int;
  ddim : int option;
  chunk : int;
  per_pe_words : int;
}

let ceil_div a b = (a + b - 1) / b

let make ~n_pes (decl : Array_decl.t) =
  if n_pes <= 0 then invalid_arg "Layout.make: n_pes <= 0";
  match decl.dist with
  | Dist.Replicated ->
      { decl; n_pes; ddim = None; chunk = 0; per_pe_words = Array_decl.words decl }
  | Dist.Dims dims -> (
      match Dist.distributed_dim decl.dist with
      | None ->
          (* undistributed shared array: lives wholly on PE 0 *)
          { decl; n_pes; ddim = None; chunk = 0; per_pe_words = Array_decl.words decl }
      | Some d ->
          let n = decl.dims.(d) in
          let chunk =
            match dims.(d) with
            | Dist.Block -> ceil_div n n_pes
            | Dist.Cyclic -> 1
            | Dist.Block_cyclic w -> w
            | Dist.Degenerate -> assert false
          in
          let per_pe_extent =
            match dims.(d) with
            | Dist.Block -> chunk
            | Dist.Cyclic -> ceil_div n n_pes
            | Dist.Block_cyclic w -> ceil_div n (w * n_pes) * w
            | Dist.Degenerate -> assert false
          in
          let other = Array_decl.elems decl / n in
          {
            decl;
            n_pes;
            ddim = Some d;
            chunk;
            per_pe_words = other * per_pe_extent * decl.elem_words;
          })

let dim_pattern t d =
  match t.decl.dist with
  | Dist.Replicated -> Dist.Degenerate
  | Dist.Dims dims -> dims.(d)

let owner t idx =
  match t.ddim with
  | None -> if t.decl.dist = Dist.Replicated then `Local else `Pe 0
  | Some d -> (
      let i = idx.(d) in
      match dim_pattern t d with
      | Dist.Block -> `Pe (i / t.chunk)
      | Dist.Cyclic -> `Pe (i mod t.n_pes)
      | Dist.Block_cyclic w -> `Pe (i / w mod t.n_pes)
      | Dist.Degenerate -> assert false)

(* Allocation-free owner: [-1] encodes "local to every PE" (replicated /
   private data), any other value the owning PE id. Hot-path twin of
   [owner], which boxes a polymorphic variant per call. *)
let owner_id t idx =
  match t.ddim with
  | None -> if t.decl.dist = Dist.Replicated then -1 else 0
  | Some d -> (
      let i = idx.(d) in
      match dim_pattern t d with
      | Dist.Block -> i / t.chunk
      | Dist.Cyclic -> i mod t.n_pes
      | Dist.Block_cyclic w -> i / w mod t.n_pes
      | Dist.Degenerate -> assert false)

(* Local index along the distributed dimension within the owner's portion. *)
let local_dim_index t i =
  match t.ddim with
  | None -> i
  | Some d -> (
      match dim_pattern t d with
      | Dist.Block -> i - (i / t.chunk * t.chunk)
      | Dist.Cyclic -> i / t.n_pes
      | Dist.Block_cyclic w -> (i / (w * t.n_pes) * w) + (i mod w)
      | Dist.Degenerate -> assert false)

(* Per-PE extent along the distributed dimension. *)
let local_dim_extent t =
  match t.ddim with
  | None -> 0
  | Some d -> (
      let n = t.decl.dims.(d) in
      match dim_pattern t d with
      | Dist.Block -> t.chunk
      | Dist.Cyclic -> ceil_div n t.n_pes
      | Dist.Block_cyclic w -> ceil_div n (w * t.n_pes) * w
      | Dist.Degenerate -> assert false)

let local_offset t idx =
  let rank = Array_decl.rank t.decl in
  if Array.length idx <> rank then invalid_arg "Layout.local_offset: rank mismatch";
  match t.ddim with
  | None -> Array_decl.linear_index t.decl idx * t.decl.elem_words
  | Some dd ->
      (* column-major over the per-PE extents *)
      let lin = ref 0 in
      for d = rank - 1 downto 0 do
        let extent = if d = dd then local_dim_extent t else t.decl.dims.(d) in
        let i = if d = dd then local_dim_index t idx.(d) else idx.(d) in
        lin := (!lin * extent) + i
      done;
      !lin * t.decl.elem_words

let owned_section t pe =
  match t.ddim with
  | None ->
      if t.decl.dist = Dist.Replicated then Section.whole
      else if pe = 0 then Section.whole
      else Section.empty
  | Some dd -> (
      let n = t.decl.dims.(dd) in
      let dim_for d =
        if d <> dd then Section.dim ~lo:0 ~hi:(t.decl.dims.(d) - 1) ~step:1
        else
          match dim_pattern t dd with
          | Dist.Block ->
              let lo = pe * t.chunk and hi = min (n - 1) (((pe + 1) * t.chunk) - 1) in
              if lo > hi then raise Exit else Section.dim ~lo ~hi ~step:1
          | Dist.Cyclic ->
              if pe > n - 1 then raise Exit
              else Section.dim ~lo:pe ~hi:(n - 1) ~step:t.n_pes
          | Dist.Block_cyclic w ->
              (* conservative: hull of this PE's blocks *)
              let lo = pe * w in
              if lo > n - 1 then raise Exit
              else Section.dim ~lo ~hi:(n - 1) ~step:1
          | Dist.Degenerate -> assert false
      in
      try
        Section.of_dims
          (List.init (Array_decl.rank t.decl) dim_for)
      with Exit -> Section.empty)

let pp ppf t =
  Format.fprintf ppf "%a on %d PEs (%d words/PE)" Array_decl.pp t.decl t.n_pes
    t.per_pe_words
