type t = { nx : int; ny : int; nz : int }

(* near-cubic factorization: prefer nx >= ny >= nz with nx*ny*nz >= n,
   exact when n factors nicely (powers of two always do) *)
let of_pes n =
  if n <= 0 then invalid_arg "Torus.of_pes: n_pes <= 0";
  let cube = int_of_float (Float.round (Float.cbrt (float_of_int n))) in
  let best = ref (n, 1, 1) in
  let volume (a, b, c) = a * b * c in
  let badness (a, b, c) = (a - c) + abs (volume (a, b, c) - n) in
  for nz = 1 to cube + 1 do
    for ny = nz to n do
      if ny * nz <= n then begin
        let nx = (n + (ny * nz) - 1) / (ny * nz) in
        let cand = (max nx ny, ny, nz) in
        if volume cand >= n && badness cand < badness !best then best := cand
      end
    done
  done;
  let nx, ny, nz = !best in
  { nx; ny; nz }

let dims t = (t.nx, t.ny, t.nz)

let coords t pe =
  let x = pe mod t.nx in
  let y = pe / t.nx mod t.ny in
  let z = pe / (t.nx * t.ny) in
  (x, y, z)

let ring_dist n a b =
  let d = abs (a - b) in
  min d (n - d)

let hops t a b =
  let xa, ya, za = coords t a and xb, yb, zb = coords t b in
  ring_dist t.nx xa xb + ring_dist t.ny ya yb + ring_dist t.nz za zb

let diameter t = (t.nx / 2) + (t.ny / 2) + (t.nz / 2)

let pp ppf t = Format.fprintf ppf "%dx%dx%d torus" t.nx t.ny t.nz
