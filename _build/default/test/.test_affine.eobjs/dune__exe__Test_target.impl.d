test/test_target.ml: Alcotest Annot Builder Ccdp_analysis Ccdp_ir Ccdp_machine Ccdp_test_support Dist Epoch List Program Ref_info Reference Region Stale Stmt Target
