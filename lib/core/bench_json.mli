(** Machine-readable bench trajectory: [BENCH_<mode>.json].

    Each bench mode (table1, table2, ablate, sweep, ...) accumulates its
    evaluation rows and rendered tables into a document and writes it next
    to the formatted output. The document separates the {e payload} —
    rows and tables, a pure function of the simulated machine, identical
    for every job count — from the {e envelope} (jobs used, host
    wall-clock), which varies run to run. Determinism tests compare
    {!payload_string}; trend tooling reads the whole file.

    Schema (all numbers are JSON numbers, all flags JSON booleans):
    {v
    { "bench": "table1",
      "jobs": 8,
      "wall_clock_s": 1.234567,
      "rows": [ { "workload": "MXM", "pes": 4,
                  "seq_cycles": 1, "base_cycles": 1, "ccdp_cycles": 1,
                  "base_speedup": 1.0, "ccdp_speedup": 1.0,
                  "improvement_pct": 0.0,
                  "base_ok": true, "ccdp_ok": true }, ... ],
      "tables": [ { "title": "...", "headers": ["..."],
                    "rows": [["..."]] }, ... ] }
    v}

    Payload keys ([rows], [tables], [perf], [rivals]) are emitted only
    when non-empty: the perf bench's document carries no dead
    ["rows":[]] / ["tables":[]] keys, and benches that emit rows and
    tables are unchanged byte-for-byte.

    The perf bench emits a ["perf"] key (absent from every other bench):
    {v
      "perf": [ { "workload": "MXM", "mode": "ccdp", "engine": "plan",
                  "pes": 16, "jobs": 1, "wall_s": 0.1, "cycles": 1,
                  "cycles_per_s": 1.0, "accesses": 1,
                  "accesses_per_s": 1.0, "minor_words": 1.0 }, ... ]
    v}
    Perf rows mix simulator facts (cycles, accesses — deterministic) with
    host measurements (wall_s, throughputs, minor_words — not), so the
    perf document's payload is not run-to-run stable and is excluded from
    payload-equality checks. *)

type t

(** One engine timing: a (workload, mode, engine) cell of [bench -- perf].
    [p_engine] is ["plan"] ({!Ccdp_runtime.Interp}) or ["ref"]
    ({!Ccdp_runtime.Interp_ref}); [p_jobs] is the intra-run shard count
    the cell ran with (1 = serial); [p_minor_words] is the
    [Gc.minor_words] delta of the run. *)
type perf_row = {
  p_workload : string;
  p_mode : string;
  p_engine : string;
  p_pes : int;
  p_jobs : int;
  p_wall_s : float;
  p_cycles : int;
  p_cycles_per_s : float;
  p_accesses : int;
  p_accesses_per_s : float;
  p_minor_words : float;
}

(** [create ~bench] starts an empty document for one bench mode. *)
val create : bench:string -> t

(** Append evaluation rows (Tables 1-2 style benches). *)
val add_rows : t -> Experiment.row list -> unit

(** Append a rendered table (ablations, sweeps). *)
val add_table : t -> Experiment.table -> unit

(** Append a perf row (perf bench only; rows keep insertion order). *)
val add_perf : t -> perf_row -> unit

(** Append hardware-coherence rival rows (rivals bench only; emitted under
    a ["rivals"] key with one flat object per workload × machine × mode
    cell — absent from every other bench's payload):
    {v
      "rivals": [ { "workload": "MXM", "machine": "t3d-xbar",
                    "mode": "MSI", "pes": 64, "cycles": 1, "norm": 1.0,
                    "ok": true, "invalidations": 0, "upgrades": 0,
                    "dir_msgs": 0, "bus_conflicts": 0,
                    "link_conflicts": 0 }, ... ]
    v} *)
val add_rivals : t -> Experiment.rival_row list -> unit

(** The deterministic part only: [{"rows": [...], "tables": [...]}] with
    empty sections omitted, independent of job count and wall-clock. *)
val payload_string : t -> string

(** Full document including the envelope. *)
val to_string : t -> jobs:int -> wall_clock_s:float -> string

(** Write [BENCH_<bench>.json] under [dir] (default ["."]); returns the
    path written. *)
val write : ?dir:string -> t -> jobs:int -> wall_clock_s:float -> string
