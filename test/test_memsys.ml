open Ccdp_ir
open Ccdp_machine
open Ccdp_runtime
open Ccdp_analysis
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

let cfg = Config.tiny ~n_pes:2
(* tiny: hit=1 local=10 uncached_local=4 remote=40 store=1/4 pf_issue=2
   pf_extract=2 annex=5 vget=20+1/word line=4 queue=8 *)

let program () =
  let b = B.create ~name:"ms" () in
  B.array_ b "A" [| 8; 8 |] ~dist:(Dist.block_along ~rank:2 ~dim:1);
  B.finish b [ Stmt.Assign (B.ref_ b "A" [ B.A.c 0; B.A.c 0 ], F.const 0.0) ]

let mk ?(plan = Annot.empty ()) mode =
  let sys = Memsys.create cfg (program ()) ~plan mode in
  (* element (i,j) = i + 10j for ground truth *)
  for i = 0 to 7 do
    for j = 0 to 7 do
      Memsys.set sys "A" [| i; j |] (float_of_int (i + (10 * j)))
    done
  done;
  sys

let rref id = Reference.make ~id "A" [| Affine.var "i"; Affine.var "j" |]
let local_idx = [| 0; 0 |] (* owned by PE 0 *)
let remote_idx = [| 0; 5 |] (* owned by PE 1 *)

let plan_with cls op =
  let p = Annot.empty () in
  Hashtbl.replace p.Annot.classes 0 cls;
  (* leads in these tests model potentially-stale references: without a
     Stale verdict they would count as clean latency-hiding prefetches and
     take the relaxed read path *)
  Hashtbl.replace p.Annot.stale.Stale.verdicts 0
    (Stale.Stale { writer_ref = 99; writer_epoch = 0; at_acquire = false });
  (match op with Some o -> Hashtbl.replace p.Annot.ops 0 o | None -> ());
  p

let base_mode =
  [
    case "uncached local read costs the streamed latency" (fun () ->
        let sys = mk Memsys.Base in
        let v = Memsys.read sys ~pe:0 (rref 0) ~idx:local_idx in
        check_float "value" 0.0 v;
        check_int "cycles" cfg.Config.uncached_local (Memsys.clock sys ~pe:0);
        check_int "counted" 1 (Memsys.total_stats sys).Stats.uncached_local);
    case "uncached remote read pays network latency plus annex setup" (fun () ->
        let sys = mk Memsys.Base in
        let v = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        check_float "value" 50.0 v;
        check_int "cycles" (cfg.Config.remote + cfg.Config.annex_setup)
          (Memsys.clock sys ~pe:0);
        (* second remote read to the same PE: annex hit, no setup *)
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:[| 1; 5 |] in
        check_int "second cheaper"
          (cfg.Config.annex_setup + (2 * cfg.Config.remote))
          (Memsys.clock sys ~pe:0));
    case "base mode never fills the cache" (fun () ->
        let sys = mk Memsys.Base in
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:local_idx in
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:local_idx in
        check_int "no hits" 0 (Memsys.total_stats sys).Stats.hits);
  ]

let cached_modes =
  [
    case "seq: miss fills the line, neighbours then hit" (fun () ->
        let sys = mk Memsys.Seq in
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:local_idx in
        check_int "miss cost" cfg.Config.local (Memsys.clock sys ~pe:0);
        let v = Memsys.read sys ~pe:0 (rref 0) ~idx:[| 1; 0 |] in
        check_float "neighbour value" 1.0 v;
        check_int "hit cost" (cfg.Config.local + cfg.Config.hit) (Memsys.clock sys ~pe:0);
        let s = Memsys.total_stats sys in
        check_int "one miss" 1 s.Stats.miss_local;
        check_int "one hit" 1 s.Stats.hits);
    case "write-through: memory current, writer cache patched" (fun () ->
        let sys = mk Memsys.Incoherent in
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:local_idx in
        Memsys.write sys ~pe:0 (rref 1) ~idx:local_idx 99.0;
        check_float "memory" 99.0 (Memsys.get sys "A" local_idx);
        check_float "cache" 99.0 (Memsys.read sys ~pe:0 (rref 0) ~idx:local_idx));
    case "the coherence problem: another PE's cached copy goes stale" (fun () ->
        let sys = mk Memsys.Incoherent in
        (* PE 0 caches the remote element *)
        let v0 = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        check_float "first read" 50.0 v0;
        (* owner (PE 1) overwrites it *)
        Memsys.write sys ~pe:1 (rref 1) ~idx:remote_idx 77.0;
        check_float "memory updated" 77.0 (Memsys.get sys "A" remote_idx);
        (* PE 0 still sees the stale cached copy *)
        check_float "stale read" 50.0 (Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx);
        check_true "stale words counted" (Memsys.stale_cached_words sys > 0));
    case "invalidate mode clears caches at the boundary" (fun () ->
        let sys = mk Memsys.Invalidate in
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        Memsys.write sys ~pe:1 (rref 1) ~idx:remote_idx 77.0;
        Memsys.epoch_boundary sys;
        check_float "fresh after invalidate" 77.0
          (Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx);
        check_true "invalidations counted"
          ((Memsys.total_stats sys).Stats.invalidations > 0));
  ]

let prefetching =
  [
    case "issued prefetch parks in the queue and is consumed on time" (fun () ->
        let plan = plan_with Annot.Lead (Some (Annot.Pipelined { ref_id = 0; loop_id = 0; distance = 2; every = 1 })) in
        let sys = mk ~plan Memsys.Ccdp in
        Memsys.issue_line_prefetch sys ~pe:0 "A" ~idx:remote_idx;
        check_int "issued" 1 (Memsys.total_stats sys).Stats.pf_issued;
        (* burn enough cycles for the data to arrive *)
        Memsys.charge sys ~pe:0 100;
        let v = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        check_float "value" 50.0 v;
        let s = Memsys.total_stats sys in
        check_int "on time" 1 s.Stats.pf_on_time;
        check_int "no stall" 0 s.Stats.stall_cycles);
    case "early consumption stalls for the residual latency" (fun () ->
        let plan = plan_with Annot.Lead (Some (Annot.Pipelined { ref_id = 0; loop_id = 0; distance = 2; every = 1 })) in
        let sys = mk ~plan Memsys.Ccdp in
        Memsys.issue_line_prefetch sys ~pe:0 "A" ~idx:remote_idx;
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        let s = Memsys.total_stats sys in
        check_int "late" 1 s.Stats.pf_late;
        check_true "stalled" (s.Stats.stall_cycles > 0));
    case "dropped prefetch falls back to a bypass fetch" (fun () ->
        let plan = plan_with Annot.Lead (Some (Annot.Pipelined { ref_id = 0; loop_id = 0; distance = 2; every = 1 })) in
        let sys = mk ~plan Memsys.Ccdp in
        (* fill the 8-word queue with two other lines *)
        Memsys.issue_line_prefetch sys ~pe:0 "A" ~idx:[| 0; 4 |];
        Memsys.issue_line_prefetch sys ~pe:0 "A" ~idx:[| 4; 4 |];
        Memsys.issue_line_prefetch sys ~pe:0 "A" ~idx:remote_idx;
        check_int "dropped" 1 (Memsys.total_stats sys).Stats.pf_dropped;
        let v = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        check_float "fresh anyway" 50.0 v;
        check_int "bypassed" 1 (Memsys.total_stats sys).Stats.bypass_reads);
    case "issue invalidates the stale cached line first" (fun () ->
        let plan = plan_with Annot.Lead (Some (Annot.Pipelined { ref_id = 0; loop_id = 0; distance = 2; every = 1 })) in
        let sys = mk ~plan Memsys.Ccdp in
        (* cache the line via a normal read on another ref id *)
        let _ = Memsys.read sys ~pe:0 (rref 5) ~idx:remote_idx in
        Memsys.epoch_boundary sys;
        (* owner overwrites; reader's copy is now stale *)
        Memsys.write sys ~pe:1 (rref 6) ~idx:remote_idx 123.0;
        Memsys.epoch_boundary sys;
        Memsys.issue_line_prefetch sys ~pe:0 "A" ~idx:remote_idx;
        Memsys.charge sys ~pe:0 100;
        check_float "fresh" 123.0 (Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx));
    case "bypass class reads memory around the cache" (fun () ->
        let plan = plan_with Annot.Bypass None in
        let sys = mk ~plan Memsys.Ccdp in
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        Memsys.write sys ~pe:1 (rref 6) ~idx:remote_idx 5.5;
        let v = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        check_float "always fresh" 5.5 v;
        check_int "no fills" 0 (Memsys.total_stats sys).Stats.hits);
    case "moved-back read stalls only for the residual latency" (fun () ->
        let plan = plan_with Annot.Lead (Some (Annot.Back { ref_id = 0; cycles = 30 })) in
        let sys = mk ~plan Memsys.Ccdp in
        Memsys.charge sys ~pe:0 100;
        let t0 = Memsys.clock sys ~pe:0 in
        let v = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        check_float "value" 50.0 v;
        let elapsed = Memsys.clock sys ~pe:0 - t0 in
        (* remote 40 - back 30 = 10 residual + annex 5 + issue 2 + extract 2 *)
        check_int "residual" (10 + 5 + 2 + 2) elapsed);
    case "moved-back issue is clamped at the epoch start" (fun () ->
        let plan = plan_with Annot.Lead (Some (Annot.Back { ref_id = 0; cycles = 1000 })) in
        let sys = mk ~plan Memsys.Ccdp in
        Memsys.epoch_boundary sys;
        Memsys.charge sys ~pe:0 5;
        let t0 = Memsys.clock sys ~pe:0 in
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        let elapsed = Memsys.clock sys ~pe:0 - t0 in
        (* issue at epoch start: 5 cycles already passed, 35 residual *)
        check_int "clamped" (35 + 5 + 2 + 2) elapsed);
  ]

let vget =
  [
    case "vector prefetch stages lines with pipelined arrival" (fun () ->
        let sys = mk Memsys.Ccdp in
        Memsys.vget_issue sys ~pe:0 "A"
          [ [| 0; 5 |]; [| 1; 5 |]; [| 4; 5 |]; [| 5; 5 |] ];
        let s = Memsys.total_stats sys in
        check_int "one op" 1 s.Stats.pf_vector;
        check_int "two lines = 8 words" 8 s.Stats.pf_vector_words;
        Memsys.charge sys ~pe:0 100;
        check_float "first" 50.0 (Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx);
        check_int "on-time" 1 (Memsys.total_stats sys).Stats.pf_on_time);
    case "vget skips lines already fresh but still pays the call" (fun () ->
        let sys = mk Memsys.Ccdp in
        let _ = Memsys.read sys ~pe:0 (rref 9) ~idx:remote_idx in
        let t0 = Memsys.clock sys ~pe:0 in
        Memsys.vget_issue sys ~pe:0 "A" [ [| 0; 5 |] ];
        check_int "nothing transferred" 0 (Memsys.total_stats sys).Stats.pf_vector_words;
        check_true "startup charged" (Memsys.clock sys ~pe:0 - t0 >= cfg.Config.vget_startup));
    case "leftover vget lines count as unused at the boundary" (fun () ->
        let sys = mk Memsys.Ccdp in
        Memsys.vget_issue sys ~pe:0 "A" [ [| 0; 5 |] ];
        Memsys.epoch_boundary sys;
        check_int "unused" 1 (Memsys.total_stats sys).Stats.pf_unused);
  ]

let private_data =
  [
    case "replicated arrays are cached local in every mode" (fun () ->
        let b = B.create ~name:"r" () in
        B.array_ b "Rp" [| 8 |] ~dist:Dist.replicated;
        let p = B.finish b [ Stmt.Assign (B.ref_ b "Rp" [ B.A.c 0 ], F.const 0.0) ] in
        let sys = Memsys.create cfg p ~plan:(Annot.empty ()) Memsys.Base in
        Memsys.set sys "Rp" [| 3 |] 8.0;
        let r = Reference.make ~id:0 "Rp" [| Affine.var "i" |] in
        let _ = Memsys.read sys ~pe:1 r ~idx:[| 3 |] in
        let _ = Memsys.read sys ~pe:1 r ~idx:[| 3 |] in
        let s = Memsys.total_stats sys in
        check_int "cached even in BASE" 1 s.Stats.hits;
        check_int "miss local" 1 s.Stats.miss_local);
  ]


(* HSCD version checks, including the epoch-granularity false-sharing
   corner: a line filled in the same epoch as a concurrent write to a
   different word of that line must not survive the version check. *)
let hscd_tests =
  [
    case "reads of never-rewritten data keep hitting" (fun () ->
        let sys = mk Memsys.Hscd in
        Memsys.epoch_boundary sys;
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        check_int "second is a hit" 1 (Memsys.total_stats sys).Stats.hits);
    case "a later write self-invalidates older lines of the array" (fun () ->
        let sys = mk Memsys.Hscd in
        Memsys.epoch_boundary sys;
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        Memsys.epoch_boundary sys;
        Memsys.write sys ~pe:1 (rref 1) ~idx:remote_idx 42.0;
        Memsys.epoch_boundary sys;
        let v = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        check_float "fresh" 42.0 v;
        check_true "self-invalidated"
          ((Memsys.total_stats sys).Stats.invalidations > 0));
    case "same-epoch fill does not survive a same-epoch line write" (fun () ->
        let sys = mk Memsys.Hscd in
        Memsys.epoch_boundary sys;
        (* PE 1 writes word (1,5); PE 0 then reads word (0,5) of the same
           line, capturing the line mid-epoch *)
        Memsys.write sys ~pe:1 (rref 1) ~idx:[| 1; 5 |] 7.0;
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:[| 0; 5 |] in
        Memsys.epoch_boundary sys;
        (* next epoch, PE 0 reads the word PE 1 wrote: the fill is not
           strictly newer than the version, so it must refetch *)
        let v = Memsys.read sys ~pe:0 (rref 2) ~idx:[| 1; 5 |] in
        check_float "fresh" 7.0 v);
  ]

let staging =
  [
    case "oversized vector staging evicts oldest lines, reads stay correct"
      (fun () ->
        (* tiny cache = 64 words = 16 lines of staging capacity; stage a
           whole 256-word array (64 lines) in one sweep *)
        let b = B.create ~name:"stg" () in
        B.array_ b "BIG" [| 16; 16 |] ~dist:(Dist.block_along ~rank:2 ~dim:1);
        let p =
          B.finish b
            [ Stmt.Assign (B.ref_ b "BIG" [ B.A.c 0; B.A.c 0 ], F.const 0.0) ]
        in
        let sys = Memsys.create cfg p ~plan:(Annot.empty ()) Memsys.Ccdp in
        Memsys.set sys "BIG" [| 3; 3 |] 9.0;
        let idxs =
          List.concat_map
            (fun j -> List.init 16 (fun i -> [| i; j |]))
            (List.init 16 (fun j -> j))
        in
        Memsys.vget_issue sys ~pe:0 "BIG" idxs;
        let s = Memsys.total_stats sys in
        check_true "staged everything" (s.Stats.pf_vector_words > 64);
        check_true "evicted" (s.Stats.pf_evicted > 0);
        (* an evicted (oldest) line demand-misses but returns fresh data *)
        Memsys.charge sys ~pe:0 5000;
        let r = Reference.make ~id:50 "BIG" [| Affine.var "i"; Affine.var "j" |] in
        check_float "correct anyway" 9.0 (Memsys.read sys ~pe:0 r ~idx:[| 3; 3 |]));
  ]

(* a clean lead (the future-work latency-hiding prefetch) trusts any
   cached copy and skips staged-or-cached lines at issue *)
let clean_plan op =
  let p = Annot.empty () in
  Hashtbl.replace p.Annot.classes 0 Annot.Lead;
  Hashtbl.replace p.Annot.ops 0 op;
  (* no Stale verdict: the lead is clean *)
  p

let clean_leads =
  [
    case "a clean lead may hit leftover cached lines" (fun () ->
        let plan =
          clean_plan (Annot.Pipelined { ref_id = 0; loop_id = 0; distance = 2; every = 1 })
        in
        let sys = mk ~plan Memsys.Ccdp in
        (* cache the line in one epoch, read the lead in the next: a stale
           lead would bypass, a clean lead hits *)
        let _ = Memsys.read sys ~pe:0 (rref 7) ~idx:remote_idx in
        Memsys.epoch_boundary sys;
        let _ = Memsys.read sys ~pe:0 (rref 0) ~idx:remote_idx in
        (* the first read was the demand miss; the clean lead hits *)
        check_int "hit" 1 (Memsys.total_stats sys).Stats.hits);
    case "clean issue skips lines with any cached copy" (fun () ->
        let plan =
          clean_plan (Annot.Pipelined { ref_id = 0; loop_id = 0; distance = 2; every = 1 })
        in
        let sys = mk ~plan Memsys.Ccdp in
        let _ = Memsys.read sys ~pe:0 (rref 7) ~idx:remote_idx in
        Memsys.epoch_boundary sys;
        Memsys.issue_line_prefetch ~skip_cached:true sys ~pe:0 "A" ~idx:remote_idx;
        check_int "nothing issued" 0 (Memsys.total_stats sys).Stats.pf_issued);
    case "a stale issue on the same state invalidates and stages" (fun () ->
        let sys = mk Memsys.Ccdp in
        let _ = Memsys.read sys ~pe:0 (rref 7) ~idx:remote_idx in
        Memsys.epoch_boundary sys;
        Memsys.issue_line_prefetch sys ~pe:0 "A" ~idx:remote_idx;
        check_int "issued" 1 (Memsys.total_stats sys).Stats.pf_issued);
  ]

let () =
  Alcotest.run "memsys"
    [
      ("base", base_mode);
      ("cached", cached_modes);
      ("prefetch", prefetching);
      ("vget", vget);
      ("private", private_data);
      ("hscd", hscd_tests);
      ("staging", staging);
      ("clean-leads", clean_leads);
    ]
