(* Protocol property tests for the hardware-coherence rivals.

   Random CRAFT programs (the fuzz generator's distribution, drawn from a
   qcheck-supplied seed) are executed to completion under MSI, MESI and
   the full-map directory, then the final protocol state is checked
   against the textbook invariants. The hardware modes never flush caches
   at barriers, so the end-of-run state is the accumulated result of the
   whole trace — a violated transition anywhere leaves a corrupt state
   these assertions see:

   - single writer: a line has at most one holder in M or E, and such a
     holder is the line's only holder (SWMR);
   - MSI never fills the clean-exclusive state;
   - directory exactness: the presence bitset of every line equals the
     set of caches actually holding it, and the dirty-owner register
     points at the unique M holder (or nobody);
   - write-back before ownership transfer: a protocol that migrated
     ownership without flushing the previous owner's dirty line leaves a
     cached word disagreeing with memory, so [stale_cached_words] must be
     zero and the staleness oracle silent;
   - random traces against the flat-memory reference: final shared-array
     contents must equal the one-PE sequential execution bit-for-bit. *)

open Ccdp_test_support.Tutil
module Memsys = Ccdp_runtime.Memsys
module Interp = Ccdp_runtime.Interp
module Verify = Ccdp_runtime.Verify
module Addr_map = Ccdp_runtime.Addr_map
module Annot = Ccdp_analysis.Annot
module Config = Ccdp_machine.Config
module Coherence = Ccdp_machine.Coherence
module Stats = Ccdp_machine.Stats
module Gen = Ccdp_fuzz.Gen

let hw_modes = Memsys.[ Msi; Mesi; Directory ]

(* A desc is drawn from the fuzz generator's own distribution; qcheck
   only picks the PRNG seed, so shrinking is over seeds (fine — failures
   get reprinted with the full desc). *)
let desc_arb =
  QCheck.make
    ~print:(fun d -> Format.asprintf "%a" Gen.pp d)
    QCheck.Gen.(
      map
        (fun seed -> Gen.generate (Random.State.make [| seed; 0xC0DE |]))
        (int_bound 1_000_000))

let run_hw ?sabotage mode (d : Gen.desc) =
  let cfg = Config.of_kind d.Gen.net ~n_pes:d.Gen.n_pes in
  let program = Gen.build d in
  let r =
    Interp.run cfg ~oracle:true ?sabotage program ~plan:(Annot.empty ())
      ~mode ()
  in
  (cfg, program, r)

let n_lines cfg sys =
  (Addr_map.total_words (Memsys.map sys) + cfg.Config.line_words - 1)
  / cfg.Config.line_words

(* holders of [line] as (pe, state) pairs, invalid filtered out *)
let holders cfg sys ~line =
  let acc = ref [] in
  for pe = cfg.Config.n_pes - 1 downto 0 do
    let st = Memsys.line_state sys ~pe ~line in
    if st <> Coherence.invalid then acc := (pe, st) :: !acc
  done;
  !acc

let for_all_lines cfg sys p =
  let ok = ref true in
  for line = 0 to n_lines cfg sys - 1 do
    if not (p line (holders cfg sys ~line)) then ok := false
  done;
  !ok

let writers = List.filter (fun (_, st) -> st > Coherence.shared)

let prop_single_writer mode d =
  let cfg, _, r = run_hw mode d in
  for_all_lines cfg r.Interp.sys (fun _ hs ->
      match writers hs with
      | [] -> true
      | [ _ ] -> List.length hs = 1 (* SWMR: the writer is alone *)
      | _ :: _ :: _ -> false)

let prop_msi_no_exclusive d =
  let cfg, _, r = run_hw Memsys.Msi d in
  for_all_lines cfg r.Interp.sys (fun _ hs ->
      List.for_all (fun (_, st) -> st <> Coherence.exclusive) hs)

let prop_dir_presence_exact d =
  let cfg, _, r = run_hw Memsys.Directory d in
  for_all_lines cfg r.Interp.sys (fun line hs ->
      Memsys.dir_sharers r.Interp.sys ~line = List.map fst hs)

let prop_dir_owner_is_the_modified_holder d =
  let cfg, _, r = run_hw Memsys.Directory d in
  for_all_lines cfg r.Interp.sys (fun line hs ->
      let dirty = List.filter (fun (_, st) -> st = Coherence.modified) hs in
      match Memsys.dir_owner r.Interp.sys ~line with
      | -1 -> dirty = []
      | ow -> List.map fst dirty = [ ow ])

let prop_no_stale_copy mode d =
  let _, _, r = run_hw mode d in
  Memsys.stale_cached_words r.Interp.sys = 0
  && Memsys.oracle_violation_count r.Interp.sys = 0

let prop_matches_flat_reference mode d =
  let cfg, program, r = run_hw mode d in
  let seq =
    Interp.run
      { cfg with Config.n_pes = 1 }
      program ~plan:(Annot.empty ()) ~mode:Memsys.Seq ()
  in
  (Verify.compare_states ~expected:seq.Interp.sys ~got:r.Interp.sys program)
    .Verify.ok

let per_mode name prop =
  List.map
    (fun mode ->
      qcheck ~count:60
        (Printf.sprintf "%s (%s)" name (Memsys.mode_name mode))
        desc_arb (prop mode))
    hw_modes

let property_suite =
  per_mode "at most one writer per line, and a writer is alone"
    prop_single_writer
  @ [
      qcheck ~count:60 "MSI never holds clean-exclusive" desc_arb
        prop_msi_no_exclusive;
      qcheck ~count:60 "directory presence bits match the caches exactly"
        desc_arb prop_dir_presence_exact;
      qcheck ~count:60 "directory owner register names the unique M holder"
        desc_arb prop_dir_owner_is_the_modified_holder;
    ]
  @ per_mode "write-back precedes ownership transfer (no stale copy survives)"
      prop_no_stale_copy
  @ per_mode "random traces agree with the flat-memory reference"
      prop_matches_flat_reference

(* The qcheck properties are vacuous if the generated programs never
   actually share lines across PEs; this deterministic case pins that the
   invariant checker runs against real cross-PE sharing. *)
let sharing_cases =
  [
    case "tomcatv really exercises invalidations and upgrades" (fun () ->
        let w = Ccdp_workloads.Tomcatv.workload ~n:16 ~iters:1 in
        let cfg = Config.t3d ~n_pes:4 in
        let r =
          Interp.run cfg ~oracle:true
            (Ccdp_ir.Program.inline w.Ccdp_workloads.Workload.program)
            ~plan:(Annot.empty ()) ~mode:Memsys.Msi ()
        in
        check_true "invalidations seen"
          (r.Interp.stats.Stats.invalidations > 0);
        check_true "upgrades seen" (r.Interp.stats.Stats.upgrades > 0);
        check_int "no stale survivors" 0
          (Memsys.stale_cached_words r.Interp.sys));
    case "a fuzz corpus desc with writers has multi-PE sharing under DIR"
      (fun () ->
        (* fixed seed; assert some directory line ever records >1 sharer
           or an invalidation happened, so presence-exactness is not
           tested on single-holder states only *)
        let st = Random.State.make [| 7; 0xC0DE |] in
        let shared_seen = ref false in
        for _ = 1 to 40 do
          let d = Gen.generate st in
          let cfg, _, r = run_hw Memsys.Directory d in
          if
            r.Interp.stats.Stats.invalidations > 0
            || not
                 (for_all_lines cfg r.Interp.sys (fun _ hs ->
                      List.length hs <= 1))
          then shared_seen := true
        done;
        check_true "corpus exercises sharing" !shared_seen);
  ]

let () =
  Alcotest.run "coherence"
    [ ("protocol invariants", property_suite); ("sharing", sharing_cases) ]
