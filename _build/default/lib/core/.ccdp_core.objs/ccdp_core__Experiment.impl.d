lib/core/experiment.ml: Ccdp_analysis Ccdp_ir Ccdp_machine Ccdp_runtime Ccdp_workloads Config Interp List Memsys Pipeline Printf Report Stats Verify Workload
