lib/analysis/stale.ml: Array_decl Ccdp_ir Dist Format Hashtbl List Printf Ref_info Reference Region Section Stmt String
