(** Machine model parameters.

    All costs are in processor clock cycles. The [t3d] preset follows the
    published characterization of the Cray T3D (Arpaci et al., ISCA'95;
    Numrich's address-space report; paper Section 5.1): 8 KB direct-mapped
    data cache with 32-byte lines, a 16-word prefetch queue, a DTB Annex
    whose set-up overhead is significant, ~20-cycle local memory reads and
    remote reads worth hundreds of cycles.

    The interconnect is a first-class description ([net] + [hop] +
    [link_occ], realized by {!Net}): remote costs add [hop] cycles per
    network hop between the accessing PE and the owner, and an optional
    link-occupancy model charges queueing delay at contended links.

    The prefetch scheduling algorithm consumes [cache_words],
    [prefetch_queue_words], [max_outstanding] and [avg_prefetch_latency]
    (paper Section 4.3.1's "important hardware constraints"); the runtime
    charges the per-operation costs. *)

type t = {
  n_pes : int;
  cluster_pes : int;
      (** PEs per coherence cluster (must divide [n_pes]; 1 = flat
          machine). Clusters are hardware-coherent islands: the [Clustered]
          runtime mode snoops MESI-style inside an island and falls back to
          the CCDP stale discipline across islands, and {!Net} charges
          intra-cluster transfers at the cheap local rate. *)
  (* cache *)
  cache_words : int;  (** data cache capacity, 64-bit words *)
  line_words : int;  (** cache line size, 64-bit words *)
  assoc : int;  (** 1 = direct-mapped *)
  (* prefetch engine *)
  prefetch_queue_words : int;  (** prefetch queue capacity, words *)
  annex_entries : int;  (** DTB Annex translation slots *)
  (* latencies *)
  hit : int;  (** cache hit *)
  local : int;  (** local-memory cache-line fill *)
  uncached_local : int;
      (** uncached local read: the T3D's read-ahead buffer streams local
          DRAM well below the full fill latency, which is why the BASE
          codes tolerate uncached local data (paper Section 5.4: VPENTA and
          SWIM BASE "perform quite well") *)
  remote : int;  (** base remote-memory read (plus [hop] per network hop) *)
  net : Net.kind;
      (** interconnect topology: remote costs add [hop] cycles per network
          hop between the accessing PE and the owner ({!Net.hops};
          dimension-ordered minimal routing) *)
  hop : int;  (** per-hop network latency *)
  link_occ : int;
      (** link-occupancy model: cycles a remote transfer holds its
          bottleneck link per cache line moved; concurrent transfers
          sharing the link queue behind each other ([0] = contention
          modelling off) *)
  bus_occ : int;
      (** snoop-bus occupancy: cycles one bus transaction (miss fetch,
          upgrade, write-allocate) holds the machine-wide serialized snoop
          bus in the [Msi]/[Mesi] modes; every PE's transactions queue
          behind each other, which is what stops snooping from scaling
          ([0] = bus arbitration modelling off). Ignored by every other
          mode. *)
  store_local : int;  (** local write (write-through, buffered) *)
  store_remote : int;  (** remote write (buffered, network injection cost) *)
  pf_issue : int;  (** issuing one prefetch instruction *)
  pf_extract : int;  (** extracting a prefetched word from the queue *)
  annex_setup : int;  (** writing a DTB Annex entry (remote targets) *)
  vget_startup : int;  (** SHMEM-style block-transfer start-up *)
  vget_per_word : int;  (** per-word pipelined transfer cost *)
  barrier_base : int;
  barrier_per_level : int;  (** per log2(PE) tree level *)
  flop : int;  (** cost of one floating-point operation *)
  loop_overhead : int;  (** per-iteration control overhead *)
  lock_acquire : int;
      (** acquiring an uncontended lock (remote atomic read-modify-write);
          contention adds queueing delay on top ({!Memsys} arbitration) *)
  lock_release : int;  (** releasing a lock (store + publication fence) *)
}

(** Cray T3D preset at the given machine width (uniform remote latency). *)
val t3d : n_pes:int -> t

(** T3D preset with the 3-D torus distance model: [remote] becomes the
    zero-distance base and each hop adds [hop] cycles, calibrated so the
    machine-average remote cost stays near the uniform preset's. *)
val t3d_torus : n_pes:int -> t

(** T3D preset over a 2-D mesh (no wraparound), same calibration rule. *)
val t3d_mesh : n_pes:int -> t

(** T3D preset over a crossbar: constant one-hop distance, shared-port
    link contention on by default ([link_occ > 0]). *)
val t3d_xbar : n_pes:int -> t

(** CXL-style partially-coherent presets over the crossbar: PEs grouped
    into hardware-coherent islands ([cluster_pes > 1]) with inter-island
    transfers keeping the full hop/link-occupancy costs. The name records
    the island shape at the nominal 64-PE width (2x32 = 2 islands of 32
    PEs); at other widths the island {e count} is preserved, degrading to
    a flat machine when it does not divide [n_pes]. *)
val cxl_2x32 : n_pes:int -> t

val cxl_4x16 : n_pes:int -> t
val cxl_8x8 : n_pes:int -> t

(** Preset with uniform tiny latencies, for algorithm-level tests. *)
val tiny : n_pes:int -> t

(** The T3D preset variant for an interconnect kind. *)
val of_kind : Net.kind -> n_pes:int -> t

(** Named machine presets, for [--machine] style selection. *)
val presets : (string * (n_pes:int -> t)) list

(** Look up a preset by name; bare interconnect kind names ("torus",
    "mesh2d", "crossbar", ...) select the matching T3D variant. *)
val preset_of_string : string -> (n_pes:int -> t) option

val preset_names : string list
val lines : t -> int

(** Barrier cost at the configured width. *)
val barrier_cost : t -> int

(** Number of whole cache lines covering [words] words. *)
val lines_for_words : t -> int -> int

val validate : t -> string list
val pp : Format.formatter -> t -> unit
