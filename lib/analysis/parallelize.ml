open Ccdp_ir

type verdict =
  | Parallel
  | Carried of { array_name : string; distance : int option }
  | Scalar_flow of string
  | Has_doall
  | Has_calls

(* ------------------------------------------------------------------ *)
(* Structure checks                                                    *)
(* ------------------------------------------------------------------ *)

let rec has_doall stmts =
  List.exists
    (fun s ->
      match s with
      | Stmt.For { kind = Stmt.Doall _; _ } -> true
      | Stmt.For l -> has_doall l.Stmt.body
      | Stmt.If (_, a, b) -> has_doall a || has_doall b
      | Stmt.Critical c -> has_doall c.Stmt.cbody
      | Stmt.Assign _ | Stmt.Sassign _ | Stmt.Reduce _ -> false
      | Stmt.Call _ -> false)
    stmts

let rec has_call stmts =
  List.exists
    (fun s ->
      match s with
      | Stmt.Call _ -> true
      | Stmt.For l -> has_call l.Stmt.body
      | Stmt.If (_, a, b) -> has_call a || has_call b
      | Stmt.Critical c -> has_call c.Stmt.cbody
      | Stmt.Assign _ | Stmt.Sassign _ | Stmt.Reduce _ -> false)
    stmts

(* ------------------------------------------------------------------ *)
(* Scalar privatization                                                *)
(* ------------------------------------------------------------------ *)

(* Walk one iteration of the body; [defined] holds scalars definitely
   written so far. A read of an undefined scalar defeats privatization
   (its value flows in from a previous iteration or from outside). Writes
   under conditionals or inside nested loops are not definite. *)
let scalar_flow body =
  let exception Flows of string in
  let module S = Set.Make (String) in
  let expr_reads defined e =
    let rec go = function
      | Fexpr.Svar v -> if not (S.mem v defined) then raise (Flows v)
      | Fexpr.Const _ | Fexpr.Ivar _ | Fexpr.Ref _ -> ()
      | Fexpr.Unop (_, a) -> go a
      | Fexpr.Binop (_, a, b) ->
          go a;
          go b
    in
    go e
  in
  let rec walk ~definite defined stmts =
    List.fold_left
      (fun defined s ->
        match s with
        | Stmt.Assign (_, e) ->
            expr_reads defined e;
            defined
        | Stmt.Sassign (v, e) ->
            expr_reads defined e;
            if definite then S.add v defined else defined
        | Stmt.If (c, a, b) ->
            (match c with
            | Stmt.Fcond (_, x, y) ->
                expr_reads defined x;
                expr_reads defined y
            | Stmt.Icond _ -> ());
            (* within a branch, execution is sequentially definite for the
               paths through it; a scalar is definitely written after the
               if only when both branches write it *)
            let da = walk ~definite defined a in
            let db = walk ~definite defined b in
            if definite then S.union defined (S.inter da db) else defined
        | Stmt.For l ->
            (* the nested loop may execute zero times: its writes are not
               definite, its reads still count *)
            ignore (walk ~definite:false defined l.Stmt.body);
            defined
        | Stmt.Critical c ->
            (* the body runs exactly once per arrival, in order *)
            walk ~definite defined c.Stmt.cbody
        | Stmt.Reduce r ->
            (* a recognized reduction neither reads nor definitely defines
               its variable from the body's point of view: partials are
               private and merged at the barrier *)
            expr_reads defined r.Stmt.rexpr;
            defined
        | Stmt.Call _ -> defined)
      defined stmts
  in
  try
    ignore (walk ~definite:true S.empty body);
    None
  with Flows v -> Some v

(* ------------------------------------------------------------------ *)
(* Dependence testing                                                  *)
(* ------------------------------------------------------------------ *)

type dim_verdict = Disjoint | Same_iter | Neutral | Carried_dist of int | Opaque

let dim_test ~var ~trip (ea : Affine.t) (eb : Affine.t) =
  if Affine.uniformly_generated ea eb then begin
    let c = Affine.coeff ea var in
    let delta = Affine.const_part eb - Affine.const_part ea in
    if c = 0 then if delta = 0 then Neutral else Disjoint
    else if delta = 0 then Same_iter
    else if delta mod c <> 0 then Disjoint
    else
      let k = delta / c in
      match trip with
      | Some t when abs k >= t -> Disjoint
      | _ -> Carried_dist k
  end
  else Opaque

(* Does the pair (a, b) carry a dependence across iterations of [var]? *)
let pair_carries ~var ~trip (a : Reference.t) (b : Reference.t) =
  let n = Array.length a.subs in
  if n <> Array.length b.subs then Some None
  else begin
    let verdicts = Array.init n (fun d -> dim_test ~var ~trip a.subs.(d) b.subs.(d)) in
    if Array.exists (fun v -> v = Disjoint) verdicts then None
    else if Array.exists (fun v -> v = Same_iter) verdicts then None
    else if Array.exists (fun v -> v = Opaque) verdicts then Some None
    else
      (* dims are Neutral or Carried_dist: any carried distance (or a pure
         Neutral aliasing, same element every iteration) is a dependence *)
      let dist =
        Array.fold_left
          (fun acc v -> match v with Carried_dist k -> Some k | _ -> acc)
          None verdicts
      in
      match dist with Some k -> Some (Some k) | None -> Some (Some 0)
  end

let judge ~params ~outer (l : Stmt.loop) =
  if has_call l.Stmt.body then Has_calls
  else if has_doall l.Stmt.body then Has_doall
  else
    match scalar_flow l.Stmt.body with
    | Some v -> Scalar_flow v
    | None -> (
        let env = Iterspace.of_loops ~params (outer @ [ l ]) in
        let trip = Iterspace.trip_count l env in
        let refs =
          List.rev
            (Stmt.fold_refs
               (fun acc ~write (r : Reference.t) -> (write, r) :: acc)
               [] l.Stmt.body)
        in
        let conflict = ref None in
        List.iter
          (fun (wa, (a : Reference.t)) ->
            List.iter
              (fun (wb, (b : Reference.t)) ->
                if
                  !conflict = None && (wa || wb)
                  && String.equal a.array_name b.array_name
                then
                  match pair_carries ~var:l.Stmt.var ~trip a b with
                  | Some dist ->
                      conflict := Some (Carried { array_name = a.array_name; distance = dist })
                  | None -> ())
              refs)
          refs;
        match !conflict with Some v -> v | None -> Parallel)

(* ------------------------------------------------------------------ *)
(* Transformation                                                      *)
(* ------------------------------------------------------------------ *)

type report = {
  promoted : (int * string) list;
  rejected : (int * string * verdict) list;
}

let default_sched (l : Stmt.loop) =
  match (l.Stmt.lo, l.Stmt.hi) with
  | Bound.Known lo, Bound.Known hi
    when Affine.is_const lo && Affine.is_const hi ->
      Stmt.Static_aligned (Affine.const_part hi + 1)
  | _ -> Stmt.Static_block

let transform ?(sched = default_sched) (p : Program.t) =
  if p.Program.procs <> [] then
    invalid_arg "Parallelize.transform: inline procedures first";
  let promoted = ref [] and rejected = ref [] in
  let rec walk outer in_par stmts =
    List.map
      (fun s ->
        match s with
        | Stmt.Assign _ | Stmt.Sassign _ | Stmt.Call _ | Stmt.Reduce _ -> s
        | Stmt.Critical c ->
            Stmt.Critical { c with cbody = walk outer in_par c.Stmt.cbody }
        | Stmt.If (c, a, b) -> Stmt.If (c, walk outer in_par a, walk outer in_par b)
        | Stmt.For ({ kind = Stmt.Doall _; _ } as l) ->
            Stmt.For { l with body = walk (outer @ [ l ]) true l.Stmt.body }
        | Stmt.For l ->
            if in_par then
              (* nested inside parallelism already: leave serial *)
              Stmt.For { l with body = walk (outer @ [ l ]) in_par l.Stmt.body }
            else (
              match judge ~params:p.Program.params ~outer l with
              | Parallel ->
                  promoted := (l.Stmt.loop_id, l.Stmt.var) :: !promoted;
                  Stmt.For { l with kind = Stmt.Doall (sched l) }
              | v ->
                  rejected := (l.Stmt.loop_id, l.Stmt.var, v) :: !rejected;
                  Stmt.For { l with body = walk (outer @ [ l ]) in_par l.Stmt.body }))
      stmts
  in
  let main = walk [] false p.Program.main in
  ( { p with Program.main },
    { promoted = List.rev !promoted; rejected = List.rev !rejected } )

let pp_verdict ppf = function
  | Parallel -> Format.pp_print_string ppf "parallel"
  | Carried { array_name; distance } ->
      Format.fprintf ppf "loop-carried dependence on %s%s" array_name
        (match distance with
        | Some k -> Printf.sprintf " (distance %d)" k
        | None -> "")
  | Scalar_flow v -> Format.fprintf ppf "scalar %s read before written" v
  | Has_doall -> Format.pp_print_string ppf "already contains a DOALL"
  | Has_calls -> Format.pp_print_string ppf "contains procedure calls"

let pp_report ppf r =
  Format.fprintf ppf "@[<v>parallelizer: promoted %d loops, rejected %d"
    (List.length r.promoted) (List.length r.rejected);
  List.iter
    (fun (id, v) -> Format.fprintf ppf "@,  loop %d (%s): promoted to DOALL" id v)
    r.promoted;
  List.iter
    (fun (id, v, why) ->
      Format.fprintf ppf "@,  loop %d (%s): %a" id v pp_verdict why)
    r.rejected;
  Format.fprintf ppf "@]"
