examples/matrix_multiply.ml: Ccdp_analysis Ccdp_core Ccdp_machine Ccdp_runtime Ccdp_workloads Config Experiment Format Interp List Memsys Mxm Pipeline Stats Workload
