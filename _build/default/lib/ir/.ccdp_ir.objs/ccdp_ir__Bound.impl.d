lib/ir/bound.ml: Affine Format
