lib/machine/prefetch_queue.ml: List
