lib/ir/bound.mli: Affine Format
