(** CRAFT-flavoured source emission.

    Renders a compiled program the way the paper's hand-transformed codes
    looked: Fortran-style loops, `CDIR$ SHARED` distribution directives,
    `CDIR$ DOSHARED` on parallel loops, and `C$CCDP` comments carrying the
    classification and the scheduled prefetch operations. Pseudo-Fortran —
    0-based subscripts and the IR's operators are kept — but close enough
    that a reader of the paper can see exactly where every prefetch landed.
*)

val emit : Format.formatter -> Pipeline.t -> unit
val to_string : Pipeline.t -> string
