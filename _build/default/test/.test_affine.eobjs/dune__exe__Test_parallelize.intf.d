test/test_parallelize.mli:
