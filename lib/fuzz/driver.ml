module Config = Ccdp_machine.Config
module Pipeline = Ccdp_core.Pipeline
module Interp = Ccdp_runtime.Interp
module Memsys = Ccdp_runtime.Memsys
module Verify = Ccdp_runtime.Verify
module Schedule = Ccdp_analysis.Schedule
module Stale = Ccdp_analysis.Stale
module Annot = Ccdp_analysis.Annot

type failure_kind = Mismatch | Oracle

type failure = {
  f_index : int;
  f_variant : string;
  f_kind : failure_kind;
  f_detail : string;
  f_original : Gen.desc;
  f_shrunk : Gen.desc;
  f_reproducer : string option;
}

type summary = {
  s_programs : int;
  s_runs : int;
  s_oracle_checks : int;
  s_failures : failure list;
}

(* BASE runs with an empty plan and uncached shared data; the CCDP
   variants compile with one scheduling technique allowed (the others
   fall back through the demotion chain, so each plan is still total). *)
type variant = {
  vname : string;
  mode : Memsys.mode;
  tuning : Schedule.tuning option;
}

let variants =
  let t = Schedule.default_tuning in
  [
    { vname = "BASE"; mode = Memsys.Base; tuning = None };
    { vname = "CCDP/all"; mode = Memsys.Ccdp; tuning = Some t };
    {
      vname = "CCDP/vpg";
      mode = Memsys.Ccdp;
      tuning = Some { t with Schedule.allow_sp = false; allow_mbp = false };
    };
    {
      vname = "CCDP/sp";
      mode = Memsys.Ccdp;
      tuning = Some { t with Schedule.allow_vpg = false; allow_mbp = false };
    };
    {
      vname = "CCDP/mbp";
      mode = Memsys.Ccdp;
      tuning = Some { t with Schedule.allow_vpg = false; allow_sp = false };
    };
  ]

let variant_names = List.map (fun v -> v.vname) variants

let cfg_of (d : Gen.desc) =
  if d.Gen.torus then Config.t3d_torus ~n_pes:d.Gen.n_pes
  else Config.t3d ~n_pes:d.Gen.n_pes

let drop_stale_mark k (r : Stale.result) =
  match List.sort compare (Stale.stale_ids r) with
  | [] -> r
  | ids ->
      let n = List.length ids in
      let victim = List.nth ids (((k mod n) + n) mod n) in
      let verdicts = Hashtbl.copy r.Stale.verdicts in
      Hashtbl.replace verdicts victim Stale.Clean;
      { r with Stale.verdicts; n_stale = r.Stale.n_stale - 1 }

let run_variant ?mutate_stale cfg (d : Gen.desc) program v =
  match v.tuning with
  | None ->
      Interp.run cfg ~oracle:true program ~plan:(Annot.empty ()) ~mode:v.mode ()
  | Some tuning ->
      let compiled =
        Pipeline.compile cfg ~tuning ~prefetch_clean:d.Gen.pclean ?mutate_stale
          program
      in
      Interp.run cfg ~oracle:true compiled.Pipeline.program
        ~plan:compiled.Pipeline.plan ~mode:v.mode ()

(* One description through the sequential baseline plus every variant;
   returns (variant runs, oracle assertions, first failure). The oracle is
   consulted before the numeric comparison: a stale hit whose value happens
   to coincide with the fresh one is still a bug. *)
let check_full ?mutate_stale (d : Gen.desc) =
  let cfg = cfg_of d in
  let program = Gen.build d in
  let seq =
    Interp.run
      { cfg with Config.n_pes = 1 }
      program ~plan:(Annot.empty ()) ~mode:Memsys.Seq ()
  in
  let runs = ref 0 and checks = ref 0 in
  let rec loop = function
    | [] -> None
    | v :: rest -> (
        let r = run_variant ?mutate_stale cfg d program v in
        incr runs;
        checks := !checks + Memsys.oracle_checked r.Interp.sys;
        let nviol = Memsys.oracle_violation_count r.Interp.sys in
        if nviol > 0 then
          let detail =
            Format.asprintf "@[<v>%d stale hit(s); first witnesses:@,%a@]"
              nviol
              (Format.pp_print_list Memsys.pp_violation)
              (Memsys.oracle_violations r.Interp.sys)
          in
          Some (v.vname, Oracle, detail)
        else
          let rep =
            Verify.compare_states ~expected:seq.Interp.sys ~got:r.Interp.sys
              program
          in
          if not rep.Verify.ok then
            Some (v.vname, Mismatch, Format.asprintf "%a" Verify.pp_report rep)
          else loop rest)
  in
  let failure = loop variants in
  (!runs, !checks, failure)

let check_desc ?mutate_stale d =
  let _, _, failure = check_full ?mutate_stale d in
  failure

let reproducer_text (d : Gen.desc) =
  let compiled =
    Pipeline.compile (cfg_of d) ~prefetch_clean:d.Gen.pclean (Gen.build d)
  in
  Ccdp_core.Craft_emit.to_string compiled

(* Program generation stays a single sequential PRNG walk (so a seed
   names the same program list for every job count); the expensive part —
   compiling and running every variant of every program — is sharded over
   the pool in batches. Results are folded in index order, so the summary
   (and the stderr progress trace) is identical to the sequential run.
   Shrinking happens on the calling domain: failures are rare, and the
   shrinker's own runs are cheap one-program checks. *)
let campaign ?jobs ?mutate_stale ?dump_dir ?(progress = fun _ -> ()) ~seed
    ~count () =
  let rng = Random.State.make [| seed; 0x51ab |] in
  let descs = List.init count (fun _ -> Gen.generate rng) in
  let runs = ref 0 and checks = ref 0 and failures = ref [] in
  let consume i (d, (r, c, failure)) =
    runs := !runs + r;
    checks := !checks + c;
    (match failure with
    | None -> ()
    | Some (vname, kind, detail) ->
        let still_fails d' = Option.is_some (check_desc ?mutate_stale d') in
        let shrunk = Shrink.minimize d ~still_fails in
        let reproducer =
          match dump_dir with
          | None -> None
          | Some dir ->
              (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
              let path =
                Filename.concat dir (Printf.sprintf "fuzz_%d_%d.craft" seed i)
              in
              let oc = open_out path in
              output_string oc (reproducer_text shrunk);
              close_out oc;
              Some path
        in
        failures :=
          {
            f_index = i;
            f_variant = vname;
            f_kind = kind;
            f_detail = detail;
            f_original = d;
            f_shrunk = shrunk;
            f_reproducer = reproducer;
          }
          :: !failures);
    progress (i + 1)
  in
  Ccdp_exec.Pool.with_pool ?jobs (fun pool ->
      (* batches keep the progress callback responsive without a
         cross-domain channel: check in parallel, fold sequentially *)
      let batch = max 1 (8 * Ccdp_exec.Pool.jobs pool) in
      let rec go start ds =
        match ds with
        | [] -> ()
        | _ ->
            let rec split k = function
              | d :: rest when k > 0 ->
                  let taken, rest = split (k - 1) rest in
                  (d :: taken, rest)
              | rest -> ([], rest)
            in
            let taken, rest = split batch ds in
            let checked =
              Ccdp_exec.Pool.map_runs pool
                ~label:(fun i -> Printf.sprintf "fuzz program #%d" (start + i))
                (fun _ d -> (d, check_full ?mutate_stale d))
                taken
            in
            List.iteri (fun i r -> consume (start + i) r) checked;
            go (start + List.length taken) rest
      in
      go 0 descs);
  {
    s_programs = count;
    s_runs = !runs;
    s_oracle_checks = !checks;
    s_failures = List.rev !failures;
  }

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v2>program #%d, variant %s: %s@,%s@,shrunk to:@,%a%a@]" f.f_index
    f.f_variant
    (match f.f_kind with
    | Mismatch -> "numeric mismatch vs sequential"
    | Oracle -> "staleness-oracle violation")
    f.f_detail Gen.pp f.f_shrunk
    (fun ppf -> function
      | None -> ()
      | Some p -> Format.fprintf ppf "@,reproducer: %s" p)
    f.f_reproducer

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>fuzz: %d programs, %d variant runs, %d oracle checks, %d failure(s)"
    s.s_programs s.s_runs s.s_oracle_checks
    (List.length s.s_failures);
  List.iter (fun f -> Format.fprintf ppf "@,%a" pp_failure f) s.s_failures;
  Format.fprintf ppf "@]"
