test/test_experiment.ml: Alcotest Buffer Ccdp_analysis Ccdp_core Ccdp_machine Ccdp_runtime Ccdp_test_support Ccdp_workloads Experiment Extras Format List Pipeline Report String
