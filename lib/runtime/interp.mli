(** The value-accurate program interpreter.

    Executes a (call-free) program over the timed memory system: serial
    epochs run on PE 0, parallel epochs distribute DOALL iterations per
    their schedule (static triplets, or greedy least-loaded assignment of
    dynamic chunks), every epoch ends in a barrier. In [Ccdp] mode the
    plan's prefetch operations fire: vector prefetches at loop entry,
    software-pipelined prologue + steady-state line prefetches per
    iteration, moved-back prefetches at the reference itself.

    Because memory and caches carry real values, the final array contents
    are the proof of coherence: {!Verify.against_sequential} compares them
    against a sequential execution. *)

type result = {
  mode : Memsys.mode;
  cycles : int;  (** simulated machine time *)
  stats : Ccdp_machine.Stats.t;  (** machine-wide totals *)
  per_pe_cycles : int array;
  epochs : int;  (** epoch executions (loop iterations counted) *)
  epoch_profile : (int * int * int) list;
      (** per static epoch id: (executions, accumulated machine cycles) —
          where the time goes, summed across structure-loop iterations *)
  sys : Memsys.t;  (** final memory state, for read-back / verification *)
}

(** Render the epoch profile against the program's epoch structure. *)
val pp_profile : Format.formatter -> Ccdp_ir.Epoch.t -> result -> unit

(** Run a program. The program must be call-free ({!Ccdp_ir.Program.inline}
    first); [init] populates array values before timing starts; [plan]
    should be {!Ccdp_analysis.Annot.empty} for non-CCDP modes. [oracle]
    enables the dynamic staleness oracle (see {!Memsys.create}); inspect
    its verdicts on the result's [sys] via {!Memsys.oracle_violations}.
    [sabotage] arms protocol fault injection in the hardware-coherence
    modes (see {!Memsys.sabotage}).

    [pool] enables intra-run parallel epoch simulation: statically
    scheduled DOALL epochs execute their PEs in up to [Pool.jobs pool]
    domain shards when the memory system permits it
    ({!Memsys.shardable}); every other construct — and every
    hardware-coherence mode, dynamically scheduled loop, or
    link-contention machine — falls back to the serial walk. The result
    is bit-identical to the serial run at every job count: simulated
    cycles, per-PE clocks, statistics, oracle log and memory image.
    Safe to pass a pool the caller is itself running inside (nested
    submission serializes, see {!Ccdp_exec.Pool.map_shards}). *)
val run :
  Ccdp_machine.Config.t ->
  ?oracle:bool ->
  ?sabotage:Memsys.sabotage ->
  ?pool:Ccdp_exec.Pool.t ->
  Ccdp_ir.Program.t ->
  plan:Ccdp_analysis.Annot.plan ->
  mode:Memsys.mode ->
  ?init:(Memsys.t -> unit) ->
  unit ->
  result

val pp_result : Format.formatter -> result -> unit
