(** Coherence verification by numeric comparison.

    The strongest correctness statement this reproduction makes: after a
    parallel run under any coherence scheme, every shared array must equal
    the sequential execution's result bit-for-bit (the kernels perform no
    cross-iteration reductions, so parallel evaluation order matches
    sequential order elementwise). A scheme that lets a PE read a stale
    cached copy produces different numbers and fails here — which is
    exactly what the [Incoherent] mode demonstrates. *)

type mismatch = {
  array_name : string;
  index : int array;
  expected : float;
  got : float;
}

type report = {
  ok : bool;
  checked : int;  (** elements compared *)
  mismatches : mismatch list;  (** first few offenders *)
  max_abs_diff : float;
}

(** Compare every element of every shared array between two final states.
    [tol] is an absolute tolerance (default 0: exact). *)
val compare_states :
  ?tol:float -> ?max_report:int -> expected:Memsys.t -> got:Memsys.t ->
  Ccdp_ir.Program.t -> report

(** Run the program sequentially (1 PE, empty plan, same [init]) and compare
    the given result against it. *)
val against_sequential :
  ?tol:float ->
  Ccdp_ir.Program.t ->
  init:(Memsys.t -> unit) ->
  Interp.result ->
  report

val pp_report : Format.formatter -> report -> unit
