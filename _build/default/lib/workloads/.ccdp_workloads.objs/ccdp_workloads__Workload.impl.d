lib/workloads/workload.ml: Ccdp_ir List Printf String
