lib/analysis/locality.ml: Affine Array Array_decl Ccdp_ir List Ref_info Reference
