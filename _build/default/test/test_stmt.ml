open Ccdp_ir
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

(* a small loop nest used by several cases *)
let build () =
  let b = B.create ~name:"t" () in
  B.param b "n" 8;
  B.array_ b "A" [| 8; 8 |];
  B.array_ b "Bv" [| 8; 8 |];
  let open B.A in
  let i = v "i" and j = v "j" in
  let body =
    B.for_ b "i" (bc 0) (bc 7)
      [
        B.assign b "A" [ i; j ] F.(B.rd b "Bv" [ i; j ] + B.rd b "Bv" [ i +! c 1; j ]);
        Stmt.Sassign ("t", F.(B.rd b "A" [ i; j ] * const 2.0));
      ]
  in
  (b, B.doall b "j" (bc 0) (bc 7) [ body ])

let folds =
  [
    case "fold visits nested statements" (fun () ->
        let _, s = build () in
        let count = Stmt.fold (fun acc _ -> acc + 1) 0 [ s ] in
        (* doall + for + assign + sassign *)
        check_int "stmts" 4 count);
    case "fold_refs counts reads and writes" (fun () ->
        let _, s = build () in
        let reads = ref 0 and writes = ref 0 in
        ignore
          (Stmt.fold_refs
             (fun () ~write _ -> if write then incr writes else incr reads)
             () [ s ]);
        check_int "reads" 3 !reads;
        check_int "writes" 1 !writes);
    case "direct_reads of an assign lists RHS reads in order" (fun () ->
        let b = B.create ~name:"x" () in
        B.array_ b "A" [| 4 |];
        let open B.A in
        let s = B.assign b "A" [ c 0 ] F.(B.rd b "A" [ c 1 ] + B.rd b "A" [ c 2 ]) in
        let names =
          List.map (fun (r : Reference.t) -> Affine.const_part r.subs.(0)) (Stmt.direct_reads s)
        in
        Alcotest.(check (list int)) "order" [ 1; 2 ] names);
    case "direct_write only for assigns" (fun () ->
        check_true "sassign none" (Stmt.direct_write (Stmt.Sassign ("x", F.const 1.0)) = None));
    case "fcond reads are visited by fold_refs" (fun () ->
        let b = B.create ~name:"x" () in
        B.array_ b "A" [| 4 |];
        let open B.A in
        let s =
          Stmt.If
            (Stmt.Fcond (Stmt.Gt, B.rd b "A" [ c 0 ], F.const 0.0), [], [])
        in
        let reads = Stmt.fold_refs (fun acc ~write:_ _ -> acc + 1) 0 [ s ] in
        check_int "cond read" 1 reads);
  ]

let subst_and_ids =
  [
    case "subst_env respects loop-variable shadowing" (fun () ->
        let b = B.create ~name:"x" () in
        B.array_ b "A" [| 8 |];
        let open B.A in
        let inner = B.for_ b "m" (bc 0) (bc 3) [ B.assign b "A" [ v "m" ] (F.const 1.0) ] in
        let s = Stmt.subst_env inner [ ("m", Affine.const 9) ] in
        (* the loop rebinds m: body subscript must still be the variable m *)
        match s with
        | Stmt.For { body = [ Stmt.Assign (r, _) ]; _ } ->
            check_int "coeff kept" 1 (Affine.coeff r.Reference.subs.(0) "m")
        | _ -> Alcotest.fail "shape");
    case "subst_env rewrites free variables in bounds and subscripts" (fun () ->
        let b = B.create ~name:"x" () in
        B.array_ b "A" [| 8 |];
        let open B.A in
        let s = B.for_ b "m" (bc 0) (bv "k") [ B.assign b "A" [ v "k" ] (F.const 1.0) ] in
        match Stmt.subst_env s [ ("k", Affine.const 5) ] with
        | Stmt.For { hi; body = [ Stmt.Assign (r, _) ]; _ } ->
            check_true "hi" (Bound.eval hi [] = Some 5);
            check_int "sub" 5 (Affine.const_part r.Reference.subs.(0))
        | _ -> Alcotest.fail "shape");
    case "map_ref_ids renumbers every reference" (fun () ->
        let _, s = build () in
        let s' = Stmt.map_ref_ids (fun id -> id + 100) s in
        ignore
          (Stmt.fold_refs
             (fun () ~write:_ (r : Reference.t) -> check_true "bumped" (r.id >= 100))
             () [ s' ]));
    case "map_loop_ids renumbers every loop" (fun () ->
        let _, s = build () in
        let s' = Stmt.map_loop_ids (fun id -> id + 50) s in
        ignore
          (Stmt.fold
             (fun () st ->
               match st with
               | Stmt.For l -> check_true "bumped" (l.Stmt.loop_id >= 50)
               | _ -> ())
             () [ s' ]));
    case "direct_flops counts operators" (fun () ->
        let b = B.create ~name:"x" () in
        B.array_ b "A" [| 4 |];
        let open B.A in
        let s = B.assign b "A" [ c 0 ] F.(const 1.0 + (const 2.0 * const 3.0)) in
        check_int "flops" 2 (Stmt.direct_flops s));
  ]

let cmp_tests =
  [
    case "eval_cmp covers all operators" (fun () ->
        check_true "lt" (Stmt.eval_cmp Stmt.Lt 1 2);
        check_true "le" (Stmt.eval_cmp Stmt.Le 2 2);
        check_true "gt" (Stmt.eval_cmp Stmt.Gt 3 2);
        check_true "ge" (Stmt.eval_cmp Stmt.Ge 2 2);
        check_true "eq" (Stmt.eval_cmp Stmt.Eq 2 2);
        check_true "ne" (Stmt.eval_cmp Stmt.Ne 1 2));
    case "eval_fcmp mirrors eval_cmp" (fun () ->
        check_true "lt" (Stmt.eval_fcmp Stmt.Lt 1.0 2.0);
        check_false "eq" (Stmt.eval_fcmp Stmt.Eq 1.0 2.0));
  ]

let () =
  Alcotest.run "stmt"
    [ ("folds", folds); ("subst-ids", subst_and_ids); ("cmp", cmp_tests) ]
