lib/ir/craft_parse.ml: Affine Array Bound Builder Dist Fexpr Hashtbl List Printf Program Stmt String
