(* From sequential code to CCDP, end to end.

   The paper's methodology (Section 5.2) starts by running the Polaris
   parallelizing compiler over sequential Fortran. This example does the
   whole journey inside this library:

     sequential loops
       -> dependence test + scalar privatization (Parallelize)
       -> DOALL epochs
       -> stale reference analysis / target analysis / prefetch scheduling
       -> simulated execution with numeric verification.

   Run with: dune exec examples/auto_parallel.exe *)

open Ccdp_ir
open Ccdp_analysis
open Ccdp_runtime
open Ccdp_core
module B = Builder
module F = Builder.F

(* a purely sequential red/black-ish relaxation with a private temporary,
   a genuine recurrence (left serial), and an accumulation (left serial) *)
let sequential_program n =
  let b = B.create ~name:"seqprog" () in
  B.param b "n" n;
  let dist = Dist.block_along ~rank:2 ~dim:1 in
  B.array_ b "U" [| n; n |] ~dist;
  B.array_ b "V" [| n; n |] ~dist;
  let open B.A in
  let rd = B.rd b in
  let i = v "i" and j = v "j" in
  let init =
    B.for_ b "j" (bc 0)
      (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "U" [ i; j ] F.((F.iv "i" + F.iv "j") * const 0.05);
            B.assign b "V" [ i; j ] (F.const 0.0);
          ];
      ]
  in
  (* parallelizable: independent columns, privatizable temporary *)
  let relax =
    B.for_ b "j" (bc 1)
      (bc (n - 2))
      [
        B.for_ b "i" (bc 1)
          (bc (n - 2))
          [
            Stmt.Sassign
              ("t", F.(rd "U" [ i; j -! c 1 ] + rd "U" [ i; j +! c 1 ]));
            B.assign b "V" [ i; j ]
              F.((sv "t" + rd "U" [ i -! c 1; j ] + rd "U" [ i +! c 1; j ])
                 * const 0.25);
          ];
      ]
  in
  (* NOT parallelizable: a first-order recurrence along j *)
  let recurrence =
    B.for_ b "j" (bc 1)
      (bc (n - 2))
      [
        B.for_ b "i" (bc 1)
          (bc (n - 2))
          [
            B.assign b "V" [ i; j ]
              F.(rd "V" [ i; j ] + (rd "V" [ i; j -! c 1 ] * const 0.5));
          ];
      ]
  in
  (* NOT parallelizable: scalar accumulation (no reduction recognition) *)
  let accumulate =
    [
      Stmt.Sassign ("sum", F.const 0.0);
      B.for_ b "k" (bc 1)
        (bc (n - 2))
        [ Stmt.Sassign ("sum", F.(sv "sum" + rd "V" [ v "k"; c 1 ])) ];
      B.assign b "U" [ c 0; c 0 ] (F.sv "sum");
    ]
  in
  B.finish b ([ init; relax; recurrence ] @ accumulate)

let () =
  let n = 32 and n_pes = 8 in
  let p = sequential_program n in

  (* 1. Polaris-style parallelization *)
  let p', report = Parallelize.transform p in
  Format.printf "%a@.@." Parallelize.pp_report report;

  (* 2. the CCDP pipeline over the auto-parallelized program *)
  let cfg = Ccdp_machine.Config.t3d ~n_pes in
  let compiled = Pipeline.compile cfg p' in
  Format.printf "stale: %d of %d reads; %a@.@."
    compiled.Pipeline.stale.Stale.n_stale compiled.Pipeline.stale.Stale.n_reads
    Annot.pp_counts
    (Annot.count compiled.Pipeline.plan);

  (* 3. run and verify *)
  let run mode plan =
    Interp.run cfg compiled.Pipeline.program ~plan ~mode ()
  in
  let seq =
    Interp.run (Ccdp_machine.Config.t3d ~n_pes:1) (Program.inline p)
      ~plan:(Annot.empty ()) ~mode:Memsys.Seq ()
  in
  let base = run Memsys.Base (Annot.empty ()) in
  let ccdp = run Memsys.Ccdp compiled.Pipeline.plan in
  let v = Verify.against_sequential p' ~init:(fun _ -> ()) ccdp in
  Format.printf "sequential: %8d cycles@." seq.Interp.cycles;
  Format.printf "BASE x%d:   %8d cycles (%.2fx)@." n_pes base.Interp.cycles
    (float_of_int seq.Interp.cycles /. float_of_int base.Interp.cycles);
  Format.printf "CCDP x%d:   %8d cycles (%.2fx)  %s@." n_pes ccdp.Interp.cycles
    (float_of_int seq.Interp.cycles /. float_of_int ccdp.Interp.cycles)
    (if v.Verify.ok then "- verified" else "- WRONG")
