open Ccdp_ir

type lsc = {
  epoch : int;
  inner : Stmt.loop option;
  groups : Locality.group list;
}

type t = { classes : (int, Annot.cls) Hashtbl.t; lscs : lsc list }

let analyze ?(innermost_only = true) ?(group_spatial = true)
    ?(prefetch_clean = false) region cfg infos stale =
  let classes = Hashtbl.create 64 in
  (* candidates for prefetching, bucketed by (epoch, innermost loop) *)
  let buckets : (int * int option, Ref_info.t list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let bucket_order = ref [] in
  let prefetchable_clean (i : Ref_info.t) =
    (* clean reads worth latency-hiding prefetches: innermost-loop reads of
       distributed shared data (replicated/private data is always cached
       local; prefetching it buys nothing) *)
    prefetch_clean && i.in_innermost
    &&
    let d = Region.decl region i.ref_.Reference.array_name in
    d.Ccdp_ir.Array_decl.shared
    && d.Ccdp_ir.Array_decl.dist <> Ccdp_ir.Dist.Replicated
  in
  List.iter
    (fun (i : Ref_info.t) ->
      if not i.write then
        let id = i.ref_.Reference.id in
        match Stale.verdict stale id with
        | Stale.Clean when not (prefetchable_clean i) ->
            Hashtbl.replace classes id Annot.Normal
        | Stale.Stale { at_acquire = true; _ } ->
            (* potentially stale at lock acquire: every prefetch technique
               places its issue outside the critical section (loop entry or
               moved back past the acquire), where a fill still observes
               the pre-acquire memory image — the only discharge is to
               bypass the cache inside the section *)
            Hashtbl.replace classes id Annot.Bypass
        | Stale.Clean | Stale.Stale _ ->
            if
              Stale.verdict stale id <> Stale.Clean
              && innermost_only && i.loops <> [] && not i.in_innermost
            then
              (* located in a loop nest but not in the innermost loop:
                 eliminated from S (Fig. 1 step 1) *)
              Hashtbl.replace classes id Annot.Bypass
            else begin
              let key =
                ( i.epoch,
                  match i.innermost with
                  | Some l when i.in_innermost -> Some l.Stmt.loop_id
                  | Some _ | None -> None )
              in
              match Hashtbl.find_opt buckets key with
              | Some l -> l := !l @ [ i ]
              | None ->
                  Hashtbl.replace buckets key (ref [ i ]);
                  bucket_order := key :: !bucket_order
            end)
    infos;
  let decl_of name = Region.decl region name in
  let lscs =
    List.rev_map
      (fun key ->
        let members = !(Hashtbl.find buckets key) in
        let epoch, _ = key in
        let inner =
          match members with
          | { Ref_info.in_innermost = true; innermost = Some l; _ } :: _ -> Some l
          | _ -> None
        in
        let inner_var =
          match inner with
          | Some l -> Some (l.Stmt.var, l.Stmt.step)
          | None -> None
        in
        let groups =
          if group_spatial then
            Locality.group ~decl_of ~line_words:cfg.Ccdp_machine.Config.line_words
              ~inner_var members
          else
            List.map
              (fun (m : Ref_info.t) ->
                let stride =
                  match inner_var with
                  | None -> 0
                  | Some (var, step) ->
                      abs
                        (Locality.stride_wrt
                           (decl_of m.ref_.Reference.array_name)
                           m.ref_ ~var
                        * step)
                in
                {
                  Locality.lead = m;
                  covered = [];
                  span_words = 0;
                  stride_words = stride;
                })
              members
        in
        List.iter
          (fun (g : Locality.group) ->
            let lead_id = g.lead.ref_.Reference.id in
            Hashtbl.replace classes lead_id Annot.Lead;
            List.iter
              (fun (m : Ref_info.t) ->
                Hashtbl.replace classes m.ref_.Reference.id (Annot.Covered lead_id))
              g.covered)
          groups;
        { epoch; inner; groups })
      !bucket_order
  in
  { classes; lscs }

let cls_of t id =
  match Hashtbl.find_opt t.classes id with Some c -> c | None -> Annot.Normal

let pp ppf t =
  let leads = List.concat_map (fun l -> l.groups) t.lscs in
  Format.fprintf ppf "@[<v>prefetch target analysis: %d LSCs, %d leading references"
    (List.length t.lscs) (List.length leads);
  List.iter
    (fun lsc ->
      Format.fprintf ppf "@,epoch %d %s: %d groups" lsc.epoch
        (match lsc.inner with
        | Some l -> Printf.sprintf "inner loop %s(id %d)" l.Stmt.var l.Stmt.loop_id
        | None -> "serial segment")
        (List.length lsc.groups);
      List.iter
        (fun (g : Locality.group) ->
          Format.fprintf ppf "@,  lead %a covers %d refs (span %d words)"
            Reference.pp g.lead.ref_ (List.length g.covered) g.span_words)
        lsc.groups)
    t.lscs;
  Format.fprintf ppf "@]"
