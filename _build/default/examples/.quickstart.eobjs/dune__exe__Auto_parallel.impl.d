examples/auto_parallel.ml: Annot Builder Ccdp_analysis Ccdp_core Ccdp_ir Ccdp_machine Ccdp_runtime Dist Format Interp Memsys Parallelize Pipeline Program Stale Stmt Verify
