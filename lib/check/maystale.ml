open Ccdp_ir
open Ccdp_analysis

(* Independent may-stale derivation.

   Stale.analyze answers "is this read stale?" per read, searching the
   global write list under a precedence predicate built from each
   reference's [outer_serial] stack. This pass re-derives the same facts
   the other way around: a single forward walk of the epoch *tree*
   carrying the set of writes whose stale cached copies may exist, with
   loop back-edges realized by re-visiting a structure loop's body once
   more against the completed write set. Agreement between the two is the
   certifier's cross-check; by construction this derivation collects
   every witness write, not just the first one found. *)

type wentry = { w : Ref_info.t; straight : bool }

type t = {
  witnesses : (int, int list) Hashtbl.t;
      (** tracked read ref id -> witness write ref ids (sorted; [] = clean) *)
}

let derive ?(cluster_pes = 1) region (epochs : Epoch.t) infos =
  let tracked name =
    let d = Region.decl region name in
    d.Array_decl.shared && d.Array_decl.dist <> Dist.Replicated
  in
  let reads_of = Hashtbl.create 16 and writes_of = Hashtbl.create 16 in
  let push tbl k v =
    let prev = match Hashtbl.find_opt tbl k with Some l -> l | None -> [] in
    Hashtbl.replace tbl k (prev @ [ v ])
  in
  List.iter
    (fun (i : Ref_info.t) ->
      if tracked i.ref_.Reference.array_name then
        push (if i.write then writes_of else reads_of) i.Ref_info.epoch i)
    infos;
  let aligned_memo = Hashtbl.create 64 in
  let aligned ~reader ~writer =
    let key =
      (reader.Ref_info.ref_.Reference.id, writer.Ref_info.ref_.Reference.id)
    in
    match Hashtbl.find_opt aligned_memo key with
    | Some v -> v
    | None ->
        let v = Region.aligned_cluster region ~cluster_pes ~reader ~writer in
        Hashtbl.replace aligned_memo key v;
        v
  in
  let witnesses = Hashtbl.create 32 in
  let pending : wentry list ref = ref [] in
  (* Mini-epoch (acquire-frontier) witnesses, derived independently of
     Stale.analyze: a read inside critical(l) may observe, at acquire,
     data written under the same lock by another PE earlier in the same
     epoch. Alignment does not discharge this — the discharge is cross-PE
     exclusion (no element the reader touches on PE p is written by any
     other PE through the witness candidate). *)
  let cross_pe_memo = Hashtbl.create 64 in
  let cross_pe ~(reader : Ref_info.t) ~(writer : Ref_info.t) =
    let key =
      (reader.Ref_info.ref_.Reference.id, writer.Ref_info.ref_.Reference.id)
    in
    match Hashtbl.find_opt cross_pe_memo key with
    | Some v -> v
    | None ->
        let np = Region.n_pes region in
        let v = ref false in
        for p = 0 to np - 1 do
          if not !v then
            let r_pe = Region.section_pe region reader ~pe:p in
            if not (Section.is_empty r_pe) then
              for q = 0 to np - 1 do
                if
                  (not !v) && q <> p
                  && Section.overlaps r_pe (Region.section_pe region writer ~pe:q)
                then v := true
              done
        done;
        Hashtbl.replace cross_pe_memo key !v;
        !v
  in
  (* Owner-computes alignment assumes each PE is the element's only
     writer; under a lock every holder may write the same element, and the
     lock-order-last writer owns the final value. A locked write
     discharges by alignment only when no other PE can write an element
     the reader touches. *)
  let aligned_discharges ~(reader : Ref_info.t) ~(writer : Ref_info.t) =
    aligned ~reader ~writer
    && (writer.Ref_info.lock = None || not (cross_pe ~reader ~writer))
  in
  let acquire_witnesses eid (r : Ref_info.t) =
    match r.Ref_info.lock with
    | None -> []
    | Some lk ->
        let ws =
          match Hashtbl.find_opt writes_of eid with Some l -> l | None -> []
        in
        let r_section = Region.section_all region r in
        List.filter_map
          (fun (w : Ref_info.t) ->
            match w.Ref_info.lock with
            | Some lk'
              when String.equal lk lk'
                   && String.equal w.ref_.Reference.array_name
                        r.ref_.Reference.array_name
                   && Section.overlaps r_section (Region.section_all region w)
                   && cross_pe ~reader:r ~writer:w ->
                Some w.ref_.Reference.id
            | _ -> None)
          ws
  in
  (* the same masking kill as the stale analysis: only straight-line epoch
     sequences, where no back-edge can re-expose the masked write *)
  let masked ~(r : Ref_info.t) ~(e : wentry) exposed ~r_straight =
    r_straight && e.straight
    && List.exists
         (fun k ->
           k.straight
           && k.w.Ref_info.epoch > e.w.Ref_info.epoch
           && k.w.Ref_info.epoch < r.Ref_info.epoch
           && aligned_discharges ~reader:r ~writer:k.w
           && Section.contains (Region.section_all_must region k.w) exposed)
         !pending
  in
  let visit_reads eid ~straight =
    match Hashtbl.find_opt reads_of eid with
    | None -> ()
    | Some reads ->
        List.iter
          (fun (r : Ref_info.t) ->
            let id = r.ref_.Reference.id in
            if not (Hashtbl.mem witnesses id) then
              Hashtbl.replace witnesses id [];
            List.iter
              (fun wid ->
                let prev = Hashtbl.find witnesses id in
                if not (List.mem wid prev) then
                  Hashtbl.replace witnesses id (prev @ [ wid ]))
              (acquire_witnesses eid r);
            let r_section = Region.section_all region r in
            List.iter
              (fun e ->
                if
                  String.equal e.w.Ref_info.ref_.Reference.array_name
                    r.ref_.Reference.array_name
                then
                  let exposed =
                    Section.inter r_section (Region.section_all region e.w)
                  in
                  if
                    (not (Section.is_empty exposed))
                    && (not (aligned_discharges ~reader:r ~writer:e.w))
                    && not (masked ~r ~e exposed ~r_straight:straight)
                  then
                    let wid = e.w.Ref_info.ref_.Reference.id in
                    let prev = Hashtbl.find witnesses id in
                    if not (List.mem wid prev) then
                      Hashtbl.replace witnesses id (prev @ [ wid ]))
              !pending)
          reads
  in
  let visit_writes eid ~straight =
    match Hashtbl.find_opt writes_of eid with
    | None -> ()
    | Some ws ->
        List.iter
          (fun w ->
            if
              not
                (List.exists
                   (fun e ->
                     e.w.Ref_info.ref_.Reference.id = w.Ref_info.ref_.Reference.id)
                   !pending)
            then pending := !pending @ [ { w; straight } ])
          ws
  in
  (* [record] is false on a loop's second visit: reads re-check against the
     now-complete write set (the back-edge), writes are already recorded *)
  let rec walk ~straight ~record nodes =
    List.iter
      (fun node ->
        match node with
        | Epoch.E (eid, _) ->
            visit_reads eid ~straight;
            if record then visit_writes eid ~straight
        | Epoch.Loop (_, body) ->
            walk ~straight:false ~record body;
            walk ~straight:false ~record:false body
        | Epoch.Branch (_, t, e) ->
            walk ~straight ~record t;
            walk ~straight ~record e)
      nodes
  in
  walk ~straight:true ~record:true epochs.Epoch.nodes;
  let sorted = Hashtbl.create (Hashtbl.length witnesses) in
  Hashtbl.iter
    (fun id ws -> Hashtbl.replace sorted id (List.sort compare ws))
    witnesses;
  { witnesses = sorted }

let witnesses_of t id =
  match Hashtbl.find_opt t.witnesses id with Some l -> l | None -> []

let is_stale t id = witnesses_of t id <> []

let stale_ids t =
  Hashtbl.fold
    (fun id ws acc -> if ws = [] then acc else id :: acc)
    t.witnesses []
  |> List.sort compare
