open Ccdp_runtime
open Ccdp_workloads
open Ccdp_test_support.Tutil

let run mode (w : Workload.t) =
  let cfg = Ccdp_machine.Config.t3d ~n_pes:4 in
  match mode with
  | Memsys.Ccdp ->
      let c = Ccdp_core.Pipeline.compile cfg w.program in
      Interp.run cfg c.Ccdp_core.Pipeline.program ~plan:c.Ccdp_core.Pipeline.plan
        ~mode ()
  | _ ->
      Interp.run cfg
        (Ccdp_ir.Program.inline w.program)
        ~plan:(Ccdp_analysis.Annot.empty ()) ~mode ()

let in_unit x = x >= 0.0 && x <= 1.0

let tests =
  [
    case "all ratios land in [0, 1]" (fun () ->
        List.iter
          (fun mode ->
            let m = Metrics.of_result (run mode (Extras.jacobi ~n:16 ~iters:2)) in
            check_true "hit" (in_unit m.Metrics.hit_ratio);
            check_true "coverage" (in_unit m.Metrics.prefetch_coverage);
            check_true "timeliness" (in_unit m.Metrics.prefetch_timeliness);
            check_true "accuracy" (in_unit m.Metrics.prefetch_accuracy);
            check_true "remote" (m.Metrics.remote_ops_per_ref >= 0.0);
            check_true "balance" (in_unit m.Metrics.load_balance))
          [ Memsys.Base; Memsys.Ccdp; Memsys.Invalidate; Memsys.Hscd ]);
    case "BASE has zero prefetch activity and zero hit ratio on shared data"
      (fun () ->
        let m = Metrics.of_result (run Memsys.Base (Extras.transpose ~n:16)) in
        check_float "coverage" 0.0 m.Metrics.prefetch_coverage;
        check_true "remote heavy" (m.Metrics.remote_ops_per_ref > 0.1));
    case "CCDP covers the transpose gather" (fun () ->
        let m = Metrics.of_result (run Memsys.Ccdp (Extras.transpose ~n:16)) in
        check_true "covered" (m.Metrics.prefetch_coverage > 0.3);
        check_true "traffic positive" (m.Metrics.traffic_words > 0));
    case "perfectly balanced kernels balance" (fun () ->
        let m = Metrics.of_result (run Memsys.Base (Extras.triad ~n:16)) in
        check_true "balanced" (m.Metrics.load_balance > 0.9));
    case "printer renders" (fun () ->
        let m = Metrics.of_result (run Memsys.Ccdp (Extras.jacobi ~n:16 ~iters:1)) in
        check_true "output" (String.length (Format.asprintf "%a" Metrics.pp m) > 80));
  ]

let () = Alcotest.run "metrics" [ ("derived", tests) ]
