test/test_array_dist.ml: Alcotest Array_decl Ccdp_ir Ccdp_test_support Dist QCheck
