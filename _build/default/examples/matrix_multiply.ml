(* MXM deep dive: the paper's headline result.

   The middle loop of the triple nest is parallel, but each PE reads four
   (mostly remote) columns of A per outer iteration; in the uncached BASE
   version those remote latencies erase the parallel speedup (paper Section
   5.4). The CCDP compiler proves only the A references potentially stale
   and turns each into a vector prefetch of the column section.

   Run with: dune exec examples/matrix_multiply.exe *)

open Ccdp_workloads
open Ccdp_runtime
open Ccdp_core
open Ccdp_machine

let () =
  let n = 64 in
  let w = Mxm.workload ~n in
  Format.printf "Workload: %s@.@." w.Workload.descr;

  (* what the compiler finds *)
  let cfg = Config.t3d ~n_pes:8 in
  let compiled = Pipeline.compile cfg w.Workload.program in
  Format.printf "Analysis at 8 PEs:@.  %d of %d reads potentially stale@."
    compiled.Pipeline.stale.Ccdp_analysis.Stale.n_stale
    compiled.Pipeline.stale.Ccdp_analysis.Stale.n_reads;
  Format.printf "  %a@.@." Ccdp_analysis.Annot.pp_counts
    (Ccdp_analysis.Annot.count compiled.Pipeline.plan);
  Format.printf "%a@.@." Ccdp_analysis.Schedule.pp_decisions
    compiled.Pipeline.decisions;

  (* speedups across machine widths, exactly like paper Table 1/2 *)
  let spec =
    { Experiment.default_spec with Experiment.pes = [ 1; 2; 4; 8; 16; 32 ] }
  in
  let rows = Experiment.evaluate ~spec [ w ] in
  Format.printf "PEs   BASE speedup   CCDP speedup   improvement@.";
  List.iter
    (fun (r : Experiment.row) ->
      Format.printf "%-4d  %12.2f   %12.2f   %10.1f%%@." r.Experiment.pes
        (Experiment.base_speedup r) (Experiment.ccdp_speedup r)
        (Experiment.improvement r))
    rows;

  (* where the CCDP cycles go at 8 PEs *)
  let r =
    Interp.run cfg compiled.Pipeline.program ~plan:compiled.Pipeline.plan
      ~mode:Memsys.Ccdp ()
  in
  Format.printf "@.CCDP run detail at 8 PEs:@.%a@." Stats.pp r.Interp.stats
