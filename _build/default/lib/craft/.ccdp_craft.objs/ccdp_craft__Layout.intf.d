lib/craft/layout.mli: Ccdp_ir Format
