lib/ir/section.mli: Affine Format
