lib/fuzz/shrink.ml: Gen List
