(* Golden pin of the static certifier's report surface: clean targets stay
   clean, each fault class renders its stable code, spans point into CRAFT
   sources, and the JSON shape stays fixed. Regenerate with `dune runtest`,
   accept intentional changes with `dune promote`. *)

module Config = Ccdp_machine.Config
module Pipeline = Ccdp_core.Pipeline
module Check = Ccdp_check.Check
module Lint = Ccdp_check.Lint
module Annot = Ccdp_analysis.Annot
module Stale = Ccdp_analysis.Stale
module Schedule = Ccdp_analysis.Schedule
module Suite = Ccdp_workloads.Suite

let cfg = Config.t3d ~n_pes:16
let compile ?mutate_stale p = Pipeline.compile cfg ?mutate_stale p

let report name t = { Check.name; diags = Check.certify t }
let print r = Format.printf "%a@." Check.pp_report r

(* drop the first stale mark (by id), as the fuzzer's fault injection does *)
let drop_first (r : Stale.result) =
  match Stale.stale_ids r with
  | [] -> r
  | id :: _ ->
      let verdicts = Hashtbl.copy r.Stale.verdicts in
      Hashtbl.replace verdicts id Stale.Clean;
      { r with Stale.verdicts; n_stale = r.Stale.n_stale - 1 }

let first_matching f tbl =
  Hashtbl.fold
    (fun k v acc -> match acc with Some _ -> acc | None -> f k v)
    tbl None

let () =
  let heat2d = Sys.argv.(1) and racy = Sys.argv.(2) in
  let locked_hist = Sys.argv.(3) and minmax_red = Sys.argv.(4) in
  let onesided = Sys.argv.(5) and badred = Sys.argv.(6) in
  Format.printf "== clean targets ==@.";
  List.iter
    (fun (w : Ccdp_workloads.Workload.t) ->
      print
        (report w.Ccdp_workloads.Workload.name
           (compile w.Ccdp_workloads.Workload.program)))
    (Suite.all ());
  print (report "heat2d" (compile (Ccdp_ir.Craft_parse.file heat2d)));
  (* the synchronization examples certify clean: lock domination discharges
     the cross-PE accumulator conflict, the in-critical reads are bypassed,
     and the marked reductions are recognized as associative folds *)
  print
    (report "locked_hist" (compile (Ccdp_ir.Craft_parse.file locked_hist)));
  print (report "minmax_red" (compile (Ccdp_ir.Craft_parse.file minmax_red)));

  Format.printf "== fault classes ==@.";
  print (report "racy.craft" (compile (Ccdp_ir.Craft_parse.file racy)));
  print (report "onesided.craft" (compile (Ccdp_ir.Craft_parse.file onesided)));
  print (report "badred.craft" (compile (Ccdp_ir.Craft_parse.file badred)));
  let mxm = (Ccdp_workloads.Workload.find (Suite.all ()) "mxm").program in
  let tomcatv =
    (Ccdp_workloads.Workload.find (Suite.all ()) "tomcatv").program
  in
  print (report "mxm+dropped-stale-mark" (compile ~mutate_stale:drop_first mxm));
  (let t = compile tomcatv in
   let lead =
     first_matching
       (fun _ cls -> match cls with Annot.Covered l -> Some l | _ -> None)
       t.Pipeline.plan.Annot.classes
   in
   Option.iter (Hashtbl.remove t.Pipeline.plan.Annot.ops) lead;
   print (report "tomcatv+lead-op-removed" t));
  (let t = compile mxm in
   let clean =
     first_matching
       (fun id cls -> match cls with Annot.Normal -> Some id | _ -> None)
       t.Pipeline.plan.Annot.classes
   in
   Option.iter
     (fun id -> Hashtbl.replace t.Pipeline.plan.Annot.classes id Annot.Bypass)
     clean;
   print (report "mxm+clean-read-bypassed" t));
  (let t = compile tomcatv in
   let covered =
     first_matching
       (fun id cls -> match cls with Annot.Covered _ -> Some id | _ -> None)
       t.Pipeline.plan.Annot.classes
   in
   Option.iter
     (fun id ->
       Hashtbl.replace t.Pipeline.plan.Annot.ops id
         (Annot.Back { ref_id = id; cycles = 64 }))
     covered;
   print (report "tomcatv+covered-own-op" t));
  (let t = compile tomcatv in
   let back =
     first_matching
       (fun id op -> match op with Annot.Back _ -> Some id | _ -> None)
       t.Pipeline.plan.Annot.ops
   in
   Option.iter
     (fun id ->
       Hashtbl.replace t.Pipeline.plan.Annot.ops id
         (Annot.Back { ref_id = id; cycles = 10_000_000 }))
     back;
   print (report "tomcatv+moved-back-overshot" t));
  (let t = compile (Ccdp_ir.Craft_parse.file heat2d) in
   let sp =
     first_matching
       (fun id op -> match op with Annot.Pipelined _ -> Some id | _ -> None)
       t.Pipeline.plan.Annot.ops
   in
   Option.iter
     (fun id ->
       match Hashtbl.find t.Pipeline.plan.Annot.ops id with
       | Annot.Pipelined p ->
           Hashtbl.replace t.Pipeline.plan.Annot.ops id
             (Annot.Pipelined { p with distance = 0 })
       | _ -> ())
     sp;
   print (report "heat2d+zero-sp-distance" t));
  (let t = compile mxm in
   let tuning = { t.Pipeline.tuning with Schedule.vpg_max_words = Some 1 } in
   print
     {
       Check.name = "mxm+one-word-vpg-budget";
       diags =
         Lint.check ~region:t.Pipeline.region ~cfg:t.Pipeline.cfg ~tuning
           ~plan:t.Pipeline.plan t.Pipeline.infos;
     });

  Format.printf "== json ==@.";
  let t = compile (Ccdp_ir.Craft_parse.file racy) in
  print_endline (Check.json [ report "racy" t ])
