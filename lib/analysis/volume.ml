open Ccdp_ir

let stmt_mem_cost (cfg : Ccdp_machine.Config.t) s =
  let reads = List.length (Stmt.direct_reads s) in
  let writes = match Stmt.direct_write s with Some _ -> 1 | None -> 0 in
  (reads * cfg.hit) + (writes * cfg.store_local)

let rec stmts_cycles cfg ?(default_trip = 8) env stmts =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s with
      | Stmt.Assign _ | Stmt.Sassign _ | Stmt.Reduce _ ->
          (Stmt.direct_flops s * cfg.Ccdp_machine.Config.flop) + stmt_mem_cost cfg s
      | Stmt.Critical c ->
          cfg.Ccdp_machine.Config.lock_acquire
          + cfg.Ccdp_machine.Config.lock_release
          + stmts_cycles cfg ~default_trip env c.Stmt.cbody
      | Stmt.If (_, t, e) ->
          Stmt.direct_flops s
          + max (stmts_cycles cfg ~default_trip env t)
              (stmts_cycles cfg ~default_trip env e)
      | Stmt.For l ->
          let trip =
            match Iterspace.trip_count l env with
            | Some n -> n
            | None -> default_trip
          in
          let env' =
            match (Iterspace.bound_range l.lo env, Iterspace.bound_range l.hi env) with
            | Some (lo, _), Some (_, hi) when lo <= hi ->
                Iterspace.restrict env l ~by:(lo, hi, l.step)
            | _ -> env
          in
          trip
          * (stmts_cycles cfg ~default_trip env' l.body
            + cfg.Ccdp_machine.Config.loop_overhead)
      | Stmt.Call _ -> 0)
    0 stmts

let iter_cycles cfg ?(default_trip = 8) env (l : Stmt.loop) =
  let env' =
    match (Iterspace.bound_range l.lo env, Iterspace.bound_range l.hi env) with
    | Some (lo, _), Some (_, hi) when lo <= hi ->
        Iterspace.restrict env l ~by:(lo, hi, l.step)
    | _ -> env
  in
  max 1
    (stmts_cycles cfg ~default_trip env' l.body
    + cfg.Ccdp_machine.Config.loop_overhead)

let words_read_per_iter ~decl_of (l : Stmt.loop) =
  Stmt.fold
    (fun acc s ->
      List.fold_left
        (fun acc (r : Reference.t) ->
          let d = decl_of r.array_name in
          if d.Array_decl.shared then acc + d.Array_decl.elem_words else acc)
        acc (Stmt.direct_reads s))
    0 l.body
