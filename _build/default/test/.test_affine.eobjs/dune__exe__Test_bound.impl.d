test/test_bound.ml: Affine Alcotest Bound Ccdp_ir Ccdp_test_support
