lib/workloads/mxm.mli: Ccdp_ir Workload
