open Ccdp_ir

type severity = Error | Warning

type code =
  | Uncovered_stale
  | Broken_cover
  | Doall_race
  | Spurious_cover
  | Redundant_prefetch
  | Dead_prefetch
  | Sp_missized
  | Vpg_missized
  | Unprotected_conflict
  | Inconsistent_lock
  | Bad_reduction

let code_string = function
  | Uncovered_stale -> "CCDP-W001"
  | Broken_cover -> "CCDP-W002"
  | Doall_race -> "CCDP-W003"
  | Spurious_cover -> "CCDP-W004"
  | Redundant_prefetch -> "CCDP-W005"
  | Dead_prefetch -> "CCDP-W006"
  | Sp_missized -> "CCDP-W007"
  | Vpg_missized -> "CCDP-W008"
  | Unprotected_conflict -> "CCDP-W009"
  | Inconsistent_lock -> "CCDP-W010"
  | Bad_reduction -> "CCDP-W011"

(* W001-W003 and the synchronization errors W009-W011 break the coherence
   argument itself; the lints are performance hazards, so a lint gate
   fails only on errors *)
let severity_of = function
  | Uncovered_stale | Broken_cover | Doall_race | Unprotected_conflict
  | Inconsistent_lock | Bad_reduction ->
      Error
  | Spurious_cover | Redundant_prefetch | Dead_prefetch | Sp_missized
  | Vpg_missized ->
      Warning

let severity_string = function Error -> "error" | Warning -> "warning"

type t = {
  code : code;
  severity : severity;
  message : string;
  loc : Loc.t;
  ref_id : int option;
  loop_id : int option;
  epoch : int option;
}

let make code ?(loc = Loc.Synthetic) ?ref_id ?loop_id ?epoch message =
  { code; severity = severity_of code; message; loc; ref_id; loop_id; epoch }

let makef code ?loc ?ref_id ?loop_id ?epoch fmt =
  Printf.ksprintf (make code ?loc ?ref_id ?loop_id ?epoch) fmt

let compare a b =
  let c = Loc.compare a.loc b.loc in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.code b.code in
    if c <> 0 then c else Stdlib.compare a.ref_id b.ref_id

let pp ppf d =
  Format.fprintf ppf "%s %s" (code_string d.code) (severity_string d.severity);
  (match d.loc with
  | Loc.Src _ -> Format.fprintf ppf " at %a" Loc.pp d.loc
  | Loc.Synthetic -> ());
  Format.fprintf ppf ": %s" d.message;
  let ctx =
    List.filter_map
      (fun (label, v) ->
        match v with Some v -> Some (Printf.sprintf "%s %d" label v) | None -> None)
      [ ("ref", d.ref_id); ("loop", d.loop_id); ("epoch", d.epoch) ]
  in
  if ctx <> [] then Format.fprintf ppf " [%s]" (String.concat ", " ctx)

let to_string d = Format.asprintf "%a" pp d

(* JSON emission follows Bench_json's hand-rolled style: flat documents,
   RFC 8259 string escaping, no external dependency. *)
let buf_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_opt_int b key v =
  match v with
  | None -> ()
  | Some v -> Buffer.add_string b (Printf.sprintf ",\"%s\":%d" key v)

let buf b d =
  Buffer.add_string b "{\"code\":";
  buf_string b (code_string d.code);
  Buffer.add_string b ",\"severity\":";
  buf_string b (severity_string d.severity);
  Buffer.add_string b ",\"message\":";
  buf_string b d.message;
  (match d.loc with
  | Loc.Src { line; col } ->
      Buffer.add_string b (Printf.sprintf ",\"line\":%d,\"col\":%d" line col)
  | Loc.Synthetic -> ());
  buf_opt_int b "ref_id" d.ref_id;
  buf_opt_int b "loop_id" d.loop_id;
  buf_opt_int b "epoch" d.epoch;
  Buffer.add_char b '}'
