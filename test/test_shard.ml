(* Sharded-vs-serial equivalence of intra-run parallel epoch simulation.

   Interp ?pool shards a DOALL epoch's PEs across domains when
   Memsys.shardable allows it; the contract is that the sharded run is
   bit-identical to the serial one at every job count — simulated cycles,
   access statistics, per-PE clocks, epoch count and profile, the final
   memory image, and the staleness oracle's verdicts including the ORDER
   of its violation log (drained PE-major at each barrier).

   Checked as a qcheck property over generated fuzz programs at jobs
   {1, 2, 7}, plus deterministic cases pinning the serial-fallback modes:
   HSCD and the hardware protocols (MSI/MESI/Directory) couple PEs
   mid-epoch, link contention (t3d-xbar) serializes them through shared
   per-link state, and dynamically scheduled loops assign chunks by a
   shared least-loaded heuristic — all must report Memsys.shardable =
   false (or take the serial walk) and still produce identical results
   when a pool is offered. *)

open Ccdp_test_support.Tutil
module Memsys = Ccdp_runtime.Memsys
module Interp = Ccdp_runtime.Interp
module Pool = Ccdp_exec.Pool
module Gen = Ccdp_fuzz.Gen
module Workload = Ccdp_workloads.Workload

(* shared pools, one per job count under test, created once around the
   whole suite (domain spawn per property iteration would dominate) *)
let pools : (int * Pool.t) list ref = ref []
let jobs_under_test = [ 1; 2; 7 ]

let setup ?(machine = Ccdp_machine.Config.t3d) ~n_pes mode
    (program : Ccdp_ir.Program.t) =
  let cfg = machine ~n_pes:(if mode = Memsys.Seq then 1 else n_pes) in
  match mode with
  | Memsys.Ccdp ->
      let compiled = Ccdp_core.Pipeline.compile cfg program in
      (cfg, compiled.Ccdp_core.Pipeline.program, compiled.Ccdp_core.Pipeline.plan)
  | _ -> (cfg, Ccdp_ir.Program.inline program, Ccdp_analysis.Annot.empty ())

(* every deterministic observable of a run, oracle log in order *)
let obs (r : Interp.result) =
  ( r.Interp.cycles,
    r.Interp.stats,
    Array.to_list r.Interp.per_pe_cycles,
    r.Interp.epochs,
    r.Interp.epoch_profile,
    Memsys.oracle_checked r.Interp.sys,
    Memsys.oracle_violation_count r.Interp.sys,
    Memsys.oracle_violations r.Interp.sys,
    List.sort compare (Memsys.observed_stale_ids r.Interp.sys) )

let same_memory prog ~(serial : Interp.result) ~(sharded : Interp.result) =
  (Ccdp_runtime.Verify.compare_states ~expected:serial.Interp.sys
     ~got:sharded.Interp.sys prog)
    .Ccdp_runtime.Verify.ok

(* serial run vs the same run over each pool; true iff all identical *)
let equivalent ?machine ~n_pes mode program =
  let cfg, prog, plan = setup ?machine ~n_pes mode program in
  let serial = Interp.run cfg ~oracle:true prog ~plan ~mode () in
  List.for_all
    (fun jobs ->
      let pool = List.assoc jobs !pools in
      let sharded = Interp.run cfg ~oracle:true ~pool prog ~plan ~mode () in
      obs serial = obs sharded && same_memory prog ~serial ~sharded)
    jobs_under_test

(* ---- qcheck property over the fuzz generator ----------------------- *)

let desc_gen =
  QCheck.Gen.map
    (fun seed -> Gen.generate (Random.State.make [| seed; 0x5A4D |]))
    QCheck.Gen.(int_bound 0xFFFFFF)

let desc_arb = QCheck.make ~print:(Format.asprintf "%a" Gen.pp) desc_gen

let property_modes = Memsys.[ Base; Ccdp; Invalidate; Incoherent ]

let prop_cases =
  [
    qcheck ~count:30 "sharded run is identical to serial (generated programs)"
      desc_arb
      (fun (d : Gen.desc) ->
        let program = Gen.build d in
        let machine = Ccdp_machine.Config.of_kind d.Gen.net in
        List.for_all
          (fun mode -> equivalent ~machine ~n_pes:d.Gen.n_pes mode program)
          property_modes);
  ]

(* ---- deterministic serial-fallback pins ----------------------------- *)

(* a cross-column stencil the protocols actually have to work on *)
let fallback_desc : Gen.desc =
  {
    Gen.n = 8;
    dist_dim = 1;
    n_pes = 4;
    net = Ccdp_machine.Net.Uniform;
    pclean = false;
    wrap = true;
    epochs =
      [
        Gen.Par
          {
            sched = Gen.Cyclic;
            lo1 = true;
            opaque_hi = false;
            stmts =
              [ { Gen.dst = 0; doi = 0; reads = [ (1, 0, 1 ) ]; guarded = false } ];
          };
        Gen.Par
          {
            sched = Gen.Cyclic;
            lo1 = true;
            opaque_hi = false;
            stmts =
              [ { Gen.dst = 1; doi = 0; reads = [ (0, 0, 1) ]; guarded = false } ];
          };
      ];
  }

let dynamic_desc =
  {
    fallback_desc with
    Gen.epochs =
      (match fallback_desc.Gen.epochs with
      | Gen.Par p :: rest -> Gen.Par { p with sched = Gen.Dynamic 2 } :: rest
      | eps -> eps);
  }

let run_with mode ?machine ?pool desc =
  let cfg, prog, plan =
    setup ?machine ~n_pes:desc.Gen.n_pes mode (Gen.build desc)
  in
  (prog, Interp.run cfg ~oracle:true ?pool prog ~plan ~mode ())

let fallback_cases =
  [
    case "hardware modes and HSCD report shardable=false yet agree with a pool"
      (fun () ->
        List.iter
          (fun mode ->
            let _, serial = run_with mode fallback_desc in
            check_true
              (Memsys.mode_name mode ^ " not shardable")
              (not (Memsys.shardable serial.Interp.sys));
            check_true
              (Memsys.mode_name mode ^ " equivalent")
              (equivalent ~n_pes:fallback_desc.Gen.n_pes mode
                 (Gen.build fallback_desc)))
          Memsys.[ Hscd; Msi; Mesi; Directory ]);
    case "link contention (t3d-xbar) disables sharding yet agrees" (fun () ->
        let machine = Ccdp_machine.Config.t3d_xbar in
        let _, serial = run_with Memsys.Ccdp ~machine fallback_desc in
        check_true "xbar not shardable"
          (not (Memsys.shardable serial.Interp.sys));
        check_true "xbar equivalent"
          (equivalent ~machine ~n_pes:fallback_desc.Gen.n_pes Memsys.Ccdp
             (Gen.build fallback_desc)));
    case "buffered modes on the uniform machine are shardable" (fun () ->
        List.iter
          (fun mode ->
            let _, serial = run_with mode fallback_desc in
            check_true
              (Memsys.mode_name mode ^ " shardable")
              (Memsys.shardable serial.Interp.sys))
          property_modes);
    case "dynamically scheduled loops fall back serially yet agree" (fun () ->
        List.iter
          (fun mode ->
            check_true
              (Memsys.mode_name mode ^ " dynamic equivalent")
              (equivalent ~n_pes:dynamic_desc.Gen.n_pes mode
                 (Gen.build dynamic_desc)))
          property_modes);
    case "a real workload agrees at every job count (tomcatv/ccdp)" (fun () ->
        let w = Ccdp_workloads.Tomcatv.workload ~n:16 ~iters:2 in
        List.iter
          (fun mode ->
            check_true
              (Memsys.mode_name mode ^ " tomcatv")
              (equivalent ~n_pes:8 mode w.Workload.program))
          Memsys.[ Base; Ccdp ]);
  ]

let () =
  Pool.with_pool ~jobs:1 (fun p1 ->
      Pool.with_pool ~jobs:2 (fun p2 ->
          Pool.with_pool ~jobs:7 (fun p7 ->
              pools := [ (1, p1); (2, p2); (7, p7) ];
              Alcotest.run "shard"
                [
                  ("property", prop_cases); ("fallback", fallback_cases);
                ])))
