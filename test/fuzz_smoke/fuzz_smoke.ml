(* CI smoke batch: a short fixed-seed differential campaign, exposed as the
   `fuzz-smoke` dune alias. Fails (exit 1) on any numeric mismatch or
   staleness-oracle violation; the full-size campaign lives behind
   `ccdp_cli fuzz`. On top of the campaign proper, the smoke batch pins
   interconnect coverage: every non-uniform network kind (torus, mesh,
   crossbar) must be differentially checked at least once, whatever the
   generator's draw frequencies happen to be. *)

module Gen = Ccdp_fuzz.Gen
module Net = Ccdp_machine.Net

let seed = 1
let count = 100

(* the corpus the campaign just ran, re-drawn deterministically *)
let corpus () =
  let rng = Random.State.make [| seed; 0x51ab |] in
  List.init count (fun _ -> Gen.generate rng)

let check_kind_coverage () =
  let descs = corpus () in
  let missing =
    List.filter
      (fun kind -> not (List.exists (fun d -> d.Gen.net = kind) descs))
      [ Net.Torus3d; Net.Mesh2d; Net.Crossbar ]
  in
  (* any kind the corpus missed gets an explicit differential check on a
     drawn program re-targeted to it, so the alias always exercises every
     interconnect *)
  List.iter
    (fun kind ->
      let d = { (List.hd descs) with Gen.net = kind } in
      (match Gen.validate d with
      | Ok () -> ()
      | Error m ->
          Format.eprintf "fuzz-smoke: %s desc invalid: %s@." (Net.kind_name kind) m;
          exit 1);
      match Ccdp_fuzz.Driver.check_desc d with
      | None -> ()
      | Some (variant, _, detail) ->
          Format.eprintf "fuzz-smoke: %s diverged on %s: %s@."
            (Net.kind_name kind) variant detail;
          exit 1)
    missing;
  let covered kind =
    if List.mem kind missing then "pinned" else "drawn"
  in
  Format.printf "interconnects: torus=%s mesh=%s crossbar=%s@."
    (covered Net.Torus3d) (covered Net.Mesh2d) (covered Net.Crossbar)

(* Synchronization coverage: the corpus must exercise both intra-epoch
   synchronization forms — critical-section (Lock) epochs and recognized
   reduction (Red) epochs — so the differential campaign and the staleness
   oracle see the mini-epoch machinery on every smoke run. A form the draw
   frequencies missed gets an explicit differential check on a pinned
   description, same policy as the interconnect pin above. *)
let check_sync_coverage () =
  let descs = corpus () in
  let has_lock d =
    List.exists (function Gen.Lock _ -> true | _ -> false) d.Gen.epochs
  and has_red d =
    List.exists (function Gen.Red _ -> true | _ -> false) d.Gen.epochs
  in
  let pin label epoch =
    let d = { (List.hd descs) with Gen.epochs = [ epoch ]; Gen.wrap = false } in
    (match Gen.validate d with
    | Ok () -> ()
    | Error m ->
        Format.eprintf "fuzz-smoke: pinned %s desc invalid: %s@." label m;
        exit 1);
    match Ccdp_fuzz.Driver.check_desc d with
    | None -> ()
    | Some (variant, _, detail) ->
        Format.eprintf "fuzz-smoke: pinned %s diverged on %s: %s@." label
          variant detail;
        exit 1
  in
  let locks = List.length (List.filter has_lock descs)
  and reds = List.length (List.filter has_red descs) in
  if locks = 0 then
    pin "lock"
      (Gen.Lock
         { sched = Gen.Block; src = 0; dst = 1; col = 0; col2 = 1; fused = false });
  if reds = 0 then
    pin "reduction"
      (Gen.Red { sched = Gen.Block; op = Gen.Radd; src = 0; dst = 1; seed = true });
  Format.printf "sync epochs: lock=%s reduction=%s@."
    (if locks = 0 then "pinned" else Printf.sprintf "drawn(%d)" locks)
    (if reds = 0 then "pinned" else Printf.sprintf "drawn(%d)" reds)

(* CCDP_SHARDS=N runs every variant with intra-run epoch sharding over N
   domains (Driver.campaign ?shards) — CI uses this to push the whole
   corpus through the parallel simulation path; the summary must be
   identical to the unsharded run *)
let shards =
  match Sys.getenv_opt "CCDP_SHARDS" with
  | Some s -> int_of_string_opt (String.trim s)
  | None -> None

let () =
  let s = Ccdp_fuzz.Driver.campaign ?shards ~seed ~count () in
  (match shards with
  | Some n when n > 1 -> Format.printf "intra-run shards: %d@." n
  | _ -> ());
  Format.printf "%a@." Ccdp_fuzz.Driver.pp_summary s;
  check_kind_coverage ();
  check_sync_coverage ();
  if s.Ccdp_fuzz.Driver.s_failures <> [] then exit 1
