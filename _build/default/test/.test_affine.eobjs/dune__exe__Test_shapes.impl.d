test/test_shapes.ml: Alcotest Ccdp_core Ccdp_test_support Ccdp_workloads Experiment Lazy List Suite
