(* Shared helpers for the test suite. *)

open Ccdp_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_true msg b = Alcotest.(check bool) msg true b
let check_false msg b = Alcotest.(check bool) msg false b
let check_float msg a b = Alcotest.(check (float 1e-9)) msg a b

let case name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* enumerate an arithmetic-progression dimension *)
let enum_dim (d : Section.dim) =
  let rec go x acc = if x > d.Section.hi then List.rev acc else go (x + d.Section.step) (x :: acc) in
  go d.Section.lo []

(* brute-force elements of a 1-D or 2-D section within given universe bounds *)
let enum_section2 s =
  match (s : Section.t) with
  | Section.Empty -> []
  | Section.Whole -> invalid_arg "enum_section2: whole"
  | Section.Dims [| a; b |] ->
      List.concat_map (fun x -> List.map (fun y -> (x, y)) (enum_dim b)) (enum_dim a)
  | Section.Dims _ -> invalid_arg "enum_section2: rank"

let enum_section1 s =
  match (s : Section.t) with
  | Section.Empty -> []
  | Section.Whole -> invalid_arg "enum_section1: whole"
  | Section.Dims [| a |] -> enum_dim a
  | Section.Dims _ -> invalid_arg "enum_section1: rank"

(* A small program builder used by several analysis tests: one init DOALL
   epoch writing [w] then one compute DOALL epoch reading via [mk_read]. *)
let two_epoch_program ?(n = 16) ~dist ~init_sched ~read_sched mk_read =
  let module B = Builder in
  let b = B.create ~name:"t" () in
  B.param b "n" n;
  B.array_ b "A" [| n; n |] ~dist;
  B.array_ b "O" [| n; n |] ~dist;
  let open B.A in
  let i = v "i" and j = v "j" in
  let init =
    B.doall b ~sched:init_sched "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [ B.assign b "A" [ i; j ] Builder.F.(iv "i" + iv "j") ];
      ]
  in
  let compute =
    B.doall b ~sched:read_sched "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [ B.assign b "O" [ i; j ] (Fexpr.Ref (mk_read b ~i ~j)) ];
      ]
  in
  B.finish b [ init; compute ]

module F = Builder.F
