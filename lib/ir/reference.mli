(** Array references.

    A reference is one syntactic occurrence of [A(e1, ..., ek)] in the
    program. Each carries a unique id assigned at program-construction time;
    the analysis phases key their classification and scheduling maps on
    those ids, and the runtime consults the maps when it executes the
    occurrence. *)

type t = { id : int; array_name : string; subs : Affine.t array; loc : Loc.t }

(** [loc] defaults to {!Loc.Synthetic}; {!Craft_parse} supplies the source
    span of the occurrence so diagnostics can point at [.craft] text. *)
val make : id:int -> ?loc:Loc.t -> string -> Affine.t array -> t

(** Substitute variables in every subscript (procedure inlining). The id is
    preserved — an inlined occurrence is still the same syntactic site for
    classification purposes; context-sensitive ids are produced by
    {!Program.inline} when needed. *)
val subst_env : t -> (string * Affine.t) list -> t

(** [with_id r id] re-keys a reference (used when cloning call sites). *)
val with_id : t -> int -> t

(** Uniformly generated (paper Section 4.2): same array, and every subscript
    pair has identical variable terms. *)
val uniformly_generated : t -> t -> bool

(** Constant offset vector from [a] to [b] when uniformly generated. *)
val offset_vector : t -> t -> int array option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
