open Ccdp_ir

type group = {
  lead : Ref_info.t;
  covered : Ref_info.t list;
  span_words : int;
  stride_words : int;
}

(* Column-major (Fortran) element strides of each dimension, in words. *)
let dim_strides (decl : Array_decl.t) =
  let rank = Array_decl.rank decl in
  let strides = Array.make rank decl.elem_words in
  for d = 1 to rank - 1 do
    strides.(d) <- strides.(d - 1) * decl.dims.(d - 1)
  done;
  strides

let word_offset decl (r : Reference.t) =
  let strides = dim_strides decl in
  let off = ref 0 in
  Array.iteri
    (fun d e -> off := !off + (Affine.const_part e * strides.(d)))
    r.subs;
  !off

let stride_wrt decl (r : Reference.t) ~var =
  let strides = dim_strides decl in
  let s = ref 0 in
  Array.iteri (fun d e -> s := !s + (Affine.coeff e var * strides.(d))) r.subs;
  !s

(* gcd of the word strides of every varying term: all addresses of the
   reference are congruent to its constant offset modulo this. *)
let varying_gcd decl (r : Reference.t) =
  let strides = dim_strides decl in
  let rec gcd a b = if b = 0 then abs a else gcd b (a mod b) in
  let g = ref 0 in
  Array.iteri
    (fun d e ->
      List.iter (fun (_, c) -> g := gcd !g (c * strides.(d))) (Affine.terms e))
    r.subs;
  !g

let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let group ~decl_of ~line_words ~inner_var infos =
  (* partition into uniformly-generated classes, preserving syntactic order *)
  let classes : (Ref_info.t list ref) list ref = ref [] in
  List.iter
    (fun (i : Ref_info.t) ->
      match
        List.find_opt
          (fun cls ->
            match !cls with
            | rep :: _ ->
                Reference.uniformly_generated rep.Ref_info.ref_ i.Ref_info.ref_
            | [] -> false)
          !classes
      with
      | Some cls -> cls := !cls @ [ i ]
      | None -> classes := !classes @ [ ref [ i ] ])
    infos;
  let cluster_class members =
    match members with
    | [] -> []
    | rep :: _ ->
        let decl = decl_of rep.Ref_info.ref_.Reference.array_name in
        let offset i = word_offset decl i.Ref_info.ref_ in
        let stride =
          match inner_var with
          | None -> 0
          | Some (var, step) -> stride_wrt decl rep.Ref_info.ref_ ~var * step
        in
        if stride = 0 then begin
          (* straight-line / loop-invariant addresses: exact same-line test,
             lead = syntactically first *)
          let vg = varying_gcd decl rep.Ref_info.ref_ in
          let same_line a b =
            let oa = offset a and ob = offset b in
            oa = ob
            || (vg mod line_words = 0 && fdiv oa line_words = fdiv ob line_words)
          in
          let rec build = function
            | [] -> []
            | lead :: rest ->
                let covered, others = List.partition (same_line lead) rest in
                let span =
                  List.fold_left
                    (fun acc m -> max acc (abs (offset m - offset lead)))
                    0 covered
                in
                { lead; covered; span_words = span; stride_words = 0 }
                :: build others
          in
          build members
        end
        else begin
          (* loop traversal: lead is the first reference to touch each line,
             i.e. smallest offset for ascending strides, largest for
             descending; membership by the |delta| < line heuristic *)
          let sorted =
            List.sort
              (fun a b ->
                if stride > 0 then compare (offset a) (offset b)
                else compare (offset b) (offset a))
              members
          in
          let rec build = function
            | [] -> []
            | lead :: rest ->
                let lead_off = offset lead in
                let covered, others =
                  List.partition
                    (fun m -> abs (offset m - lead_off) < line_words)
                    rest
                in
                let span =
                  List.fold_left
                    (fun acc m -> max acc (abs (offset m - lead_off)))
                    0 covered
                in
                { lead; covered; span_words = span; stride_words = abs stride }
                :: build others
          in
          build sorted
        end
  in
  List.concat_map (fun cls -> cluster_class !cls) !classes
