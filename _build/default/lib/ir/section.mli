(** Bounded regular sections.

    The region of an array touched by a reference inside a loop nest is
    summarized per dimension as an arithmetic progression
    [lo, lo+step, ..., <= hi] ("triplet notation"). Sections are the data
    the stale-reference dataflow manipulates: write histories, freshness
    records and read regions are all sections, and staleness is decided by
    (conservative, but progression-exact per dimension) intersection tests.

    A section is [Empty], [Whole] (the sound fallback when subscripts are
    not affine or bounds are unknown), or one triplet per dimension. *)

type dim = private { lo : int; hi : int; step : int }
(** Invariant: [step >= 1] and [lo <= hi]. *)

type t = Empty | Whole | Dims of dim array

(** [dim ~lo ~hi ~step] normalizes: [hi] is clamped down to the last element
    actually reached, a single-element range gets step 1, and an inverted
    range is represented by the caller as {!Empty}.
    @raise Invalid_argument on [step <= 0] or [lo > hi]. *)
val dim : lo:int -> hi:int -> step:int -> dim

(** Single element per dimension. *)
val point : int array -> t

(** Dense box [lo.(d) .. hi.(d)] in every dimension; [Empty] if any
    dimension is inverted. *)
val box : lo:int array -> hi:int array -> t

val of_dims : dim list -> t
val whole : t
val empty : t
val is_empty : t -> bool

(** Number of elements ([None] for [Whole]). *)
val size : t -> int option

(** Exact per-dimension intersection emptiness test for two arithmetic
    progressions (solves the linear congruence); the conjunction over
    dimensions is conservative for the multidimensional set (it may report
    overlap for sections that differ only through cross-dimension
    correlation, which is sound for staleness). *)
val overlaps : t -> t -> bool

(** [contains outer inner]: sound containment test — [true] only when every
    element of [inner] is provably in [outer]. *)
val contains : t -> t -> bool

(** Over-approximate intersection: per dimension the progression
    intersection is exact (lcm step, CRT-aligned start); the product over
    dimensions over-approximates the true multidimensional intersection,
    which is the sound direction for "is the intersection contained in X"
    queries. *)
val inter : t -> t -> t

(** Smallest box-with-step covering both (used to bound union growth). *)
val hull : t -> t -> t

(** Does the section include the given point? *)
val mem : t -> int array -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Construction from affine subscripts} *)

(** Range of one affine subscript when each variable ranges over the given
    triplet (variables absent from the environment make the result [None],
    i.e. unknown). Multiple varying variables widen the step to 1 unless
    their strides share a common divisor. *)
val range_of_affine :
  Affine.t -> (string * (int * int * int)) list -> dim option

(** Section of a multidimensional reference: one {!range_of_affine} per
    subscript; any unknown dimension collapses the result to [Whole]. The
    result {e over-approximates} the touched set (may-access). *)
val of_subscripts :
  Affine.t array -> (string * (int * int * int)) list -> t

(** Exact section of a reference, or [None] when exactness cannot be
    proven. The result is exact — usable as a {e must}-access set — when
    every subscript contains at most one varying variable, no variable
    varies in two subscripts, and every variable is bound. Must-sets are
    what the owner-computes alignment test needs on the writer side: using
    the may-set there would claim coverage a PE is not guaranteed to
    provide. *)
val of_subscripts_exact :
  Affine.t array -> (string * (int * int * int)) list -> t option
