test/test_loop_sched.ml: Alcotest Ccdp_craft Ccdp_ir Ccdp_test_support List Loop_sched QCheck Stmt
