lib/machine/dtb_annex.ml: List
