(** Fixed-size domain pool for embarrassingly parallel simulator runs.

    The experiment grid (workload x machine width x mode), the parameter
    sweeps and the fuzz campaigns are all lists of fully independent
    [Interp.run] invocations: the interpreter allocates every piece of
    mutable state per run, so runs can execute on any domain in any order.
    This module shards such a list across OCaml 5 domains while keeping
    the {e results} deterministic: output is collected by input index, so
    [map_runs] is observably [List.mapi] regardless of scheduling, core
    count or job override.

    Job count resolution (first match wins):
    + an explicit [~jobs] argument (a [-j] command-line flag);
    + the [CCDP_JOBS] environment variable;
    + [Domain.recommended_domain_count ()].

    With one job the pool spawns no domains at all — every task runs in
    the calling domain, which is both the fallback for constrained hosts
    and the reference order for determinism tests. *)

type t

(** Worker exception, re-raised in the caller with the run's identity.
    [index] is the 0-based position of the failing input; [label] is the
    caller-supplied run description (empty when none was given). *)
exception Run_failed of { index : int; label : string; exn : exn }

(** Resolve a job count: [jobs] argument, else [CCDP_JOBS], else
    [Domain.recommended_domain_count ()]. Values below 1, or an
    unparseable [CCDP_JOBS], fall back to the next source. *)
val resolve_jobs : ?jobs:int -> unit -> int

(** [create ~jobs] spawns [jobs - 1] worker domains (the calling domain
    is the remaining worker). [jobs <= 1] spawns nothing. *)
val create : jobs:int -> t

val jobs : t -> int

(** Join the worker domains. Idempotent; the pool is unusable after. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] resolves the job count, runs [f] on a fresh pool
    and shuts it down (also on exception). *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a

(** [map_runs pool f xs] is [List.mapi f xs] computed on the pool's
    domains. Results are collected by input index, so the output is
    byte-identical to the sequential order for any job count. If any
    [f i x] raises, the lowest-index failure is re-raised in the caller
    as {!Run_failed} (after all workers have drained). [label i] names
    run [i] in that error. Not reentrant: [f] must not call back into
    the same pool. *)
val map_runs : ?label:(int -> string) -> t -> (int -> 'a -> 'b) -> 'a list -> 'b list

(** [map_shards pool ~shards f] is [Array.init shards f] computed on the
    pool's domains, collected by shard index. Unlike {!map_runs} it is
    safe to call from inside a task already running on [pool] (an
    [Interp.run] sharding its epochs from within a campaign batch):
    nested submission is detected per-domain and serialized inline on the
    calling domain instead of deadlocking on workers that are all busy
    with the outer batch. If any [f s] raises, the lowest-index failure
    is re-raised as {!Run_failed} after all shards settle. *)
val map_shards : t -> shards:int -> (int -> 'a) -> 'a array

(** One-shot convenience: [run ?jobs f xs] wraps [with_pool] around
    {!map_runs}. *)
val run : ?jobs:int -> ?label:(int -> string) -> (int -> 'a -> 'b) -> 'a list -> 'b list
