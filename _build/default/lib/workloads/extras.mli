(** Additional kernels beyond the paper's four, exercising the analysis and
    scheduling paths the SPEC set does not reach. *)

(** Five-point Jacobi smoother with row halos: the minimal "CCDP wins"
    example used by the quickstart. *)
val jacobi : n:int -> iters:int -> Workload.t

(** Dynamically self-scheduled sweep over stale data (Fig. 2 case 3:
    moving-back prefetches only), with an if-guarded inner loop (case 5) and
    a data-dependent branch. *)
val dynamic : n:int -> Workload.t

(** Serial loop whose bounds are only known at run time ([Bound.opaque]):
    vector prefetching is impossible, software pipelining applies (Fig. 2
    case 1, unknown-bounds branch). *)
val opaque_sweep : n:int -> Workload.t

(** Block-aligned triad: every access owner-local, zero stale references —
    the negative control. *)
val triad : n:int -> Workload.t

(** Matrix transpose: every task gathers one element from every column —
    all-to-all communication, the stress case for remote latency and the
    torus distance model; the row read becomes a strided vector prefetch. *)
val transpose : n:int -> Workload.t

(** Gaussian elimination without pivoting: at step k every PE reads the
    remotely-owned multiplier column and pivot element while updating its
    own columns — a broadcast sharing pattern over triangular (affine-in-k)
    iteration spaces. *)
val gauss : n:int -> Workload.t
