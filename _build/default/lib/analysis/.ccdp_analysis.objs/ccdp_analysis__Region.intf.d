lib/analysis/region.mli: Ccdp_craft Ccdp_ir Iterspace Ref_info
