lib/workloads/extras.ml: Affine Bound Builder Ccdp_ir Dist List Printf Stmt Workload
