lib/workloads/swim.ml: Builder Ccdp_ir Dist List Printf Stmt Workload
