lib/workloads/vpenta.mli: Ccdp_ir Workload
