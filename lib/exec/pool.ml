exception Run_failed of { index : int; label : string; exn : exn }

let resolve_jobs ?jobs () =
  match jobs with
  | Some j when j >= 1 -> j
  | _ -> (
      match Sys.getenv_opt "CCDP_JOBS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some j when j >= 1 -> j
          | _ -> Domain.recommended_domain_count ())
      | None -> Domain.recommended_domain_count ())

(* A published batch of tasks. Workers claim indices from [next] and run
   them; the last finisher signals [finished]. Tasks are closures that
   never raise (the wrapper stores the outcome by index). *)
type batch = {
  tasks : (unit -> unit) array;
  next : int Atomic.t;
  remaining : int Atomic.t;
  bm : Mutex.t;
  finished : Condition.t;
}

type t = {
  jobs : int;
  mutable domains : unit Domain.t list;
  m : Mutex.t;
  cv : Condition.t;  (* new batch published, or stop *)
  mutable current : batch option;
  mutable generation : int;
  mutable stop : bool;
}

let jobs t = t.jobs

(* Set while this domain is executing a batch task. A nested submission
   from inside a task would block on workers that are all busy with the
   enclosing batch; [map_shards] checks this flag and runs inline
   instead. *)
let in_task = Domain.DLS.new_key (fun () -> ref false)
let nested () = !(Domain.DLS.get in_task)

let drain (b : batch) =
  let n = Array.length b.tasks in
  let flag = Domain.DLS.get in_task in
  let rec claim () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < n then (
      flag := true;
      b.tasks.(i) ();
      flag := false;
      if Atomic.fetch_and_add b.remaining (-1) = 1 then (
        Mutex.lock b.bm;
        Condition.signal b.finished;
        Mutex.unlock b.bm);
      claim ())
  in
  claim ()

let worker pool =
  let rec loop gen =
    Mutex.lock pool.m;
    while (not pool.stop) && pool.generation = gen do
      Condition.wait pool.cv pool.m
    done;
    if pool.stop then Mutex.unlock pool.m
    else begin
      let b = Option.get pool.current in
      let gen = pool.generation in
      Mutex.unlock pool.m;
      drain b;
      loop gen
    end
  in
  loop 0

let create ~jobs =
  let pool =
    {
      jobs = max 1 jobs;
      domains = [];
      m = Mutex.create ();
      cv = Condition.create ();
      current = None;
      generation = 0;
      stop = false;
    }
  in
  if pool.jobs > 1 then
    pool.domains <-
      List.init (pool.jobs - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let shutdown pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.cv;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool ?jobs f =
  let pool = create ~jobs:(resolve_jobs ?jobs ()) in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let default_label _ = ""

(* Publish [tasks] as the pool's current batch, help drain it from the
   calling domain, and wait for the last worker to finish. *)
let run_batch pool tasks =
  let b =
    {
      tasks;
      next = Atomic.make 0;
      remaining = Atomic.make (Array.length tasks);
      bm = Mutex.create ();
      finished = Condition.create ();
    }
  in
  Mutex.lock pool.m;
  pool.current <- Some b;
  pool.generation <- pool.generation + 1;
  Condition.broadcast pool.cv;
  Mutex.unlock pool.m;
  (* the calling domain is a worker too *)
  drain b;
  Mutex.lock b.bm;
  while Atomic.get b.remaining > 0 do
    Condition.wait b.finished b.bm
  done;
  Mutex.unlock b.bm

let map_runs ?(label = default_label) pool f xs =
  let inputs = Array.of_list xs in
  let n = Array.length inputs in
  if n = 0 then []
  else if pool.jobs <= 1 || n = 1 then
    List.mapi
      (fun i x ->
        try f i x
        with exn -> raise (Run_failed { index = i; label = label i; exn }))
      xs
  else begin
    let results = Array.make n None in
    run_batch pool
      (Array.init n (fun i () ->
           results.(i) <-
             Some (try Ok (f i inputs.(i)) with exn -> Error exn)));
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Some (Ok v) -> v
           | Some (Error exn) ->
               raise (Run_failed { index = i; label = label i; exn })
           | None -> assert false)
         results)
  end

let map_shards pool ~shards f =
  let n = max 0 shards in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let task s () = results.(s) <- Some (try Ok (f s) with exn -> Error exn) in
    if n = 1 || pool.jobs <= 1 || nested () then
      (* one shard, a serial pool, or already inside a batch task: run
         inline on this domain, in shard order *)
      for s = 0 to n - 1 do
        task s ()
      done
    else run_batch pool (Array.init n task);
    Array.mapi
      (fun s r ->
        match r with
        | Some (Ok v) -> v
        | Some (Error exn) -> raise (Run_failed { index = s; label = ""; exn })
        | None -> assert false)
      results
  end

let run ?jobs ?label f xs = with_pool ?jobs (fun p -> map_runs ?label p f xs)
