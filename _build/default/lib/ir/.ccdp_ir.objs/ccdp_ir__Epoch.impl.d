lib/ir/epoch.ml: Format List Stmt
