open Ccdp_ir
open Ccdp_analysis

(* DOALL race detector.

   Every loop the program marks parallel must be free of cross-iteration
   dependences — the pipeline itself never re-checks hand-written (or
   corrupted) DOALL annotations; the runtime simply believes them. The
   test here is the parallelizer's ZIV/strong-SIV test on uniformly
   generated subscript pairs, extended with a Banerjee-style range test on
   the non-uniform ones: iteration-scoped variables of the two accesses
   are independent instances, so each side's subscript is narrowed to its
   extreme values by substituting loop bounds (innermost first, picked by
   coefficient sign), and the dependence equation is infeasible when the
   difference range excludes zero. The symbolic substitution is what
   proves triangular patterns like writing columns [k+1..n-1] while
   reading column [k] disjoint. *)

(* numeric range of an affine expression over an iteration-space
   environment; None when a variable is unresolved *)
let affine_range env e =
  List.fold_left
    (fun acc v ->
      match (acc, List.assoc_opt v env) with
      | None, _ | _, None -> None
      | Some (mn, mx), Some (lo, hi, _) ->
          let c = Affine.coeff e v in
          if c >= 0 then Some (mn + (c * lo), mx + (c * hi))
          else Some (mn + (c * hi), mx + (c * lo)))
    (Some (Affine.const_part e, Affine.const_part e))
    (Affine.vars e)

(* Narrow [e] to its extreme values over the instance loops (innermost
   first): each loop variable with a non-zero coefficient is replaced by
   the bound expression that minimizes (resp. maximizes) its term. The
   result is affine in the enclosing shared variables only. None when a
   needed bound is not statically known. *)
let extremes (instance_loops : Stmt.loop list) e =
  let rec go loops ((emin, emax) as acc) =
    match loops with
    | [] -> Some acc
    | (l : Stmt.loop) :: rest -> (
        let cmin = Affine.coeff emin l.Stmt.var
        and cmax = Affine.coeff emax l.Stmt.var in
        if cmin = 0 && cmax = 0 then go rest acc
        else
          match (l.Stmt.lo, l.Stmt.hi) with
          | Bound.Known lo, Bound.Known hi ->
              let pick c = if c >= 0 then (lo, hi) else (hi, lo) in
              let min_by, _ = pick cmin and _, max_by = pick cmax in
              go rest
                ( Affine.subst_env emin [ (l.Stmt.var, min_by) ],
                  Affine.subst_env emax [ (l.Stmt.var, max_by) ] )
          | _ -> None)
  in
  go (List.rev instance_loops) (e, e)

type dim_verdict = Disjoint | Same_iter | Neutral | Carried | Opaque

let dim_test ~var ~trip ~shared_env ~loops_a ~loops_b (ea : Affine.t)
    (eb : Affine.t) =
  if Affine.uniformly_generated ea eb then begin
    let c = Affine.coeff ea var in
    let delta = Affine.const_part eb - Affine.const_part ea in
    if c = 0 then if delta = 0 then Neutral else Disjoint
    else if delta = 0 then Same_iter
    else if delta mod c <> 0 then Disjoint
    else
      match trip with
      | Some t when abs (delta / c) >= t -> Disjoint
      | _ -> Carried
  end
  else
    (* the two instances iterate independently: a dependence needs
       ea(inst1) = eb(inst2), impossible when the difference range
       excludes zero *)
    match (extremes loops_a ea, extremes loops_b eb) with
    | Some (amin, amax), Some (bmin, bmax) -> (
        match
          ( affine_range shared_env (Affine.sub amin bmax),
            affine_range shared_env (Affine.sub amax bmin) )
        with
        | Some (dmin, _), Some (_, dmax) when dmin > 0 || dmax < 0 -> Disjoint
        | _ -> Opaque)
    | _ -> Opaque

let pair_carries ~var ~trip ~shared_env ~loops_a ~loops_b (a : Reference.t)
    (b : Reference.t) =
  let n = Array.length a.Reference.subs in
  if n <> Array.length b.Reference.subs then true
  else begin
    let verdicts =
      Array.init n (fun d ->
          dim_test ~var ~trip ~shared_env ~loops_a ~loops_b
            a.Reference.subs.(d) b.Reference.subs.(d))
    in
    if Array.exists (fun v -> v = Disjoint) verdicts then false
    else if Array.exists (fun v -> v = Same_iter) verdicts then false
    else true
  end

(* Scalar privatization check, per-iteration-definite: a nested serial
   loop executes entirely within one task, so its body sees its own
   earlier writes as definite (unlike Parallelize.scalar_flow, which is
   deliberately cruder for the promotion decision) — but nothing escapes
   the loop, which may run zero times, and a value carried only by the
   nested loop's back-edge is still undefined on its first iteration. *)
let scalar_flow body =
  let exception Flows of string in
  let module S = Set.Make (String) in
  let expr_reads defined e =
    let rec go = function
      | Fexpr.Svar v -> if not (S.mem v defined) then raise (Flows v)
      | Fexpr.Const _ | Fexpr.Ivar _ | Fexpr.Ref _ -> ()
      | Fexpr.Unop (_, a) -> go a
      | Fexpr.Binop (_, a, b) ->
          go a;
          go b
    in
    go e
  in
  let rec walk defined stmts =
    List.fold_left
      (fun defined s ->
        match s with
        | Stmt.Assign (_, e) ->
            expr_reads defined e;
            defined
        | Stmt.Sassign (v, e) ->
            expr_reads defined e;
            S.add v defined
        | Stmt.If (c, a, b) ->
            (match c with
            | Stmt.Fcond (_, x, y) ->
                expr_reads defined x;
                expr_reads defined y
            | Stmt.Icond _ -> ());
            let da = walk defined a in
            let db = walk defined b in
            S.union defined (S.inter da db)
        | Stmt.For l ->
            ignore (walk defined l.Stmt.body);
            defined
        | Stmt.Critical c ->
            (* a critical section executes in sequence within one task:
               its definitions are as definite as straight-line code *)
            walk defined c.Stmt.cbody
        | Stmt.Reduce r ->
            (* [Reduce] neither reads nor defines its variable here: the
               per-PE partial is seeded by the first contribution and the
               merged value only exists after the barrier *)
            expr_reads defined r.Stmt.rexpr;
            defined
        | Stmt.Call _ -> defined)
      defined stmts
  in
  try
    ignore (walk S.empty body);
    None
  with Flows v -> Some v

(* Commutative-associative operators: the only ones whose per-PE partials
   may be merged in any bracketing at the barrier. *)
let assoc_op = function
  | Fexpr.Add | Fexpr.Mul | Fexpr.Min | Fexpr.Max -> true
  | Fexpr.Sub | Fexpr.Div -> false

(* Reduction recognition sanity inside one DOALL: the operator must be
   commutative-associative, the variable must receive no ordinary
   assignment (the merged value would depend on PE interleaving), and all
   contributions to one variable must agree on the operator. *)
let judge_reductions ~eid (l : Stmt.loop) =
  let module S = Set.Make (String) in
  let reduces =
    List.rev
      (Stmt.fold
         (fun acc s -> match s with Stmt.Reduce r -> r :: acc | _ -> acc)
         [] l.Stmt.body)
  in
  let sassigned =
    Stmt.fold
      (fun acc s -> match s with Stmt.Sassign (v, _) -> S.add v acc | _ -> acc)
      S.empty l.Stmt.body
  in
  let mk loc msg =
    Diag.make Diag.Bad_reduction ~loc ~loop_id:l.Stmt.loop_id ~epoch:eid msg
  in
  let ops : (string, Fexpr.binop) Hashtbl.t = Hashtbl.create 4 in
  List.concat_map
    (fun (r : Stmt.reduce) ->
      let d1 =
        if assoc_op r.Stmt.rop then []
        else
          [
            mk r.Stmt.rloc
              (Printf.sprintf
                 "reduction on %s uses non-associative operator %s: per-PE \
                  partials cannot be merged in any order"
                 r.Stmt.rvar
                 (Fexpr.string_of_binop r.Stmt.rop));
          ]
      in
      let d2 =
        if S.mem r.Stmt.rvar sassigned then
          [
            mk r.Stmt.rloc
              (Printf.sprintf
                 "reduction variable %s is also written by an ordinary \
                  assignment in the same DOALL"
                 r.Stmt.rvar);
          ]
        else []
      in
      let d3 =
        match Hashtbl.find_opt ops r.Stmt.rvar with
        | Some op when op <> r.Stmt.rop ->
            [
              mk r.Stmt.rloc
                (Printf.sprintf
                   "reduction variable %s mixes operators %s and %s"
                   r.Stmt.rvar
                   (Fexpr.string_of_binop op)
                   (Fexpr.string_of_binop r.Stmt.rop));
            ]
        | Some _ -> []
        | None ->
            Hashtbl.replace ops r.Stmt.rvar r.Stmt.rop;
            []
      in
      d1 @ d2 @ d3)
    reduces

let judge_doall ~params ~outer ~eid (l : Stmt.loop) =
  let doall_diag fmt =
    Diag.makef Diag.Doall_race ~loc:l.Stmt.loc ~loop_id:l.Stmt.loop_id
      ~epoch:eid fmt
  in
  let red_diags = judge_reductions ~eid l in
  match scalar_flow l.Stmt.body with
  | Some v ->
      red_diags
      @ [
          doall_diag "loop %s is marked DOALL but scalar %s is read before \
                      written"
            l.Stmt.var v;
        ]
  | None ->
      let shared_env = Iterspace.of_loops ~params outer in
      let trip =
        Iterspace.trip_count l (Iterspace.of_loops ~params (outer @ [ l ]))
      in
      (* reference + its instance loop stack (this DOALL outermost) + the
         lock of its innermost enclosing critical section *)
      let refs = ref [] in
      let rec collect lock loops stmts =
        List.iter
          (fun s ->
            (match Stmt.direct_write s with
            | Some r -> refs := (true, r, loops, lock) :: !refs
            | None -> ());
            List.iter
              (fun r -> refs := (false, r, loops, lock) :: !refs)
              (Stmt.direct_reads s);
            match s with
            | Stmt.For m -> collect lock (loops @ [ m ]) m.Stmt.body
            | Stmt.If (c, a, b) ->
                (match c with
                | Stmt.Fcond (_, x, y) ->
                    List.iter
                      (fun r -> refs := (false, r, loops, lock) :: !refs)
                      (Fexpr.reads x @ Fexpr.reads y)
                | Stmt.Icond _ -> ());
                collect lock loops a;
                collect lock loops b
            | Stmt.Critical c -> collect (Some c.Stmt.lock) loops c.Stmt.cbody
            | Stmt.Assign _ | Stmt.Sassign _ | Stmt.Reduce _ | Stmt.Call _ ->
                ())
          stmts
      in
      collect None [ l ] l.Stmt.body;
      let refs = List.rev !refs in
      (* one representative finding per category, first in syntactic
         order: a plain carried dependence (W003), a one-sided lock
         (W009), an inconsistent lock pair (W010). Pairs where both sides
         hold the same lock are discharged: the sections mutually
         exclude, and the in-critical staleness obligation (checked by
         Coverage) makes the protected values current. *)
      let plain = ref None and one_sided = ref None and mixed = ref None in
      List.iter
        (fun (wa, (a : Reference.t), loops_a, lka) ->
          List.iter
            (fun (wb, (b : Reference.t), loops_b, lkb) ->
              if
                (wa || wb)
                && String.equal a.Reference.array_name b.Reference.array_name
                && pair_carries ~var:l.Stmt.var ~trip ~shared_env ~loops_a
                     ~loops_b a b
              then
                match (lka, lkb) with
                | Some la, Some lb when String.equal la lb -> ()
                | Some la, Some lb ->
                    if !mixed = None then
                      mixed :=
                        Some
                          (Diag.makef Diag.Inconsistent_lock ~loc:l.Stmt.loc
                             ~ref_id:a.Reference.id ~loop_id:l.Stmt.loop_id
                             ~epoch:eid
                             "references %d and %d of %s conflict under \
                              different locks (%s vs %s): mutual exclusion \
                              does not compose across locks"
                             a.Reference.id b.Reference.id
                             a.Reference.array_name la lb)
                | (Some lk, None | None, Some lk) ->
                    if !one_sided = None then
                      one_sided :=
                        Some
                          (Diag.makef Diag.Unprotected_conflict
                             ~loc:l.Stmt.loc ~ref_id:a.Reference.id
                             ~loop_id:l.Stmt.loop_id ~epoch:eid
                             "references %d and %d of %s may touch the same \
                              element on different PEs but only one side \
                              holds lock %s"
                             a.Reference.id b.Reference.id
                             a.Reference.array_name lk)
                | None, None ->
                    if !plain = None then
                      plain :=
                        Some
                          (doall_diag
                             "loop %s is marked DOALL but references %d and \
                              %d of %s may touch the same element in \
                              different iterations"
                             l.Stmt.var a.Reference.id b.Reference.id
                             a.Reference.array_name))
            refs)
        refs;
      red_diags @ List.filter_map Fun.id [ !plain; !one_sided; !mixed ]

let check ~params (epochs : Epoch.t) =
  let diags = ref [] in
  let rec walk outer nodes =
    List.iter
      (fun node ->
        match node with
        | Epoch.E (eid, Epoch.Par l) ->
            diags := List.rev_append (judge_doall ~params ~outer ~eid l) !diags
        | Epoch.E (_, Epoch.Ser _) -> ()
        | Epoch.Loop (l, body) -> walk (outer @ [ l ]) body
        | Epoch.Branch (_, t, e) ->
            walk outer t;
            walk outer e)
      nodes
  in
  walk [] epochs.Epoch.nodes;
  List.rev !diags
