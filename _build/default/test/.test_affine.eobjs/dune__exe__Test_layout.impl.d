test/test_layout.ml: Alcotest Array_decl Ccdp_craft Ccdp_ir Ccdp_test_support Dist Layout QCheck Section
