(* Benchmark harness: regenerates every table of the paper plus the
   ablation studies indexed in DESIGN.md, and (with "micro") runs bechamel
   microbenchmarks of the compiler phases and simulator primitives.

   Usage:
     dune exec bench/main.exe                 -- everything (default sizes)
     dune exec bench/main.exe -- table1       -- just Table 1
     dune exec bench/main.exe -- table2
     dune exec bench/main.exe -- ablate
     dune exec bench/main.exe -- sweep
     dune exec bench/main.exe -- micro
     dune exec bench/main.exe -- oracle       -- staleness-oracle overhead
     dune exec bench/main.exe -- all --full   -- paper-shaped sizes (slow) *)

open Ccdp_workloads
open Ccdp_core

type sizes = { n : int; iters : int; pes : int list; abl_pes : int }

let default_sizes = { n = 64; iters = 2; pes = [ 1; 2; 4; 8; 16; 32; 64 ]; abl_pes = 16 }
let full_sizes = { n = 128; iters = 3; pes = [ 1; 2; 4; 8; 16; 32; 64 ]; abl_pes = 32 }

let ppf = Format.std_formatter

let header title =
  Format.fprintf ppf "@.=== %s ===@.@." title

let tables sizes =
  header
    (Printf.sprintf
       "Paper Tables 1 and 2 (n=%d, iters=%d; simulated T3D; every run \
        numerically verified against sequential execution)"
       sizes.n sizes.iters);
  let ws = Suite.spec_four ~n:sizes.n ~iters:sizes.iters () in
  let spec = { Experiment.default_spec with Experiment.pes = sizes.pes } in
  let rows = Experiment.evaluate ~spec ws in
  Experiment.print_table1 ppf rows;
  Experiment.print_table2 ppf rows;
  Format.fprintf ppf
    "Paper Table 2 reference bands: MXM 64.5-89.8%%, VPENTA 4.4-23.9%%, \
     TOMCATV 44.8-69.6%%, SWIM 2.5-13.2%%.@."

let extras_table sizes =
  header "Extra kernels (same protocol)";
  let ws =
    [
      Extras.jacobi ~n:sizes.n ~iters:sizes.iters;
      Extras.dynamic ~n:sizes.n;
      Extras.opaque_sweep ~n:sizes.n;
      Extras.triad ~n:sizes.n;
    ]
  in
  let spec = { Experiment.default_spec with Experiment.pes = sizes.pes } in
  let rows = Experiment.evaluate ~spec ws in
  Experiment.print_table2 ppf rows

let ablations sizes =
  header "Ablation studies (DESIGN.md experiments A-C)";
  let ws = Suite.spec_four ~n:sizes.n ~iters:sizes.iters () in
  Experiment.ablation_target ~n_pes:sizes.abl_pes ws ppf;
  Experiment.ablation_technique ~n_pes:sizes.abl_pes ws ppf;
  Experiment.ablation_coherence ~n_pes:sizes.abl_pes ws ppf;
  Experiment.ablation_prefetch_clean ~n_pes:sizes.abl_pes ws ppf;
  Experiment.ablation_vpg_levels ~n_pes:sizes.abl_pes ws ppf;
  Experiment.ablation_topology ~n_pes:64 ws ppf

let sweeps sizes =
  header "Parameter sweeps (DESIGN.md experiment D)";
  let tom = Tomcatv.workload ~n:sizes.n ~iters:sizes.iters in
  let mxm = Mxm.workload ~n:sizes.n in
  Experiment.sweep_remote ~n_pes:sizes.abl_pes tom ppf;
  Experiment.sweep_remote ~n_pes:sizes.abl_pes mxm ppf;
  (* the queue only matters on the software-pipelined path *)
  Experiment.sweep_queue ~n_pes:sizes.abl_pes (Extras.opaque_sweep ~n:sizes.n) ppf;
  Experiment.sweep_cache ~n_pes:sizes.abl_pes
    (Mxm.workload ~n:sizes.n) ppf

(* ---- staleness-oracle overhead ------------------------------------- *)

(* Host-time cost of arming the dynamic staleness oracle. The oracle is
   pure instrumentation: it must not change the simulated machine (cycles
   are asserted identical) and should stay cheap enough to leave on for
   every fuzz run. *)
let oracle_overhead sizes =
  header "Staleness-oracle overhead (host time; simulated cycles unchanged)";
  let ws =
    [
      Tomcatv.workload ~n:sizes.n ~iters:sizes.iters;
      Mxm.workload ~n:sizes.n;
      Extras.jacobi ~n:sizes.n ~iters:sizes.iters;
    ]
  in
  Format.fprintf ppf "%-10s %12s %12s %9s %12s %10s@." "workload" "off (s)"
    "on (s)" "overhead" "checks" "violations";
  List.iter
    (fun (w : Workload.t) ->
      let cfg = Ccdp_machine.Config.t3d ~n_pes:sizes.abl_pes in
      let compiled = Pipeline.compile cfg w.Workload.program in
      let run ~oracle =
        Ccdp_runtime.Interp.run cfg ~oracle compiled.Pipeline.program
          ~plan:compiled.Pipeline.plan ~mode:Ccdp_runtime.Memsys.Ccdp ()
      in
      let time ~oracle =
        let t0 = Sys.time () in
        let r = run ~oracle in
        (Sys.time () -. t0, r)
      in
      ignore (run ~oracle:false) (* warm up *);
      let t_off, r_off = time ~oracle:false in
      let t_on, r_on = time ~oracle:true in
      if r_on.Ccdp_runtime.Interp.cycles <> r_off.Ccdp_runtime.Interp.cycles
      then
        failwith
          (Printf.sprintf "%s: oracle changed simulated time (%d vs %d)"
             w.Workload.name r_on.Ccdp_runtime.Interp.cycles
             r_off.Ccdp_runtime.Interp.cycles);
      let sys = r_on.Ccdp_runtime.Interp.sys in
      Format.fprintf ppf "%-10s %12.3f %12.3f %8.1f%% %12d %10d@."
        w.Workload.name t_off t_on
        (if t_off > 0.0 then 100.0 *. ((t_on /. t_off) -. 1.0) else 0.0)
        (Ccdp_runtime.Memsys.oracle_checked sys)
        (Ccdp_runtime.Memsys.oracle_violation_count sys))
    ws;
  Format.fprintf ppf "@."

(* ---- bechamel microbenchmarks -------------------------------------- *)

let micro () =
  header "Microbenchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let w = Tomcatv.workload ~n:32 ~iters:1 in
  let cfg16 = Ccdp_machine.Config.t3d ~n_pes:16 in
  let inlined = Ccdp_ir.Program.inline w.Workload.program in
  let ep = Ccdp_ir.Epoch.partition inlined.Ccdp_ir.Program.main in
  let infos = Ccdp_analysis.Ref_info.collect ep in
  let compiled32 = Pipeline.compile cfg16 w.Workload.program in
  let jac = Extras.jacobi ~n:24 ~iters:1 in
  let jac_compiled = Pipeline.compile (Ccdp_machine.Config.t3d ~n_pes:4) jac.Workload.program in
  let cache = Ccdp_machine.Cache.of_config cfg16 in
  let payload = Array.make cfg16.Ccdp_machine.Config.line_words 1.0 in
  let sec_a =
    Ccdp_ir.Section.of_dims
      [ Ccdp_ir.Section.dim ~lo:0 ~hi:500 ~step:3; Ccdp_ir.Section.dim ~lo:0 ~hi:500 ~step:2 ]
  in
  let sec_b =
    Ccdp_ir.Section.of_dims
      [ Ccdp_ir.Section.dim ~lo:1 ~hi:400 ~step:7; Ccdp_ir.Section.dim ~lo:3 ~hi:900 ~step:5 ]
  in
  let tests =
    [
      Test.make ~name:"section.inter (2-D strided)"
        (Staged.stage (fun () -> Ccdp_ir.Section.inter sec_a sec_b));
      Test.make ~name:"cache fill+read line"
        (Staged.stage (fun () ->
             ignore (Ccdp_machine.Cache.fill cache ~line:17 payload);
             Ccdp_machine.Cache.read cache ~addr:68));
      Test.make ~name:"stale analysis (tomcatv n=32, 16 PEs)"
        (Staged.stage (fun () ->
             let region = Ccdp_analysis.Region.make inlined ~n_pes:16 in
             Ccdp_analysis.Stale.analyze region infos));
      Test.make ~name:"full pipeline compile (tomcatv n=32)"
        (Staged.stage (fun () -> Pipeline.compile cfg16 w.Workload.program));
      Test.make ~name:"interp jacobi n=24 CCDP (4 PEs)"
        (Staged.stage (fun () ->
             Ccdp_runtime.Interp.run
               (Ccdp_machine.Config.t3d ~n_pes:4)
               jac_compiled.Pipeline.program ~plan:jac_compiled.Pipeline.plan
               ~mode:Ccdp_runtime.Memsys.Ccdp ()));
      Test.make ~name:"epoch partition + ref collection (tomcatv)"
        (Staged.stage (fun () ->
             Ccdp_analysis.Ref_info.collect
               (Ccdp_ir.Epoch.partition inlined.Ccdp_ir.Program.main)));
      (let text = Ccdp_core.Craft_emit.to_string compiled32 in
       Test.make ~name:"CRAFT parse (tomcatv source)"
         (Staged.stage (fun () -> Ccdp_ir.Craft_parse.program text)));
      Test.make ~name:"CRAFT emit (tomcatv)"
        (Staged.stage (fun () -> Ccdp_core.Craft_emit.to_string compiled32));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
    let raw = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
              Format.fprintf ppf "%-45s %12.0f ns/run@." name est
          | _ -> Format.fprintf ppf "%-45s (no estimate)@." name)
        results)
    tests

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let sizes = if full then full_sizes else default_sizes in
  let has cmd = List.mem cmd args in
  let all = has "all" || not (has "table1" || has "table2" || has "ablate" || has "sweep" || has "micro" || has "oracle") in
  if all || has "table1" || has "table2" then tables sizes;
  if all then extras_table sizes;
  if all || has "ablate" then ablations sizes;
  if all || has "sweep" then sweeps sizes;
  if all || has "oracle" then oracle_overhead sizes;
  if has "micro" then micro ()
