lib/workloads/workload.mli: Ccdp_ir
