test/test_soundness.ml: Alcotest Builder Ccdp_analysis Ccdp_core Ccdp_ir Ccdp_machine Ccdp_runtime Ccdp_test_support Craft_parse Dist Format Interp List Memsys Program QCheck Stmt String Verify
