lib/ir/reference.mli: Affine Format
