lib/machine/stats.ml: Format
