(** The CCDP compiler pipeline (paper Section 3.2).

    [compile] runs the three phases end to end on a program for a given
    machine: interprocedural inlining and epoch partitioning, stale
    reference analysis, prefetch target analysis, prefetch scheduling. The
    result bundles every intermediate so that reports, tests and the
    runtime all see the same facts. *)

type t = {
  program : Ccdp_ir.Program.t;  (** inlined *)
  epochs : Ccdp_ir.Epoch.t;
  infos : Ccdp_analysis.Ref_info.t list;
  region : Ccdp_analysis.Region.t;
  stale : Ccdp_analysis.Stale.result;
  target : Ccdp_analysis.Target.t;
  plan : Ccdp_analysis.Annot.plan;
  decisions : Ccdp_analysis.Schedule.decision list;
  cfg : Ccdp_machine.Config.t;  (** machine the plan was scheduled for *)
  tuning : Ccdp_analysis.Schedule.tuning;  (** resolved scheduling knobs *)
  prefetch_clean : bool;  (** were clean reads eligible for prefetching? *)
  cluster_pes : int;
      (** effective island width of the alignment discharge: the machine's
          [cluster_pes] when compiled with [~cluster_coherent:true] (and
          the clustering divides the machine), 1 otherwise. The certifier
          re-derives obligations with the same width. *)
}

(** [mutate_stale] rewrites the stale-analysis result before target
    analysis and scheduling consume it — a fault-injection hook: the
    differential fuzzer drops a mark to prove the staleness oracle catches
    an unsound analysis. Defaults to the identity.

    [cluster_coherent] (default false) compiles for the clustered runtime
    ([Memsys.Clustered]): the stale analysis discharges reads whose
    writers provably land in the reader's hardware-coherent island
    ({!Ccdp_analysis.Region.aligned_cluster} at the machine's
    [Config.cluster_pes]). Unsound for every other mode — flat runs on a
    clustered machine must leave it off. *)
val compile :
  Ccdp_machine.Config.t ->
  ?tuning:Ccdp_analysis.Schedule.tuning ->
  ?innermost_only:bool ->
  ?group_spatial:bool ->
  ?prefetch_clean:bool ->
  ?cluster_coherent:bool ->
  ?mutate_stale:(Ccdp_analysis.Stale.result -> Ccdp_analysis.Stale.result) ->
  Ccdp_ir.Program.t ->
  t

(** Human-readable compilation report: epoch structure, stale counts,
    target groups, scheduling decisions. *)
val report : Format.formatter -> t -> unit
