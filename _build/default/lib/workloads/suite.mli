(** Workload registry. *)

(** The paper's four benchmarks at the given problem size. [iters] applies
    to the iterative kernels (TOMCATV, SWIM). *)
val spec_four : ?n:int -> ?iters:int -> unit -> Workload.t list

(** SPEC four plus the extra kernels ({!Extras}). *)
val all : ?n:int -> ?iters:int -> unit -> Workload.t list
