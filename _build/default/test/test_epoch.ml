open Ccdp_ir
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

let mk () =
  let b = B.create ~name:"e" () in
  B.param b "n" 8;
  B.array_ b "A" [| 8; 8 |];
  (b, B.A.v "i", B.A.v "j")

let partitioning =
  [
    case "top-level DOALL becomes a parallel epoch" (fun () ->
        let b, i, j = mk () in
        let open B.A in
        let p =
          B.finish b
            [ B.doall b "j" (bc 0) (bc 7)
                [ B.for_ b "i" (bc 0) (bc 7) [ B.assign b "A" [ i; j ] (F.const 1.0) ] ] ]
        in
        let e = Epoch.partition p.Program.main in
        check_int "one epoch" 1 e.Epoch.count;
        match Epoch.all e with
        | [ (0, Epoch.Par _) ] -> ()
        | _ -> Alcotest.fail "expected one parallel epoch");
    case "serial statements coalesce into one epoch" (fun () ->
        let b, _, _ = mk () in
        let open B.A in
        let p =
          B.finish b
            [
              B.assign b "A" [ c 0; c 0 ] (F.const 1.0);
              B.assign b "A" [ c 1; c 1 ] (F.const 2.0);
              Stmt.Sassign ("x", F.const 0.0);
            ]
        in
        let e = Epoch.partition p.Program.main in
        check_int "one serial epoch" 1 e.Epoch.count;
        match Epoch.all e with
        | [ (0, Epoch.Ser ss) ] -> check_int "3 stmts" 3 (List.length ss)
        | _ -> Alcotest.fail "shape");
    case "serial code between DOALLs splits into three epochs" (fun () ->
        let b, i, j = mk () in
        let open B.A in
        let d () =
          B.doall b "j" (bc 0) (bc 7)
            [ B.for_ b "i" (bc 0) (bc 7) [ B.assign b "A" [ i; j ] (F.const 1.0) ] ]
        in
        let p = B.finish b [ d (); B.assign b "A" [ c 0; c 0 ] (F.const 5.0); d () ] in
        let e = Epoch.partition p.Program.main in
        check_int "three epochs" 3 e.Epoch.count);
    case "serial loop containing a DOALL becomes a structure node" (fun () ->
        let b, i, j = mk () in
        let open B.A in
        let p =
          B.finish b
            [
              B.for_ b "t" (bc 1) (bc 3)
                [
                  B.doall b "j" (bc 0) (bc 7)
                    [ B.for_ b "i" (bc 0) (bc 7) [ B.assign b "A" [ i; j ] (F.const 1.0) ] ];
                ];
            ]
        in
        let e = Epoch.partition p.Program.main in
        (match e.Epoch.nodes with
        | [ Epoch.Loop (l, [ Epoch.E (_, Epoch.Par _) ]) ] ->
            check_true "var t" (l.Stmt.var = "t")
        | _ -> Alcotest.fail "expected Loop node");
        check_int "one epoch inside" 1 e.Epoch.count);
    case "pure serial loop stays inside a serial epoch" (fun () ->
        let b, i, _ = mk () in
        let open B.A in
        let p =
          B.finish b
            [ B.for_ b "i" (bc 0) (bc 7) [ B.assign b "A" [ i; c 0 ] (F.const 1.0) ] ]
        in
        let e = Epoch.partition p.Program.main in
        match Epoch.all e with
        | [ (_, Epoch.Ser _) ] -> ()
        | _ -> Alcotest.fail "expected serial epoch");
    case "branch containing a DOALL becomes a Branch node" (fun () ->
        let b, i, j = mk () in
        let open B.A in
        let d =
          B.doall b "j" (bc 0) (bc 7)
            [ B.for_ b "i" (bc 0) (bc 7) [ B.assign b "A" [ i; j ] (F.const 1.0) ] ]
        in
        let p =
          B.finish b [ Stmt.If (Stmt.Icond (Stmt.Lt, c 0, c 1), [ d ], []) ]
        in
        let e = Epoch.partition p.Program.main in
        match e.Epoch.nodes with
        | [ Epoch.Branch (_, [ Epoch.E (_, Epoch.Par _) ], []) ] -> ()
        | _ -> Alcotest.fail "expected Branch node");
    case "calls must be inlined first" (fun () ->
        check_true "raises"
          (try ignore (Epoch.partition [ Stmt.Call ("f", []) ]); false
           with Invalid_argument _ -> true));
    case "epoch ids are assigned in program order" (fun () ->
        let b, i, j = mk () in
        let open B.A in
        let d () =
          B.doall b "j" (bc 0) (bc 7)
            [ B.for_ b "i" (bc 0) (bc 7) [ B.assign b "A" [ i; j ] (F.const 1.0) ] ]
        in
        let p = B.finish b [ d (); d () ] in
        let e = Epoch.partition p.Program.main in
        Alcotest.(check (list int)) "ids" [ 0; 1 ] (List.map fst (Epoch.all e)));
  ]

let () = Alcotest.run "epoch" [ ("partitioning", partitioning) ]
