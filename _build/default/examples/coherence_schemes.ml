(* The coherence design space on one workload.

   Runs TOMCATV under every scheme the literature of the era offered:

     BASE  never cache shared data            (what CRAFT actually did)
     INV   cache + invalidate every epoch     (conservative compiler scheme)
     HSCD  cache + version self-invalidation  (hardware-supported schemes,
                                               paper Section 2 / Choi-Yew)
     CCDP  cache + compiler-directed prefetch (this paper)
     INC   cache + nothing                    (fast and WRONG)

   and prints the derived memory-system metrics for each.

   Run with: dune exec examples/coherence_schemes.exe *)

open Ccdp_workloads
open Ccdp_runtime
open Ccdp_core

let () =
  let n = 48 and iters = 2 and n_pes = 16 in
  let w = Tomcatv.workload ~n ~iters in
  Format.printf "Workload: %s at %d PEs@.@." w.Workload.descr n_pes;
  let cfg = Ccdp_machine.Config.t3d ~n_pes in
  let compiled = Pipeline.compile cfg w.Workload.program in
  let run mode =
    let plan =
      match mode with
      | Memsys.Ccdp -> compiled.Pipeline.plan
      | _ -> Ccdp_analysis.Annot.empty ()
    in
    let r = Interp.run cfg compiled.Pipeline.program ~plan ~mode () in
    let v = Verify.against_sequential w.Workload.program ~init:(fun _ -> ()) r in
    (r, v)
  in
  Format.printf
    "scheme  cycles     coherent  hit%%   coverage  remote/ref  invalidations@.";
  Format.printf
    "------  ---------  --------  -----  --------  ----------  -------------@.";
  List.iter
    (fun mode ->
      let r, v = run mode in
      let m = Metrics.of_result r in
      Format.printf "%-6s  %9d  %-8s  %5.1f  %7.1f%%  %10.3f  %13d@."
        (Memsys.mode_name mode) r.Interp.cycles
        (if v.Verify.ok then "yes" else "NO")
        (100. *. m.Metrics.hit_ratio)
        (100. *. m.Metrics.prefetch_coverage)
        m.Metrics.remote_ops_per_ref
        r.Interp.stats.Ccdp_machine.Stats.invalidations)
    [ Memsys.Base; Memsys.Invalidate; Memsys.Hscd; Memsys.Ccdp; Memsys.Incoherent ];
  Format.printf
    "@.CCDP turns the coherence mechanism itself into latency hiding: it is@.";
  Format.printf
    "the only coherent scheme whose line acquisitions are mostly prefetched.@."
