let table ppf ~title ~headers rows =
  List.iter
    (fun r ->
      if List.length r <> List.length headers then
        invalid_arg "Report.table: ragged row")
    rows;
  let widths =
    List.mapi
      (fun col h ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r col)))
          (String.length h) rows)
      headers
  in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let line cells =
    String.concat "  " (List.map2 pad widths cells) |> String.trim
    |> fun s -> Format.fprintf ppf "%s@," s
  in
  Format.fprintf ppf "@[<v>%s@," title;
  line headers;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter line rows;
  Format.fprintf ppf "@]@."

let csv ppf ~headers rows =
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '\"' s) ^ "\""
    else s
  in
  let line cells =
    Format.fprintf ppf "%s@." (String.concat "," (List.map quote cells))
  in
  line headers;
  List.iter line rows

let fpct v = Printf.sprintf "%.2f%%" v
let fx v = Printf.sprintf "%.2f" v
