open Ccdp_ir
module B = Builder
module F = Builder.F

(* Forward elimination and back substitution of a pentadiagonal system per
   column, with diagonally-dominant synthetic coefficients so the recurrence
   stays bounded. Arrays: sub-sub A, sub B, diag C, super D, super-super E,
   right-hand side F, solution X. *)
let program ~n =
  if n < 6 then invalid_arg "Vpenta.program: n too small";
  let b = B.create ~name:"vpenta" () in
  B.param b "n" n;
  let dist = Dist.block_along ~rank:2 ~dim:1 in
  List.iter (fun name -> B.array_ b name [| n; n |] ~dist)
    [ "A"; "B"; "C"; "D"; "E"; "F"; "X" ];
  let open B.A in
  let rd = B.rd b in
  let i = v "i" and j = v "j" in
  let fi = F.iv "i" and fj = F.iv "j" in
  let s = 1.0 /. float_of_int n in
  let init =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "A" [ i; j ] F.(const 0.1 + (fi * const (0.1 *. s)));
            B.assign b "B" [ i; j ] F.(const 0.2 + (fj * const (0.1 *. s)));
            B.assign b "C" [ i; j ] F.(const 4.0 + ((fi + fj) * const s));
            B.assign b "D" [ i; j ] F.(const 0.2 - (fi * const (0.05 *. s)));
            B.assign b "E" [ i; j ] F.(const 0.1 + (fj * const (0.05 *. s)));
            B.assign b "F" [ i; j ] F.(((fi - fj) * const s) + const 1.0);
            B.assign b "X" [ i; j ] (F.const 0.0);
          ];
      ]
  in
  let last = c (n - 1) and last2 = c (n - 2) and cn = c n and cn1 = c (n + 1) in
  (* forward elimination: fold the two sub-diagonals into the diagonal *)
  let forward =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 2)
          (bc (n - 1))
          [
            B.assign b "C" [ i; j ]
              F.(
                rd "C" [ i; j ]
                - (rd "A" [ i; j ] * rd "E" [ i -! c 2; j ])
                - (rd "B" [ i; j ] * rd "D" [ i -! c 1; j ]));
            B.assign b "F" [ i; j ]
              F.(
                rd "F" [ i; j ]
                - (rd "A" [ i; j ] * rd "F" [ i -! c 2; j ] * const 0.1)
                - (rd "B" [ i; j ] * rd "F" [ i -! c 1; j ] * const 0.1));
          ];
      ]
  in
  (* back substitution via the reversed index i' -> n-1-i' (steps stay +1) *)
  let backward =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.assign b "X" [ last; j ]
          F.(rd "F" [ last; j ] / rd "C" [ last; j ]);
        B.assign b "X" [ last2; j ]
          F.(rd "F" [ last2; j ] / rd "C" [ last2; j ]);
        B.for_ b "r" (bc 2)
          (bc (n - 1))
          [
            B.assign b "X"
              [ last -! v "r"; j ]
              F.(
                (rd "F" [ last -! v "r"; j ]
                - (rd "D" [ last -! v "r"; j ]
                  * rd "X" [ cn -! v "r"; j ])
                - (rd "E" [ last -! v "r"; j ]
                  * rd "X" [ cn1 -! v "r"; j ]))
                / rd "C" [ last -! v "r"; j ]);
          ];
      ]
  in
  (* scaling pass over the solution, still column-local *)
  let scalepass =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "X" [ i; j ]
              F.(rd "X" [ i; j ] * (const 1.0 + (fj * const (0.01 *. s))));
          ];
      ]
  in
  B.finish b [ init; forward; backward; scalepass ]

let workload ~n =
  Workload.make ~name:"vpenta"
    ~descr:
      (Printf.sprintf
         "pentadiagonal inversion %dx%d, fully column-local (owner-computes)"
         n n)
    (program ~n)
