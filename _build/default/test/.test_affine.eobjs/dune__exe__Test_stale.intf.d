test/test_stale.mli:
