open Ccdp_machine
open Ccdp_test_support.Tutil

let tests =
  [
    case "insert then find then remove" (fun () ->
        let q = Prefetch_queue.create ~capacity:16 in
        check_true "in" (Prefetch_queue.try_insert q ~line:3 ~words:4 ~ready:100);
        check_true "found" (Prefetch_queue.find q ~line:3 = Some 100);
        check_int "occ" 4 (Prefetch_queue.occupancy q);
        Prefetch_queue.remove q ~line:3;
        check_true "gone" (Prefetch_queue.find q ~line:3 = None);
        check_int "occ0" 0 (Prefetch_queue.occupancy q));
    case "overflow drops the insert" (fun () ->
        let q = Prefetch_queue.create ~capacity:8 in
        check_true "a" (Prefetch_queue.try_insert q ~line:0 ~words:4 ~ready:1);
        check_true "b" (Prefetch_queue.try_insert q ~line:1 ~words:4 ~ready:2);
        check_false "full" (Prefetch_queue.try_insert q ~line:2 ~words:4 ~ready:3);
        check_int "occ" 8 (Prefetch_queue.occupancy q));
    case "re-inserting a pending line is an accepted no-op" (fun () ->
        let q = Prefetch_queue.create ~capacity:8 in
        check_true "first" (Prefetch_queue.try_insert q ~line:0 ~words:4 ~ready:10);
        check_true "dedup" (Prefetch_queue.try_insert q ~line:0 ~words:4 ~ready:99);
        check_true "keeps first arrival" (Prefetch_queue.find q ~line:0 = Some 10);
        check_int "occ once" 4 (Prefetch_queue.occupancy q));
    case "clear reports the number of dropped entries" (fun () ->
        let q = Prefetch_queue.create ~capacity:16 in
        ignore (Prefetch_queue.try_insert q ~line:0 ~words:4 ~ready:1);
        ignore (Prefetch_queue.try_insert q ~line:1 ~words:4 ~ready:2);
        check_int "two" 2 (Prefetch_queue.clear q);
        check_int "occ" 0 (Prefetch_queue.occupancy q));
    case "entries preserve insertion order" (fun () ->
        let q = Prefetch_queue.create ~capacity:16 in
        ignore (Prefetch_queue.try_insert q ~line:5 ~words:4 ~ready:1);
        ignore (Prefetch_queue.try_insert q ~line:6 ~words:4 ~ready:2);
        match Prefetch_queue.entries q with
        | [ a; b ] ->
            check_int "first" 5 a.Prefetch_queue.line;
            check_int "second" 6 b.Prefetch_queue.line
        | _ -> Alcotest.fail "two entries");
    case "zero-capacity queue drops everything" (fun () ->
        let q = Prefetch_queue.create ~capacity:0 in
        check_false "drop" (Prefetch_queue.try_insert q ~line:0 ~words:4 ~ready:1));
  ]

let edge =
  [
    case "removing an absent line is a no-op" (fun () ->
        let q = Prefetch_queue.create ~capacity:8 in
        ignore (Prefetch_queue.try_insert q ~line:1 ~words:4 ~ready:1);
        Prefetch_queue.remove q ~line:42;
        check_int "occ untouched" 4 (Prefetch_queue.occupancy q);
        check_true "original still pending" (Prefetch_queue.find q ~line:1 = Some 1));
    case "an insert that exactly fills the queue is accepted" (fun () ->
        let q = Prefetch_queue.create ~capacity:8 in
        check_true "a" (Prefetch_queue.try_insert q ~line:0 ~words:4 ~ready:1);
        check_true "fits exactly" (Prefetch_queue.try_insert q ~line:1 ~words:4 ~ready:2);
        check_int "at capacity" 8 (Prefetch_queue.occupancy q);
        check_false "one word over is dropped"
          (Prefetch_queue.try_insert q ~line:2 ~words:1 ~ready:3));
    case "re-issuing a pending line is accepted even when the queue is full"
      (fun () ->
        let q = Prefetch_queue.create ~capacity:8 in
        ignore (Prefetch_queue.try_insert q ~line:0 ~words:4 ~ready:1);
        ignore (Prefetch_queue.try_insert q ~line:1 ~words:4 ~ready:2);
        check_true "coalesced despite full queue"
          (Prefetch_queue.try_insert q ~line:1 ~words:4 ~ready:99);
        check_int "no double-count" 8 (Prefetch_queue.occupancy q);
        check_true "first arrival kept" (Prefetch_queue.find q ~line:1 = Some 2));
    case "a dropped insert leaves no trace" (fun () ->
        let q = Prefetch_queue.create ~capacity:4 in
        ignore (Prefetch_queue.try_insert q ~line:0 ~words:4 ~ready:1);
        check_false "dropped" (Prefetch_queue.try_insert q ~line:7 ~words:4 ~ready:2);
        check_true "not findable" (Prefetch_queue.find q ~line:7 = None);
        Prefetch_queue.remove q ~line:0;
        check_true "room again after consumption"
          (Prefetch_queue.try_insert q ~line:7 ~words:4 ~ready:3));
    case "a zero-word insert fits even a zero-capacity queue" (fun () ->
        let q = Prefetch_queue.create ~capacity:0 in
        check_true "vacuous fit" (Prefetch_queue.try_insert q ~line:0 ~words:0 ~ready:1);
        check_int "occ" 0 (Prefetch_queue.occupancy q);
        check_true "pending" (Prefetch_queue.find q ~line:0 = Some 1));
    case "removing from the middle preserves the order of the rest" (fun () ->
        let q = Prefetch_queue.create ~capacity:16 in
        ignore (Prefetch_queue.try_insert q ~line:1 ~words:4 ~ready:1);
        ignore (Prefetch_queue.try_insert q ~line:2 ~words:4 ~ready:2);
        ignore (Prefetch_queue.try_insert q ~line:3 ~words:4 ~ready:3);
        Prefetch_queue.remove q ~line:2;
        match Prefetch_queue.entries q with
        | [ a; b ] ->
            check_int "first" 1 a.Prefetch_queue.line;
            check_int "second" 3 b.Prefetch_queue.line
        | l -> Alcotest.failf "expected two entries, got %d" (List.length l));
    case "clear on an empty queue reports zero" (fun () ->
        let q = Prefetch_queue.create ~capacity:8 in
        check_int "none dropped" 0 (Prefetch_queue.clear q);
        check_int "occ" 0 (Prefetch_queue.occupancy q);
        check_true "still usable"
          (Prefetch_queue.try_insert q ~line:0 ~words:4 ~ready:1));
  ]

let props =
  [
    qcheck "occupancy equals the sum of pending words"
      QCheck.(list_of_size (QCheck.Gen.int_range 0 10) (int_range 0 20))
      (fun lines ->
        let q = Prefetch_queue.create ~capacity:32 in
        List.iter (fun l -> ignore (Prefetch_queue.try_insert q ~line:l ~words:4 ~ready:0)) lines;
        Prefetch_queue.occupancy q
        = List.fold_left (fun acc e -> acc + e.Prefetch_queue.words) 0 (Prefetch_queue.entries q));
  ]

let () =
  Alcotest.run "queue"
    [ ("behaviour", tests); ("edge-cases", edge); ("properties", props) ]
