open Ccdp_ir

type triplet = int * int * int

let trip_count ~lo ~hi ~step =
  if lo > hi then 0 else ((hi - lo) / step) + 1

let is_static = function
  | Stmt.Static_block | Stmt.Static_aligned _ | Stmt.Static_cyclic -> true
  | Stmt.Dynamic _ -> false

let triplet_of_pe sched ~n_pes ~pe ~lo ~hi ~step =
  let n = trip_count ~lo ~hi ~step in
  if n = 0 then None
  else
    match sched with
    | Stmt.Static_block ->
        let chunk = (n + n_pes - 1) / n_pes in
        let first_idx = pe * chunk and last_idx = min (n - 1) (((pe + 1) * chunk) - 1) in
        if first_idx > last_idx then None
        else Some (lo + (first_idx * step), lo + (last_idx * step), step)
    | Stmt.Static_aligned extent ->
        (* iteration value v runs on the PE owning index v of a
           block-distributed dimension of the given extent *)
        let chunk = (extent + n_pes - 1) / n_pes in
        let wlo = pe * chunk and whi = min (extent - 1) (((pe + 1) * chunk) - 1) in
        if wlo > whi then None
        else
          (* smallest iteration value >= wlo congruent to lo mod step *)
          let first =
            if lo >= wlo then lo else lo + ((wlo - lo + step - 1) / step * step)
          in
          let last_bound = min hi whi in
          if first > last_bound then None
          else
            let last = first + ((last_bound - first) / step * step) in
            Some (first, last, step)
    | Stmt.Static_cyclic ->
        if pe >= n then None
        else
          let first = lo + (pe * step) in
          Some (first, hi, step * n_pes)
    | Stmt.Dynamic _ -> None

let dynamic_chunks ~chunk ~lo ~hi ~step =
  if chunk <= 0 then invalid_arg "Loop_sched.dynamic_chunks: chunk <= 0";
  let n = trip_count ~lo ~hi ~step in
  let rec go idx acc =
    if idx >= n then List.rev acc
    else
      let last_idx = min (n - 1) (idx + chunk - 1) in
      go (last_idx + 1) ((lo + (idx * step), lo + (last_idx * step), step) :: acc)
  in
  go 0 []

let pe_of_iter sched ~n_pes ~lo ~hi ~step i =
  let n = trip_count ~lo ~hi ~step in
  if n = 0 || i < lo || i > hi || (i - lo) mod step <> 0 then None
  else
    let idx = (i - lo) / step in
    match sched with
    | Stmt.Static_block ->
        let chunk = (n + n_pes - 1) / n_pes in
        Some (idx / chunk)
    | Stmt.Static_aligned extent ->
        let chunk = (extent + n_pes - 1) / n_pes in
        Some (min (n_pes - 1) (i / chunk))
    | Stmt.Static_cyclic -> Some (idx mod n_pes)
    | Stmt.Dynamic _ -> None
