(** DOALL loop scheduling: which PE runs which iterations.

    For static schedules the assignment is a compile-time triplet, which the
    analyses use to build per-PE access regions and the runtime uses to
    drive execution. Dynamic (self-scheduled) loops have no compile-time
    assignment — the analyses must be conservative (paper Fig. 2, case 3)
    and the runtime assigns chunks greedily to the least-loaded PE. *)

(** Iteration-value triplet [(first, last, stride)], empty when [None]. *)
type triplet = int * int * int

(** Static per-PE iteration triplet; [None] for dynamic schedules or when
    the PE receives no iterations. [lo], [hi] are inclusive iteration
    values; [step] the loop step. *)
val triplet_of_pe :
  Ccdp_ir.Stmt.sched -> n_pes:int -> pe:int -> lo:int -> hi:int -> step:int ->
  triplet option

(** Is the assignment known at compile time? *)
val is_static : Ccdp_ir.Stmt.sched -> bool

(** Total iterations of [lo..hi step]. *)
val trip_count : lo:int -> hi:int -> step:int -> int

(** Chunks of a dynamic schedule in issue order: list of triplets. *)
val dynamic_chunks : chunk:int -> lo:int -> hi:int -> step:int -> triplet list

(** PE owning a given iteration under a static schedule. *)
val pe_of_iter :
  Ccdp_ir.Stmt.sched -> n_pes:int -> lo:int -> hi:int -> step:int -> int ->
  int option
