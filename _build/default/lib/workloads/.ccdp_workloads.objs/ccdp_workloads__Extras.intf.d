lib/workloads/extras.mli: Workload
