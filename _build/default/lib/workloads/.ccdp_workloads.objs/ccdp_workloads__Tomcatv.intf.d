lib/workloads/tomcatv.mli: Ccdp_ir Workload
