lib/analysis/annot.ml: Format Hashtbl List Printf Stale String
