open Gen

(* replace element [i] of [l] by the elements [f (List.nth l i)] *)
let splice l i f =
  List.concat (List.mapi (fun k x -> if k = i then f x else [ x ]) l)

let drop_nth l i = splice l i (fun _ -> [])

(* one-step simplifications of a single statement *)
let stmt_steps (s : stmt_desc) =
  List.concat
    [
      (* drop one read (keep at least one so the statement stays a read) *)
      (if List.length s.reads > 1 then
         List.mapi (fun k _ -> { s with reads = drop_nth s.reads k }) s.reads
       else []);
      (if s.guarded then [ { s with guarded = false } ] else []);
      (if s.doi <> 0 then [ { s with doi = 0 } ] else []);
      (* flatten one read's offsets *)
      List.concat
        (List.mapi
           (fun k (a, oi, oj) ->
             if oi <> 0 || oj <> 0 then
               [ { s with reads = splice s.reads k (fun _ -> [ (a, 0, 0) ]) } ]
             else [])
           s.reads);
    ]

let epoch_steps e =
  match e with
  | Sweep _ -> []
  | Lock l ->
      List.concat
        [
          (if not l.fused then [ Lock { l with fused = true } ] else []);
          (match l.sched with
          | Block -> []
          | _ -> [ Lock { l with sched = Block } ]);
          (if l.col <> 0 then [ Lock { l with col = 0 } ] else []);
          (if l.col2 <> 0 then [ Lock { l with col2 = 0 } ] else []);
        ]
  | Red r ->
      List.concat
        [
          (if r.seed then [ Red { r with seed = false } ] else []);
          (match r.sched with
          | Block -> []
          | _ -> [ Red { r with sched = Block } ]);
          (match r.op with
          | Radd -> []
          | _ -> [ Red { r with op = Radd } ]);
        ]
  | Par p ->
      List.concat
        [
          (* drop one statement *)
          (if List.length p.stmts > 1 then
             List.mapi
               (fun k _ -> Par { p with stmts = drop_nth p.stmts k })
               p.stmts
           else []);
          (* simplify one statement *)
          List.concat
            (List.mapi
               (fun k s ->
                 List.map
                   (fun s' -> Par { p with stmts = splice p.stmts k (fun _ -> [ s' ]) })
                   (stmt_steps s))
               p.stmts);
          (if p.opaque_hi then [ Par { p with opaque_hi = false } ] else []);
          (match p.sched with
          | Block -> []
          | _ -> [ Par { p with sched = Block } ]);
          (if p.lo1 then [ Par { p with lo1 = false } ] else []);
        ]

let candidates (d : desc) =
  List.concat
    [
      (* drop one epoch (keep at least one) *)
      (if List.length d.epochs > 1 then
         List.mapi (fun k _ -> { d with epochs = drop_nth d.epochs k }) d.epochs
       else []);
      (if d.wrap then [ { d with wrap = false } ] else []);
      (* simplify one epoch *)
      List.concat
        (List.mapi
           (fun k e ->
             List.map
               (fun e' -> { d with epochs = splice d.epochs k (fun _ -> [ e' ]) })
               (epoch_steps e))
           d.epochs);
      (if d.n_pes > 2 then [ { d with n_pes = 2 } ] else []);
      (if d.net <> Ccdp_machine.Net.Uniform then
         [ { d with net = Ccdp_machine.Net.Uniform } ]
       else []);
      (if d.pclean then [ { d with pclean = false } ] else []);
      (* shrinking the edge clamps sweep columns into the smaller array *)
      (if d.n > 8 then
         [
           {
             d with
             n = 8;
             epochs =
               List.map
                 (function
                   | Sweep s -> Sweep { s with col = min s.col (8 - 2) }
                   | Lock l ->
                       Lock
                         {
                           l with
                           col = min l.col (8 - 1);
                           col2 = min l.col2 (8 - 1);
                         }
                   | (Par _ | Red _) as e -> e)
                 d.epochs;
           };
         ]
       else []);
    ]

let minimize ?(max_steps = 400) d ~still_fails =
  let budget = ref max_steps in
  (* a candidate that fails to re-validate is skipped without consuming
     budget; a predicate that crashes on a candidate did not reproduce the
     original failure (the bug under minimization is the predicate's
     verdict, not whatever the candidate tripped over) *)
  let keeps c =
    match Gen.validate c with
    | Error _ -> false
    | Ok () ->
        if !budget <= 0 then false
        else begin
          decr budget;
          try still_fails c with _ -> false
        end
  in
  let rec go d =
    let next = List.find_opt keeps (candidates d) in
    match next with Some c when !budget > 0 -> go c | _ -> d
  in
  go d
