(* Randomized end-to-end soundness of the whole pipeline.

   Generates random (race-free) distributed programs — random epoch
   sequences, schedules, stencil offsets, distributions, structure loops —
   compiles them with the three CCDP phases under random tunings, executes
   on machines of random width, and asserts the numerics match sequential
   execution exactly. Any unsound corner of the stale-reference analysis,
   target classification, scheduling or prefetch runtime shows up here as a
   wrong float.

   The race-freedom discipline mirrors the paper's epoch model (no
   dependences between concurrent tasks): within one parallel epoch an
   array is either only read or only written, and writes never cross the
   parallel column. *)

open Ccdp_ir
open Ccdp_runtime
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

let n = 12
let array_names = [ "A0"; "A1"; "A2" ]

type stmt_desc = {
  dst : int;  (** array index *)
  doi : int;  (** write row offset, -1..1 *)
  reads : (int * int * int) list;  (** (array, row offset, col offset) *)
  guarded : bool;  (** wrap in a structural if (Fig. 2 case-5 paths) *)
}

type epoch_desc =
  | Par of { sched : int; lo1 : bool; stmts : stmt_desc list }
  | SerialSweep of { src : int; col : int; dst : int }

type prog_desc = {
  dist_dim : int;  (** 0 or 1 *)
  epochs : epoch_desc list;
  wrap_in_loop : bool;  (** wrap the tail epochs in a 2-iteration loop *)
}

let gen_stmt =
  QCheck.Gen.(
    let* dst = int_range 0 2 in
    let* doi = int_range (-1) 1 in
    let* nreads = int_range 1 3 in
    let* guarded = frequency [ (3, return false); (1, return true) ] in
    let* reads =
      list_size (return nreads)
        (triple (int_range 0 2) (int_range (-1) 1) (int_range (-1) 1))
    in
    return { dst; doi; reads; guarded })

let gen_epoch =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          let* sched = int_range 0 3 in
          let* lo1 = bool in
          let* stmts = list_size (int_range 1 2) gen_stmt in
          return (Par { sched; lo1; stmts }) );
        ( 1,
          let* src = int_range 0 2 in
          let* col = int_range 1 (n - 2) in
          let* dst = int_range 0 2 in
          return (SerialSweep { src; col; dst }) );
      ])

let gen_prog =
  QCheck.Gen.(
    let* dist_dim = int_range 0 1 in
    let* epochs = list_size (int_range 2 4) gen_epoch in
    let* wrap_in_loop = bool in
    return { dist_dim; epochs; wrap_in_loop })

(* enforce the race-freedom discipline per parallel epoch: drop reads of
   arrays the epoch writes, and never write the destination of a
   SerialSweep... (simplest: also allowed, sweeps are single-task) *)
let sanitize_epoch e =
  match e with
  | SerialSweep _ -> e
  | Par p ->
      let written = List.map (fun s -> s.dst) p.stmts in
      let stmts =
        List.map
          (fun s ->
            let reads =
              List.filter (fun (a, _, _) -> not (List.mem a written)) s.reads
            in
            let reads = if reads = [] then [ ((s.dst + 1) mod 3, 0, 0) ] else reads in
            (* the fallback read must also avoid written arrays *)
            let reads =
              List.filter (fun (a, _, _) -> not (List.mem a written)) reads
            in
            { s with reads })
          p.stmts
      in
      Par { p with stmts }

let build (d : prog_desc) =
  let b = B.create ~name:"fuzz" () in
  B.param b "n" n;
  let dist = Dist.block_along ~rank:2 ~dim:d.dist_dim in
  List.iter (fun a -> B.array_ b a [| n; n |] ~dist) array_names;
  let open B.A in
  let arr k = List.nth array_names k in
  let init =
    (* deterministic full initialization of every array, owner-aligned *)
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          (List.mapi
             (fun k a ->
               B.assign b a
                 [ v "i"; v "j" ]
                 F.(
                   (F.iv "i" * const (0.25 +. (0.125 *. float_of_int k)))
                   - (F.iv "j" * const 0.0625)))
             array_names);
      ]
  in
  let mk_epoch e =
    match sanitize_epoch e with
    | SerialSweep { src; col; dst } ->
        [
          Stmt.Sassign ("acc", F.const 0.0);
          B.for_ b "k" (bc 1)
            (bc (n - 2))
            [
              Stmt.Sassign ("acc", F.(sv "acc" + B.rd b (arr src) [ v "k"; c col ]));
            ];
          B.assign b (arr dst) [ c 0; c 0 ] F.(sv "acc" * const 0.001);
        ]
    | Par { sched; lo1; stmts } ->
        let sched =
          match sched with
          | 0 -> Stmt.Static_block
          | 1 -> Stmt.Static_aligned n
          | 2 -> Stmt.Static_cyclic
          | _ -> Stmt.Dynamic 2
        in
        let lo = if lo1 then 1 else 0 and hi = if lo1 then n - 2 else n - 1 in
        (* offsets only allowed on the sub-range *)
        let clip o = if lo1 then o else 0 in
        [
          B.doall b ~sched "j" (bc lo) (bc hi)
            [
              B.for_ b "i" (bc lo) (bc hi)
                (List.map
                   (fun s ->
                     let rhs =
                       List.fold_left
                         (fun acc (a, oi, oj) ->
                           F.(
                             acc
                             + B.rd b (arr a)
                                 [ v "i" +! c (clip oi); v "j" +! c (clip oj) ]))
                         (F.const 0.5) s.reads
                     in
                     let assign =
                       B.assign b (arr s.dst)
                         [ v "i" +! c (clip s.doi); v "j" ]
                         F.(rhs * const 0.125)
                     in
                     if s.guarded then
                       (* a structural guard: the analyses treat both
                          branches as possible, the runtime takes one; the
                          else-branch writes the same owner-aligned element
                          so the epoch's write-set stays race-free *)
                       Stmt.If
                         ( Stmt.Icond (Stmt.Lt, v "i", c ((n / 2) + lo)),
                           [ assign ],
                           [
                             B.assign b (arr s.dst)
                               [ v "i" +! c (clip s.doi); v "j" ]
                               (F.const 0.25);
                           ] )
                     else assign)
                   stmts);
            ];
        ]
  in
  let body = List.concat_map mk_epoch d.epochs in
  let main =
    if d.wrap_in_loop then [ init; B.for_ b "t" (bc 1) (bc 2) body ]
    else init :: body
  in
  B.finish b main

let tunings =
  Ccdp_analysis.Schedule.
    [
      default_tuning;
      { default_tuning with allow_vpg = false };
      { default_tuning with allow_sp = false };
      { default_tuning with allow_vpg = false; allow_sp = false };
      { default_tuning with sp_max = 2; mbp_min_cycles = 8 };
      { default_tuning with vpg_levels = 2 };
    ]

let check_sound ~mode (d, n_pes, tuning_ix) =
  let program = build d in
  let cfg =
    (* rotate through the interconnect presets: half the draws stay on
       the uniform machine, the rest exercise torus, mesh and crossbar
       (the last with its link-contention model on) *)
    match tuning_ix mod 6 with
    | 2 -> Ccdp_machine.Config.t3d_torus ~n_pes
    | 4 -> Ccdp_machine.Config.t3d_mesh ~n_pes
    | 5 -> Ccdp_machine.Config.t3d_xbar ~n_pes
    | _ -> Ccdp_machine.Config.t3d ~n_pes
  in
  let tuning = List.nth tunings (tuning_ix mod List.length tunings) in
  (* odd draws also exercise the future-work extension (prefetching clean
     references) *)
  let prefetch_clean = tuning_ix mod 2 = 1 in
  let compiled = Ccdp_core.Pipeline.compile cfg ~tuning ~prefetch_clean program in
  let plan =
    match mode with
    | Memsys.Ccdp -> compiled.Ccdp_core.Pipeline.plan
    | _ -> Ccdp_analysis.Annot.empty ()
  in
  let r = Interp.run cfg compiled.Ccdp_core.Pipeline.program ~plan ~mode () in
  let v = Verify.against_sequential program ~init:(fun _ -> ()) r in
  if not v.Verify.ok then
    QCheck.Test.fail_reportf "mode %s diverged: %s" (Memsys.mode_name mode)
      (Format.asprintf "%a" Verify.pp_report v)
  else true

let gen_case =
  QCheck.make
    QCheck.Gen.(
      triple gen_prog (oneofl [ 2; 3; 4; 8 ]) (int_range 0 10))
    ~print:(fun (d, p, t) ->
      Format.asprintf "pes=%d tuning=%d@.%a" p t Program.pp (build d))

(* the deepest property: the analysis over-approximates observed reality —
   every read that actually sees a stale value in an INCOHERENT run must
   have been classified potentially stale *)
let check_analysis_covers_reality (d, n_pes, _) =
  let program = build d in
  let cfg = Ccdp_machine.Config.t3d ~n_pes in
  let compiled = Ccdp_core.Pipeline.compile cfg program in
  let r =
    Interp.run cfg compiled.Ccdp_core.Pipeline.program
      ~plan:(Ccdp_analysis.Annot.empty ()) ~mode:Memsys.Incoherent ()
  in
  let observed = Memsys.observed_stale_ids r.Interp.sys in
  let classified =
    Ccdp_analysis.Stale.stale_ids compiled.Ccdp_core.Pipeline.stale
  in
  let missed = List.filter (fun id -> not (List.mem id classified)) observed in
  if missed <> [] then
    QCheck.Test.fail_reportf
      "reads %s observed stale values but were classified clean"
      (String.concat ", " (List.map string_of_int missed))
  else true

(* the text front end and emitter are inverses on the whole generated
   program space: identical analysis and cycle-exact execution *)
let check_roundtrip (d, n_pes, _) =
  let program = build d in
  let cfg = Ccdp_machine.Config.t3d ~n_pes in
  let c1 = Ccdp_core.Pipeline.compile cfg program in
  let text = Ccdp_core.Craft_emit.to_string c1 in
  let c2 =
    try Ccdp_core.Pipeline.compile cfg (Craft_parse.program text)
    with Craft_parse.Error (ln, c, m) ->
      QCheck.Test.fail_reportf "reparse failed at line %d, column %d: %s@.%s"
        ln c m text
  in
  let run c =
    (Interp.run cfg c.Ccdp_core.Pipeline.program ~plan:c.Ccdp_core.Pipeline.plan
       ~mode:Memsys.Ccdp ())
      .Interp.cycles
  in
  let a = run c1 and b = run c2 in
  if a <> b then
    QCheck.Test.fail_reportf "cycles diverged after round-trip: %d vs %d" a b
  else true

let suite =
  [
    qcheck ~count:120 "CCDP execution always matches sequential numerics"
      gen_case (check_sound ~mode:Memsys.Ccdp);
    qcheck ~count:60 "BASE execution always matches sequential numerics"
      gen_case (check_sound ~mode:Memsys.Base);
    qcheck ~count:60 "INVALIDATE execution always matches sequential numerics"
      gen_case (check_sound ~mode:Memsys.Invalidate);
    qcheck ~count:60 "HSCD execution always matches sequential numerics"
      gen_case (check_sound ~mode:Memsys.Hscd);
    qcheck ~count:120 "the stale analysis covers every observed stale read"
      gen_case check_analysis_covers_reality;
    qcheck ~count:60 "emit/parse round-trips are cycle-exact on random programs"
      gen_case check_roundtrip;
  ]

let () = Alcotest.run "soundness" [ ("fuzz", suite) ]
