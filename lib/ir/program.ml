type proc = { pname : string; formals : string list; body : Stmt.t list }

type t = {
  name : string;
  arrays : Array_decl.t list;
  procs : proc list;
  main : Stmt.t list;
  params : (string * int) list;
}

let find_array_opt p name =
  List.find_opt (fun (a : Array_decl.t) -> String.equal a.name name) p.arrays

let find_array p name =
  match find_array_opt p name with
  | Some a -> a
  | None -> invalid_arg ("Program.find_array: undeclared array " ^ name)

let find_proc_opt p name = List.find_opt (fun pr -> String.equal pr.pname name) p.procs

let param p name =
  match List.assoc_opt name p.params with
  | Some v -> v
  | None -> invalid_arg ("Program.param: unbound parameter " ^ name)

let main_refs p =
  List.rev
    (Stmt.fold_refs (fun acc ~write r -> (write, r) :: acc) [] p.main)

let all_stmt_bodies p = p.main :: List.map (fun pr -> pr.body) p.procs

let max_ref_id p =
  List.fold_left
    (fun acc body ->
      Stmt.fold_refs (fun acc ~write:_ (r : Reference.t) -> max acc r.id) acc body)
    (-1) (all_stmt_bodies p)

let max_loop_id p =
  List.fold_left
    (fun acc body ->
      Stmt.fold
        (fun acc s ->
          match s with Stmt.For l -> max acc l.loop_id | _ -> acc)
        acc body)
    (-1) (all_stmt_bodies p)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let check_refs p body where problems =
  Stmt.fold_refs
    (fun problems ~write:_ (r : Reference.t) ->
      match find_array_opt p r.array_name with
      | None ->
          Printf.sprintf "%s: reference to undeclared array %s" where r.array_name
          :: problems
      | Some a ->
          if Array.length r.subs <> Array_decl.rank a then
            Printf.sprintf "%s: %s expects %d subscripts, got %d" where a.name
              (Array_decl.rank a) (Array.length r.subs)
            :: problems
          else problems)
    problems body

let check_calls p body where problems =
  Stmt.fold
    (fun problems s ->
      match s with
      | Stmt.Call (name, args) -> (
          match find_proc_opt p name with
          | None -> Printf.sprintf "%s: call to undefined procedure %s" where name :: problems
          | Some pr ->
              let supplied = List.map fst args in
              let missing = List.filter (fun f -> not (List.mem f supplied)) pr.formals in
              if missing <> [] then
                Printf.sprintf "%s: call to %s missing actuals for %s" where name
                  (String.concat ", " missing)
                :: problems
              else problems)
      | _ -> problems)
    problems body

let check_call_graph p problems =
  (* DFS for cycles over the call graph *)
  let callees body =
    Stmt.fold
      (fun acc s -> match s with Stmt.Call (n, _) -> n :: acc | _ -> acc)
      [] body
  in
  let rec visit path name problems =
    if List.mem name path then
      Printf.sprintf "recursive call cycle through procedure %s" name :: problems
    else
      match find_proc_opt p name with
      | None -> problems
      | Some pr ->
          List.fold_left
            (fun problems callee -> visit (name :: path) callee problems)
            problems (callees pr.body)
  in
  List.fold_left (fun problems n -> visit [] n problems) problems (callees p.main)

let check_unique_ids p problems =
  let seen_refs = Hashtbl.create 64 and seen_loops = Hashtbl.create 16 in
  List.fold_left
    (fun problems body ->
      let problems =
        Stmt.fold_refs
          (fun problems ~write:_ (r : Reference.t) ->
            if Hashtbl.mem seen_refs r.id then
              Printf.sprintf "duplicate reference id %d (%s)" r.id r.array_name
              :: problems
            else begin
              Hashtbl.add seen_refs r.id ();
              problems
            end)
          problems body
      in
      Stmt.fold
        (fun problems s ->
          match s with
          | Stmt.For l ->
              if Hashtbl.mem seen_loops l.loop_id then
                Printf.sprintf "duplicate loop id %d (%s)" l.loop_id l.var :: problems
              else begin
                Hashtbl.add seen_loops l.loop_id ();
                problems
              end
          | _ -> problems)
        problems body)
    problems (all_stmt_bodies p)

let check_no_nested_doall p problems =
  let rec walk in_doall problems stmts =
    List.fold_left
      (fun problems s ->
        match s with
        | Stmt.For l ->
            let is_doall = match l.kind with Stmt.Doall _ -> true | Stmt.Serial -> false in
            if is_doall && in_doall then
              Printf.sprintf "nested DOALL loop %s (id %d)" l.var l.loop_id :: problems
            else walk (in_doall || is_doall) problems l.body
        | Stmt.If (_, t, e) -> walk in_doall (walk in_doall problems t) e
        | Stmt.Critical c -> walk in_doall problems c.cbody
        | Stmt.Assign _ | Stmt.Sassign _ | Stmt.Reduce _ -> problems
        | Stmt.Call (name, _) -> (
            (* conservatively: a DOALL must not call into procedures
               containing DOALLs *)
            match find_proc_opt p name with
            | Some pr when in_doall -> walk in_doall problems pr.body
            | _ -> problems))
      problems stmts
  in
  walk false problems p.main

let check_sync p problems =
  (* structural discipline for the synchronization constructs: no DOALL or
     nested critical inside a critical body, and a reduction's expression
     must not read the reduction variable itself *)
  let rec walk in_crit problems stmts =
    List.fold_left
      (fun problems s ->
        match s with
        | Stmt.Critical c ->
            let problems =
              if in_crit then
                Printf.sprintf "nested critical section (lock %s)" c.lock
                :: problems
              else problems
            in
            walk true problems c.cbody
        | Stmt.For l ->
            let problems =
              match l.kind with
              | Stmt.Doall _ when in_crit ->
                  Printf.sprintf "DOALL loop %s (id %d) inside critical section"
                    l.var l.loop_id
                  :: problems
              | _ -> problems
            in
            walk in_crit problems l.body
        | Stmt.If (_, t, e) -> walk in_crit (walk in_crit problems t) e
        | Stmt.Reduce r ->
            let rec reads_rvar = function
              | Fexpr.Svar v -> String.equal v r.rvar
              | Fexpr.Const _ | Fexpr.Ivar _ | Fexpr.Ref _ -> false
              | Fexpr.Unop (_, e) -> reads_rvar e
              | Fexpr.Binop (_, a, b) -> reads_rvar a || reads_rvar b
            in
            if reads_rvar r.rexpr then
              Printf.sprintf "reduction expression for %s reads %s" r.rvar r.rvar
              :: problems
            else problems
        | Stmt.Assign _ | Stmt.Sassign _ | Stmt.Call _ -> problems)
      problems stmts
  in
  List.fold_left (walk false) problems (all_stmt_bodies p)

let validate p =
  []
  |> check_refs p p.main "main"
  |> fun problems ->
  List.fold_left
    (fun problems pr ->
      check_refs p pr.body pr.pname problems |> check_calls p pr.body pr.pname)
    problems p.procs
  |> check_calls p p.main "main"
  |> check_call_graph p
  |> check_unique_ids p
  |> check_no_nested_doall p
  |> check_sync p
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Inlining                                                            *)
(* ------------------------------------------------------------------ *)

let inline p =
  (match validate p with
  | [] -> ()
  | problems ->
      invalid_arg ("Program.inline: invalid program: " ^ String.concat "; " problems));
  let next_ref = ref (max_ref_id p + 1) and next_loop = ref (max_loop_id p + 1) in
  let fresh_ref _ = let id = !next_ref in incr next_ref; id in
  let fresh_loop _ = let id = !next_loop in incr next_loop; id in
  let rec expand s =
    match s with
    | Stmt.Assign _ | Stmt.Sassign _ | Stmt.Reduce _ -> [ s ]
    | Stmt.Critical c ->
        [ Stmt.Critical { c with cbody = List.concat_map expand c.cbody } ]
    | Stmt.For l -> [ Stmt.For { l with body = List.concat_map expand l.body } ]
    | Stmt.If (c, t, e) ->
        [ Stmt.If (c, List.concat_map expand t, List.concat_map expand e) ]
    | Stmt.Call (name, args) ->
        let pr = Option.get (find_proc_opt p name) in
        List.concat_map
          (fun body_stmt ->
            let s = Stmt.subst_env body_stmt args in
            let s = Stmt.map_ref_ids fresh_ref s in
            let s = Stmt.map_loop_ids fresh_loop s in
            expand s)
          pr.body
  in
  { p with procs = []; main = List.concat_map expand p.main }

let pp ppf p =
  Format.fprintf ppf "@[<v>program %s@," p.name;
  List.iter (fun (k, v) -> Format.fprintf ppf "param %s = %d@," k v) p.params;
  List.iter (fun a -> Format.fprintf ppf "array %a@," Array_decl.pp a) p.arrays;
  List.iter
    (fun pr ->
      Format.fprintf ppf "@[<v 2>proc %s(%s) {@,%a@]@,}@," pr.pname
        (String.concat ", " pr.formals)
        Stmt.pp_list pr.body)
    p.procs;
  Format.fprintf ppf "@[<v 2>main {@,%a@]@,}@]" Stmt.pp_list p.main
