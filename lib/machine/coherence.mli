(** Hardware-coherence bookkeeping for the snooping (MSI/MESI) and
    directory rival modes: the line-state encoding cache slots carry, and
    the directory's presence/owner table.

    The memory system implements the protocol transitions; this module
    only names the states and owns the directory data structure, so the
    property tests can assert over both without reaching into the
    runtime. *)

(** {1 Line states}

    Plain ints (the cache keeps a flat per-slot state array). Ordering is
    meaningful: [state > shared] means the holder has (or is the only
    candidate for) write permission — [exclusive] is the MESI clean-
    exclusive state, [modified] the dirty one. MSI never fills
    [exclusive]. *)

val invalid : int  (** 0 — also what {!Cache.line_state} reports on a miss *)

val shared : int  (** 1 *)

val exclusive : int  (** 2 (MESI only) *)

val modified : int  (** 3 *)

val state_name : int -> string

(** {1 Directory} *)

module Dir : sig
  (** Full-map directory (Censier-Feautrier): one presence bitset plus a
      dirty-owner register per cache line of the global address space.
      Presence words pack 63 PEs each, so membership tests and updates
      are single int operations; no allocation after [create]. *)
  type t

  val create : n_pes:int -> n_lines:int -> t
  val n_lines : t -> int

  (** Does [pe] hold a copy of [line]? *)
  val mem : t -> line:int -> pe:int -> bool

  val add : t -> line:int -> pe:int -> unit
  val remove : t -> line:int -> pe:int -> unit
  val sharer_count : t -> line:int -> int

  (** Visit sharers in ascending PE order (the deterministic invalidation
      order). *)
  val iter_sharers : t -> line:int -> (int -> unit) -> unit

  (** Sharer list in ascending PE order (tests/introspection). *)
  val sharers : t -> line:int -> int list

  val clear_line : t -> line:int -> unit

  (** The PE holding [line] Modified, or -1 when the line is clean
      everywhere. *)
  val owner : t -> line:int -> int

  val set_owner : t -> line:int -> int -> unit
end
