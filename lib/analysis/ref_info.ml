open Ccdp_ir

type t = {
  ref_ : Reference.t;
  write : bool;
  epoch : int;
  outer_serial : Stmt.loop list;
  loops : Stmt.loop list;
  par_loop : Stmt.loop option;
  innermost : Stmt.loop option;
  in_innermost : bool;
  if_depth : int;
  if_in_loop : bool;
  loop_has_if : bool;
  stmts_before : Stmt.t list;
  lock : string option;
}

let rec body_has_if stmts =
  List.exists
    (fun s ->
      match s with
      | Stmt.If _ -> true
      | Stmt.For l -> body_has_if l.Stmt.body
      | Stmt.Critical c -> body_has_if c.Stmt.cbody
      | Stmt.Assign _ | Stmt.Sassign _ | Stmt.Call _ | Stmt.Reduce _ -> false)
    stmts

let rec body_has_loop stmts =
  List.exists
    (fun s ->
      match s with
      | Stmt.For _ -> true
      | Stmt.If (_, a, b) -> body_has_loop a || body_has_loop b
      | Stmt.Critical c -> body_has_loop c.Stmt.cbody
      | Stmt.Assign _ | Stmt.Sassign _ | Stmt.Call _ | Stmt.Reduce _ -> false)
    stmts

type ctx = {
  c_epoch : int;
  c_outer : Stmt.loop list;  (** outermost first *)
  c_loops : Stmt.loop list;  (** outermost first *)
  c_par : Stmt.loop option;
  c_ifs : int;
  c_ifs_in_loop : int;  (** ifs crossed since the innermost loop entry *)
  c_before : Stmt.t list;
  c_lock : string option;  (** innermost enclosing critical section's lock *)
}

let collect (ep : Epoch.t) =
  let acc = ref [] in
  let innermost_of loops =
    match List.rev loops with [] -> None | l :: _ -> Some l
  in
  let emit ctx ~write r =
    let loops = ctx.c_loops in
    let innermost = innermost_of loops in
    let in_innermost =
      match innermost with
      | None -> false
      | Some l -> not (body_has_loop l.Stmt.body)
    in
    let loop_has_if =
      match innermost with None -> false | Some l -> body_has_if l.Stmt.body
    in
    acc :=
      {
        ref_ = r;
        write;
        epoch = ctx.c_epoch;
        outer_serial = ctx.c_outer;
        loops;
        par_loop = ctx.c_par;
        innermost;
        in_innermost;
        if_depth = ctx.c_ifs;
        if_in_loop = ctx.c_ifs_in_loop > 0;
        loop_has_if;
        stmts_before = ctx.c_before;
        lock = ctx.c_lock;
      }
      :: !acc
  in
  let rec walk_stmts ctx stmts =
    ignore
      (List.fold_left
         (fun before s ->
           let ctx = { ctx with c_before = before } in
           (match s with
           | Stmt.Assign (r, e) ->
               List.iter (fun r -> emit ctx ~write:false r) (Fexpr.reads e);
               emit ctx ~write:true r
           | Stmt.Sassign (_, e) ->
               List.iter (fun r -> emit ctx ~write:false r) (Fexpr.reads e)
           | Stmt.For l ->
               walk_stmts
                 {
                   ctx with
                   c_loops = ctx.c_loops @ [ l ];
                   c_ifs_in_loop = 0;
                   c_before = [];
                 }
                 l.Stmt.body
           | Stmt.If (c, tb, eb) ->
               (match c with
               | Stmt.Fcond (_, a, b) ->
                   List.iter (fun r -> emit ctx ~write:false r) (Fexpr.reads a);
                   List.iter (fun r -> emit ctx ~write:false r) (Fexpr.reads b)
               | Stmt.Icond _ -> ());
               let ctx' =
                 {
                   ctx with
                   c_ifs = ctx.c_ifs + 1;
                   c_ifs_in_loop = ctx.c_ifs_in_loop + 1;
                   c_before = [];
                 }
               in
               walk_stmts ctx' tb;
               walk_stmts ctx' eb
           | Stmt.Critical c ->
               (* acquire invalidates the moved-back-prefetch window: a
                  prefetch issued before the acquire could fetch a value the
                  lock holder is still writing *)
               walk_stmts
                 { ctx with c_lock = Some c.Stmt.lock; c_before = [] }
                 c.Stmt.cbody
           | Stmt.Reduce r ->
               List.iter (fun r -> emit ctx ~write:false r)
                 (Fexpr.reads r.Stmt.rexpr)
           | Stmt.Call _ ->
               invalid_arg "Ref_info.collect: program contains calls; inline first");
           s :: before)
         ctx.c_before stmts)
  in
  let rec walk_nodes outer nodes =
    List.iter
      (fun node ->
        match node with
        | Epoch.E (id, Epoch.Par l) ->
            walk_stmts
              {
                c_epoch = id;
                c_outer = outer;
                c_loops = [ l ];
                c_par = Some l;
                c_ifs = 0;
                c_ifs_in_loop = 0;
                c_before = [];
                c_lock = None;
              }
              l.Stmt.body
        | Epoch.E (id, Epoch.Ser stmts) ->
            walk_stmts
              {
                c_epoch = id;
                c_outer = outer;
                c_loops = [];
                c_par = None;
                c_ifs = 0;
                c_ifs_in_loop = 0;
                c_before = [];
                c_lock = None;
              }
              stmts
        | Epoch.Loop (l, body) -> walk_nodes (outer @ [ l ]) body
        | Epoch.Branch (_, a, b) ->
            walk_nodes outer a;
            walk_nodes outer b)
      nodes
  in
  walk_nodes [] ep.Epoch.nodes;
  List.rev !acc

let index infos =
  let tbl = Hashtbl.create (List.length infos) in
  List.iter (fun i -> Hashtbl.replace tbl i.ref_.Reference.id i) infos;
  tbl

let scope_loops i = i.outer_serial @ i.loops

let pp ppf i =
  Format.fprintf ppf "%s %a in epoch %d, %d loops%s%s"
    (if i.write then "write" else "read")
    Reference.pp i.ref_ i.epoch
    (List.length (scope_loops i))
    (if i.in_innermost then ", innermost" else "")
    (if i.if_depth > 0 then ", under if" else "")
