(** Independent may-stale derivation (the verifier's second opinion).

    Computes, for every read of a tracked (shared, non-replicated) array,
    the set of writes whose stale cached copy the read may observe — by a
    forward walk of the epoch tree with explicit back-edge re-visits,
    rather than {!Ccdp_analysis.Stale.analyze}'s per-read witness search
    over reference stacks. On any program the set of stale reads derived
    here over-approximates (and on well-formed epoch trees coincides with)
    the stale analysis — the property the certifier's differential tests
    pin down. *)

type t

(** [cluster_pes] (default 1) must match the value the plan under scrutiny
    was compiled with: it selects the same cluster-aware alignment
    discharge ({!Ccdp_analysis.Region.aligned_cluster}) so the second
    opinion re-derives the same obligation set independently. *)
val derive :
  ?cluster_pes:int ->
  Ccdp_analysis.Region.t -> Ccdp_ir.Epoch.t -> Ccdp_analysis.Ref_info.t list
  -> t

(** Witness write ref ids for a read (sorted); [[]] means provably clean
    (or untracked). *)
val witnesses_of : t -> int -> int list

val is_stale : t -> int -> bool

(** All reads with at least one witness, sorted. *)
val stale_ids : t -> int list
