(** The timed memory system: execution modes, read/write protocols,
    prefetch issue and consumption.

    This is where the paper's semantics live. The modes:

    - [Seq]: the sequential baseline — one PE, everything local, ordinary
      cache.
    - [Base]: the paper's BASE codes — shared data is {e not} cached, every
      shared access pays the full local/remote latency (private/replicated
      data is cached normally).
    - [Ccdp]: shared data is cached; each read executes according to its
      compiler classification (normal / leading-prefetched / covered /
      bypass) and scheduled prefetch operation.
    - [Invalidate]: shared data cached, whole cache invalidated at every
      epoch boundary — the conservative compiler scheme of the related
      work.
    - [Incoherent]: shared data cached with {e no} coherence action; exists
      to demonstrate that stale reads really produce wrong numerics.
    - [Hscd]: the related-work hardware-supported compiler-directed scheme
      (Choi-Yew version numbers): cache lines carry fill versions, arrays
      carry last-written versions, and a hit whose line predates the
      array's version self-invalidates — coherence without prefetching or
      whole-cache flushes.
    - [Msi] / [Mesi]: hardware bus snooping — per-line M(E)SI states, every
      coherence transaction (miss fetch, upgrade, write-allocate)
      serialized through one machine-wide bus whose arbitration is booked
      like a network port; writes invalidate all remote copies. [Mesi] adds
      the clean-exclusive state (silent E->M upgrades).
    - [Directory]: full-map directory protocol (Censier-Feautrier) — a
      presence bitset and dirty-owner register per line, homed at the PE
      owning the line in the address map; reads of a dirty line pay 3-hop
      forwarding through the configured interconnect, writes pay the worst
      home->sharer invalidation round trip. No broadcast bus: traffic
      scales with sharers, not PEs.
    - [Clustered]: CXL-style partial hardware coherence over the machine's
      coherence clusters ([Config.cluster_pes]). Reads of island-homed data
      run MESI snooping scoped to the island (per-cluster buses); reads
      crossing an island boundary fall back to the compiled CCDP stale
      discipline. A write snoop-invalidates the writer's own island, and
      when the written word is homed in a {e different} island it
      back-invalidates the home island's copies too (the CXL
      back-invalidation channel) — third islands' copies legitimately go
      stale, their readers carry CCDP obligations.

    Writes are write-through (memory always current; the writer's own cached
    copy is patched, other PEs' copies go stale — the coherence problem; the
    hardware rivals eagerly invalidate those copies at each tracked write).
    Prefetch consumption: a pending line stalls the reader until its arrival
    cycle ("late" prefetch), an absent one (dropped at issue) falls back to
    a bypass fetch, as Section 3 of the paper requires. *)

type mode =
  | Seq
  | Base
  | Ccdp
  | Invalidate
  | Incoherent
  | Hscd
  | Msi
  | Mesi
  | Directory
  | Clustered

val mode_name : mode -> string

(** Every mode, in canonical presentation order (the order above). *)
val all_modes : mode list

(** One-line description of a mode, for generated CLI help. *)
val mode_describe : mode -> string

(** Inverse of {!mode_name} (case-insensitive). *)
val mode_of_string : string -> mode option

(** Protocol fault injection for the differential campaign: each class
    breaks exactly the coherence action whose absence the staleness oracle
    must witness, with the cost accounting untouched. [No_fault] in every
    mode but the targeted one is a no-op. *)
type sabotage =
  | No_fault
  | Drop_invalidate
      (** snooping: the first remote copy a write transaction should
          invalidate silently survives *)
  | Corrupt_presence
      (** directory: the first sharer of a write's invalidation set is
          dropped from the presence bitset instead of invalidated *)
  | Drop_inter_cluster_invalidate
      (** clustered: the first home-island copy a cross-island write should
          back-invalidate silently survives (a lost CXL back-invalidation);
          intra-island snooping stays intact *)

type t

(** [create cfg ?oracle ?sabotage program ~plan mode]. With [~oracle:true]
    the memory system maintains the dynamic staleness oracle: every memory
    word carries a version stamp (monotonic write counter) plus the epoch
    that produced it, cache lines capture per-word stamps at fill/update
    time, and every cache hit of a tracked shared read asserts the captured
    stamp is no older than the last write settled before the current epoch.
    Violations are concrete unsoundness witnesses for the stale-reference
    analysis. [?sabotage] (default [No_fault]) arms protocol fault
    injection in the hardware modes. *)
val create :
  Ccdp_machine.Config.t -> ?oracle:bool -> ?sabotage:sabotage ->
  Ccdp_ir.Program.t -> plan:Ccdp_analysis.Annot.plan -> mode -> t

val cfg : t -> Ccdp_machine.Config.t
val mode : t -> mode
val map : t -> Addr_map.t
val machine : t -> Ccdp_machine.Machine.t
val plan : t -> Ccdp_analysis.Annot.plan

(** {1 Initialization and read-back (untimed)} *)

(** Set an element in every copy (owner + replicas). *)
val set : t -> string -> int array -> float -> unit

(** Read the canonical (owner) copy from memory. *)
val get : t -> string -> int array -> float

(** {1 Timed operations} *)

(** Execute a read reference on a PE per its classification. *)
val read : t -> pe:int -> Ccdp_ir.Reference.t -> idx:int array -> float

(** Execute a write reference on a PE. *)
val write : t -> pe:int -> Ccdp_ir.Reference.t -> idx:int array -> float -> unit

(** Issue one cache-line prefetch (software-pipelining steady state and
    prologue). [skip_cached] (clean latency-hiding prefetches only) skips
    lines with any cached copy rather than only this epoch's fresh ones. *)
val issue_line_prefetch :
  ?skip_cached:bool -> t -> pe:int -> string -> idx:int array -> unit

(** Cache-line address of an element as seen from a PE (strip-mined
    software pipelining issues once per line crossing). *)
val line_of : t -> pe:int -> string -> idx:int array -> int

(** Issue a vector prefetch (SHMEM-get style) for the given elements. *)
val vget_issue :
  ?skip_cached:bool -> t -> pe:int -> string -> int array list -> unit

(** {1 Prepared accesses (compiled-plan fast path)}

    Everything about a static reference that never changes during a run —
    its address-map handle, its read protocol (mode x classification x
    scheduled op x stale verdict), its HSCD version record — is resolved
    once by [prepare_read]/[prepare_write]. The per-access path is then
    pure arithmetic plus the protocol itself: no string hashing, no
    owner/target variant boxing, no per-access table lookups. The timed
    semantics are identical to {!read}/{!write}, which share the same
    dispatch internally. *)

type raccess

val prepare_read : t -> Ccdp_ir.Reference.t -> raccess

(** Global word address of the access from [pe] — same address {!read}
    resolves internally. Untimed. *)
val access_addr : t -> raccess -> pe:int -> idx:int array -> int

(** Execute a prepared read at an address computed by {!access_addr} for
    the same [pe] and [idx]. *)
val read_c : t -> pe:int -> raccess -> idx:int array -> addr:int -> float

type waccess

val prepare_write : t -> Ccdp_ir.Reference.t -> waccess
val write_addr : t -> waccess -> pe:int -> idx:int array -> int
val write_c : t -> pe:int -> waccess -> addr:int -> float -> unit

(** Prepared twin of {!issue_line_prefetch}; [addr] from {!access_addr}. *)
val pf_issue_c : ?skip_cached:bool -> t -> pe:int -> raccess -> addr:int -> unit

(** Prepared twin of {!line_of}. *)
val line_of_c : t -> pe:int -> raccess -> idx:int array -> int

(** Prepared twin of {!vget_issue}. *)
val vget_issue_c :
  ?skip_cached:bool -> t -> pe:int -> raccess -> int array list -> unit

(** Charge pure compute cycles to a PE. *)
val charge : t -> pe:int -> int -> unit

val clock : t -> pe:int -> int

(** {1 Intra-epoch locks (critical sections)}

    A named lock serializes its critical sections within an epoch under
    deterministic PE-major arbitration: grants are booked in the order PEs
    execute (the serial replay order), so a later-executed PE queues behind
    every earlier booking even when its simulated arrival cycle is smaller.
    An uncontended acquire costs [Config.lock_acquire] cycles, a release
    [Config.lock_release]; contention stalls the acquirer until the
    holder's release and is counted in [Stats.lock_stall_cycles]. Lock
    state is reset at every epoch boundary (the barrier subsumes any
    release). *)

val lock_acquire : t -> pe:int -> string -> unit
val lock_release : t -> pe:int -> string -> unit

(** Epoch boundary: synchronize (barrier), drain prefetch state, apply
    mode-specific invalidation. [seq] mode skips the barrier cost. In the
    buffered modes this is also where the epoch's write versions settle,
    the shadow image catches up with memory, and the per-PE oracle ledgers
    merge (PE-major). *)
val epoch_boundary : t -> unit

(** Whether DOALL epochs of this memory system may be simulated with the
    PEs sharded across domains. True exactly when the mode buffers every
    cross-PE effect until the epoch barrier (Seq/Base/CCDP/Invalidate/
    Incoherent: fills observe the epoch-start shadow except for own
    writes, oracle versions settle at the barrier) {e and} the
    link-contention model is off. HSCD couples PEs through its write-
    version registers and MSI/MESI/Directory probe other caches
    mid-epoch, so they must replay serially; [Net.acquire] bookings
    (link_occ > 0) serialize PEs through shared per-link state likewise.
    Programs with critical sections also replay serially: locked (bypassed)
    reads observe other PEs' current-epoch writes through memory. *)
val shardable : t -> bool

val time : t -> int
val total_stats : t -> Ccdp_machine.Stats.t

(** Residual cached values that disagree with memory (diagnostic for the
    incoherent mode): count of stale cached words across PEs. *)
val stale_cached_words : t -> int

(** {1 Protocol introspection (property tests)} *)

(** Protocol state of a line in a PE's cache ({!Ccdp_machine.Coherence}
    names the encoding; [Coherence.invalid] = not resident). *)
val line_state : t -> pe:int -> line:int -> int

(** The directory's recorded sharers of a line, ascending PE order. Empty
    in non-directory modes. *)
val dir_sharers : t -> line:int -> int list

(** The directory's dirty owner of a line (-1 = clean everywhere, and in
    non-directory modes). *)
val dir_owner : t -> line:int -> int

val sabotage : t -> sabotage

(** Whether the configured sabotage actually fired during the run — i.e.
    the protocol reached the action the fault class suppresses (an
    invalidation was skipped / a presence bit was corrupted). Always false
    under [No_fault]. *)
val sabotage_fired : t -> bool

(** Reference ids that actually observed a stale value during an
    [Incoherent] run — ground truth against which the stale-reference
    analysis must over-approximate (every observed id must be classified
    potentially stale). *)
val observed_stale_ids : t -> int list

(** {1 Staleness oracle} *)

(** One stale cache hit witnessed by the oracle. *)
type violation = {
  v_ref : int;  (** offending reference id *)
  v_pe : int;
  v_array : string;
  v_index : int array;
  v_addr : int;  (** global word address *)
  v_cached_version : int;
  v_mem_version : int;
  v_write_epoch : int;  (** epoch that produced the missed write *)
  v_read_epoch : int;  (** epoch in which the stale hit happened *)
}

val oracle_enabled : t -> bool

(** Number of oracle assertions evaluated (cache hits of tracked shared
    reads). 0 when the oracle is off. *)
val oracle_checked : t -> int

val oracle_violation_count : t -> int

(** The first few witnesses, oldest first (the count above is exact even
    when this list is truncated). *)
val oracle_violations : t -> violation list

val pp_violation : Format.formatter -> violation -> unit
