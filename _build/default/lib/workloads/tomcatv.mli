(** TOMCATV (SPEC CFP95): vectorized mesh generation.

    Reproduces the paper's sharing structure (Section 5.3/5.4): a
    doubly-nested residual loop with the {e outer} loop parallel (loop 60),
    and forward/backward sweeps whose {e inner} loop is parallel under a
    serial outer loop (loops 100/120). Rows are block-distributed; the
    residual loop reads row halos (block-misaligned), and the sweep DOALLs
    run cyclic-scheduled against block-distributed data, so nearly every
    coefficient read crosses PEs — the paper's "each PE has to access shared
    data owned by another PE", which is why TOMCATV shows the largest CCDP
    gains after MXM. A small serial residual epoch exercises the serial-loop
    scheduling cases. *)

val program : n:int -> iters:int -> Ccdp_ir.Program.t

val workload : n:int -> iters:int -> Workload.t
