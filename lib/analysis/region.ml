open Ccdp_ir

type t = {
  program : Program.t;
  np : int;
  layouts : (string, Ccdp_craft.Layout.t) Hashtbl.t;
  memo_all : (int, Section.t) Hashtbl.t;
  memo_pe : (int * int, Section.t) Hashtbl.t;
}

let make program ~n_pes =
  let layouts = Hashtbl.create 16 in
  List.iter
    (fun (a : Array_decl.t) ->
      Hashtbl.replace layouts a.name (Ccdp_craft.Layout.make ~n_pes a))
    program.Program.arrays;
  {
    program;
    np = n_pes;
    layouts;
    memo_all = Hashtbl.create 64;
    memo_pe = Hashtbl.create 256;
  }

let n_pes t = t.np
let layout t name = Hashtbl.find t.layouts name
let decl t name = Program.find_array t.program name
let params t = t.program.Program.params

let env_of t (i : Ref_info.t) =
  Iterspace.of_loops ~params:(params t) (Ref_info.scope_loops i)

let section_all t (i : Ref_info.t) =
  let key = i.ref_.Reference.id in
  match Hashtbl.find_opt t.memo_all key with
  | Some s -> s
  | None ->
      let s = Section.of_subscripts i.ref_.Reference.subs (env_of t i) in
      Hashtbl.replace t.memo_all key s;
      s

let section_pe t (i : Ref_info.t) ~pe =
  let key = (i.ref_.Reference.id, pe) in
  match Hashtbl.find_opt t.memo_pe key with
  | Some s -> s
  | None ->
      let s =
        match i.par_loop with
        | None -> if pe = 0 then section_all t i else Section.empty
        | Some par -> (
            let env = env_of t i in
            match Iterspace.restrict_pe env par ~n_pes:t.np ~pe with
            | None -> Section.empty
            | Some env' -> Section.of_subscripts i.ref_.Reference.subs env')
      in
      Hashtbl.replace t.memo_pe key s;
      s

(* Must-access: Empty unless the PE restriction is exact AND the subscript
   section is provably exact — an under-approximation is the only sound
   thing to rely on ("this PE definitely wrote these elements"). *)
let section_pe_must t (i : Ref_info.t) ~pe =
  let exact_of env =
    match Section.of_subscripts_exact i.ref_.Reference.subs env with
    | Some s -> s
    | None -> Section.empty
  in
  match i.par_loop with
  | None -> if pe = 0 then exact_of (env_of t i) else Section.empty
  | Some par -> (
      match Iterspace.restrict_pe_info (env_of t i) par ~n_pes:t.np ~pe with
      | Iterspace.Idle | Iterspace.Widened _ -> Section.empty
      | Iterspace.Exact env' -> exact_of env')

let section_all_must t (i : Ref_info.t) =
  match i.par_loop with
  | None -> (
      match Section.of_subscripts_exact i.ref_.Reference.subs (env_of t i) with
      | Some s -> s
      | None -> Section.empty)
  | Some par -> (
      (* exact union over PEs is not representable; settle for the exact
         full-range section when the loop bounds resolve (every iteration
         runs on some PE regardless of the schedule) *)
      let env = env_of t i in
      match
        ( Iterspace.bound_range par.Ccdp_ir.Stmt.lo env,
          Iterspace.bound_range par.Ccdp_ir.Stmt.hi env )
      with
      | Some _, Some _ -> (
          match Section.of_subscripts_exact i.ref_.Reference.subs env with
          | Some s -> s
          | None -> Section.empty)
      | _ -> Section.empty)

let aligned t ~(reader : Ref_info.t) ~(writer : Ref_info.t) =
  String.equal reader.ref_.Reference.array_name writer.ref_.Reference.array_name
  &&
  let w_all = section_all t writer in
  let ok = ref true in
  for pe = 0 to t.np - 1 do
    if !ok then begin
      let r_pe = section_pe t reader ~pe in
      let touched = Section.inter r_pe w_all in
      (* the reader side is a may-set (conservatively large); the writer
         side must be a must-set: elements the PE provably wrote itself *)
      if not (Section.contains (section_pe_must t writer ~pe) touched) then
        ok := false
    end
  done;
  !ok

(* Cluster-relaxed owner-computes test: the reading PE need not have
   written the touched elements itself, as long as some single PE of its
   own coherence island provably did — that island sibling's writes reach
   the reader through the island's hardware snoop, so the reader's cached
   copy can never survive them stale. The writer side stays a must-set
   per candidate sibling (a union over the island is not representable
   exactly, so one covering sibling is what may be relied on); [pe]
   itself is a candidate, which makes the test subsume [aligned], and
   [cluster_pes = 1] degenerates to it exactly. *)
let aligned_cluster t ~cluster_pes ~(reader : Ref_info.t)
    ~(writer : Ref_info.t) =
  if cluster_pes <= 1 then aligned t ~reader ~writer
  else
    String.equal reader.ref_.Reference.array_name
      writer.ref_.Reference.array_name
    &&
    let w_all = section_all t writer in
    let ok = ref true in
    for pe = 0 to t.np - 1 do
      if !ok then begin
        let r_pe = section_pe t reader ~pe in
        let touched = Section.inter r_pe w_all in
        if not (Section.is_empty touched) then begin
          let lo = pe / cluster_pes * cluster_pes in
          let covered = ref false in
          for q = lo to min (t.np - 1) (lo + cluster_pes - 1) do
            if
              (not !covered)
              && Section.contains (section_pe_must t writer ~pe:q) touched
            then covered := true
          done;
          if not !covered then ok := false
        end
      end
    done;
    !ok

let all_local t (i : Ref_info.t) =
  let lay = layout t i.ref_.Reference.array_name in
  let ok = ref true in
  for pe = 0 to t.np - 1 do
    if !ok then
      let s = section_pe t i ~pe in
      if not (Section.contains (Ccdp_craft.Layout.owned_section lay pe) s) then
        ok := false
  done;
  !ok
