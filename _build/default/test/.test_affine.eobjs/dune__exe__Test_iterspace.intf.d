test/test_iterspace.mli:
