test/test_torus.ml: Affine Alcotest Builder Ccdp_analysis Ccdp_ir Ccdp_machine Ccdp_runtime Ccdp_test_support Config Dist List Printf Reference Stmt Torus
