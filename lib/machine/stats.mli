(** Per-PE event counters.

    Every memory-system event the runtime charges is also counted here; the
    experiment reports and many tests are assertions over these counters
    (e.g. "the BASE run performs zero cache fills", "every potentially-stale
    read in the CCDP run was prefetched, covered or bypassed"). *)

type t = {
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
  mutable miss_local : int;  (** demand miss served from local memory *)
  mutable miss_remote : int;
  mutable uncached_local : int;  (** BASE-mode direct local access *)
  mutable uncached_remote : int;
  mutable bypass_reads : int;  (** stale reads served around the cache *)
  mutable pf_issued : int;  (** cache-line prefetches issued *)
  mutable pf_vector : int;  (** vector prefetch operations issued *)
  mutable pf_vector_words : int;
  mutable pf_on_time : int;
  mutable pf_late : int;
  mutable pf_late_cycles : int;
  mutable pf_dropped : int;  (** queue full: fell back to bypass fetch *)
  mutable pf_unused : int;  (** prefetched but never consumed in the epoch *)
  mutable pf_evicted : int;
      (** vector-staged lines displaced before consumption (section larger
          than the staging capacity — the hazard that makes multi-level
          vector-prefetch pulling dangerous, paper Section 4.3.2) *)
  mutable annex_hits : int;
  mutable annex_misses : int;
  mutable invalidations : int;
  mutable upgrades : int;
      (** snooping/directory write upgrades (S -> M ownership requests);
          structurally zero outside the hardware-coherence modes, but the
          key is always rendered so schemas stay uniform across modes *)
  mutable dir_msgs : int;
      (** directory-protocol control messages (requests, forwards,
          invalidations, replacement hints); zero outside [Directory] *)
  mutable bus_conflicts : int;
      (** snoop-bus transactions that queued behind a busy bus; zero
          outside [Msi]/[Mesi]/[Clustered] (or when [Config.bus_occ = 0]).
          [Clustered] charges its island-local buses here. *)
  mutable cluster_hits : int;
      (** reads resolved entirely inside the requester's coherence island
          (intra-cluster MESI snoop, hit or island fill); zero outside
          [Clustered] *)
  mutable cluster_inter : int;
      (** reads that crossed an island boundary and fell back to the CCDP
          stale discipline; zero outside [Clustered] *)
  mutable barriers : int;
  mutable flop_cycles : int;
  mutable stall_cycles : int;
  mutable link_conflicts : int;
      (** remote transfers that queued behind a busy bottleneck link
          (only charged when [Config.link_occ > 0]) *)
  mutable link_occ_max : int;
      (** peak transfers sharing one link's busy burst *)
  mutable lock_acquires : int;  (** critical-section entries *)
  mutable lock_stall_cycles : int;
      (** cycles spent waiting for a held lock (beyond the uncontended
          acquire latency) *)
}

val create : unit -> t
val reset : t -> unit

(** Elementwise sum (machine-wide totals); [barriers] and [link_occ_max]
    merge with [max]. *)
val merge : t -> t -> t

val total_misses : t -> int
val total_prefetches : t -> int
val pp : Format.formatter -> t -> unit
