(** Greedy minimization of failing fuzz descriptions.

    Shrinking operates on {!Gen.desc} (never on lowered IR), so every
    candidate is well-formed by construction. The strategy is standard
    delta-debugging: propose one-step simplifications in decreasing order
    of aggressiveness, keep the first candidate on which the failure
    predicate still holds, and iterate to a fixpoint. *)

(** One-step simplifications of a description, most aggressive first
    (structure removal before parameter flattening). *)
val candidates : Gen.desc -> Gen.desc list

(** [minimize d ~still_fails] greedily shrinks [d] while preserving
    [still_fails]; the result is one-step minimal: no candidate of the
    returned description fails. Candidates are re-checked with
    {!Gen.validate} before the predicate sees them (invalid ones are
    skipped without consuming budget), and a predicate that raises on a
    candidate counts as not failing — minimization never crashes and never
    walks into an ill-formed description. [still_fails d] must be
    deterministic. [max_steps] bounds the number of predicate evaluations
    (default 400). *)
val minimize : ?max_steps:int -> Gen.desc -> still_fails:(Gen.desc -> bool) -> Gen.desc
