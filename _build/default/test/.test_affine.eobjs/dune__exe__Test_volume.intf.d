test/test_volume.mli:
