lib/core/pipeline.ml: Annot Ccdp_analysis Ccdp_ir Ccdp_machine Epoch Format List Program Ref_info Region Schedule Stale Target
