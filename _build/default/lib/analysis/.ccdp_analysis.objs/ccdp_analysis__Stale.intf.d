lib/analysis/stale.mli: Format Hashtbl Ref_info Region
