open Ccdp_ir

type technique = Vpg | Sp | Mbp | Demoted

type tuning = {
  sp_min : int;
  sp_max : int;
  mbp_min_cycles : int;
  mbp_max_cycles : int;
  vpg_max_words : int option;
  vpg_levels : int;
      (** loop levels a vector prefetch may be pulled out of; the paper
          fixes 1 (Section 4.3.2's modification of Gornish's algorithm) *)
  latency : int option;
  allow_vpg : bool;
  allow_sp : bool;
  allow_mbp : bool;
}

let default_tuning =
  {
    sp_min = 1;
    sp_max = 32;
    mbp_min_cycles = 32;
    mbp_max_cycles = 4096;
    vpg_max_words = None;
    vpg_levels = 1;
    latency = None;
    allow_vpg = true;
    allow_sp = true;
    allow_mbp = true;
  }

type decision = {
  lead_id : int;
  epoch : int;
  loop_id : int option;
  technique : technique;
}

let ceil_div a b = (a + b - 1) / b

let analyze region cfg ?(tuning = default_tuning) infos stale target =
  let open Ccdp_machine in
  let vpg_max =
    match tuning.vpg_max_words with
    | Some w -> w
    | None -> cfg.Config.cache_words / 2
  in
  let latency =
    match tuning.latency with Some l -> l | None -> cfg.Config.remote
  in
  let classes = Hashtbl.copy target.Target.classes in
  let ops = Hashtbl.create 32 in
  let vectors_of_loop = Hashtbl.create 8 in
  let pipelined_of_loop = Hashtbl.create 8 in
  let decisions = ref [] in
  let push_loop_op tbl loop_id op =
    let prev = match Hashtbl.find_opt tbl loop_id with Some l -> l | None -> [] in
    Hashtbl.replace tbl loop_id (prev @ [ op ])
  in
  let writes_in_loop loop_id name =
    List.filter
      (fun (i : Ref_info.t) ->
        i.write
        && String.equal i.ref_.Reference.array_name name
        && List.exists
             (fun (l : Stmt.loop) -> l.Stmt.loop_id = loop_id)
             i.Ref_info.loops)
      infos
  in
  let group_section_pinned ?also (g : Locality.group) (l : Stmt.loop) env =
    (* section of the whole group for one visit of the loop (plus, for
       two-level pulls, the [also] loop), on the PE with the largest
       share *)
    let keep =
      match also with
      | None -> fun (m : Stmt.loop) -> m.Stmt.loop_id = l.Stmt.loop_id
      | Some (a : Stmt.loop) ->
          fun (m : Stmt.loop) ->
            m.Stmt.loop_id = l.Stmt.loop_id || m.Stmt.loop_id = a.Stmt.loop_id
    in
    let env =
      List.fold_left
        (fun env (m : Stmt.loop) ->
          if keep m then env
          else
            match List.assoc_opt m.Stmt.var env with
            | Some (lo, _, _) -> Iterspace.restrict env m ~by:(lo, lo, 1)
            | None -> env)
        env
        (Ref_info.scope_loops g.lead)
    in
    let env =
      match l.kind with
      | Stmt.Doall _ -> (
          match Iterspace.restrict_pe env l ~n_pes:(Region.n_pes region) ~pe:0 with
          | Some e -> e
          | None -> env)
      | Stmt.Serial -> env
    in
    List.fold_left
      (fun acc (m : Ref_info.t) ->
        Section.hull acc (Section.of_subscripts m.ref_.Reference.subs env))
      (Section.of_subscripts g.lead.ref_.Reference.subs env)
      g.covered
  in
  (* --- technique attempts ------------------------------------------- *)
  let vpg_fits (g : Locality.group) sec placement_loop_id =
    let name = g.lead.ref_.Reference.array_name in
    let conflicting_write =
      List.exists
        (fun (w : Ref_info.t) ->
          Section.overlaps (Region.section_all region w) sec)
        (writes_in_loop placement_loop_id name)
    in
    if conflicting_write then None
    else
      match Section.size sec with
      | None -> None
      | Some elems ->
          let decl = Region.decl region name in
          let words = elems * decl.Array_decl.elem_words in
          if words = 0 || words > vpg_max then None else Some words
  in
  let group_ids (g : Locality.group) =
    List.map (fun (m : Ref_info.t) -> m.ref_.Reference.id) g.covered
  in
  let try_vpg (g : Locality.group) (l : Stmt.loop) env =
    if not tuning.allow_vpg then None
    else if Iterspace.trip_count l env = None then None
    else
      (* two-level pull (ablation): hoist past the parent loop when the
         combined section still fits *)
      let two_level =
        if tuning.vpg_levels < 2 then None
        else
          (* the parent must live inside the same epoch: barriers drain all
             staged prefetch data, so pulling past a structure loop would
             stage into the void *)
          match List.rev g.lead.Ref_info.loops with
          | _ :: (parent : Stmt.loop) :: _
            when Iterspace.trip_count parent env <> None
                 && (match parent.Stmt.kind with
                    | Stmt.Serial | Stmt.Doall (Stmt.Static_block | Stmt.Static_aligned _ | Stmt.Static_cyclic) -> true
                    | Stmt.Doall (Stmt.Dynamic _) -> false) -> (
              let sec = group_section_pinned ~also:parent g parent env in
              match vpg_fits g sec parent.Stmt.loop_id with
              | Some _ ->
                  Some
                    (Annot.Vector
                       {
                         ref_id = g.lead.ref_.Reference.id;
                         loop_id = parent.Stmt.loop_id;
                         group = group_ids g;
                         inner = Some l.Stmt.loop_id;
                       })
              | None -> None)
          | _ -> None
      in
      match two_level with
      | Some _ as op -> op
      | None -> (
          let sec = group_section_pinned g l env in
          match vpg_fits g sec l.Stmt.loop_id with
          | Some _ ->
              Some
                (Annot.Vector
                   {
                     ref_id = g.lead.ref_.Reference.id;
                     loop_id = l.Stmt.loop_id;
                     group = group_ids g;
                     inner = None;
                   })
          | None -> None)
  in
  let sp_budget : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let try_sp (g : Locality.group) (l : Stmt.loop) env =
    if not tuning.allow_sp then None
    else
      let it = Volume.iter_cycles cfg env l in
      let d0 = max 1 (ceil_div latency it) in
      let d_span =
        if g.stride_words > 0 then ceil_div g.span_words g.stride_words else 0
      in
      let d = max d0 d_span in
      if d < tuning.sp_min then None
      else
        let used =
          match Hashtbl.find_opt sp_budget l.Stmt.loop_id with
          | Some u -> u
          | None -> 0
        in
        (* clamp the distance so the in-flight lines fit the prefetch queue
           (a too-short distance is a late-but-useful prefetch; exceeding
           the queue means hard drops) — but never below the group span,
           whose covered members rely on the lead staying ahead *)
        let d_fit = (cfg.Config.prefetch_queue_words - used) / cfg.Config.line_words in
        let d = min d (min tuning.sp_max d_fit) in
        if d < tuning.sp_min || d < d_span then None
        else begin
          let need = d * cfg.Config.line_words in
          Hashtbl.replace sp_budget l.Stmt.loop_id (used + need);
          (* sub-line strides revisit the same line: strip-mine the issue
             to once per line (self-spatial elimination); loop-invariant
             references only ever need the one prologue issue *)
          let every =
            if g.stride_words = 0 then max_int
            else max 1 (cfg.Config.line_words / g.stride_words)
          in
          Some
            (Annot.Pipelined
               {
                 ref_id = g.lead.ref_.Reference.id;
                 loop_id = l.Stmt.loop_id;
                 distance = d;
                 every;
               })
        end
  in
  let mbp_cycles (i : Ref_info.t) env =
    let back = Volume.stmts_cycles cfg env i.stmts_before in
    min tuning.mbp_max_cycles back
  in
  let demote id = Hashtbl.replace classes id Annot.Bypass in
  let schedule_mbp_single (i : Ref_info.t) env =
    if not tuning.allow_mbp then None
    else
      let back = mbp_cycles i env in
      if back < tuning.mbp_min_cycles then None
      else Some (Annot.Back { ref_id = i.ref_.Reference.id; cycles = back })
  in
  (* --- per-LSC driver (paper Fig. 2) --------------------------------- *)
  let record g epoch loop_id technique =
    decisions :=
      { lead_id = g.Locality.lead.ref_.Reference.id; epoch; loop_id; technique }
      :: !decisions
  in
  let install_op (g : Locality.group) op =
    let lead_id = g.lead.ref_.Reference.id in
    Hashtbl.replace ops lead_id op;
    match op with
    | Annot.Vector { loop_id; _ } -> push_loop_op vectors_of_loop loop_id op
    | Annot.Pipelined { loop_id; _ } -> push_loop_op pipelined_of_loop loop_id op
    | Annot.Back _ -> ()
  in
  let mbp_lead_and_promote_covered ~in_loop (g : Locality.group) epoch loop_id env =
    (* In a loop, covered members cannot rely on the leader's moved-back
       prefetch timing: give each its own op (or demote). Straight-line
       covers are safe: the leader executes first. *)
    let handle (i : Ref_info.t) =
      match schedule_mbp_single i env with
      | Some op ->
          Hashtbl.replace classes i.ref_.Reference.id Annot.Lead;
          Hashtbl.replace ops i.ref_.Reference.id op;
          true
      | None ->
          demote i.ref_.Reference.id;
          false
    in
    let lead_ok = handle g.lead in
    record g epoch loop_id (if lead_ok then Mbp else Demoted);
    if in_loop then
      List.iter (fun (m : Ref_info.t) -> ignore (handle m)) g.covered
    else if not lead_ok then
      (* leader demoted: covers lose their line source *)
      List.iter (fun (m : Ref_info.t) -> demote m.ref_.Reference.id) g.covered
  in
  List.iter
    (fun (lsc : Target.lsc) ->
      match lsc.inner with
      | None ->
          (* case 4: serial code section -> MBP *)
          List.iter
            (fun (g : Locality.group) ->
              let env = Region.env_of region g.lead in
              mbp_lead_and_promote_covered ~in_loop:false g lsc.epoch None env)
            lsc.groups
      | Some l ->
          let loop_id = Some l.Stmt.loop_id in
          List.iter
            (fun (g : Locality.group) ->
              let env = Region.env_of region g.lead in
              let known = Iterspace.trip_count l env <> None in
              let has_if = g.lead.Ref_info.loop_has_if in
              let attempts =
                if has_if then []
                else
                  match l.kind with
                  | Stmt.Serial ->
                      if known then [ (`V, Vpg); (`S, Sp) ] else [ (`S, Sp) ]
                  | Stmt.Doall
                      ( Stmt.Static_block | Stmt.Static_aligned _
                      | Stmt.Static_cyclic ) ->
                      if known then [ (`V, Vpg) ] else []
                  | Stmt.Doall (Stmt.Dynamic _) -> []
              in
              let rec try_all = function
                | [] ->
                    mbp_lead_and_promote_covered ~in_loop:true g lsc.epoch loop_id
                      env
                | (`V, t) :: rest -> (
                    match try_vpg g l env with
                    | Some op ->
                        install_op g op;
                        record g lsc.epoch loop_id t
                    | None -> try_all rest)
                | (`S, t) :: rest -> (
                    match try_sp g l env with
                    | Some op ->
                        install_op g op;
                        record g lsc.epoch loop_id t
                    | None -> try_all rest)
              in
              try_all attempts)
            lsc.groups)
    target.Target.lscs;
  let plan =
    { Annot.classes; ops; vectors_of_loop; pipelined_of_loop; stale }
  in
  (plan, List.rev !decisions)

let pp_decisions ppf ds =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun d ->
      Format.fprintf ppf "lead %d (epoch %d%s): %s@," d.lead_id d.epoch
        (match d.loop_id with
        | Some l -> Printf.sprintf ", loop %d" l
        | None -> ", serial code")
        (match d.technique with
        | Vpg -> "vector prefetch"
        | Sp -> "software pipelining"
        | Mbp -> "moved back"
        | Demoted -> "demoted to bypass"))
    ds;
  Format.fprintf ppf "@]"
