lib/analysis/locality.mli: Ccdp_ir Ref_info
