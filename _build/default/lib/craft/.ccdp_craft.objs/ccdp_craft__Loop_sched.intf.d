lib/craft/loop_sched.mli: Ccdp_ir
