open Ccdp_ir
open Ccdp_analysis
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

let dist = Dist.block_along ~rank:2 ~dim:1

let compile ?tuning (p : Program.t) =
  let cfg = Ccdp_machine.Config.t3d ~n_pes:4 in
  Ccdp_core.Pipeline.compile cfg ?tuning p

let builder () =
  let b = B.create ~name:"sc" () in
  B.param b "n" 16;
  B.array_ b "A" [| 16; 16 |] ~dist;
  B.array_ b "O" [| 16; 16 |] ~dist;
  b

let init_epoch b =
  let open B.A in
  B.doall b "j" (bc 0) (bc 15)
    [ B.for_ b "i" (bc 0) (bc 15) [ B.assign b "A" [ v "i"; v "j" ] (F.const 1.0) ] ]

let techniques (c : Ccdp_core.Pipeline.t) =
  List.map (fun (d : Schedule.decision) -> d.Schedule.technique) c.Ccdp_core.Pipeline.decisions

(* stale serial loop on PE 0 reading a remote column *)
let serial_loop_program b ~hi =
  let open B.A in
  [
    init_epoch b;
    Stmt.Sassign ("acc", F.const 0.0);
    B.for_ b "k" (bc 0) hi
      [ Stmt.Sassign ("acc", F.(sv "acc" + B.rd b "A" [ v "k"; c 9 ])) ];
  ]

let serial_cases =
  [
    case "case 1: serial loop, known bounds, fitting section -> VPG" (fun () ->
        let b = builder () in
        let p = B.finish b (serial_loop_program b ~hi:(B.A.bc 15)) in
        match techniques (compile p) with
        | [ Schedule.Vpg ] -> ()
        | ts ->
            Alcotest.failf "expected [Vpg], got %d decisions%s" (List.length ts)
              (if List.mem Schedule.Sp ts then " (Sp)" else ""));
    case "case 1 fallback: unknown bounds -> SP" (fun () ->
        let b = builder () in
        let p =
          B.finish b
            (serial_loop_program b ~hi:(Bound.opaque (Affine.const 15)))
        in
        (match techniques (compile p) with
        | [ Schedule.Sp ] -> ()
        | _ -> Alcotest.fail "expected [Sp]"));
    case "SP distance respects the queue clamp" (fun () ->
        let b = builder () in
        let p =
          B.finish b (serial_loop_program b ~hi:(Bound.opaque (Affine.const 15)))
        in
        let c = compile p in
        Hashtbl.iter
          (fun _ op ->
            match op with
            | Annot.Pipelined { distance; _ } ->
                check_true "fits queue" (distance * 4 <= 16)
            | _ -> ())
          c.Ccdp_core.Pipeline.plan.Annot.ops);
    case "VPG refused when the loop writes the same array" (fun () ->
        let b = builder () in
        let open B.A in
        let p =
          B.finish b
            [
              init_epoch b;
              B.for_ b "k" (bc 1) (bc 14)
                [
                  B.assign b "A" [ v "k"; c 9 ]
                    F.(B.rd b "A" [ v "k" -! c 1; c 9 ] * const 0.5);
                ];
            ]
        in
        let c = compile p in
        check_false "no vector op"
          (Hashtbl.fold
             (fun _ op acc ->
               acc || match op with Annot.Vector _ -> true | _ -> false)
             c.Ccdp_core.Pipeline.plan.Annot.ops false));
    case "VPG refused when the section exceeds the capacity bound" (fun () ->
        let b = builder () in
        let tuning =
          { Schedule.default_tuning with Schedule.vpg_max_words = Some 4 }
        in
        let p = B.finish b (serial_loop_program b ~hi:(B.A.bc 15)) in
        (match techniques (compile ~tuning p) with
        | [ Schedule.Sp ] | [ Schedule.Mbp ] -> ()
        | [ Schedule.Vpg ] -> Alcotest.fail "capacity ignored"
        | _ -> Alcotest.fail "unexpected decisions"));
  ]

let doall_cases =
  [
    case "case 2: static DOALL with known bounds -> VPG" (fun () ->
        let b = builder () in
        let open B.A in
        let p =
          B.finish b
            [
              init_epoch b;
              B.doall b "j" (bc 0) (bc 14)
                [
                  B.for_ b "i" (bc 0) (bc 15)
                    [ B.assign b "O" [ v "i"; v "j" ] (B.rd b "A" [ v "i"; v "j" +! c 1 ]) ];
                ];
            ]
        in
        (match techniques (compile p) with
        | [ Schedule.Vpg ] -> ()
        | _ -> Alcotest.fail "expected [Vpg]"));
    case "case 3: dynamic DOALL as the LSC -> MBP or demotion, never VPG/SP"
      (fun () ->
        let b = builder () in
        let open B.A in
        (* references sit directly in the DOALL body: the DOALL itself is
           the inner loop of Fig. 2 case 3; the scalar preamble provides a
           moving window *)
        let p =
          B.finish b
            [
              init_epoch b;
              B.doall b ~sched:(Stmt.Dynamic 2) "j" (bc 0) (bc 14)
                [
                  Stmt.Sassign ("t0", F.(F.iv "j" * const 2.0));
                  Stmt.Sassign ("t1", F.((sv "t0" * sv "t0") + (sv "t0" * const 0.5)));
                  Stmt.Sassign ("t2", F.((sv "t1" * sv "t1") - (sv "t1" * const 0.25)));
                  Stmt.Sassign ("t3", F.((sv "t2" * sv "t2") + (sv "t2" * const 0.125)));
                  B.assign b "O" [ c 0; v "j" ]
                    F.(B.rd b "A" [ c 0; v "j" +! c 1 ] + sv "t3");
                ];
            ]
        in
        let ts = techniques (compile p) in
        check_true "some decision" (ts <> []);
        List.iter
          (fun t ->
            check_true "mbp or demoted" (t = Schedule.Mbp || t = Schedule.Demoted))
          ts);
    case "a serial loop inside a dynamic task may still vector-prefetch"
      (fun () ->
        let b = builder () in
        let open B.A in
        let p =
          B.finish b
            [
              init_epoch b;
              B.doall b ~sched:(Stmt.Dynamic 2) "j" (bc 0) (bc 14)
                [
                  B.for_ b "i" (bc 0) (bc 15)
                    [
                      B.assign b "O" [ v "i"; v "j" ]
                        (B.rd b "A" [ v "i"; v "j" +! c 1 ]);
                    ];
                ];
            ]
        in
        (match techniques (compile p) with
        | [ Schedule.Vpg ] -> ()
        | _ -> Alcotest.fail "expected VPG before the inner serial loop"));
    case "case 5: a loop containing if-statements only moves back" (fun () ->
        let b = builder () in
        let open B.A in
        let p =
          B.finish b
            [
              init_epoch b;
              B.doall b "j" (bc 0) (bc 14)
                [
                  B.for_ b "i" (bc 1) (bc 14)
                    [
                      Stmt.Sassign ("t", F.(B.rd b "O" [ v "i"; v "j" ] * const 2.0));
                      Stmt.If
                        ( Stmt.Icond (Stmt.Lt, v "i", c 8),
                          [
                            B.assign b "O" [ v "i"; v "j" ]
                              (B.rd b "A" [ v "i"; v "j" +! c 1 ]);
                          ],
                          [] );
                    ];
                ];
            ]
        in
        List.iter
          (fun t ->
            check_true "mbp or demoted" (t = Schedule.Mbp || t = Schedule.Demoted))
          (techniques (compile p)));
    case "case 4: serial code segments move back" (fun () ->
        let b = builder () in
        let open B.A in
        let p =
          B.finish b
            [
              init_epoch b;
              Stmt.Sassign ("t0", F.(B.rd b "O" [ c 0; c 0 ] * const 2.0));
              Stmt.Sassign ("t1", F.((sv "t0" * sv "t0") + (sv "t0" * const 1.0)));
              Stmt.Sassign ("t2", F.((sv "t1" * sv "t0") - (sv "t1" * const 2.0)));
              Stmt.Sassign ("t3", F.((sv "t2" * sv "t2") + (sv "t2" * const 0.5)));
              Stmt.Sassign ("t4", F.((sv "t3" * sv "t3") - (sv "t3" * const 0.25)));
              B.assign b "O" [ c 1; c 1 ] F.(B.rd b "A" [ c 0; c 9 ] + sv "t4");
            ]
        in
        let c = compile p in
        let mbp =
          List.filter (fun t -> t = Schedule.Mbp) (techniques c)
        in
        check_true "at least one moved back" (List.length mbp >= 1));
  ]

let tuning_cases =
  [
    case "disabling all techniques demotes every target to bypass" (fun () ->
        let b = builder () in
        let tuning =
          {
            Schedule.default_tuning with
            Schedule.allow_vpg = false;
            allow_sp = false;
            allow_mbp = false;
          }
        in
        let p = B.finish b (serial_loop_program b ~hi:(B.A.bc 15)) in
        let c = compile ~tuning p in
        List.iter (fun t -> check_true "demoted" (t = Schedule.Demoted)) (techniques c);
        let counts = Annot.count c.Ccdp_core.Pipeline.plan in
        check_int "no ops" 0
          (counts.Annot.n_vector + counts.Annot.n_pipelined + counts.Annot.n_back);
        check_true "bypassed" (counts.Annot.n_bypass >= 1));
    case "vpg off falls through to sp" (fun () ->
        let b = builder () in
        let tuning = { Schedule.default_tuning with Schedule.allow_vpg = false } in
        let p = B.finish b (serial_loop_program b ~hi:(B.A.bc 15)) in
        (match techniques (compile ~tuning p) with
        | [ Schedule.Sp ] -> ()
        | _ -> Alcotest.fail "expected [Sp]"));
    case "mbp minimum distance demotes tiny windows" (fun () ->
        let b = builder () in
        let open B.A in
        (* target with an empty moving window directly in a dynamic loop *)
        let p =
          B.finish b
            [
              init_epoch b;
              B.doall b ~sched:(Stmt.Dynamic 4) "j" (bc 0) (bc 14)
                [
                  B.assign b "O" [ c 0; v "j" ] (B.rd b "A" [ c 0; v "j" +! c 1 ]);
                ];
            ]
        in
        (match techniques (compile p) with
        | [ Schedule.Demoted ] -> ()
        | _ -> Alcotest.fail "expected demotion"));
  ]

let two_level =
  [
    case "vpg_levels=2 hoists past the epoch-internal parent loop" (fun () ->
        let b = builder () in
        let open B.A in
        let p =
          B.finish b
            [
              init_epoch b;
              B.doall b "j" (bc 0) (bc 14)
                [
                  B.for_ b "i" (bc 0) (bc 15)
                    [ B.assign b "O" [ v "i"; v "j" ] (B.rd b "A" [ v "i"; v "j" +! c 1 ]) ];
                ];
            ]
        in
        let tuning = { Schedule.default_tuning with Schedule.vpg_levels = 2 } in
        let c = compile ~tuning p in
        let found_two_level =
          Hashtbl.fold
            (fun _ op acc ->
              acc
              || match op with Annot.Vector { inner = Some _; _ } -> true | _ -> false)
            c.Ccdp_core.Pipeline.plan.Annot.ops false
        in
        check_true "two-level op" found_two_level);
    case "two-level pulls never cross the epoch boundary" (fun () ->
        let b = builder () in
        let open B.A in
        (* the only parent is the structure loop: must stay one-level *)
        let p =
          B.finish b
            [
              init_epoch b;
              B.for_ b "t" (bc 1) (bc 2)
                [
                  B.doall b "j" (bc 0) (bc 14)
                    [
                      B.assign b "O" [ c 0; v "j" ]
                        (B.rd b "A" [ c 0; v "j" +! c 1 ]);
                    ];
                ];
            ]
        in
        let tuning = { Schedule.default_tuning with Schedule.vpg_levels = 2 } in
        let c = compile ~tuning p in
        Hashtbl.iter
          (fun _ op ->
            match op with
            | Annot.Vector { inner; _ } -> check_true "one-level" (inner = None)
            | _ -> ())
          c.Ccdp_core.Pipeline.plan.Annot.ops);
  ]

let covered_promotion =
  [
    case "covered members of an MBP-scheduled loop group get their own ops" (fun () ->
        let b = builder () in
        let open B.A in
        (* dynamic loop with a spatial group and a fat window *)
        let heavy v0 =
          F.((v0 * v0) + (v0 * const 0.5) - (v0 * const 0.25) + const 1.0)
        in
        let p =
          B.finish b
            [
              init_epoch b;
              B.doall b ~sched:(Stmt.Dynamic 2) "j" (bc 0) (bc 14)
                [
                  Stmt.Sassign ("s", F.iv "j");
                  Stmt.Sassign ("t0", heavy (F.sv "s"));
                  Stmt.Sassign ("t1", heavy (F.sv "t0"));
                  Stmt.Sassign ("t2", heavy (F.sv "t1"));
                  B.assign b "O" [ c 1; v "j" ]
                    F.(
                      B.rd b "A" [ c 0; v "j" +! c 1 ]
                      + B.rd b "A" [ c 1; v "j" +! c 1 ]
                      + sv "t2");
                ];
            ]
        in
        let c = compile p in
        (* both A references must end Lead-with-Back or Bypass, never
           Covered (unsafe under MBP timing) *)
        Hashtbl.iter
          (fun _ cls ->
            check_true "no covered"
              (match cls with Annot.Covered _ -> false | _ -> true))
          c.Ccdp_core.Pipeline.plan.Annot.classes);
  ]

let () =
  Alcotest.run "schedule"
    [
      ("serial-cases", serial_cases);
      ("doall-cases", doall_cases);
      ("tuning", tuning_cases);
      ("two-level-vpg", two_level);
      ("covered-promotion", covered_promotion);
    ]
