(** SWIM (SPEC CFP95): shallow-water equations by finite differences.

    Three procedures (CALC1, CALC2, CALC3) called from the time loop — the
    paper's "three major subroutines, each containing a doubly-nested loop
    with its outer loop parallel" — plus periodic boundary-exchange epochs.
    Rows are block-distributed and the stencils only reach one row across a
    PE boundary, so the remote fraction is small relative to the data
    touched: CCDP improves on BASE, but modestly (paper Table 2: 2.5-13%).
    The procedure calls exercise the interprocedural (inlining) side of the
    stale-reference analysis. *)

val program : n:int -> iters:int -> Ccdp_ir.Program.t

val workload : n:int -> iters:int -> Workload.t
