lib/analysis/region.ml: Array_decl Ccdp_craft Ccdp_ir Hashtbl Iterspace List Program Ref_info Reference Section String
