lib/machine/machine.mli: Config Pe Stats
