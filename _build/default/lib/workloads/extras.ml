open Ccdp_ir
module B = Builder
module F = Builder.F

let jacobi ~n ~iters =
  if n < 4 then invalid_arg "Extras.jacobi: n too small";
  let b = B.create ~name:"jacobi" () in
  B.param b "n" n;
  B.param b "niter" iters;
  let dist = Dist.block_along ~rank:2 ~dim:1 in
  B.array_ b "G" [| n; n |] ~dist;
  B.array_ b "T" [| n; n |] ~dist;
  let open B.A in
  let rd = B.rd b in
  let i = v "i" and j = v "j" in
  let init =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "G" [ i; j ]
              F.((F.iv "i" - F.iv "j") * const (1.0 /. float_of_int n));
            B.assign b "T" [ i; j ] (F.const 0.0);
          ];
      ]
  in
  let smooth src dst =
    B.doall b "j" ~sched:(Stmt.Static_aligned n) (bc 1)
      (bc (n - 2))
      [
        B.for_ b "i" (bc 1)
          (bc (n - 2))
          [
            B.assign b dst [ i; j ]
              F.(
                const 0.25
                * (rd src [ i -! c 1; j ]
                  + rd src [ i +! c 1; j ]
                  + rd src [ i; j -! c 1 ]
                  + rd src [ i; j +! c 1 ]));
          ];
      ]
  in
  let time_loop =
    B.for_ b "it" (bc 1) (bv "niter") [ smooth "G" "T"; smooth "T" "G" ]
  in
  Workload.make ~name:"jacobi"
    ~descr:(Printf.sprintf "5-point Jacobi %dx%d, %d iterations" n n iters)
    (B.finish b [ init; time_loop ])

let dynamic ~n =
  if n < 8 then invalid_arg "Extras.dynamic: n too small";
  let b = B.create ~name:"dynamic" () in
  B.param b "n" n;
  let dist = Dist.block_along ~rank:2 ~dim:1 in
  B.array_ b "W" [| n; n |] ~dist;
  B.array_ b "R" [| n; n |] ~dist;
  let open B.A in
  let rd = B.rd b in
  let i = v "i" and j = v "j" in
  let init =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "W" [ i; j ]
              F.((F.iv "i" * const 0.25) - (F.iv "j" * const 0.125));
            B.assign b "R" [ i; j ] (F.const 0.0);
          ];
      ]
  in
  (* dynamically scheduled columns: no compile-time PE map, every W read is
     potentially stale and only MBP applies; the heavy scalar preamble gives
     the moved-back prefetches a window, and the if-statement inside the
     inner loop forces Fig. 2 case 5 on the guarded references *)
  let sweep =
    B.doall b "j" ~sched:(Stmt.Dynamic 2) (bc 1)
      (bc (n - 2))
      [
        B.for_ b "i" (bc 1)
          (bc (n - 2))
          [
            Stmt.Sassign
              ( "t1",
                F.(
                  (rd "W" [ i; j ] * rd "W" [ i; j ])
                  + (F.iv "i" * const 0.5)
                  - (F.iv "j" * const 0.25)) );
            Stmt.Sassign
              ("t2", F.((sv "t1" * sv "t1") + (sv "t1" * const 0.125) + const 1.0));
            Stmt.If
              ( Stmt.Fcond (Stmt.Gt, F.sv "t2", F.const 1.0),
                [
                  Stmt.Sassign
                    ( "u",
                      F.(
                        (sv "t2" * sv "t2") + (sv "t1" * const 0.5)
                        + (sv "t2" * const 0.25) - const 3.0) );
                  Stmt.Sassign
                    ("w", F.((sv "u" * sv "u") - (sv "u" * const 0.125) + const 1.0));
                  B.assign b "R" [ i; j ]
                    F.(
                      ((rd "W" [ i; j -! c 1 ] + rd "W" [ i; j +! c 1 ]) * sv "w")
                      / (sv "u" + const 100.0));
                ],
                [
                  Stmt.Sassign
                    ( "u",
                      F.(
                        (sv "t2" * sv "t1") - (sv "t1" * const 0.5) + const 2.0) );
                  Stmt.Sassign
                    ("w", F.((sv "u" * sv "u") + (sv "u" * const 0.25) + const 1.0));
                  B.assign b "R" [ i; j ]
                    F.(F.neg (rd "W" [ i -! c 1; j ]) * sv "w");
                ] );
          ];
      ]
  in
  Workload.make ~name:"dynamic"
    ~descr:
      (Printf.sprintf
         "dynamically scheduled guarded sweep %dx%d (MBP-only paths)" n n)
    (B.finish b [ init; sweep ])

let opaque_sweep ~n =
  if n < 8 then invalid_arg "Extras.opaque_sweep: n too small";
  let b = B.create ~name:"opaque" () in
  B.param b "n" n;
  let dist = Dist.block_along ~rank:2 ~dim:1 in
  B.array_ b "S" [| n; n |] ~dist;
  B.array_ b "Q" [| n; n |] ~dist;
  let open B.A in
  let rd = B.rd b in
  let i = v "i" and j = v "j" in
  let init =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "S" [ i; j ] F.(F.iv "i" + (F.iv "j" * const 0.5));
            B.assign b "Q" [ i; j ] (F.const 0.0);
          ];
      ]
  in
  (* the serial accumulation loop's upper bound is computed at run time:
     the compiler sees Unknown, the interpreter evaluates n-2; VPG is
     impossible and software pipelining takes over (Fig. 2 case 1) *)
  let opaque_hi = Bound.opaque Affine.(sub (var "n") (const 2)) in
  let sweep =
    B.doall b "j" ~sched:(Stmt.Static_aligned n) (bc 1)
      (bc (n - 2))
      [
        Stmt.Sassign ("acc", F.const 0.0);
        B.for_ b "i" (bc 1) opaque_hi
          [
            Stmt.Sassign
              ( "acc",
                F.(sv "acc" + rd "S" [ i; j -! c 1 ] + rd "S" [ i; j +! c 1 ]) );
          ];
        B.assign b "Q" [ c 0; j ] (F.sv "acc");
      ]
  in
  Workload.make ~name:"opaque"
    ~descr:
      (Printf.sprintf "serial sweep with runtime-only bounds %dx%d (SP path)" n
         n)
    (B.finish b [ init; sweep ])

let triad ~n =
  if n < 4 then invalid_arg "Extras.triad: n too small";
  let b = B.create ~name:"triad" () in
  B.param b "n" n;
  let dist = Dist.block_along ~rank:2 ~dim:1 in
  List.iter (fun name -> B.array_ b name [| n; n |] ~dist) [ "XA"; "XB"; "XC" ];
  let open B.A in
  let rd = B.rd b in
  let i = v "i" and j = v "j" in
  let init =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "XA" [ i; j ] F.(F.iv "i" * const 0.5);
            B.assign b "XB" [ i; j ] F.(F.iv "j" * const 0.25);
            B.assign b "XC" [ i; j ] (F.const 0.0);
          ];
      ]
  in
  let compute =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "XC" [ i; j ]
              F.(rd "XA" [ i; j ] + (const 3.0 * rd "XB" [ i; j ]));
          ];
      ]
  in
  Workload.make ~name:"triad"
    ~descr:(Printf.sprintf "owner-aligned triad %dx%d (zero stale refs)" n n)
    (B.finish b [ init; compute ])

let transpose ~n =
  if n < 4 then invalid_arg "Extras.transpose: n too small";
  let b = B.create ~name:"transpose" () in
  B.param b "n" n;
  let dist = Dist.block_along ~rank:2 ~dim:1 in
  B.array_ b "IN" [| n; n |] ~dist;
  B.array_ b "OUT" [| n; n |] ~dist;
  let open B.A in
  let rd = B.rd b in
  let i = v "i" and j = v "j" in
  let init =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "IN" [ i; j ]
              F.((F.iv "i" * const 2.0) + (F.iv "j" * const 0.5));
            B.assign b "OUT" [ i; j ] (F.const 0.0);
          ];
      ]
  in
  (* each task writes its own OUT column but gathers one element from every
     IN column: all-to-all communication, the worst case for an uncached
     shared-memory machine and a strided vector-prefetch showcase *)
  let flip =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [ B.assign b "OUT" [ i; j ] (rd "IN" [ j; i ]) ];
      ]
  in
  Workload.make ~name:"transpose"
    ~descr:(Printf.sprintf "matrix transpose %dx%d (all-to-all gather)" n n)
    (B.finish b [ init; flip ])

let gauss ~n =
  if n < 6 then invalid_arg "Extras.gauss: n too small";
  let b = B.create ~name:"gauss" () in
  B.param b "n" n;
  let dist = Dist.block_along ~rank:2 ~dim:1 in
  B.array_ b "M" [| n; n |] ~dist;
  let open B.A in
  let rd = B.rd b in
  let i = v "i" and j = v "j" and k = v "k" in
  let init =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            Stmt.If
              ( Stmt.Icond (Stmt.Eq, i, j),
                [ B.assign b "M" [ i; j ] (F.const (float_of_int n)) ],
                [
                  B.assign b "M" [ i; j ]
                    F.(const 1.0 / ((F.iv "i" + F.iv "j") + const 1.0));
                ] );
          ];
      ]
  in
  (* forward elimination without pivoting (the synthetic system is
     diagonally dominant): at step k every task reads the multiplier
     column k and the pivot element — both owned by one PE — while
     updating its own columns; triangular bounds are affine in k *)
  let eliminate =
    B.for_ b "k" (bc 0)
      (bc (n - 2))
      [
        B.doall b "j" ~sched:(Stmt.Static_aligned n)
          (bk (k +! c 1))
          (bc (n - 1))
          [
            B.for_ b "i"
              (bk (k +! c 1))
              (bc (n - 1))
              [
                B.assign b "M" [ i; j ]
                  F.(
                    rd "M" [ i; j ]
                    - (rd "M" [ i; k ] / rd "M" [ k; k ] * rd "M" [ k; j ]));
              ];
          ];
      ]
  in
  Workload.make ~name:"gauss"
    ~descr:
      (Printf.sprintf
         "Gaussian elimination %dx%d (broadcast multiplier column, \
          triangular bounds)" n n)
    (B.finish b [ init; eliminate ])
