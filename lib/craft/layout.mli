(** Owner and local-offset arithmetic for distributed arrays.

    Realizes CRAFT's shared-data distribution directives (paper Section
    5.1): given an array declaration and the machine width, answer "which PE
    owns element (i1,...,ik)?" and "at which word offset inside that PE's
    portion does it live?". The stale-reference analysis additionally needs
    the {e owned section} of each PE to prove owner-computes alignment. *)

type t = private {
  decl : Ccdp_ir.Array_decl.t;
  n_pes : int;
  ddim : int option;  (** distributed dimension, [None] when replicated or on PE 0 *)
  chunk : int;  (** block width along [ddim] (meaningful for Block/Block_cyclic) *)
  per_pe_words : int;  (** words of this array held by each PE *)
}

val make : n_pes:int -> Ccdp_ir.Array_decl.t -> t

(** Owning PE of an element. Replicated arrays return [`Local]: every PE
    reads its own copy. *)
val owner : t -> int array -> [ `Pe of int | `Local ]

(** Allocation-free owner for the simulator's per-access path: [-1] means
    local to every PE (replicated data), otherwise the owning PE id
    (replicating [owner]'s [`Pe] cases, with undistributed shared arrays on
    PE 0). *)
val owner_id : t -> int array -> int

(** Word offset of an element inside its owner's portion of this array. *)
val local_offset : t -> int array -> int

(** Section of the array owned by one PE (a triplet along the distributed
    dimension, whole elsewhere); [Whole] for replicated arrays, the whole
    array for PE 0 (and [Empty] for others) when undistributed. *)
val owned_section : t -> int -> Ccdp_ir.Section.t

val pp : Format.formatter -> t -> unit
