lib/ir/stmt.mli: Affine Bound Fexpr Format Reference
