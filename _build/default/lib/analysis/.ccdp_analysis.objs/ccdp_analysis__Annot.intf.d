lib/analysis/annot.mli: Format Hashtbl Stale
