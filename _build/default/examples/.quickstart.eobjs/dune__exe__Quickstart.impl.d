examples/quickstart.ml: Ccdp_analysis Ccdp_core Ccdp_machine Ccdp_runtime Ccdp_workloads Extras Format Interp List Memsys Pipeline Printf Verify Workload
