(** One processing element: clock, cache, prefetch queue, annex, counters. *)

type t = {
  id : int;
  mutable clock : int;
  cache : Cache.t;
  queue : Prefetch_queue.t;
  annex : Dtb_annex.t;
  stats : Stats.t;
}

val create : Config.t -> int -> t

(** Advance the clock by a (non-negative) number of cycles. *)
val advance : t -> int -> unit

(** Reset clock, cache, queue, annex and stats (fresh run). *)
val reset : t -> unit
