open Ccdp_workloads
open Ccdp_test_support.Tutil

let emit name =
  let w = Workload.find (Suite.all ~n:16 ~iters:2 ()) name in
  let cfg = Ccdp_machine.Config.t3d ~n_pes:4 in
  Ccdp_core.Craft_emit.to_string (Ccdp_core.Pipeline.compile cfg w.Workload.program)

let contains hay needle =
  try
    ignore (Str.search_forward (Str.regexp_string needle) hay 0);
    true
  with Not_found -> false

let tests =
  [
    case "mxm carries distribution directives and vector prefetches" (fun () ->
        let s = emit "mxm" in
        check_true "shared" (contains s "CDIR$ SHARED A(:, :BLOCK)");
        check_true "doshared" (contains s "CDIR$ DOSHARED (J)");
        check_true "vector" (contains s "C$CCDP VECTOR PREFETCH A(");
        check_true "program header" (contains s "PROGRAM MXM"));
    case "vpenta emits no prefetch annotations at all" (fun () ->
        let s = emit "vpenta" in
        check_false "no ccdp ops" (contains s "PREFETCH"));
    case "opaque shows software pipelining with runtime bounds" (fun () ->
        let s = emit "opaque" in
        check_true "sp" (contains s "SOFTWARE-PIPELINED PREFETCH");
        check_true "runtime bound" (contains s "!runtime"));
    case "dynamic shows moved-back and bypass annotations" (fun () ->
        let s = emit "dynamic" in
        check_true "dynamic sched" (contains s "!DYNAMIC(2)");
        check_true "mbp or bypass"
          (contains s "MOVED-BACK PREFETCH" || contains s "BYPASS-CACHE READ"));
    case "tomcatv shows covered group members" (fun () ->
        let s = emit "tomcatv" in
        check_true "covered" (contains s "COVERED BY LEADING REF"));
    case "every workload emits without raising" (fun () ->
        List.iter
          (fun (w : Workload.t) -> check_true w.name (String.length (emit w.name) > 200))
          (Suite.all ~n:16 ~iters:1 ()));
  ]

let () = Alcotest.run "emit" [ ("craft", tests) ]
