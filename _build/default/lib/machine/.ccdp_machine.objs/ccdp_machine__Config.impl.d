lib/machine/config.ml: Format List Torus
