(** Loop volume and execution-time estimation (paper Sections 4.2/4.3).

    Static cycle estimates feed two scheduling decisions: the software-
    pipelining prefetch distance (latency divided by estimated iteration
    time, Mowry's rule) and the moving-back distance (cycles of the
    statements a prefetch can cross). Estimates assume cache hits —
    underestimating iteration time only moves prefetches earlier, which is
    the safe direction for timeliness. *)

(** Estimated cycles of a statement list executed once. Nested loops
    multiply by their trip count, [default_trip] when unknown; branches
    contribute the larger arm. *)
val stmts_cycles :
  Ccdp_machine.Config.t -> ?default_trip:int -> Iterspace.env -> Ccdp_ir.Stmt.t list
  -> int

(** Estimated cycles of one iteration of the loop body. *)
val iter_cycles :
  Ccdp_machine.Config.t -> ?default_trip:int -> Iterspace.env -> Ccdp_ir.Stmt.loop
  -> int

(** Words of shared data read per iteration (queue-pressure input). *)
val words_read_per_iter :
  decl_of:(string -> Ccdp_ir.Array_decl.t) -> Ccdp_ir.Stmt.loop -> int
