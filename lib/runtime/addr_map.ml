open Ccdp_ir

type t = {
  np : int;
  span : int;
  layouts : (string, Ccdp_craft.Layout.t) Hashtbl.t;
  bases : (string, int) Hashtbl.t;
}

let make (p : Program.t) ~n_pes ~line_words ?(cache_lines = 0) () =
  let layouts = Hashtbl.create 16 and bases = Hashtbl.create 16 in
  let next = ref 0 in
  let idx = ref 0 in
  let align w = (w + line_words - 1) / line_words * line_words in
  (* pad [next] up to the first address whose cache set is [slot] *)
  let color_to slot pos =
    if cache_lines = 0 then pos
    else
      let lines = pos / line_words in
      let rem = lines mod cache_lines in
      let pad_lines = (slot - rem + cache_lines) mod cache_lines in
      pos + (pad_lines * line_words)
  in
  List.iter
    (fun (a : Array_decl.t) ->
      let lay = Ccdp_craft.Layout.make ~n_pes a in
      Hashtbl.replace layouts a.name lay;
      let slot = !idx mod 16 * (cache_lines / 16) in
      let base = color_to slot (align !next) in
      Hashtbl.replace bases a.name base;
      next := base + align lay.Ccdp_craft.Layout.per_pe_words;
      incr idx)
    p.Program.arrays;
  { np = n_pes; span = max line_words (align !next); layouts; bases }

let n_pes t = t.np
let pe_span t = t.span
let total_words t = t.np * t.span

let layout t name =
  match Hashtbl.find_opt t.layouts name with
  | Some l -> l
  | None -> invalid_arg ("Addr_map: unknown array " ^ name)

let base t name = Hashtbl.find t.bases name

let resolve t ~pe name idx =
  let lay = layout t name in
  let off = base t name + Ccdp_craft.Layout.local_offset lay idx in
  match Ccdp_craft.Layout.owner lay idx with
  | `Local -> ((pe * t.span) + off, `Local)
  | `Pe owner ->
      if owner = pe then ((pe * t.span) + off, `Local)
      else ((owner * t.span) + off, `Remote owner)

(* Pre-resolved per-array handle: one layout + base lookup at compile time,
   then every access is pure arithmetic. Because each array's offsets stay
   inside [base, base + aligned per-PE words) and the windows tile the
   address space, [addr / span] recovers the owning window, so the target
   never needs to travel alongside the address. *)
type handle = { hlay : Ccdp_craft.Layout.t; hbase : int; hspan : int }

let handle t name = { hlay = layout t name; hbase = base t name; hspan = t.span }

let resolve_h h ~pe idx =
  let off = h.hbase + Ccdp_craft.Layout.local_offset h.hlay idx in
  let ow = Ccdp_craft.Layout.owner_id h.hlay idx in
  if ow < 0 || ow = pe then (pe * h.hspan) + off else (ow * h.hspan) + off

let target_of h ~pe ~addr =
  let ow = addr / h.hspan in
  if ow = pe then -1 else ow

let all_copies t name idx =
  let lay = layout t name in
  let off = base t name + Ccdp_craft.Layout.local_offset lay idx in
  match Ccdp_craft.Layout.owner lay idx with
  | `Local -> List.init t.np (fun pe -> (pe * t.span) + off)
  | `Pe owner -> [ (owner * t.span) + off ]

let canonical t name idx =
  let lay = layout t name in
  let off = base t name + Ccdp_craft.Layout.local_offset lay idx in
  match Ccdp_craft.Layout.owner lay idx with
  | `Local -> off
  | `Pe owner -> (owner * t.span) + off
