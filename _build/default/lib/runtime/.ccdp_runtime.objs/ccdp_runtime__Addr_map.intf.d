lib/runtime/addr_map.mli: Ccdp_craft Ccdp_ir
