open Ccdp_ir

type mismatch = {
  array_name : string;
  index : int array;
  expected : float;
  got : float;
}

type report = {
  ok : bool;
  checked : int;
  mismatches : mismatch list;
  max_abs_diff : float;
}

let compare_states ?(tol = 0.0) ?(max_report = 5) ~expected ~got
    (program : Program.t) =
  let checked = ref 0 in
  let bad = ref 0 in
  let mismatches = ref [] in
  let max_diff = ref 0.0 in
  List.iter
    (fun (a : Array_decl.t) ->
      if a.shared then
        for lin = 0 to Array_decl.elems a - 1 do
          let idx = Array_decl.point_of_linear a lin in
          let e = Memsys.get expected a.name idx in
          let g = Memsys.get got a.name idx in
          incr checked;
          let d = abs_float (e -. g) in
          if d > !max_diff then max_diff := d;
          if d > tol && not (Float.is_nan e && Float.is_nan g) then begin
            incr bad;
            if List.length !mismatches < max_report then
              mismatches :=
                { array_name = a.name; index = idx; expected = e; got = g }
                :: !mismatches
          end
        done)
    program.Program.arrays;
  {
    ok = !bad = 0;
    checked = !checked;
    mismatches = List.rev !mismatches;
    max_abs_diff = !max_diff;
  }

let against_sequential ?tol (program : Program.t) ~init (r : Interp.result) =
  let program = if program.Program.procs = [] then program else Program.inline program in
  let cfg_seq =
    (* one flat PE: a singleton machine has no clusters to speak of *)
    {
      (Memsys.cfg r.Interp.sys) with
      Ccdp_machine.Config.n_pes = 1;
      Ccdp_machine.Config.cluster_pes = 1;
    }
  in
  let seq =
    Interp.run cfg_seq program ~plan:(Ccdp_analysis.Annot.empty ())
      ~mode:Memsys.Seq ~init ()
  in
  compare_states ?tol ~expected:seq.Interp.sys ~got:r.Interp.sys program

let pp_report ppf r =
  if r.ok then Format.fprintf ppf "verification OK (%d elements)" r.checked
  else begin
    Format.fprintf ppf "verification FAILED (%d elements, max |diff| %g)"
      r.checked r.max_abs_diff;
    List.iter
      (fun m ->
        Format.fprintf ppf "@,  %s(%s): expected %.17g, got %.17g" m.array_name
          (String.concat ","
             (Array.to_list (Array.map string_of_int m.index)))
          m.expected m.got)
      r.mismatches
  end
