open Ccdp_ir
open Ccdp_machine
open Ccdp_runtime
open Ccdp_workloads
open Ccdp_analysis
open Ccdp_test_support.Tutil

let n = 16
let n_pes = 4
let suite = Suite.all ~n ~iters:2 ()

let compile (w : Workload.t) =
  Ccdp_core.Pipeline.compile (Config.t3d ~n_pes) w.program

let run_and_verify mode (w : Workload.t) =
  let cfg = Config.t3d ~n_pes in
  let r =
    match mode with
    | Memsys.Ccdp ->
        let c = compile w in
        Interp.run cfg c.Ccdp_core.Pipeline.program ~plan:c.Ccdp_core.Pipeline.plan
          ~mode ()
    | _ ->
        Interp.run cfg (Program.inline w.program) ~plan:(Annot.empty ()) ~mode ()
  in
  (r, Verify.against_sequential w.program ~init:(fun _ -> ()) r)

let structural =
  [
    case "every workload validates" (fun () ->
        List.iter
          (fun (w : Workload.t) ->
            Alcotest.(check (list string)) (w.name ^ " valid") []
              (Program.validate w.program))
          suite);
    case "the SPEC four are present with their signature arrays" (fun () ->
        let names (w : Workload.t) =
          List.map (fun (a : Array_decl.t) -> a.Array_decl.name) w.program.Program.arrays
        in
        check_int "7 vpenta arrays" 7 (List.length (names (Workload.find suite "vpenta")));
        check_int "14 swim arrays" 14 (List.length (names (Workload.find suite "swim")));
        check_int "7 tomcatv arrays" 7 (List.length (names (Workload.find suite "tomcatv")));
        check_int "3 mxm arrays" 3 (List.length (names (Workload.find suite "mxm"))));
    case "swim keeps its three procedures before inlining" (fun () ->
        let w = Workload.find suite "swim" in
        check_int "3 procs" 3 (List.length w.program.Program.procs));
    case "mxm insists on n divisible by 4" (fun () ->
        check_true "raises"
          (try ignore (Mxm.program ~n:10); false with Invalid_argument _ -> true));
  ]

let classification =
  [
    case "gauss: triangular bounds force conservative staleness" (fun () ->
        (* the DOALL's lower bound k+1 varies with the structure loop, so
           the per-PE restriction widens and even the owner-aligned reads
           classify stale — the paper's own conservative fallback *)
        let c = compile (Workload.find suite "gauss") in
        let st = c.Ccdp_core.Pipeline.stale in
        check_int "all stale" st.Stale.n_reads st.Stale.n_stale;
        let counts = Annot.count c.Ccdp_core.Pipeline.plan in
        check_true "prefetched" (counts.Annot.n_vector + counts.Annot.n_pipelined > 0));
    case "transpose: the gather is stale and vector-prefetched" (fun () ->
        let c = compile (Workload.find suite "transpose") in
        let counts = Annot.count c.Ccdp_core.Pipeline.plan in
        check_true "stale gather" (c.Ccdp_core.Pipeline.stale.Stale.n_stale > 0);
        check_true "vector op" (counts.Annot.n_vector > 0));
    case "vpenta is fully owner-aligned: zero stale references" (fun () ->
        let c = compile (Workload.find suite "vpenta") in
        check_int "stale" 0 c.Ccdp_core.Pipeline.stale.Stale.n_stale);
    case "triad is aligned too" (fun () ->
        let c = compile (Workload.find suite "triad") in
        check_int "stale" 0 c.Ccdp_core.Pipeline.stale.Stale.n_stale);
    case "mxm: exactly the four A references are stale, vector-prefetched" (fun () ->
        let c = compile (Workload.find suite "mxm") in
        check_int "stale" 4 c.Ccdp_core.Pipeline.stale.Stale.n_stale;
        let counts = Annot.count c.Ccdp_core.Pipeline.plan in
        check_int "4 leads" 4 counts.Annot.n_lead;
        check_int "all vector" 4 counts.Annot.n_vector);
    case "tomcatv mixes techniques" (fun () ->
        let c = compile (Workload.find suite "tomcatv") in
        let counts = Annot.count c.Ccdp_core.Pipeline.plan in
        check_true "stale refs" (c.Ccdp_core.Pipeline.stale.Stale.n_stale > 0);
        check_true "vector ops" (counts.Annot.n_vector > 0);
        check_true "covered members" (counts.Annot.n_covered > 0));
    case "swim stale set is the halo subset, not everything" (fun () ->
        let c = compile (Workload.find suite "swim") in
        let st = c.Ccdp_core.Pipeline.stale in
        check_true "some stale" (st.Stale.n_stale > 0);
        check_true "most reads clean" (st.Stale.n_stale * 2 < st.Stale.n_reads));
    case "dynamic workload schedules only moved-back prefetches" (fun () ->
        let c = compile (Workload.find suite "dynamic") in
        let counts = Annot.count c.Ccdp_core.Pipeline.plan in
        check_int "no vector" 0 counts.Annot.n_vector;
        check_int "no pipelined" 0 counts.Annot.n_pipelined;
        check_true "back ops exist" (counts.Annot.n_back > 0));
    case "opaque workload uses software pipelining" (fun () ->
        let c = compile (Workload.find suite "opaque") in
        let counts = Annot.count c.Ccdp_core.Pipeline.plan in
        check_true "pipelined" (counts.Annot.n_pipelined > 0);
        check_int "no vector" 0 counts.Annot.n_vector);
  ]

let correctness =
  List.concat_map
    (fun (w : Workload.t) ->
      [
        case (w.name ^ ": BASE verifies") (fun () ->
            let _, v = run_and_verify Memsys.Base w in
            check_true "ok" v.Verify.ok);
        case (w.name ^ ": CCDP verifies") (fun () ->
            let _, v = run_and_verify Memsys.Ccdp w in
            check_true "ok" v.Verify.ok);
        case (w.name ^ ": INVALIDATE verifies") (fun () ->
            let _, v = run_and_verify Memsys.Invalidate w in
            check_true "ok" v.Verify.ok);
      ])
    suite

let performance =
  [
    case "mxm: CCDP dramatically beats BASE" (fun () ->
        let b, _ = run_and_verify Memsys.Base (Workload.find suite "mxm") in
        let c, _ = run_and_verify Memsys.Ccdp (Workload.find suite "mxm") in
        check_true "at least 2x" (c.Interp.cycles * 2 < b.Interp.cycles));
    case "every workload: CCDP is at least as fast as BASE at 4 PEs" (fun () ->
        List.iter
          (fun (w : Workload.t) ->
            let b, _ = run_and_verify Memsys.Base w in
            let c, _ = run_and_verify Memsys.Ccdp w in
            check_true
              (w.name ^ " not slower than 1.05x BASE")
              (float_of_int c.Interp.cycles <= 1.05 *. float_of_int b.Interp.cycles))
          suite);
    case "vpenta CCDP issues no prefetches at all" (fun () ->
        let r, _ = run_and_verify Memsys.Ccdp (Workload.find suite "vpenta") in
        check_int "none" 0 (Stats.total_prefetches r.Interp.stats));
    case "the incoherent mode corrupts at least one kernel" (fun () ->
        let broken =
          List.exists
            (fun (w : Workload.t) ->
              let _, v = run_and_verify Memsys.Incoherent w in
              not v.Verify.ok)
            suite
        in
        check_true "coherence problem is real" broken);
  ]

let () =
  Alcotest.run "workloads"
    [
      ("structural", structural);
      ("classification", classification);
      ("correctness", correctness);
      ("performance", performance);
    ]
