(** Whole programs: array declarations, procedures, main body, parameters.

    Programs are built with {!Builder}, validated here, and [inline]d before
    analysis — the paper's interprocedural stale-reference analysis is
    realized by full context-sensitive inlining (procedures are
    non-recursive, as in the Fortran-77 kernels studied). *)

type proc = { pname : string; formals : string list; body : Stmt.t list }

type t = {
  name : string;
  arrays : Array_decl.t list;
  procs : proc list;
  main : Stmt.t list;
  params : (string * int) list;
      (** numeric values of symbolic parameters (problem sizes) *)
}

val find_array : t -> string -> Array_decl.t
val find_array_opt : t -> string -> Array_decl.t option
val find_proc_opt : t -> string -> proc option
val param : t -> string -> int

(** Every reference in main (not descending into procedures). *)
val main_refs : t -> (bool * Reference.t) list

val max_ref_id : t -> int
val max_loop_id : t -> int

(** Structural well-formedness: referenced arrays are declared with matching
    rank, called procedures exist with fully-supplied formals, the call
    graph is acyclic, reference and loop ids are unique, DOALL loops are not
    nested inside other DOALL loops (the paper's epoch model runs one level
    of parallelism). Returns the list of problems, empty when valid. *)
val validate : t -> string list

(** Replace every [Call] by the callee body with actuals substituted.
    Cloned references and loops receive fresh ids, making the result
    context-sensitive: the same textual reference reached through two call
    sites can be classified differently.
    @raise Invalid_argument if validation fails. *)
val inline : t -> t

val pp : Format.formatter -> t -> unit
