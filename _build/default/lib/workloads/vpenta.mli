(** VPENTA (SPEC CFP92, NASA7 kernel): pentadiagonal inversion.

    Seven shared matrices, columns block-distributed, every loop parallel
    over columns with serial recurrences down each column — so each PE only
    ever touches its own columns (paper Section 5.4: "each PE will only
    access the portion of shared data which is stored in its local
    memory"). The stale-reference analysis proves every read aligned: the
    CCDP version issues {e no} prefetches and wins over BASE purely by
    caching local shared data. *)

val program : n:int -> Ccdp_ir.Program.t

val workload : n:int -> Workload.t
