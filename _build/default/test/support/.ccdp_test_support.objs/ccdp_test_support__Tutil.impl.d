test/support/tutil.ml: Alcotest Builder Ccdp_ir Fexpr List QCheck QCheck_alcotest Section
