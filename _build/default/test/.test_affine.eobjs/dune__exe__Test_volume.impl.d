test/test_volume.ml: Affine Alcotest Array_decl Bound Builder Ccdp_analysis Ccdp_ir Ccdp_machine Ccdp_test_support Iterspace Stmt Volume
