(* The static coherence certifier:

   - every suite workload and the shipped CRAFT example certify clean;
   - the independent may-stale derivation over-approximates (and on this
     corpus coincides with) the pipeline's stale analysis;
   - each fault class raises its specific stable diagnostic code — the
     fuzzer's stale-mark drop as CCDP-W001, hand-damaged plan tables as
     W002/W005/W006/W007, shrunken budgets as W008, builder-built races as
     W003, annotation/dataflow disagreement as W004;
   - source spans survive from CRAFT text into diagnostics; builder
     programs stay synthetic;
   - the three-way differential (static / annotation / dynamic oracle)
     reports zero static escapes under fault injection. *)

open Ccdp_test_support.Tutil
module Config = Ccdp_machine.Config
module Pipeline = Ccdp_core.Pipeline
module Check = Ccdp_check.Check
module Diag = Ccdp_check.Diag
module Lint = Ccdp_check.Lint
module Annot = Ccdp_analysis.Annot
module Stale = Ccdp_analysis.Stale
module Schedule = Ccdp_analysis.Schedule
module Suite = Ccdp_workloads.Suite
module Workload = Ccdp_workloads.Workload
module Gen = Ccdp_fuzz.Gen
module Driver = Ccdp_fuzz.Driver
module B = Ccdp_ir.Builder

let cfg = Config.t3d ~n_pes:16

let compile ?tuning ?prefetch_clean ?mutate_stale p =
  Pipeline.compile cfg ?tuning ?prefetch_clean ?mutate_stale p

let workload name =
  (Workload.find (Suite.all ()) name).Ccdp_workloads.Workload.program

let codes ds =
  List.sort_uniq compare (List.map (fun d -> Diag.code_string d.Diag.code) ds)

let has_code c ds = List.mem c (codes ds)

let heat2d_path () =
  List.find Sys.file_exists
    [
      "../examples/heat2d.craft";
      "../../examples/heat2d.craft";
      "../../../examples/heat2d.craft";
      "examples/heat2d.craft";
    ]

let clean_suite =
  [
    case "every suite workload certifies clean" (fun () ->
        List.iter
          (fun (w : Ccdp_workloads.Workload.t) ->
            match Check.certify (compile w.Ccdp_workloads.Workload.program) with
            | [] -> ()
            | d :: _ ->
                Alcotest.failf "%s: %s" w.Ccdp_workloads.Workload.name
                  (Diag.to_string d))
          (Suite.all ()));
    case "the four paper workloads certify clean at several PE counts"
      (fun () ->
        List.iter
          (fun pe ->
            let cfg = Config.t3d ~n_pes:pe in
            List.iter
              (fun (w : Ccdp_workloads.Workload.t) ->
                check_int
                  (Printf.sprintf "%s @%d PEs" w.Ccdp_workloads.Workload.name
                     pe)
                  0
                  (List.length
                     (Check.certify
                        (Pipeline.compile cfg
                           w.Ccdp_workloads.Workload.program))))
              (Suite.spec_four ()))
          [ 4; 16; 64 ]);
    case "the shipped heat2d.craft certifies clean" (fun () ->
        let p = Ccdp_ir.Craft_parse.file (heat2d_path ()) in
        check_int "diagnostics" 0 (List.length (Check.certify (compile p))));
    case "the JSON report carries version, targets and severity totals"
      (fun () ->
        let t = compile (workload "mxm") in
        let s =
          Check.json
            [ { Check.name = "mxm"; diags = Check.certify t } ]
        in
        let contains sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        check_true "version" (contains "\"version\":1");
        check_true "target name" (contains "\"name\":\"mxm\"");
        check_true "summary" (contains "\"errors\":0"));
  ]

(* The verifier's second opinion must never claim fewer stale reads than
   the analysis it checks: any read the pipeline marks stale is stale in
   the independent derivation too (over-approximation). *)
let property_suite =
  [
    case "may-stale derivation covers Stale.analyze on 60 fuzz programs"
      (fun () ->
        let rng = Random.State.make [| 2024 |] in
        for _ = 1 to 60 do
          let d = Gen.generate rng in
          let cfg = Config.of_kind d.Gen.net ~n_pes:d.Gen.n_pes in
          let t =
            Pipeline.compile cfg ~prefetch_clean:d.Gen.pclean (Gen.build d)
          in
          let independent =
            Ccdp_check.Maystale.stale_ids (Check.maystale t)
          in
          List.iter
            (fun id ->
              check_true
                (Printf.sprintf "stale ref %d derived independently" id)
                (List.mem id independent))
            (Stale.stale_ids t.Pipeline.stale)
        done);
    case "lock/reduction corpus: Stale ⊆ Maystale, acquire verdicts witnessed"
      (fun () ->
        (* draw until 40 descriptions carry intra-epoch synchronization
           (critical sections or recognized reductions): every stale mark —
           including the new acquire-frontier verdicts — must be re-derived
           by the independent walk, and the corpus must actually exercise
           the mini-epoch rule at least once *)
        let rng = Random.State.make [| 4097 |] in
        let has_sync d =
          List.exists
            (function Gen.Lock _ | Gen.Red _ -> true | _ -> false)
            d.Gen.epochs
        in
        let acquires = ref 0 and seen = ref 0 in
        while !seen < 40 do
          let d = Gen.generate rng in
          if has_sync d then begin
            incr seen;
            let cfg = Config.of_kind d.Gen.net ~n_pes:d.Gen.n_pes in
            let t =
              Pipeline.compile cfg ~prefetch_clean:d.Gen.pclean (Gen.build d)
            in
            let independent =
              Ccdp_check.Maystale.stale_ids (Check.maystale t)
            in
            List.iter
              (fun id ->
                (match Stale.verdict t.Pipeline.stale id with
                | Stale.Stale { at_acquire = true; _ } -> incr acquires
                | _ -> ());
                check_true
                  (Printf.sprintf "stale ref %d derived independently" id)
                  (List.mem id independent))
              (Stale.stale_ids t.Pipeline.stale)
          end
        done;
        check_true "corpus exercises the acquire-frontier rule"
          (!acquires > 0));
    case "witnesses are sorted write ids of the same region" (fun () ->
        let t = compile (workload "mxm") in
        let ms = Check.maystale t in
        List.iter
          (fun id ->
            let ws = Ccdp_check.Maystale.witnesses_of ms id in
            check_true "non-empty" (ws <> []);
            check_true "sorted" (List.sort compare ws = ws))
          (Ccdp_check.Maystale.stale_ids ms));
  ]

let racy_doall () =
  let b = B.create ~name:"racy" () in
  B.param b "n" 64;
  B.array_ b "A" [| 64 |] ~dist:(Ccdp_ir.Dist.block_along ~rank:1 ~dim:0);
  let open B.A in
  B.finish b
    [
      B.doall b "i" (bc 1) (bc 62)
        [
          B.assign b "A" [ v "i" ]
            B.F.(Ccdp_ir.Fexpr.Ref (B.ref_ b "A" [ v "i" +! c (-1) ]) + const 1.0);
        ];
    ]

let scalar_racy_doall () =
  let b = B.create ~name:"sracy" () in
  B.param b "n" 64;
  B.array_ b "A" [| 64 |] ~dist:(Ccdp_ir.Dist.block_along ~rank:1 ~dim:0);
  let open B.A in
  B.finish b
    [
      B.doall b "i" (bc 0) (bc 63)
        [
          Ccdp_ir.Stmt.Sassign ("t", B.F.(sv "t" + const 1.0));
          B.assign b "A" [ v "i" ] (B.F.sv "t");
        ];
    ]

let fault_suite =
  [
    case "W001: a dropped stale mark is an uncovered obligation" (fun () ->
        let t =
          compile ~mutate_stale:(Driver.drop_stale_mark 0) (workload "mxm")
        in
        let ds = Check.certify t in
        check_true "CCDP-W001 raised" (has_code "CCDP-W001" ds);
        check_true "error severity gates"
          (Check.has_errors ds));
    case "W001 points at the victim reference" (fun () ->
        let t = compile (workload "mxm") in
        let victim = List.hd (Stale.stale_ids t.Pipeline.stale) in
        let t' =
          compile ~mutate_stale:(Driver.drop_stale_mark 0) (workload "mxm")
        in
        check_true "victim named"
          (List.exists
             (fun d ->
               d.Diag.code = Diag.Uncovered_stale
               && d.Diag.ref_id = Some victim)
             (Check.certify t')));
    case "W002: removing a lead's op breaks the cover chain" (fun () ->
        let t = compile (workload "tomcatv") in
        let lead =
          Hashtbl.fold
            (fun _ cls acc ->
              match (cls, acc) with
              | Annot.Covered lead, None -> Some lead
              | _ -> acc)
            t.Pipeline.plan.Annot.classes None
        in
        match lead with
        | None -> Alcotest.fail "tomcatv plan has no covered reference"
        | Some lead ->
            Hashtbl.remove t.Pipeline.plan.Annot.ops lead;
            check_true "CCDP-W002 raised"
              (has_code "CCDP-W002" (Check.certify t)));
    case "W003: a builder-built racy DOALL is flagged" (fun () ->
        let ds = Check.certify (compile (racy_doall ())) in
        check_true "CCDP-W003 raised" (has_code "CCDP-W003" ds);
        check_true "synthetic span (builder program)"
          (List.for_all
             (fun d -> not (Ccdp_ir.Loc.is_src d.Diag.loc))
             ds));
    case "W003: an unprivatizable scalar is flagged" (fun () ->
        check_true "CCDP-W003 raised"
          (has_code "CCDP-W003" (Check.certify (compile (scalar_racy_doall ())))));
    case "W003 precision: dynamic and gauss stay clean" (fun () ->
        (* regression: per-iteration scalar definiteness (dynamic) and the
           triangular-bound Banerjee test (gauss) — both were certifier
           false positives once *)
        List.iter
          (fun name ->
            check_int name 0
              (List.length (Check.races (compile (workload name)))))
          [ "dynamic"; "gauss" ]);
    case "W004: covering a provably clean read is flagged" (fun () ->
        let t = compile (workload "mxm") in
        let clean =
          Hashtbl.fold
            (fun id cls acc ->
              match (cls, acc) with
              | Annot.Normal, None -> Some id
              | _ -> acc)
            t.Pipeline.plan.Annot.classes None
        in
        match clean with
        | None -> Alcotest.fail "mxm plan has no normal read"
        | Some id ->
            Hashtbl.replace t.Pipeline.plan.Annot.classes id Annot.Bypass;
            let ds = Check.certify t in
            check_true "CCDP-W004 raised" (has_code "CCDP-W004" ds);
            check_true "warning only, not gating" (not (Check.has_errors ds)));
    case "W004 is suppressed under prefetch_clean" (fun () ->
        let t = compile ~prefetch_clean:true (workload "mxm") in
        let clean =
          Hashtbl.fold
            (fun id cls acc ->
              match (cls, acc) with
              | Annot.Normal, None -> Some id
              | _ -> acc)
            t.Pipeline.plan.Annot.classes None
        in
        match clean with
        | None -> () (* everything prefetched: nothing to suppress *)
        | Some id ->
            Hashtbl.replace t.Pipeline.plan.Annot.classes id Annot.Bypass;
            check_false "no CCDP-W004"
              (has_code "CCDP-W004" (Check.certify t)));
    case "W005: a covered member with its own op is redundant" (fun () ->
        let t = compile (workload "tomcatv") in
        let covered =
          Hashtbl.fold
            (fun id cls acc ->
              match (cls, acc) with
              | Annot.Covered _, None -> Some id
              | _ -> acc)
            t.Pipeline.plan.Annot.classes None
        in
        match covered with
        | None -> Alcotest.fail "tomcatv plan has no covered reference"
        | Some id ->
            Hashtbl.replace t.Pipeline.plan.Annot.ops id
              (Annot.Back { ref_id = id; cycles = 64 });
            check_true "CCDP-W005 raised"
              (has_code "CCDP-W005" (Check.certify t)));
    case "W006: a moved-back window outside the tuned range is dead"
      (fun () ->
        let t = compile (workload "tomcatv") in
        let back =
          Hashtbl.fold
            (fun id op acc ->
              match (op, acc) with
              | Annot.Back _, None -> Some id
              | _ -> acc)
            t.Pipeline.plan.Annot.ops None
        in
        match back with
        | None -> Alcotest.fail "tomcatv plan has no moved-back op"
        | Some id ->
            Hashtbl.replace t.Pipeline.plan.Annot.ops id
              (Annot.Back { ref_id = id; cycles = 10_000_000 });
            check_true "CCDP-W006 raised"
              (has_code "CCDP-W006" (Check.certify t)));
    case "W007: a zero pipelined distance is mis-sized" (fun () ->
        let t = compile (Ccdp_ir.Craft_parse.file (heat2d_path ())) in
        let sp =
          Hashtbl.fold
            (fun id op acc ->
              match (op, acc) with
              | Annot.Pipelined _, None -> Some (id, op)
              | _ -> acc)
            t.Pipeline.plan.Annot.ops None
        in
        match sp with
        | None -> Alcotest.fail "heat2d plan has no pipelined op"
        | Some (id, Annot.Pipelined p) ->
            Hashtbl.replace t.Pipeline.plan.Annot.ops id
              (Annot.Pipelined { p with distance = 0 });
            check_true "CCDP-W007 raised"
              (has_code "CCDP-W007" (Check.certify t))
        | Some _ -> assert false);
    case "W008: a vector section over a shrunken budget is mis-sized"
      (fun () ->
        let t = compile (workload "mxm") in
        let tuning =
          { t.Pipeline.tuning with Schedule.vpg_max_words = Some 1 }
        in
        let ds =
          Lint.check ~region:t.Pipeline.region ~cfg:t.Pipeline.cfg ~tuning
            ~plan:t.Pipeline.plan t.Pipeline.infos
        in
        check_true "CCDP-W008 raised" (has_code "CCDP-W008" ds));
    case "diagnostics order by span, then code, then reference" (fun () ->
        let t =
          compile ~mutate_stale:(Driver.drop_stale_mark 0) (workload "mxm")
        in
        let ds = Check.certify t in
        check_true "sorted" (List.sort Diag.compare ds = ds));
  ]

let span_text =
  String.concat "\n"
    [
      "      PROGRAM SPAN";
      "      PARAMETER (N = 8)";
      "      REAL*8 A(8, 8)";
      "CDIR$ SHARED A(:, :BLOCK)";
      "CDIR$ DOSHARED (J)";
      "      DO J = 0, 7";
      "        DO I = 0, 7";
      "          A(i, j) = (A(i, j) + 1.0)";
      "        ENDDO";
      "      ENDDO";
      "      END";
    ]

let span_suite =
  [
    case "CRAFT references carry their source line" (fun () ->
        let p = Ccdp_ir.Craft_parse.program span_text in
        let refs = Ccdp_ir.Program.main_refs p in
        check_true "some refs" (refs <> []);
        List.iter
          (fun (_, (r : Ccdp_ir.Reference.t)) ->
            check_true "located" (Ccdp_ir.Loc.is_src r.Ccdp_ir.Reference.loc);
            check_int "line"
              8
              (Option.get (Ccdp_ir.Loc.line r.Ccdp_ir.Reference.loc)))
          refs);
    case "CRAFT loop headers carry their source line" (fun () ->
        let p = Ccdp_ir.Craft_parse.program span_text in
        let lines = ref [] in
        let rec walk stmts =
          List.iter
            (fun s ->
              match s with
              | Ccdp_ir.Stmt.For l ->
                  lines :=
                    Option.get (Ccdp_ir.Loc.line l.Ccdp_ir.Stmt.loc) :: !lines;
                  walk l.Ccdp_ir.Stmt.body
              | Ccdp_ir.Stmt.If (_, a, b) ->
                  walk a;
                  walk b
              | _ -> ())
            stmts
        in
        walk p.Ccdp_ir.Program.main;
        check_true "doall at line 6" (List.mem 6 !lines);
        check_true "inner loop at line 7" (List.mem 7 !lines));
    case "builder programs stay synthetic end to end" (fun () ->
        let p = workload "mxm" in
        List.iter
          (fun (_, (r : Ccdp_ir.Reference.t)) ->
            check_false "synthetic"
              (Ccdp_ir.Loc.is_src r.Ccdp_ir.Reference.loc))
          (Ccdp_ir.Program.main_refs p));
    case "diagnostics on parsed programs render their span" (fun () ->
        (* sabotage the parsed span program so a diagnostic fires, then
           check the rendered report points into the source *)
        let t =
          compile
            ~mutate_stale:(fun r ->
              let verdicts = Hashtbl.copy r.Stale.verdicts in
              Hashtbl.iter
                (fun id _ -> Hashtbl.replace verdicts id Stale.Clean)
                r.Stale.verdicts;
              { r with Stale.verdicts; n_stale = 0 })
            (Ccdp_ir.Craft_parse.program span_text)
        in
        match Check.errors (Check.certify t) with
        | [] -> () (* nothing was stale to begin with: acceptable *)
        | d :: _ ->
            check_true "span rendered" (Ccdp_ir.Loc.is_src d.Diag.loc));
  ]

let differential_suite =
  [
    case "three-way differential: no static escapes under fault injection"
      (fun () ->
        let s =
          Driver.campaign
            ~mutate_stale:(Driver.drop_stale_mark 0)
            ~progress:(fun _ -> ())
            ~seed:7 ~count:25 ()
        in
        check_int "static escapes" 0 s.Driver.s_static_escapes;
        check_true "certifier caught dangerous faults"
          (s.Driver.s_static_caught > 0));
    case "clean corpus never certifies spurious" (fun () ->
        let s =
          Driver.campaign
            ~progress:(fun _ -> ())
            ~seed:23 ~count:25 ()
        in
        check_int "failures" 0 (List.length s.Driver.s_failures);
        check_int "caught (nothing injected)" 0 s.Driver.s_static_caught;
        check_int "escapes" 0 s.Driver.s_static_escapes);
  ]

let () =
  Alcotest.run "check"
    [
      ("clean", clean_suite);
      ("maystale", property_suite);
      ("faults", fault_suite);
      ("spans", span_suite);
      ("differential", differential_suite);
    ]
