type t = {
  name : string;
  dims : int array;
  elem_words : int;
  dist : Dist.t;
  shared : bool;
}

let make ?(elem_words = 1) ?(dist = Dist.replicated) ?(shared = true) name dims =
  if Array.length dims = 0 then invalid_arg "Array_decl.make: rank 0";
  Array.iter (fun d -> if d <= 0 then invalid_arg "Array_decl.make: empty dim") dims;
  if elem_words <= 0 then invalid_arg "Array_decl.make: elem_words <= 0";
  (match dist with
  | Dist.Dims ds when Array.length ds <> Array.length dims ->
      invalid_arg "Array_decl.make: distribution rank mismatch"
  | Dist.Dims _ | Dist.Replicated -> ());
  { name; dims; elem_words; dist; shared }

let rank a = Array.length a.dims
let elems a = Array.fold_left ( * ) 1 a.dims
let words a = elems a * a.elem_words

(* Column-major (Fortran) linearization: dimension 0 is contiguous. *)
let linear_index a idx =
  if Array.length idx <> Array.length a.dims then
    invalid_arg (a.name ^ ": subscript rank mismatch");
  let lin = ref 0 in
  for d = Array.length idx - 1 downto 0 do
    let i = idx.(d) in
    if i < 0 || i >= a.dims.(d) then
      invalid_arg
        (Printf.sprintf "%s: index %d out of bounds 0..%d in dim %d" a.name i
           (a.dims.(d) - 1) d);
    lin := (!lin * a.dims.(d)) + i
  done;
  !lin

let point_of_linear a lin =
  let n = Array.length a.dims in
  let idx = Array.make n 0 in
  let rem = ref lin in
  for d = 0 to n - 1 do
    idx.(d) <- !rem mod a.dims.(d);
    rem := !rem / a.dims.(d)
  done;
  idx

let pp ppf a =
  Format.fprintf ppf "%s%s[%s] dist=%a%s" a.name
    (if a.shared then "" else " (private)")
    (String.concat "][" (Array.to_list (Array.map string_of_int a.dims)))
    Dist.pp a.dist
    (if a.elem_words = 1 then "" else Printf.sprintf " (%dw)" a.elem_words)
