open Ccdp_ir
module B = Builder
module F = Builder.F

let program ~n ~iters =
  if n < 8 then invalid_arg "Tomcatv.program: n too small";
  let b = B.create ~name:"tomcatv" () in
  B.param b "n" n;
  B.param b "niter" iters;
  let dist = Dist.block_along ~rank:2 ~dim:1 in
  List.iter (fun name -> B.array_ b name [| n; n |] ~dist)
    [ "X"; "Y"; "RX"; "RY"; "AA"; "DD"; "D" ];
  let open B.A in
  let rd = B.rd b in
  let i = v "i" and j = v "j" in
  let fi = F.iv "i" and fj = F.iv "j" in
  let s = 1.0 /. float_of_int n in
  let init =
    B.doall b "j" (bc 0) (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "X" [ i; j ] F.((fi * const s) + (fj * const (0.5 *. s)));
            B.assign b "Y" [ i; j ] F.((fj * const s) - (fi * const (0.25 *. s)));
            B.assign b "RX" [ i; j ] (F.const 0.0);
            B.assign b "RY" [ i; j ] (F.const 0.0);
            B.assign b "AA" [ i; j ] (F.const 0.0);
            B.assign b "DD" [ i; j ] (F.const 4.0);
            B.assign b "D" [ i; j ] (F.const 1.0);
          ];
      ]
  in
  (* loop 60: residuals and sweep coefficients; parallel over columns,
     column halos (j +/- 1) remote, row neighbours (i +/- 1) group-spatial *)
  let residual =
    B.doall b "j" ~sched:(Stmt.Static_aligned n) (bc 1)
      (bc (n - 2))
      [
        B.for_ b "i" (bc 1)
          (bc (n - 2))
          [
            B.assign b "RX" [ i; j ]
              F.(
                rd "X" [ i -! c 1; j ]
                + rd "X" [ i +! c 1; j ]
                + rd "X" [ i; j -! c 1 ]
                + rd "X" [ i; j +! c 1 ]
                - (const 4.0 * rd "X" [ i; j ]));
            B.assign b "RY" [ i; j ]
              F.(
                rd "Y" [ i -! c 1; j ]
                + rd "Y" [ i +! c 1; j ]
                + rd "Y" [ i; j -! c 1 ]
                + rd "Y" [ i; j +! c 1 ]
                - (const 4.0 * rd "Y" [ i; j ]));
            B.assign b "AA" [ i; j ]
              F.(const (-0.125) * (rd "Y" [ i; j +! c 1 ] - rd "Y" [ i; j -! c 1 ]));
            B.assign b "DD" [ i; j ]
              F.(
                const 4.0
                + (const 0.01 * (rd "X" [ i; j +! c 1 ] - rd "X" [ i; j -! c 1 ])));
          ];
      ]
  in
  (* loop 100: forward elimination along the columns; the serial recurrence
     runs over j, the parallel inner loop over i — so every PE updates
     slices of a column it does not own (the paper's "each PE has to access
     shared data which are owned by another PE") *)
  let forward =
    B.for_ b "j" (bc 2)
      (bc (n - 2))
      [
        B.doall b "i" (bc 1)
          (bc (n - 2))
          [
            B.assign b "D" [ i; j ]
              F.(
                const 1.0
                / (rd "DD" [ i; j ]
                  - (rd "AA" [ i; j ] * rd "D" [ i; j -! c 1 ] * const 0.1)));
            B.assign b "RX" [ i; j ]
              F.(
                (rd "RX" [ i; j ] + (rd "AA" [ i; j ] * rd "RX" [ i; j -! c 1 ]))
                * rd "D" [ i; j ]);
            B.assign b "RY" [ i; j ]
              F.(
                (rd "RY" [ i; j ] + (rd "AA" [ i; j ] * rd "RY" [ i; j -! c 1 ]))
                * rd "D" [ i; j ]);
          ];
      ]
  in
  let lastc = c (n - 1) and cn = c n in
  (* loop 120: back substitution via the reversed index jr -> n-1-jr *)
  let backward =
    B.for_ b "jr" (bc 2)
      (bc (n - 2))
      [
        B.doall b "i" (bc 1)
          (bc (n - 2))
          [
            B.assign b "RX"
              [ i; lastc -! v "jr" ]
              F.(
                rd "RX" [ i; lastc -! v "jr" ]
                - (rd "D" [ i; lastc -! v "jr" ]
                  * rd "RX" [ i; cn -! v "jr" ]
                  * const 0.1));
            B.assign b "RY"
              [ i; lastc -! v "jr" ]
              F.(
                rd "RY" [ i; lastc -! v "jr" ]
                - (rd "D" [ i; lastc -! v "jr" ]
                  * rd "RY" [ i; cn -! v "jr" ]
                  * const 0.1));
          ];
      ]
  in
  (* mesh update: column-parallel reads of the row-block-written residuals *)
  let update =
    B.doall b "j" ~sched:(Stmt.Static_aligned n) (bc 1)
      (bc (n - 2))
      [
        B.for_ b "i" (bc 1)
          (bc (n - 2))
          [
            B.assign b "X" [ i; j ]
              F.(rd "X" [ i; j ] + (const 0.05 * rd "RX" [ i; j ]));
            B.assign b "Y" [ i; j ]
              F.(rd "Y" [ i; j ] + (const 0.05 * rd "RY" [ i; j ]));
          ];
      ]
  in
  (* serial residual sample on PE 0: a serial inner loop over stale data *)
  let mid = n / 2 in
  let res_epoch =
    [
      Stmt.Sassign ("res", F.const 0.0);
      B.for_ b "jj" (bc 1)
        (bc (n - 2))
        [
          Stmt.Sassign
            ("res", F.(sv "res" + abs_ (rd "RX" [ c mid; v "jj" ])));
        ];
      B.assign b "X" [ c 0; c 0 ] F.(sv "res" * const 1e-6);
    ]
  in
  let body = [ residual; forward; backward; update ] @ res_epoch in
  let time_loop = B.for_ b "it" (bc 1) (bv "niter") body in
  B.finish b [ init; time_loop ]

let workload ~n ~iters =
  Workload.make ~name:"tomcatv"
    ~descr:
      (Printf.sprintf
         "mesh generation %dx%d, %d iterations: column halos + cross-owner \
          sweeps" n n iters)
    (program ~n ~iters)
