(** Analysis output consumed by the runtime.

    The compiler pipeline classifies every read reference and attaches at
    most one prefetch operation per {e leading} reference. The runtime
    dispatches on the class at every dynamic reference and on the loop
    tables when it enters a loop. *)

type cls =
  | Normal  (** not potentially stale: ordinary cached read *)
  | Lead  (** potentially stale, prefetched (an op exists for it) *)
  | Covered of int
      (** potentially stale but covered by the leading reference with the
          given id: ordinary read of a line the lead prefetches *)
  | Bypass
      (** potentially stale, not worth/possible to prefetch: read around the
          cache straight from memory (paper Section 3's fallback) *)

type op =
  | Vector of { ref_id : int; loop_id : int; group : int list; inner : int option }
      (** block-prefetch the whole per-PE section of the group before
          entering the loop (VPG, SHMEM-get style). [inner] marks a
          two-level pull (Gornish's multi-level algorithm, which the paper
          deliberately restricts — available for the ablation study): the
          section additionally sweeps that nested loop *)
  | Pipelined of { ref_id : int; loop_id : int; distance : int; every : int }
      (** issue a cache-line prefetch [distance] iterations ahead (SP),
          once per [every] iterations — Mowry's strip-mining of the issue
          to one prefetch per cache line when the reference walks with a
          sub-line stride (self-spatial locality) *)
  | Back of { ref_id : int; cycles : int }
      (** the prefetch was moved back [cycles] before the reference (MBP) *)

type plan = {
  classes : (int, cls) Hashtbl.t;  (** read ref id -> class *)
  ops : (int, op) Hashtbl.t;  (** lead ref id -> its op *)
  vectors_of_loop : (int, op list) Hashtbl.t;  (** loop id -> Vector ops *)
  pipelined_of_loop : (int, op list) Hashtbl.t;  (** loop id -> Pipelined ops *)
  stale : Stale.result;
}

(** A plan with every read Normal and no ops (BASE / sequential runs). *)
val empty : unit -> plan

val cls_of : plan -> int -> cls
val op_of : plan -> int -> op option
val vectors_at : plan -> int -> op list
val pipelined_at : plan -> int -> op list

type counts = {
  n_normal : int;
  n_lead : int;
  n_covered : int;
  n_bypass : int;
  n_vector : int;
  n_pipelined : int;
  n_back : int;
}

val count : plan -> counts
val pp_counts : Format.formatter -> counts -> unit
val pp : Format.formatter -> plan -> unit
