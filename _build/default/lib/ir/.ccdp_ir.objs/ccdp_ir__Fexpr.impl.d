lib/ir/fexpr.ml: Affine Float Format List Reference
