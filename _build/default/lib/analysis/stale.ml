open Ccdp_ir

type verdict = Clean | Stale of { writer_ref : int; writer_epoch : int }

type result = {
  verdicts : (int, verdict) Hashtbl.t;
  n_reads : int;
  n_stale : int;
  diags : string list;
}

let shares_structure_loop (a : Ref_info.t) (b : Ref_info.t) =
  List.exists
    (fun (l : Stmt.loop) ->
      List.exists
        (fun (m : Stmt.loop) -> m.Stmt.loop_id = l.Stmt.loop_id)
        b.Ref_info.outer_serial)
    a.Ref_info.outer_serial

(* May the write execute before the read observes its location?  Strictly
   earlier epochs always may; epochs sharing a serial structure loop reach
   each other through the back-edge regardless of their relative order
   (including a parallel epoch feeding itself across iterations). *)
let may_precede ~(writer : Ref_info.t) ~(reader : Ref_info.t) =
  writer.Ref_info.epoch < reader.Ref_info.epoch
  || shares_structure_loop writer reader

let straight_line (i : Ref_info.t) = i.Ref_info.outer_serial = []

let analyze region infos =
  let tracked name =
    let d = Region.decl region name in
    d.Array_decl.shared && d.Array_decl.dist <> Dist.Replicated
  in
  let writes =
    List.filter
      (fun (i : Ref_info.t) -> i.write && tracked i.ref_.Reference.array_name)
      infos
  in
  let reads = List.filter (fun (i : Ref_info.t) -> not i.write) infos in
  let diags = ref [] in
  List.iter
    (fun (i : Ref_info.t) ->
      let d = Region.decl region i.ref_.Reference.array_name in
      if
        i.Ref_info.write && d.Array_decl.shared
        && d.Array_decl.dist = Dist.Replicated
        && i.Ref_info.par_loop <> None
      then
        diags :=
          Printf.sprintf
            "write to replicated shared array %s in a parallel epoch (each PE \
             updates its own copy; coherence is not maintained for it)"
            d.Array_decl.name
          :: !diags)
    infos;
  let aligned_memo = Hashtbl.create 64 in
  let aligned ~reader ~writer =
    let key = (reader.Ref_info.ref_.Reference.id, writer.Ref_info.ref_.Reference.id) in
    match Hashtbl.find_opt aligned_memo key with
    | Some v -> v
    | None ->
        let v = Region.aligned region ~reader ~writer in
        Hashtbl.replace aligned_memo key v;
        v
  in
  (* Does a later aligned covering write mask [w] before [r] reads? Only in
     straight-line epoch sequences — loop back-edges re-expose the older
     write, so the kill is disabled as soon as a structure loop is
     involved. *)
  let masked ~(r : Ref_info.t) ~(w : Ref_info.t) exposed =
    straight_line r && straight_line w
    && List.exists
         (fun (k : Ref_info.t) ->
           straight_line k
           && k.Ref_info.epoch > w.Ref_info.epoch
           && k.Ref_info.epoch < r.Ref_info.epoch
           && aligned ~reader:r ~writer:k
           && Section.contains (Region.section_all_must region k) exposed)
         writes
  in
  let verdicts = Hashtbl.create (List.length reads) in
  let n_stale = ref 0 in
  List.iter
    (fun (r : Ref_info.t) ->
      let name = r.ref_.Reference.array_name in
      let v =
        if not (tracked name) then Clean
        else
          let r_section = Region.section_all region r in
          let witness =
            List.find_opt
              (fun (w : Ref_info.t) ->
                String.equal w.ref_.Reference.array_name name
                && may_precede ~writer:w ~reader:r
                &&
                let exposed =
                  Section.inter r_section (Region.section_all region w)
                in
                (not (Section.is_empty exposed))
                && (not (aligned ~reader:r ~writer:w))
                && not (masked ~r ~w exposed))
              writes
          in
          match witness with
          | None -> Clean
          | Some w ->
              incr n_stale;
              Stale
                {
                  writer_ref = w.ref_.Reference.id;
                  writer_epoch = w.Ref_info.epoch;
                }
      in
      Hashtbl.replace verdicts r.ref_.Reference.id v)
    reads;
  {
    verdicts;
    n_reads = List.length reads;
    n_stale = !n_stale;
    diags = List.rev !diags;
  }

let verdict t id =
  match Hashtbl.find_opt t.verdicts id with Some v -> v | None -> Clean

let stale_ids t =
  Hashtbl.fold
    (fun id v acc -> match v with Stale _ -> id :: acc | Clean -> acc)
    t.verdicts []
  |> List.sort compare

let pp_result ppf t =
  Format.fprintf ppf "stale reference analysis: %d of %d reads potentially stale"
    t.n_stale t.n_reads;
  List.iter (fun d -> Format.fprintf ppf "@,warning: %s" d) t.diags
