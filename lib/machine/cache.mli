(** Set-associative write-through data cache holding real values.

    The cache stores the floating-point payload of every resident line, not
    just tags: a stale line therefore returns the {e old value}, which is
    what makes coherence violations observable in the simulated numerics.
    Writes are write-through non-allocating (DEC 21064 / T3D behaviour):
    memory is always up to date, so epoch-boundary "memory update" is a
    no-op and only cached {e read} copies can go stale.

    Addresses are global word addresses; a line address is
    [addr / line_words]. *)

type t

val create : sets:int -> assoc:int -> line_words:int -> t

(** Convenience constructor from a machine config. *)
val of_config : Config.t -> t

val line_words : t -> int

(** [read t ~addr] returns the cached value, or [None] on a miss. Updates
    recency. *)
val read : t -> addr:int -> float option

(** Allocation-free hit probe: the data-array offset of the addressed word
    (pass it to {!data_at}), or [-1] on a miss. Updates recency on a hit,
    exactly as {!read} does. *)
val locate : t -> addr:int -> int

(** Payload word at an offset returned by {!locate}. Only valid until the
    next fill or invalidation. *)
val data_at : t -> int -> float

(** Hit test without recency update. *)
val probe_line : t -> line:int -> bool

(** Install a line (payload must have length [line_words]); evicts the
    least-recently-used way of the set. Returns the evicted line address, if
    a valid line was displaced. [tick] stamps the fill time for
    timestamp-based (HSCD) self-invalidation checks. [vers] stamps the
    per-word version tags of the payload (the staleness oracle compares
    them against memory's write versions); absent, the tags reset to 0.
    [state] is the line's protocol state ({!Ccdp_machine.Coherence} names
    the encoding; default [Coherence.shared]). *)
val fill :
  t -> ?tick:int -> ?vers:int array -> ?state:int -> line:int -> float array ->
  int option

(** Scratch-free fill for the simulator's per-access path: blits the line's
    [line_words] payload straight out of [src] starting at word [pos]
    (memory itself), avoiding the [Array.sub] copy {!fill} requires. [vers]
    are per-word version stamps read at the same [pos]; pass [[||]] to reset
    the stamps to 0. Same replacement policy as {!fill} (resident slot
    reused, else true LRU way); the displaced line is reported through
    {!last_evicted_line}/{!last_evicted_state} rather than a return value,
    keeping the common path allocation-free. *)
val fill_from :
  t -> ?tick:int -> ?state:int -> vers:int array -> line:int ->
  src:float array -> pos:int -> unit -> unit

(** Line displaced by the most recent {!fill}/{!fill_from} (-1 = none —
    the slot was empty or the line was already resident). Scratch state:
    read it immediately after the fill. *)
val last_evicted_line : t -> int

(** Protocol state the displaced line held (0 when nothing was displaced):
    a [Coherence.modified] victim owes the protocol a write-back. *)
val last_evicted_state : t -> int

(** Protocol state of a resident line, [Coherence.invalid] (0) on a miss.
    No recency update — snooping other PEs' caches must not perturb their
    LRU order. *)
val line_state : t -> line:int -> int

(** Set a resident line's protocol state (no-op on a miss, no recency
    update) — remote-initiated downgrades (M->S on a bus read, E->S on a
    sharing fetch). *)
val set_line_state : t -> line:int -> int -> unit

(** Fill-time stamp of a resident line ([None] on a miss) — the version
    check of hardware-supported compiler-directed schemes compares this
    against the array's last-write version. *)
val fill_tick : t -> line:int -> int option

(** Write-through update: if the addressed line is resident, patch the
    cached copy (memory is updated by the caller). [ver] additionally
    stamps the word's version tag with the write's version. *)
val update_if_present : t -> ?ver:int -> addr:int -> float -> unit

(** Version tag of a resident word without recency update ([None] on a
    miss). The staleness oracle asserts this is no older than the last
    write to the address that completed before the current epoch. *)
val word_version : t -> addr:int -> int option

val invalidate_line : t -> line:int -> unit
val invalidate_all : t -> unit

(** Number of valid lines (tests/introspection). *)
val valid_lines : t -> int

(** Cached value of an address without recency update ([None] if absent) —
    used by the coherence checker to inspect residual stale copies. *)
val peek : t -> addr:int -> float option
