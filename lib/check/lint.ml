open Ccdp_ir
open Ccdp_analysis
module Config = Ccdp_machine.Config

(* Prefetch lint suite: re-derive, from the machine model and the volume
   estimator, the constraints the scheduler is supposed to have honoured
   when it sized each prefetch operation — and flag every op that fails
   them. A plan straight out of Schedule.analyze trips nothing; a mutated
   or hand-edited plan does. *)

let ceil_div a b = (a + b - 1) / b

let check ~region ~(cfg : Config.t) ~(tuning : Schedule.tuning)
    ~(plan : Annot.plan) infos =
  let index = Ref_info.index infos in
  let vpg_max =
    match tuning.Schedule.vpg_max_words with
    | Some w -> w
    | None -> cfg.Config.cache_words / 2
  in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let ctx id =
    match Hashtbl.find_opt index id with
    | Some (i : Ref_info.t) -> (i.ref_.Reference.loc, Some i.Ref_info.epoch)
    | None -> (Loc.Synthetic, None)
  in
  (* covered members per lead, from the plan's own classification *)
  let covered_of : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun id cls ->
      match cls with
      | Annot.Covered lead ->
          let prev =
            match Hashtbl.find_opt covered_of lead with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace covered_of lead (prev @ [ id ])
      | Annot.Normal | Annot.Lead | Annot.Bypass -> ())
    plan.Annot.classes;
  (* CCDP-W005: a covered member's lines already arrive via its lead; its
     own op fetches them a second time *)
  Hashtbl.iter
    (fun id cls ->
      match cls with
      | Annot.Covered lead when Hashtbl.mem plan.Annot.ops id ->
          let loc, epoch = ctx id in
          add
            (Diag.makef Diag.Redundant_prefetch ~loc ?epoch ~ref_id:id
               "reference %d is covered by lead %d but also carries its own \
                prefetch operation"
               id lead)
      | _ -> ())
    plan.Annot.classes;
  let find_loop (i : Ref_info.t) loop_id =
    List.find_opt
      (fun (l : Stmt.loop) -> l.Stmt.loop_id = loop_id)
      (Ref_info.scope_loops i)
  in
  let decl_of name = Region.decl region name in
  (* the scheduler's per-visit environment: every scope loop other than
     the placement loop pinned to its lower bound, DOALLs restricted to
     one PE's share *)
  let pinned_env (i : Ref_info.t) (l : Stmt.loop) =
    let env = Region.env_of region i in
    let env =
      List.fold_left
        (fun env (m : Stmt.loop) ->
          if m.Stmt.loop_id = l.Stmt.loop_id then env
          else
            match List.assoc_opt m.Stmt.var env with
            | Some (lo, _, _) -> Iterspace.restrict env m ~by:(lo, lo, 1)
            | None -> env)
        env (Ref_info.scope_loops i)
    in
    match l.Stmt.kind with
    | Stmt.Doall _ -> (
        match
          Iterspace.restrict_pe env l ~n_pes:(Region.n_pes region) ~pe:0
        with
        | Some e -> e
        | None -> env)
    | Stmt.Serial -> env
  in
  let check_vector lead_id loop_id group =
    let loc, epoch = ctx lead_id in
    match Hashtbl.find_opt index lead_id with
    | None ->
        add
          (Diag.makef Diag.Vpg_missized ~ref_id:lead_id ~loop_id
             "vector prefetch names unknown reference %d" lead_id)
    | Some lead -> (
        match find_loop lead loop_id with
        | None ->
            add
              (Diag.makef Diag.Vpg_missized ~loc ?epoch ~ref_id:lead_id
                 ~loop_id
                 "vector prefetch is placed at loop %d, which does not \
                  enclose its lead"
                 loop_id)
        | Some l -> (
            let env = pinned_env lead l in
            if Iterspace.trip_count l env = None then
              add
                (Diag.makef Diag.Vpg_missized ~loc ?epoch ~ref_id:lead_id
                   ~loop_id
                   "vector prefetch on a loop with unknown trip count")
            else
              let members =
                List.filter_map (Hashtbl.find_opt index) group
              in
              let sec =
                List.fold_left
                  (fun acc (m : Ref_info.t) ->
                    Section.hull acc
                      (Section.of_subscripts m.ref_.Reference.subs env))
                  (Section.of_subscripts lead.ref_.Reference.subs env)
                  members
              in
              let name = lead.ref_.Reference.array_name in
              let conflicting =
                List.exists
                  (fun (w : Ref_info.t) ->
                    w.Ref_info.write
                    && String.equal w.ref_.Reference.array_name name
                    && List.exists
                         (fun (m : Stmt.loop) -> m.Stmt.loop_id = loop_id)
                         w.Ref_info.loops
                    && Section.overlaps (Region.section_all region w) sec)
                  infos
              in
              if conflicting then
                add
                  (Diag.makef Diag.Vpg_missized ~loc ?epoch ~ref_id:lead_id
                     ~loop_id
                     "vector prefetch of %s would pull the section before \
                      the loop's own writes to it"
                     name);
              match Section.size sec with
              | None ->
                  add
                    (Diag.makef Diag.Vpg_missized ~loc ?epoch ~ref_id:lead_id
                       ~loop_id "vector prefetch section of %s is unbounded"
                       name)
              | Some elems ->
                  let words = elems * (decl_of name).Array_decl.elem_words in
                  if words = 0 then
                    add
                      (Diag.makef Diag.Vpg_missized ~loc ?epoch
                         ~ref_id:lead_id ~loop_id
                         "vector prefetch section of %s is empty" name)
                  else if words > cfg.Config.cache_words then
                    add
                      (Diag.makef Diag.Dead_prefetch ~loc ?epoch
                         ~ref_id:lead_id ~loop_id
                         "vector prefetch pulls %d words of %s into a \
                          %d-word cache: lines are evicted before use"
                         words name cfg.Config.cache_words)
                  else if words > vpg_max then
                    add
                      (Diag.makef Diag.Vpg_missized ~loc ?epoch
                         ~ref_id:lead_id ~loop_id
                         "vector prefetch pulls %d words of %s, exceeding \
                          the %d-word vector-prefetch budget"
                         words name vpg_max)))
  in
  let check_pipelined lead_id loop_id distance every =
    let loc, epoch = ctx lead_id in
    match Hashtbl.find_opt index lead_id with
    | None ->
        add
          (Diag.makef Diag.Sp_missized ~ref_id:lead_id ~loop_id
             "pipelined prefetch names unknown reference %d" lead_id)
    | Some lead -> (
        match find_loop lead loop_id with
        | None ->
            add
              (Diag.makef Diag.Sp_missized ~loc ?epoch ~ref_id:lead_id
                 ~loop_id
                 "pipelined prefetch is placed at loop %d, which does not \
                  enclose its lead"
                 loop_id)
        | Some l ->
            let decl = decl_of lead.ref_.Reference.array_name in
            let stride =
              abs
                (Locality.stride_wrt decl lead.ref_ ~var:l.Stmt.var * l.Stmt.step)
            in
            let offset (i : Ref_info.t) = Locality.word_offset decl i.ref_ in
            let span =
              List.fold_left
                (fun acc id ->
                  match Hashtbl.find_opt index id with
                  | Some m -> max acc (abs (offset m - offset lead))
                  | None -> acc)
                0
                (match Hashtbl.find_opt covered_of lead_id with
                | Some l -> l
                | None -> [])
            in
            let d_span = if stride > 0 then ceil_div span stride else 0 in
            if distance < d_span then
              add
                (Diag.makef Diag.Sp_missized ~loc ?epoch ~ref_id:lead_id
                   ~loop_id
                   "prefetch distance %d is below the group span %d: covered \
                    members outrun their lead"
                   distance d_span);
            if distance < tuning.Schedule.sp_min || distance > tuning.Schedule.sp_max
            then
              add
                (Diag.makef Diag.Sp_missized ~loc ?epoch ~ref_id:lead_id
                   ~loop_id
                   "prefetch distance %d is outside the tuned range [%d, %d]"
                   distance tuning.Schedule.sp_min tuning.Schedule.sp_max);
            let expected_every =
              if stride = 0 then max_int
              else max 1 (cfg.Config.line_words / stride)
            in
            if every <> expected_every then
              add
                (Diag.makef Diag.Sp_missized ~loc ?epoch ~ref_id:lead_id
                   ~loop_id
                   "issue cadence %s does not match the reference's %d-word \
                    stride (expected %s)"
                   (if every = max_int then "once" else string_of_int every)
                   stride
                   (if expected_every = max_int then "once"
                    else string_of_int expected_every));
            let per_iter = Volume.words_read_per_iter ~decl_of l in
            if per_iter > 0 && distance * per_iter > cfg.Config.cache_words
            then
              add
                (Diag.makef Diag.Dead_prefetch ~loc ?epoch ~ref_id:lead_id
                   ~loop_id
                   "%d iterations at %d shared words each pass through a \
                    %d-word cache before the prefetched line is used"
                   distance per_iter cfg.Config.cache_words))
  in
  let check_back ref_id cycles =
    let loc, epoch = ctx ref_id in
    if cycles < tuning.Schedule.mbp_min_cycles then
      add
        (Diag.makef Diag.Dead_prefetch ~loc ?epoch ~ref_id
           "moved-back prefetch crosses only %d cycles (minimum %d): it \
            cannot hide any latency"
           cycles tuning.Schedule.mbp_min_cycles)
    else if cycles > tuning.Schedule.mbp_max_cycles then
      add
        (Diag.makef Diag.Dead_prefetch ~loc ?epoch ~ref_id
           "moved-back prefetch crosses %d cycles (maximum %d): the line is \
            evicted again before use"
           cycles tuning.Schedule.mbp_max_cycles)
  in
  Hashtbl.iter
    (fun lead_id op ->
      match op with
      | Annot.Vector { loop_id; group; _ } -> check_vector lead_id loop_id group
      | Annot.Pipelined { loop_id; distance; every; _ } ->
          check_pipelined lead_id loop_id distance every
      | Annot.Back { cycles; _ } -> check_back lead_id cycles)
    plan.Annot.ops;
  (* prefetch-queue pressure is a per-loop budget: the scheduler clamps
     each new distance to the remaining queue, so the sum of in-flight
     lines never exceeds it *)
  Hashtbl.iter
    (fun loop_id ops ->
      let in_flight =
        List.fold_left
          (fun acc op ->
            match op with
            | Annot.Pipelined { distance; _ } ->
                acc + (distance * cfg.Config.line_words)
            | Annot.Vector _ | Annot.Back _ -> acc)
          0 ops
      in
      if in_flight > cfg.Config.prefetch_queue_words then
        add
          (Diag.makef Diag.Sp_missized ~loop_id
             "pipelined prefetches of loop %d keep %d words in flight, \
              overflowing the %d-word prefetch queue"
             loop_id in_flight cfg.Config.prefetch_queue_words))
    plan.Annot.pipelined_of_loop;
  List.rev !diags
