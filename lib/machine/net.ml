type kind = Uniform | Torus3d | Mesh2d | Crossbar

let kind_name = function
  | Uniform -> "uniform"
  | Torus3d -> "torus3d"
  | Mesh2d -> "mesh2d"
  | Crossbar -> "crossbar"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "uniform" | "flat" -> Some Uniform
  | "torus3d" | "torus" | "t3d" -> Some Torus3d
  | "mesh2d" | "mesh" -> Some Mesh2d
  | "crossbar" | "xbar" -> Some Crossbar
  | _ -> None

let all_kinds = [ Uniform; Torus3d; Mesh2d; Crossbar ]
let kind_names = List.map kind_name all_kinds

(* 3-D torus geometry (the Cray T3D's interconnect). Near-cubic
   factorization: prefer nx >= ny >= nz with nx*ny*nz >= n, exact when n
   factors nicely (powers of two always do). *)
type torus = { nx : int; ny : int; nz : int }

let torus_of_pes n =
  if n <= 0 then invalid_arg "Net.torus_of_pes: n_pes <= 0";
  let cube = int_of_float (Float.round (Float.cbrt (float_of_int n))) in
  let best = ref (n, 1, 1) in
  let volume (a, b, c) = a * b * c in
  let badness (a, b, c) = (a - c) + abs (volume (a, b, c) - n) in
  for nz = 1 to cube + 1 do
    for ny = nz to n do
      if ny * nz <= n then begin
        let nx = (n + (ny * nz) - 1) / (ny * nz) in
        let cand = (max nx ny, ny, nz) in
        if volume cand >= n && badness cand < badness !best then best := cand
      end
    done
  done;
  let nx, ny, nz = !best in
  { nx; ny; nz }

let torus_coords t pe =
  let x = pe mod t.nx in
  let y = pe / t.nx mod t.ny in
  let z = pe / (t.nx * t.ny) in
  (x, y, z)

let ring_dist n a b =
  let d = abs (a - b) in
  min d (n - d)

let torus_hops t a b =
  let xa, ya, za = torus_coords t a and xb, yb, zb = torus_coords t b in
  ring_dist t.nx xa xb + ring_dist t.ny ya yb + ring_dist t.nz za zb

let torus_diameter t = (t.nx / 2) + (t.ny / 2) + (t.nz / 2)

(* Near-square factorization nx >= ny with nx * ny >= n: the 2-D analogue
   of the torus's near-cubic packing. *)
let mesh_dims n =
  let best = ref (n, 1) in
  let badness (a, b) = a - b + abs ((a * b) - n) in
  for b = 1 to n do
    if b * b <= n then begin
      let a = (n + b - 1) / b in
      if badness (a, b) < badness !best then best := (a, b)
    end
  done;
  !best

type geom =
  | Guniform
  | Gtorus of torus
  | Gmesh of int * int  (** nx, ny *)
  | Gxbar

type t = {
  kind : kind;
  n_pes : int;
  hop : int;
  cluster_pes : int;  (** PEs per coherence cluster; 1 = flat machine *)
  geom : geom;
  costs : int array;
      (** pre-folded [hop * hops src dst] matrix, row-major [src * n_pes +
          dst], with same-cluster pairs folded to 0 (intra-cluster
          transfers ride the island's local fabric); [[||]] when every
          pair costs zero (per-access lookups then skip the table
          entirely) *)
  link_busy : int array;  (** per destination port: next free cycle *)
  link_depth : int array;  (** transfers queued in the current busy burst *)
  mutable bus_booked : int;
      (** snoop bus: cycles of service demanded since the last barrier *)
  cbus_booked : int array;
      (** per-cluster snoop bus: cycles of service demanded since the last
          barrier on each island's local bus *)
}

let hops_geom geom a b =
  match geom with
  | Guniform -> 0
  | Gtorus torus -> torus_hops torus a b
  | Gmesh (nx, _) ->
      let ax = a mod nx and ay = a / nx in
      let bx = b mod nx and by = b / nx in
      abs (ax - bx) + abs (ay - by)
  | Gxbar -> if a = b then 0 else 1

let diameter_geom geom n_pes =
  match geom with
  | Guniform -> 0
  | Gtorus torus -> torus_diameter torus
  | Gmesh (nx, ny) -> nx - 1 + (ny - 1)
  | Gxbar -> if n_pes > 1 then 1 else 0

let create ?(hop = 0) ?(cluster_pes = 1) kind ~n_pes =
  if n_pes <= 0 then invalid_arg "Net.create: n_pes must be positive";
  if hop < 0 then invalid_arg "Net.create: hop must be >= 0";
  if cluster_pes <= 0 then invalid_arg "Net.create: cluster_pes must be positive";
  if n_pes mod cluster_pes <> 0 then
    invalid_arg "Net.create: cluster_pes must divide n_pes";
  let geom =
    match kind with
    | Uniform -> Guniform
    | Torus3d -> Gtorus (torus_of_pes n_pes)
    | Mesh2d ->
        let nx, ny = mesh_dims n_pes in
        Gmesh (nx, ny)
    | Crossbar -> Gxbar
  in
  let costs =
    if hop = 0 || kind = Uniform then [||]
    else
      Array.init (n_pes * n_pes) (fun i ->
          let src = i / n_pes and dst = i mod n_pes in
          if src / cluster_pes = dst / cluster_pes then 0
          else hop * hops_geom geom src dst)
  in
  {
    kind;
    n_pes;
    hop;
    cluster_pes;
    geom;
    costs;
    link_busy = Array.make n_pes 0;
    link_depth = Array.make n_pes 0;
    bus_booked = 0;
    cbus_booked = Array.make (n_pes / cluster_pes) 0;
  }

let kind t = t.kind
let n_pes t = t.n_pes
let hops t a b = hops_geom t.geom a b
let diameter t = diameter_geom t.geom t.n_pes
let cluster_pes t = t.cluster_pes
let n_clusters t = t.n_pes / t.cluster_pes
let cluster_of t pe = pe / t.cluster_pes
let same_cluster t a b = a / t.cluster_pes = b / t.cluster_pes

let cost t ~src ~dst =
  if t.costs == [||] then 0 else t.costs.((src * t.n_pes) + dst)

(* ------------------------------------------------------------------ *)
(* Link occupancy                                                      *)
(* ------------------------------------------------------------------ *)

(* The contention model charges queueing delay at the bottleneck link of a
   transfer — the destination memory port (every topology here funnels a
   remote read's final hop into the owner PE's node). A port stays busy for
   [hold] cycles per transfer; a transfer arriving while the port is busy
   waits until the pending burst drains. [depth] counts transfers in the
   current burst (including this one) — its maximum over a run is the peak
   link occupancy. Deterministic: state is a pure function of the acquire
   sequence, which both engines replay in identical order. *)

let acquire t ~dst ~now ~hold =
  let busy = t.link_busy.(dst) in
  if now >= busy then begin
    t.link_busy.(dst) <- now + hold;
    t.link_depth.(dst) <- 1;
    (0, 1)
  end
  else begin
    let depth = t.link_depth.(dst) + 1 in
    t.link_depth.(dst) <- depth;
    t.link_busy.(dst) <- busy + hold;
    (busy - now, depth)
  end

(* The snoop bus is one machine-wide resource every MSI/MESI coherence
   transaction (miss fetch, upgrade, write-allocate) serializes through.
   It cannot reuse the port model's next-free-cycle booking: the engines
   execute a parallel epoch PE-major (each PE's whole epoch replayed on its
   private clock), so a bus timestamped against one PE's finished wall
   clock would charge every later PE the earlier PEs' entire progression
   as queueing — a quadratic simulation artifact. Instead the bus is a
   throughput bottleneck: [bus_booked] accumulates the cycles of service
   demanded since the last barrier, and a transaction at local time [now]
   waits for whatever backlog the bus cannot have drained in the
   [now - since] cycles its PE has been past that barrier. Per-PE demand
   stays almost free (a PE's own elapsed time outruns its own holds); the
   backlog — and with it snooping's scaling wall — grows with every PE
   sharing the one bus. Deterministic and replay-order independent enough:
   both engines book the identical global sequence. Returns
   (delay, transactions queued ahead, including this one). *)
let acquire_bus t ~now ~since ~hold =
  let backlog = t.bus_booked - (now - since) in
  t.bus_booked <- t.bus_booked + hold;
  if backlog > 0 then (backlog, (backlog / hold) + 1) else (0, 1)

(* Same throughput-backlog model, one counter per coherence cluster: the
   Clustered mode's island snoops serialize on their island's local bus,
   never the machine-wide one, so congestion in one cluster cannot delay
   another. *)
let acquire_cluster_bus t ~cluster ~now ~since ~hold =
  let backlog = t.cbus_booked.(cluster) - (now - since) in
  t.cbus_booked.(cluster) <- t.cbus_booked.(cluster) + hold;
  if backlog > 0 then (backlog, (backlog / hold) + 1) else (0, 1)

let reset_links t =
  Array.fill t.link_busy 0 t.n_pes 0;
  Array.fill t.link_depth 0 t.n_pes 0;
  t.bus_booked <- 0;
  Array.fill t.cbus_booked 0 (Array.length t.cbus_booked) 0

let pp ppf t =
  (match t.geom with
  | Guniform -> Format.fprintf ppf "uniform (%d PEs)" t.n_pes
  | Gtorus torus ->
      Format.fprintf ppf "%dx%dx%d torus" torus.nx torus.ny torus.nz
  | Gmesh (nx, ny) -> Format.fprintf ppf "%dx%d mesh" nx ny
  | Gxbar -> Format.fprintf ppf "%d-port crossbar" t.n_pes);
  if t.cluster_pes > 1 then
    Format.fprintf ppf ", %d clusters of %d PEs" (n_clusters t) t.cluster_pes
