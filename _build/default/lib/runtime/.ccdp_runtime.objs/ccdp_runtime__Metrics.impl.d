lib/runtime/metrics.ml: Array Ccdp_machine Config Format Interp Memsys Stats
