test/test_epoch.ml: Alcotest Builder Ccdp_ir Ccdp_test_support Epoch List Program Stmt
