lib/machine/pe.mli: Cache Config Dtb_annex Prefetch_queue Stats
