lib/ir/epoch.mli: Format Stmt
