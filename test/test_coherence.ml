(* Protocol property tests for the hardware-coherence rivals.

   Random CRAFT programs (the fuzz generator's distribution, drawn from a
   qcheck-supplied seed) are executed to completion under MSI, MESI and
   the full-map directory, then the final protocol state is checked
   against the textbook invariants. The hardware modes never flush caches
   at barriers, so the end-of-run state is the accumulated result of the
   whole trace — a violated transition anywhere leaves a corrupt state
   these assertions see:

   - single writer: a line has at most one holder in M or E, and such a
     holder is the line's only holder (SWMR);
   - MSI never fills the clean-exclusive state;
   - directory exactness: the presence bitset of every line equals the
     set of caches actually holding it, and the dirty-owner register
     points at the unique M holder (or nobody);
   - write-back before ownership transfer: a protocol that migrated
     ownership without flushing the previous owner's dirty line leaves a
     cached word disagreeing with memory, so [stale_cached_words] must be
     zero and the staleness oracle silent;
   - random traces against the flat-memory reference: final shared-array
     contents must equal the one-PE sequential execution bit-for-bit.

   The clustered (CXL-island) mode gets its own deterministic micro-trace
   suite at the bottom — its island-scoped obligations (always-snoop,
   cross-island back-invalidation, sabotage witnessed) are directional
   and easier to pin one transition at a time than as end-state
   invariants. Note SWMR is deliberately NOT asserted island-wide there:
   prefetch-staged cross-homed lines may transiently alias island-homed
   words, which is exactly why the protocol's writes always snoop. *)

open Ccdp_test_support.Tutil
module Memsys = Ccdp_runtime.Memsys
module Interp = Ccdp_runtime.Interp
module Verify = Ccdp_runtime.Verify
module Addr_map = Ccdp_runtime.Addr_map
module Annot = Ccdp_analysis.Annot
module Config = Ccdp_machine.Config
module Coherence = Ccdp_machine.Coherence
module Stats = Ccdp_machine.Stats
module Gen = Ccdp_fuzz.Gen

let hw_modes = Memsys.[ Msi; Mesi; Directory ]

(* A desc is drawn from the fuzz generator's own distribution; qcheck
   only picks the PRNG seed, so shrinking is over seeds (fine — failures
   get reprinted with the full desc). *)
let desc_arb =
  QCheck.make
    ~print:(fun d -> Format.asprintf "%a" Gen.pp d)
    QCheck.Gen.(
      map
        (fun seed -> Gen.generate (Random.State.make [| seed; 0xC0DE |]))
        (int_bound 1_000_000))

let run_hw ?sabotage mode (d : Gen.desc) =
  let cfg = Config.of_kind d.Gen.net ~n_pes:d.Gen.n_pes in
  let program = Gen.build d in
  let r =
    Interp.run cfg ~oracle:true ?sabotage program ~plan:(Annot.empty ())
      ~mode ()
  in
  (cfg, program, r)

let n_lines cfg sys =
  (Addr_map.total_words (Memsys.map sys) + cfg.Config.line_words - 1)
  / cfg.Config.line_words

(* holders of [line] as (pe, state) pairs, invalid filtered out *)
let holders cfg sys ~line =
  let acc = ref [] in
  for pe = cfg.Config.n_pes - 1 downto 0 do
    let st = Memsys.line_state sys ~pe ~line in
    if st <> Coherence.invalid then acc := (pe, st) :: !acc
  done;
  !acc

let for_all_lines cfg sys p =
  let ok = ref true in
  for line = 0 to n_lines cfg sys - 1 do
    if not (p line (holders cfg sys ~line)) then ok := false
  done;
  !ok

let writers = List.filter (fun (_, st) -> st > Coherence.shared)

let prop_single_writer mode d =
  let cfg, _, r = run_hw mode d in
  for_all_lines cfg r.Interp.sys (fun _ hs ->
      match writers hs with
      | [] -> true
      | [ _ ] -> List.length hs = 1 (* SWMR: the writer is alone *)
      | _ :: _ :: _ -> false)

let prop_msi_no_exclusive d =
  let cfg, _, r = run_hw Memsys.Msi d in
  for_all_lines cfg r.Interp.sys (fun _ hs ->
      List.for_all (fun (_, st) -> st <> Coherence.exclusive) hs)

let prop_dir_presence_exact d =
  let cfg, _, r = run_hw Memsys.Directory d in
  for_all_lines cfg r.Interp.sys (fun line hs ->
      Memsys.dir_sharers r.Interp.sys ~line = List.map fst hs)

let prop_dir_owner_is_the_modified_holder d =
  let cfg, _, r = run_hw Memsys.Directory d in
  for_all_lines cfg r.Interp.sys (fun line hs ->
      let dirty = List.filter (fun (_, st) -> st = Coherence.modified) hs in
      match Memsys.dir_owner r.Interp.sys ~line with
      | -1 -> dirty = []
      | ow -> List.map fst dirty = [ ow ])

let prop_no_stale_copy mode d =
  let _, _, r = run_hw mode d in
  Memsys.stale_cached_words r.Interp.sys = 0
  && Memsys.oracle_violation_count r.Interp.sys = 0

let prop_matches_flat_reference mode d =
  let cfg, program, r = run_hw mode d in
  let seq =
    Interp.run
      { cfg with Config.n_pes = 1 }
      program ~plan:(Annot.empty ()) ~mode:Memsys.Seq ()
  in
  (Verify.compare_states ~expected:seq.Interp.sys ~got:r.Interp.sys program)
    .Verify.ok

let per_mode name prop =
  List.map
    (fun mode ->
      qcheck ~count:60
        (Printf.sprintf "%s (%s)" name (Memsys.mode_name mode))
        desc_arb (prop mode))
    hw_modes

let property_suite =
  per_mode "at most one writer per line, and a writer is alone"
    prop_single_writer
  @ [
      qcheck ~count:60 "MSI never holds clean-exclusive" desc_arb
        prop_msi_no_exclusive;
      qcheck ~count:60 "directory presence bits match the caches exactly"
        desc_arb prop_dir_presence_exact;
      qcheck ~count:60 "directory owner register names the unique M holder"
        desc_arb prop_dir_owner_is_the_modified_holder;
    ]
  @ per_mode "write-back precedes ownership transfer (no stale copy survives)"
      prop_no_stale_copy
  @ per_mode "random traces agree with the flat-memory reference"
      prop_matches_flat_reference

(* The qcheck properties are vacuous if the generated programs never
   actually share lines across PEs; this deterministic case pins that the
   invariant checker runs against real cross-PE sharing. *)
let sharing_cases =
  [
    case "tomcatv really exercises invalidations and upgrades" (fun () ->
        let w = Ccdp_workloads.Tomcatv.workload ~n:16 ~iters:1 in
        let cfg = Config.t3d ~n_pes:4 in
        let r =
          Interp.run cfg ~oracle:true
            (Ccdp_ir.Program.inline w.Ccdp_workloads.Workload.program)
            ~plan:(Annot.empty ()) ~mode:Memsys.Msi ()
        in
        check_true "invalidations seen"
          (r.Interp.stats.Stats.invalidations > 0);
        check_true "upgrades seen" (r.Interp.stats.Stats.upgrades > 0);
        check_int "no stale survivors" 0
          (Memsys.stale_cached_words r.Interp.sys));
    case "a fuzz corpus desc with writers has multi-PE sharing under DIR"
      (fun () ->
        (* fixed seed; assert some directory line ever records >1 sharer
           or an invalidation happened, so presence-exactness is not
           tested on single-holder states only *)
        let st = Random.State.make [| 7; 0xC0DE |] in
        let shared_seen = ref false in
        for _ = 1 to 40 do
          let d = Gen.generate st in
          let cfg, _, r = run_hw Memsys.Directory d in
          if
            r.Interp.stats.Stats.invalidations > 0
            || not
                 (for_all_lines cfg r.Interp.sys (fun _ hs ->
                      List.length hs <= 1))
          then shared_seen := true
        done;
        check_true "corpus exercises sharing" !shared_seen);
  ]

(* ------------------------------------------------------------------ *)
(* Clustered (CXL-style island) protocol                               *)
(* ------------------------------------------------------------------ *)

(* Deterministic micro-traces through the raw Memsys API on an 8-PE
   machine with two islands of 4 ({0..3} and {4..7}): column j of A is
   owned by PE j, so A[0,0] is homed in island 0. The protocol's two
   hardware obligations — a writer always snoops its own island, and a
   cross-island writer back-invalidates the home island — are each pinned
   directly, as is the sabotage that drops the latter being witnessed by
   the staleness oracle. *)
let clustered_setup ?sabotage () =
  let open Ccdp_ir in
  let module B = Builder in
  let b = B.create ~name:"clu" () in
  B.array_ b "A" [| 8; 8 |] ~dist:(Dist.block_along ~rank:2 ~dim:1);
  let p =
    B.finish b
      [ Stmt.Assign (B.ref_ b "A" [ B.A.c 0; B.A.c 0 ], Builder.F.const 0.0) ]
  in
  let cfg = Config.cxl_2x32 ~n_pes:8 in
  Alcotest.(check int) "islands of 4" 4 cfg.Config.cluster_pes;
  let sys =
    Memsys.create cfg ~oracle:true ?sabotage p ~plan:(Annot.empty ())
      Memsys.Clustered
  in
  let r id =
    Ccdp_ir.Reference.make ~id "A"
      [| Ccdp_ir.Affine.var "i"; Ccdp_ir.Affine.var "j" |]
  in
  (sys, r)

let clustered_cases =
  [
    case "a sibling's read is served by the island and counted" (fun () ->
        let sys, r = clustered_setup () in
        ignore (Memsys.read sys ~pe:1 (r 0) ~idx:[| 0; 0 |]);
        ignore (Memsys.read sys ~pe:1 (r 1) ~idx:[| 0; 0 |]);
        let s = Memsys.total_stats sys in
        check_int "both reads rode the island path" 2 s.Stats.cluster_hits;
        check_int "no inter-cluster traffic" 0 s.Stats.cluster_inter;
        check_true "second read hit the cache" (s.Stats.hits >= 1);
        let line = Memsys.line_of sys ~pe:1 "A" ~idx:[| 0; 0 |] in
        check_true "copy cached"
          (Memsys.line_state sys ~pe:1 ~line <> Coherence.invalid));
    case "an island write always snoops its own island" (fun () ->
        let sys, r = clustered_setup () in
        ignore (Memsys.read sys ~pe:1 (r 0) ~idx:[| 0; 0 |]);
        let line = Memsys.line_of sys ~pe:1 "A" ~idx:[| 0; 0 |] in
        (* PE 0 owns column 0; the write is island-local, yet must still
           invalidate the sibling's copy (a silent owned-write shortcut
           would leave PE 1 trusting a stale line) *)
        Memsys.write sys ~pe:0 (r 2) ~idx:[| 0; 0 |] 7.0;
        check_int "sibling invalidated" Coherence.invalid
          (Memsys.line_state sys ~pe:1 ~line);
        check_true "invalidation counted"
          ((Memsys.total_stats sys).Stats.invalidations >= 1);
        (* the refetch reads the write-through-fresh memory *)
        check_true "refetch is fresh"
          (Memsys.read sys ~pe:1 (r 3) ~idx:[| 0; 0 |] = 7.0);
        check_int "oracle silent" 0 (Memsys.oracle_violation_count sys));
    case "a cross-island write back-invalidates the home island" (fun () ->
        let sys, r = clustered_setup () in
        ignore (Memsys.read sys ~pe:1 (r 0) ~idx:[| 0; 0 |]);
        let line = Memsys.line_of sys ~pe:1 "A" ~idx:[| 0; 0 |] in
        (* PE 5 lives in island 1; A[0,0] is homed in island 0 *)
        Memsys.write sys ~pe:5 (r 2) ~idx:[| 0; 0 |] 9.0;
        check_int "home-island copy invalidated" Coherence.invalid
          (Memsys.line_state sys ~pe:1 ~line);
        let wline = Memsys.line_of sys ~pe:5 "A" ~idx:[| 0; 0 |] in
        check_int "cross-homed writes never allocate ownership"
          Coherence.invalid
          (Memsys.line_state sys ~pe:5 ~line:wline);
        check_true "refetch is fresh"
          (Memsys.read sys ~pe:1 (r 3) ~idx:[| 0; 0 |] = 9.0);
        check_int "oracle silent" 0 (Memsys.oracle_violation_count sys));
    case "dropping the back-invalidation is witnessed by the oracle"
      (fun () ->
        let sys, r =
          clustered_setup ~sabotage:Memsys.Drop_inter_cluster_invalidate ()
        in
        ignore (Memsys.read sys ~pe:1 (r 0) ~idx:[| 0; 0 |]);
        let line = Memsys.line_of sys ~pe:1 "A" ~idx:[| 0; 0 |] in
        Memsys.write sys ~pe:5 (r 2) ~idx:[| 0; 0 |] 9.0;
        check_true "fault fired" (Memsys.sabotage_fired sys);
        check_true "stale copy survives"
          (Memsys.line_state sys ~pe:1 ~line <> Coherence.invalid);
        (* the reader hits its stale copy; the writer is cross-island, so
           the oracle's same-cluster exemption must NOT apply *)
        ignore (Memsys.read sys ~pe:1 (r 3) ~idx:[| 0; 0 |]);
        check_true "oracle caught the stale hit"
          (Memsys.oracle_violation_count sys >= 1));
    case "same-island sabotage never fires (the fault is cross-island only)"
      (fun () ->
        let sys, r =
          clustered_setup ~sabotage:Memsys.Drop_inter_cluster_invalidate ()
        in
        ignore (Memsys.read sys ~pe:1 (r 0) ~idx:[| 0; 0 |]);
        Memsys.write sys ~pe:0 (r 2) ~idx:[| 0; 0 |] 7.0;
        check_true "island snoop unaffected"
          (not (Memsys.sabotage_fired sys));
        check_true "refetch is fresh"
          (Memsys.read sys ~pe:1 (r 3) ~idx:[| 0; 0 |] = 7.0);
        check_int "oracle silent" 0 (Memsys.oracle_violation_count sys));
  ]

(* End-to-end: random fuzz traces on a re-islanded machine (two islands
   when the width divides) under a plan compiled with the cluster-aware
   discharge — the oracle must stay silent and the final memory must
   match the flat sequential reference. *)
let prop_clustered_matches_flat d =
  let base = Config.of_kind d.Gen.net ~n_pes:d.Gen.n_pes in
  let cp =
    if d.Gen.n_pes > 1 && d.Gen.n_pes mod 2 = 0 then d.Gen.n_pes / 2 else 1
  in
  let cfg = { base with Config.cluster_pes = cp } in
  let program = Gen.build d in
  let compiled =
    Ccdp_core.Pipeline.compile cfg ~cluster_coherent:true program
  in
  let r =
    Interp.run cfg ~oracle:true compiled.Ccdp_core.Pipeline.program
      ~plan:compiled.Ccdp_core.Pipeline.plan ~mode:Memsys.Clustered ()
  in
  let seq =
    Interp.run
      { base with Config.n_pes = 1; Config.cluster_pes = 1 }
      program ~plan:(Annot.empty ()) ~mode:Memsys.Seq ()
  in
  Memsys.oracle_violation_count r.Interp.sys = 0
  && (Verify.compare_states ~expected:seq.Interp.sys ~got:r.Interp.sys program)
       .Verify.ok

let clustered_property =
  [
    qcheck ~count:60
      "random clustered traces keep the oracle silent and match the flat \
       reference"
      desc_arb prop_clustered_matches_flat;
  ]

let () =
  Alcotest.run "coherence"
    [
      ("protocol invariants", property_suite);
      ("sharing", sharing_cases);
      ("clustered protocol", clustered_cases);
      ("clustered traces", clustered_property);
    ]
