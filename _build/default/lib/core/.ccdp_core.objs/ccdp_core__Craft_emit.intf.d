lib/core/craft_emit.mli: Format Pipeline
