open Ccdp_ir
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

let valid_program () =
  let b = B.create ~name:"p" () in
  B.param b "n" 8;
  B.array_ b "A" [| 8; 8 |];
  B.proc b "f" ~formals:[ "k" ]
    [ B.assign b "A" [ B.A.v "k"; B.A.c 0 ] (F.const 1.0) ];
  let open B.A in
  B.finish b
    [
      B.doall b "j" (bc 0) (bc 7)
        [ B.for_ b "i" (bc 0) (bc 7) [ B.assign b "A" [ v "i"; v "j" ] (F.const 0.0) ] ];
      B.call "f" [ ("k", c 3) ];
    ]

let validation =
  [
    case "valid program validates" (fun () ->
        check_true "ok" (Program.validate (valid_program ()) = []));
    case "undeclared array is reported" (fun () ->
        let b = B.create ~name:"p" () in
        B.array_ b "A" [| 4 |];
        let bad = B.assign b "ZZ" [ B.A.c 0 ] (F.const 1.0) in
        check_true "raises"
          (try ignore (B.finish b [ bad ]); false with Invalid_argument m ->
             check_true "mentions ZZ" (String.length m > 0);
             true));
    case "subscript rank mismatch is reported" (fun () ->
        let b = B.create ~name:"p" () in
        B.array_ b "A" [| 4; 4 |];
        let bad = B.assign b "A" [ B.A.c 0 ] (F.const 1.0) in
        check_true "raises"
          (try ignore (B.finish b [ bad ]); false with Invalid_argument _ -> true));
    case "call to unknown procedure is reported" (fun () ->
        let b = B.create ~name:"p" () in
        check_true "raises"
          (try ignore (B.finish b [ B.call "nope" [] ]); false
           with Invalid_argument _ -> true));
    case "missing actual is reported" (fun () ->
        let b = B.create ~name:"p" () in
        B.array_ b "A" [| 4 |];
        B.proc b "f" ~formals:[ "k" ] [ B.assign b "A" [ B.A.v "k" ] (F.const 1.0) ];
        check_true "raises"
          (try ignore (B.finish b [ B.call "f" [] ]); false
           with Invalid_argument _ -> true));
    case "recursion is rejected" (fun () ->
        let b = B.create ~name:"p" () in
        B.proc b "f" ~formals:[] [ B.call "f" [] ];
        check_true "raises"
          (try ignore (B.finish b [ B.call "f" [] ]); false
           with Invalid_argument _ -> true));
    case "nested DOALL is rejected" (fun () ->
        let b = B.create ~name:"p" () in
        B.array_ b "A" [| 8; 8 |];
        let open B.A in
        let inner = B.doall b "i" (bc 0) (bc 7) [ B.assign b "A" [ v "i"; v "j" ] (F.const 1.0) ] in
        let outer = B.doall b "j" (bc 0) (bc 7) [ inner ] in
        check_true "raises"
          (try ignore (B.finish b [ outer ]); false with Invalid_argument _ -> true));
  ]

let inlining =
  [
    case "inline removes calls and substitutes actuals" (fun () ->
        let p = Program.inline (valid_program ()) in
        check_true "no procs" (p.Program.procs = []);
        let has_call =
          Stmt.fold
            (fun acc s -> acc || match s with Stmt.Call _ -> true | _ -> false)
            false p.Program.main
        in
        check_false "no calls" has_call;
        (* the inlined assignment must target row 3 *)
        let found = ref false in
        ignore
          (Stmt.fold_refs
             (fun () ~write (r : Reference.t) ->
               if write && Affine.to_const_opt r.subs.(0) = Some 3 then found := true)
             () p.Program.main);
        check_true "k := 3 substituted" !found);
    case "inline produces fresh, unique reference ids" (fun () ->
        let b = B.create ~name:"p" () in
        B.array_ b "A" [| 8 |];
        B.proc b "f" ~formals:[ "k" ]
          [ B.assign b "A" [ B.A.v "k" ] (F.const 1.0) ];
        let open B.A in
        let p = B.finish b [ B.call "f" [ ("k", c 1) ]; B.call "f" [ ("k", c 2) ] ] in
        let p = Program.inline p in
        check_true "valid after clone" (Program.validate p = []);
        let ids =
          Stmt.fold_refs (fun acc ~write:_ (r : Reference.t) -> r.id :: acc) [] p.Program.main
        in
        check_int "two sites" 2 (List.length (List.sort_uniq compare ids)));
    case "inline expands nested calls" (fun () ->
        let b = B.create ~name:"p" () in
        B.array_ b "A" [| 8 |];
        B.proc b "g" ~formals:[ "k" ] [ B.assign b "A" [ B.A.v "k" ] (F.const 2.0) ];
        B.proc b "f" ~formals:[ "k" ] [ B.call "g" [ ("k", B.A.v "k") ] ];
        let p = B.finish b [ B.call "f" [ ("k", B.A.c 4) ] ] in
        let p = Program.inline p in
        match p.Program.main with
        | [ Stmt.Assign (r, _) ] -> check_int "through two levels" 4 (Affine.const_part r.subs.(0))
        | _ -> Alcotest.fail "expected single assign");
    case "max ids reflect the program" (fun () ->
        let p = valid_program () in
        check_true "ref ids" (Program.max_ref_id p >= 0);
        check_true "loop ids" (Program.max_loop_id p >= 0));
    case "param lookup" (fun () ->
        check_int "n" 8 (Program.param (valid_program ()) "n");
        check_true "missing raises"
          (try ignore (Program.param (valid_program ()) "zz"); false
           with Invalid_argument _ -> true));
  ]

let () = Alcotest.run "program" [ ("validation", validation); ("inlining", inlining) ]
