test/test_emit.ml: Alcotest Ccdp_core Ccdp_machine Ccdp_test_support Ccdp_workloads List Str String Suite Workload
