type t = Known of Affine.t | Opaque of Affine.t | Unknown

let known e = Known e
let of_int n = Known (Affine.const n)
let of_var v = Known (Affine.var v)
let opaque e = Opaque e
let unknown = Unknown
let is_known = function Known _ -> true | Opaque _ | Unknown -> false

let eval b env =
  match b with
  | Known e -> Affine.eval_alist e env
  | Opaque _ | Unknown -> None

let eval_exec b lookup =
  match b with
  | Known e | Opaque e -> Affine.eval e lookup
  | Unknown -> invalid_arg "Bound.eval_exec: unknown bound is not executable"

let subst_env b env =
  match b with
  | Known e -> Known (Affine.subst_env e env)
  | Opaque e -> Opaque (Affine.subst_env e env)
  | Unknown -> Unknown

let equal a b =
  match (a, b) with
  | Known x, Known y | Opaque x, Opaque y -> Affine.equal x y
  | Unknown, Unknown -> true
  | (Known _ | Opaque _ | Unknown), _ -> false

let pp ppf = function
  | Known e -> Affine.pp ppf e
  | Opaque e -> Format.fprintf ppf "opaque(%a)" Affine.pp e
  | Unknown -> Format.pp_print_string ppf "?"
