lib/fuzz/shrink.mli: Gen
