(** Prefetch lint suite (CCDP-W005/W006/W007/W008).

    Re-derives the sizing constraints each prefetch operation must satisfy
    — vector sections within the VPG budget and free of same-loop write
    conflicts, pipelined distances covering the group span without
    overflowing the prefetch queue, moved-back windows inside the tuned
    cycle range — directly from {!Ccdp_machine.Config},
    {!Ccdp_analysis.Volume} and the section algebra, and flags operations
    that violate them. A plan produced by {!Ccdp_analysis.Schedule} trips
    nothing. *)

val check :
  region:Ccdp_analysis.Region.t ->
  cfg:Ccdp_machine.Config.t ->
  tuning:Ccdp_analysis.Schedule.tuning ->
  plan:Ccdp_analysis.Annot.plan ->
  Ccdp_analysis.Ref_info.t list ->
  Diag.t list
