test/test_array_dist.mli:
