examples/quickstart.mli:
