type cls = Normal | Lead | Covered of int | Bypass

type op =
  | Vector of { ref_id : int; loop_id : int; group : int list; inner : int option }
  | Pipelined of { ref_id : int; loop_id : int; distance : int; every : int }
  | Back of { ref_id : int; cycles : int }

type plan = {
  classes : (int, cls) Hashtbl.t;
  ops : (int, op) Hashtbl.t;
  vectors_of_loop : (int, op list) Hashtbl.t;
  pipelined_of_loop : (int, op list) Hashtbl.t;
  stale : Stale.result;
}

let empty () =
  {
    classes = Hashtbl.create 4;
    ops = Hashtbl.create 4;
    vectors_of_loop = Hashtbl.create 4;
    pipelined_of_loop = Hashtbl.create 4;
    stale =
      {
        Stale.verdicts = Hashtbl.create 4;
        n_reads = 0;
        n_stale = 0;
        diags = [];
      };
  }

let cls_of plan id =
  match Hashtbl.find_opt plan.classes id with Some c -> c | None -> Normal

let op_of plan id = Hashtbl.find_opt plan.ops id

let vectors_at plan loop_id =
  match Hashtbl.find_opt plan.vectors_of_loop loop_id with
  | Some l -> l
  | None -> []

let pipelined_at plan loop_id =
  match Hashtbl.find_opt plan.pipelined_of_loop loop_id with
  | Some l -> l
  | None -> []

type counts = {
  n_normal : int;
  n_lead : int;
  n_covered : int;
  n_bypass : int;
  n_vector : int;
  n_pipelined : int;
  n_back : int;
}

let count plan =
  let n_normal = ref 0 and n_lead = ref 0 and n_covered = ref 0 and n_bypass = ref 0 in
  Hashtbl.iter
    (fun _ c ->
      match c with
      | Normal -> incr n_normal
      | Lead -> incr n_lead
      | Covered _ -> incr n_covered
      | Bypass -> incr n_bypass)
    plan.classes;
  let n_vector = ref 0 and n_pipelined = ref 0 and n_back = ref 0 in
  Hashtbl.iter
    (fun _ op ->
      match op with
      | Vector _ -> incr n_vector
      | Pipelined _ -> incr n_pipelined
      | Back _ -> incr n_back)
    plan.ops;
  {
    n_normal = !n_normal;
    n_lead = !n_lead;
    n_covered = !n_covered;
    n_bypass = !n_bypass;
    n_vector = !n_vector;
    n_pipelined = !n_pipelined;
    n_back = !n_back;
  }

let pp_counts ppf c =
  Format.fprintf ppf
    "classes: %d normal, %d lead, %d covered, %d bypass; ops: %d vector, %d \
     pipelined, %d moved-back"
    c.n_normal c.n_lead c.n_covered c.n_bypass c.n_vector c.n_pipelined c.n_back

let pp_op ppf = function
  | Vector { ref_id; loop_id; group; inner } ->
      Format.fprintf ppf "ref %d: vector prefetch before loop %d (group %s)%s"
        ref_id loop_id
        (String.concat "," (List.map string_of_int group))
        (match inner with
        | Some l -> Printf.sprintf " sweeping inner loop %d" l
        | None -> "")
  | Pipelined { ref_id; loop_id; distance; every } ->
      Format.fprintf ppf
        "ref %d: software-pipelined in loop %d, %d iterations ahead%s" ref_id
        loop_id distance
        (if every > 1 then Printf.sprintf ", issued every %d iterations" every
         else "")
  | Back { ref_id; cycles } ->
      Format.fprintf ppf "ref %d: moved back %d cycles" ref_id cycles

let pp ppf plan =
  Format.fprintf ppf "@[<v>%a" pp_counts (count plan);
  let ops = Hashtbl.fold (fun _ op acc -> op :: acc) plan.ops [] in
  let key = function
    | Vector { ref_id; _ } | Pipelined { ref_id; _ } | Back { ref_id; _ } -> ref_id
  in
  List.iter
    (fun op -> Format.fprintf ppf "@,%a" pp_op op)
    (List.sort (fun a b -> compare (key a) (key b)) ops);
  Format.fprintf ppf "@]"
