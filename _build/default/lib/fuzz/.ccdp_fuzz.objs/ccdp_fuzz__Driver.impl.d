lib/fuzz/driver.ml: Ccdp_analysis Ccdp_core Ccdp_machine Ccdp_runtime Filename Format Gen Hashtbl List Option Printf Random Shrink Sys
