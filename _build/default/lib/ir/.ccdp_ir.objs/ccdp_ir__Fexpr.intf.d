lib/ir/fexpr.mli: Affine Format Reference
