lib/machine/machine.ml: Array Config Pe Prefetch_queue Stats String
