(** Workload type.

    A workload is a named IR program (with its problem-size parameters
    already bound). The four SPEC kernels of the paper's Section 5.3 live in
    their own modules; the registry over all of them is {!Suite}. *)

type t = {
  name : string;
  descr : string;
  program : Ccdp_ir.Program.t;
      (** not yet inlined; may contain procedures *)
}

val make : name:string -> descr:string -> Ccdp_ir.Program.t -> t
val find : t list -> string -> t
