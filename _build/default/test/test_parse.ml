open Ccdp_ir
open Ccdp_test_support.Tutil

let sample = {|
      PROGRAM DEMO
      PARAMETER (N = 16)
      REAL*8 A(16, 16)
CDIR$ SHARED A(:, :BLOCK)
      REAL*8 T(16, 16)
CDIR$ SHARED T(:, :CYCLIC)
      REAL*8 R(16)
CDIR$ REPLICATED R
      REAL*8 P(16, 16)
C     a comment line
CDIR$ DOSHARED (J) !ALIGNED(16)
      DO J = 1, 14
        DO I = 1, 14
          ACC = (A(i - 1, j) + A(i + 1, j))
          IF (i .LT. 8) THEN
            A(i, j) = (ACC*0.25)
          ELSE
            A(i, j) = (ACC*0.5)
          ENDIF
        ENDDO
      ENDDO
      DO K = 0, n - 2 !runtime
        T(k, 0) = (T(k + 1, 1) + 1)
      ENDDO
      END
|}

let parsed () = Craft_parse.program sample

let basics =
  [
    case "sample parses and validates" (fun () ->
        let p = parsed () in
        Alcotest.(check (list string)) "valid" [] (Program.validate p);
        check_true "name" (p.Program.name = "demo"));
    case "declarations carry distribution and sharing" (fun () ->
        let p = parsed () in
        let a = Program.find_array p "A" in
        check_true "block dim1" (Dist.distributed_dim a.Array_decl.dist = Some 1);
        let t = Program.find_array p "T" in
        (match t.Array_decl.dist with
        | Dist.Dims [| Dist.Degenerate; Dist.Cyclic |] -> ()
        | _ -> Alcotest.fail "cyclic expected");
        let r = Program.find_array p "R" in
        check_true "replicated" (r.Array_decl.dist = Dist.Replicated);
        let pv = Program.find_array p "P" in
        check_false "private" pv.Array_decl.shared);
    case "parameters are bound" (fun () ->
        check_int "n" 16 (Program.param (parsed ()) "n"));
    case "doshared binds to the following DO with its schedule" (fun () ->
        let p = parsed () in
        match p.Program.main with
        | Stmt.For l :: _ -> (
            match l.Stmt.kind with
            | Stmt.Doall (Stmt.Static_aligned 16) -> ()
            | _ -> Alcotest.fail "aligned doall expected")
        | _ -> Alcotest.fail "loop expected");
    case "runtime bounds become opaque" (fun () ->
        let p = parsed () in
        match List.rev p.Program.main with
        | Stmt.For l :: _ ->
            check_false "opaque" (Bound.is_known l.Stmt.hi);
            check_int "executable" 14 (Bound.eval_exec l.Stmt.hi (fun _ -> 16))
        | _ -> Alcotest.fail "loop expected");
    case "identifier resolution: induction vars vs scalars" (fun () ->
        let p = parsed () in
        let has_svar = ref false and has_ivar = ref false in
        let rec scan (e : Fexpr.t) =
          match e with
          | Fexpr.Svar "acc" -> has_svar := true
          | Fexpr.Ivar _ -> has_ivar := true
          | Fexpr.Unop (_, a) -> scan a
          | Fexpr.Binop (_, a, b) -> scan a; scan b
          | _ -> ()
        in
        ignore
          (Stmt.fold
             (fun () s ->
               match s with
               | Stmt.Assign (_, e) | Stmt.Sassign (_, e) -> scan e
               | _ -> ())
             () p.Program.main);
        check_true "scalar acc" !has_svar);
    case "the parsed program runs and verifies" (fun () ->
        let p = parsed () in
        let cfg = Ccdp_machine.Config.t3d ~n_pes:4 in
        let c = Ccdp_core.Pipeline.compile cfg p in
        let r =
          Ccdp_runtime.Interp.run cfg c.Ccdp_core.Pipeline.program
            ~plan:c.Ccdp_core.Pipeline.plan ~mode:Ccdp_runtime.Memsys.Ccdp ()
        in
        let v = Ccdp_runtime.Verify.against_sequential p ~init:(fun _ -> ()) r in
        check_true "verified" v.Ccdp_runtime.Verify.ok);
  ]

let errors =
  [
    case "undeclared array use is reported with a line number" (fun () ->
        let bad = "      PROGRAM X\n      ZZ(1) = 2.0\n      END\n" in
        check_true "raises"
          (try ignore (Craft_parse.program bad); false
           with Craft_parse.Error (ln, _, _) -> ln = 2));
    case "unbalanced DO is reported" (fun () ->
        let bad =
          "      PROGRAM X\n      REAL*8 A(4)\n      DO I = 0, 3\n      A(i) = 1.0\n      END\n"
        in
        check_true "raises"
          (try ignore (Craft_parse.program bad); false
           with Craft_parse.Error _ -> true));
    case "garbage characters are rejected" (fun () ->
        check_true "raises"
          (try ignore (Craft_parse.program "      PROGRAM X\n      # nope\n"); false
           with Craft_parse.Error _ -> true));
  ]

(* malformed inputs must name the offending line AND column (1-based, on
   the original line including indentation; column 0 = structural) *)
let position src =
  try
    ignore (Craft_parse.program src);
    Alcotest.fail "expected a parse error"
  with Craft_parse.Error (ln, col, _) -> (ln, col)

let error_positions =
  [
    case "unexpected character points at its column" (fun () ->
        (*                 123456789012345 *)
        let src = "      PROGRAM X\n      A = 1.0 # no\n      END\n" in
        check_int "line" 2 (fst (position src));
        check_int "col" 15 (snd (position src)));
    case "missing loop bound points at the stray comma" (fun () ->
        let src =
          "      PROGRAM X\n      REAL*8 A(4)\n      DO I = 0, , 3\n      \
           A(I) = 1.0\n      ENDDO\n      END\n"
        in
        check_int "line" 3 (fst (position src));
        check_int "col" 17 (snd (position src)));
    case "unknown CDIR$ directive points at the directive word" (fun () ->
        let src =
          "      PROGRAM X\n      REAL*8 A(4)\n      CDIR$ BOGUS A\n      END\n"
        in
        check_int "line" 3 (fst (position src));
        check_int "col" 13 (snd (position src)));
    case "unclosed subscript points at the token found instead" (fun () ->
        let src =
          "      PROGRAM X\n      REAL*8 A(4)\n      A(1 = 2.0\n      END\n"
        in
        check_int "line" 3 (fst (position src));
        check_int "col" 11 (snd (position src)));
    case "bad relational operator points at its dot" (fun () ->
        let src =
          "      PROGRAM X\n      REAL*8 A(4)\n      DO I = 0, 3\n      IF \
           (I .XX. 2) THEN\n      A(I) = 1.0\n      ENDIF\n      ENDDO\n      \
           END\n"
        in
        check_int "line" 4 (fst (position src));
        check_int "col" 13 (snd (position src)));
    case "structural failures use column 0" (fun () ->
        let src =
          "      PROGRAM X\n      REAL*8 A(4)\n      DO I = 0, 3\n      A(I) \
           = 1.0\n      END\n"
        in
        check_int "line" 3 (fst (position src));
        check_int "col" 0 (snd (position src)));
  ]

(* ---- round trip: emit -> parse -> identical analysis and execution ---- *)

let roundtrip_one name =
  let w = Ccdp_workloads.Workload.find (Ccdp_workloads.Suite.all ~n:16 ~iters:2 ()) name in
  let cfg = Ccdp_machine.Config.t3d ~n_pes:4 in
  let c1 = Ccdp_core.Pipeline.compile cfg w.Ccdp_workloads.Workload.program in
  let text = Ccdp_core.Craft_emit.to_string c1 in
  let p2 = Craft_parse.program text in
  let c2 = Ccdp_core.Pipeline.compile cfg p2 in
  let counts c = Ccdp_analysis.Annot.count c.Ccdp_core.Pipeline.plan in
  check_int (name ^ " stale count") c1.Ccdp_core.Pipeline.stale.Ccdp_analysis.Stale.n_stale
    c2.Ccdp_core.Pipeline.stale.Ccdp_analysis.Stale.n_stale;
  check_int (name ^ " leads") (counts c1).Ccdp_analysis.Annot.n_lead
    (counts c2).Ccdp_analysis.Annot.n_lead;
  check_int (name ^ " vector ops") (counts c1).Ccdp_analysis.Annot.n_vector
    (counts c2).Ccdp_analysis.Annot.n_vector;
  let run c =
    Ccdp_runtime.Interp.run cfg c.Ccdp_core.Pipeline.program
      ~plan:c.Ccdp_core.Pipeline.plan ~mode:Ccdp_runtime.Memsys.Ccdp ()
  in
  let r1 = run c1 and r2 = run c2 in
  check_int (name ^ " cycles agree") r1.Ccdp_runtime.Interp.cycles
    r2.Ccdp_runtime.Interp.cycles;
  let v =
    Ccdp_runtime.Verify.compare_states ~expected:r1.Ccdp_runtime.Interp.sys
      ~got:r2.Ccdp_runtime.Interp.sys c2.Ccdp_core.Pipeline.program
  in
  check_true (name ^ " same numerics") v.Ccdp_runtime.Verify.ok

let roundtrip =
  List.map
    (fun name -> case ("emit/parse round-trip: " ^ name) (fun () -> roundtrip_one name))
    [ "mxm"; "vpenta"; "tomcatv"; "jacobi"; "opaque"; "triad"; "transpose"; "dynamic" ]

let () =
  Alcotest.run "craft-parse"
    [
      ("basics", basics);
      ("errors", errors);
      ("error-positions", error_positions);
      ("round-trip", roundtrip);
    ]
