exception Error of int * int * string

(* column 0 marks a whole-line (structural) failure *)
let fail ln fmt = Printf.ksprintf (fun m -> raise (Error (ln, 0, m))) fmt
let failc ln col fmt = Printf.ksprintf (fun m -> raise (Error (ln, col, m))) fmt

(* ------------------------------------------------------------------ *)
(* Lexer (per line)                                                    *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string  (** lower-cased *)
  | INT of int
  | FLOAT of float
  | REL of Stmt.cmp
  | SYM of char  (** ( ) , = + - * / : ! $ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '$'

let is_digit c = c >= '0' && c <= '9'

(* tokens carry their 1-based start column on the source line *)
let lex_line ln s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := (t, !i + 1) :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '.' && !i + 3 < n && s.[!i + 3] = '.' then begin
      (* relational operator .XX. *)
      let op = String.uppercase_ascii (String.sub s (!i + 1) 2) in
      let rel =
        match op with
        | "LT" -> Stmt.Lt
        | "LE" -> Stmt.Le
        | "GT" -> Stmt.Gt
        | "GE" -> Stmt.Ge
        | "EQ" -> Stmt.Eq
        | "NE" -> Stmt.Ne
        | _ -> failc ln (!i + 1) "unknown relational operator .%s." op
      in
      push (REL rel);
      i := !i + 4
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let j = ref !i in
      let isfloat = ref false in
      while
        !j < n
        && (is_digit s.[!j]
           || (s.[!j] = '.' && not (!j + 3 < n && s.[!j + 3] = '.' && not (is_digit s.[!j + 1])))
           || s.[!j] = 'e' || s.[!j] = 'E'
           || ((s.[!j] = '+' || s.[!j] = '-')
              && !j > !i
              && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E')))
      do
        if not (is_digit s.[!j]) then isfloat := true;
        incr j
      done;
      let text = String.sub s !i (!j - !i) in
      (if !isfloat then
         match float_of_string_opt text with
         | Some f -> push (FLOAT f)
         | None -> failc ln (!i + 1) "bad number %s" text
       else
         match int_of_string_opt text with
         | Some k -> push (INT k)
         | None -> failc ln (!i + 1) "bad integer %s" text);
      i := !j
    end
    else if is_ident_char c && not (is_digit c) then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do incr j done;
      push (IDENT (String.sub s !i (!j - !i)));
      i := !j
    end
    else
      match c with
      | '(' | ')' | ',' | '=' | '+' | '-' | '*' | '/' | ':' | '!' ->
          push (SYM c);
          incr i
      | _ -> failc ln (!i + 1) "unexpected character %C" c
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Token-stream helpers                                                *)
(* ------------------------------------------------------------------ *)

type stream = {
  mutable toks : (token * int) list;
  ln : int;
  mutable last : int;  (** column of the most recently consumed token *)
}

let stream ln toks = { toks; ln; last = 1 }
let peek st = match st.toks with [] -> None | (t, _) :: _ -> Some t

(* column the next error should point at: the pending token, or (at end of
   line) the last consumed one *)
let col st = match st.toks with (_, c) :: _ -> c | [] -> st.last

let advance st =
  match st.toks with
  | [] -> ()
  | (_, c) :: r ->
      st.last <- c;
      st.toks <- r

let fail_at st fmt =
  Printf.ksprintf (fun m -> raise (Error (st.ln, col st, m))) fmt

let expect_sym st c =
  match peek st with
  | Some (SYM x) when x = c -> advance st
  | _ -> fail_at st "expected '%c'" c

let expect_ident st =
  match peek st with
  | Some (IDENT x) -> advance st; x
  | _ -> fail_at st "expected identifier"

let low = String.lowercase_ascii

let expect_kw st kw =
  match peek st with
  | Some (IDENT x) when low x = kw -> advance st
  | _ -> fail_at st "expected %s" (String.uppercase_ascii kw)

let eat_sym st c =
  match peek st with
  | Some (SYM x) when x = c -> advance st; true
  | _ -> false

let at_end st = st.toks = []

(* ------------------------------------------------------------------ *)
(* Expression parsing                                                  *)
(* ------------------------------------------------------------------ *)

(* affine integer expressions: +, -, INT*expr / expr*INT, parentheses *)
let rec parse_affine st =
  let rec term () =
    match peek st with
    | Some (INT k) -> (
        advance st;
        match peek st with
        | Some (SYM '*') ->
            advance st;
            Affine.scale k (atom ())
        | _ -> Affine.const k)
    | _ -> (
        let a = atom () in
        match peek st with
        | Some (SYM '*') -> (
            advance st;
            match peek st with
            | Some (INT k) -> advance st; Affine.scale k a
            | _ -> fail_at st "affine expressions multiply by constants only")
        | _ -> a)
  and atom () =
    match peek st with
    | Some (IDENT v) -> advance st; Affine.var (low v)
    | Some (INT k) -> advance st; Affine.const k
    | Some (SYM '(') ->
        advance st;
        let e = parse_affine st in
        expect_sym st ')';
        e
    | Some (SYM '-') -> advance st; Affine.neg (atom ())
    | _ -> fail_at st "expected affine expression"
  in
  let rec more acc =
    match peek st with
    | Some (SYM '+') -> advance st; more (Affine.add acc (term ()))
    | Some (SYM '-') -> advance st; more (Affine.sub acc (term ()))
    | _ -> acc
  in
  let first =
    match peek st with
    | Some (SYM '-') -> advance st; Affine.neg (term ())
    | _ -> term ()
  in
  more first

type env = {
  arrays : (string, string) Hashtbl.t;  (** lower-case -> declared name *)
  params : (string, unit) Hashtbl.t;
  mutable loop_vars : string list;
  b : Builder.t;
}

(* float expressions *)
let rec parse_fexpr env st =
  let rec primary () =
    match peek st with
    | Some (FLOAT f) -> advance st; Fexpr.Const f
    | Some (INT k) -> advance st; Fexpr.Const (float_of_int k)
    | Some (SYM '(') ->
        advance st;
        let e = parse_fexpr env st in
        expect_sym st ')';
        e
    | Some (SYM '-') -> (
        advance st;
        (* fold negated literals: "-0.125" is a constant, not an operation *)
        match peek st with
        | Some (FLOAT f) -> advance st; Fexpr.Const (-.f)
        | Some (INT k) -> advance st; Fexpr.Const (float_of_int (-k))
        | _ -> Fexpr.Unop (Fexpr.Neg, primary ()))
    | Some (IDENT f0) when low f0 = "sqrt" || low f0 = "abs" ->
        let f = low f0 in
        advance st;
        expect_sym st '(';
        let e = parse_fexpr env st in
        expect_sym st ')';
        Fexpr.Unop ((if f = "sqrt" then Fexpr.Sqrt else Fexpr.Abs), e)
    | Some (IDENT f0) when low f0 = "min" || low f0 = "max" ->
        let f = low f0 in
        advance st;
        expect_sym st '(';
        let a = parse_fexpr env st in
        expect_sym st ',';
        let b = parse_fexpr env st in
        expect_sym st ')';
        Fexpr.Binop ((if f = "min" then Fexpr.Min else Fexpr.Max), a, b)
    | Some (IDENT v0) -> (
        let vcol = col st in
        advance st;
        let v = low v0 in
        match (Hashtbl.find_opt env.arrays v, peek st) with
        | Some name, Some (SYM '(') ->
            advance st;
            let subs = ref [ parse_affine st ] in
            while eat_sym st ',' do
              subs := parse_affine st :: !subs
            done;
            expect_sym st ')';
            Fexpr.Ref
              (Builder.ref_ env.b
                 ~loc:(Loc.src ~line:st.ln ~col:vcol)
                 name (List.rev !subs))
        | None, Some (SYM '(') -> fail_at st "%s is not a declared array" v0
        | _ ->
            if List.mem v env.loop_vars || Hashtbl.mem env.params v then
              Fexpr.Ivar v
            else Fexpr.Svar v)
    | _ -> fail_at st "expected expression"
  in
  let rec factor acc =
    match peek st with
    | Some (SYM '*') ->
        advance st;
        factor (Fexpr.Binop (Fexpr.Mul, acc, primary ()))
    | Some (SYM '/') ->
        advance st;
        factor (Fexpr.Binop (Fexpr.Div, acc, primary ()))
    | _ -> acc
  in
  let rec sum acc =
    match peek st with
    | Some (SYM '+') ->
        advance st;
        sum (Fexpr.Binop (Fexpr.Add, acc, factor (primary ())))
    | Some (SYM '-') ->
        advance st;
        sum (Fexpr.Binop (Fexpr.Sub, acc, factor (primary ())))
    | _ -> acc
  in
  sum (factor (primary ()))

(* ------------------------------------------------------------------ *)
(* Line classification                                                 *)
(* ------------------------------------------------------------------ *)

type line =
  | Lprogram of string
  | Lparameter of string * int
  | Lreal of string * int list
  | Lshared of string * Dist.t
  | Ldoshared of Stmt.sched
  | Ldo of string * Bound.t * Bound.t * int * Loc.t
  | Lenddo
  | Lif of Stmt.cond
  | Lelse
  | Lendif
  | Lassign_arr of string * Affine.t list * Fexpr.t * Loc.t
  | Lassign_sca of string * Fexpr.t
  | Lcritical of string * Loc.t
  | Lendcritical
  | Lreduction of string * Loc.t
  | Lend

let parse_bound st =
  let e = parse_affine st in
  match peek st with
  | Some (SYM '!') -> (
      advance st;
      match peek st with
      | Some (IDENT t) when low t = "runtime" -> advance st; Bound.opaque e
      | _ -> fail_at st "expected 'runtime' after '!'")
  | _ -> Bound.known e

let parse_dist st name =
  expect_sym st '(';
  let dims = ref [] in
  let dim () =
    expect_sym st ':';
    match peek st with
    | Some (IDENT t) when low t = "block" -> (
        advance st;
        match peek st with
        | Some (SYM '(') ->
            advance st;
            let w = match peek st with
              | Some (INT w) -> advance st; w
              | _ -> fail_at st "expected block width"
            in
            expect_sym st ')';
            Dist.Block_cyclic w
        | _ -> Dist.Block)
    | Some (IDENT t) when low t = "cyclic" -> advance st; Dist.Cyclic
    | _ -> Dist.Degenerate
  in
  dims := [ dim () ];
  while eat_sym st ',' do
    dims := dim () :: !dims
  done;
  expect_sym st ')';
  ignore name;
  Dist.Dims (Array.of_list (List.rev !dims))

let parse_cond env st =
  expect_sym st '(';
  (* decide affine vs float comparison by attempting affine first on a
     snapshot; the attempt only stands when every variable is an induction
     variable or parameter (a scalar comparison is a float comparison) *)
  let snapshot = st.toks and snapshot_last = st.last in
  let structural e =
    List.for_all
      (fun v -> List.mem v env.loop_vars || Hashtbl.mem env.params v)
      (Affine.vars e)
  in
  let icond =
    try
      let a = parse_affine st in
      match peek st with
      | Some (REL op) ->
          advance st;
          let b = parse_affine st in
          (match peek st with
          | Some (SYM ')') when structural a && structural b ->
              advance st;
              Some (Stmt.Icond (op, a, b))
          | _ -> None)
      | _ -> None
    with Error _ -> None
  in
  match icond with
  | Some c -> c
  | None ->
      st.toks <- snapshot;
      st.last <- snapshot_last;
      let a = parse_fexpr env st in
      let op =
        match peek st with
        | Some (REL op) -> advance st; op
        | _ -> fail_at st "expected relational operator"
      in
      let b = parse_fexpr env st in
      expect_sym st ')';
      Stmt.Fcond (op, a, b)

let classify env ln toks =
  let st = stream ln toks in
  match peek st with
  | None -> None
  | Some (IDENT t) when low t = "program" ->
      advance st;
      Some (Lprogram (low (expect_ident st)))
  | Some (IDENT t) when low t = "parameter" ->
      advance st;
      expect_sym st '(';
      let name = low (expect_ident st) in
      expect_sym st '=';
      let v = match peek st with
        | Some (INT v) -> advance st; v
        | Some (SYM '-') -> (
            advance st;
            match peek st with
            | Some (INT v) -> advance st; -v
            | _ -> fail_at st "expected integer")
        | _ -> fail_at st "expected integer"
      in
      expect_sym st ')';
      Some (Lparameter (name, v))
  | Some (IDENT t) when low t = "real" ->
      advance st;
      (* REAL*8 NAME(d1, d2, ...) *)
      expect_sym st '*';
      (match peek st with
      | Some (INT 8) -> advance st
      | _ -> fail_at st "expected REAL*8");
      let name = expect_ident st in
      expect_sym st '(';
      let dims = ref [] in
      let dim () =
        match peek st with
        | Some (INT d) -> advance st; d
        | _ -> fail_at st "expected dimension"
      in
      dims := [ dim () ];
      while eat_sym st ',' do
        dims := dim () :: !dims
      done;
      expect_sym st ')';
      Some (Lreal (name, List.rev !dims))
  | Some (IDENT t) when low t = "cdir$" -> (
      advance st;
      match peek st with
      | Some (IDENT d) when low d = "shared" ->
          advance st;
          let name = expect_ident st in
          Some (Lshared (name, parse_dist st name))
      | Some (IDENT d) when low d = "replicated" ->
          advance st;
          let name = expect_ident st in
          Some (Lshared (name, Dist.Replicated))
      | Some (IDENT d) when low d = "doshared" ->
          advance st;
          expect_sym st '(';
          ignore (expect_ident st);
          expect_sym st ')';
          let sched =
            if eat_sym st '!' then
              match peek st with
              | Some (IDENT t) when low t = "block" -> advance st; Stmt.Static_block
              | Some (IDENT t) when low t = "cyclic" -> advance st; Stmt.Static_cyclic
              | Some (IDENT t) when low t = "aligned" ->
                  advance st;
                  expect_sym st '(';
                  let e = match peek st with
                    | Some (INT e) -> advance st; e
                    | _ -> fail_at st "expected extent"
                  in
                  expect_sym st ')';
                  Stmt.Static_aligned e
              | Some (IDENT t) when low t = "dynamic" ->
                  advance st;
                  expect_sym st '(';
                  let c = match peek st with
                    | Some (INT c) -> advance st; c
                    | _ -> fail_at st "expected chunk"
                  in
                  expect_sym st ')';
                  Stmt.Dynamic c
              | _ -> fail_at st "unknown schedule"
            else Stmt.Static_block
          in
          Some (Ldoshared sched)
      | Some (IDENT d) when low d = "critical" ->
          let kwcol = col st in
          advance st;
          expect_sym st '(';
          let lk = low (expect_ident st) in
          expect_sym st ')';
          Some (Lcritical (lk, Loc.src ~line:ln ~col:kwcol))
      | Some (IDENT d) when low d = "endcritical" ->
          advance st;
          Some Lendcritical
      | Some (IDENT d) when low d = "reduction" ->
          let kwcol = col st in
          advance st;
          expect_sym st '(';
          let sv = low (expect_ident st) in
          expect_sym st ')';
          Some (Lreduction (sv, Loc.src ~line:ln ~col:kwcol))
      | _ -> fail_at st "unknown CDIR$ directive")
  | Some (IDENT t) when low t = "do" ->
      let kwcol = col st in
      advance st;
      let var = low (expect_ident st) in
      expect_sym st '=';
      let lo = parse_bound st in
      expect_sym st ',';
      let hi = parse_bound st in
      let step = if eat_sym st ',' then (
          match peek st with
          | Some (INT s) -> advance st; s
          | _ -> fail_at st "expected step")
        else 1
      in
      Some (Ldo (var, lo, hi, step, Loc.src ~line:ln ~col:kwcol))
  | Some (IDENT t) when low t = "enddo" -> Some Lenddo
  | Some (IDENT t) when low t = "if" ->
      advance st;
      let c = parse_cond env st in
      expect_kw st "then";
      Some (Lif c)
  | Some (IDENT t) when low t = "else" -> Some Lelse
  | Some (IDENT t) when low t = "endif" -> Some Lendif
  | Some (IDENT t) when low t = "end" -> Some Lend
  | Some (IDENT v0) -> (
      let vcol = col st in
      advance st;
      let v = low v0 in
      match (Hashtbl.find_opt env.arrays v, peek st) with
      | Some name, Some (SYM '(') ->
          advance st;
          let subs = ref [ parse_affine st ] in
          while eat_sym st ',' do
            subs := parse_affine st :: !subs
          done;
          expect_sym st ')';
          expect_sym st '=';
          let e = parse_fexpr env st in
          if not (at_end st) then fail_at st "trailing tokens after assignment";
          Some (Lassign_arr (name, List.rev !subs, e, Loc.src ~line:ln ~col:vcol))
      | _, Some (SYM '=') ->
          advance st;
          let e = parse_fexpr env st in
          if not (at_end st) then fail_at st "trailing tokens after assignment";
          Some (Lassign_sca (v, e))
      | _ -> fail_at st "cannot parse statement starting with %s" v0)
  | Some _ -> fail_at st "cannot parse line"

(* ------------------------------------------------------------------ *)
(* Program assembly                                                    *)
(* ------------------------------------------------------------------ *)

(* a line is a comment when it starts with C but is neither a CDIR$
   directive nor a real statement: emit produces "C", "C     text" and
   "C$CCDP ..." comments *)
let is_comment s =
  String.length s > 0
  && (s.[0] = 'c' || s.[0] = 'C')
  && (String.length s = 1 || s.[1] = ' ' || s.[1] = '$' || s.[1] = '\t')
  && not
       (String.length s >= 5
       && String.lowercase_ascii (String.sub s 0 5) = "cdir$")

let starts_with_kw line kw =
  let l = String.lowercase_ascii line in
  let k = String.length kw in
  String.length l >= k
  && String.sub l 0 k = kw
  && (String.length l = k || not (is_ident_char l.[k]))

let program src =
  let raw = String.split_on_char '\n' src in
  let b = Builder.create ~name:"parsed" () in
  let env =
    { arrays = Hashtbl.create 16; params = Hashtbl.create 8; loop_vars = []; b }
  in
  (* first pass handles declarations only (they precede the body in the
     emit format); body lines are kept as raw tokens and classified during
     block assembly, when loop-variable scopes are known (identifier
     resolution into induction variables vs task scalars depends on it) *)
  let dists : (string, Dist.t) Hashtbl.t = Hashtbl.create 8 in
  let decls : (string * int list) list ref = ref [] in
  let body_lines : (int * (token * int) list) list ref = ref [] in
  let name = ref "parsed" in
  List.iteri
    (fun k line ->
      let ln = k + 1 in
      let trimmed = String.trim line in
      if trimmed = "" || is_comment trimmed then ()
      else if
        starts_with_kw trimmed "program" || starts_with_kw trimmed "parameter"
        || starts_with_kw trimmed "real"
        || (String.length trimmed >= 5
           && String.lowercase_ascii (String.sub trimmed 0 5) = "cdir$"
           &&
           let dir =
             String.trim (String.sub trimmed 5 (String.length trimmed - 5))
           in
           (* doshared/critical/reduction directives belong to the body *)
           not
             (starts_with_kw dir "doshared"
             || starts_with_kw dir "critical"
             || starts_with_kw dir "endcritical"
             || starts_with_kw dir "reduction"))
      then
        match classify env ln (lex_line ln line) with
        | Some (Lprogram n) -> name := n
        | Some (Lparameter (p, v)) ->
            Hashtbl.replace env.params p ();
            Builder.param b p v
        | Some (Lreal (nm, dims)) ->
            Hashtbl.replace env.arrays (low nm) nm;
            decls := (nm, dims) :: !decls
        | Some (Lshared (nm, d)) -> Hashtbl.replace dists (low nm) d
        | _ -> fail ln "expected a declaration"
      else body_lines := (ln, lex_line ln line) :: !body_lines)
    raw;
  (* declare arrays now that dists are known: a directive means shared *)
  List.iter
    (fun (nm, dims) ->
      match Hashtbl.find_opt dists (low nm) with
      | Some Dist.Replicated ->
          Builder.array_ b nm (Array.of_list dims) ~dist:Dist.replicated
      | Some d -> Builder.array_ b nm (Array.of_list dims) ~dist:d
      | None -> Builder.array_ b nm (Array.of_list dims) ~shared:false)
    (List.rev !decls);
  (* second pass over body lines: classify lazily and build the tree *)
  let lines = List.rev !body_lines in
  let rec parse_block lines ~pending_sched =
    match lines with
    | [] -> ([], [], None)
    | (ln, toks) :: rest -> (
        let item =
          match classify env ln toks with
          | Some i -> i
          | None -> fail ln "empty statement"
        in
        match item with
        | Lend | Lenddo | Lendif | Lelse | Lendcritical ->
            ([], rest, Some item)
        | Ldoshared sched -> parse_block rest ~pending_sched:(Some sched)
        | Ldo (var, lo, hi, step, loc) ->
            env.loop_vars <- var :: env.loop_vars;
            let body, rest', term = parse_block rest ~pending_sched:None in
            env.loop_vars <- List.tl env.loop_vars;
            (match term with
            | Some Lenddo -> ()
            | _ -> fail ln "DO without matching ENDDO");
            let kind =
              match pending_sched with
              | Some s -> Stmt.Doall s
              | None -> Stmt.Serial
            in
            let stmt = Builder.for_ b ~step ~kind ~loc var lo hi body in
            let more, rest'', term' = parse_block rest' ~pending_sched:None in
            (stmt :: more, rest'', term')
        | Lif c ->
            let tb, rest', term = parse_block rest ~pending_sched:None in
            let eb, rest'', term'' =
              match term with
              | Some Lelse ->
                  let eb, r, t = parse_block rest' ~pending_sched:None in
                  (eb, r, t)
              | other -> ([], rest', other)
            in
            (match term'' with
            | Some Lendif -> ()
            | _ -> fail ln "IF without matching ENDIF");
            let more, rest3, term3 = parse_block rest'' ~pending_sched:None in
            (Stmt.If (c, tb, eb) :: more, rest3, term3)
        | Lassign_arr (nm, subs, e, loc) ->
            let stmt = Builder.assign b ~loc nm subs e in
            let more, rest', term = parse_block rest ~pending_sched:None in
            (stmt :: more, rest', term)
        | Lassign_sca (v, e) ->
            let more, rest', term = parse_block rest ~pending_sched:None in
            (Stmt.Sassign (v, e) :: more, rest', term)
        | Lcritical (lk, loc) ->
            let body, rest', term = parse_block rest ~pending_sched:None in
            (match term with
            | Some Lendcritical -> ()
            | _ -> fail ln "CRITICAL without matching ENDCRITICAL");
            let stmt = Builder.critical ~loc lk body in
            let more, rest'', term' = parse_block rest' ~pending_sched:None in
            (stmt :: more, rest'', term')
        | Lreduction (sv, loc) -> (
            (* the directive names the reduction variable; the next line
               must be the recognized update s = s op e (or s = MIN(s, e) /
               MAX), whose operator the parser infers from the statement
               shape *)
            match rest with
            | [] -> fail ln "REDUCTION directive without a following update"
            | (ln2, toks2) :: rest2 -> (
                match classify env ln2 toks2 with
                | Some (Lassign_sca (v, Fexpr.Binop (op, Fexpr.Svar v', e)))
                  when String.equal v sv && String.equal v' sv ->
                    let stmt = Builder.reduce ~loc op sv e in
                    let more, rest', term =
                      parse_block rest2 ~pending_sched:None
                    in
                    (stmt :: more, rest', term)
                | _ ->
                    let s = String.uppercase_ascii sv in
                    fail ln2
                      "REDUCTION(%s) must be followed by an update of the \
                       form %s = %s op expr (or %s = MIN(%s, expr) / MAX)"
                      s s s s s))
        | Lprogram _ | Lparameter _ | Lreal _ | Lshared _ ->
            fail ln "declaration after the body began")
  in
  let stmts, _, term = parse_block lines ~pending_sched:None in
  (match term with
  | Some Lend | None -> ()
  | Some _ -> fail 0 "unbalanced block structure");
  let p = Builder.finish b stmts in
  { p with Program.name = !name }

let file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  program s
