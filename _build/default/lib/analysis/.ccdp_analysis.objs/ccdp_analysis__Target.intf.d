lib/analysis/target.mli: Annot Ccdp_ir Ccdp_machine Format Hashtbl Locality Ref_info Region Stale
