test/test_metrics.ml: Alcotest Ccdp_analysis Ccdp_core Ccdp_ir Ccdp_machine Ccdp_runtime Ccdp_test_support Ccdp_workloads Extras Format Interp List Memsys Metrics String Workload
