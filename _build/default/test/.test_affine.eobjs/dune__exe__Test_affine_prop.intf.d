test/test_affine_prop.mli:
