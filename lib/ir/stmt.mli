(** Statements: assignments, loops, conditionals, procedure calls.

    Loops carry the paper's execution-model annotations directly: a loop is
    either [Serial] or a [Doall] with a scheduling strategy. Scheduling
    matters twice — it determines which PE touches which iteration (stale
    analysis, Section 4.1) and which branch of the prefetch scheduling
    algorithm applies (Fig. 2 distinguishes static from dynamic DOALLs). *)

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type sched =
  | Static_block  (** contiguous chunk of iterations per PE *)
  | Static_aligned of int
      (** CRAFT [doshared] affinity scheduling: iteration value [i] runs on
          the PE owning index [i] of a block-distributed dimension of the
          given extent — the owner-computes mapping even when the loop
          range is a sub-range of the dimension *)
  | Static_cyclic  (** iteration [i] on PE [i mod p] *)
  | Dynamic of int  (** self-scheduled chunks of the given size *)

type loop_kind = Serial | Doall of sched

type cond =
  | Icond of cmp * Affine.t * Affine.t
      (** structural comparison on induction variables / parameters:
          statically analyzable *)
  | Fcond of cmp * Fexpr.t * Fexpr.t
      (** data-dependent comparison: analyses treat both branches as
          possible *)

type t =
  | Assign of Reference.t * Fexpr.t
  | Sassign of string * Fexpr.t  (** task-private scalar assignment *)
  | For of loop
  | If of cond * t list * t list
  | Call of string * (string * Affine.t) list
      (** procedure call; the alist maps formal names to affine actuals *)
  | Critical of critical
      (** lock-protected section: on each executing PE the body runs between
          an acquire and a release of the named lock. Acquire is a
          potential-staleness frontier (data written under the same lock by
          other PEs may have newer versions than any cached copy); release
          publishes the section's writes to the next acquirer. *)
  | Reduce of reduce
      (** recognized reduction update [s = s op e]: each PE accumulates a
          task-private partial; partials are combined PE-major and broadcast
          at the enclosing DOALL's barrier *)

and critical = { lock : string; cbody : t list; cloc : Loc.t }

and reduce = {
  rop : Fexpr.binop;
  rvar : string;
  rexpr : Fexpr.t;  (** must not read [rvar] *)
  rloc : Loc.t;
}

and loop = {
  loop_id : int;
  var : string;
  lo : Bound.t;
  hi : Bound.t;
  step : int;
  kind : loop_kind;
  body : t list;
  loc : Loc.t;  (** span of the loop header; {!Loc.Synthetic} when built *)
}

val eval_cmp : cmp -> int -> int -> bool
val eval_fcmp : cmp -> float -> float -> bool

(** All array reads performed by one statement, not descending into nested
    loops/ifs/calls. For [Assign], subscript evaluation itself performs no
    array reads (subscripts are affine), so this is exactly the RHS reads. *)
val direct_reads : t -> Reference.t list

(** The written reference of an [Assign], if any. *)
val direct_write : t -> Reference.t option

(** Fold over every statement in a statement list, recursively (pre-order),
    including loop bodies, both branches of ifs, but not callee bodies. *)
val fold : ('a -> t -> 'a) -> 'a -> t list -> 'a

(** Fold over every reference (with write flag), recursively. *)
val fold_refs : ('a -> write:bool -> Reference.t -> 'a) -> 'a -> t list -> 'a

(** Substitute affine expressions for variables everywhere (inlining). *)
val subst_env : t -> (string * Affine.t) list -> t

(** Re-key every reference id (cloning call sites for context sensitivity). *)
val map_ref_ids : (int -> int) -> t -> t

(** Re-key every loop id. *)
val map_loop_ids : (int -> int) -> t -> t

(** Arithmetic-operation count of the statement itself (not iterated). *)
val direct_flops : t -> int

val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
