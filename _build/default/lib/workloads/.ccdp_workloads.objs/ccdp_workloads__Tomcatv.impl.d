lib/workloads/tomcatv.ml: Builder Ccdp_ir Dist List Printf Stmt Workload
