examples/matrix_multiply.mli:
