test/test_locality.ml: Affine Alcotest Array_decl Builder Ccdp_analysis Ccdp_ir Ccdp_test_support Epoch Fexpr List Locality Program Ref_info Reference
