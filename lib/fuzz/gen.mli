(** Random CRAFT program generation for the differential soundness fuzzer.

    Programs are drawn as first-order {e descriptions} — epoch sequences of
    DOALL/serial loops over shared distributed arrays with affine (and
    runtime-opaque) subscript/bound structure — then lowered to {!build}able
    IR. The description is the currency of {!Shrink}: it stays valid under
    every shrinking step.

    The generated space is race-free by construction, mirroring the paper's
    epoch model (no dependences between concurrent tasks of one epoch):
    within a parallel epoch each array is either only read or only written,
    and every write of a task lands in that task's own DOALL column. All
    constants are small dyadic rationals, so floating-point results are
    exact and differential comparison against sequential execution needs no
    tolerance. *)

type sched = Block | Aligned | Cyclic | Dynamic of int

type stmt_desc = {
  dst : int;  (** written array, index into {!array_names} *)
  doi : int;  (** write row offset, -1..1 (active only with [lo1]) *)
  reads : (int * int * int) list;  (** (array, row offset, col offset) *)
  guarded : bool;  (** wrap in a structural IF (paper Fig. 2 case 5) *)
}

(** Reduction operators the generator draws — commutative-associative
    only: Add stays exact over the generated dyadics, Min/Max are
    order-independent outright, so the PE-major barrier merge is bit-equal
    to sequential evaluation in any contribution order. *)
type rop = Radd | Rmin | Rmax

type epoch_desc =
  | Par of {
      sched : sched;
      lo1 : bool;  (** iterate 1..n-2 (enables ±1 stencil offsets) *)
      opaque_hi : bool;  (** DOALL upper bound opaque to the analyses *)
      stmts : stmt_desc list;
    }
  | Sweep of { src : int; col : int; dst : int }
      (** serial epoch: scalar reduction over one column, result written to
          one element *)
  | Lock of {
      sched : sched;  (** Block or Cyclic (varies PE contribution order) *)
      src : int;
      dst : int;  (** forced distinct from [src] by sanitization *)
      col : int;
      col2 : int;
      fused : bool;  (** both accumulator cells under one lock *)
    }
      (** parallel epoch where every task folds a column entry into two
          fixed accumulator cells inside critical sections: the cross-PE
          conflict is discharged by lock domination and the in-critical
          accumulator reads carry the acquire-frontier staleness
          obligation *)
  | Red of { sched : sched; op : rop; src : int; dst : int; seed : bool }
      (** parallel epoch with a recognized scalar reduction over the whole
          source array, consumed by a serial write; [seed] binds the
          scalar before the DOALL *)

type desc = {
  n : int;  (** array edge *)
  dist_dim : int;  (** distributed dimension, 0 or 1 *)
  n_pes : int;
  net : Ccdp_machine.Net.kind;  (** interconnect distance model *)
  pclean : bool;  (** also prefetch clean references (future-work ext.) *)
  epochs : epoch_desc list;
  wrap : bool;  (** wrap the epoch sequence in a 2-iteration serial loop *)
}

val array_names : string list

(** Draw one description from a deterministic PRNG state. *)
val generate : Random.State.t -> desc

(** Lower a description to a validated program (race-freedom enforced:
    reads of arrays the same parallel epoch writes are dropped). *)
val build : desc -> Ccdp_ir.Program.t

(** Full validity of a description: descriptor sanity (array indices,
    stencil offsets, sweep columns and the edge within range), structural
    well-formedness of the lowered program ({!Ccdp_ir.Program.validate}),
    and static subscript bounds — every reference whose subscript range
    resolves under its loop environment must stay inside its array's
    extents. Everything {!generate} draws and every {!Shrink} candidate of
    a valid description satisfies this; hand-built descriptions (test
    fixtures, reproducers edited by hand) are checked before use. *)
val validate : desc -> (unit, string) result

val pp : Format.formatter -> desc -> unit
