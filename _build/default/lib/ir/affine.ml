type t = {
  const : int;
  terms : (string * int) list; (* sorted by var, coefficients non-zero *)
}

let normalize terms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, c) ->
      let prev = try Hashtbl.find tbl v with Not_found -> 0 in
      Hashtbl.replace tbl v (prev + c))
    terms;
  Hashtbl.fold (fun v c acc -> if c = 0 then acc else (v, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let of_terms const terms = { const; terms = normalize terms }
let const c = { const = c; terms = [] }
let zero = const 0
let one = const 1
let var v = { const = 0; terms = [ (v, 1) ] }
let term c v = of_terms 0 [ (v, c) ]

let add a b = of_terms (a.const + b.const) (a.terms @ b.terms)

let scale k e =
  if k = 0 then zero
  else { const = k * e.const; terms = List.map (fun (v, c) -> (v, k * c)) e.terms }

let neg e = scale (-1) e
let sub a b = add a (neg b)
let const_part e = e.const
let coeff e v = try List.assoc v e.terms with Not_found -> 0
let vars e = List.map fst e.terms
let terms e = e.terms
let is_const e = e.terms = []
let to_const_opt e = if is_const e then Some e.const else None

let subst e v by =
  let c = coeff e v in
  if c = 0 then e
  else
    let without = { e with terms = List.filter (fun (w, _) -> w <> v) e.terms } in
    add without (scale c by)

let subst_env e env = List.fold_left (fun acc (v, by) -> subst acc v by) e env

let eval e lookup =
  List.fold_left (fun acc (v, c) -> acc + (c * lookup v)) e.const e.terms

let eval_alist e alist =
  try Some (eval e (fun v -> List.assoc v alist)) with Not_found -> None

let equal a b = a.const = b.const && a.terms = b.terms

let compare a b =
  let c = Stdlib.compare a.terms b.terms in
  if c <> 0 then c else Stdlib.compare a.const b.const

let uniformly_generated a b = a.terms = b.terms

let offset_between a b =
  if uniformly_generated a b then Some (b.const - a.const) else None

let pp ppf e =
  let pp_term first ppf (v, c) =
    if c = 1 then Format.fprintf ppf (if first then "%s" else " + %s") v
    else if c = -1 then Format.fprintf ppf (if first then "-%s" else " - %s") v
    else if c >= 0 then Format.fprintf ppf (if first then "%d*%s" else " + %d*%s") c v
    else Format.fprintf ppf (if first then "-%d*%s" else " - %d*%s") (-c) v
  in
  match e.terms with
  | [] -> Format.fprintf ppf "%d" e.const
  | t0 :: rest ->
      pp_term true ppf t0;
      List.iter (pp_term false ppf) rest;
      if e.const > 0 then Format.fprintf ppf " + %d" e.const
      else if e.const < 0 then Format.fprintf ppf " - %d" (-e.const)

let to_string e = Format.asprintf "%a" pp e
