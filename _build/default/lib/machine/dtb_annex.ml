type t = { entries : int; mutable lru : int list (* most recent first *) }

let create ~entries =
  if entries <= 0 then invalid_arg "Dtb_annex.create";
  { entries; lru = [] }

let touch t pe =
  let hit = List.mem pe t.lru in
  let without = List.filter (fun p -> p <> pe) t.lru in
  let lru = pe :: without in
  t.lru <-
    (if List.length lru > t.entries then List.filteri (fun i _ -> i < t.entries) lru
     else lru);
  hit

let clear t = t.lru <- []
let resident t = t.lru
