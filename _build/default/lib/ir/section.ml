type dim = { lo : int; hi : int; step : int }
type t = Empty | Whole | Dims of dim array

let dim ~lo ~hi ~step =
  if step <= 0 then invalid_arg "Section.dim: step <= 0";
  if lo > hi then invalid_arg "Section.dim: lo > hi";
  let hi = lo + ((hi - lo) / step * step) in
  if lo = hi then { lo; hi; step = 1 } else { lo; hi; step }

let point idx = Dims (Array.map (fun i -> dim ~lo:i ~hi:i ~step:1) idx)

let box ~lo ~hi =
  if Array.length lo <> Array.length hi then invalid_arg "Section.box: rank mismatch";
  let inverted = ref false in
  Array.iteri (fun d l -> if l > hi.(d) then inverted := true) lo;
  if !inverted then Empty
  else Dims (Array.mapi (fun d l -> dim ~lo:l ~hi:hi.(d) ~step:1) lo)

let of_dims dims = Dims (Array.of_list dims)
let whole = Whole
let empty = Empty
let is_empty s = s = Empty

let size = function
  | Empty -> Some 0
  | Whole -> None
  | Dims dims ->
      Some (Array.fold_left (fun acc d -> acc * (((d.hi - d.lo) / d.step) + 1)) 1 dims)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Extended Euclid: returns (g, x, y) with a*x + b*y = g. *)
let rec egcd a b = if b = 0 then (a, 1, 0) else
  let g, x, y = egcd b (a mod b) in
  (g, y, x - (a / b) * y)

(* Exact emptiness test for the intersection of two arithmetic
   progressions. Finds, via the Chinese remainder theorem, the smallest
   common value >= max(lo1, lo2) and checks it against min(hi1, hi2). *)
let dims_overlap d1 d2 =
  let lo = max d1.lo d2.lo and hi = min d1.hi d2.hi in
  if lo > hi then false
  else
    let g, a, _ = egcd d1.step d2.step in
    let diff = d2.lo - d1.lo in
    if diff mod g <> 0 then false
    else
      let lcm = d1.step / g * d2.step in
      (* x = lo1 + k*s1 with k = (diff/g)*a  (mod s2/g) solves both congruences *)
      let m2 = d2.step / g in
      let k = diff / g * a mod m2 in
      let k = if k < 0 then k + m2 else k in
      let x0 = d1.lo + (k * d1.step) in
      (* smallest solution >= lo, stepping by lcm *)
      let x =
        if x0 >= lo then x0 - ((x0 - lo) / lcm * lcm)
        else x0 + ((lo - x0 + lcm - 1) / lcm * lcm)
      in
      x <= hi

let overlaps s1 s2 =
  match (s1, s2) with
  | Empty, _ | _, Empty -> false
  | Whole, _ | _, Whole -> true
  | Dims a, Dims b ->
      Array.length a = Array.length b
      && (let ok = ref true in
          Array.iteri (fun i d -> if not (dims_overlap d b.(i)) then ok := false) a;
          !ok)

(* Exact intersection of two arithmetic progressions: either empty or a
   progression with step lcm(s1, s2) starting at the CRT-aligned smallest
   common element. *)
let dim_inter d1 d2 =
  let lo = max d1.lo d2.lo and hi = min d1.hi d2.hi in
  if lo > hi then None
  else
    let g, a, _ = egcd d1.step d2.step in
    let diff = d2.lo - d1.lo in
    if diff mod g <> 0 then None
    else
      let lcm = d1.step / g * d2.step in
      let m2 = d2.step / g in
      let k = diff / g * a mod m2 in
      let k = if k < 0 then k + m2 else k in
      let x0 = d1.lo + (k * d1.step) in
      let x =
        if x0 >= lo then x0 - ((x0 - lo) / lcm * lcm)
        else x0 + ((lo - x0 + lcm - 1) / lcm * lcm)
      in
      if x > hi then None else Some (dim ~lo:x ~hi ~step:lcm)

let inter s1 s2 =
  match (s1, s2) with
  | Empty, _ | _, Empty -> Empty
  | Whole, s | s, Whole -> s
  | Dims a, Dims b ->
      if Array.length a <> Array.length b then Empty
      else
        let exception Disjoint in
        (try Dims (Array.mapi (fun i d ->
             match dim_inter d b.(i) with
             | Some r -> r
             | None -> raise Disjoint) a)
         with Disjoint -> Empty)

let dim_contains outer inner =
  if inner.lo = inner.hi then
    (* singletons normalize to step 1; only membership matters *)
    inner.lo >= outer.lo && inner.lo <= outer.hi
    && (inner.lo - outer.lo) mod outer.step = 0
  else
    inner.lo >= outer.lo && inner.hi <= outer.hi
    && (inner.lo - outer.lo) mod outer.step = 0
    && inner.step mod outer.step = 0

let contains outer inner =
  match (outer, inner) with
  | _, Empty -> true
  | Whole, _ -> true
  | Empty, _ -> false
  | Dims _, Whole -> false
  | Dims a, Dims b ->
      Array.length a = Array.length b
      && (let ok = ref true in
          Array.iteri (fun i d -> if not (dim_contains d b.(i)) then ok := false) a;
          !ok)

let dim_hull d1 d2 =
  let lo = min d1.lo d2.lo and hi = max d1.hi d2.hi in
  let g = gcd (gcd d1.step d2.step) (abs (d1.lo - d2.lo)) in
  let step = if g = 0 then 1 else g in
  dim ~lo ~hi ~step

let hull s1 s2 =
  match (s1, s2) with
  | Empty, s | s, Empty -> s
  | Whole, _ | _, Whole -> Whole
  | Dims a, Dims b ->
      if Array.length a <> Array.length b then Whole
      else Dims (Array.mapi (fun i d -> dim_hull d b.(i)) a)

let mem s idx =
  match s with
  | Empty -> false
  | Whole -> true
  | Dims dims ->
      Array.length dims = Array.length idx
      && (let ok = ref true in
          Array.iteri
            (fun i d ->
              let x = idx.(i) in
              if not (x >= d.lo && x <= d.hi && (x - d.lo) mod d.step = 0) then
                ok := false)
            dims;
          !ok)

let equal a b = a = b

let pp_dim ppf d =
  if d.lo = d.hi then Format.fprintf ppf "%d" d.lo
  else if d.step = 1 then Format.fprintf ppf "%d:%d" d.lo d.hi
  else Format.fprintf ppf "%d:%d:%d" d.lo d.hi d.step

let pp ppf = function
  | Empty -> Format.pp_print_string ppf "{}"
  | Whole -> Format.pp_print_string ppf "{*}"
  | Dims dims ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_dim)
        (Array.to_list dims)

let to_string s = Format.asprintf "%a" pp s

let range_of_affine e env =
  let exception Unknown in
  try
    let lo = ref (Affine.const_part e)
    and hi = ref (Affine.const_part e)
    and strides = ref [] in
    List.iter
      (fun (v, c) ->
        match List.assoc_opt v env with
        | None -> raise Unknown
        | Some (vlo, vhi, vstep) ->
            if vlo > vhi then raise Unknown;
            if c > 0 then begin
              lo := !lo + (c * vlo);
              hi := !hi + (c * vhi)
            end
            else begin
              lo := !lo + (c * vhi);
              hi := !hi + (c * vlo)
            end;
            if vlo <> vhi then strides := abs (c * vstep) :: !strides)
      (Affine.terms e);
    let step =
      match !strides with
      | [] -> 1
      | s :: rest -> List.fold_left gcd s rest
    in
    let step = if step = 0 then 1 else step in
    Some (dim ~lo:!lo ~hi:!hi ~step)
  with Unknown -> None

let of_subscripts_exact subs env =
  let exception Inexact in
  try
    let seen_varying = Hashtbl.create 8 in
    let dims =
      Array.map
        (fun e ->
          let varying =
            List.filter
              (fun (v, _) ->
                match List.assoc_opt v env with
                | None -> raise Inexact
                | Some (lo, hi, _) -> lo <> hi)
              (Affine.terms e)
          in
          (match varying with
          | [] | [ _ ] -> ()
          | _ -> raise Inexact);
          List.iter
            (fun (v, _) ->
              if Hashtbl.mem seen_varying v then raise Inexact
              else Hashtbl.replace seen_varying v ())
            varying;
          match range_of_affine e env with
          | Some d -> d
          | None -> raise Inexact)
        subs
    in
    Some (Dims dims)
  with Inexact -> None

let of_subscripts subs env =
  let exception Unknown in
  try
    Dims
      (Array.map
         (fun e ->
           match range_of_affine e env with
           | Some d -> d
           | None -> raise Unknown)
         subs)
  with Unknown -> Whole
