open Ccdp_ir
open Ccdp_analysis
open Ccdp_test_support.Tutil

let mk_loop ?(kind = Stmt.Serial) ?(step = 1) ~id var lo hi =
  { Stmt.loop_id = id; var; lo; hi; step; kind; body = []; loc = Loc.Synthetic }

let tests =
  [
    case "of_loops binds params as point triplets" (fun () ->
        let env = Iterspace.of_loops ~params:[ ("n", 8) ] [] in
        check_true "n" (List.assoc "n" env = (8, 8, 1)));
    case "of_loops resolves constant bounds" (fun () ->
        let l = mk_loop ~id:0 "i" (Bound.of_int 1) (Bound.of_int 6) in
        let env = Iterspace.of_loops ~params:[] [ l ] in
        check_true "i" (List.assoc "i" env = (1, 6, 1)));
    case "bounds may reference params" (fun () ->
        let l = mk_loop ~id:0 "i" (Bound.of_int 0) (Bound.known (Affine.var "n")) in
        let env = Iterspace.of_loops ~params:[ ("n", 9) ] [ l ] in
        check_true "i" (List.assoc "i" env = (0, 9, 1)));
    case "inner bounds depending on outer vars are widened" (fun () ->
        let outer = mk_loop ~id:0 "i" (Bound.of_int 0) (Bound.of_int 4) in
        let inner = mk_loop ~id:1 "j" (Bound.known (Affine.var "i")) (Bound.of_int 6) in
        let env = Iterspace.of_loops ~params:[] [ outer; inner ] in
        check_true "j widened" (List.assoc "j" env = (0, 6, 1)));
    case "unknown bound omits the variable" (fun () ->
        let l = mk_loop ~id:0 "i" (Bound.of_int 0) Bound.unknown in
        let env = Iterspace.of_loops ~params:[] [ l ] in
        check_true "absent" (List.assoc_opt "i" env = None));
    case "opaque bound is treated as unknown" (fun () ->
        let l = mk_loop ~id:0 "i" (Bound.of_int 0) (Bound.opaque (Affine.const 5)) in
        let env = Iterspace.of_loops ~params:[] [ l ] in
        check_true "absent" (List.assoc_opt "i" env = None));
    case "trip_count on resolvable loops" (fun () ->
        let l = mk_loop ~id:0 ~step:2 "i" (Bound.of_int 0) (Bound.of_int 8) in
        let env = Iterspace.of_loops ~params:[] [] in
        check_true "5" (Iterspace.trip_count l env = Some 5));
    case "trip_count is None when unknown" (fun () ->
        let l = mk_loop ~id:0 "i" (Bound.of_int 0) Bound.unknown in
        check_true "none" (Iterspace.trip_count l [] = None));
    case "restrict_pe narrows a static block DOALL" (fun () ->
        let l =
          mk_loop ~id:0 ~kind:(Stmt.Doall Stmt.Static_block) "j" (Bound.of_int 0)
            (Bound.of_int 7)
        in
        let env = Iterspace.of_loops ~params:[] [ l ] in
        (match Iterspace.restrict_pe env l ~n_pes:4 ~pe:1 with
        | Some env' -> check_true "pe1 cols" (List.assoc "j" env' = (2, 3, 1))
        | None -> Alcotest.fail "expected restriction"));
    case "restrict_pe returns None for idle PEs" (fun () ->
        let l =
          mk_loop ~id:0 ~kind:(Stmt.Doall Stmt.Static_block) "j" (Bound.of_int 0)
            (Bound.of_int 1)
        in
        let env = Iterspace.of_loops ~params:[] [ l ] in
        check_true "idle" (Iterspace.restrict_pe env l ~n_pes:8 ~pe:7 = None));
    case "restrict_pe keeps full env for dynamic schedules" (fun () ->
        let l =
          mk_loop ~id:0 ~kind:(Stmt.Doall (Stmt.Dynamic 2)) "j" (Bound.of_int 0)
            (Bound.of_int 7)
        in
        let env = Iterspace.of_loops ~params:[] [ l ] in
        (match Iterspace.restrict_pe env l ~n_pes:4 ~pe:2 with
        | Some env' -> check_true "unrestricted" (List.assoc "j" env' = (0, 7, 1))
        | None -> Alcotest.fail "expected Some"));
    case "pin_outer pins everything but the inner loop" (fun () ->
        let outer = mk_loop ~id:0 "k" (Bound.of_int 2) (Bound.of_int 9) in
        let inner = mk_loop ~id:1 "i" (Bound.of_int 0) (Bound.of_int 7) in
        let env = Iterspace.of_loops ~params:[] [ outer; inner ] in
        let env' = Iterspace.pin_outer env ~inner [ outer; inner ] in
        check_true "k pinned" (List.assoc "k" env' = (2, 2, 1));
        check_true "i kept" (List.assoc "i" env' = (0, 7, 1)));
  ]

let () = Alcotest.run "iterspace" [ ("env", tests) ]
