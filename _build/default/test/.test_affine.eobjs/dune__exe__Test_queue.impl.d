test/test_queue.ml: Alcotest Ccdp_machine Ccdp_test_support List Prefetch_queue QCheck
