(** Static coherence certifier (top level).

    Runs the three certification passes over a compiled pipeline — without
    executing the program — and returns their findings as structured
    diagnostics:

    + {!Coverage}: every potentially-stale read (per the {!Maystale}
      re-derivation) is prefetched, covered, or bypassed;
    + {!Race}: every DOALL passes the cross-iteration dependence test;
    + {!Lint}: every prefetch operation is sized within the machine's
      budgets.

    Error-severity findings mean the compiled plan's coherence argument
    does not hold; warnings are performance hazards. *)

val maystale : Ccdp_core.Pipeline.t -> Maystale.t

(** The individual passes (for targeted tests and differentials). *)
val coverage : Ccdp_core.Pipeline.t -> Diag.t list

val races : Ccdp_core.Pipeline.t -> Diag.t list
val lints : Ccdp_core.Pipeline.t -> Diag.t list

(** All passes, sorted in report order. *)
val certify : Ccdp_core.Pipeline.t -> Diag.t list

val errors : Diag.t list -> Diag.t list
val has_errors : Diag.t list -> bool

type report = { name : string; diags : Diag.t list }

val pp_report : Format.formatter -> report -> unit

(** Machine-readable report over several targets:
    [{"version":1,"targets":[{"name",...,"diagnostics":[...]}],
    "summary":{"errors":n,"warnings":n}}]. *)
val json : report list -> string
