(** The Cray T3D's 3-D torus interconnect.

    Remote latency on the real machine grows with network distance; the
    uniform [remote] cost in {!Config} is the fleet average. This module
    supplies the distance term: PEs are laid out in a (near-cubic) 3-D
    grid with wraparound links, and a message between two PEs travels the
    minimal hop count in each dimension (dimension-ordered routing). *)

type t = private { nx : int; ny : int; nz : int }

(** Factor a PE count into near-cubic dimensions ([nx*ny*nz >= n_pes],
    preferring exact factorizations). *)
val of_pes : int -> t

val dims : t -> int * int * int
val coords : t -> int -> int * int * int

(** Minimal wraparound hop count between two PEs. *)
val hops : t -> int -> int -> int

(** Largest hop count in the machine (network diameter). *)
val diameter : t -> int

val pp : Format.formatter -> t -> unit
