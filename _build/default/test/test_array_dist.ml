open Ccdp_ir
open Ccdp_test_support.Tutil

let decl = Array_decl.make "A" [| 4; 6 |]

let linearization =
  [
    case "column-major: dim 0 is contiguous" (fun () ->
        check_int "0,0" 0 (Array_decl.linear_index decl [| 0; 0 |]);
        check_int "1,0" 1 (Array_decl.linear_index decl [| 1; 0 |]);
        check_int "0,1" 4 (Array_decl.linear_index decl [| 0; 1 |]));
    case "last element" (fun () ->
        check_int "last" 23 (Array_decl.linear_index decl [| 3; 5 |]));
    case "out of range rejected" (fun () ->
        check_true "raises"
          (try ignore (Array_decl.linear_index decl [| 4; 0 |]); false
           with Invalid_argument _ -> true));
    case "rank mismatch rejected" (fun () ->
        check_true "raises"
          (try ignore (Array_decl.linear_index decl [| 1 |]); false
           with Invalid_argument _ -> true));
    case "elems and words" (fun () ->
        check_int "elems" 24 (Array_decl.elems decl);
        check_int "words" 24 (Array_decl.words decl);
        let w2 = Array_decl.make ~elem_words:2 "B" [| 3; 3 |] in
        check_int "words2" 18 (Array_decl.words w2));
  ]

let constructor_checks =
  [
    case "empty dimension rejected" (fun () ->
        check_true "raises"
          (try ignore (Array_decl.make "A" [| 3; 0 |]); false
           with Invalid_argument _ -> true));
    case "distribution rank mismatch rejected" (fun () ->
        check_true "raises"
          (try
             ignore (Array_decl.make "A" [| 3; 3 |] ~dist:(Dist.block_along ~rank:3 ~dim:0));
             false
           with Invalid_argument _ -> true));
    case "dist helpers place pattern on requested dim" (fun () ->
        check_true "dim1" (Dist.distributed_dim (Dist.block_along ~rank:2 ~dim:1) = Some 1);
        check_true "dim0" (Dist.distributed_dim (Dist.cyclic_along ~rank:2 ~dim:0) = Some 0);
        check_true "repl" (Dist.distributed_dim Dist.replicated = None));
    case "block_along rejects bad dim" (fun () ->
        check_true "raises"
          (try ignore (Dist.block_along ~rank:2 ~dim:2); false
           with Invalid_argument _ -> true));
  ]

let props =
  [
    qcheck "point_of_linear inverts linear_index"
      QCheck.(pair (int_range 0 3) (int_range 0 5))
      (fun (i, j) ->
        Array_decl.point_of_linear decl (Array_decl.linear_index decl [| i; j |])
        = [| i; j |]);
    qcheck "linear_index is injective over the domain"
      QCheck.(pair (pair (int_range 0 3) (int_range 0 5)) (pair (int_range 0 3) (int_range 0 5)))
      (fun (((i1, j1) as a), ((i2, j2) as b)) ->
        a = b
        || Array_decl.linear_index decl [| i1; j1 |]
           <> Array_decl.linear_index decl [| i2; j2 |]);
  ]

let () =
  Alcotest.run "array-dist"
    [
      ("linearization", linearization);
      ("constructors", constructor_checks);
      ("properties", props);
    ]
