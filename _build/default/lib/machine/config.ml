type t = {
  n_pes : int;
  cache_words : int;
  line_words : int;
  assoc : int;
  prefetch_queue_words : int;
  annex_entries : int;
  hit : int;
  local : int;
  uncached_local : int;
  remote : int;
  torus : bool;
  hop : int;
  store_local : int;
  store_remote : int;
  pf_issue : int;
  pf_extract : int;
  annex_setup : int;
  vget_startup : int;
  vget_per_word : int;
  barrier_base : int;
  barrier_per_level : int;
  flop : int;
  loop_overhead : int;
}

let t3d ~n_pes =
  {
    n_pes;
    cache_words = 1024 (* 8 KB of 64-bit words *);
    line_words = 4 (* 32-byte lines *);
    assoc = 1 (* direct-mapped EV4 *);
    prefetch_queue_words = 16;
    annex_entries = 32;
    hit = 3;
    local = 22 (* ~150ns at 150 MHz *);
    uncached_local = 8 (* read-ahead buffered local stream *);
    remote = 90 (* ~600ns one-way shared read *);
    torus = false;
    hop = 0;
    store_local = 3;
    store_remote = 12 (* buffered network injection *);
    pf_issue = 6 (* prefetch instruction + queue bookkeeping *);
    pf_extract = 8 (* significant, per Arpaci et al. *);
    annex_setup = 23 (* DTB Annex write overhead *);
    vget_startup = 120 (* shmem_get fixed cost *);
    vget_per_word = 2 (* pipelined block-transfer bandwidth *);
    barrier_base = 30;
    barrier_per_level = 8;
    flop = 4 (* EV4 FP latency dominates issue *);
    loop_overhead = 2;
  }

let tiny ~n_pes =
  {
    n_pes;
    cache_words = 64;
    line_words = 4;
    assoc = 1;
    prefetch_queue_words = 8;
    annex_entries = 4;
    hit = 1;
    local = 10;
    uncached_local = 4;
    remote = 40;
    torus = false;
    hop = 0;
    store_local = 1;
    store_remote = 4;
    pf_issue = 2;
    pf_extract = 2;
    annex_setup = 5;
    vget_startup = 20;
    vget_per_word = 1;
    barrier_base = 5;
    barrier_per_level = 2;
    flop = 1;
    loop_overhead = 1;
  }

let t3d_torus ~n_pes =
  let base = t3d ~n_pes in
  (* keep the machine-average remote cost near the uniform preset: average
     hop count on a torus is about half the diameter *)
  let torus = Torus.of_pes n_pes in
  let avg_hops = max 1 ((Torus.diameter torus + 1) / 2) in
  let hop = 8 (* ~50ns per hop at 150 MHz *) in
  { base with remote = max base.local (90 - (hop * avg_hops)); torus = true; hop }

let lines t = t.cache_words / t.line_words

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let barrier_cost t = t.barrier_base + (t.barrier_per_level * log2_ceil t.n_pes)
let lines_for_words t w = (w + t.line_words - 1) / t.line_words

let validate t =
  let problems = ref [] in
  let check cond msg = if not cond then problems := msg :: !problems in
  check (t.n_pes > 0) "n_pes must be positive";
  check (t.line_words > 0) "line_words must be positive";
  check (t.assoc > 0) "assoc must be positive";
  if t.line_words > 0 && t.assoc > 0 then begin
    check (t.cache_words >= t.line_words) "cache smaller than one line";
    check (t.cache_words mod t.line_words = 0)
      "cache_words not a multiple of line_words";
    check (lines t mod t.assoc = 0) "lines not a multiple of assoc"
  end;
  check (t.prefetch_queue_words >= 0) "prefetch_queue_words must be >= 0";
  check (t.remote >= t.local) "remote latency below local latency";
  check (t.uncached_local >= 0) "uncached_local must be >= 0";
  check (t.local >= t.hit) "local latency below hit latency";
  List.rev !problems

let pp ppf t =
  Format.fprintf ppf
    "@[<v>machine: %d PEs@,\
     cache: %d words, %d-word lines, %d-way@,\
     prefetch queue: %d words; annex: %d entries@,\
     latency: hit=%d local=%d/%d remote=%d store=%d/%d@,\
     prefetch: issue=%d extract=%d annex=%d vget=%d+%d/word@,\
     barrier: %d; flop=%d loop=%d@]"
    t.n_pes t.cache_words t.line_words t.assoc t.prefetch_queue_words
    t.annex_entries t.hit t.local t.uncached_local t.remote t.store_local
    t.store_remote t.pf_issue
    t.pf_extract t.annex_setup t.vget_startup t.vget_per_word (barrier_cost t)
    t.flop t.loop_overhead
