lib/runtime/verify.ml: Array Array_decl Ccdp_analysis Ccdp_ir Ccdp_machine Float Format Interp List Memsys Program String
