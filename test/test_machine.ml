open Ccdp_machine
open Ccdp_test_support.Tutil

let config_tests =
  [
    case "t3d preset validates at any width" (fun () ->
        List.iter
          (fun p -> check_true "valid" (Config.validate (Config.t3d ~n_pes:p) = []))
          [ 1; 2; 16; 64; 256 ]);
    case "tiny preset validates" (fun () ->
        check_true "valid" (Config.validate (Config.tiny ~n_pes:4) = []));
    case "t3d geometry matches the hardware" (fun () ->
        let c = Config.t3d ~n_pes:1 in
        check_int "8KB of words" 1024 c.Config.cache_words;
        check_int "32B lines" 4 c.Config.line_words;
        check_int "direct mapped" 1 c.Config.assoc;
        check_int "16-word queue" 16 c.Config.prefetch_queue_words;
        check_int "256 lines" 256 (Config.lines c));
    case "barrier cost grows with log2 of the width" (fun () ->
        let c1 = Config.t3d ~n_pes:1 and c64 = Config.t3d ~n_pes:64 in
        check_true "wider costs more" (Config.barrier_cost c64 > Config.barrier_cost c1);
        check_int "log2 64 = 6 levels"
          (c64.Config.barrier_base + (6 * c64.Config.barrier_per_level))
          (Config.barrier_cost c64));
    case "lines_for_words rounds up" (fun () ->
        let c = Config.t3d ~n_pes:1 in
        check_int "1" 1 (Config.lines_for_words c 1);
        check_int "4" 1 (Config.lines_for_words c 4);
        check_int "5" 2 (Config.lines_for_words c 5));
    case "invalid configs are reported" (fun () ->
        let c = { (Config.t3d ~n_pes:4) with Config.local = 1 } in
        check_true "local < hit flagged" (Config.validate c <> []));
    case "every negative latency/cost field is rejected" (fun () ->
        let base = Config.t3d ~n_pes:4 in
        List.iter
          (fun (name, broken) ->
            check_true (name ^ " rejected") (Config.validate broken <> []))
          [
            ("hit", { base with Config.hit = -1 });
            ("hop", { base with Config.hop = -1 });
            ("link_occ", { base with Config.link_occ = -1 });
            ("store_local", { base with Config.store_local = -1 });
            ("store_remote", { base with Config.store_remote = -1 });
            ("pf_issue", { base with Config.pf_issue = -1 });
            ("pf_extract", { base with Config.pf_extract = -1 });
            ("annex_setup", { base with Config.annex_setup = -1 });
            ("annex_entries", { base with Config.annex_entries = -1 });
            ("vget_startup", { base with Config.vget_startup = -1 });
            ("vget_per_word", { base with Config.vget_per_word = -1 });
            ("barrier_base", { base with Config.barrier_base = -1 });
            ("barrier_per_level", { base with Config.barrier_per_level = -1 });
            ("flop", { base with Config.flop = -1 });
            ("loop_overhead", { base with Config.loop_overhead = -1 });
          ]);
    case "the rejection names the offending field" (fun () ->
        let broken = { (Config.t3d ~n_pes:4) with Config.pf_issue = -3 } in
        match Config.validate broken with
        | [ msg ] ->
            check_true "message mentions pf_issue"
              (String.length msg >= 8 && String.sub msg 0 8 = "pf_issue")
        | other ->
            Alcotest.failf "expected exactly one problem, got %d"
              (List.length other));
  ]

let machine_tests =
  [
    case "barrier aligns clocks to max plus the cost" (fun () ->
        let m = Machine.create (Config.t3d ~n_pes:4) in
        Pe.advance (Machine.pe m 2) 500;
        Machine.barrier m;
        let expect = 500 + Config.barrier_cost m.Machine.cfg in
        Array.iter
          (fun (p : Pe.t) -> check_int "aligned" expect p.Pe.clock)
          m.Machine.pes);
    case "barrier drains pending prefetches as unused" (fun () ->
        let m = Machine.create (Config.t3d ~n_pes:2) in
        let p = Machine.pe m 0 in
        ignore (Prefetch_queue.try_insert p.Pe.queue ~line:0 ~words:4 ~ready:1);
        Machine.barrier m;
        check_int "unused" 1 p.Pe.stats.Stats.pf_unused;
        check_int "queue emptied" 0 (Prefetch_queue.occupancy p.Pe.queue));
    case "total_stats sums across PEs but keeps barrier count" (fun () ->
        let m = Machine.create (Config.t3d ~n_pes:4) in
        (Machine.pe m 0).Pe.stats.Stats.reads <- 3;
        (Machine.pe m 1).Pe.stats.Stats.reads <- 4;
        Machine.barrier m;
        let s = Machine.total_stats m in
        check_int "reads" 7 s.Stats.reads;
        check_int "barriers" 1 s.Stats.barriers);
    case "reset restores a fresh machine" (fun () ->
        let m = Machine.create (Config.t3d ~n_pes:2) in
        Pe.advance (Machine.pe m 0) 100;
        (Machine.pe m 0).Pe.stats.Stats.reads <- 5;
        Machine.reset m;
        check_int "clock" 0 (Machine.pe m 0).Pe.clock;
        check_int "stats" 0 (Machine.pe m 0).Pe.stats.Stats.reads);
    case "bad config rejected at machine creation" (fun () ->
        check_true "raises"
          (try ignore (Machine.create { (Config.t3d ~n_pes:4) with Config.line_words = 0 }); false
           with Invalid_argument _ -> true));
  ]

let annex_tests =
  [
    case "first touch misses, second hits" (fun () ->
        let a = Dtb_annex.create ~entries:4 in
        check_false "miss" (Dtb_annex.touch a 7);
        check_true "hit" (Dtb_annex.touch a 7));
    case "capacity evicts the least recent" (fun () ->
        let a = Dtb_annex.create ~entries:2 in
        ignore (Dtb_annex.touch a 1);
        ignore (Dtb_annex.touch a 2);
        ignore (Dtb_annex.touch a 1);
        ignore (Dtb_annex.touch a 3);
        (* 2 was the least recent *)
        check_false "2 evicted" (Dtb_annex.touch a 2));
    case "clear empties the table" (fun () ->
        let a = Dtb_annex.create ~entries:2 in
        ignore (Dtb_annex.touch a 1);
        Dtb_annex.clear a;
        check_false "miss after clear" (Dtb_annex.touch a 1));
  ]

let stats_tests =
  [
    case "merge sums counters" (fun () ->
        let a = Stats.create () and b = Stats.create () in
        a.Stats.hits <- 2;
        b.Stats.hits <- 3;
        a.Stats.pf_dropped <- 1;
        check_int "hits" 5 (Stats.merge a b).Stats.hits;
        check_int "dropped" 1 (Stats.merge a b).Stats.pf_dropped);
    case "derived totals" (fun () ->
        let a = Stats.create () in
        a.Stats.miss_local <- 2;
        a.Stats.miss_remote <- 3;
        a.Stats.pf_issued <- 4;
        a.Stats.pf_vector <- 1;
        check_int "misses" 5 (Stats.total_misses a);
        check_int "prefetches" 5 (Stats.total_prefetches a));
  ]

let () =
  Alcotest.run "machine"
    [
      ("config", config_tests);
      ("machine", machine_tests);
      ("annex", annex_tests);
      ("stats", stats_tests);
    ]
