type unop = Neg | Sqrt | Abs
type binop = Add | Sub | Mul | Div | Min | Max

type t =
  | Const of float
  | Ref of Reference.t
  | Ivar of string
  | Svar of string
  | Unop of unop * t
  | Binop of binop * t * t

let rec fold_reads f acc = function
  | Const _ | Ivar _ | Svar _ -> acc
  | Ref r -> f acc r
  | Unop (_, e) -> fold_reads f acc e
  | Binop (_, a, b) -> fold_reads f (fold_reads f acc a) b

let reads e = List.rev (fold_reads (fun acc r -> r :: acc) [] e)

let rec subst_env e env =
  match e with
  | Const _ | Svar _ -> e
  | Ivar v -> (
      (* an induction variable replaced by a constant actual stays numeric *)
      match List.assoc_opt v env with
      | Some a -> (
          match Affine.to_const_opt a with
          | Some c -> Const (float_of_int c)
          | None -> (
              match Affine.terms a with
              | [ (w, 1) ] when Affine.const_part a = 0 -> Ivar w
              | _ -> e))
      | None -> e)
  | Ref r -> Ref (Reference.subst_env r env)
  | Unop (op, a) -> Unop (op, subst_env a env)
  | Binop (op, a, b) -> Binop (op, subst_env a env, subst_env b env)

let rec map_ref_ids f = function
  | (Const _ | Ivar _ | Svar _) as e -> e
  | Ref r -> Ref (Reference.with_id r (f r.Reference.id))
  | Unop (op, a) -> Unop (op, map_ref_ids f a)
  | Binop (op, a, b) -> Binop (op, map_ref_ids f a, map_ref_ids f b)

let rec flops = function
  | Const _ | Ref _ | Ivar _ | Svar _ -> 0
  | Unop (_, e) -> 1 + flops e
  | Binop (_, a, b) -> 1 + flops a + flops b

let apply_unop op x =
  match op with Neg -> -.x | Sqrt -> sqrt x | Abs -> abs_float x

let apply_binop op a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Min -> Float.min a b
  | Max -> Float.max a b

let string_of_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Min -> "min"
  | Max -> "max"

let rec pp ppf = function
  | Const c -> Format.fprintf ppf "%g" c
  | Ref r -> Reference.pp ppf r
  | Ivar v -> Format.fprintf ppf "%s" v
  | Svar v -> Format.fprintf ppf "$%s" v
  | Unop (Neg, e) -> Format.fprintf ppf "(-%a)" pp e
  | Unop (Sqrt, e) -> Format.fprintf ppf "sqrt(%a)" pp e
  | Unop (Abs, e) -> Format.fprintf ppf "abs(%a)" pp e
  | Binop ((Min | Max) as op, a, b) ->
      Format.fprintf ppf "%s(%a, %a)" (string_of_binop op) pp a pp b
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp a (string_of_binop op) pp b
