lib/fuzz/gen.mli: Ccdp_ir Format Random
