test/test_parallelize.ml: Alcotest Annot Builder Ccdp_analysis Ccdp_core Ccdp_ir Ccdp_machine Ccdp_runtime Ccdp_test_support Ccdp_workloads Dist Format List Parallelize Program Stmt String
