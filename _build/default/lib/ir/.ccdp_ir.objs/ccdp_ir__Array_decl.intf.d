lib/ir/array_decl.mli: Dist Format
