test/test_memsys.ml: Affine Alcotest Annot Builder Ccdp_analysis Ccdp_ir Ccdp_machine Ccdp_runtime Ccdp_test_support Config Dist Hashtbl List Memsys Reference Stale Stats Stmt
