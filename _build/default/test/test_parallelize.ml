open Ccdp_ir
open Ccdp_analysis
open Ccdp_test_support.Tutil
module B = Builder
module F = Builder.F

let dist1 = Dist.block_along ~rank:1 ~dim:0

let mk_loop body_of =
  let b = B.create ~name:"pz" () in
  B.param b "n" 16;
  B.array_ b "A" [| 16 |] ~dist:dist1;
  B.array_ b "Bv" [| 16 |] ~dist:dist1;
  B.array_ b "M" [| 16; 16 |] ~dist:(Dist.block_along ~rank:2 ~dim:1);
  let open B.A in
  let body = body_of b in
  let l =
    match B.for_ b "i" (bc 1) (bc 14) body with
    | Stmt.For l -> l
    | _ -> assert false
  in
  (b, l)

let judge body_of =
  let _, l = mk_loop body_of in
  Parallelize.judge ~params:[ ("n", 16) ] ~outer:[] l

let is_parallel = function Parallelize.Parallel -> true | _ -> false

let dependence_tests =
  [
    case "independent elementwise loop is parallel" (fun () ->
        check_true "parallel"
          (is_parallel
             (judge (fun b ->
                  [ B.assign b "A" [ B.A.v "i" ] (B.rd b "Bv" [ B.A.v "i" ]) ]))));
    case "first-order recurrence carries distance 1" (fun () ->
        match
          judge (fun b ->
              [
                B.assign b "A" [ B.A.v "i" ]
                  F.(B.rd b "A" [ B.A.(v "i" -! c 1) ] * const 0.5);
              ])
        with
        | Parallelize.Carried { array_name = "A"; distance = Some d } ->
            check_int "distance" 1 (abs d)
        | _ -> Alcotest.fail "expected carried dependence");
    case "read and write of the same element is same-iteration only" (fun () ->
        check_true "parallel"
          (is_parallel
             (judge (fun b ->
                  [
                    B.assign b "A" [ B.A.v "i" ]
                      F.(B.rd b "A" [ B.A.v "i" ] + const 1.0);
                  ]))));
    case "GCD-disjoint strides are parallel" (fun () ->
        check_true "parallel"
          (is_parallel
             (judge (fun b ->
                  [
                    B.assign b "A"
                      [ B.A.(2 *! v "i") ]
                      (B.rd b "A" [ B.A.(2 *! v "i" +! c 1) ]);
                  ]))));
    case "distance beyond the trip count is no dependence" (fun () ->
        check_true "parallel"
          (is_parallel
             (judge (fun b ->
                  [
                    B.assign b "A" [ B.A.v "i" ]
                      (B.rd b "A" [ B.A.(v "i" -! c 15) ]);
                  ]))));
    case "loop-invariant write is an output dependence" (fun () ->
        match
          judge (fun b -> [ B.assign b "A" [ B.A.c 3 ] (F.iv "i") ])
        with
        | Parallelize.Carried _ -> ()
        | _ -> Alcotest.fail "expected carried");
    case "a disjoint dimension kills the whole pair" (fun () ->
        (* M(i, 1) vs M(i-1, 2): columns differ -> never alias *)
        check_true "parallel"
          (is_parallel
             (judge (fun b ->
                  [
                    B.assign b "M" [ B.A.v "i"; B.A.c 1 ]
                      (B.rd b "M" [ B.A.(v "i" -! c 1); B.A.c 2 ]);
                  ]))));
    case "row recurrence in a matrix is caught" (fun () ->
        match
          judge (fun b ->
              [
                B.assign b "M" [ B.A.v "i"; B.A.c 1 ]
                  (B.rd b "M" [ B.A.(v "i" -! c 1); B.A.c 1 ]);
              ])
        with
        | Parallelize.Carried { array_name = "M"; _ } -> ()
        | _ -> Alcotest.fail "expected carried");
    case "a same-iteration dimension soundly kills coupled subscripts" (fun () ->
        (* write M(i, i) vs read M(i, 2i): the first dimension forces the
           iterations to coincide, so no carried dependence exists *)
        check_true "parallel"
          (is_parallel
             (judge (fun b ->
                  [
                    B.assign b "M" [ B.A.v "i"; B.A.v "i" ]
                      (B.rd b "M" [ B.A.v "i"; B.A.(2 *! v "i") ]);
                  ]))));
    case "fully coupled non-uniform subscripts are conservatively serial"
      (fun () ->
        match
          judge (fun b ->
              [
                B.assign b "M" [ B.A.(2 *! v "i"); B.A.(3 *! v "i") ]
                  (B.rd b "M" [ B.A.(3 *! v "i"); B.A.(2 *! v "i") ]);
              ])
        with
        | Parallelize.Carried _ -> ()
        | Parallelize.Parallel -> Alcotest.fail "must be conservative"
        | _ -> Alcotest.fail "unexpected verdict");
  ]

let scalar_tests =
  [
    case "written-then-read temporaries are privatizable" (fun () ->
        check_true "parallel"
          (is_parallel
             (judge (fun b ->
                  [
                    Stmt.Sassign ("t", F.(B.rd b "Bv" [ B.A.v "i" ] * const 2.0));
                    B.assign b "A" [ B.A.v "i" ] (F.sv "t");
                  ]))));
    case "accumulators are not (no reduction recognition)" (fun () ->
        match
          judge (fun b ->
              [
                Stmt.Sassign ("acc", F.(sv "acc" + B.rd b "Bv" [ B.A.v "i" ]));
              ])
        with
        | Parallelize.Scalar_flow "acc" -> ()
        | _ -> Alcotest.fail "expected scalar flow");
    case "a write under a conditional is not a definite write" (fun () ->
        match
          judge (fun b ->
              [
                Stmt.If
                  ( Stmt.Icond (Stmt.Lt, B.A.v "i", B.A.c 8),
                    [ Stmt.Sassign ("t", F.const 1.0) ],
                    [] );
                B.assign b "A" [ B.A.v "i" ] (F.sv "t");
              ])
        with
        | Parallelize.Scalar_flow "t" -> ()
        | _ -> Alcotest.fail "expected scalar flow");
    case "writes in both branches are definite" (fun () ->
        check_true "parallel"
          (is_parallel
             (judge (fun b ->
                  [
                    Stmt.If
                      ( Stmt.Icond (Stmt.Lt, B.A.v "i", B.A.c 8),
                        [ Stmt.Sassign ("t", F.const 1.0) ],
                        [ Stmt.Sassign ("t", F.const 2.0) ] );
                    B.assign b "A" [ B.A.v "i" ] (F.sv "t");
                  ]))));
  ]

(* ---- end-to-end: auto-parallelize a sequential stencil ---- *)

let sequential_jacobi n iters =
  let b = B.create ~name:"seqjac" () in
  B.param b "n" n;
  B.param b "niter" iters;
  let dist = Dist.block_along ~rank:2 ~dim:1 in
  B.array_ b "G" [| n; n |] ~dist;
  B.array_ b "T" [| n; n |] ~dist;
  let open B.A in
  let rd = B.rd b in
  let i = v "i" and j = v "j" in
  let init =
    B.for_ b "j" (bc 0)
      (bc (n - 1))
      [
        B.for_ b "i" (bc 0)
          (bc (n - 1))
          [
            B.assign b "G" [ i; j ] F.((F.iv "i" - F.iv "j") * const 0.1);
            B.assign b "T" [ i; j ] (F.const 0.0);
          ];
      ]
  in
  let smooth src dst =
    B.for_ b "j" (bc 1)
      (bc (n - 2))
      [
        B.for_ b "i" (bc 1)
          (bc (n - 2))
          [
            B.assign b dst [ i; j ]
              F.(
                const 0.25
                * (rd src [ i -! c 1; j ]
                  + rd src [ i +! c 1; j ]
                  + rd src [ i; j -! c 1 ]
                  + rd src [ i; j +! c 1 ]));
          ];
      ]
  in
  B.finish b
    [ init; B.for_ b "it" (bc 1) (bv "niter") [ smooth "G" "T"; smooth "T" "G" ] ]

let transform_tests =
  [
    case "sequential Jacobi: outer sweep loops get promoted" (fun () ->
        let p = sequential_jacobi 16 2 in
        let p', rep = Parallelize.transform p in
        check_int "three promotions" 3 (List.length rep.Parallelize.promoted);
        check_true "time loop rejected"
          (List.exists
             (fun (_, v, _) -> v = "it")
             rep.Parallelize.rejected);
        Alcotest.(check (list string)) "still valid" [] (Program.validate p'));
    case "promoted program compiles and verifies under CCDP" (fun () ->
        let p = sequential_jacobi 16 2 in
        let p', _ = Parallelize.transform p in
        let cfg = Ccdp_machine.Config.t3d ~n_pes:4 in
        let compiled = Ccdp_core.Pipeline.compile cfg p' in
        let r =
          Ccdp_runtime.Interp.run cfg compiled.Ccdp_core.Pipeline.program
            ~plan:compiled.Ccdp_core.Pipeline.plan ~mode:Ccdp_runtime.Memsys.Ccdp
            ()
        in
        let v =
          Ccdp_runtime.Verify.against_sequential p' ~init:(fun _ -> ()) r
        in
        check_true "verified" v.Ccdp_runtime.Verify.ok);
    case "parallel execution of the promoted program is faster" (fun () ->
        let p = sequential_jacobi 16 2 in
        let p', _ = Parallelize.transform p in
        let cfg1 = Ccdp_machine.Config.t3d ~n_pes:1 in
        let cfg8 = Ccdp_machine.Config.t3d ~n_pes:8 in
        let seq =
          Ccdp_runtime.Interp.run cfg1 (Program.inline p)
            ~plan:(Annot.empty ()) ~mode:Ccdp_runtime.Memsys.Seq ()
        in
        let compiled = Ccdp_core.Pipeline.compile cfg8 p' in
        let par =
          Ccdp_runtime.Interp.run cfg8 compiled.Ccdp_core.Pipeline.program
            ~plan:compiled.Ccdp_core.Pipeline.plan ~mode:Ccdp_runtime.Memsys.Ccdp
            ()
        in
        check_true "speedup"
          (par.Ccdp_runtime.Interp.cycles < seq.Ccdp_runtime.Interp.cycles));
    case "already-parallel loops are left alone" (fun () ->
        let w = Ccdp_workloads.Extras.jacobi ~n:16 ~iters:1 in
        let p = Program.inline w.Ccdp_workloads.Workload.program in
        let _, rep = Parallelize.transform p in
        check_int "nothing promoted" 0 (List.length rep.Parallelize.promoted));
    case "inner loops of promoted loops stay serial" (fun () ->
        let p = sequential_jacobi 16 1 in
        let p', _ = Parallelize.transform p in
        (* no nested DOALLs: validation would reject them *)
        Alcotest.(check (list string)) "valid" [] (Program.validate p'));
    case "verdict printer covers the variants" (fun () ->
        let s v = Format.asprintf "%a" Parallelize.pp_verdict v in
        check_true "p" (String.length (s Parallelize.Parallel) > 0);
        check_true "c"
          (String.length
             (s (Parallelize.Carried { array_name = "A"; distance = Some 1 }))
          > 0);
        check_true "s" (String.length (s (Parallelize.Scalar_flow "x")) > 0));
  ]

let () =
  Alcotest.run "parallelize"
    [
      ("dependence", dependence_tests);
      ("scalars", scalar_tests);
      ("transform", transform_tests);
    ]
