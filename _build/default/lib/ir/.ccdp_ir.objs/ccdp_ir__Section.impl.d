lib/ir/section.ml: Affine Array Format Hashtbl List
