lib/ir/dist.mli: Format
