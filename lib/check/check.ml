module Pipeline = Ccdp_core.Pipeline

let maystale (t : Pipeline.t) =
  Maystale.derive ~cluster_pes:t.Pipeline.cluster_pes t.Pipeline.region
    t.Pipeline.epochs t.Pipeline.infos

let coverage (t : Pipeline.t) =
  Coverage.check ~plan:t.Pipeline.plan ~maystale:(maystale t)
    ~prefetch_clean:t.Pipeline.prefetch_clean t.Pipeline.infos

let races (t : Pipeline.t) =
  Race.check ~params:t.Pipeline.program.Ccdp_ir.Program.params
    t.Pipeline.epochs

let lints (t : Pipeline.t) =
  Lint.check ~region:t.Pipeline.region ~cfg:t.Pipeline.cfg
    ~tuning:t.Pipeline.tuning ~plan:t.Pipeline.plan t.Pipeline.infos

let certify t = List.sort Diag.compare (coverage t @ races t @ lints t)

let errors ds = List.filter (fun d -> d.Diag.severity = Diag.Error) ds
let has_errors ds = List.exists (fun d -> d.Diag.severity = Diag.Error) ds

type report = { name : string; diags : Diag.t list }

let pp_report ppf r =
  match r.diags with
  | [] -> Format.fprintf ppf "%s: clean" r.name
  | ds ->
      Format.fprintf ppf "@[<v>%s: %d diagnostic(s)" r.name (List.length ds);
      List.iter (fun d -> Format.fprintf ppf "@,  %a" Diag.pp d) ds;
      Format.fprintf ppf "@]"

let json reports =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"version\":1,\"targets\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      Diag.buf_string b r.name;
      Buffer.add_string b ",\"diagnostics\":[";
      List.iteri
        (fun j d ->
          if j > 0 then Buffer.add_char b ',';
          Diag.buf b d)
        r.diags;
      Buffer.add_string b "]}")
    reports;
  let count sev =
    List.fold_left
      (fun acc r ->
        acc
        + List.length (List.filter (fun d -> d.Diag.severity = sev) r.diags))
      0 reports
  in
  Buffer.add_string b
    (Printf.sprintf "],\"summary\":{\"errors\":%d,\"warnings\":%d}}"
       (count Diag.Error) (count Diag.Warning));
  Buffer.contents b
