lib/workloads/swim.mli: Ccdp_ir Workload
