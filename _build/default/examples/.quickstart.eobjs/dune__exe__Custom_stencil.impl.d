examples/custom_stencil.ml: Builder Ccdp_analysis Ccdp_core Ccdp_ir Ccdp_machine Ccdp_runtime Dist Format Interp Memsys Pipeline Stmt Verify
