(* Golden-table pin: renders the paper's Tables 1 and 2 for a small fixed
   configuration (spec four, n=16, iters=1, pes [1;4]) on stdout. The dune
   rule diffs this against golden_tables.expected — any change to the
   metric algebra, the simulated machine, or the table formatter fails the
   diff and must be acknowledged by promoting the new output
   (dune promote). Runs at -j4 so CI also re-proves the scheduler's
   determinism against the sequentially-generated expectation. *)

open Ccdp_core
open Ccdp_workloads

let () =
  let ws = Suite.spec_four ~n:16 ~iters:1 () in
  let spec =
    { Experiment.default_spec with Experiment.pes = [ 1; 4 ]; verify = true }
  in
  let rows = Experiment.evaluate ~jobs:4 ~spec ws in
  let ppf = Format.std_formatter in
  Experiment.print_table1 ppf rows;
  Experiment.print_table2 ppf rows;
  Experiment.csv_rows ppf rows;
  Format.pp_print_flush ppf ()
