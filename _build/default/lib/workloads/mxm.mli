(** MXM (SPEC CFP92, NASA7 kernel): matrix multiply, unrolled by four.

    Structure after the paper's Section 5.3: columns of the shared matrices
    are block-distributed; the middle loop (over result columns) is the
    parallel DOALL, block-scheduled to match; the outermost serial loop
    walks four columns of [A] at a time, so every PE reads four mostly
    remote columns of [A] per outer iteration — the staleness and latency
    bottleneck the CCDP version attacks. [B] and [C] accesses stay within
    each PE's own columns and come out of the analysis clean. *)

val program : n:int -> Ccdp_ir.Program.t

val workload : n:int -> Workload.t
