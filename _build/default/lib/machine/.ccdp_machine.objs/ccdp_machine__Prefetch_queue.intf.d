lib/machine/prefetch_queue.mli:
