(** Prefetch scheduling — the paper's Figure 2.

    For each inner loop or serial code segment holding prefetch targets,
    pick a scheduling technique in the paper's order of preference:

    - serial loop, known bounds: VPG, then SP, then MBP;
    - serial loop, unknown bounds: SP, then MBP;
    - DOALL with static scheduling, known bounds: VPG, then MBP;
    - DOALL with static scheduling, unknown bounds: MBP;
    - DOALL with dynamic scheduling: MBP;
    - serial code section: MBP;
    - loop containing if-statements (case 5): MBP only, and the moved-back
      prefetch must not cross the branch boundary (the moving window is the
      reference's own basic block);
    - a loop inside an if-body (case 6) uses the normal techniques — the
      prefetch placement point (just before the loop) stays inside the
      branch.

    VPG honours the hardware constraints of Section 4.3.1: the pulled
    section must fit the configured fraction of the cache; a write to the
    same array inside the loop forbids pulling (the block would be fetched
    before the loop's own updates). SP uses Mowry's distance (latency over
    estimated iteration time) clamped to the tuning range, widened to cover
    the group span, and bounded by prefetch-queue occupancy. MBP distances
    below the tuning minimum demote the target to a bypass read.

    Correctness deviation (documented in DESIGN.md): in an MBP-scheduled
    {e loop}, covered group members are promoted to their own moved-back
    prefetches — the leader's per-iteration prefetch cannot be proven to
    arrive before a covered member crosses a line boundary. In straight-line
    code the leader executes first, so covers remain sound. *)

type technique = Vpg | Sp | Mbp | Demoted  (** Demoted: became a bypass read *)

type tuning = {
  sp_min : int;  (** minimum acceptable prefetch-ahead distance *)
  sp_max : int;  (** maximum acceptable prefetch-ahead distance *)
  mbp_min_cycles : int;  (** below this, moving back is pointless: demote *)
  mbp_max_cycles : int;  (** data would be evicted again: clamp *)
  vpg_max_words : int option;  (** default: half the cache *)
  vpg_levels : int;
      (** loop levels a vector prefetch may be pulled out of. The paper
          fixes this to 1 — its stated modification of Gornish's algorithm
          (Section 4.3.2): pulling further risks the prefetched block being
          displaced before use. 2 enables the multi-level pull for the
          ablation study (the runtime models the displacement hazard with a
          bounded staging buffer). *)
  latency : int option;  (** average prefetch latency; default remote *)
  allow_vpg : bool;  (** ablation switches *)
  allow_sp : bool;
  allow_mbp : bool;
}

val default_tuning : tuning

(** Per-group decisions, for reports and tests. *)
type decision = {
  lead_id : int;
  epoch : int;
  loop_id : int option;
  technique : technique;
}

val analyze :
  Region.t ->
  Ccdp_machine.Config.t ->
  ?tuning:tuning ->
  Ref_info.t list ->
  Stale.result ->
  Target.t ->
  Annot.plan * decision list

val pp_decisions : Format.formatter -> decision list -> unit
