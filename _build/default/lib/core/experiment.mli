(** Experiment harness: regenerates the paper's Tables 1 and 2 plus the
    ablation studies indexed in DESIGN.md.

    Every parallel run is verified against the sequential execution (a wrong
    answer under any coherence scheme is an experiment failure, not a data
    point). Speedups are ratios of simulated machine cycles. *)

type row = {
  workload : string;
  pes : int;
  seq_cycles : int;
  base_cycles : int;
  ccdp_cycles : int;
  base_ok : bool;
  ccdp_ok : bool;
  ccdp_stats : Ccdp_machine.Stats.t;
}

val base_speedup : row -> float
val ccdp_speedup : row -> float

(** Improvement in execution time of the CCDP code over the BASE code,
    percent (paper Table 2). *)
val improvement : row -> float

type spec = {
  pes : int list;
  verify : bool;
  tuning : Ccdp_analysis.Schedule.tuning;
}

val default_spec : spec

(** Run one workload at one machine width under one mode; compiles with the
    spec's tuning for CCDP-plan modes. *)
val run_mode :
  ?tuning:Ccdp_analysis.Schedule.tuning ->
  n_pes:int ->
  Ccdp_runtime.Memsys.mode ->
  Ccdp_workloads.Workload.t ->
  Ccdp_runtime.Interp.result

(** Full BASE/CCDP/sequential matrix over the spec's PE counts. *)
val evaluate : ?spec:spec -> Ccdp_workloads.Workload.t list -> row list

(** Paper Table 1: speedups over sequential execution time. *)
val print_table1 : Format.formatter -> row list -> unit

(** Paper Table 2: % improvement of CCDP over BASE. *)
val print_table2 : Format.formatter -> row list -> unit

(** Machine-readable export of the evaluation rows (one line per
    workload/width with speedups, improvement and verification flags). *)
val csv_rows : Format.formatter -> row list -> unit

(** Ablation A: prefetch target analysis disabled (every potentially-stale
    reference prefetched individually) vs the full scheme. *)
val ablation_target :
  ?n_pes:int -> Ccdp_workloads.Workload.t list -> Format.formatter -> unit

(** Ablation B: scheduling restricted to a single technique. *)
val ablation_technique :
  ?n_pes:int -> Ccdp_workloads.Workload.t list -> Format.formatter -> unit

(** Ablation C: CCDP vs epoch-boundary invalidation vs BASE. *)
val ablation_coherence :
  ?n_pes:int -> Ccdp_workloads.Workload.t list -> Format.formatter -> unit

(** Experiment E (the paper's future work, Section 6): additionally
    prefetch the non-stale references as pure latency hiding. *)
val ablation_prefetch_clean :
  ?n_pes:int -> Ccdp_workloads.Workload.t list -> Format.formatter -> unit

(** Experiment G: the paper's one-level vector-prefetch pulling restriction
    vs Gornish's multi-level pulling (with the staging-displacement hazard
    modelled). *)
val ablation_vpg_levels :
  ?n_pes:int -> Ccdp_workloads.Workload.t list -> Format.formatter -> unit

(** Experiment F: uniform remote latency vs the 3-D torus distance model. *)
val ablation_topology :
  ?n_pes:int -> Ccdp_workloads.Workload.t list -> Format.formatter -> unit

(** Sweeps: remote latency and prefetch-queue capacity (shape studies). *)
val sweep_remote :
  ?n_pes:int -> ?points:int list -> Ccdp_workloads.Workload.t -> Format.formatter ->
  unit

val sweep_queue :
  ?n_pes:int -> ?points:int list -> Ccdp_workloads.Workload.t -> Format.formatter ->
  unit

(** Cache-capacity sweep across the coherence schemes: blanket invalidation
    wastes retention that version-based HSCD and CCDP keep as capacity
    grows. *)
val sweep_cache :
  ?n_pes:int -> ?points:int list -> Ccdp_workloads.Workload.t -> Format.formatter ->
  unit
