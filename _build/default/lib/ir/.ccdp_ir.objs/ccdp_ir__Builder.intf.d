lib/ir/builder.mli: Affine Bound Dist Fexpr Program Reference Stmt
