examples/custom_stencil.mli:
