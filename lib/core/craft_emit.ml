open Ccdp_ir
open Ccdp_analysis

let dist_directive (a : Array_decl.t) =
  match a.dist with
  | Dist.Replicated -> Printf.sprintf "CDIR$ REPLICATED %s" a.name
  | Dist.Dims dims ->
      let part =
        Array.to_list dims
        |> List.map (function
             | Dist.Block -> ":BLOCK"
             | Dist.Cyclic -> ":CYCLIC"
             | Dist.Block_cyclic w -> Printf.sprintf ":BLOCK(%d)" w
             | Dist.Degenerate -> ":")
        |> String.concat ", "
      in
      Printf.sprintf "CDIR$ SHARED %s(%s)" a.name part

let sched_comment = function
  | Stmt.Static_block -> "BLOCK"
  | Stmt.Static_aligned e -> Printf.sprintf "ALIGNED(%d)" e
  | Stmt.Static_cyclic -> "CYCLIC"
  | Stmt.Dynamic c -> Printf.sprintf "DYNAMIC(%d)" c

let fortran_ref (r : Reference.t) =
  Printf.sprintf "%s(%s)" r.array_name
    (String.concat ", "
       (Array.to_list (Array.map Affine.to_string r.subs)))

let rec fortran_expr (e : Fexpr.t) =
  match e with
  | Fexpr.Const c -> Printf.sprintf "%g" c
  | Fexpr.Ivar v -> String.uppercase_ascii v
  | Fexpr.Svar v -> String.uppercase_ascii v
  | Fexpr.Ref r -> fortran_ref r
  | Fexpr.Unop (Fexpr.Neg, a) -> Printf.sprintf "(-%s)" (fortran_expr a)
  | Fexpr.Unop (Fexpr.Sqrt, a) -> Printf.sprintf "SQRT(%s)" (fortran_expr a)
  | Fexpr.Unop (Fexpr.Abs, a) -> Printf.sprintf "ABS(%s)" (fortran_expr a)
  | Fexpr.Binop (op, a, b) ->
      let sym =
        match op with
        | Fexpr.Add -> " + "
        | Fexpr.Sub -> " - "
        | Fexpr.Mul -> "*"
        | Fexpr.Div -> "/"
        | Fexpr.Min -> ", "
        | Fexpr.Max -> ", "
      in
      (match op with
      | Fexpr.Min -> Printf.sprintf "MIN(%s%s%s)" (fortran_expr a) sym (fortran_expr b)
      | Fexpr.Max -> Printf.sprintf "MAX(%s%s%s)" (fortran_expr a) sym (fortran_expr b)
      | _ -> Printf.sprintf "(%s%s%s)" (fortran_expr a) sym (fortran_expr b))

let cmp_sym = function
  | Stmt.Lt -> ".LT."
  | Stmt.Le -> ".LE."
  | Stmt.Gt -> ".GT."
  | Stmt.Ge -> ".GE."
  | Stmt.Eq -> ".EQ."
  | Stmt.Ne -> ".NE."

let bound_str = function
  | Bound.Known e -> Affine.to_string e
  | Bound.Opaque e -> Printf.sprintf "%s !runtime" (Affine.to_string e)
  | Bound.Unknown -> "?"

(* classification comment for the reads of one statement *)
let read_annotations (plan : Annot.plan) s =
  List.filter_map
    (fun (r : Reference.t) ->
      match Annot.cls_of plan r.id with
      | Annot.Normal -> None
      | Annot.Lead -> (
          match Annot.op_of plan r.id with
          | Some (Annot.Back { cycles; _ }) ->
              Some
                (Printf.sprintf "C$CCDP MOVED-BACK PREFETCH %s (%d CYCLES EARLY)"
                   (fortran_ref r) cycles)
          | Some (Annot.Pipelined _ | Annot.Vector _) | None -> None)
      | Annot.Covered lead ->
          Some
            (Printf.sprintf "C$CCDP %s COVERED BY LEADING REF %d" (fortran_ref r)
               lead)
      | Annot.Bypass ->
          Some (Printf.sprintf "C$CCDP BYPASS-CACHE READ %s" (fortran_ref r)))
    (Stmt.direct_reads s)

let emit ppf (c : Pipeline.t) =
  let plan = c.Pipeline.plan in
  let p = c.Pipeline.program in
  let refs_by_id = Hashtbl.create 64 in
  ignore
    (Stmt.fold_refs
       (fun () ~write:_ (r : Reference.t) -> Hashtbl.replace refs_by_id r.id r)
       () p.Program.main);
  let line fmt = Format.fprintf ppf (fmt ^^ "@,") in
  let rec stmt ind s =
    let pad = String.make ind ' ' in
    List.iter (fun a -> line "%s" a) (read_annotations plan s);
    match s with
    | Stmt.Assign (r, e) -> line "%s%s = %s" pad (fortran_ref r) (fortran_expr e)
    | Stmt.Sassign (v, e) ->
        line "%s%s = %s" pad (String.uppercase_ascii v) (fortran_expr e)
    | Stmt.If (cond, a, b) ->
        let cs =
          match cond with
          | Stmt.Icond (op, x, y) ->
              Printf.sprintf "%s %s %s" (Affine.to_string x) (cmp_sym op)
                (Affine.to_string y)
          | Stmt.Fcond (op, x, y) ->
              Printf.sprintf "%s %s %s" (fortran_expr x) (cmp_sym op)
                (fortran_expr y)
        in
        line "%sIF (%s) THEN" pad cs;
        List.iter (stmt (ind + 2)) a;
        if b <> [] then begin
          line "%sELSE" pad;
          List.iter (stmt (ind + 2)) b
        end;
        line "%sENDIF" pad
    | Stmt.Call (name, args) ->
        line "%sCALL %s(%s)" pad
          (String.uppercase_ascii name)
          (String.concat ", " (List.map (fun (_, a) -> Affine.to_string a) args))
    | Stmt.For l ->
        (match l.kind with
        | Stmt.Doall sched ->
            line "CDIR$ DOSHARED (%s) !%s" (String.uppercase_ascii l.var)
              (sched_comment sched)
        | Stmt.Serial -> ());
        (* prefetch operations staged at this loop *)
        List.iter
          (fun op ->
            match op with
            | Annot.Vector { ref_id; group; _ } ->
                let r = Hashtbl.find refs_by_id ref_id in
                line "C$CCDP VECTOR PREFETCH %s OVER %s%s" (fortran_ref r)
                  (String.uppercase_ascii l.var)
                  (if group = [] then ""
                   else Printf.sprintf " (COVERS %d MORE REFS)" (List.length group))
            | Annot.Pipelined _ | Annot.Back _ -> ())
          (Annot.vectors_at plan l.loop_id);
        List.iter
          (fun op ->
            match op with
            | Annot.Pipelined { ref_id; distance; every; _ } ->
                let r = Hashtbl.find refs_by_id ref_id in
                line "C$CCDP SOFTWARE-PIPELINED PREFETCH %s, %d ITERATIONS AHEAD%s"
                  (fortran_ref r) distance
                  (if every > 1 && every < max_int then
                     Printf.sprintf ", ISSUED PER LINE" else "")
            | Annot.Vector _ | Annot.Back _ -> ())
          (Annot.pipelined_at plan l.loop_id);
        line "%sDO %s = %s, %s%s" pad
          (String.uppercase_ascii l.var)
          (bound_str l.lo) (bound_str l.hi)
          (if l.step = 1 then "" else Printf.sprintf ", %d" l.step);
        List.iter (stmt (ind + 2)) l.body;
        line "%sENDDO" pad
    | Stmt.Critical c ->
        line "CDIR$ CRITICAL(%s)" (String.uppercase_ascii c.lock);
        List.iter (stmt (ind + 2)) c.cbody;
        line "CDIR$ ENDCRITICAL"
    | Stmt.Reduce r ->
        line "CDIR$ REDUCTION(%s)" (String.uppercase_ascii r.rvar);
        line "%s%s = %s" pad
          (String.uppercase_ascii r.rvar)
          (fortran_expr (Fexpr.Binop (r.rop, Fexpr.Svar r.rvar, r.rexpr)))
  in
  Format.fprintf ppf "@[<v>";
  line "      PROGRAM %s" (String.uppercase_ascii p.Program.name);
  List.iter (fun (k, v) -> line "      PARAMETER (%s = %d)" (String.uppercase_ascii k) v)
    p.Program.params;
  List.iter
    (fun (a : Array_decl.t) ->
      line "      REAL*8 %s(%s)" a.name
        (String.concat ", " (Array.to_list (Array.map string_of_int a.dims)));
      if a.shared then line "%s" (dist_directive a))
    p.Program.arrays;
  line "C";
  line "C     CCDP plan: %s"
    (Format.asprintf "%a" Annot.pp_counts (Annot.count plan));
  line "C";
  List.iter (stmt 6) p.Program.main;
  line "      END";
  Format.fprintf ppf "@]"

let to_string c = Format.asprintf "%a" emit c
