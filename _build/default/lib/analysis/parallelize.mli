(** Polaris-style automatic loop parallelization.

    The paper's methodology starts from sequential Fortran: "We first
    parallelize the application codes using the Polaris compiler" (Section
    5.2). This pass reproduces the relevant slice of that substrate: a
    ZIV/strong-SIV dependence test over affine subscripts plus scalar
    privatization, promoting serial loops with no loop-carried dependences
    to DOALLs.

    The dependence test, per pair of same-array references with at least
    one write, examines every dimension:
    - equal subscripts with zero coefficient on the loop variable and
      different constants can never alias ({e disjoint} — kills the pair);
    - a non-zero coefficient with a constant offset gives the classic
      strong-SIV distance: zero distance means same-iteration only (also
      kills the carried dependence), a non-integer distance means no
      dependence, an integer distance within the trip count means a carried
      dependence;
    - anything non-uniform is conservatively a dependence unless another
      dimension kills the pair.

    A scalar blocks parallelization unless it is {e privatizable}: written
    before read on every path through one iteration (each task then gets a
    private copy — which the execution model's per-PE scalar environments
    provide). Reductions are not recognized (future work in Polaris terms).

    Only outermost qualifying serial loops are promoted (the epoch model
    runs one level of parallelism). *)

type verdict =
  | Parallel
  | Carried of { array_name : string; distance : int option }
      (** a loop-carried data dependence (distance [None] = unknown) *)
  | Scalar_flow of string  (** scalar read before written in an iteration *)
  | Has_doall  (** already contains parallelism *)
  | Has_calls  (** inline first *)

(** Judge one loop in the context of enclosing loops (outermost first). *)
val judge :
  params:(string * int) list ->
  outer:Ccdp_ir.Stmt.loop list ->
  Ccdp_ir.Stmt.loop ->
  verdict

type report = {
  promoted : (int * string) list;  (** loop id, variable *)
  rejected : (int * string * verdict) list;
}

(** Promote every outermost parallelizable serial loop of the (call-free)
    main body to a DOALL. [sched] picks the schedule for promoted loops
    (default: aligned to the loop's constant extent when resolvable, else
    static block). *)
val transform :
  ?sched:(Ccdp_ir.Stmt.loop -> Ccdp_ir.Stmt.sched) ->
  Ccdp_ir.Program.t ->
  Ccdp_ir.Program.t * report

val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit
