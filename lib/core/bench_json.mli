(** Machine-readable bench trajectory: [BENCH_<mode>.json].

    Each bench mode (table1, table2, ablate, sweep, ...) accumulates its
    evaluation rows and rendered tables into a document and writes it next
    to the formatted output. The document separates the {e payload} —
    rows and tables, a pure function of the simulated machine, identical
    for every job count — from the {e envelope} (jobs used, host
    wall-clock), which varies run to run. Determinism tests compare
    {!payload_string}; trend tooling reads the whole file.

    Schema (all numbers are JSON numbers, all flags JSON booleans):
    {v
    { "bench": "table1",
      "jobs": 8,
      "wall_clock_s": 1.234567,
      "rows": [ { "workload": "MXM", "pes": 4,
                  "seq_cycles": 1, "base_cycles": 1, "ccdp_cycles": 1,
                  "base_speedup": 1.0, "ccdp_speedup": 1.0,
                  "improvement_pct": 0.0,
                  "base_ok": true, "ccdp_ok": true }, ... ],
      "tables": [ { "title": "...", "headers": ["..."],
                    "rows": [["..."]] }, ... ] }
    v} *)

type t

(** [create ~bench] starts an empty document for one bench mode. *)
val create : bench:string -> t

(** Append evaluation rows (Tables 1-2 style benches). *)
val add_rows : t -> Experiment.row list -> unit

(** Append a rendered table (ablations, sweeps). *)
val add_table : t -> Experiment.table -> unit

(** The deterministic part only: [{"rows": [...], "tables": [...]}],
    independent of job count and wall-clock. *)
val payload_string : t -> string

(** Full document including the envelope. *)
val to_string : t -> jobs:int -> wall_clock_s:float -> string

(** Write [BENCH_<bench>.json] under [dir] (default ["."]); returns the
    path written. *)
val write : ?dir:string -> t -> jobs:int -> wall_clock_s:float -> string
