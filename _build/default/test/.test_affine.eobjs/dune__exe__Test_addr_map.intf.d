test/test_addr_map.mli:
